// Streaming: the paper's deployment loop — a 30 FPS camera stream
// where every frame is (1) run through the detector and (2) used for
// one LD-BN-ADAPT step, with per-frame latency priced by the Jetson
// Orin performance model against the 33.3 ms deadline.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"os"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func main() {
	rng := tensor.NewRNG(31)
	bench := carlane.Build(carlane.MoLane, resnet.R18, ufld.Tiny,
		carlane.Sizes{SourceTrain: 80, SourceVal: 16, TargetTrain: 90, TargetVal: 24}, 29)
	model := ufld.MustNewModel(bench.Cfg, rng)
	tc := ufld.DefaultTrainConfig()
	tc.Epochs = 7
	fmt.Fprintln(os.Stderr, "pre-training on simulator source...")
	if _, err := ufld.TrainSource(model, bench.SourceTrain, tc, rng.Split()); err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}

	src := stream.NewSource(bench.TargetTrain, 30) // the paper's 30 FPS camera
	fmt.Printf("streaming %d target frames at %.0f FPS (frame budget %.1f ms)\n\n",
		len(src.Frames), src.FPS, orin.Deadline30FPS)

	tb := metrics.NewTable("deployment", "online acc", "mean ms", "max ms", "miss rate", "adapt steps")
	for _, cfg := range []struct {
		label string
		mode  orin.PowerMode
	}{
		{"R-18 @ MAXN (60W)", orin.Mode60W},
		{"R-18 @ 50W", orin.Mode50W},
		{"R-18 @ 30W", orin.Mode30W},
	} {
		m := model.Clone(rng.Split())
		res := stream.Run(m, resnet.R18, src, stream.Config{
			Method:     adapt.NewLDBNAdapt(m, adapt.DefaultConfig()),
			BatchSize:  1,
			Mode:       cfg.mode,
			DeadlineMs: orin.Deadline30FPS,
		})
		tb.AddRow(cfg.label, metrics.FormatPct(res.OnlineAccuracy),
			fmt.Sprintf("%.1f", res.MeanLatencyMs), fmt.Sprintf("%.1f", res.MaxLatencyMs),
			metrics.FormatPct(res.MissRate), res.AdaptSteps)
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}

	fmt.Println("\nAccuracy improves along the stream as BN statistics and γ/β track the")
	fmt.Println("target domain; only the 60 W mode holds the 30 FPS deadline (paper Fig. 3).")
}
