// Overload: the serving engine under more load than the hardware
// sustains. Six 30 FPS cameras share ONE worker at the Orin's 15 W
// power mode — a configuration Fig. 3 places far over the 33.3 ms
// frame budget even for a single camera — and the event-time scheduler
// shows what each overload policy does about it:
//
//   - drop-none serves everything; the backlog and every frame's
//     measured queue wait grow without bound for the whole run.
//   - skip-adapt keeps inference on every frame but sheds adaptation
//     steps while streams are behind — the model still drives,
//     adaptation degrades gracefully.
//   - drop-frames sheds frames older than one camera period at
//     dispatch, trading frame loss for bounded latency.
//
// Run with: go run ./examples/overload
package main

import (
	"fmt"
	"os"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func main() {
	const streams, frames = 6, 24
	rng := tensor.NewRNG(73)
	cfg := ufld.Tiny(resnet.R18, 2)
	src := carlane.Generate(cfg, carlane.SplitSpec{
		Name:    "overload/source-train",
		Layouts: []carlane.Layout{carlane.Ego2},
		Domains: []carlane.Domain{carlane.Sim},
		N:       80,
		Seed:    73,
	})
	model := ufld.MustNewModel(cfg, rng)
	tc := ufld.DefaultTrainConfig()
	tc.Epochs = 5
	fmt.Fprintln(os.Stderr, "pre-training on simulator source...")
	if _, err := ufld.TrainSource(model, src, tc, rng.Split()); err != nil {
		fmt.Fprintln(os.Stderr, "overload:", err)
		os.Exit(1)
	}

	fleet := serve.SyntheticFleet(cfg, streams, frames, 30, 7300)
	periodMs := 1000.0 / 30.0
	fmt.Printf("%d cameras × 30 FPS on ONE worker at %s — frame budget %.1f ms\n\n",
		streams, orin.Mode15W.Name, periodMs)

	base := serve.Config{
		Variant:    resnet.R18,
		Workers:    1,
		MaxBatch:   8,
		Window:     2 * time.Millisecond,
		AdaptEvery: 2,
		Adapt:      adapt.DefaultConfig(),
		Mode:       orin.Mode15W,
		DeadlineMs: orin.Deadline30FPS,
	}

	tb := metrics.NewTable("policy", "served", "dropped", "adapt steps", "skipped",
		"p50 ms", "p99 ms", "max queue ms", "miss rate")
	for _, policy := range []stream.OverloadPolicy{stream.DropNone, stream.SkipAdapt, stream.DropFrames} {
		cfgP := base
		cfgP.Policy = policy
		rep := serve.New(model, cfgP).Run(fleet)
		steps, maxQ := 0, 0.0
		for _, sr := range rep.Streams {
			steps += sr.AdaptSteps
			if sr.MaxQueueMs > maxQ {
				maxQ = sr.MaxQueueMs
			}
		}
		tb.AddRow(policy.String(), rep.Frames, rep.FramesDropped, steps, rep.AdaptsSkipped,
			fmt.Sprintf("%.1f", rep.P50LatencyMs), fmt.Sprintf("%.1f", rep.P99LatencyMs),
			fmt.Sprintf("%.1f", maxQ), metrics.FormatPct(rep.MissRate))
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}

	fmt.Println("\ndrop-none lets queue waits run away; skip-adapt sheds adaptation to")
	fmt.Println("recover some headroom; drop-frames bounds every served frame's wait to")
	fmt.Printf("one camera period (%.1f ms) by sacrificing stale frames.\n", periodMs)
}
