// Powermode: the paper's §IV deployment analysis (Fig. 3 workflow).
//
// Given the full-scale UFLD R-18 and R-34 architectures, price
// inference + LD-BN-ADAPT adaptation on every Jetson Orin power mode,
// check the 30 FPS and 18 FPS deadlines, and use the advisor to answer
// the paper's deployment questions ("if there is a strict power
// constraint of 50W then R-18 should be used...").
//
// Run with: go run ./examples/powermode
package main

import (
	"fmt"
	"os"

	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/ufld"
)

func main() {
	c18 := ufld.DescribeModel(ufld.FullScale(resnet.R18, 4))
	c34 := ufld.DescribeModel(ufld.FullScale(resnet.R34, 4))
	fmt.Printf("UFLD R-18: %.1f GFLOPs, %.1fM params\n",
		float64(c18.TotalFLOPs())/1e9, float64(c18.TotalParams())/1e6)
	fmt.Printf("UFLD R-34: %.1f GFLOPs, %.1fM params\n\n",
		float64(c34.TotalFLOPs())/1e9, float64(c34.TotalParams())/1e6)

	var estimates []orin.Estimate
	var candidates []orin.Candidate
	for _, mode := range orin.Modes {
		e18 := orin.EstimateFrame("R-18", c18, mode, 1)
		e34 := orin.EstimateFrame("R-34", c34, mode, 1)
		estimates = append(estimates, e18, e34)
		candidates = append(candidates,
			orin.Candidate{Estimate: e18, Robust: false},
			orin.Candidate{Estimate: e34, Robust: true})
	}
	fmt.Println("latency per power mode (inference + LD-BN-ADAPT, bs=1):")
	orin.WriteLatencyTable(os.Stdout, estimates)

	ask := func(desc string, req orin.Requirement) {
		rec, err := orin.Select(req, candidates)
		if err != nil {
			fmt.Printf("\n%s\n  -> no feasible deployment (%v)\n", desc, err)
			return
		}
		e := rec.Chosen.Estimate
		fmt.Printf("\n%s\n  -> %s at %s (%.1f ms, %.1f FPS, %.0f mJ/frame); %d feasible options\n",
			desc, e.ModelName, e.Mode.Name, e.TotalMs, e.FPS(), e.EnergyMJ, len(rec.Feasible))
	}
	ask("Q1: strict 30 FPS camera deadline, no power limit?",
		orin.Requirement{DeadlineMs: orin.Deadline30FPS})
	ask("Q2: 18 FPS deadline (Audi A8 level-3 class) with a strict 50 W power constraint?",
		orin.Requirement{DeadlineMs: orin.Deadline18FPS, PowerBudgetW: 50})
	ask("Q3: 18 FPS deadline, multi-target conditions (prefer the more robust R-34)?",
		orin.Requirement{DeadlineMs: orin.Deadline18FPS, MultiTarget: true})
	ask("Q4: 30 FPS deadline at only 15 W?",
		orin.Requirement{DeadlineMs: orin.Deadline30FPS, PowerBudgetW: 15})
}
