// Multitarget: the MuLane scenario — one vehicle, two target domains.
//
// MuLane interleaves model-vehicle frames and highway frames 1:1, so
// the deployed detector must adapt to a *mixture* of shifts at once.
// The paper observes that the larger R-34 backbone is more robust in
// this multi-target setting (its §IV model-selection discussion). This
// example adapts both backbones on MuLane and compares.
//
// Run with: go run ./examples/multitarget
package main

import (
	"fmt"
	"os"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func main() {
	sizes := carlane.Sizes{SourceTrain: 128, SourceVal: 24, TargetTrain: 96, TargetVal: 48}
	tb := metrics.NewTable("model", "source", "no-adapt", "LD-BN-ADAPT bs=1")
	for _, v := range []resnet.Variant{resnet.R18, resnet.R34} {
		rng := tensor.NewRNG(23)
		bench := carlane.Build(carlane.MuLane, v, ufld.Tiny, sizes, 19)
		model := ufld.MustNewModel(bench.Cfg, rng)
		tc := ufld.DefaultTrainConfig()
		tc.Epochs = 9
		fmt.Fprintf(os.Stderr, "pre-training %s on MuLane source...\n", v)
		if _, err := ufld.TrainSource(model, bench.SourceTrain, tc, rng.Split()); err != nil {
			fmt.Fprintln(os.Stderr, "multitarget:", err)
			os.Exit(1)
		}
		src := ufld.Evaluate(model, bench.SourceVal, 8).Accuracy
		noAdapt := ufld.Evaluate(model, bench.TargetVal, 8).Accuracy

		adapted := model.Clone(rng.Split())
		meth := adapt.NewLDBNAdapt(adapted, adapt.DefaultConfig())
		res := adapt.RunOnline(adapted, meth, bench.TargetTrain, bench.TargetVal, 1)

		tb.AddRow(v.String(), metrics.FormatPct(src), metrics.FormatPct(noAdapt),
			metrics.FormatPct(res.FinalAccuracy))
	}
	fmt.Println("MuLane (multi-target: model-vehicle + highway interleaved):")
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	fmt.Println("\nThe two target domains pull the BN statistics in opposite directions")
	fmt.Println("(model-vehicle frames are dark, highway frames hazy-bright), so the")
	fmt.Println("adapting statistics oscillate. The small R-18 can even lose accuracy")
	fmt.Println("under the mixture, while the higher-capacity R-34 absorbs it and gains —")
	fmt.Println("exactly why the paper selects R-34 for multi-target conditions whenever")
	fmt.Println("the 18 FPS deadline allows it (see examples/powermode).")
}
