// Sharding: one board does not scale to a city fleet — and one BIG
// board is the wrong comparison anyway. This demo serves the reference
// bursty fleet (8 cameras idling at 2 FPS that burst to 30 FPS
// together, plus a late joiner) under four deployments:
//
//   - 1 big board, static 30 W: four workers on one board, sized
//     offline for the fleet's mean load — the paper's offline advisor
//     taken at face value. Every burst saturates it.
//   - 1 big board, static MAXN: sized for the burst; hits everything
//     and is the energy bar a single board sets when the fleet still
//     fits on one board (race-to-idle makes MAXN busy-cheap).
//   - 4 small boards, governed, least-loaded: streams spread 2–3 per
//     board; every board rides its own nvpmodel ladder (hysteresis)
//     and pays its own rail draw the whole run.
//   - 4 small boards, governed, bin-packed + migration: streams packed
//     onto three boards, the fourth left dark (a board with no streams
//     charges nothing); when a board pins at its top rung and still
//     misses, the coordinator migrates its hottest stream — opening
//     the dark board mid-run and carrying the stream's adaptation
//     state (BN statistics, optimizer moments) across the move.
//
// The acceptance comparison is governed-shards vs the mean-sized
// static board: ~1.7× its deadline-hit rate at comparable (≤1.5×)
// total energy, with migrations and stranded capacity reported.
//
// Run with: go run ./examples/sharding
package main

import (
	"fmt"
	"os"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/shard"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sharding:", err)
	os.Exit(1)
}

func main() {
	rng := tensor.NewRNG(59)
	cfg := ufld.Tiny(resnet.R18, 2)
	src := carlane.Generate(cfg, carlane.SplitSpec{
		Name:    "sharding/source-train",
		Layouts: []carlane.Layout{carlane.Ego2},
		Domains: []carlane.Domain{carlane.Sim},
		N:       80,
		Seed:    59,
	})
	model := ufld.MustNewModel(cfg, rng)
	tc := ufld.DefaultTrainConfig()
	tc.Epochs = 5
	fmt.Fprintln(os.Stderr, "pre-training on simulator source...")
	if _, err := ufld.TrainSource(model, src, tc, rng.Split()); err != nil {
		fail(err)
	}

	fleet := serve.BurstyFleet(cfg, 8, 2, 6, 24, 2, 30, 59)
	total := 0
	for _, s := range fleet {
		total += len(s.Frames)
	}
	board := func(mode orin.PowerMode, workers int) serve.Config {
		return serve.Config{
			Workers:    workers,
			MaxBatch:   8,
			AdaptEvery: 4,
			Adapt:      adapt.DefaultConfig(),
			Mode:       mode,
			DeadlineMs: orin.Deadline18FPS,
		}
	}
	fmt.Printf("bursty fleet: %d cameras (%d frames), lulls at 2 FPS, bursts at 30 FPS, one late joiner;\n",
		len(fleet), total)
	fmt.Printf("%.1f ms deadline, 250 ms control epochs\n\n", orin.Deadline18FPS)

	deployments := []struct {
		label string
		cfg   shard.Config
	}{
		{"1 big, static 30W", shard.Config{
			Boards: 1, Board: board(orin.Mode30W, 4), EpochMs: 250}},
		{"1 big, static MAXN", shard.Config{
			Boards: 1, Board: board(orin.Mode60W, 4), EpochMs: 250}},
		{"4 small, hys, spread", shard.Config{
			Boards: 4, Board: board(orin.Mode60W, 1), Placement: shard.LeastLoaded{},
			Governor: "hysteresis", EpochMs: 250}},
		{"4 small, hys, pack+mig", shard.Config{
			Boards: 4, Board: board(orin.Mode60W, 1), Placement: shard.BinPack{Target: 0.15},
			Governor: "hysteresis", EpochMs: 250, Migrate: true}},
	}
	reports := make([]shard.Report, len(deployments))
	tb := metrics.NewTable("deployment", "served", "hit rate", "energy J", "J/frame",
		"migrations", "stranded w-s", "boards used")
	for i, d := range deployments {
		f, err := shard.New(model, d.cfg)
		if err != nil {
			fail(err)
		}
		reports[i] = f.Run(fleet)
		rep := reports[i]
		used := 0
		for _, br := range rep.Boards {
			if br.Report.Frames > 0 {
				used++
			}
		}
		tb.AddRow(d.label, rep.Frames, metrics.FormatPct(rep.HitRate),
			fmt.Sprintf("%.1f", rep.EnergyMJ/1e3),
			fmt.Sprintf("%.3f", rep.JPerFrame),
			len(rep.Migrations),
			fmt.Sprintf("%.1f", rep.StrandedMs/1e3),
			fmt.Sprintf("%d/%d", used, len(rep.Boards)))
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fail(err)
	}

	packed := reports[3]
	if len(packed.Migrations) > 0 {
		fmt.Println("\nmigrations (bin-packed fleet):")
		for _, mg := range packed.Migrations {
			fmt.Printf("  epoch %2d: stream %d moved board %d → %d (adaptation state carried)\n",
				mg.Epoch, mg.Stream, mg.From, mg.To)
		}
	}

	big30, gov := reports[0], reports[3]
	fmt.Printf("\n4 governed boards vs the mean-sized static board: %s vs %s deadline-hit rate\n",
		metrics.FormatPct(gov.HitRate), metrics.FormatPct(big30.HitRate))
	fmt.Printf("at %.2fx its energy (%.1f J vs %.1f J).\n",
		gov.EnergyMJ/big30.EnergyMJ, gov.EnergyMJ/1e3, big30.EnergyMJ/1e3)
	fmt.Println("(static MAXN wins while the fleet still fits one board — sharding is for when it doesn't;")
	fmt.Println("the dark fourth board opens mid-run only when migration needs it.)")
}
