// Board failure at the worst moment: a fleet member dies at the peak
// of a burst, taking its streams' adaptation state — BN statistics
// tuned to each camera's domain, optimizer moments, half-filled
// adaptation windows, forecaster trends — down with it. This demo
// serves one fault scenario under three recovery deployments plus a
// planned-maintenance run:
//
//   - no failure: the reference run. Six cameras on three governed
//     boards; the two cameras on board 0 burst from 4 to 16 FPS at
//     t=2 s.
//   - kill + checkpoints: every stream's state is checkpointed to the
//     fleet store every other epoch (serve.EncodeCheckpoint — the
//     same bundle format as saved weights). Board 0 is killed at the
//     burst peak; at the very next epoch boundary the coordinator
//     re-admits its orphaned streams onto the survivors from their
//     latest checkpoints, placed by forecast load with destination
//     boards pre-energized, and only the frames queued on the dead
//     board are lost.
//   - kill, checkpoints lost: same kill, but the checkpoint store
//     dropped every write — the orphans re-admit with fresh state and
//     re-warm their BN statistics from scratch, which is what
//     recovery looked like before checkpoints.
//   - rolling upgrade: no failure at all — a fresh board joins, the
//     old board drains, its streams evacuate live with their state.
//     Planned membership change loses nothing.
//
// The acceptance comparison (pinned by TestChaosRecoveryPin) is
// kill + checkpoints vs no failure: every orphan re-admitted at the
// kill boundary from its checkpoint, hit rate within a small margin
// of the unfailed run.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"os"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/shard"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "failover:", err)
	os.Exit(1)
}

// blackhole is a checkpoint store whose writes never persist: every
// recovery misses and restarts cold, which is what board failure cost
// before durable checkpoints.
type blackhole struct{}

func (blackhole) Put(int, []byte) error            { return nil }
func (blackhole) Latest(int) ([]byte, bool, error) { return nil, false, nil }

func main() {
	rng := tensor.NewRNG(67)
	cfg := ufld.Tiny(resnet.R18, 2)
	src := carlane.Generate(cfg, carlane.SplitSpec{
		Name:    "failover/source-train",
		Layouts: []carlane.Layout{carlane.Ego2},
		Domains: []carlane.Domain{carlane.Sim},
		N:       80,
		Seed:    67,
	})
	model := ufld.MustNewModel(cfg, rng)
	tc := ufld.DefaultTrainConfig()
	tc.Epochs = 5
	fmt.Fprintln(os.Stderr, "pre-training on simulator source...")
	if _, err := ufld.TrainSource(model, src, tc, rng.Split()); err != nil {
		fail(err)
	}

	// Six cameras, two per board under least-loaded placement; both of
	// board 0's cameras burst to 16 FPS at t=2 s, making it the
	// unambiguous hottest board when the kill fires.
	scheds := make([]serve.StreamSchedule, 6)
	for i := range scheds {
		if i == 0 || i == 3 {
			scheds[i] = serve.StreamSchedule{Phases: []stream.RatePhase{
				{Frames: 8, FPS: 4}, {Frames: 24, FPS: 16},
			}}
		} else {
			scheds[i] = serve.StreamSchedule{Phases: []stream.RatePhase{
				{Frames: 8, FPS: 4}, {Frames: 16, FPS: 4},
			}}
		}
	}
	fleet := serve.SyntheticFleetSchedules(cfg, scheds, 167)
	total := 0
	for _, s := range fleet {
		total += len(s.Frames)
	}
	board := serve.Config{
		Workers:    1,
		MaxBatch:   8,
		AdaptEvery: 4,
		Adapt:      adapt.DefaultConfig(),
		Mode:       orin.Mode60W,
		DeadlineMs: orin.Deadline18FPS,
	}
	base := shard.Config{
		Boards: 3, Board: board, Placement: shard.LeastLoaded{},
		Governor: "hysteresis", EpochMs: 250, Migrate: true,
	}
	kill := func() *shard.FailurePlan {
		return &shard.FailurePlan{Events: []shard.FleetEvent{
			{Epoch: 8, Kind: shard.Kill, Board: shard.HottestBoard},
		}}
	}
	upgrade := &shard.FailurePlan{Events: []shard.FleetEvent{
		{Epoch: 4, Kind: shard.Join},
		{Epoch: 5, Kind: shard.Drain, Board: 0},
	}}
	fmt.Printf("fleet: %d cameras (%d frames) on 3 boards; board 0's cameras burst 4→16 FPS at t=2 s\n\n",
		len(fleet), total)

	deployments := []struct {
		label string
		mut   func(*shard.Config)
	}{
		{"no failure", func(c *shard.Config) {}},
		{"kill + checkpoints", func(c *shard.Config) {
			c.Plan = kill()
			c.CheckpointEvery = 2
		}},
		{"kill, checkpoints lost", func(c *shard.Config) {
			c.Plan = kill()
			c.CheckpointEvery = 2
			c.Checkpoints = blackhole{}
		}},
		{"rolling upgrade", func(c *shard.Config) {
			c.Plan = upgrade
			c.CheckpointEvery = 2
		}},
	}
	reports := make([]shard.Report, len(deployments))
	tb := metrics.NewTable("deployment", "served", "hit rate", "accuracy", "lost", "warm", "cold",
		"energy J")
	for i, d := range deployments {
		sc := base
		d.mut(&sc)
		f, err := shard.New(model, sc)
		if err != nil {
			fail(err)
		}
		reports[i] = f.Run(fleet)
		rep := reports[i]
		warm, cold := 0, 0
		for _, ev := range rep.Events {
			warm += ev.Recovered
			cold += ev.Cold
		}
		// Frame-weighted fleet accuracy: a cold restart re-warms its BN
		// statistics from scratch, which shows up here, not in latency.
		accW, accN := 0.0, 0
		for _, br := range rep.Boards {
			accW += br.Report.OnlineAccuracy * float64(br.Report.Frames)
			accN += br.Report.Frames
		}
		acc := "-"
		if accN > 0 {
			acc = metrics.FormatPct(accW / float64(accN))
		}
		tb.AddRow(d.label, rep.Frames, metrics.FormatPct(rep.HitRate), acc, rep.LostFrames,
			warm, cold, fmt.Sprintf("%.1f", rep.EnergyMJ/1e3))
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fail(err)
	}

	ckpt := reports[1]
	fmt.Println("\nrecovery trace (kill + checkpoints):")
	for _, ev := range ckpt.Events {
		fmt.Printf("  epoch %d: board %d killed — %d streams orphaned, %d re-admitted from checkpoints, %d queued frames lost\n",
			ev.Epoch, ev.Board, ev.Streams, ev.Recovered, ev.LostFrames)
	}
	for _, mg := range ckpt.Migrations {
		if mg.Reason == shard.Failover {
			fmt.Printf("  epoch %d: stream %d board %d → %d [%s]\n",
				mg.Epoch, mg.Stream, mg.From, mg.To, mg.Reason)
		}
	}

	up := reports[3]
	fmt.Println("\nmembership trace (rolling upgrade):")
	for _, ev := range up.Events {
		switch ev.Kind {
		case shard.Join:
			fmt.Printf("  epoch %d: board %d joined\n", ev.Epoch, ev.Board)
		case shard.Drain:
			fmt.Printf("  epoch %d: board %d draining — %d streams evacuating live\n",
				ev.Epoch, ev.Board, ev.Streams)
		}
	}
	for _, mg := range up.Migrations {
		if mg.Reason == shard.Evacuate {
			note := ""
			if mg.Drained {
				note = " — board drained, retiring"
			}
			fmt.Printf("  epoch %d: stream %d board %d → %d [%s]%s\n",
				mg.Epoch, mg.Stream, mg.From, mg.To, mg.Reason, note)
		}
	}

	nofail := reports[0]
	fmt.Printf("\nkill + checkpoints vs no failure: %s vs %s hit rate, %d frames lost with the board's queue\n",
		metrics.FormatPct(ckpt.HitRate), metrics.FormatPct(nofail.HitRate), ckpt.LostFrames)
	fmt.Printf("rolling upgrade: %s hit rate, %d frames lost — planned membership change costs nothing.\n",
		metrics.FormatPct(up.HitRate), up.LostFrames)
}
