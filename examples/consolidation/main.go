// Lull consolidation: a fleet sized for the rush pays four static
// rails all night. This demo serves a compressed diurnal cycle —
// twelve cameras spread across four governed boards idle at 2 FPS,
// rush together at 8 FPS twice, and after the second rush half the
// cameras sign off while the survivors trickle on at 2 FPS — under
// three deployments:
//
//   - spread, migrate-only: least-loaded placement, predictive
//     governors, saturation migration. Every board stays awake for
//     the whole run because every board keeps at least one stream —
//     the 4-rail penalty in examples/sharding.
//   - spread + consolidation: same fleet, plus the reverse path. At
//     every epoch boundary the coordinator compares the fleet's
//     provisioning load — per-stream arrival forecasts
//     (internal/forecast), floored by a decaying peak-load memory so
//     one quiet epoch cannot erase the morning rush — against the
//     awake boards' capacity, and when the coldest board's streams
//     all fit elsewhere it drains that board: streams migrate
//     coldest-first with their adaptation state and forecaster, and
//     the vacated board sleeps, charging no rail draw, until
//     saturation migration needs it again.
//   - packed + consolidation: bin-packed admission instead of spread,
//     showing the two paths composed — the fleet opens boards only as
//     the load earns them and closes them when it stops.
//
// The acceptance comparison (pinned by TestConsolidationCutsFleetEnergy)
// is consolidation vs migrate-only: lower fleet energy at an
// equal-or-better deadline-hit rate, with the drained boards visible
// in the migration trace.
//
// Run with: go run ./examples/consolidation
package main

import (
	"fmt"
	"os"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/shard"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "consolidation:", err)
	os.Exit(1)
}

func main() {
	rng := tensor.NewRNG(61)
	cfg := ufld.Tiny(resnet.R18, 2)
	src := carlane.Generate(cfg, carlane.SplitSpec{
		Name:    "consolidation/source-train",
		Layouts: []carlane.Layout{carlane.Ego2},
		Domains: []carlane.Domain{carlane.Sim},
		N:       80,
		Seed:    61,
	})
	model := ufld.MustNewModel(cfg, rng)
	tc := ufld.DefaultTrainConfig()
	tc.Epochs = 5
	fmt.Fprintln(os.Stderr, "pre-training on simulator source...")
	if _, err := ufld.TrainSource(model, src, tc, rng.Split()); err != nil {
		fail(err)
	}

	// The compressed diurnal fleet: morning lull, two rushes, and an
	// evening where the odd-numbered cameras sign off.
	scheds := make([]serve.StreamSchedule, 12)
	for i := range scheds {
		phases := []stream.RatePhase{
			{Frames: 8, FPS: 2},
			{Frames: 32, FPS: 8},
			{Frames: 8, FPS: 2},
			{Frames: 32, FPS: 8},
		}
		if i%2 == 0 {
			phases = append(phases, stream.RatePhase{Frames: 24, FPS: 2})
		}
		scheds[i] = serve.StreamSchedule{Phases: phases}
	}
	fleet := serve.SyntheticFleetSchedules(cfg, scheds, 61)
	total := 0
	for _, s := range fleet {
		total += len(s.Frames)
	}
	board := serve.Config{
		Workers:    1,
		MaxBatch:   8,
		AdaptEvery: 4,
		Adapt:      adapt.DefaultConfig(),
		Mode:       orin.Mode60W,
		DeadlineMs: orin.Deadline18FPS,
	}
	fmt.Printf("diurnal fleet: %d cameras (%d frames), 2 FPS lulls, 8 FPS rushes, half sign off for the evening;\n",
		len(fleet), total)
	fmt.Printf("%.1f ms deadline, 250 ms control epochs, predictive governors\n\n", orin.Deadline18FPS)

	deployments := []struct {
		label string
		cfg   shard.Config
	}{
		{"spread, migrate-only", shard.Config{
			Boards: 4, Board: board, Placement: shard.LeastLoaded{},
			Governor: "predictive", EpochMs: 250, Migrate: true}},
		{"spread + consolidate", shard.Config{
			Boards: 4, Board: board, Placement: shard.LeastLoaded{},
			Governor: "predictive", EpochMs: 250, Migrate: true,
			Consolidate: true, ConsolidateUtil: 0.25}},
		{"packed + consolidate", shard.Config{
			Boards: 4, Board: board, Placement: shard.BinPack{Target: 0.15},
			Governor: "predictive", EpochMs: 250, Migrate: true,
			Consolidate: true, ConsolidateUtil: 0.25}},
	}
	reports := make([]shard.Report, len(deployments))
	tb := metrics.NewTable("deployment", "served", "hit rate", "energy J", "static J",
		"J/frame", "moves", "drains", "board-s awake")
	for i, d := range deployments {
		f, err := shard.New(model, d.cfg)
		if err != nil {
			fail(err)
		}
		reports[i] = f.Run(fleet)
		rep := reports[i]
		drains := 0
		for _, mg := range rep.Migrations {
			if mg.Drained {
				drains++
			}
		}
		awakeMs := 0.0
		for _, br := range rep.Boards {
			for _, es := range br.Report.Epochs {
				awakeMs += es.EndMs - es.StartMs
			}
		}
		tb.AddRow(d.label, rep.Frames, metrics.FormatPct(rep.HitRate),
			fmt.Sprintf("%.1f", rep.EnergyMJ/1e3),
			fmt.Sprintf("%.1f", rep.IdleEnergyMJ/1e3),
			fmt.Sprintf("%.3f", rep.JPerFrame),
			len(rep.Migrations), drains,
			fmt.Sprintf("%.1f", awakeMs/1e3))
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fail(err)
	}

	con := reports[1]
	fmt.Println("\nmigrations (spread + consolidate):")
	for _, mg := range con.Migrations {
		note := ""
		if mg.Drained {
			note = " — board drained, rail asleep"
		}
		fmt.Printf("  epoch %3d: stream %2d board %d → %d [%s]%s\n",
			mg.Epoch, mg.Stream, mg.From, mg.To, mg.Reason, note)
	}

	mig := reports[0]
	fmt.Printf("\nconsolidation vs migrate-only: %s vs %s deadline-hit rate at %.2fx the energy\n",
		metrics.FormatPct(con.HitRate), metrics.FormatPct(mig.HitRate), con.EnergyMJ/mig.EnergyMJ)
	fmt.Printf("(the static draw drops %.1f J → %.1f J: sleeping rails, not shed work).\n",
		mig.IdleEnergyMJ/1e3, con.IdleEnergyMJ/1e3)
}
