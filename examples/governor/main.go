// Governor: the paper's power-mode analysis taken online. The offline
// advisor (examples/powermode) picks ONE Orin nvpmodel point for the
// whole deployment — but a real fleet's load swings, and a mode sized
// for the burst burns its static rail draw through every lull while a
// mode sized for the lull misses every burst deadline.
//
// This demo runs the same bursty fleet — cameras idling at 2 FPS that
// burst to 30 FPS together, plus one that joins late and leaves early —
// under four deployments:
//
//   - static 15 W: the lull-sized corner; its latency floor misses the
//     18 FPS deadline even with no queue.
//   - static 60 W (MAXN): the burst-sized corner; hits every deadline
//     and pays 18 W of static draw through every lull.
//   - hysteresis: internal/govern's reactive ladder climber — climbs a
//     rung the epoch service degrades, descends after consecutive
//     healthy epochs that would fit the lower rung.
//   - oracle: per-epoch exhaustive sweep over the ladder using the
//     engine's exact queue state — the upper bound on governing.
//
// Run with: go run ./examples/governor
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/govern"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

const epochMs = 250

// ribbon compresses an epoch trace into one mode character per epoch.
func ribbon(rep serve.Report) string {
	var b strings.Builder
	for _, es := range rep.Epochs {
		switch es.Controls.Mode.Watts {
		case 15:
			b.WriteByte('1')
		case 30:
			b.WriteByte('3')
		case 50:
			b.WriteByte('5')
		default:
			b.WriteByte('M')
		}
	}
	return b.String()
}

func main() {
	rng := tensor.NewRNG(73)
	cfg := ufld.Tiny(resnet.R18, 2)
	src := carlane.Generate(cfg, carlane.SplitSpec{
		Name:    "governor/source-train",
		Layouts: []carlane.Layout{carlane.Ego2},
		Domains: []carlane.Domain{carlane.Sim},
		N:       80,
		Seed:    73,
	})
	model := ufld.MustNewModel(cfg, rng)
	tc := ufld.DefaultTrainConfig()
	tc.Epochs = 5
	fmt.Fprintln(os.Stderr, "pre-training on simulator source...")
	if _, err := ufld.TrainSource(model, src, tc, rng.Split()); err != nil {
		fmt.Fprintln(os.Stderr, "governor:", err)
		os.Exit(1)
	}

	fleet := serve.BurstyFleet(cfg, 2, 2, 6, 24, 2, 30, 7300)
	base := serve.Config{
		Workers:    1,
		MaxBatch:   8,
		Window:     2 * time.Millisecond,
		AdaptEvery: 4,
		Adapt:      adapt.DefaultConfig(),
		DeadlineMs: orin.Deadline18FPS,
		Policy:     stream.DropNone,
	}
	fmt.Printf("bursty fleet: %d cameras, lulls at 2 FPS, bursts at 30 FPS, one late joiner;\n", len(fleet))
	fmt.Printf("one worker, %.1f ms deadline, %v ms control epochs\n\n", base.DeadlineMs, epochMs)

	type deployment struct {
		label string
		mode  orin.PowerMode
		ctl   serve.Controller
	}
	deployments := []deployment{
		{"static 15W", orin.Mode15W, govern.Static{}},
		{"static 60W", orin.Mode60W, govern.Static{}},
		{"hysteresis", orin.Mode60W, &govern.Hysteresis{}},
		{"oracle", orin.Mode60W, &govern.Oracle{}},
	}
	reports := make([]serve.Report, len(deployments))
	tb := metrics.NewTable("deployment", "served", "hit rate", "p99 ms", "energy J", "J/frame", "modes used")
	for i, d := range deployments {
		c := base
		c.Mode = d.mode
		reports[i] = serve.New(model, c).RunGoverned(fleet, epochMs, d.ctl)
		rep := reports[i]
		seen := map[string]bool{}
		var modes []string
		for _, es := range rep.Epochs {
			if !seen[es.Controls.Mode.Name] {
				seen[es.Controls.Mode.Name] = true
				modes = append(modes, fmt.Sprintf("%dW", es.Controls.Mode.Watts))
			}
		}
		tb.AddRow(d.label, rep.Frames, metrics.FormatPct(1-rep.MissRate),
			fmt.Sprintf("%.1f", rep.P99LatencyMs),
			fmt.Sprintf("%.1f", rep.EnergyMJ/1e3),
			fmt.Sprintf("%.3f", rep.JPerFrame),
			strings.Join(modes, " "))
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}

	fmt.Println("\nmode per epoch (1=15W 3=30W 5=50W M=MAXN):")
	for i, d := range deployments {
		fmt.Printf("  %-11s %s\n", d.label, ribbon(reports[i]))
	}

	s60, hys := reports[1], reports[2]
	fmt.Printf("\nhysteresis used %.0f%% of static MAXN's energy at a %s deadline-hit rate\n",
		100*hys.EnergyMJ/s60.EnergyMJ, metrics.FormatPct(1-hys.MissRate))
	fmt.Println("(static 60W hits everything but burns its rail draw through every lull;")
	fmt.Println("static 15W cannot meet the deadline at all — its floor is above it).")
}
