// Multistream: the serving-scale extension of the paper's deployment —
// eight 30 FPS cameras with independent domain drift are multiplexed
// onto one shared-weight model by the dynamic-batching engine, each
// stream adapting its own BatchNorm state with LD-BN-ADAPT while
// latency is priced by the Jetson Orin performance model.
//
// Run with: go run ./examples/multistream
package main

import (
	"fmt"
	"os"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func main() {
	const streams, frames = 8, 24
	rng := tensor.NewRNG(41)
	cfg := ufld.Tiny(resnet.R18, 2)
	src := carlane.Generate(cfg, carlane.SplitSpec{
		Name:    "multistream/source-train",
		Layouts: []carlane.Layout{carlane.Ego2},
		Domains: []carlane.Domain{carlane.Sim},
		N:       80,
		Seed:    41,
	})
	model := ufld.MustNewModel(cfg, rng)
	tc := ufld.DefaultTrainConfig()
	tc.Epochs = 7
	fmt.Fprintln(os.Stderr, "pre-training on simulator source...")
	if _, err := ufld.TrainSource(model, src, tc, rng.Split()); err != nil {
		fmt.Fprintln(os.Stderr, "multistream:", err)
		os.Exit(1)
	}

	fleet := serve.SyntheticFleet(cfg, streams, frames, 30, 4100)
	fmt.Printf("serving %d streams × %d frames (%d total) against the %.1f ms budget\n\n",
		streams, frames, streams*frames, orin.Deadline30FPS)

	base := serve.Config{
		Variant:  resnet.R18,
		MaxBatch: 8,
		Window:   2 * time.Millisecond,
		Adapt:    adapt.DefaultConfig(),
		Mode:     orin.Mode60W,
	}

	adapted := base
	adapted.AdaptEvery = 4
	repAdapted := serve.New(model, adapted).Run(fleet)

	frozen := base
	frozen.AdaptEvery = 0
	repFrozen := serve.New(model, frozen).Run(fleet)

	repNaive := serve.RunNaive(model, serve.Config{
		Variant: resnet.R18, AdaptEvery: 1, Adapt: adapt.DefaultConfig(), Mode: orin.Mode60W,
	}, fleet)

	tb := metrics.NewTable("deployment", "host fps", "mean batch", "online acc", "p50 ms", "p99 ms", "miss rate")
	for _, row := range []struct {
		label string
		rep   serve.Report
	}{
		{"batched + LD-BN-ADAPT (every 4)", repAdapted},
		{"batched, no adaptation", repFrozen},
		{"naive per-stream loop (bs=1)", repNaive},
	} {
		tb.AddRow(row.label, fmt.Sprintf("%.1f", row.rep.ThroughputFPS),
			fmt.Sprintf("%.2f", row.rep.MeanBatch), metrics.FormatPct(row.rep.OnlineAccuracy),
			fmt.Sprintf("%.1f", row.rep.P50LatencyMs), fmt.Sprintf("%.1f", row.rep.P99LatencyMs),
			metrics.FormatPct(row.rep.MissRate))
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}

	fmt.Println("\nper-stream outcomes (batched + LD-BN-ADAPT):")
	st := metrics.NewTable("stream", "online acc", "p99 ms", "miss rate", "adapt steps")
	for _, sr := range repAdapted.Streams {
		st.AddRow(fmt.Sprintf("#%02d", sr.Stream), metrics.FormatPct(sr.OnlineAccuracy),
			fmt.Sprintf("%.1f", sr.P99LatencyMs), metrics.FormatPct(sr.MissRate), sr.AdaptSteps)
	}
	if _, err := st.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}

	if repNaive.ThroughputFPS > 0 {
		fmt.Printf("\nbatching + amortized adaptation serves %.2fx the naive per-stream loop\n",
			repAdapted.ThroughputFPS/repNaive.ThroughputFPS)
	}
	fmt.Println("while every stream tracks its own domain with the weights stored once.")

	// Fig. 3 coda: on the Orin cost model, coalescing also moves power
	// modes across the deadline line — the 30 W mode misses 30 FPS with
	// the paper's per-frame loop but holds it when frames are batched.
	lowPower := adapted
	lowPower.Mode = orin.Mode30W
	batched30 := serve.New(model, lowPower).FrameLatencyMs(8)
	cost := ufld.DescribeModel(ufld.FullScale(resnet.R18, cfg.Lanes))
	naive30 := orin.EstimateFrame("R-18", cost, orin.Mode30W, 1).TotalMs
	mark := func(ms float64) string {
		if ms <= orin.Deadline30FPS {
			return "meets"
		}
		return "misses"
	}
	fmt.Printf("\nOrin 30 W mode: naive frame %.1f ms (%s 30 FPS) vs batched frame %.1f ms (%s 30 FPS)\n",
		naive30, mark(naive30), batched30, mark(batched30))
}
