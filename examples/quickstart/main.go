// Quickstart: the end-to-end LD-BN-ADAPT story in one minute.
//
//  1. Generate a CARLANE-style MoLane benchmark (sim source, real
//     target).
//  2. Pre-train a UFLD ResNet-18 lane detector on labeled simulator
//     data.
//  3. Observe the sim-to-real accuracy drop on the target domain.
//  4. Deploy LD-BN-ADAPT: per-frame, fully unsupervised BN adaptation.
//  5. Observe the recovered accuracy — no labels, ~1% of parameters.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func main() {
	start := time.Now()
	rng := tensor.NewRNG(7)

	fmt.Println("== 1. generating MoLane benchmark (CARLA-style sim -> model-vehicle target)")
	bench := carlane.Build(carlane.MoLane, resnet.R18, ufld.Tiny,
		carlane.Sizes{SourceTrain: 96, SourceVal: 24, TargetTrain: 64, TargetVal: 32}, 11)
	carlane.WriteBenchmarkTable(os.Stdout, bench)

	fmt.Println("\n== 2. pre-training UFLD R-18 on labeled simulator data")
	model := ufld.MustNewModel(bench.Cfg, rng)
	tc := ufld.DefaultTrainConfig()
	tc.Epochs = 7
	tc.Log = os.Stdout
	if _, err := ufld.TrainSource(model, bench.SourceTrain, tc, rng.Split()); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	srcAcc := ufld.Evaluate(model, bench.SourceVal, 8).Accuracy
	fmt.Printf("   simulator accuracy: %s\n", metrics.FormatPct(srcAcc))

	fmt.Println("\n== 3. deploying into the target domain without adaptation")
	before := ufld.Evaluate(model, bench.TargetVal, 8)
	fmt.Printf("   target accuracy: %s (prediction entropy %.3f) — the sim-to-real gap\n",
		metrics.FormatPct(before.Accuracy), before.MeanEntropy)

	fmt.Println("\n== 4. enabling LD-BN-ADAPT (batch size 1: adapt after every frame)")
	fmt.Printf("   adapted parameters: %d of %d (%.1f%%)\n",
		nn.ParamCount(model.BNParams()), nn.ParamCount(model.Params()),
		100*float64(nn.ParamCount(model.BNParams()))/float64(nn.ParamCount(model.Params())))
	method := adapt.NewLDBNAdapt(model, adapt.DefaultConfig())
	res := adapt.RunOnline(model, method, bench.TargetTrain, bench.TargetVal, 1)
	fmt.Printf("   %d frames streamed, %d adaptation steps\n", res.Frames, method.Steps())

	fmt.Println("\n== 5. results")
	after := ufld.Evaluate(model, bench.TargetVal, 8)
	fmt.Printf("   target accuracy: %s -> %s (entropy %.3f -> %.3f)\n",
		metrics.FormatPct(before.Accuracy), metrics.FormatPct(after.Accuracy),
		before.MeanEntropy, after.MeanEntropy)
	fmt.Printf("   done in %s\n", time.Since(start).Round(time.Millisecond))
}
