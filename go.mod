module ldbnadapt

go 1.21
