// Command lddata inspects and exports the procedural CARLANE-style
// benchmarks: per-split statistics (the Fig. 1 composition view),
// ASCII previews of individual samples, and PPM image export for
// offline viewing.
//
//	lddata -bench MoLane -profile small            # split statistics
//	lddata -bench TuLane -show 3                   # ASCII preview of sample 3
//	lddata -bench MuLane -export /tmp/mulane -n 8  # write 8 PPM images
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/cli"
	"ldbnadapt/internal/ufld"
	"ldbnadapt/internal/viz"
)

func main() {
	bench := flag.String("bench", "MoLane", "benchmark: MoLane|TuLane|MuLane")
	profile := flag.String("profile", "small", "config profile: tiny|small|repro")
	split := flag.String("split", "target-val", "split: source-train|source-val|target-train|target-val")
	show := flag.Int("show", -1, "print an ASCII preview of this sample index")
	export := flag.String("export", "", "directory to write PPM images into")
	n := flag.Int("n", 4, "number of images to export")
	seed := flag.Uint64("seed", 1, "generation seed")
	flag.Parse()

	name, err := cli.ParseBenchmark(*bench)
	if err != nil {
		fatal(err)
	}
	cfgFor, err := cli.ParseProfile(*profile)
	if err != nil {
		fatal(err)
	}
	b := carlane.Build(name, 18, cfgFor, carlane.DefaultSizes(), *seed)

	var ds *ufld.Dataset
	switch *split {
	case "source-train":
		ds = b.SourceTrain
	case "source-val":
		ds = b.SourceVal
	case "target-train":
		ds = b.TargetTrain
	case "target-val":
		ds = b.TargetVal
	default:
		fatal(fmt.Errorf("unknown split %q", *split))
	}

	carlane.WriteBenchmarkTable(os.Stdout, b)

	if *show >= 0 {
		if *show >= ds.Len() {
			fatal(fmt.Errorf("sample %d out of range (split has %d)", *show, ds.Len()))
		}
		s := ds.Samples[*show]
		fmt.Printf("\nsample %d of %s (o = ground-truth lane points):\n", *show, ds.Name)
		fmt.Print(viz.ASCII(b.Cfg, s.Image, s.Cells, nil, 16, 72))
	}

	if *export != "" {
		if err := os.MkdirAll(*export, 0o755); err != nil {
			fatal(err)
		}
		count := *n
		if count > ds.Len() {
			count = ds.Len()
		}
		for i := 0; i < count; i++ {
			s := ds.Samples[i]
			img := viz.Overlay(b.Cfg, s.Image, s.Cells, nil)
			path := filepath.Join(*export, fmt.Sprintf("%s_%03d.ppm", *split, i))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := viz.WritePPM(f, img); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("\nwrote %d PPM images to %s\n", count, *export)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lddata:", err)
	os.Exit(1)
}
