// Command ldserve runs the multi-stream batched serving engine over a
// synthetic camera fleet: N streams with independent domain drift are
// multiplexed onto shared-weight worker replicas with dynamic
// batching and per-stream LD-BN-ADAPT, and the run is reported per
// stream (throughput, priced p50/p99 latency, deadline-miss rate,
// online accuracy).
//
//	ldserve -streams 8 -frames 48 -maxbatch 8 -adapt-every 4
//	ldserve -streams 8 -weights molane_r18.ldp -naive
//	ldserve -streams 6 -watts 15 -workers 1 -policy drop-frames
//	ldserve -streams 4 -fps 30 -fps-alt 15 -policy skip-adapt
//	ldserve -streams 4 -govern hysteresis -power-budget 50 -epoch-ms 500
//	ldserve -streams 4 -govern predictive -forecast holt
//	ldserve -streams 8 -boards 4 -workers 1 -govern hysteresis -placement bin-pack -migrate
//	ldserve -streams 12 -boards 4 -workers 1 -govern predictive -migrate -consolidate
//	ldserve -streams 8 -boards 4 -workers 1 -ckpt-every 2 -chaos kill:hot@8
//	ldserve -streams 8 -boards 4 -workers 1 -chaos join@4,drain:0@6 -ckpt-dir /tmp/ckpts
//	ldserve -streams 256 -frames 4 -fps 4 -boards 64 -workers 1 -groups 16 -shared-scenes -admit queue
//
// Latency accounting runs on an event-time virtual clock: each frame's
// latency is its measured queue wait behind earlier work plus its
// amortized batched-forward and adaptation shares, so overload
// scenarios (low -watts, -workers 1, many streams) show real queue
// growth. -policy picks what an overloaded fleet sheds — drop-none
// (queues grow unbounded), skip-adapt (adaptation steps shed under
// pressure), drop-frames (stale frames shed, waits stay within
// -backlog camera periods) — and -fps-alt gives odd-numbered streams a
// second camera rate for mixed-FPS fleets.
//
// -govern closes the loop: instead of holding -watts for the whole
// run, a governor (internal/govern: static|hysteresis|predictive|
// oracle) observes each -epoch-ms control epoch's telemetry and
// actuates the power mode, overload policy and adaptation cadence for
// the next, keeping modes within -power-budget. The report then
// includes energy (busy + static draw) and the per-epoch mode trace.
// Every stream feeds a -forecast arrival-rate model (internal/
// forecast: naive|ewma|holt) whose next-epoch predictions ride in the
// telemetry; the predictive governor pre-climbs the ladder on them.
//
// -quantized starts every board on the int8 inference rung: batched
// forwards run symmetric per-channel int8 (internal/nn InferInt8 mode)
// and are priced by the Orin's int8 tensor-core rate, trading a
// bounded accuracy cost for roughly 2.4× cheaper forwards. The
// closed-loop governors also climb to this rung on their own — after
// stretching the adaptation cadence, before shedding work — so the
// flag mainly pins the rung for static runs and A/B comparisons.
//
// -boards shards the fleet across N boards (internal/shard), each a
// full engine with its own governor: -placement picks the initial
// stream→board assignment (round-robin, least-loaded LPT, or bin-pack
// to a fill target) over admission-epoch forecast loads, and -migrate
// lets the coordinator shed the hottest streams (by forecast) off a
// board that cannot serve its predicted demand even at its top
// affordable rung, carrying each stream's adaptation state and
// forecaster to the destination board. -consolidate adds the reverse
// path: when the forecast fleet load fits on fewer boards, the
// coordinator drains the coldest board (coldest streams first) so its
// rail sleeps until migration needs it again.
//
// At fleet scale the coordinator runs hierarchically: -groups
// partitions the boards into placement groups (migration,
// consolidation and failover score within a group; a top-level placer
// rebalances streams across groups on aggregated forecast load),
// -admit gates streams that come online mid-run behind a
// forecast-headroom check (queue waits for headroom, shed rejects
// outright; -admit-util and -admit-queue tune the ceiling and the
// waiting-room cap), and -shared-scenes renders one scene set shared
// by every stream with phase-shifted arrivals so generating a
// four-digit-stream fleet costs O(frames), not O(streams × frames).
// The fleet report then ends with the coordinator-overhead line:
// fleet epochs stepped, the step rate, and the share of wall time the
// board actors spent waiting on coordinator boundary work.
//
// -chaos injects a seeded membership plan ("kind[:target]@epoch" items,
// comma-separated: kill:hot@8, kill:2@5, drain:0@6, join@4) to
// exercise the fault-tolerance path: a killed board's streams re-admit
// onto survivors from their latest checkpoints, a drained board
// evacuates its streams live before retiring, and a join adds a fresh
// board the coordinator can migrate onto. -ckpt-every sets the
// checkpoint cadence in epochs (defaults to every epoch under -chaos)
// and -ckpt-dir persists checkpoints as files instead of in memory.
//
// Flag ↔ paper mapping (Fig. 3 deployment settings): -model and -watts
// select the Fig. 3 row (backbone × power mode); -deadline-fps 30|18
// selects the deadline column; -adapt-every is the adaptation batch
// size bs of the Fig. 2/3 sweep (its cost amortization); -maxbatch,
// -window, -policy and -backlog are the serving extensions this engine
// adds on top of the paper's single-camera deployment, and -govern
// takes the paper's offline power-mode analysis online.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/cli"
	"ldbnadapt/internal/forecast"
	"ldbnadapt/internal/govern"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/obs"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/shard"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ldserve:", err)
	os.Exit(1)
}

func main() {
	streams := flag.Int("streams", 8, "number of simulated camera streams")
	frames := flag.Int("frames", 48, "frames per stream")
	fps := flag.Float64("fps", 30, "camera rate per stream")
	fpsAlt := flag.Float64("fps-alt", 0, "camera rate for odd-numbered streams (0 = same as -fps; mixed-FPS fleet)")
	policyName := flag.String("policy", "drop-none", "overload policy: drop-none|skip-adapt|drop-frames")
	backlog := flag.Int("backlog", 1, "per-stream backlog cap in camera periods before the policy sheds work")
	model := flag.String("model", "R-18", "backbone: R-18|R-34")
	profile := flag.String("profile", "tiny", "config profile: tiny|small|repro")
	lanes := flag.Int("lanes", 2, "lane count: 2 (MoLane-style fleet) or 4 (mixed TuLane/MoLane fleet)")
	watts := flag.Int("watts", 60, "Orin power mode: 15|30|50|60")
	deadlineFPS := flag.Float64("deadline-fps", 30, "frame-rate deadline (30 or 18 in the paper)")
	maxBatch := flag.Int("maxbatch", 8, "dynamic batching cap")
	windowMs := flag.Float64("window", 2, "batching window in ms")
	workers := flag.Int("workers", 0, "worker replicas (0 = GOMAXPROCS)")
	adaptEvery := flag.Int("adapt-every", 4, "LD-BN-ADAPT step per stream every N frames (0 = no adaptation)")
	adaptBatch := flag.Int("adapt-batch", 1, "frames per adaptation step")
	epochs := flag.Int("epochs", 5, "source pre-training epochs (ignored with -weights)")
	weights := flag.String("weights", "", "optional weights file from ldtrain")
	naive := flag.Bool("naive", false, "also run the unbatched one-goroutine-per-stream baseline")
	governName := flag.String("govern", "", "closed-loop governor: static|hysteresis|predictive|oracle (empty = one-shot run at -watts)")
	powerBudget := flag.Int("power-budget", 0, "governor power budget in watts (0 = unconstrained)")
	epochMs := flag.Float64("epoch-ms", 500, "governor control-epoch length in virtual ms")
	boards := flag.Int("boards", 1, "number of Orin boards; >1 shards the fleet (internal/shard), -workers becomes per-board")
	placementName := flag.String("placement", "least-loaded", "stream→board placement for -boards >1: round-robin|least-loaded|bin-pack")
	migrate := flag.Bool("migrate", false, "migrate the hottest stream off a saturated board at epoch boundaries (-boards >1)")
	consolidate := flag.Bool("consolidate", false, "drain the coldest board during forecast lulls so its rail sleeps (-boards >1, needs -migrate to reopen boards)")
	groups := flag.Int("groups", 0, "placement-group size for -boards >1: migration/consolidation/failover score within groups of this many boards, a top-level placer rebalances across them (0 = internal/shard default)")
	admitName := flag.String("admit", "", "admission gate for streams that come online mid-run (-boards >1): queue (wait for forecast headroom) or shed (reject on arrival without headroom); empty places every stream up front")
	admitUtil := flag.Float64("admit-util", 0, "forecast-utilization ceiling the admission gate fills boards to (0 = the migration headroom gate)")
	admitQueue := flag.Int("admit-queue", 0, "cap on streams waiting at the admission gate; overflow is shed (0 = unbounded, -admit queue only)")
	sharedScenes := flag.Bool("shared-scenes", false, "render one scene set shared by every stream with phase-shifted arrivals — O(frames) setup for fleet-scale runs instead of O(streams x frames)")
	lockstep := flag.Bool("lockstep", false, "step boards serially through the coordinator instead of concurrently (the equivalence-pin reference execution, not a production mode)")
	forecastName := flag.String("forecast", "holt", "per-stream arrival-rate forecaster: naive|ewma|holt")
	quantized := flag.Bool("quantized", false, "start every board on the int8 inference rung (symmetric per-channel weights, per-sample activation scales); closed-loop governors also reach this rung on their own under saturation")
	chaos := flag.String("chaos", "", "seeded membership plan, e.g. kill:hot@8,join@10,drain:0@12 (-boards >1)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint every stream every N epochs (0 = only under -chaos, then every epoch)")
	ckptDir := flag.String("ckpt-dir", "", "persist stream checkpoints under this directory (default: in-memory store)")
	seed := flag.Uint64("seed", 1, "seed for fleet generation and pre-training")
	traceOut := flag.String("trace-out", "", "write the run's event-time trace as Chrome trace-event JSON (load in Perfetto / chrome://tracing); byte-identical across same-seed reruns")
	metricsOut := flag.String("metrics-out", "", "write a text dump of the fleet metrics registry (counters, gauges, histograms)")
	epochCSV := flag.String("epoch-csv", "", "write the per-board epoch timeline as CSV")
	flag.Parse()

	variant, err := cli.ParseVariant(*model)
	if err != nil {
		fail(err)
	}
	cfgFor, err := cli.ParseProfile(*profile)
	if err != nil {
		fail(err)
	}
	mode, err := orin.ModeByWatts(*watts)
	if err != nil {
		fail(err)
	}
	if *lanes != 2 && *lanes != 4 {
		fail(fmt.Errorf("lanes must be 2 or 4, got %d", *lanes))
	}
	policy, err := stream.ParsePolicy(*policyName)
	if err != nil {
		fail(err)
	}
	if *boards > 1 && *naive {
		fail(fmt.Errorf("-naive is a single-board comparison; drop it or use -boards 1"))
	}
	if *consolidate && *boards <= 1 {
		fail(fmt.Errorf("-consolidate needs a fleet; use -boards >1"))
	}
	if *consolidate && !*migrate {
		fail(fmt.Errorf("-consolidate needs -migrate: drained boards reopen only by migration"))
	}
	if (*chaos != "" || *ckptEvery > 0 || *ckptDir != "") && *boards <= 1 {
		fail(fmt.Errorf("-chaos, -ckpt-every and -ckpt-dir need a fleet; use -boards >1"))
	}
	if (*groups > 0 || *admitName != "" || *lockstep) && *boards <= 1 {
		fail(fmt.Errorf("-groups, -admit and -lockstep need a fleet; use -boards >1"))
	}
	if *admitName != "" && *admitName != "queue" && *admitName != "shed" {
		fail(fmt.Errorf("unknown admission policy %q: want queue or shed", *admitName))
	}
	if (*admitUtil > 0 || *admitQueue > 0) && *admitName == "" {
		fail(fmt.Errorf("-admit-util and -admit-queue tune the gate; enable it with -admit queue|shed"))
	}
	if *sharedScenes && *fpsAlt > 0 {
		fail(fmt.Errorf("-shared-scenes phase-shifts one schedule and cannot mix rates; drop -fps-alt"))
	}
	var plan *shard.FailurePlan
	if *chaos != "" {
		p, err := shard.ParsePlan(*chaos)
		if err != nil {
			fail(err)
		}
		plan = p
	}
	var ckpts serve.CheckpointStore
	if *ckptDir != "" {
		s, err := serve.NewFileCheckpoints(*ckptDir)
		if err != nil {
			fail(err)
		}
		ckpts = s
		if *ckptEvery <= 0 {
			*ckptEvery = 1
		}
	}
	forecaster, err := forecast.ByName(*forecastName)
	if err != nil {
		fail(err)
	}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}

	cfg := cfgFor(variant, *lanes)
	rng := tensor.NewRNG(*seed)
	m := ufld.MustNewModel(cfg, rng)
	if *weights != "" {
		f, err := os.Open(*weights)
		if err != nil {
			fail(err)
		}
		extras, err := nn.LoadParams(f, m.Params())
		f.Close()
		if err != nil {
			fail(err)
		}
		if err := m.ApplyBNStateExtras(extras); err != nil {
			fail(err)
		}
	} else {
		layout := carlane.Ego2
		if *lanes == 4 {
			layout = carlane.Quad4
		}
		src := carlane.Generate(cfg, carlane.SplitSpec{
			Name:    "ldserve/source-train",
			Layouts: []carlane.Layout{layout},
			Domains: []carlane.Domain{carlane.Sim},
			N:       80,
			Seed:    *seed + 1000,
		})
		tc := ufld.DefaultTrainConfig()
		tc.Epochs = *epochs
		fmt.Fprintln(os.Stderr, "pre-training on simulator source...")
		if _, err := ufld.TrainSource(m, src, tc, rng.Split()); err != nil {
			fail(err)
		}
	}

	var fleet []*stream.Source
	if *sharedScenes {
		fleet = serve.SyntheticFleetShared(cfg, *streams, *frames, *fps, *seed+2000)
	} else {
		rates := []float64{*fps}
		if *fpsAlt > 0 {
			rates = append(rates, *fpsAlt)
		}
		fleet = serve.SyntheticFleetRates(cfg, *streams, *frames, rates, *seed+2000)
	}
	scfg := serve.Config{
		Variant:    variant,
		Workers:    *workers,
		MaxBatch:   *maxBatch,
		Window:     time.Duration(*windowMs * float64(time.Millisecond)),
		AdaptEvery: *adaptEvery,
		AdaptBatch: *adaptBatch,
		Adapt:      adapt.DefaultConfig(),
		Mode:       mode,
		DeadlineMs: 1000.0 / *deadlineFPS,
		Policy:     policy,
		Backlog:    *backlog,
		Forecast:   forecaster,
		Quantized:  *quantized,
	}

	if *boards > 1 {
		placement, err := shard.ParsePlacement(*placementName)
		if err != nil {
			fail(err)
		}
		var adm *shard.Admission
		if *admitName != "" {
			adm = &shard.Admission{MaxUtil: *admitUtil, Queue: *admitQueue, Shed: *admitName == "shed"}
		}
		f, err := shard.New(m, shard.Config{
			Boards:          *boards,
			Board:           scfg,
			Placement:       placement,
			Governor:        *governName,
			BudgetW:         *powerBudget,
			EpochMs:         *epochMs,
			Migrate:         *migrate,
			Consolidate:     *consolidate,
			GroupSize:       *groups,
			Admission:       adm,
			Lockstep:        *lockstep,
			Plan:            plan,
			CheckpointEvery: *ckptEvery,
			Checkpoints:     ckpts,
			Trace:           tr,
			Metrics:         reg,
		})
		if err != nil {
			fail(err)
		}
		rep := f.Run(fleet)
		printFleetReport(rep, *governName, placement.Name())
		writeObsOutputs(tr, reg, *traceOut, *metricsOut)
		if *epochCSV != "" {
			var rows []obs.EpochRow
			for _, br := range rep.Boards {
				rows = append(rows, epochRows(br.Board, br.Report.Epochs)...)
			}
			writeEpochCSV(*epochCSV, rows)
		}
		return
	}

	e := serve.New(m, scfg)
	// A single-board run traces as board 0 (local stream ids are the
	// fleet ids); nil trace/registry make this exactly the old path.
	rec := tr.Recorder(0, nil)
	bm := obs.NewBoardMetrics(reg)
	var rep serve.Report
	label := "batched engine"
	if *governName != "" {
		ctl, err := govern.ByName(*governName, *powerBudget)
		if err != nil {
			fail(err)
		}
		rep = e.RunObserved(fleet, *epochMs, ctl, rec, bm)
		label = fmt.Sprintf("governed engine (%s)", ctl.Name())
	} else {
		rep = e.RunObserved(fleet, 0, nil, rec, bm)
	}
	printReport(label, rep)
	if *governName != "" {
		printEpochTrace(rep)
	}
	writeObsOutputs(tr, reg, *traceOut, *metricsOut)
	if *epochCSV != "" {
		writeEpochCSV(*epochCSV, epochRows(0, rep.Epochs))
	}

	if *naive {
		// The unbatched baseline adapts on every frame (the paper's
		// bs=1 loop) when the engine adapts at all, and not at all when
		// adaptation is disabled, so the ratio compares like with like.
		// It shares the engine's Config — only the fields RunNaive
		// honors differ — so a field added to the engine configuration
		// cannot silently skew the comparison.
		ncfg := scfg
		ncfg.AdaptEvery = 0
		if *adaptEvery > 0 {
			ncfg.AdaptEvery = 1
		}
		nrep := serve.RunNaive(m, ncfg, fleet)
		fmt.Println()
		printReport("naive baseline", nrep)
		if nrep.ThroughputFPS > 0 {
			naiveDesc := "no adaptation"
			if ncfg.AdaptEvery > 0 {
				naiveDesc = "adapt every frame"
			}
			fmt.Printf("\nbatched (maxbatch %d, adapt every %d) vs naive (unbatched, %s): %.2fx throughput\n",
				*maxBatch, *adaptEvery, naiveDesc, rep.ThroughputFPS/nrep.ThroughputFPS)
		}
	}
}

// writeObsOutputs writes the trace and metrics files a run asked for;
// nil trace/registry (flags unset) write nothing.
func writeObsOutputs(tr *obs.Trace, reg *obs.Registry, traceOut, metricsOut string) {
	if tr != nil && traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fail(err)
		}
		if err := tr.WriteChromeJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if reg != nil && metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fail(err)
		}
		if err := reg.WriteText(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

// epochRows flattens one board's governed epoch trace into exporter
// rows.
func epochRows(board int, eps []serve.EpochStats) []obs.EpochRow {
	rows := make([]obs.EpochRow, 0, len(eps))
	for _, es := range eps {
		rows = append(rows, obs.EpochRow{
			Board:      board,
			Epoch:      es.Epoch,
			StartMs:    es.StartMs,
			EndMs:      es.EndMs,
			Mode:       es.Controls.Mode.Name,
			Policy:     es.Controls.Policy.String(),
			AdaptEvery: es.Controls.AdaptEvery,
			Quantized:  es.Controls.Quantized,
			Arrived:    es.Arrived,
			Forecast:   es.ForecastArrived,
			Served:     es.Served,
			Dropped:    es.FramesDropped,
			Skipped:    es.AdaptsSkipped,
			Queue:      es.QueueDepth,
			HitRate:    es.DeadlineHitRate,
			Util:       es.Utilization,
			EnergyMJ:   es.EnergyMJ,
		})
	}
	return rows
}

// writeEpochCSV writes the epoch timeline rows to path.
func writeEpochCSV(path string, rows []obs.EpochRow) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := obs.WriteEpochCSV(f, rows); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

// printFleetReport renders a sharded run: per-board totals, per-stream
// placement outcomes, and the migration trace.
func printFleetReport(rep shard.Report, govern, placement string) {
	if govern == "" {
		govern = "static"
	}
	fmt.Printf("sharded fleet (%d boards, %s placement, %s governors): %d frames, hit rate %s\n",
		len(rep.Boards), placement, govern, rep.Frames, metrics.FormatPct(rep.HitRate))
	tb := metrics.NewTable("board", "group", "streams", "frames", "hit rate", "p99 ms", "energy J",
		"mig in", "mig out", "epochs")
	for _, br := range rep.Boards {
		hit, p99 := "-", "-"
		if br.Report.Frames > 0 {
			hit = metrics.FormatPct(1 - br.Report.MissRate)
			p99 = fmt.Sprintf("%.1f", br.Report.P99LatencyMs)
		}
		life := "all"
		if br.JoinEpoch > 0 || br.LeaveEpoch >= 0 {
			end := "-"
			if br.LeaveEpoch >= 0 {
				end = fmt.Sprintf("%d", br.LeaveEpoch)
			}
			life = fmt.Sprintf("%d..%s", br.JoinEpoch, end)
		}
		tb.AddRow(fmt.Sprintf("#%d", br.Board), br.Group, len(br.Globals), br.Report.Frames,
			hit, p99,
			fmt.Sprintf("%.1f", br.Report.EnergyMJ/1e3),
			br.MigratedIn, br.MigratedOut, life)
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	st := metrics.NewTable("stream", "frames", "miss rate", "adapt steps", "boards")
	for _, ss := range rep.Streams {
		st.AddRow(fmt.Sprintf("#%02d", ss.Stream), ss.Frames, metrics.FormatPct(ss.MissRate),
			ss.AdaptSteps, ss.Boards)
	}
	fmt.Println()
	if _, err := st.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	for _, mg := range rep.Migrations {
		note := ""
		if mg.Drained {
			note = " (board drained)"
		}
		fmt.Printf("migration: epoch %d stream %d board %d -> %d [%s]%s\n", mg.Epoch, mg.Stream, mg.From, mg.To, mg.Reason, note)
	}
	for _, ev := range rep.Events {
		switch ev.Kind {
		case shard.Kill:
			fmt.Printf("event: epoch %d killed board %d — %d streams re-admitted (%d from checkpoints, %d cold), %d queued frames lost\n",
				ev.Epoch, ev.Board, ev.Streams, ev.Recovered, ev.Cold, ev.LostFrames)
		case shard.Drain:
			fmt.Printf("event: epoch %d draining board %d — %d streams evacuated live\n", ev.Epoch, ev.Board, ev.Streams)
		case shard.Join:
			fmt.Printf("event: epoch %d board %d joined the fleet\n", ev.Epoch, ev.Board)
		}
	}
	for _, ar := range rep.Admissions {
		if ar.Rejected {
			fmt.Printf("admission: epoch %d stream %d shed after %d epochs at the gate — %d frames lost\n",
				ar.Epoch, ar.Stream, ar.Waited, ar.DroppedFrames)
		} else {
			fmt.Printf("admission: epoch %d stream %d -> board %d (waited %d epochs, %d frames lost at the gate)\n",
				ar.Epoch, ar.Stream, ar.Board, ar.Waited, ar.DroppedFrames)
		}
	}
	if rep.Checkpoints > 0 || rep.CheckpointErrors > 0 {
		fmt.Printf("checkpoints: %d written, %d errors\n", rep.Checkpoints, rep.CheckpointErrors)
	}
	if rep.WallSeconds > 0 {
		fmt.Printf("coordinator: %d fleet epochs, %.1f steps/s, %s of wall time at the boundary\n",
			rep.FleetEpochs, float64(rep.FleetEpochs)/rep.WallSeconds,
			metrics.FormatPct(rep.CoordSeconds/rep.WallSeconds))
	}
	fmt.Printf("fleet energy: %.1f J total (%.1f J busy + %.1f J static), %.3f J/frame, %.1f worker-s stranded\n",
		rep.EnergyMJ/1e3, rep.BusyEnergyMJ/1e3, rep.IdleEnergyMJ/1e3, rep.JPerFrame, rep.StrandedMs/1e3)
}

// printReport renders one run as a per-stream table plus totals.
func printReport(label string, rep serve.Report) {
	fmt.Printf("%s: %d frames, %.1f frames/s host throughput, mean batch %.2f, %.2f s virtual\n",
		label, rep.Frames, rep.ThroughputFPS, rep.MeanBatch, rep.VirtualSeconds)
	tb := metrics.NewTable("stream", "frames", "online acc", "p50 ms", "p99 ms", "queue ms", "miss rate", "adapt steps", "dropped", "skipped")
	for _, sr := range rep.Streams {
		tb.AddRow(fmt.Sprintf("#%02d", sr.Stream), sr.Frames, metrics.FormatPct(sr.OnlineAccuracy),
			fmt.Sprintf("%.1f", sr.P50LatencyMs), fmt.Sprintf("%.1f", sr.P99LatencyMs),
			fmt.Sprintf("%.1f", sr.MeanQueueMs), metrics.FormatPct(sr.MissRate),
			sr.AdaptSteps, sr.FramesDropped, sr.AdaptsSkipped)
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	fmt.Printf("fleet: accuracy %s, p50 %.1f ms, p99 %.1f ms, mean queue %.1f ms, miss rate %s",
		metrics.FormatPct(rep.OnlineAccuracy), rep.P50LatencyMs, rep.P99LatencyMs,
		rep.MeanQueueMs, metrics.FormatPct(rep.MissRate))
	if rep.FramesDropped > 0 || rep.AdaptsSkipped > 0 {
		fmt.Printf(", %d frames dropped, %d adapts skipped", rep.FramesDropped, rep.AdaptsSkipped)
	}
	fmt.Println()
	fmt.Printf("energy: %.1f J total (%.1f J busy + %.1f J static), %.3f J/frame\n",
		rep.EnergyMJ/1e3, rep.BusyEnergyMJ/1e3, rep.IdleEnergyMJ/1e3, rep.JPerFrame)
}

// printEpochTrace renders the governor's actuation trace, one line per
// control epoch.
func printEpochTrace(rep serve.Report) {
	fmt.Println("\nepoch trace:")
	tb := metrics.NewTable("epoch", "mode", "policy", "adapt", "prec", "arrived", "forecast", "served", "backlog",
		"hit rate", "util", "energy J")
	for _, es := range rep.Epochs {
		prec := "fp32"
		if es.Controls.Quantized {
			prec = "int8"
		}
		tb.AddRow(es.Epoch, es.Controls.Mode.Name, es.Controls.Policy.String(), es.Controls.AdaptEvery, prec,
			es.Arrived, fmt.Sprintf("%.1f", es.ForecastArrived), es.Served, es.QueueDepth,
			metrics.FormatPct(es.DeadlineHitRate),
			fmt.Sprintf("%.2f", es.Utilization), fmt.Sprintf("%.1f", es.EnergyMJ/1e3))
	}
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
