// Command ldbench regenerates every figure and quantitative claim of
// the paper:
//
//	ldbench -exp fig1              benchmark composition (Fig. 1)
//	ldbench -exp fig2              accuracy grid (Fig. 2) — trains models
//	ldbench -exp fig3              Orin latency vs power mode (Fig. 3)
//	ldbench -exp sotacost          §II claim: SOTA epoch > 1 h on Orin
//	ldbench -exp ablation          §III claim: BN beats conv/FC adaptation
//	ldbench -exp all               everything
//
// The -profile flag selects the scale: "quick" finishes in minutes on
// one core, "full" is the profile recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ldbnadapt/internal/cli"
	"ldbnadapt/internal/experiments"
	"ldbnadapt/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|fig2|fig3|sotacost|ablation|momentum|all")
	profile := flag.String("profile", "quick", "scale profile: quick|medium|full")
	benches := flag.String("benchmarks", "MoLane,TuLane,MuLane", "comma-separated benchmark subset for fig2")
	models := flag.String("models", "R-18,R-34", "comma-separated backbone subset for fig2/ablation")
	seed := flag.Uint64("seed", 1, "experiment seed")
	verbose := flag.Bool("v", true, "log progress")
	flag.Parse()

	var p experiments.Profile
	switch *profile {
	case "quick":
		p = experiments.Quick()
	case "medium":
		p = experiments.Medium()
	case "full":
		p = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "ldbench: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	p.Seed = *seed

	var log *os.File
	if *verbose {
		log = os.Stderr
	}

	benchNames, err := cli.ParseBenchmarks(*benches)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldbench:", err)
		os.Exit(2)
	}
	variants, err := cli.ParseVariants(*models)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldbench:", err)
		os.Exit(2)
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	start := time.Now()

	if run("fig1") {
		fmt.Printf("=== FIG1: CARLANE-style benchmark composition (profile %s) ===\n", p.Name)
		experiments.RunFig1(p, os.Stdout)
	}
	if run("fig3") {
		fmt.Println("=== FIG3: latency on Jetson Orin per power mode (LD-BN-ADAPT, bs=1, full-scale models) ===")
		experiments.WriteFig3(os.Stdout, 4)
		fmt.Println()
	}
	if run("sotacost") {
		fmt.Println("=== SOTACOST: CARLANE SOTA adaptation cost on Orin (paper §II: >1 h/epoch) ===")
		experiments.WriteSOTACost(os.Stdout, 4)
		fmt.Println()
	}
	if run("fig2") {
		fmt.Printf("=== FIG2: lane-detection accuracy (profile %s) ===\n", p.Name)
		res, err := experiments.RunFig2(p, benchNames, variants, log)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: fig2: %v\n", err)
			os.Exit(1)
		}
		res.WriteTable(os.Stdout)
		for _, method := range []string{"NoAdapt", "CARLANE-SOTA", "LD-BN-ADAPT"} {
			best := res.BestPerBenchmark(method)
			var vals []float64
			var parts []string
			for _, bn := range benchNames {
				if v, ok := best[string(bn)]; ok {
					vals = append(vals, v)
					parts = append(parts, fmt.Sprintf("%s %s", bn, metrics.FormatPct(v)))
				}
			}
			if len(vals) > 0 {
				fmt.Printf("best %-14s %s (avg %s)\n", method, strings.Join(parts, ", "),
					metrics.FormatPct(metrics.Mean(vals)))
			}
		}
		fmt.Println()
	}
	if run("momentum") {
		fmt.Printf("=== MOMENTUM: BN statistics EMA ablation on MoLane (profile %s) ===\n", p.Name)
		cells, err := experiments.RunMomentumAblation(p, variants[0], log)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldbench: momentum:", err)
			os.Exit(1)
		}
		experiments.WriteMomentumAblation(os.Stdout, cells)
		fmt.Println()
	}
	if run("ablation") {
		fmt.Printf("=== ABLATION: adapted-parameter-set comparison on MoLane (profile %s) ===\n", p.Name)
		cells, err := experiments.RunAblation(p, variants[0], log)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: ablation: %v\n", err)
			os.Exit(1)
		}
		experiments.WriteAblation(os.Stdout, cells)
		fmt.Println()
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Second))
}
