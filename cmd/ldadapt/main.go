// Command ldadapt runs an unsupervised adaptation method over the
// unlabeled target stream of a CARLANE-style benchmark, starting from
// weights produced by cmd/ldtrain, and reports target accuracy before
// and after.
//
//	ldadapt -bench MoLane -model R-18 -profile small -weights molane_r18.ldp -method bn -bs 1
//
// Methods: bn (LD-BN-ADAPT, the paper's), conv, fc, none, sota.
package main

import (
	"flag"
	"fmt"
	"os"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/cli"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/sota"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func main() {
	bench := flag.String("bench", "MoLane", "benchmark: MoLane|TuLane|MuLane")
	model := flag.String("model", "R-18", "backbone: R-18|R-34")
	profile := flag.String("profile", "small", "config profile: tiny|small|repro")
	weights := flag.String("weights", "", "weights file from ldtrain (required)")
	method := flag.String("method", "bn", "adaptation method: bn|conv|fc|none|sota")
	bs := flag.Int("bs", 1, "adaptation batch size")
	lr := flag.Float64("lr", 0, "adaptation learning rate (0 = method default)")
	seed := flag.Uint64("seed", 1, "seed (must match ldtrain for identical data)")
	flag.Parse()

	if *weights == "" {
		fmt.Fprintln(os.Stderr, "ldadapt: -weights is required")
		os.Exit(2)
	}
	name, err := cli.ParseBenchmark(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldadapt:", err)
		os.Exit(2)
	}
	variant, err := cli.ParseVariant(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldadapt:", err)
		os.Exit(2)
	}
	cfgFor, err := cli.ParseProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldadapt:", err)
		os.Exit(2)
	}

	b := carlane.Build(name, variant, cfgFor, carlane.DefaultSizes(), *seed)
	m := ufld.MustNewModel(b.Cfg, tensor.NewRNG(1))
	f, err := os.Open(*weights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldadapt:", err)
		os.Exit(1)
	}
	extras, err := nn.LoadParams(f, m.Params())
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldadapt: loading weights:", err)
		os.Exit(1)
	}
	if err := m.ApplyBNStateExtras(extras); err != nil {
		fmt.Fprintln(os.Stderr, "ldadapt:", err)
		os.Exit(1)
	}

	before := ufld.Evaluate(m, b.TargetVal, 8)
	fmt.Printf("target accuracy before adaptation: %s (entropy %.3f)\n",
		metrics.FormatPct(before.Accuracy), before.MeanEntropy)

	cfg := adapt.DefaultConfig()
	if *lr > 0 {
		cfg.LR = *lr
	}
	switch *method {
	case "sota":
		sc := sota.DefaultConfig()
		sc.Log = os.Stderr
		res, err := sota.New(m, sc).Run(b.SourceTrain, b.TargetTrain, tensor.NewRNG(*seed+8))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldadapt: sota:", err)
			os.Exit(1)
		}
		fmt.Printf("SOTA baseline: %d full fwd, %d full bwd, %d labeled source samples required\n",
			res.Cost.FullForwards, res.Cost.FullBackwards, res.Cost.LabeledSourceSamples)
	case "bn", "conv", "fc", "none":
		var meth adapt.Method
		switch *method {
		case "bn":
			meth = adapt.NewLDBNAdapt(m, cfg)
		case "conv":
			cfg.LR /= 10
			meth = adapt.NewConvAdapt(m, cfg)
		case "fc":
			cfg.LR /= 10
			meth = adapt.NewFCAdapt(m, cfg)
		case "none":
			meth = adapt.NewNoAdapt()
		}
		res := adapt.RunOnline(m, meth, b.TargetTrain, nil, *bs)
		fmt.Printf("%s: %d frames, %d adaptation steps, online accuracy %s\n",
			meth.Name(), res.Frames, meth.Steps(), metrics.FormatPct(res.OnlineAccuracy))
	default:
		fmt.Fprintf(os.Stderr, "ldadapt: unknown method %q\n", *method)
		os.Exit(2)
	}

	after := ufld.Evaluate(m, b.TargetVal, 8)
	fmt.Printf("target accuracy after adaptation:  %s (entropy %.3f)\n",
		metrics.FormatPct(after.Accuracy), after.MeanEntropy)
}
