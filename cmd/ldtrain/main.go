// Command ldtrain pre-trains a UFLD lane-detection model on the
// simulator source split of a CARLANE-style benchmark and saves the
// weights (including BatchNorm running statistics) to a file — the
// "deployment artifact" that cmd/ldadapt later adapts on device.
//
//	ldtrain -bench MoLane -model R-18 -profile small -epochs 10 -out molane_r18.ldp
package main

import (
	"flag"
	"fmt"
	"os"

	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/cli"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func main() {
	bench := flag.String("bench", "MoLane", "benchmark: MoLane|TuLane|MuLane")
	model := flag.String("model", "R-18", "backbone: R-18|R-34")
	profile := flag.String("profile", "small", "config profile: tiny|small|repro")
	epochs := flag.Int("epochs", 10, "training epochs")
	out := flag.String("out", "", "output weights file (required)")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "ldtrain: -out is required")
		os.Exit(2)
	}
	name, err := cli.ParseBenchmark(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldtrain:", err)
		os.Exit(2)
	}
	variant, err := cli.ParseVariant(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldtrain:", err)
		os.Exit(2)
	}
	cfgFor, err := cli.ParseProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldtrain:", err)
		os.Exit(2)
	}

	b := carlane.Build(name, variant, cfgFor, carlane.DefaultSizes(), *seed)
	rng := tensor.NewRNG(*seed + 1000)
	m := ufld.MustNewModel(b.Cfg, rng)
	tc := ufld.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.Log = os.Stderr
	fmt.Fprintf(os.Stderr, "training %s on %s source split (%d images, %d epochs)\n",
		variant, name, b.SourceTrain.Len(), *epochs)
	if _, err := ufld.TrainSource(m, b.SourceTrain, tc, rng.Split()); err != nil {
		fmt.Fprintln(os.Stderr, "ldtrain:", err)
		os.Exit(1)
	}
	src := ufld.Evaluate(m, b.SourceVal, 8)
	tgt := ufld.Evaluate(m, b.TargetVal, 8)
	fmt.Printf("source-val accuracy: %s\n", metrics.FormatPct(src.Accuracy))
	fmt.Printf("target-val accuracy (no adaptation): %s\n", metrics.FormatPct(tgt.Accuracy))

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldtrain:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := nn.SaveParams(f, m.Params(), m.BNStateExtras()); err != nil {
		fmt.Fprintln(os.Stderr, "ldtrain: saving:", err)
		os.Exit(1)
	}
	fmt.Printf("saved weights to %s\n", *out)
}
