// Command allocgate holds `go test -bench -benchmem` output against a
// committed allocation budget, so a regression that re-introduces
// per-frame or per-batch garbage into the steady-state serve loop
// fails CI instead of quietly eroding the allocation-free contract
// (internal/nn/README.md):
//
//	go test -run xxx -bench ServeSteadyState -benchmem -benchtime 30x . | allocgate -budget ALLOC_BUDGET
//
// The budget file is plain text, one `<benchmark-name> <max-allocs/op>`
// pair per line (# comments and blank lines ignored). Names match
// against the reported benchmark name with its -cpu suffix stripped,
// so one budget line covers every GOMAXPROCS variant. Every budgeted
// benchmark must appear on stdin — a gate that silently skips a
// missing benchmark is not a gate — and every appearance must carry an
// allocs/op column (the caller forgot -benchmem otherwise). Budgets
// are ceilings, not targets: they carry headroom above the measured
// steady state so epoch-count amortization and runner jitter do not
// flake, while an extra allocation per served frame (tens per epoch)
// still trips them.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// readBudget parses the budget file into name → max allocs/op.
func readBudget(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	budget := make(map[string]float64)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want `<benchmark> <max-allocs/op>`, got %q", path, line, text)
		}
		max, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || max < 0 {
			return nil, fmt.Errorf("%s:%d: bad allocation budget %q", path, line, fields[1])
		}
		budget[fields[0]] = max
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(budget) == 0 {
		return nil, fmt.Errorf("%s: no budget entries", path)
	}
	return budget, nil
}

// baseName strips the -cpu suffix go test appends to benchmark names
// (BenchmarkFoo-8 → BenchmarkFoo).
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// allocsPerOp extracts the allocs/op column from one benchmark line
// (ok=false when the line has none — not a result line, or -benchmem
// was forgotten).
func allocsPerOp(fields []string) (float64, bool) {
	for i := 2; i+1 < len(fields); i += 2 {
		if fields[i+1] == "allocs/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			return v, err == nil
		}
	}
	return 0, false
}

func main() {
	budgetPath := flag.String("budget", "ALLOC_BUDGET", "allocation budget file (`<benchmark> <max-allocs/op>` per line)")
	flag.Parse()

	budget, err := readBudget(*budgetPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(1)
	}

	seen := make(map[string]bool)
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not a result line (e.g. a benchmark name header)
		}
		name := baseName(fields[0])
		max, budgeted := budget[name]
		if !budgeted {
			continue
		}
		seen[name] = true
		allocs, ok := allocsPerOp(fields)
		if !ok {
			fmt.Fprintf(os.Stderr, "allocgate: %s reports no allocs/op — run the benchmark with -benchmem\n", fields[0])
			failed = true
			continue
		}
		if allocs > max {
			fmt.Fprintf(os.Stderr, "allocgate: FAIL %s: %.1f allocs/op exceeds budget %.1f\n", fields[0], allocs, max)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "allocgate: ok   %s: %.1f allocs/op within budget %.1f\n", fields[0], allocs, max)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(1)
	}
	for name := range budget {
		if !seen[name] {
			fmt.Fprintf(os.Stderr, "allocgate: budgeted benchmark %s missing from input\n", name)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
