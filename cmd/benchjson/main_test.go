package main

import "testing"

// TestParseLine covers the benchmark-line grammar: plain ns/op lines,
// -benchmem columns, and the non-result lines a `go test -bench` run
// interleaves.
func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkServeMultiStream-8   	       3	 412345678 ns/op")
	if !ok || r.Name != "BenchmarkServeMultiStream-8" || r.Iterations != 3 || r.NsPerOp != 412345678 {
		t.Fatalf("plain line parsed as %+v, %v", r, ok)
	}
	if r.GoMaxProcs != 8 {
		t.Fatalf("-cpu suffix not stamped: gomaxprocs %d, want 8", r.GoMaxProcs)
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Fatalf("plain line grew memstats: %+v", r)
	}
	r, ok = parseLine("BenchmarkMatMul-4 100 123.5 ns/op 64 B/op 2 allocs/op")
	if !ok || r.NsPerOp != 123.5 || r.BytesPerOp == nil || *r.BytesPerOp != 64 ||
		r.AllocsPerOp == nil || *r.AllocsPerOp != 2 {
		t.Fatalf("benchmem line parsed as %+v, %v", r, ok)
	}
	if r.Metrics != nil {
		t.Fatalf("benchmem line grew custom metrics: %+v", r.Metrics)
	}
	r, ok = parseLine("BenchmarkFleetScale/boards=64-8 1 9876543 ns/op 12.5 steps/s 0.031 coord-share 128 B/op 3 allocs/op")
	if !ok || r.Metrics["steps/s"] != 12.5 || r.Metrics["coord-share"] != 0.031 ||
		r.BytesPerOp == nil || *r.BytesPerOp != 128 {
		t.Fatalf("ReportMetric line parsed as %+v, %v", r, ok)
	}
	if r.GoMaxProcs != 8 {
		t.Fatalf("sub-benchmark -cpu suffix not stamped: %+v", r)
	}
	// A name without a -cpu suffix (GOMAXPROCS=1 runs omit it) leaves
	// the per-benchmark field zero rather than inventing a value.
	r, ok = parseLine("BenchmarkSingle 10 1000 ns/op")
	if !ok || r.GoMaxProcs != 0 {
		t.Fatalf("suffix-less line parsed as %+v, %v", r, ok)
	}
	for _, line := range []string{
		"ok  	ldbnadapt/internal/serve	8.731s",
		"PASS",
		"goos: linux",
		"Benchmark without numbers",
		"BenchmarkNoResult-8 notanumber 1 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("non-result line accepted: %q", line)
		}
	}
}

// TestGitSHA pins the stamp precedence: an explicit -sha wins, and the
// fallback never leaves the field empty — an unkeyed manifest is what
// this flag exists to prevent.
func TestGitSHA(t *testing.T) {
	if got := gitSHA("abc123"); got != "abc123" {
		t.Fatalf("explicit sha ignored: %q", got)
	}
	if got := gitSHA(""); got == "" {
		t.Fatal("fallback produced an empty stamp")
	}
}
