// Command benchjson converts `go test -bench` output on stdin into a
// JSON manifest (benchmark name → ns/op, B/op, allocs/op) so CI can
// archive the perf trajectory as an artifact:
//
//	go test -run xxx -bench . -benchmem -benchtime 1x ./... | benchjson -o BENCH_serve.json
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored; the -benchmem columns are optional, and any other
// value-unit pair (b.ReportMetric columns like frames/s or
// coord-share) lands in the result's metrics map. The manifest also
// records the git commit (-sha, falling back to the binary's embedded
// VCS revision), the Go version and GOMAXPROCS, so the uploaded CI
// artifacts form a comparable perf trajectory across commits and
// runners rather than an unkeyed pile of numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name with its -cpu suffix (BenchmarkFoo-8).
	Name string `json:"name"`
	// GoMaxProcs is the GOMAXPROCS the benchmark itself ran at, parsed
	// from the name's -cpu suffix (0 when the name carries none). The
	// manifest-level GoMaxProcs is benchjson's own host value, which a
	// -cpu list or a cross-machine pipe can disagree with — comparisons
	// must key on the per-benchmark value.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// Iterations is the measured iteration count (b.N).
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns (absent
	// without it).
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every b.ReportMetric column by its unit (frames/s,
	// steps/s, coord-share, …) — the benchmark-specific numbers the
	// perf trajectory actually tracks.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Manifest is the artifact schema.
type Manifest struct {
	// GitSHA keys the manifest to the commit it measured ("unknown"
	// when neither -sha nor VCS build info is available).
	GitSHA     string   `json:"git_sha"`
	GoVersion  string   `json:"go_version"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
}

// gitSHA resolves the commit stamp: an explicit flag value wins (the
// Makefile passes `git rev-parse`), then the VCS revision the Go
// toolchain embeds into built binaries, then "unknown" — `go run`
// skips VCS stamping, which is exactly when the flag matters.
func gitSHA(flagSHA string) string {
	if flagSHA != "" {
		return flagSHA
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// parseLine extracts one benchmark result, or ok=false for any other
// line. The format is: name, b.N, value-unit pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: n}
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil && p > 0 {
			r.GoMaxProcs = p
		}
	}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
	}
	return r, seen
}

func main() {
	out := flag.String("o", "BENCH_serve.json", "output manifest path")
	sha := flag.String("sha", "", "git commit SHA to stamp the manifest with (default: the binary's embedded VCS revision)")
	flag.Parse()

	man := Manifest{GitSHA: gitSHA(*sha), GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			man.Benchmarks = append(man.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(man.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(man.Benchmarks), *out)
}
