// Command tracecheck validates a Chrome trace-event JSON file as
// emitted by the observability layer (internal/obs): the file must
// parse, every complete ("X") span must nest properly within its
// (pid, tid) lane, and every async begin ("b") must be balanced by an
// async end ("e") with the same (pid, cat, id). It is the CI gate
// behind `make obs-smoke` — a trace that loads cleanly here loads in
// Perfetto.
//
//	tracecheck trace.json
//
// On success it prints a one-line summary and exits 0; any violation
// is reported and the exit status is nonzero.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// traceEvent is the subset of the Chrome trace-event schema the
// checker cares about.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Cat  string  `json:"cat"`
	ID   string  `json:"id"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) != 2 {
		fail("usage: tracecheck <trace.json>")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		fail("%s does not parse as Chrome trace JSON: %v", os.Args[1], err)
	}
	if len(tf.TraceEvents) == 0 {
		fail("%s holds no trace events", os.Args[1])
	}

	counts := map[string]int{}
	var spans []traceEvent
	// pid/cat/id -> open async intervals.
	type asyncKey struct {
		pid     int
		cat, id string
	}
	open := map[asyncKey]int{}
	for _, ev := range tf.TraceEvents {
		counts[ev.Ph]++
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				fail("span %q at ts=%v has negative duration %v", ev.Name, ev.Ts, ev.Dur)
			}
			spans = append(spans, ev)
		case "b":
			open[asyncKey{ev.Pid, ev.Cat, ev.ID}]++
		case "e":
			k := asyncKey{ev.Pid, ev.Cat, ev.ID}
			if open[k] == 0 {
				fail("async end for pid=%d cat=%q id=%s at ts=%v has no matching begin", ev.Pid, ev.Cat, ev.ID, ev.Ts)
			}
			open[k]--
		case "i", "M":
			// instants and metadata carry no pairing invariant
		default:
			fail("unexpected event phase %q (name %q)", ev.Ph, ev.Name)
		}
	}
	for k, n := range open {
		if n != 0 {
			fail("pid=%d cat=%q id=%s left %d async intervals open", k.pid, k.cat, k.id, n)
		}
	}

	// Complete spans must nest within each (pid, tid) lane: sorted by
	// start (longer span first on ties), every span either follows the
	// enclosing span's interior or begins after it ends. The epsilon
	// absorbs the exporter's fixed 3-decimal-µs rounding.
	const eps = 0.002
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		return a.Dur > b.Dur
	})
	var stack []traceEvent
	lanePid, laneTid := -1, -1
	for _, ev := range spans {
		if ev.Pid != lanePid || ev.Tid != laneTid {
			stack = stack[:0]
			lanePid, laneTid = ev.Pid, ev.Tid
		}
		for len(stack) > 0 && ev.Ts >= stack[len(stack)-1].Ts+stack[len(stack)-1].Dur-eps {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if ev.Ts+ev.Dur > top.Ts+top.Dur+eps {
				fail("span %q [%v, %v] on pid=%d tid=%d overlaps %q [%v, %v] without nesting",
					ev.Name, ev.Ts, ev.Ts+ev.Dur, ev.Pid, ev.Tid, top.Name, top.Ts, top.Ts+top.Dur)
			}
		}
		stack = append(stack, ev)
	}

	fmt.Printf("tracecheck: %s ok — %d events (%d spans, %d/%d async begin/end, %d instants, %d metadata)\n",
		os.Args[1], len(tf.TraceEvents), counts["X"], counts["b"], counts["e"], counts["i"], counts["M"])
}
