// Benchmark harness: one testing.B benchmark per paper artifact.
//
//	Fig. 1 — BenchmarkFig1DatasetGeneration (benchmark synthesis)
//	Fig. 2 — BenchmarkFig2* (inference, adaptation step per batch size,
//	         SOTA baseline epoch — the work units behind the accuracy grid;
//	         regenerate the accuracies themselves with `ldbench -exp fig2`)
//	Fig. 3 — BenchmarkFig3* (per-frame deployment cost of both backbones,
//	         plus the analytic Orin pricing itself)
//	§II    — BenchmarkSOTACostModel (epoch-cost claim)
//	§III   — BenchmarkAblation* (conv/FC adaptation step costs)
//	fleet  — BenchmarkFleetScale (the hierarchical coordinator at 16
//	         and 64 boards: fleet step rate and coordinator-overhead
//	         share, the serving-extension trajectory BENCH_serve.json
//	         archives)
//
// Run with: go test -bench=. -benchmem
package ldbnadapt_test

import (
	"fmt"
	"sync"
	"testing"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/shard"
	"ldbnadapt/internal/sota"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// benchFixture pre-trains one tiny MoLane model shared by every
// benchmark (training is excluded from all measured loops).
type benchFixture struct {
	bench *carlane.Benchmark
	model *ufld.Model
	rng   *tensor.RNG
}

var (
	fixOnce sync.Once
	fix     benchFixture
)

func getFixture(b *testing.B) *benchFixture {
	b.Helper()
	fixOnce.Do(func() {
		rng := tensor.NewRNG(1234)
		bench := carlane.Build(carlane.MoLane, resnet.R18, ufld.Tiny,
			carlane.Sizes{SourceTrain: 40, SourceVal: 8, TargetTrain: 32, TargetVal: 16}, 55)
		m := ufld.MustNewModel(bench.Cfg, rng)
		tc := ufld.DefaultTrainConfig()
		tc.Epochs = 3
		if _, err := ufld.TrainSource(m, bench.SourceTrain, tc, rng.Split()); err != nil {
			panic(err)
		}
		fix = benchFixture{bench: bench, model: m, rng: rng}
	})
	return &fix
}

// BenchmarkFig1DatasetGeneration measures CARLANE-style benchmark
// synthesis (scene rendering + domain shift + labeling), the workload
// behind Fig. 1.
func BenchmarkFig1DatasetGeneration(b *testing.B) {
	cfg := ufld.Tiny(resnet.R18, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds := carlane.Generate(cfg, carlane.SplitSpec{
			Name:    "bench",
			Layouts: []carlane.Layout{carlane.Ego2},
			Domains: []carlane.Domain{carlane.MoReal},
			N:       8,
			Seed:    uint64(i),
		})
		if ds.Len() != 8 {
			b.Fatal("bad dataset")
		}
	}
}

// BenchmarkFig2Inference measures one frame through the detector on
// the serving fast path (ForwardInfer) — the inference phase of every
// Fig. 2 configuration as deployed. The Infer mode reuses layer-owned
// scratch, so after the warmup forward grows it the loop is
// allocation-free; Eval mode is the cold diagnostic path (fresh
// tensors every call, ~700 allocs per forward) and is deliberately
// not what this trajectory tracks.
func BenchmarkFig2Inference(b *testing.B) {
	f := getFixture(b)
	x := ufld.Images(f.model.Cfg, f.bench.TargetTrain.Samples, []int{0})
	f.model.ForwardInfer(x) // grow scratch outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.model.ForwardInfer(x)
	}
}

// BenchmarkFig2InferenceInt8 is the same single frame on the int8
// inference rung (ForwardInferInt8): symmetric per-channel weights,
// per-sample dynamic activation scales, int32 accumulation. The
// warmup call triggers the lazy weight quantization so the loop
// measures steady state. priced-speedup is the Orin cost model's
// float/int8 per-frame latency ratio for the full-scale R-18 at 30 W
// — the deployment claim the host ns/op cannot make, since a host
// CPU has no int8 tensor cores (see PERFORMANCE.md).
func BenchmarkFig2InferenceInt8(b *testing.B) {
	f := getFixture(b)
	x := ufld.Images(f.model.Cfg, f.bench.TargetTrain.Samples, []int{0})
	f.model.ForwardInferInt8(x) // quantize weights + grow scratch outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.model.ForwardInferInt8(x)
	}
	b.StopTimer()
	cost := ufld.DescribeModel(ufld.FullScale(resnet.R18, 4))
	fp := orin.EstimateInferenceBatch("R-18", cost, orin.Mode30W, 1)
	q8 := orin.EstimateInferenceBatchInt8("R-18", cost, orin.Mode30W, 1)
	b.ReportMetric(fp.PerFrameMs/q8.PerFrameMs, "priced-speedup")
}

// benchmarkAdaptStep measures one LD-BN-ADAPT step at the given batch
// size (the per-step work unit of the Fig. 2 bs ∈ {1,2,4} sweep).
func benchmarkAdaptStep(b *testing.B, bs int) {
	f := getFixture(b)
	m := f.model.Clone(f.rng.Split())
	meth := adapt.NewLDBNAdapt(m, adapt.DefaultConfig())
	idx := make([]int, bs)
	for i := range idx {
		idx[i] = i
	}
	x := ufld.Images(m.Cfg, f.bench.TargetTrain.Samples, idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meth.Adapt(x)
	}
}

// BenchmarkFig2AdaptStepBS1 is the paper's chosen configuration.
func BenchmarkFig2AdaptStepBS1(b *testing.B) { benchmarkAdaptStep(b, 1) }

// BenchmarkFig2AdaptStepBS2 is the bs=2 variant.
func BenchmarkFig2AdaptStepBS2(b *testing.B) { benchmarkAdaptStep(b, 2) }

// BenchmarkFig2AdaptStepBS4 is the bs=4 variant.
func BenchmarkFig2AdaptStepBS4(b *testing.B) { benchmarkAdaptStep(b, 4) }

// BenchmarkFig2SOTAEpoch measures one epoch of the CARLANE SOTA
// baseline (embeddings + K-means + full retraining) — the cost that
// makes it non-real-time.
func BenchmarkFig2SOTAEpoch(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := f.model.Clone(tensor.NewRNG(uint64(i)))
		cfg := sota.DefaultConfig()
		cfg.Epochs = 1
		if _, err := sota.New(m, cfg).Run(f.bench.SourceTrain, f.bench.TargetTrain, tensor.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3FrameR18 measures the full deployed frame for R-18:
// eval-mode inference followed by one LD-BN-ADAPT step (the quantity
// Fig. 3 plots, here executed functionally on the repro-scale model).
func BenchmarkFig3FrameR18(b *testing.B) {
	benchmarkDeployedFrame(b, resnet.R18)
}

// BenchmarkFig3FrameR34 is the R-34 row of Fig. 3.
func BenchmarkFig3FrameR34(b *testing.B) {
	benchmarkDeployedFrame(b, resnet.R34)
}

func benchmarkDeployedFrame(b *testing.B, v resnet.Variant) {
	rng := tensor.NewRNG(9)
	bench := carlane.Build(carlane.MoLane, v, ufld.Tiny,
		carlane.Sizes{SourceTrain: 8, SourceVal: 4, TargetTrain: 8, TargetVal: 4}, 3)
	m := ufld.MustNewModel(bench.Cfg, rng)
	meth := adapt.NewLDBNAdapt(m, adapt.DefaultConfig())
	x := ufld.Images(m.Cfg, bench.TargetTrain.Samples, []int{0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, nn.Eval) // inference phase
		meth.Adapt(x)         // adaptation phase
	}
}

// BenchmarkFig3LatencyModel measures the analytic Orin pricing of the
// full Fig. 3 grid (2 models × 4 power modes).
func BenchmarkFig3LatencyModel(b *testing.B) {
	c18 := ufld.DescribeModel(ufld.FullScale(resnet.R18, 4))
	c34 := ufld.DescribeModel(ufld.FullScale(resnet.R34, 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mode := range orin.Modes {
			orin.EstimateFrame("R-18", c18, mode, 1)
			orin.EstimateFrame("R-34", c34, mode, 1)
		}
	}
}

// BenchmarkSOTACostModel prices the §II claim (SOTA epoch on Orin).
func BenchmarkSOTACostModel(b *testing.B) {
	cost := ufld.DescribeModel(ufld.FullScale(resnet.R18, 4))
	wl := orin.CARLANEScaleWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if orin.SOTAEpochCost(cost, wl, orin.Mode60W) <= 0 {
			b.Fatal("bad cost")
		}
	}
}

// BenchmarkAblationConvAdaptStep measures the §III conv-only
// adaptation step (heavier than BN: all conv weights get gradients
// applied).
func BenchmarkAblationConvAdaptStep(b *testing.B) {
	f := getFixture(b)
	m := f.model.Clone(f.rng.Split())
	cfg := adapt.DefaultConfig()
	cfg.LR /= 10
	meth := adapt.NewConvAdapt(m, cfg)
	x := ufld.Images(m.Cfg, f.bench.TargetTrain.Samples, []int{0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meth.Adapt(x)
	}
}

// BenchmarkAblationFCAdaptStep measures the §III FC-only adaptation
// step.
func BenchmarkAblationFCAdaptStep(b *testing.B) {
	f := getFixture(b)
	m := f.model.Clone(f.rng.Split())
	cfg := adapt.DefaultConfig()
	cfg.LR /= 10
	meth := adapt.NewFCAdapt(m, cfg)
	x := ufld.Images(m.Cfg, f.bench.TargetTrain.Samples, []int{0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meth.Adapt(x)
	}
}

// BenchmarkServeMultiStream measures the multi-stream serving engine
// against the naive one-goroutine-per-stream unbatched deployment on
// the same 8-stream fleet: the batched engine coalesces frames into
// Infer-path forwards with per-stream BN conditioning and amortizes
// adaptation across each stream's window (AdaptEvery=4, the paper's
// bs=4 operating point), while the naive baseline runs the paper's
// single-camera loop per stream (allocating eval forward + one bs=1
// adaptation step on every frame). The acceptance target is batched
// throughput ≥ 2× naive at 8 streams; both sub-benchmarks report
// frames/s so the trajectory is tracked.
func BenchmarkServeMultiStream(b *testing.B) {
	f := getFixture(b)
	const streams, frames = 8, 12
	fleet := serve.SyntheticFleet(f.model.Cfg, streams, frames, 30, 99)
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := serve.New(f.model, serve.Config{
				MaxBatch:   8,
				AdaptEvery: 4,
				Adapt:      adapt.DefaultConfig(),
			})
			if rep := e.Run(fleet); rep.Frames != streams*frames {
				b.Fatalf("served %d frames, want %d", rep.Frames, streams*frames)
			}
		}
		b.ReportMetric(float64(streams*frames*b.N)/b.Elapsed().Seconds(), "frames/s")
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := serve.Config{AdaptEvery: 1, Adapt: adapt.DefaultConfig()}
			if rep := serve.RunNaive(f.model, cfg, fleet); rep.Frames != streams*frames {
				b.Fatalf("served %d frames, want %d", rep.Frames, streams*frames)
			}
		}
		b.ReportMetric(float64(streams*frames*b.N)/b.Elapsed().Seconds(), "frames/s")
	})
}

// BenchmarkServeSteadyState measures one control epoch of a
// long-lived serving session at steady state — the allocation profile
// the planner arena and the nn scratch path exist to flatten. The
// session, its worker replicas and a few warmup epochs (which grow
// every arena chunk, scratch buffer and adaptation window) run
// outside the timer; the measured loop is RunEpoch only, over a fleet
// sized so arrivals never run dry before b.N epochs. allocs/op here
// is the number `make alloc-gate` holds against the committed budget
// (ALLOC_BUDGET): it must stay flat in epoch count — per-epoch
// telemetry slices and amortized arena-chunk growth, not per-frame
// or per-batch garbage.
func BenchmarkServeSteadyState(b *testing.B) {
	f := getFixture(b)
	const (
		streams = 4
		fps     = 30.0
		epochMs = 100.0
	)
	perEpoch := int(fps * epochMs / 1000) // frames per stream per epoch
	const warmup = 4
	fleet := serve.SyntheticFleet(f.model.Cfg, streams, (b.N+warmup+1)*perEpoch, fps, 7)
	e := serve.New(f.model, serve.Config{
		Workers:    2,
		MaxBatch:   8,
		AdaptEvery: 4,
		Adapt:      adapt.DefaultConfig(),
	})
	s := e.NewSession(fleet)
	end := 0.0
	for i := 0; i < warmup; i++ {
		end += epochMs
		s.RunEpoch(end)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end += epochMs
		s.RunEpoch(end)
	}
	b.StopTimer()
	if rep := s.Finish(); rep.Frames == 0 {
		b.Fatal("steady-state session served nothing")
	}
}

// BenchmarkFleetScale measures the hierarchical fleet coordinator at
// scale: boards run as actors in placement groups of 16, streams share
// one rendered scene set with phase-shifted arrivals (setup is
// O(frames), so the 64-board × 1024-stream point stays affordable),
// and migration plus consolidation keep the group placers busy. Each
// sub-benchmark reports the fleet step rate (control-epoch boundaries
// per host second) and the coordinator-overhead share (wall time the
// board actors spent idle at the barrier while the coordinator placed,
// admitted and checkpointed) — the two numbers the tentpole runtime is
// tracked by.
func BenchmarkFleetScale(b *testing.B) {
	f := getFixture(b)
	for _, sc := range []struct{ boards, streams int }{
		{16, 256},
		{64, 1024},
	} {
		b.Run(fmt.Sprintf("boards=%d,streams=%d", sc.boards, sc.streams), func(b *testing.B) {
			fleet := serve.SyntheticFleetShared(f.model.Cfg, sc.streams, 4, 4, 2024)
			cfg := shard.Config{
				Boards: sc.boards,
				Board: serve.Config{
					Workers:    1,
					MaxBatch:   8,
					AdaptEvery: 4,
					Adapt:      adapt.DefaultConfig(),
					Mode:       orin.Mode30W,
				},
				Governor:    "hysteresis",
				EpochMs:     250,
				Migrate:     true,
				Consolidate: true,
				GroupSize:   16,
			}
			b.ReportAllocs()
			b.ResetTimer()
			epochs, coord, wall := 0, 0.0, 0.0
			for i := 0; i < b.N; i++ {
				fl, err := shard.New(f.model, cfg)
				if err != nil {
					b.Fatal(err)
				}
				rep := fl.Run(fleet)
				if rep.Frames <= 0 || rep.FleetEpochs <= 0 {
					b.Fatalf("degenerate fleet run: %d frames, %d epochs", rep.Frames, rep.FleetEpochs)
				}
				epochs += rep.FleetEpochs
				coord += rep.CoordSeconds
				wall += rep.WallSeconds
			}
			b.ReportMetric(float64(epochs)/b.Elapsed().Seconds(), "steps/s")
			b.ReportMetric(coord/wall, "coord-share")
		})
	}
}

// BenchmarkTrainEpoch measures one supervised source-training epoch
// (the pre-deployment cost, for scale context).
func BenchmarkTrainEpoch(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := f.model.Clone(tensor.NewRNG(uint64(i)))
		tc := ufld.DefaultTrainConfig()
		tc.Epochs = 1
		if _, err := ufld.TrainSource(m, f.bench.SourceTrain, tc, tensor.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchFixtureIsSane is a plain test so the root package's
// benchmark fixture is validated by `go test ./...` as well: the
// pre-trained model must beat chance on its own source split.
func TestBenchFixtureIsSane(t *testing.T) {
	f := getFixtureT(t)
	acc := ufld.Evaluate(f.model, f.bench.SourceVal, 8).Accuracy
	if acc < 0.3 {
		t.Fatalf("fixture source accuracy %.3f — training failed", acc)
	}
}

// getFixtureT adapts getFixture for testing.T callers.
func getFixtureT(t *testing.T) *benchFixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := tensor.NewRNG(1234)
		bench := carlane.Build(carlane.MoLane, resnet.R18, ufld.Tiny,
			carlane.Sizes{SourceTrain: 40, SourceVal: 8, TargetTrain: 32, TargetVal: 16}, 55)
		m := ufld.MustNewModel(bench.Cfg, rng)
		tc := ufld.DefaultTrainConfig()
		tc.Epochs = 3
		if _, err := ufld.TrainSource(m, bench.SourceTrain, tc, rng.Split()); err != nil {
			panic(err)
		}
		fix = benchFixture{bench: bench, model: m, rng: rng}
	})
	return &fix
}
