# Build/test/bench entry points for the LD-BN-ADAPT reproduction.
#
#   make build   compile everything
#   make vet     static analysis
#   make test    full unit + property suite (tier-1 gate)
#   make race    race-detector pass over the concurrent packages
#   make bench   full benchmark suite (one iteration each)
#   make bench-smoke  one iteration of every benchmark in every package
#   make serve-bench  the multi-stream serving benchmark only
#   make ci      build + vet + test + race + bench-smoke

GO ?= go

.PHONY: build vet test race bench bench-smoke serve-bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The serving engine and the tensor matmul pool are the concurrent
# hot paths; stream exercises the adaptation methods they share.
race:
	$(GO) test -race ./internal/serve/... ./internal/tensor/... ./internal/nn/...

bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 1x .

# One iteration of every benchmark across all packages: keeps
# bench_test.go and BenchmarkServeMultiStream compiling and runnable
# without paying for real measurement in CI.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

serve-bench:
	$(GO) test -run xxx -bench BenchmarkServeMultiStream -benchtime 3x .

ci: build vet test race bench-smoke
