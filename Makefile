# Build/test/bench entry points for the LD-BN-ADAPT reproduction.
#
#   make build   compile everything
#   make fmt     fail if any file is not gofmt-clean
#   make vet     static analysis
#   make test    full unit + property suite (tier-1 gate)
#   make race    race-detector pass over the concurrent packages
#   make bench   every benchmark in every package for BENCHTIME
#                (default 100ms — a fixed duration, not 1x, so numbers
#                are averages over many iterations instead of single
#                cold-start samples), with -benchmem allocation stats —
#                the measurement run bench-json serializes for CI
#                artifacts
#   make bench-smoke  one iteration of every benchmark in every
#                package, no memstats: the cheap bit-rot gate (bench
#                measures, bench-smoke only proves the benchmarks
#                still compile and execute)
#   make bench-json   run the bench suite (BENCHTIME per benchmark)
#                and write BENCH_serve.json (benchmark name → ns/op,
#                B/op, allocs/op, per-benchmark gomaxprocs, plus every
#                b.ReportMetric column: frames/s, steps/s,
#                coord-share), stamped with the git commit SHA and Go
#                version so uploaded artifacts form a comparable perf
#                trajectory; doubles as the bit-rot gate in make ci —
#                one bench run covers both the smoke and the artifact.
#                Convention: the manifest is committed at the repo
#                root, so refresh it (and include it in the commit)
#                whenever a change moves the serving or fleet numbers
#   make serve-bench  the multi-stream serving benchmark only
#   make staticcheck  honnef.co staticcheck at a pinned version; uses a
#                PATH binary if present (CI installs one), otherwise
#                fetches via `go run`, and skips with a notice when the
#                tool is unavailable offline — the CI workflow always
#                has it, so the gate cannot silently rot there
#   make chaos-smoke  seeded fault-tolerance pins (board kill at burst
#                peak, rolling upgrade) plus an ldserve -chaos run, so
#                the CLI failover path cannot rot while the package
#                tests stay green
#   make fleet-smoke  one short-horizon ldserve run at fleet scale (64
#                boards × 256 shared-scene streams in groups of 16,
#                admission gate on), so the hierarchical-runtime CLI
#                path — groups, admission, coordinator-overhead report
#                — cannot rot while the package tests stay green
#   make obs-smoke    one observed fleet run (-trace-out/-metrics-out/
#                -epoch-csv) validated by cmd/tracecheck: the trace
#                must parse as Chrome trace JSON, spans must nest and
#                async frame intervals must balance, so the Perfetto
#                export path cannot rot while the package tests stay
#                green
#   make alloc-gate   run the steady-state serving benchmark (and the
#                infer forward at -cpu 4, exercising the parallel
#                kernel pool) with -benchmem at fixed iteration counts
#                and hold their allocs/op against the committed
#                ALLOC_BUDGET via cmd/allocgate — the CI tripwire for
#                regressions that re-introduce per-frame allocations
#                into the serve loop or the pooled kernel dispatch
#   make ci      build + fmt + vet + staticcheck + test + race +
#                chaos-smoke + fleet-smoke + obs-smoke + alloc-gate +
#                bench-json

GO ?= go
# Pinned staticcheck: 2024.1.1 supports the go 1.22/1.23 CI matrix.
# Keep in sync with the install step in .github/workflows/ci.yml.
STATICCHECK_VERSION ?= 2024.1.1
GIT_SHA := $(shell git rev-parse HEAD 2>/dev/null || echo unknown)
# Fixed measurement duration for bench/bench-json: 1x samples a single
# cold iteration whose ns/op swings with scheduler noise; a fixed
# -benchtime averages enough iterations for the manifest numbers to be
# comparable across commits.
BENCHTIME ?= 100ms

.PHONY: build fmt vet test race bench bench-smoke bench-json serve-bench staticcheck chaos-smoke fleet-smoke obs-smoke alloc-gate ci

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The serving engine, the fleet coordinator and the tensor matmul pool
# are the concurrent hot paths; govern drives serve's epoch pipeline
# and stream feeds them all, so every one of them runs under the race
# detector. -short skips the long seeded acceptance pins (they rerun
# whole fleets and probe no extra concurrency) — make test still runs
# them race-free.
race:
	$(GO) test -race -short ./internal/par/... ./internal/serve/... ./internal/shard/... ./internal/govern/... ./internal/stream/... ./internal/tensor/... ./internal/nn/...

bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) ./...

bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Separate test and serialize steps so a benchmark failure fails the
# target instead of being masked by the pipe (benchjson would happily
# serialize a partial run). Three measurement runs feed one manifest:
# the root serving/figure suite at the host's default GOMAXPROCS (the
# historical rows), the tensor/nn kernel benchmarks swept at -cpu 1,4
# (the worker-pool speedup-curve rows — names gain a -4 suffix and a
# per-benchmark gomaxprocs field in the manifest), and the end-to-end
# infer/adapt benchmarks again at -cpu 4 so the model-level speedup is
# archived next to the kernel-level one.
bench-json:
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) . > bench.out
	$(GO) test -run xxx -bench Kernel -benchmem -benchtime $(BENCHTIME) -cpu 1,4 ./internal/tensor/ ./internal/nn/ >> bench.out
	$(GO) test -run xxx -bench 'Fig2Inference|Fig2AdaptStepBS4' -benchmem -benchtime $(BENCHTIME) -cpu 4 . >> bench.out
	$(GO) run ./cmd/benchjson -o BENCH_serve.json -sha $(GIT_SHA) < bench.out
	@rm -f bench.out

serve-bench:
	$(GO) test -run xxx -bench BenchmarkServeMultiStream -benchtime 3x .

# A PATH binary wins (CI installs the pinned version, so findings fail
# the build there); otherwise probe whether the module is fetchable
# before running, so an offline checkout degrades to a notice instead
# of conflating "cannot download the tool" with "the tool found bugs".
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable (offline?); skipping"; \
	fi

# The package pins cover recovery semantics; the ldserve run proves
# the -chaos/-ckpt-every flag path end to end on a tiny fleet.
chaos-smoke:
	$(GO) test -run 'TestChaosRecoveryPin|TestRollingUpgrade|TestMembershipSurvivesBoardZero' ./internal/shard/
	$(GO) run ./cmd/ldserve -streams 4 -frames 12 -fps 4 -boards 2 -workers 1 -epochs 1 \
		-epoch-ms 250 -ckpt-every 1 -chaos kill:hot@2,join@4 >/dev/null

# The package tests pin the hierarchical runtime's semantics; this run
# proves the -groups/-admit/-shared-scenes flag path end to end at a
# board count where every layer (actors, group placers, admission,
# cross-group rebalance) is live.
fleet-smoke:
	$(GO) run ./cmd/ldserve -streams 256 -frames 4 -fps 4 -boards 64 -workers 1 -epochs 1 \
		-epoch-ms 250 -govern hysteresis -migrate -consolidate -groups 16 \
		-shared-scenes -admit queue >/dev/null

# The package tests pin trace determinism; this run proves the
# -trace-out/-metrics-out/-epoch-csv flag path end to end — a governed
# fleet with migration and a mid-run kill writes all three outputs and
# tracecheck holds the trace to the Chrome trace-event invariants
# Perfetto needs (parse, span nesting, async balance).
obs-smoke:
	$(GO) run ./cmd/ldserve -streams 8 -frames 24 -fps 8 -boards 4 -workers 1 -epochs 1 \
		-epoch-ms 250 -govern predictive -migrate -chaos kill:hot@4 \
		-trace-out obs-trace.json -metrics-out obs-metrics.txt -epoch-csv obs-epochs.csv >/dev/null
	$(GO) run ./cmd/tracecheck obs-trace.json

# Fixed -benchtime 30x (not a duration): the budget is calibrated in
# epochs, and a fixed epoch count keeps the amortized arena/warmup
# share of allocs/op comparable across runners. Two steps so a
# benchmark failure fails the target instead of being masked by the
# pipe.
# Two gated benchmarks: the serve control loop at the host's default
# GOMAXPROCS, and the infer forward at -cpu 4 so the worker-pool
# dispatch path itself is held to zero steady-state allocations
# (allocgate strips the -cpu name suffix, so one budget line covers
# every GOMAXPROCS variant).
alloc-gate:
	$(GO) test -run xxx -bench BenchmarkServeSteadyState -benchmem -benchtime 30x . > alloc-gate.out
	$(GO) test -run xxx -bench 'BenchmarkFig2Inference$$' -benchmem -benchtime 50x -cpu 4 . >> alloc-gate.out
	$(GO) run ./cmd/allocgate -budget ALLOC_BUDGET < alloc-gate.out
	@rm -f alloc-gate.out

ci: build fmt vet staticcheck test race chaos-smoke fleet-smoke obs-smoke alloc-gate bench-json
