package govern

import (
	"testing"

	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
)

// TestGovernedInt8RungRescuesLatencyFloor is the seeded acceptance pin
// for the int8 inference rung as a governed actuator, end to end
// through the serving engine: a 15 W power budget pins the ladder to
// its lowest rung, whose float32 latency floor misses the 18 FPS
// deadline even unloaded — the static 15 W deployment hits zero
// deadlines on the bursty reference fleet. A closed-loop governor has
// no watts to climb to; the only escalations left are cadence stretch
// and precision. Both rule-based governors must reach the int8 rung,
// serve real frames through the quantized forward path (the engine's
// workers actually run ForwardInferInt8 for epochs planned under
// Controls.Quantized), and convert a hopeless scenario into real
// service.
//
// The Predictive-vs-Hysteresis comparison doubles as the degradation
// contract at full-system scale: on a one-rung ladder there is nothing
// to pre-climb or forecast-descend (the descent gate also refuses to
// move while the precision rung is engaged), so the predictive run
// must reproduce the hysteresis run number for number.
func TestGovernedInt8RungRescuesLatencyFloor(t *testing.T) {
	m, fleet, scfg := burstyScenario(77)
	run := func(ctl serve.Controller) serve.Report {
		c := scfg
		c.Mode = orin.Mode15W
		return serve.New(m, c).RunGoverned(fleet, epochMs, ctl)
	}
	quant := func(r serve.Report) (epochs, served int) {
		for _, es := range r.Epochs {
			if es.Controls.Quantized {
				epochs++
				served += es.Served
			}
		}
		return
	}

	sta := run(Static{})
	if hit := 1 - sta.MissRate; hit > 0.05 {
		t.Fatalf("scenario broken: static 15 W hits %.3f — the latency floor no longer bites, so this pin proves nothing", hit)
	}

	hys := run(&Hysteresis{BudgetW: 15})
	he, hs := quant(hys)
	if he == 0 || hs == 0 {
		t.Fatalf("hysteresis never served on the int8 rung (%d quantized epochs, %d frames)", he, hs)
	}
	// The pinned scenario measures hit 0.324 with 57 frames served
	// quantized; the thresholds leave slack for Orin recalibration
	// without letting the rung degrade to a decorative flag.
	if hs < 20 {
		t.Fatalf("int8 rung barely exercised: %d frames served quantized, want >= 20", hs)
	}
	if hit := 1 - hys.MissRate; hit < 0.15 {
		t.Fatalf("governed int8 rung hit %.3f — did not rescue the 15 W latency floor (static: %.3f)",
			hit, 1-sta.MissRate)
	}

	pred := run(&Predictive{Hysteresis: Hysteresis{BudgetW: 15}})
	pe, ps := quant(pred)
	if pe == 0 || ps == 0 {
		t.Fatalf("predictive never served on the int8 rung (%d quantized epochs, %d frames)", pe, ps)
	}
	if pred.MissRate != hys.MissRate || pred.Frames != hys.Frames || pred.EnergyMJ != hys.EnergyMJ ||
		pe != he || ps != hs {
		t.Fatalf("predictive diverged from hysteresis on a one-rung ladder: hit %.6f/%d frames/%.3f mJ/%d+%d quant vs %.6f/%d/%.3f/%d+%d",
			1-pred.MissRate, pred.Frames, pred.EnergyMJ, pe, ps,
			1-hys.MissRate, hys.Frames, hys.EnergyMJ, he, hs)
	}

	// Seeded determinism: the quantized epochs' virtual accounting must
	// reproduce exactly, including which epochs ran int8.
	again := run(&Hysteresis{BudgetW: 15})
	ae, as := quant(again)
	if again.MissRate != hys.MissRate || again.Frames != hys.Frames || ae != he || as != hs {
		t.Fatalf("governed int8 run not deterministic: %.6f/%d/%d+%d vs %.6f/%d/%d+%d",
			again.MissRate, again.Frames, ae, as, hys.MissRate, hys.Frames, he, hs)
	}
}
