package govern

import (
	"testing"

	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
)

// TestPredictiveBurstOnsetRegression is the seeded acceptance pin for
// the predictive control plane: on the mild-burst reference fleet —
// three cameras idling at 2 FPS that burst to 10 FPS together for
// three cycles, plus BurstyFleet's late joiner — the Predictive
// governor must strictly beat Hysteresis's deadline-hit rate over the
// burst-onset windows (the onset epoch and the two after it, where a
// reactive climber is still walking rungs), while consuming no more
// total energy and serving the overall run at least as well.
//
// Mild bursts are the discriminating regime: the hard 30 FPS bursts of
// burstyScenario saturate the onset epoch so badly that Hysteresis's
// jump-to-top fires at the same boundary a forecast would, leaving the
// feed-forward term nothing to add (the degradation test below pins
// that case). A mild burst leaves no backlog at the onset boundary, so
// the reactive governor pays one missed epoch per rung it climbs —
// exactly the gap the forecast closes.
func TestPredictiveBurstOnsetRegression(t *testing.T) {
	m, _, scfg := burstyScenario(71)
	scfg.Mode = orin.Mode60W
	fleet := serve.BurstyFleet(m.Cfg, 3, 3, 6, 20, 2, 10, 171)
	run := func(ctl serve.Controller) serve.Report {
		return serve.New(m, scfg).RunGoverned(fleet, epochMs, ctl)
	}
	hys := run(&Hysteresis{})
	pred := run(&Predictive{})

	// Burst onsets from the schedule: each cycle spans 6/2 s of lull +
	// 20/10 s of burst = 5000 ms, so bursts start at 3000, 8000 and
	// 13000 ms — epochs 12, 32 and 52 at the 250 ms cadence. The window
	// covers the onset epoch plus the two boundaries a reactive climber
	// needs to finish reacting.
	onsetHit := func(r serve.Report) (float64, float64) {
		byEpoch := map[int]serve.EpochStats{}
		for _, es := range r.Epochs {
			byEpoch[es.Epoch] = es
		}
		hits, served := 0.0, 0.0
		for _, onset := range []int{12, 32, 52} {
			for e := onset; e < onset+3; e++ {
				if es, ok := byEpoch[e]; ok {
					hits += es.DeadlineHitRate * float64(es.Served)
					served += float64(es.Served)
				}
			}
		}
		if served == 0 {
			t.Fatal("no frames served in any onset window — scenario broken")
		}
		return hits / served, served
	}
	hysOnset, hysServed := onsetHit(hys)
	predOnset, predServed := onsetHit(pred)
	if hysServed == 0 || predServed == 0 {
		t.Fatal("onset windows empty")
	}
	// Sanity: the scenario must actually exercise the ladder, and the
	// reactive governor must leave an onset gap worth closing.
	if distinctModes(hys) < 2 || distinctModes(pred) < 2 {
		t.Fatalf("governors never moved on the ladder (%d/%d modes)", distinctModes(hys), distinctModes(pred))
	}
	// The pinned scenario measures onset hit 0.675 (hys) vs 0.875
	// (pred); the 0.1 margin leaves slack for Orin recalibration
	// without letting the pre-climb regress to reactive behavior.
	if predOnset < hysOnset+0.1 {
		t.Fatalf("predictive onset hit %.3f does not clearly beat hysteresis's %.3f", predOnset, hysOnset)
	}
	// Feed-forward must not cost watts: pinned 380.8 J vs 387.3 J.
	if pred.EnergyMJ > hys.EnergyMJ {
		t.Fatalf("predictive energy %.0f mJ above hysteresis's %.0f mJ", pred.EnergyMJ, hys.EnergyMJ)
	}
	// And the whole run serves at least as well: pinned 0.977 vs 0.912.
	if hit := 1 - pred.MissRate; hit < 1-hys.MissRate {
		t.Fatalf("predictive overall hit %.3f below hysteresis's %.3f", hit, 1-hys.MissRate)
	}
	// Deterministic virtual accounting: a second run reproduces the pin.
	again := run(&Predictive{})
	if again.EnergyMJ != pred.EnergyMJ || again.MissRate != pred.MissRate || again.Frames != pred.Frames {
		t.Fatalf("predictive run not deterministic: %.6f/%.6f/%d vs %.6f/%.6f/%d",
			again.EnergyMJ, again.MissRate, again.Frames, pred.EnergyMJ, pred.MissRate, pred.Frames)
	}
}

// TestPredictiveDegradesToHysteresisOnHardBursts: on the original hard
// bursty scenario the onset epoch already saturates, Hysteresis's
// jump-to-top fires at the same boundary a forecast would, and the
// predictive governor must match its service without spending more
// energy — the feed-forward term never makes the reactive baseline
// worse.
func TestPredictiveDegradesToHysteresisOnHardBursts(t *testing.T) {
	m, fleet, scfg := burstyScenario(71)
	run := func(ctl serve.Controller) serve.Report {
		c := scfg
		c.Mode = orin.Mode60W
		return serve.New(m, c).RunGoverned(fleet, epochMs, ctl)
	}
	hys := run(&Hysteresis{})
	pred := run(&Predictive{})
	if hit, want := 1-pred.MissRate, 1-hys.MissRate; hit < want {
		t.Fatalf("predictive hit %.3f below hysteresis's %.3f on the hard-burst scenario", hit, want)
	}
	if pred.EnergyMJ > 1.05*hys.EnergyMJ {
		t.Fatalf("predictive energy %.0f mJ not comparable to hysteresis's %.0f mJ", pred.EnergyMJ, hys.EnergyMJ)
	}
}

// TestPredictivePreClimbsOnForecast scripts the feed-forward rule: a
// healthy epoch whose forecast says a burst is landing must climb
// straight to a rung that fits the predicted load — Hysteresis, fed
// the same telemetry, stays put because nothing failed yet.
func TestPredictivePreClimbsOnForecast(t *testing.T) {
	cfg := serve.Config{Workers: 1, Mode: orin.Mode60W, Policy: stream.DropNone, AdaptEvery: 4}
	mk := func() (*Predictive, serve.Controls) {
		p := &Predictive{}
		return p, p.Start(cfg)
	}
	calm := func(epoch int, cur serve.Controls, fc float64) serve.EpochStats {
		return serve.EpochStats{
			Epoch: epoch, StartMs: float64(epoch) * 250, EndMs: float64(epoch+1) * 250,
			Controls: cur, Arrived: 4, Served: 4, BusyMs: 100,
			DeadlineHitRate: 1, Utilization: 0.4, ForecastArrived: fc,
		}
	}
	p, cur := mk()
	if cur.Mode.Watts != orin.Modes[0].Watts {
		t.Fatalf("predictive must start on the lowest rung, got %s", cur.Mode.Name)
	}
	cur = p.Decide(calm(0, cur, 4), cur, nil)
	if cur.Mode.Watts != orin.Modes[0].Watts {
		t.Fatalf("flat forecast must hold the rung, got %s", cur.Mode.Name)
	}
	// Forecast spikes to 40 frames/epoch: at 25 ms×GFLOPS-normalized
	// work per frame only MAXN fits 40 frames in a 250 ms epoch.
	cur = p.Decide(calm(1, cur, 40), cur, nil)
	if cur.Mode.Watts != orin.Mode60W.Watts {
		t.Fatalf("forecast burst must pre-climb to MAXN, got %s", cur.Mode.Name)
	}

	h := &Hysteresis{}
	hcur := h.Start(cfg)
	hcur = h.Decide(calm(0, hcur, 4), hcur, nil)
	hcur = h.Decide(calm(1, hcur, 40), hcur, nil)
	if hcur.Mode.Watts != orin.Modes[0].Watts {
		t.Fatalf("scenario broken: hysteresis should ignore the forecast, got %s", hcur.Mode.Name)
	}

	// The same spike under a power budget caps at the budget's top rung.
	pb := &Predictive{Hysteresis: Hysteresis{BudgetW: 30}}
	bcur := pb.Start(cfg)
	bcur = pb.Decide(calm(0, bcur, 4), bcur, nil)
	bcur = pb.Decide(calm(1, bcur, 40), bcur, nil)
	if bcur.Mode.Watts != 30 {
		t.Fatalf("pre-climb must respect the budget, got %s", bcur.Mode.Name)
	}
}

// TestPredictiveRespectsPowerBudget drives the predictive governor
// through hundreds of adversarial telemetry epochs — including wild
// forecasts and busy-time readings — and asserts the Hysteresis safety
// properties survive the feed-forward term: budget never exceeded,
// cadence and policy on their ladders, modes always priced.
func TestPredictiveRespectsPowerBudget(t *testing.T) {
	for _, budget := range []int{15, 30, 50, 60, 0} {
		p := &Predictive{Hysteresis: Hysteresis{BudgetW: budget}}
		cur := p.Start(serve.Config{
			Workers: 2, Mode: orin.Mode60W, Policy: stream.DropNone, AdaptEvery: 4,
		})
		state := uint64(0xDEADBEEFCAFE + uint64(budget))
		rand := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state>>11) / float64(1<<53)
		}
		for i := 0; i < 500; i++ {
			es := serve.EpochStats{
				Epoch: i, StartMs: float64(i) * 250, EndMs: float64(i+1) * 250,
				Controls:        cur,
				Arrived:         int(rand() * 60),
				Served:          int(rand() * 50),
				BusyMs:          rand() * 400,
				DeadlineHitRate: rand(),
				QueueDepth:      int(rand() * 6),
				Utilization:     rand() * 1.5,
				ForecastArrived: rand() * 80,
			}
			cur = p.Decide(es, cur, nil)
			if budget > 0 && cur.Mode.Watts > budget {
				t.Fatalf("budget %d W: epoch %d selected %s", budget, i, cur.Mode.Name)
			}
			if cur.Mode.Name == "" {
				t.Fatalf("budget %d W: epoch %d produced an empty mode", budget, i)
			}
			if cur.AdaptEvery < 0 || cur.AdaptEvery > 16 {
				t.Fatalf("budget %d W: epoch %d cadence %d off the ladder", budget, i, cur.AdaptEvery)
			}
			if r := policyRank(cur.Policy); r < 0 || r >= len(policyLadder) {
				t.Fatalf("budget %d W: epoch %d policy %v off the ladder", budget, i, cur.Policy)
			}
		}
	}
}

// TestPredictiveMatchesHysteresisOnSingleRung: with a one-rung ladder
// (15 W budget) there is nothing to pre-climb or descend, so under
// arbitrary telemetry the predictive governor must reproduce
// Hysteresis decision for decision — the degradation contract at its
// sharpest.
func TestPredictiveMatchesHysteresisOnSingleRung(t *testing.T) {
	cfg := serve.Config{Workers: 1, Mode: orin.Mode60W, Policy: stream.DropNone, AdaptEvery: 2}
	p := &Predictive{Hysteresis: Hysteresis{BudgetW: 15}}
	h := &Hysteresis{BudgetW: 15}
	pc, hc := p.Start(cfg), h.Start(cfg)
	if pc != hc {
		t.Fatalf("start controls diverge: %+v vs %+v", pc, hc)
	}
	state := uint64(0xABCDEF)
	rand := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for i := 0; i < 300; i++ {
		es := serve.EpochStats{
			Epoch: i, StartMs: float64(i) * 250, EndMs: float64(i+1) * 250,
			Arrived: int(rand() * 40), Served: int(rand() * 40),
			BusyMs: rand() * 300, DeadlineHitRate: rand(),
			QueueDepth: int(rand() * 5), Utilization: rand() * 1.4,
			ForecastArrived: rand() * 60,
		}
		esP, esH := es, es
		esP.Controls, esH.Controls = pc, hc
		pc = p.Decide(esP, pc, nil)
		hc = h.Decide(esH, hc, nil)
		if pc != hc {
			t.Fatalf("epoch %d: predictive %+v diverged from hysteresis %+v", i, pc, hc)
		}
	}
}
