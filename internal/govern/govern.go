// Package govern closes the loop the paper's deployment analysis
// leaves open: instead of picking one Orin power mode offline
// (orin.Advisor, examples/powermode) and holding it for the whole run,
// a governor rides the nvpmodel ladder online. The serving engine
// runs in control epochs (serve.RunGoverned); at each boundary the
// governor observes the epoch's windowed telemetry — deadline-hit
// rate, fleet backlog, utilization, shed counts, energy — and
// actuates the next epoch's power mode, overload policy and
// adaptation cadence (serve.Controls).
//
// Four policies ship behind the serve.Controller interface:
//
//   - Static pins the engine's configured controls — the baseline, and
//     exactly Run's one-shot behavior.
//   - Hysteresis is the deployable rule-based ladder climber: it
//     climbs immediately when an epoch misses its service target,
//     descends only after Patience consecutive healthy epochs whose
//     load would fit the lower rung, and under saturation at the top
//     rung stretches the adaptation cadence and escalates the
//     overload policy before giving up frames. It never selects a
//     mode above its power budget.
//   - Predictive is Hysteresis plus feed-forward: the per-stream
//     arrival forecasts (internal/forecast) riding in EpochStats let
//     it pre-climb straight to the lowest rung that fits the
//     predicted load, paying only the onset epoch at a burst instead
//     of one missed epoch per rung. With a flat forecast it decides
//     exactly like Hysteresis.
//   - Oracle is the upper bound: at every boundary it probes each
//     ladder rung against the engine's exact queue/worker/window
//     state (serve.RunGoverned's probe) and takes the cheapest rung
//     that still meets the service target.
//
// The energy a governor saves is the static rail draw: busy energy
// alone favors MAXN (race-to-idle — higher modes finish the same work
// in disproportionately less time), but a board parked at MAXN
// through a load lull burns orin.PowerMode.IdleWatts for nothing.
//
// Controllers are board-local and goroutine-confined: a Controller
// instance observes and actuates exactly one engine, keeps no shared
// state, and needs no locking. The fleet runtime (internal/shard)
// relies on that to run every board's Decide concurrently on the
// board's own actor goroutine between epoch barriers — parallel
// decides cannot change any decision because no controller can see
// another board.
package govern

import (
	"fmt"

	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
)

// defaultTargetHitRate is the service target a governor holds when
// none is configured: at least 95% of an epoch's served frames inside
// the deadline.
const defaultTargetHitRate = 0.95

// Ladder returns the nvpmodel modes usable under a power budget, in
// ascending power order (budgetW 0 = unconstrained).
func Ladder(budgetW int) ([]orin.PowerMode, error) {
	if budgetW <= 0 {
		return orin.Modes, nil
	}
	var out []orin.PowerMode
	for _, m := range orin.Modes {
		if m.Watts <= budgetW {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("govern: no power mode fits a %d W budget (the lowest mode needs %d W)",
			budgetW, orin.Modes[0].Watts)
	}
	return out, nil
}

// ByName builds the governor a CLI names: "static", "hysteresis",
// "predictive" or "oracle", with an optional power budget in watts
// (0 = unconstrained).
func ByName(name string, budgetW int) (serve.Controller, error) {
	if _, err := Ladder(budgetW); err != nil {
		return nil, err
	}
	switch name {
	case "static":
		return Static{BudgetW: budgetW}, nil
	case "hysteresis":
		return &Hysteresis{BudgetW: budgetW}, nil
	case "predictive":
		return &Predictive{Hysteresis: Hysteresis{BudgetW: budgetW}}, nil
	case "oracle":
		return &Oracle{BudgetW: budgetW}, nil
	}
	return nil, fmt.Errorf("govern: unknown governor %q (have static/hysteresis/predictive/oracle)", name)
}

// Static pins one set of controls for the whole run — the offline
// deployment the paper analyzes, and the baseline the closed-loop
// governors are measured against.
type Static struct {
	// Mode overrides the engine's configured power mode when set.
	Mode orin.PowerMode
	// BudgetW caps the pinned mode like the closed-loop governors' cap
	// (0 = unconstrained): a mode over budget is clamped to the highest
	// affordable rung, so `-govern static -power-budget 30` never runs
	// the fleet at 60 W.
	BudgetW int
}

// Name implements serve.Controller.
func (s Static) Name() string { return "static" }

// Start implements serve.Controller.
func (s Static) Start(cfg serve.Config) serve.Controls {
	mode := s.Mode
	if mode.Name == "" {
		mode = cfg.Mode
	}
	if s.BudgetW > 0 && mode.Watts > s.BudgetW {
		ladder, err := Ladder(s.BudgetW)
		if err != nil {
			panic(err.Error()) // ByName validates; direct construction must too
		}
		mode = ladder[len(ladder)-1]
	}
	return serve.Controls{Mode: mode, Policy: cfg.Policy, AdaptEvery: cfg.AdaptEvery, Quantized: cfg.Quantized}
}

// Decide implements serve.Controller: static controls never move.
func (s Static) Decide(_ serve.EpochStats, cur serve.Controls, _ func(serve.Controls) serve.EpochStats) serve.Controls {
	return cur
}
