package govern

import (
	"ldbnadapt/internal/serve"
)

// Predictive is Hysteresis with a feed-forward term: it keeps every
// piece of the reactive machinery — per-rung failure backoff, patience,
// the power budget, cadence-stretch and policy-escalation under
// saturation — and adds the arrival forecast riding in the epoch
// telemetry (serve.EpochStats.ForecastArrived, from internal/forecast)
// as a leading signal on both sides of the ladder:
//
//   - Pre-climb: when the forecast load will not fit the rung the
//     reactive rules chose, jump directly to the lowest affordable
//     rung that fits it. A reactive climber pays one missed epoch per
//     rung it has to climb (a burst onset at 15 W costs a 30 W epoch
//     and a 50 W epoch before MAXN serves); the predictive climber
//     pays only the onset epoch itself — the forecast is causal, so
//     the first bursty epoch still surprises it — and then jumps to
//     the correct rung at the next boundary.
//   - Forecast descent: when a de-escalation window opens (the same
//     Patience healthy epochs Hysteresis requires), ride down to the
//     lowest rung the forecast load still fits with the descent
//     margin, instead of paying one patience window of idle draw per
//     rung. A burst tail inflates observed utilization long after the
//     arrivals collapsed; the forecast knows the lull arrived.
//
// Both rules refine the failure backoff with a load memory: an
// unhealthy epoch records the load that overwhelmed its rung, and a
// rung inside its backoff window is still usable when the forecast
// load is well below what broke it. Without that distinction the
// failures Predictive itself logs at intermediate rungs while climbing
// through a burst would poison every lull descent afterwards — while a
// latency-floor rung (15 W misses the deadline even unloaded, a
// failure mode utilization cannot see) stays blocked, because the load
// that broke it was the lull itself. When the forecast is flat and the
// current rung fits it, neither rule fires and Predictive decides
// exactly like Hysteresis.
//
// Capacity is estimated without probes, from the same telemetry a
// rule-based governor already trusts: the epoch's busy-ms per served
// frame, normalized by the epoch mode's EffGFLOPS into a
// mode-independent work-per-frame, smoothed across epochs. Predicted
// utilization of rung m for forecast load F over an epoch of span S on
// W workers is then work/Eff(m) × F / (S×W).
type Predictive struct {
	Hysteresis
	// UpUtil is the predicted-utilization ceiling above which the
	// governor pre-climbs (default 0.85): high enough that a fitting
	// rung is left alone, low enough that queueing never has to build
	// before watts arrive.
	UpUtil float64
	// LoadMargin scales the load memory (default 0.5): a rung inside
	// its failure backoff may still be entered when the forecast load
	// is below LoadMargin × the smallest load that ever broke it.
	LoadMargin float64
	// PeakDecay is the per-epoch decay of the peak-load memory that
	// floors descents (default 0.9). Climbs trust the forecast; descents
	// trust max(forecast, decayed peak), because a square-wave burst is
	// exactly what a causal forecaster cannot see coming — the decayed
	// peak is the insurance premium against the next onset, and its
	// half-life prices how long a lull must last before the governor
	// stops paying it.
	PeakDecay float64

	// workPerFrame is the smoothed mode-independent serving cost in
	// ms×GFLOPS per frame; workers and spanMs remember the epoch
	// geometry for idle epochs that serve nothing; peakLoad is the
	// decayed peak-load memory flooring descents.
	workPerFrame float64
	workers      int
	spanMs       float64
	peakLoad     float64
	// failLoad is the load memory: the smallest (arrived + backlog)
	// count observed to leave rung i unhealthy, 0 when the rung has no
	// known failing load. Cleared when the rung serves at least that
	// load healthily.
	failLoad []float64
	// floorBad marks rungs that missed the deadline with an empty
	// queue at low utilization — a latency-floor failure, which no
	// amount of load headroom fixes. The forecast never argues a
	// floor-broken rung back into service; only a healthy served epoch
	// at the rung clears the mark.
	floorBad []bool
}

// Name implements serve.Controller.
func (p *Predictive) Name() string { return "predictive" }

func (p *Predictive) upUtil() float64 {
	if p.UpUtil > 0 {
		return p.UpUtil
	}
	return 0.85
}

func (p *Predictive) loadMargin() float64 {
	if p.LoadMargin > 0 {
		return p.LoadMargin
	}
	return 0.5
}

func (p *Predictive) peakDecay() float64 {
	if p.PeakDecay > 0 && p.PeakDecay < 1 {
		return p.PeakDecay
	}
	return 0.9
}

// Start implements serve.Controller.
func (p *Predictive) Start(cfg serve.Config) serve.Controls {
	p.workers = cfg.Workers
	if p.workers <= 0 {
		p.workers = 1
	}
	p.workPerFrame = 0
	p.spanMs = 0
	p.peakLoad = 0
	c := p.Hysteresis.Start(cfg)
	p.failLoad = make([]float64, len(p.ladder))
	p.floorBad = make([]bool, len(p.ladder))
	return c
}

// rungOf locates a mode on the affordable ladder (-1 when off it).
func (p *Predictive) rungOf(watts int) int {
	for i, m := range p.ladder {
		if m.Watts == watts {
			return i
		}
	}
	return -1
}

// Decide implements serve.Controller: the reactive rules run first and
// keep every safety property (budget, escalation order, patience);
// the forecast then corrects the rung they chose on both sides.
func (p *Predictive) Decide(prev serve.EpochStats, cur serve.Controls, probe func(serve.Controls) serve.EpochStats) serve.Controls {
	healthy := prev.DeadlineHitRate >= p.target() && prev.QueueDepth == 0
	if ri := p.rungOf(prev.Controls.Mode.Watts); ri >= 0 {
		load := float64(prev.Arrived + prev.QueueDepth)
		switch {
		case !healthy && prev.QueueDepth == 0 && prev.Utilization < p.downUtil():
			// Deadlines died with an empty queue on an underworked rung:
			// the rung's latency floor is the problem, not its capacity.
			p.floorBad[ri] = true
		case !healthy:
			if p.failLoad[ri] == 0 || load < p.failLoad[ri] {
				p.failLoad[ri] = load
			}
		case prev.Served > 0:
			p.floorBad[ri] = false // the rung demonstrably serves on time
			if p.failLoad[ri] > 0 && float64(prev.Arrived) >= p.failLoad[ri] {
				p.failLoad[ri] = 0 // and holds at least this load
			}
		}
	}

	next := p.Hysteresis.Decide(prev, cur, probe)
	if span := prev.EndMs - prev.StartMs; span > 0 {
		p.spanMs = span
	}
	if prev.Served > 0 && prev.BusyMs > 0 {
		// Smooth the per-frame work estimate: lull epochs serve singleton
		// batches (expensive per frame), burst epochs coalesce (cheap), and
		// the blend keeps the capacity model from whipsawing between them.
		w := prev.BusyMs / float64(prev.Served) * prev.Controls.Mode.EffGFLOPS
		if p.workPerFrame == 0 {
			p.workPerFrame = w
		} else {
			p.workPerFrame = 0.5*w + 0.5*p.workPerFrame
		}
	}
	if p.workPerFrame == 0 || p.spanMs <= 0 {
		return next
	}
	load := prev.ForecastArrived + float64(prev.QueueDepth) // what must be served next epoch
	p.peakLoad = p.peakLoad * p.peakDecay()
	if observed := float64(prev.Arrived + prev.QueueDepth); observed > p.peakLoad {
		p.peakLoad = observed
	}
	util := func(i int, l float64) float64 {
		return p.workPerFrame / p.ladder[i].EffGFLOPS * l / (p.spanMs * float64(p.workers))
	}
	predUtil := func(i int) float64 { return util(i, load) }
	// usable: the rung's latency floor holds, and it is either out of
	// failure backoff or the forecast load is well below the smallest
	// load that ever broke it.
	usable := func(i int) bool {
		if p.floorBad[i] {
			return false
		}
		return prev.Epoch >= p.retryAt[i] ||
			(p.failLoad[i] > 0 && load < p.loadMargin()*p.failLoad[i])
	}

	if load > 0 {
		// Pre-climb to the lowest affordable usable rung that fits the
		// forecast; saturated already at the top, there is nothing the
		// forecast can add that escalation has not done.
		idx := p.idx
		for idx < len(p.ladder)-1 && (predUtil(idx) > p.upUtil() || !usable(idx)) {
			idx++
		}
		if idx > p.idx {
			p.idx = idx
			p.goodRun = 0 // a fresh rung must re-earn its descent patience
			p.why = "pre-climb"
			next.Mode = p.ladder[idx]
			return next
		}
	}
	// Forecast descent: only inside the de-escalation window the
	// reactive rules opened (a healthy epoch that consumed its
	// patience), and only while policy and cadence are already back at
	// base — power is the last thing Hysteresis restores, and the
	// forecast keeps that order.
	if healthy && p.goodRun == 0 &&
		next.Policy == cur.Policy && next.AdaptEvery == cur.AdaptEvery &&
		next.Quantized == cur.Quantized {
		// Descents are floored by the decayed peak, not just the
		// forecast: the lull says 30 W is plenty, but the last burst is
		// the load the next unforecastable onset will bring.
		descLoad := load
		if p.peakLoad > descLoad {
			descLoad = p.peakLoad
		}
		for p.idx > 0 && usable(p.idx-1) && util(p.idx-1, descLoad) < p.downUtil() {
			p.idx--
			p.why = "forecast-descent"
		}
		next.Mode = p.ladder[p.idx]
	}
	return next
}
