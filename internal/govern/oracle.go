package govern

import (
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
)

// Oracle is the clairvoyant upper bound on governing: at every epoch
// boundary it sweeps the whole affordable mode ladder through
// serve.RunGoverned's probe — an exact simulation of the next epoch
// from the engine's current queue, worker and adaptation-window state,
// including the arrivals still to come — and commits to the cheapest
// rung that meets the service target without letting the backlog grow.
// If no rung qualifies, it takes the one serving best (highest hit
// rate, then lower energy). Rule-based governors like Hysteresis are
// measured by how close they get to this without seeing the future.
//
// The sweep is exhaustive over power modes × numeric precision
// (float32 and the int8 inference rung); policy and adaptation cadence
// stay at the engine's configured values so the bound isolates what
// mode and precision selection alone can achieve. Because the int8
// rung's accuracy cost is invisible to the epoch telemetry (probes
// price latency and energy, not lane error), a fitting float32
// candidate always wins over a fitting int8 one — the oracle spends
// precision only when no float rung can meet the target, mirroring
// the escalation order of the rule-based governors.
type Oracle struct {
	// BudgetW caps the ladder (0 = unconstrained).
	BudgetW int
	// TargetHitRate is the per-epoch deadline-hit service target
	// (default 0.95).
	TargetHitRate float64

	ladder []orin.PowerMode
	base   serve.Controls
	// why names the last sweep's outcome, for the trace's governor
	// instants (serve.Explainer).
	why string
}

// Name implements serve.Controller.
func (o *Oracle) Name() string { return "oracle" }

// Explain implements serve.Explainer: whether the last sweep found a
// rung meeting the target or fell back to the best-serving one.
func (o *Oracle) Explain() string { return o.why }

func (o *Oracle) target() float64 {
	if o.TargetHitRate > 0 {
		return o.TargetHitRate
	}
	return defaultTargetHitRate
}

// Start implements serve.Controller: the first epoch runs blind (no
// telemetry yet), so begin on the highest affordable rung — the
// oracle sheds watts the moment the sweep shows they buy nothing.
func (o *Oracle) Start(cfg serve.Config) serve.Controls {
	ladder, err := Ladder(o.BudgetW)
	if err != nil {
		panic(err.Error()) // ByName validates; direct construction must too
	}
	o.ladder = ladder
	o.base = serve.Controls{Mode: ladder[len(ladder)-1], Policy: cfg.Policy, AdaptEvery: cfg.AdaptEvery, Quantized: cfg.Quantized}
	return o.base
}

// Decide implements serve.Controller.
func (o *Oracle) Decide(prev serve.EpochStats, cur serve.Controls, probe func(serve.Controls) serve.EpochStats) serve.Controls {
	type outcome struct {
		c  serve.Controls
		es serve.EpochStats
	}
	var bestFloat, bestInt8, fallback *outcome
	quants := []bool{false, true}
	if o.base.Quantized {
		// The engine is deployed on the int8 rung; there is no float32
		// baseline to prefer.
		quants = []bool{true}
	}
	for _, mode := range o.ladder {
		for _, quant := range quants {
			cand := serve.Controls{Mode: mode, Policy: o.base.Policy, AdaptEvery: o.base.AdaptEvery, Quantized: quant}
			es := probe(cand)
			oc := &outcome{c: cand, es: es}
			if es.DeadlineHitRate >= o.target() && es.QueueDepth <= prev.QueueDepth {
				best := &bestFloat
				if quant {
					best = &bestInt8
				}
				if *best == nil || es.EnergyMJ < (*best).es.EnergyMJ {
					*best = oc
				}
			}
			if fallback == nil ||
				es.DeadlineHitRate > fallback.es.DeadlineHitRate ||
				(es.DeadlineHitRate == fallback.es.DeadlineHitRate && es.EnergyMJ < fallback.es.EnergyMJ) {
				fallback = oc
			}
		}
	}
	if bestFloat != nil {
		o.why = "sweep-fit"
		return bestFloat.c
	}
	if bestInt8 != nil {
		o.why = "sweep-fit-int8"
		return bestInt8.c
	}
	o.why = "sweep-fallback"
	return fallback.c
}
