package govern

import (
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
)

// Oracle is the clairvoyant upper bound on governing: at every epoch
// boundary it sweeps the whole affordable mode ladder through
// serve.RunGoverned's probe — an exact simulation of the next epoch
// from the engine's current queue, worker and adaptation-window state,
// including the arrivals still to come — and commits to the cheapest
// rung that meets the service target without letting the backlog grow.
// If no rung qualifies, it takes the one serving best (highest hit
// rate, then lower energy). Rule-based governors like Hysteresis are
// measured by how close they get to this without seeing the future.
//
// The sweep is exhaustive over power modes; policy and adaptation
// cadence stay at the engine's configured values so the bound
// isolates what mode selection alone can achieve.
type Oracle struct {
	// BudgetW caps the ladder (0 = unconstrained).
	BudgetW int
	// TargetHitRate is the per-epoch deadline-hit service target
	// (default 0.95).
	TargetHitRate float64

	ladder []orin.PowerMode
	base   serve.Controls
	// why names the last sweep's outcome, for the trace's governor
	// instants (serve.Explainer).
	why string
}

// Name implements serve.Controller.
func (o *Oracle) Name() string { return "oracle" }

// Explain implements serve.Explainer: whether the last sweep found a
// rung meeting the target or fell back to the best-serving one.
func (o *Oracle) Explain() string { return o.why }

func (o *Oracle) target() float64 {
	if o.TargetHitRate > 0 {
		return o.TargetHitRate
	}
	return defaultTargetHitRate
}

// Start implements serve.Controller: the first epoch runs blind (no
// telemetry yet), so begin on the highest affordable rung — the
// oracle sheds watts the moment the sweep shows they buy nothing.
func (o *Oracle) Start(cfg serve.Config) serve.Controls {
	ladder, err := Ladder(o.BudgetW)
	if err != nil {
		panic(err.Error()) // ByName validates; direct construction must too
	}
	o.ladder = ladder
	o.base = serve.Controls{Mode: ladder[len(ladder)-1], Policy: cfg.Policy, AdaptEvery: cfg.AdaptEvery}
	return o.base
}

// Decide implements serve.Controller.
func (o *Oracle) Decide(prev serve.EpochStats, cur serve.Controls, probe func(serve.Controls) serve.EpochStats) serve.Controls {
	type outcome struct {
		c  serve.Controls
		es serve.EpochStats
	}
	var best, fallback *outcome
	for _, mode := range o.ladder {
		cand := serve.Controls{Mode: mode, Policy: o.base.Policy, AdaptEvery: o.base.AdaptEvery}
		es := probe(cand)
		oc := &outcome{c: cand, es: es}
		if es.DeadlineHitRate >= o.target() && es.QueueDepth <= prev.QueueDepth {
			if best == nil || es.EnergyMJ < best.es.EnergyMJ {
				best = oc
			}
		}
		if fallback == nil ||
			es.DeadlineHitRate > fallback.es.DeadlineHitRate ||
			(es.DeadlineHitRate == fallback.es.DeadlineHitRate && es.EnergyMJ < fallback.es.EnergyMJ) {
			fallback = oc
		}
	}
	if best != nil {
		o.why = "sweep-fit"
		return best.c
	}
	o.why = "sweep-fallback"
	return fallback.c
}
