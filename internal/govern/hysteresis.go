package govern

import (
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
)

// Hysteresis is the deployable rule-based governor: a ladder climber
// with asymmetric inertia. An unhealthy epoch — deadline-hit rate
// below target, or backlog left at the boundary — escalates
// immediately: a floor miss with an empty queue climbs one rung, while
// a backlog left by a near-capacity epoch (saturation) jumps straight
// to the top affordable rung to drain it, cpufreq-ondemand style. Descending requires Patience
// consecutive healthy epochs and a load that would still fit the lower
// rung, so a bursty fleet does not flap between modes at every lull. When the top
// affordable rung is still unhealthy, it spends accuracy before
// frames: first stretch the adaptation cadence (fewer LD-BN-ADAPT
// steps to amortize), then drop the forwards to the int8 inference
// rung (Controls.Quantized — cheaper batches at a bounded accuracy
// cost), and only then escalate the overload policy
// (DropNone → SkipAdapt → DropFrames). Recovery retraces the same
// moves in reverse — policy first, precision next, cadence after,
// power last.
//
// By construction the governor never selects a mode above BudgetW.
type Hysteresis struct {
	// BudgetW caps the ladder (0 = unconstrained).
	BudgetW int
	// TargetHitRate is the per-epoch deadline-hit service target
	// (default 0.95).
	TargetHitRate float64
	// Patience is how many consecutive healthy epochs precede any
	// de-escalation (default 2).
	Patience int
	// DownUtil is the utilization ceiling predicted at the lower rung
	// below which a descent is allowed (default 0.7): descending into
	// saturation would climb right back — the flap hysteresis exists
	// to prevent.
	DownUtil float64
	// Backoff is the initial failure backoff in epochs (default 16):
	// how long an unhealthy epoch at a rung blocks descents back into
	// it. Re-failures double it up to 8× the initial value. Measured on
	// the bursty reference scenario, a backoff outlasting the lull is
	// what closes most of the gap to the Oracle — a blind descent into
	// a rung whose latency floor misses costs a whole epoch of
	// deadlines, while holding the higher rung costs only its static
	// draw for a few hundred virtual milliseconds.
	Backoff int

	ladder  []orin.PowerMode
	idx     int
	base    serve.Controls
	goodRun int
	// Per-rung failure memory: an unhealthy epoch at rung i blocks
	// descents into rung i until retryAt[i], with the block doubling on
	// every re-failure (capped) and clearing on a healthy epoch at the
	// rung. This is what stops the governor flapping into a rung whose
	// latency floor simply cannot meet the deadline — a failure mode
	// the utilization fit check cannot see.
	retryAt []int
	backoff []int
	// why names the branch the last Decide took, for the trace's
	// governor instants (serve.Explainer).
	why string
}

// Name implements serve.Controller.
func (h *Hysteresis) Name() string { return "hysteresis" }

// Explain implements serve.Explainer: the branch the last Decide took.
func (h *Hysteresis) Explain() string { return h.why }

func (h *Hysteresis) target() float64 {
	if h.TargetHitRate > 0 {
		return h.TargetHitRate
	}
	return defaultTargetHitRate
}

func (h *Hysteresis) patience() int {
	if h.Patience > 0 {
		return h.Patience
	}
	return 2
}

func (h *Hysteresis) downUtil() float64 {
	if h.DownUtil > 0 {
		return h.DownUtil
	}
	return 0.7
}

func (h *Hysteresis) backoffInit() int {
	if h.Backoff > 0 {
		return h.Backoff
	}
	return 16
}

// Start implements serve.Controller: begin on the lowest affordable
// rung with the engine's configured policy and cadence — the governor
// earns its watts from telemetry rather than assuming the worst case.
func (h *Hysteresis) Start(cfg serve.Config) serve.Controls {
	ladder, err := Ladder(h.BudgetW)
	if err != nil {
		panic(err.Error()) // ByName validates; direct construction must too
	}
	h.ladder = ladder
	h.idx = 0
	h.goodRun = 0
	h.retryAt = make([]int, len(ladder))
	h.backoff = make([]int, len(ladder))
	h.base = serve.Controls{Mode: ladder[0], Policy: cfg.Policy, AdaptEvery: cfg.AdaptEvery, Quantized: cfg.Quantized}
	return h.base
}

// policyLadder orders the overload policies by how much they shed.
var policyLadder = []stream.OverloadPolicy{stream.DropNone, stream.SkipAdapt, stream.DropFrames}

// policyRank locates a policy on the shedding ladder.
func policyRank(p stream.OverloadPolicy) int {
	for i, q := range policyLadder {
		if q == p {
			return i
		}
	}
	return 0
}

// Decide implements serve.Controller.
func (h *Hysteresis) Decide(prev serve.EpochStats, cur serve.Controls, _ func(serve.Controls) serve.EpochStats) serve.Controls {
	next := cur
	healthy := prev.DeadlineHitRate >= h.target() && prev.QueueDepth == 0
	if !healthy {
		h.goodRun = 0
		if h.backoff[h.idx] == 0 {
			h.backoff[h.idx] = h.backoffInit()
		} else if h.backoff[h.idx] < 8*h.backoffInit() {
			h.backoff[h.idx] *= 2
		}
		h.retryAt[h.idx] = prev.Epoch + h.backoff[h.idx]
		if h.idx < len(h.ladder)-1 {
			// Asymmetric response, cpufreq-ondemand style: a backlog
			// left behind by a near-capacity epoch means the rung is
			// saturated — jump straight to the top affordable rung to
			// drain it before more deadlines die in the queue. A floor
			// miss, or a stray queued frame on an otherwise idle rung,
			// just needs the next rung.
			if prev.QueueDepth > 0 && prev.Utilization >= 0.9 {
				h.idx = len(h.ladder) - 1
				h.why = "saturate-jump"
			} else {
				h.idx++
				h.why = "climb"
			}
		} else if h.base.AdaptEvery > 0 && next.AdaptEvery < 4*h.base.AdaptEvery {
			// Saturated at the top affordable rung: amortize adaptation
			// harder before shedding work.
			next.AdaptEvery *= 2
			h.why = "stretch-cadence"
		} else if !next.Quantized {
			// Cadence fully stretched and still saturated: buy throughput
			// with precision — the int8 forwards cost a bounded accuracy
			// error, shedding costs whole frames.
			next.Quantized = true
			h.why = "quantize-int8"
		} else if r := policyRank(next.Policy); r < len(policyLadder)-1 {
			next.Policy = policyLadder[r+1]
			h.why = "escalate-policy"
		} else {
			h.why = "saturated-hold"
		}
		next.Mode = h.ladder[h.idx]
		return next
	}
	h.backoff[h.idx] = 0 // the rung holds this load; forget old failures
	h.goodRun++
	if h.goodRun < h.patience() {
		h.why = "patience"
		next.Mode = h.ladder[h.idx]
		return next
	}
	h.goodRun = 0
	h.why = "hold"
	// De-escalate one move per boundary, retracing escalation in
	// reverse: policy, precision, cadence, then power.
	switch {
	case policyRank(next.Policy) > policyRank(h.base.Policy):
		next.Policy = policyLadder[policyRank(next.Policy)-1]
		h.why = "restore-policy"
	case next.Quantized && !h.base.Quantized:
		next.Quantized = false
		h.why = "restore-precision"
	case next.AdaptEvery != h.base.AdaptEvery:
		next.AdaptEvery /= 2
		if next.AdaptEvery < h.base.AdaptEvery {
			next.AdaptEvery = h.base.AdaptEvery
		}
		h.why = "restore-cadence"
	case h.idx > 0 && prev.Epoch >= h.retryAt[h.idx-1]:
		// Descend only if the lower rung is out of failure backoff and
		// the last epoch's load would fit it: scale observed utilization
		// by the compute-speed ratio.
		lower := h.ladder[h.idx-1]
		ratio := cur.Mode.EffGFLOPS / lower.EffGFLOPS
		if prev.Utilization*ratio < h.downUtil() {
			h.idx--
			h.why = "descend"
		}
	}
	next.Mode = h.ladder[h.idx]
	return next
}
