package govern

import (
	"math"
	"strings"
	"testing"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// burstyScenario is the deterministic governor workload: two cameras
// that idle at 2 FPS and burst to 30 FPS together (plus BurstyFleet's
// late joiner), against the 18 FPS deadline. Fig. 3-style pricing
// makes 15 W miss that deadline even unloaded, while a burst saturates
// everything below MAXN — exactly the regime where one static mode
// must either miss deadlines or burn watts through every lull.
func burstyScenario(seed uint64) (*ufld.Model, []*stream.Source, serve.Config) {
	cfg := ufld.Tiny(resnet.R18, 2)
	m := ufld.MustNewModel(cfg, tensor.NewRNG(seed))
	fleet := serve.BurstyFleet(cfg, 2, 2, 6, 24, 2, 30, seed+100)
	scfg := serve.Config{
		Workers:    1,
		MaxBatch:   8,
		Window:     2 * time.Millisecond,
		AdaptEvery: 4,
		Adapt:      adapt.DefaultConfig(),
		DeadlineMs: orin.Deadline18FPS,
		Policy:     stream.DropNone,
	}
	return m, fleet, scfg
}

const epochMs = 250

// distinctModes counts the power modes a run's epoch trace visited.
func distinctModes(rep serve.Report) int {
	seen := map[int]bool{}
	for _, es := range rep.Epochs {
		seen[es.Controls.Mode.Watts] = true
	}
	return len(seen)
}

// TestGovernedBurstyFleetRegression is the seeded acceptance pin for
// the closed loop: on the deterministic bursty fleet the Hysteresis
// governor must hit at least as many deadlines as the static 15 W
// deployment while consuming measurably less total energy than the
// static 60 W one — riding the ladder beats both corner cases at once.
func TestGovernedBurstyFleetRegression(t *testing.T) {
	m, fleet, scfg := burstyScenario(71)
	run := func(mode orin.PowerMode, ctl serve.Controller) serve.Report {
		c := scfg
		c.Mode = mode
		return serve.New(m, c).RunGoverned(fleet, epochMs, ctl)
	}
	s15 := run(orin.Mode15W, Static{})
	s60 := run(orin.Mode60W, Static{})
	hys := run(orin.Mode60W, &Hysteresis{})

	hit := func(r serve.Report) float64 { return 1 - r.MissRate }
	if hit(s60) <= hit(s15) {
		t.Fatalf("scenario broken: static 60 W hit %.3f not above static 15 W hit %.3f", hit(s60), hit(s15))
	}
	if hit(hys) < hit(s15) {
		t.Fatalf("hysteresis hit rate %.3f below static 15 W's %.3f", hit(hys), hit(s15))
	}
	// The governor must deliver real service, not just edge the corner
	// case: the pinned scenario measures ~0.65 (the oracle reaches
	// ~0.69); 0.4 leaves slack for Orin recalibration without letting
	// the control loop regress to burst-tail-only serving.
	if hit(hys) < 0.4 {
		t.Fatalf("hysteresis hit rate %.3f collapsed on the reference scenario", hit(hys))
	}
	if hys.EnergyMJ >= 0.9*s60.EnergyMJ {
		t.Fatalf("hysteresis energy %.0f mJ not measurably below static 60 W's %.0f mJ",
			hys.EnergyMJ, s60.EnergyMJ)
	}
	if n := distinctModes(hys); n < 2 {
		t.Fatalf("hysteresis never moved on the ladder (%d mode)", n)
	}
	// The virtual accounting is deterministic: a second run must agree
	// exactly, which is what makes this a regression pin.
	again := run(orin.Mode60W, &Hysteresis{})
	if again.EnergyMJ != hys.EnergyMJ || again.MissRate != hys.MissRate || again.Frames != hys.Frames {
		t.Fatalf("governed run not deterministic: %.6f/%.6f/%d vs %.6f/%.6f/%d",
			again.EnergyMJ, again.MissRate, again.Frames, hys.EnergyMJ, hys.MissRate, hys.Frames)
	}
}

// TestOracleGovernsAtLeastAsWell: the exhaustive per-epoch sweep must
// also beat static 60 W on energy without falling below static 15 W
// service, and must actually exercise the ladder.
func TestOracleGovernsAtLeastAsWell(t *testing.T) {
	m, fleet, scfg := burstyScenario(73)
	run := func(mode orin.PowerMode, ctl serve.Controller) serve.Report {
		c := scfg
		c.Mode = mode
		return serve.New(m, c).RunGoverned(fleet, epochMs, ctl)
	}
	s15 := run(orin.Mode15W, Static{})
	s60 := run(orin.Mode60W, Static{})
	orc := run(orin.Mode60W, &Oracle{})
	if hit := 1 - orc.MissRate; hit < 1-s15.MissRate {
		t.Fatalf("oracle hit rate %.3f below static 15 W's %.3f", hit, 1-s15.MissRate)
	}
	// Clairvoyant pre-climbing should hold near-MAXN service: the
	// pinned scenario measures ~0.96; 0.8 leaves recalibration slack.
	if hit := 1 - orc.MissRate; hit < 0.8 {
		t.Fatalf("oracle hit rate %.3f collapsed on the reference scenario", hit)
	}
	if orc.EnergyMJ >= 0.9*s60.EnergyMJ {
		t.Fatalf("oracle energy %.0f mJ not measurably below static 60 W's %.0f mJ", orc.EnergyMJ, s60.EnergyMJ)
	}
	if n := distinctModes(orc); n < 2 {
		t.Fatalf("oracle never moved on the ladder (%d mode)", n)
	}
}

// TestHysteresisRespectsPowerBudget is the budget property test: under
// hundreds of adversarial telemetry sequences the governor must never
// actuate a mode above its power budget, and must keep the cadence and
// policy within their ladders.
func TestHysteresisRespectsPowerBudget(t *testing.T) {
	for _, budget := range []int{15, 30, 50, 60, 0} {
		h := &Hysteresis{BudgetW: budget}
		cur := h.Start(serve.Config{
			Mode: orin.Mode60W, Policy: stream.DropNone, AdaptEvery: 4,
		})
		// Deterministic LCG drives hit rate, backlog and utilization
		// through healthy, saturated and recovering regimes.
		state := uint64(0x9E3779B97F4A7C15 + uint64(budget))
		rand := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state>>11) / float64(1<<53)
		}
		for i := 0; i < 500; i++ {
			es := serve.EpochStats{
				Epoch:           i,
				Controls:        cur,
				Served:          int(rand() * 50),
				DeadlineHitRate: rand(),
				QueueDepth:      int(rand() * 6),
				Utilization:     rand() * 1.5,
			}
			cur = h.Decide(es, cur, nil) // hysteresis is probe-free by contract
			if budget > 0 && cur.Mode.Watts > budget {
				t.Fatalf("budget %d W: epoch %d selected %s", budget, i, cur.Mode.Name)
			}
			if cur.Mode.Name == "" {
				t.Fatalf("budget %d W: epoch %d produced an empty mode", budget, i)
			}
			if cur.AdaptEvery < 0 || cur.AdaptEvery > 16 {
				t.Fatalf("budget %d W: epoch %d cadence %d off the ladder", budget, i, cur.AdaptEvery)
			}
			if r := policyRank(cur.Policy); r < 0 || r >= len(policyLadder) {
				t.Fatalf("budget %d W: epoch %d policy %v off the ladder", budget, i, cur.Policy)
			}
		}
	}
}

// TestHysteresisClimbsAndRecovers scripts the control loop: a floor
// miss climbs one rung, saturation jumps to the top rung, recovery
// descends one rung per Patience healthy epochs, and a rung that
// failed recently stays blocked until its backoff expires.
func TestHysteresisClimbsAndRecovers(t *testing.T) {
	h := &Hysteresis{Patience: 2, Backoff: 4}
	cur := h.Start(serve.Config{Mode: orin.Mode60W, Policy: stream.DropNone, AdaptEvery: 4})
	if cur.Mode.Watts != orin.Modes[0].Watts {
		t.Fatalf("hysteresis must start on the lowest rung, got %s", cur.Mode.Name)
	}
	// A latency-floor miss (no backlog) is a one-rung problem.
	miss := serve.EpochStats{Epoch: 0, Served: 10, DeadlineHitRate: 0.5, Utilization: 0.2}
	cur = h.Decide(miss, cur, nil)
	if cur.Mode.Watts != orin.Modes[1].Watts {
		t.Fatalf("floor miss must climb one rung, got %s", cur.Mode.Name)
	}
	// Saturation (backlog at the boundary) jumps straight to the top.
	sat := serve.EpochStats{Epoch: 1, Served: 30, DeadlineHitRate: 0.2, QueueDepth: 9, Utilization: 1.4}
	cur = h.Decide(sat, cur, nil)
	top := orin.Modes[len(orin.Modes)-1]
	if cur.Mode.Watts != top.Watts {
		t.Fatalf("saturation must jump to the top rung, got %s", cur.Mode.Name)
	}
	// Recovery: one descent per Patience healthy epochs. The rung below
	// the top never failed, so no backoff blocks it.
	good := serve.EpochStats{Served: 10, DeadlineHitRate: 1, QueueDepth: 0, Utilization: 0.05}
	good.Epoch = 2
	cur = h.Decide(good, cur, nil)
	if cur.Mode.Watts != top.Watts {
		t.Fatalf("one good epoch must not yet descend (patience), got %s", cur.Mode.Name)
	}
	good.Epoch = 3
	cur = h.Decide(good, cur, nil)
	if cur.Mode.Watts != orin.Modes[2].Watts {
		t.Fatalf("patience satisfied on an idle fleet must descend one rung, got %s", cur.Mode.Name)
	}
	// Rung 1 failed at epoch 1 (backoff 4 → retry at 5): the descent
	// into it is blocked until then.
	good.Epoch = 4
	cur = h.Decide(good, cur, nil)
	good.Epoch = 5
	cur = h.Decide(good, cur, nil)
	if cur.Mode.Watts != orin.Modes[1].Watts {
		t.Fatalf("backoff expired: idle fleet must descend into the once-failed rung, got %s", cur.Mode.Name)
	}
}

// TestHysteresisSaturationEscalation: pinned at the top rung, sustained
// saturation must stretch the adaptation cadence, then drop to the
// int8 inference rung, and only then escalate the overload policy —
// accuracy is spent before frames, and bounded quantization error
// before whole adaptation steps.
func TestHysteresisSaturationEscalation(t *testing.T) {
	h := &Hysteresis{BudgetW: 30}
	cur := h.Start(serve.Config{Mode: orin.Mode60W, Policy: stream.DropNone, AdaptEvery: 2})
	bad := serve.EpochStats{Served: 40, DeadlineHitRate: 0.1, QueueDepth: 20, Utilization: 1.8}
	cur = h.Decide(bad, cur, nil) // 15 → 30 (top of the 30 W budget)
	if cur.Mode.Watts != 30 {
		t.Fatalf("expected the 30 W rung, got %s", cur.Mode.Name)
	}
	cur = h.Decide(bad, cur, nil)
	if cur.AdaptEvery != 4 {
		t.Fatalf("saturated at top rung: cadence must stretch to 4, got %d", cur.AdaptEvery)
	}
	cur = h.Decide(bad, cur, nil)
	if cur.AdaptEvery != 8 {
		t.Fatalf("cadence must stretch to its 4× cap, got %d", cur.AdaptEvery)
	}
	cur = h.Decide(bad, cur, nil)
	if !cur.Quantized {
		t.Fatal("cadence capped: the int8 rung must engage before any shedding")
	}
	if cur.Policy != stream.DropNone {
		t.Fatalf("quantization must precede policy escalation, got %v", cur.Policy)
	}
	cur = h.Decide(bad, cur, nil)
	if cur.Policy != stream.SkipAdapt {
		t.Fatalf("int8 engaged: policy must escalate to skip-adapt, got %v", cur.Policy)
	}
	cur = h.Decide(bad, cur, nil)
	if cur.Policy != stream.DropFrames {
		t.Fatalf("policy must escalate to drop-frames, got %v", cur.Policy)
	}
	if cur.Mode.Watts > 30 {
		t.Fatalf("escalation must never break the budget, got %s", cur.Mode.Name)
	}
	// Recovery retraces in reverse: policy first, precision after.
	good := serve.EpochStats{Epoch: 10, Served: 10, DeadlineHitRate: 1, QueueDepth: 0, Utilization: 0.05}
	for i := 0; i < 2*h.patience(); i++ {
		good.Epoch++
		cur = h.Decide(good, cur, nil)
	}
	if cur.Policy != stream.DropNone {
		t.Fatalf("recovery must restore the policy ladder first, got %v", cur.Policy)
	}
	if !cur.Quantized {
		t.Fatal("precision must restore after policy, not before")
	}
	good.Epoch++
	for i := 0; i < h.patience(); i++ {
		good.Epoch++
		cur = h.Decide(good, cur, nil)
	}
	if cur.Quantized {
		t.Fatal("healthy epochs past patience must restore float32 precision")
	}
}

// TestByName covers the CLI constructor including the budget floor.
func TestByName(t *testing.T) {
	for _, name := range []string{"static", "hysteresis", "predictive", "oracle"} {
		ctl, err := ByName(name, 0)
		if err != nil || ctl.Name() != name {
			t.Fatalf("ByName(%q): %v, %v", name, ctl, err)
		}
	}
	if _, err := ByName("pid", 0); err == nil || !strings.Contains(err.Error(), "pid") {
		t.Fatalf("unknown governor accepted: %v", err)
	}
	if _, err := ByName("hysteresis", 10); err == nil {
		t.Fatal("a budget below the lowest mode must be rejected")
	}
}

// TestLadder pins the budget filtering.
func TestLadder(t *testing.T) {
	all, err := Ladder(0)
	if err != nil || len(all) != len(orin.Modes) {
		t.Fatalf("unconstrained ladder: %v, %v", all, err)
	}
	l30, err := Ladder(30)
	if err != nil || len(l30) != 2 || l30[len(l30)-1].Watts != 30 {
		t.Fatalf("30 W ladder: %v, %v", l30, err)
	}
	if _, err := Ladder(10); err == nil {
		t.Fatal("10 W ladder must fail")
	}
	if math.Abs(l30[0].IdleWatts-orin.Mode15W.IdleWatts) > 1e-12 {
		t.Fatal("ladder must preserve mode parameters")
	}
}
