package forecast

import "fmt"

// Checkpoint support: a durable stream checkpoint (internal/serve)
// must carry the stream's forecaster history across a board failure —
// a recovered stream whose forecaster restarts cold predicts zero load
// for its first epochs, which is exactly when the failover destination
// needs the demand signal most. Snapshot and Restore flatten the
// built-in models to plain float64 state so any binary codec can carry
// them without knowing the model internals.

// Snapshot extracts a built-in forecaster's full state for
// checkpointing: the model kind (its Name) and a flat state vector
// Restore can rebuild it from. ok is false for forecaster
// implementations this package does not know — callers checkpoint
// nothing for those and restore a fresh model instead.
func Snapshot(f Forecaster) (kind string, state []float64, ok bool) {
	switch v := f.(type) {
	case *Naive:
		return v.Name(), []float64{v.last}, true
	case *EWMA:
		return v.Name(), []float64{v.Alpha, v.level, boolToF(v.seen)}, true
	case *Holt:
		return v.Name(), []float64{v.Alpha, v.Beta, v.level, v.trend, boolToF(v.seen)}, true
	}
	return "", nil, false
}

// Restore rebuilds a forecaster from a Snapshot. The kind selects the
// model and the state vector must have the exact length Snapshot
// produced for it; anything else is a corrupt checkpoint.
func Restore(kind string, state []float64) (Forecaster, error) {
	switch kind {
	case "naive":
		if len(state) != 1 {
			return nil, fmt.Errorf("forecast: naive state has %d values, want 1", len(state))
		}
		return &Naive{last: state[0]}, nil
	case "ewma":
		if len(state) != 3 {
			return nil, fmt.Errorf("forecast: ewma state has %d values, want 3", len(state))
		}
		return &EWMA{Alpha: state[0], level: state[1], seen: state[2] != 0}, nil
	case "holt":
		if len(state) != 5 {
			return nil, fmt.Errorf("forecast: holt state has %d values, want 5", len(state))
		}
		return &Holt{Alpha: state[0], Beta: state[1], level: state[2], trend: state[3], seen: state[4] != 0}, nil
	}
	return nil, fmt.Errorf("forecast: unknown forecaster kind %q", kind)
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
