package forecast

import (
	"math"
	"testing"
)

// feed drives a forecaster through a series and returns the one-step
// forecasts made *before* each observation (so errs[i] compares the
// forecast available at epoch i against what epoch i actually brought).
func feed(f Forecaster, series []float64) []float64 {
	out := make([]float64, len(series))
	for i, v := range series {
		out[i] = f.Forecast()
		f.Observe(v)
	}
	return out
}

func sumAbsErr(forecasts, series []float64, from int) float64 {
	s := 0.0
	for i := from; i < len(series); i++ {
		s += math.Abs(forecasts[i] - series[i])
	}
	return s
}

// TestNaiveLagsByOneEpoch pins the baseline: the naive forecast is
// exactly the previous observation.
func TestNaiveLagsByOneEpoch(t *testing.T) {
	series := []float64{3, 7, 2, 9, 9, 0}
	f := NewNaive()
	got := feed(f, series)
	if got[0] != 0 {
		t.Fatalf("naive forecast before any observation = %v, want 0", got[0])
	}
	for i := 1; i < len(series); i++ {
		if got[i] != series[i-1] {
			t.Fatalf("naive forecast at %d = %v, want previous observation %v", i, got[i], series[i-1])
		}
	}
}

// TestEWMAConvergesToPlateau: on a constant series the EWMA forecast
// converges geometrically to the plateau and never overshoots it.
func TestEWMAConvergesToPlateau(t *testing.T) {
	f := NewEWMA(0.5)
	f.Observe(0) // start from a cold level so convergence is visible
	prevGap := math.Inf(1)
	for i := 0; i < 30; i++ {
		f.Observe(10)
		gap := math.Abs(10 - f.Forecast())
		if f.Forecast() > 10+1e-12 {
			t.Fatalf("EWMA overshot the plateau: %v", f.Forecast())
		}
		if gap > prevGap+1e-12 {
			t.Fatalf("EWMA gap grew at step %d: %v after %v", i, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 1e-3 {
		t.Fatalf("EWMA never converged: gap %v after 30 epochs", prevGap)
	}
}

// TestHoltTracksRamp is the reason Holt ships: on a linear ramp its
// one-step forecast error vanishes once the trend is learned, while
// naive stays one full slope behind and EWMA lags even further.
func TestHoltTracksRamp(t *testing.T) {
	series := make([]float64, 40)
	for i := range series {
		series[i] = float64(4 * i) // slope 4 per epoch
	}
	holt := feed(NewHolt(0, 0), series)
	naive := feed(NewNaive(), series)
	ewma := feed(NewEWMA(0), series)

	// After a warmup the trend term must have closed the lag.
	if err := math.Abs(holt[len(series)-1] - series[len(series)-1]); err > 0.5 {
		t.Fatalf("Holt still %v off the ramp after 40 epochs", err)
	}
	hErr := sumAbsErr(holt, series, 10)
	nErr := sumAbsErr(naive, series, 10)
	eErr := sumAbsErr(ewma, series, 10)
	if hErr >= nErr {
		t.Fatalf("Holt ramp error %v not below naive's %v", hErr, nErr)
	}
	if nErr >= eErr {
		t.Fatalf("scenario broken: naive ramp error %v should beat EWMA's %v", nErr, eErr)
	}
}

// TestHoltReversalAndClamp: when a ramp reverses into silence, Holt's
// trend undershoots — the forecast must clamp at zero rather than
// predict negative arrivals, and must recover to the new level.
func TestHoltReversalAndClamp(t *testing.T) {
	f := NewHolt(0, 0)
	for i := 0; i < 10; i++ {
		f.Observe(float64(10 * i))
	}
	for i := 0; i < 40; i++ {
		f.Observe(0)
		if fc := f.Forecast(); fc < 0 {
			t.Fatalf("forecast went negative: %v", fc)
		}
	}
	if fc := f.Forecast(); fc > 1e-6 {
		t.Fatalf("Holt never recovered from the reversal: forecast %v", fc)
	}
}

// TestForecastersDeterministic: identical observation sequences produce
// bitwise identical forecasts — the control plane's decisions must be
// reproducible.
func TestForecastersDeterministic(t *testing.T) {
	series := []float64{2, 2, 30, 28, 31, 2, 2, 2, 15, 30}
	for _, name := range []string{"naive", "ewma", "holt"} {
		mk, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := feed(mk(), series)
		b := feed(mk(), series)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s diverged at %d: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// TestByName covers resolution, naming, and the unknown-model error.
func TestByName(t *testing.T) {
	for _, name := range []string{"naive", "ewma", "holt"} {
		mk, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if got := mk().Name(); got != name {
			t.Fatalf("ByName(%q) built %q", name, got)
		}
	}
	if _, err := ByName("arima"); err == nil {
		t.Fatal("unknown forecaster accepted")
	}
	if Default().Name() != "holt" {
		t.Fatalf("default forecaster is %q, want holt", Default().Name())
	}
}
