// Package forecast is the shared arrival-rate forecasting subsystem of
// the fleet control plane: small, deterministic time-series models fed
// one observation per control epoch (the epoch's arrival count) that
// predict the next epoch's load. Every control layer consumes the same
// forecasts — serve.EpochStats carries them per stream, govern's
// Predictive controller pre-climbs the power ladder on them, and
// internal/shard scores migration sources/destinations and lull
// consolidation with them — so the quality of one estimator bounds the
// quality of every placement and actuation decision at once (packing
// quality is bounded by load-estimate quality, not by the packing
// rule).
//
// Three models ship, in increasing order of what they can track:
//
//   - Naive repeats the last observation — the one-epoch-lag baseline
//     every reactive controller implicitly uses, kept as the bar the
//     smoothing models must beat.
//   - EWMA is level-only exponential smoothing: robust to noise,
//     converges to any plateau, but lags ramps by ~1/Alpha epochs.
//   - Holt is double exponential smoothing (level + linear trend): it
//     extrapolates ramps and flags trend reversals one epoch after
//     they start, at the price of transient overshoot when a trend
//     ends.
//
// All models are causal: they see only past epochs, never the replay's
// future arrival stamps. A burst onset therefore still surprises them
// by exactly one epoch — the residual gap a clairvoyant oracle keeps.
//
// Forecast publications are also observable: each epoch's prediction
// is emitted as a "forecast" instant on the internal/obs event-time
// trace, so a governor decision can be read side by side with the
// forecast it acted on.
package forecast

import "fmt"

// Forecaster is one stream's (or one board's) arrival-rate model.
// Implementations are plain values: cheap to copy, deterministic, and
// owned by exactly one control loop at a time (a migrating stream's
// forecaster travels with it in the serve.Handoff).
type Forecaster interface {
	// Name labels the model in reports and CLIs.
	Name() string
	// Observe records the value of the epoch that just ended (an
	// arrival count; fractional values are fine).
	Observe(v float64)
	// Forecast predicts the next epoch's value. It is never negative
	// and is 0 before the first observation.
	Forecast() float64
}

// Factory builds a fresh forecaster per stream. serve.Config and
// shard.Config carry a Factory, not a Forecaster, because every stream
// needs its own state.
type Factory func() Forecaster

// Naive is the one-epoch-lag baseline: tomorrow looks exactly like
// today. Reactive governors (govern.Hysteresis) behave as if this were
// the forecast, which is what makes it the comparison floor.
type Naive struct {
	last float64
}

// NewNaive returns the lag-1 baseline forecaster.
func NewNaive() *Naive { return &Naive{} }

// Name implements Forecaster.
func (n *Naive) Name() string { return "naive" }

// Observe implements Forecaster.
func (n *Naive) Observe(v float64) { n.last = v }

// Forecast implements Forecaster.
func (n *Naive) Forecast() float64 { return clamp(n.last) }

// DefaultAlpha is the level-smoothing factor used when none is set:
// heavy enough that a plateau is trusted within a couple of epochs,
// light enough that one noisy epoch does not whipsaw the controls.
const DefaultAlpha = 0.6

// DefaultBeta is Holt's trend-smoothing factor used when none is set.
const DefaultBeta = 0.4

// EWMA is level-only exponential smoothing:
// level ← Alpha·v + (1−Alpha)·level.
type EWMA struct {
	// Alpha is the smoothing factor in (0, 1] (default DefaultAlpha).
	Alpha float64

	level float64
	seen  bool
}

// NewEWMA returns an exponential smoother with the given Alpha
// (0 selects DefaultAlpha).
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// Name implements Forecaster.
func (e *EWMA) Name() string { return "ewma" }

func (e *EWMA) alpha() float64 {
	if e.Alpha > 0 && e.Alpha <= 1 {
		return e.Alpha
	}
	return DefaultAlpha
}

// Observe implements Forecaster.
func (e *EWMA) Observe(v float64) {
	if !e.seen {
		e.level, e.seen = v, true
		return
	}
	a := e.alpha()
	e.level = a*v + (1-a)*e.level
}

// Forecast implements Forecaster.
func (e *EWMA) Forecast() float64 { return clamp(e.level) }

// Holt is double exponential smoothing with a linear trend term
// (Holt 1957): level tracks where the series is, trend tracks how fast
// it is moving, and the one-step forecast is level + trend. On a ramp
// the trend term closes the lag EWMA cannot; after a reversal the
// trend flips sign one epoch later.
type Holt struct {
	// Alpha is the level-smoothing factor in (0, 1] (default
	// DefaultAlpha); Beta the trend-smoothing factor (default
	// DefaultBeta).
	Alpha, Beta float64

	level, trend float64
	seen         bool
}

// NewHolt returns a Holt linear-trend forecaster with the given
// factors (0 selects the defaults).
func NewHolt(alpha, beta float64) *Holt { return &Holt{Alpha: alpha, Beta: beta} }

// Name implements Forecaster.
func (h *Holt) Name() string { return "holt" }

func (h *Holt) factors() (a, b float64) {
	a, b = h.Alpha, h.Beta
	if a <= 0 || a > 1 {
		a = DefaultAlpha
	}
	if b <= 0 || b > 1 {
		b = DefaultBeta
	}
	return a, b
}

// Observe implements Forecaster.
func (h *Holt) Observe(v float64) {
	if !h.seen {
		h.level, h.trend, h.seen = v, 0, true
		return
	}
	a, b := h.factors()
	prev := h.level
	h.level = a*v + (1-a)*(h.level+h.trend)
	h.trend = b*(h.level-prev) + (1-b)*h.trend
}

// Forecast implements Forecaster.
func (h *Holt) Forecast() float64 { return clamp(h.level + h.trend) }

// clamp floors a forecast at zero: a negative arrival rate is a model
// artifact (Holt's trend undershooting a drained stream), never a
// prediction the control plane should act on.
func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// Default is the factory the serving stack uses when none is
// configured: Holt with the default factors, because ramps and burst
// tails are exactly the regimes the predictive control plane exists
// for.
func Default() Forecaster { return NewHolt(0, 0) }

// ByName resolves a forecaster factory by CLI name: "naive", "ewma" or
// "holt".
func ByName(name string) (Factory, error) {
	switch name {
	case "naive":
		return func() Forecaster { return NewNaive() }, nil
	case "ewma":
		return func() Forecaster { return NewEWMA(0) }, nil
	case "holt":
		return func() Forecaster { return NewHolt(0, 0) }, nil
	}
	return nil, fmt.Errorf("forecast: unknown forecaster %q (have naive/ewma/holt)", name)
}
