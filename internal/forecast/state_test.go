package forecast

import (
	"math"
	"testing"
)

// TestSnapshotRestoreRoundTrip drives each built-in model through a
// history, snapshots it, restores a copy, and checks the copy forecasts
// identically — both immediately and after further shared observations
// (i.e. the full internal state travelled, not just the last output).
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	history := []float64{3, 7, 5, 12, 9}
	future := []float64{4, 11, 6}
	models := []Forecaster{NewNaive(), NewEWMA(0.3), NewHolt(0.5, 0.2)}
	for _, f := range models {
		for _, v := range history {
			f.Observe(v)
		}
		kind, state, ok := Snapshot(f)
		if !ok {
			t.Fatalf("%s: Snapshot not ok", f.Name())
		}
		if kind != f.Name() {
			t.Fatalf("%s: Snapshot kind %q", f.Name(), kind)
		}
		g, err := Restore(kind, state)
		if err != nil {
			t.Fatalf("%s: Restore: %v", f.Name(), err)
		}
		if g.Forecast() != f.Forecast() {
			t.Fatalf("%s: restored forecast %v != original %v", f.Name(), g.Forecast(), f.Forecast())
		}
		for _, v := range future {
			f.Observe(v)
			g.Observe(v)
			if g.Forecast() != f.Forecast() {
				t.Fatalf("%s: diverged after restore: %v != %v", f.Name(), g.Forecast(), f.Forecast())
			}
		}
	}
}

// TestSnapshotPreservesSeen pins the cold-start flag: a model that has
// seen exactly one observation must restore as seeded (next Observe
// smooths), not cold (next Observe re-seeds).
func TestSnapshotPreservesSeen(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(10)
	kind, state, _ := Snapshot(e)
	g, err := Restore(kind, state)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(0)
	g.Observe(0)
	if want := 5.0; math.Abs(g.Forecast()-want) > 1e-12 || g.Forecast() != e.Forecast() {
		t.Fatalf("restored EWMA re-seeded: forecast %v, want %v", g.Forecast(), want)
	}
}

// TestRestoreRejectsCorruptState covers the corrupt-checkpoint paths.
func TestRestoreRejectsCorruptState(t *testing.T) {
	cases := []struct {
		kind  string
		state []float64
	}{
		{"naive", nil},
		{"ewma", []float64{1}},
		{"holt", []float64{1, 2, 3}},
		{"oracle", []float64{1}},
	}
	for _, c := range cases {
		if _, err := Restore(c.kind, c.state); err == nil {
			t.Fatalf("Restore(%q, %v) accepted corrupt state", c.kind, c.state)
		}
	}
}

// TestSnapshotUnknownForecaster: custom implementations are not
// snapshotable; callers must fall back to a fresh model.
func TestSnapshotUnknownForecaster(t *testing.T) {
	if _, _, ok := Snapshot(customForecaster{}); ok {
		t.Fatal("Snapshot claimed to handle an unknown forecaster")
	}
}

type customForecaster struct{}

func (customForecaster) Name() string      { return "custom" }
func (customForecaster) Observe(float64)   {}
func (customForecaster) Forecast() float64 { return 0 }
