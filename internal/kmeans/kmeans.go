// Package kmeans implements K-means++ clustering. It is the semantic
// encoding substrate of the CARLANE SOTA baseline (Stuhr et al. 2022),
// which clusters feature embeddings of source and target samples to
// transfer knowledge between domains.
package kmeans

import (
	"fmt"
	"math"

	"ldbnadapt/internal/tensor"
)

// Result holds a clustering of n points into k centroids.
type Result struct {
	// Centroids has shape [k, dim].
	Centroids *tensor.Tensor
	// Assign maps each input point to its centroid index.
	Assign []int
	// Inertia is the sum of squared distances to assigned centroids.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Config controls the clustering.
type Config struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds Lloyd iterations.
	MaxIter int
	// Tol stops early when the relative inertia improvement drops
	// below it.
	Tol float64
}

// DefaultConfig returns sensible defaults for embedding clustering.
func DefaultConfig(k int) Config { return Config{K: k, MaxIter: 50, Tol: 1e-4} }

// sqDist returns the squared Euclidean distance between rows a and b.
func sqDist(data []float32, a, b, dim int) float64 {
	s := 0.0
	ra := data[a*dim : (a+1)*dim]
	rb := data[b*dim : (b+1)*dim]
	for i := range ra {
		d := float64(ra[i]) - float64(rb[i])
		s += d * d
	}
	return s
}

// pointCentroidDist returns squared distance from point p to centroid c.
func pointCentroidDist(points *tensor.Tensor, cents *tensor.Tensor, p, c int) float64 {
	dim := points.Dim(1)
	s := 0.0
	rp := points.Data[p*dim : (p+1)*dim]
	rc := cents.Data[c*dim : (c+1)*dim]
	for i := range rp {
		d := float64(rp[i]) - float64(rc[i])
		s += d * d
	}
	return s
}

// Run clusters points [n, dim] with K-means++ initialization followed
// by Lloyd iterations.
func Run(points *tensor.Tensor, cfg Config, rng *tensor.RNG) (*Result, error) {
	if points.NDim() != 2 {
		return nil, fmt.Errorf("kmeans: points must be [n,dim], got %v", points.Shape())
	}
	n, dim := points.Dim(0), points.Dim(1)
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("kmeans: k=%d with n=%d points", cfg.K, n)
	}
	if cfg.MaxIter < 1 {
		cfg.MaxIter = 1
	}

	// K-means++ seeding.
	cents := tensor.New(cfg.K, dim)
	chosen := make([]int, 0, cfg.K)
	first := rng.Intn(n)
	chosen = append(chosen, first)
	copy(cents.Data[:dim], points.Data[first*dim:(first+1)*dim])
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(points.Data, i, first, dim)
	}
	for c := 1; c < cfg.K; c++ {
		total := 0.0
		for _, d := range minDist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n) // all points identical
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range minDist {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		chosen = append(chosen, pick)
		copy(cents.Data[c*dim:(c+1)*dim], points.Data[pick*dim:(pick+1)*dim])
		for i := range minDist {
			if d := sqDist(points.Data, i, pick, dim); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	assign := make([]int, n)
	counts := make([]int, cfg.K)
	prevInertia := math.Inf(1)
	res := &Result{Centroids: cents, Assign: assign}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		inertia := 0.0
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < cfg.K; c++ {
				if d := pointCentroidDist(points, cents, i, c); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			inertia += bestD
		}
		res.Inertia = inertia
		// Update step.
		cents.Zero()
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			dst := cents.Data[c*dim : (c+1)*dim]
			src := points.Data[i*dim : (i+1)*dim]
			for j := range dst {
				dst[j] += src[j]
			}
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					if d := pointCentroidDist(points, cents, i, assign[i]); d > farD {
						far, farD = i, d
					}
				}
				copy(cents.Data[c*dim:(c+1)*dim], points.Data[far*dim:(far+1)*dim])
				continue
			}
			inv := float32(1.0 / float64(counts[c]))
			dst := cents.Data[c*dim : (c+1)*dim]
			for j := range dst {
				dst[j] *= inv
			}
		}
		if prevInertia-inertia <= cfg.Tol*math.Max(prevInertia, 1e-12) {
			break
		}
		prevInertia = inertia
	}
	// Final assignment pass so Assign matches the returned centroids.
	inertia := 0.0
	for i := 0; i < n; i++ {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < cfg.K; c++ {
			if d := pointCentroidDist(points, cents, i, c); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		inertia += bestD
	}
	res.Inertia = inertia
	return res, nil
}

// AssignTo returns the index of the nearest centroid for a single
// point [dim].
func AssignTo(cents *tensor.Tensor, point []float32) int {
	k, dim := cents.Dim(0), cents.Dim(1)
	best, bestD := 0, math.Inf(1)
	for c := 0; c < k; c++ {
		rc := cents.Data[c*dim : (c+1)*dim]
		s := 0.0
		for i := range point {
			d := float64(point[i]) - float64(rc[i])
			s += d * d
		}
		if s < bestD {
			best, bestD = c, s
		}
	}
	return best
}
