package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"ldbnadapt/internal/tensor"
)

// threeBlobs generates n points around three well-separated centres.
func threeBlobs(n int, rng *tensor.RNG) (*tensor.Tensor, []int) {
	centres := [][2]float64{{0, 0}, {10, 0}, {0, 10}}
	pts := tensor.New(n, 2)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		truth[i] = c
		pts.Set(float32(centres[c][0]+rng.Normal(0, 0.5)), i, 0)
		pts.Set(float32(centres[c][1]+rng.Normal(0, 0.5)), i, 1)
	}
	return pts, truth
}

func TestRecoverWellSeparatedClusters(t *testing.T) {
	rng := tensor.NewRNG(1)
	pts, truth := threeBlobs(90, rng)
	res, err := Run(pts, DefaultConfig(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	// All points in a true blob must share an assignment.
	for c := 0; c < 3; c++ {
		want := -1
		for i, tc := range truth {
			if tc != c {
				continue
			}
			if want == -1 {
				want = res.Assign[i]
			} else if res.Assign[i] != want {
				t.Fatalf("blob %d split across clusters", c)
			}
		}
	}
	if res.Inertia > 90*3*0.5*0.5*4 {
		t.Fatalf("inertia %v too large for tight blobs", res.Inertia)
	}
}

func TestAssignmentsMinimizeDistance(t *testing.T) {
	rng := tensor.NewRNG(2)
	pts := tensor.New(40, 3)
	rng.FillNormal(pts, 0, 2)
	res, err := Run(pts, DefaultConfig(4), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		own := pointCentroidDist(pts, res.Centroids, i, res.Assign[i])
		for c := 0; c < 4; c++ {
			if d := pointCentroidDist(pts, res.Centroids, i, c); d < own-1e-9 {
				t.Fatalf("point %d closer to centroid %d than its own", i, c)
			}
		}
	}
}

func TestInputValidation(t *testing.T) {
	rng := tensor.NewRNG(3)
	if _, err := Run(tensor.New(5), DefaultConfig(2), rng); err == nil {
		t.Fatal("1-D input accepted")
	}
	if _, err := Run(tensor.New(3, 2), DefaultConfig(5), rng); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Run(tensor.New(3, 2), DefaultConfig(0), rng); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSingleCluster(t *testing.T) {
	rng := tensor.NewRNG(4)
	pts := tensor.New(10, 2)
	rng.FillNormal(pts, 3, 1)
	res, err := Run(pts, DefaultConfig(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Centroid must be the mean.
	for d := 0; d < 2; d++ {
		s := 0.0
		for i := 0; i < 10; i++ {
			s += float64(pts.At(i, d))
		}
		if math.Abs(float64(res.Centroids.At(0, d))-s/10) > 1e-4 {
			t.Fatal("single centroid is not the mean")
		}
	}
}

func TestIdenticalPoints(t *testing.T) {
	rng := tensor.NewRNG(5)
	pts := tensor.Full(2.5, 8, 2)
	res, err := Run(pts, DefaultConfig(2), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("identical points inertia %v", res.Inertia)
	}
}

func TestAssignTo(t *testing.T) {
	cents := tensor.FromSlice([]float32{0, 0, 10, 10}, 2, 2)
	if AssignTo(cents, []float32{1, 1}) != 0 {
		t.Fatal("near-origin point misassigned")
	}
	if AssignTo(cents, []float32{9, 9}) != 1 {
		t.Fatal("far point misassigned")
	}
}

func TestPropInertiaNonIncreasingWithK(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		pts := tensor.New(30, 2)
		rng.FillNormal(pts, 0, 3)
		r1, err1 := Run(pts, DefaultConfig(2), tensor.NewRNG(seed+1))
		r2, err2 := Run(pts, DefaultConfig(8), tensor.NewRNG(seed+1))
		if err1 != nil || err2 != nil {
			return false
		}
		// More clusters can only help (k-means++ is near-optimal on
		// random Gaussians; allow slack for local minima).
		return r2.Inertia <= r1.Inertia*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropAssignmentsInRange(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		rng := tensor.NewRNG(seed)
		pts := tensor.New(20, 2)
		rng.FillNormal(pts, 0, 1)
		res, err := Run(pts, DefaultConfig(k), rng)
		if err != nil {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
