package nn

import (
	"math"
	"testing"

	"ldbnadapt/internal/tensor"
)

// scalarLoss is a deterministic test loss: L = Σ w_i · y_i with fixed
// pseudo-random weights, so dL/dy = w.
func scalarLoss(y *tensor.Tensor) (float64, *tensor.Tensor) {
	rng := tensor.NewRNG(777)
	w := tensor.New(y.Shape()...)
	rng.FillUniform(w, -1, 1)
	return tensor.Dot(y, w), w
}

// numericalInputGrad estimates dL/dx by central differences through
// layer.Forward.
func numericalInputGrad(l Layer, x *tensor.Tensor, mode Mode, eps float32) *tensor.Tensor {
	g := tensor.New(x.Shape()...)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp, _ := scalarLoss(l.Forward(x, mode))
		x.Data[i] = orig - eps
		lm, _ := scalarLoss(l.Forward(x, mode))
		x.Data[i] = orig
		g.Data[i] = float32((lp - lm) / (2 * float64(eps)))
	}
	return g
}

// numericalParamGrad estimates dL/dp for one parameter tensor.
func numericalParamGrad(l Layer, x *tensor.Tensor, p *Param, mode Mode, eps float32) *tensor.Tensor {
	g := tensor.New(p.Value.Shape()...)
	for i := range p.Value.Data {
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + eps
		lp, _ := scalarLoss(l.Forward(x, mode))
		p.Value.Data[i] = orig - eps
		lm, _ := scalarLoss(l.Forward(x, mode))
		p.Value.Data[i] = orig
		g.Data[i] = float32((lp - lm) / (2 * float64(eps)))
	}
	return g
}

// checkGrads runs forward+backward once and compares the analytic
// gradients (input and all params) against central differences.
func checkGrads(t *testing.T, l Layer, x *tensor.Tensor, mode Mode, tol float64) {
	t.Helper()
	// BatchNorm in Train/Adapt mode mutates running stats each forward;
	// freeze that during numeric probing by snapshotting and restoring.
	type statser interface {
		SetRunningStats(mean, varc *tensor.Tensor)
	}
	var rm, rv *tensor.Tensor
	if bn, ok := l.(*BatchNorm2D); ok {
		rm, rv = bn.RunningMean.Clone(), bn.RunningVar.Clone()
	}
	restore := func() {
		if bn, ok := l.(*BatchNorm2D); ok && rm != nil {
			bn.SetRunningStats(rm, rv)
		}
	}

	ZeroGrads(l.Params())
	y := l.Forward(x, mode)
	_, dy := scalarLoss(y)
	dx := l.Backward(dy)

	restore()
	numDX := numericalInputGrad(l, x, mode, 1e-2)
	diff := tensor.Sub(dx, numDX).Norm2()
	ref := math.Max(numDX.Norm2(), 1e-8)
	if diff/ref > tol {
		t.Fatalf("%s: input gradient relative error %.4g (tol %.4g)", l.Name(), diff/ref, tol)
	}
	for _, p := range l.Params() {
		restore()
		numDP := numericalParamGrad(l, x, p, mode, 1e-2)
		diff := tensor.Sub(p.Grad, numDP).Norm2()
		ref := math.Max(numDP.Norm2(), 1e-8)
		if diff/ref > tol {
			t.Fatalf("%s: param %s gradient relative error %.4g (tol %.4g)", l.Name(), p.Name, diff/ref, tol)
		}
	}
	restore()
}

func TestConv2DGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}
	conv := NewConv2D("conv", 2, 3, g, true, rng)
	x := tensor.New(2, 2, 5, 4)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, conv, x, Train, 2e-2)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1}
	conv := NewConv2D("convs2", 3, 4, g, false, rng)
	x := tensor.New(1, 3, 7, 6)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, conv, x, Train, 2e-2)
}

func TestConv1x1Gradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	g := tensor.ConvGeom{KH: 1, KW: 1, SH: 1, SW: 1}
	conv := NewConv2D("conv1x1", 4, 2, g, false, rng)
	x := tensor.New(2, 4, 3, 3)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, conv, x, Train, 2e-2)
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	lin := NewLinear("fc", 6, 4, rng)
	x := tensor.New(3, 6)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, lin, x, Train, 2e-2)
}

func TestReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	relu := NewReLU("relu")
	x := tensor.New(2, 3, 4, 2)
	// Keep values away from the kink for a stable finite difference.
	rng.FillUniform(x, 0.1, 1)
	tensor.ApplyInPlace(x, func(v float32) float32 {
		if int(v*1000)%2 == 0 {
			return -v
		}
		return v
	})
	checkGrads(t, relu, x, Train, 2e-2)
}

func TestBatchNormGradientsTrainMode(t *testing.T) {
	rng := tensor.NewRNG(6)
	bn := NewBatchNorm2D("bn", 3)
	rng.FillUniform(bn.Gamma.Value, 0.5, 1.5)
	rng.FillUniform(bn.Beta.Value, -0.5, 0.5)
	x := tensor.New(2, 3, 4, 3)
	rng.FillNormal(x, 0.7, 1.3)
	checkGrads(t, bn, x, Train, 5e-2)
}

func TestBatchNormGradientsAdaptMode(t *testing.T) {
	rng := tensor.NewRNG(7)
	bn := NewBatchNorm2D("bn", 2)
	bn.AdaptMomentum = 1 // exact-gradient endpoint of the EMA family
	rng.FillUniform(bn.Gamma.Value, 0.5, 1.5)
	x := tensor.New(3, 2, 3, 4)
	rng.FillNormal(x, -0.3, 2.0)
	checkGrads(t, bn, x, Adapt, 5e-2)
}

func TestBatchNormGradientsEvalMode(t *testing.T) {
	rng := tensor.NewRNG(8)
	bn := NewBatchNorm2D("bn", 3)
	rng.FillUniform(bn.Gamma.Value, 0.5, 1.5)
	mean, varc := tensor.New(3), tensor.New(3)
	rng.FillUniform(mean, -1, 1)
	rng.FillUniform(varc, 0.5, 2)
	bn.SetRunningStats(mean, varc)
	x := tensor.New(2, 3, 3, 3)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, bn, x, Eval, 2e-2)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(9)
	p := NewMaxPool2D("pool", tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2})
	x := tensor.New(2, 2, 6, 4)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, p, x, Train, 2e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(10)
	p := NewGlobalAvgPool("gap")
	x := tensor.New(2, 3, 4, 5)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, p, x, Train, 2e-2)
}

func TestSequentialGradients(t *testing.T) {
	rng := tensor.NewRNG(11)
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}
	seq := NewSequential("net",
		NewConv2D("c1", 1, 2, g, false, rng),
		NewBatchNorm2D("bn1", 2),
		NewReLU("r1"),
		NewFlatten("flat"),
		NewLinear("fc", 2*4*3, 5, rng),
	)
	x := tensor.New(2, 1, 4, 3)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, seq, x, Eval, 3e-2)
}

func TestEntropyLossGradient(t *testing.T) {
	rng := tensor.NewRNG(12)
	logits := tensor.New(4, 6)
	rng.FillNormal(logits, 0, 1.5)
	_, grad := EntropyLoss(logits)
	num := tensor.New(4, 6)
	eps := float32(1e-2)
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := EntropyLoss(logits)
		logits.Data[i] = orig - eps
		lm, _ := EntropyLoss(logits)
		logits.Data[i] = orig
		num.Data[i] = float32((lp - lm) / (2 * float64(eps)))
	}
	diff := tensor.Sub(grad, num).Norm2()
	if diff/math.Max(num.Norm2(), 1e-8) > 2e-2 {
		t.Fatalf("entropy gradient relative error %.4g", diff/num.Norm2())
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	rng := tensor.NewRNG(13)
	logits := tensor.New(5, 4)
	rng.FillNormal(logits, 0, 1)
	targets := []int{0, 3, -1, 2, 1}
	_, grad := CrossEntropyRows(logits, targets)
	eps := float32(1e-2)
	num := tensor.New(5, 4)
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := CrossEntropyRows(logits, targets)
		logits.Data[i] = orig - eps
		lm, _ := CrossEntropyRows(logits, targets)
		logits.Data[i] = orig
		num.Data[i] = float32((lp - lm) / (2 * float64(eps)))
	}
	diff := tensor.Sub(grad, num).Norm2()
	if diff/math.Max(num.Norm2(), 1e-8) > 2e-2 {
		t.Fatalf("cross-entropy gradient relative error %.4g", diff/num.Norm2())
	}
	// Ignored row must receive zero gradient.
	for j := 0; j < 4; j++ {
		if grad.At(2, j) != 0 {
			t.Fatal("ignored row has non-zero gradient")
		}
	}
}

func TestConfidenceLossGradient(t *testing.T) {
	rng := tensor.NewRNG(14)
	logits := tensor.New(3, 5)
	rng.FillNormal(logits, 0, 2)
	_, grad := ConfidenceLoss(logits)
	eps := float32(5e-3)
	num := tensor.New(3, 5)
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := ConfidenceLoss(logits)
		logits.Data[i] = orig - eps
		lm, _ := ConfidenceLoss(logits)
		logits.Data[i] = orig
		num.Data[i] = float32((lp - lm) / (2 * float64(eps)))
	}
	diff := tensor.Sub(grad, num).Norm2()
	if diff/math.Max(num.Norm2(), 1e-8) > 3e-2 {
		t.Fatalf("confidence gradient relative error %.4g", diff/num.Norm2())
	}
}
