package nn

import (
	"fmt"
	"math"

	"ldbnadapt/internal/tensor"
)

// MaxPool2D is a max pooling layer over NCHW tensors.
type MaxPool2D struct {
	name     string
	Geom     tensor.ConvGeom
	lastIdx  []int32 // flat source index per output element (-1 for all-padding windows)
	lastIn   [4]int
	lastOutN int

	inferOut Scratch // Infer-mode output buffer
	adaptOut Scratch // Adapt-mode output buffer
	dxOut    Scratch // backward gradient output
}

// NewMaxPool2D constructs a max-pool layer with the given geometry.
func NewMaxPool2D(name string, g tensor.ConvGeom) *MaxPool2D {
	return &MaxPool2D{name: name, Geom: g}
}

// Name returns the layer identifier.
func (p *MaxPool2D) Name() string { return p.name }

// Params returns nil.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward computes the windowed maximum, remembering argmax indices.
// In Infer mode the output lands in a reusable scratch buffer and the
// argmax cache is skipped.
func (p *MaxPool2D) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	if x.NDim() != 4 {
		panic(fmt.Sprintf("nn: %s: input %v, want [n,c,h,w]", p.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := p.Geom.OutSize(h, w)
	record := !mode.IsInfer()
	var out *tensor.Tensor
	if record {
		if mode == Adapt {
			out = p.adaptOut.For(n, c, oh, ow)
			p.lastIdx = growI32(p.lastIdx, n*c*oh*ow)
		} else {
			out = tensor.New(n, c, oh, ow)
			p.lastIdx = make([]int32, n*c*oh*ow)
		}
		p.lastIn = [4]int{n, c, h, w}
		p.lastOutN = n * c * oh * ow
	} else {
		out = p.inferOut.For(n, c, oh, ow)
		p.lastIdx = nil // Backward after an Infer forward must panic
	}
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			src := x.Data[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := int32(-1)
					for ky := 0; ky < p.Geom.KH; ky++ {
						iy := oy*p.Geom.SH - p.Geom.PH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.Geom.KW; kx++ {
							ix := ox*p.Geom.SW - p.Geom.PW + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := src[iy*w+ix]
							if v > best {
								best = v
								bestIdx = int32((ni*c+ci)*h*w + iy*w + ix)
							}
						}
					}
					if bestIdx < 0 {
						best = 0
					}
					out.Data[oi] = best
					if record {
						p.lastIdx[oi] = bestIdx
					}
					oi++
				}
			}
		}
	}
	return out
}

// Backward routes gradient to each window's argmax.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastIdx == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", p.name))
	}
	if grad.Size() != p.lastOutN {
		panic(fmt.Sprintf("nn: %s: grad size %d, want %d", p.name, grad.Size(), p.lastOutN))
	}
	dx := p.dxOut.For(p.lastIn[0], p.lastIn[1], p.lastIn[2], p.lastIn[3])
	dx.Zero()
	for i, v := range grad.Data {
		if idx := p.lastIdx[i]; idx >= 0 {
			dx.Data[idx] += v
		}
	}
	return dx
}

// GlobalAvgPool averages each channel's spatial extent: [n,c,h,w] → [n,c].
type GlobalAvgPool struct {
	name   string
	lastIn []int
}

// NewGlobalAvgPool constructs a global average-pool layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name returns the layer identifier.
func (p *GlobalAvgPool) Name() string { return p.name }

// Params returns nil.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// Forward averages over H×W per channel.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, _ Mode) *tensor.Tensor {
	if x.NDim() != 4 {
		panic(fmt.Sprintf("nn: %s: input %v, want [n,c,h,w]", p.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p.lastIn = []int{n, c, h, w}
	out := tensor.New(n, c)
	hw := h * w
	inv := 1.0 / float64(hw)
	for i := 0; i < n*c; i++ {
		s := 0.0
		for _, v := range x.Data[i*hw : (i+1)*hw] {
			s += float64(v)
		}
		out.Data[i] = float32(s * inv)
	}
	return out
}

// Backward spreads the gradient uniformly over each channel plane.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastIn == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", p.name))
	}
	n, c, h, w := p.lastIn[0], p.lastIn[1], p.lastIn[2], p.lastIn[3]
	if grad.Size() != n*c {
		panic(fmt.Sprintf("nn: %s: grad %v, want [%d,%d]", p.name, grad.Shape(), n, c))
	}
	dx := tensor.New(n, c, h, w)
	hw := h * w
	inv := float32(1.0 / float64(hw))
	for i := 0; i < n*c; i++ {
		g := grad.Data[i] * inv
		dst := dx.Data[i*hw : (i+1)*hw]
		for j := range dst {
			dst[j] = g
		}
	}
	return dx
}
