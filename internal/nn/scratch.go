package nn

import "ldbnadapt/internal/tensor"

// This file holds the allocation-free plumbing for the hot forward and
// backward paths. Two reuse primitives cover every case:
//
//   - Scratch owns a growable float32 buffer and hands out a tensor
//     header over it. The header itself is cached and re-pointed, so a
//     steady-state caller that asks for the same shape every time
//     performs zero allocations.
//   - View caches only a header over caller-owned storage, for the
//     per-sample sub-tensor views the conv/linear kernels take of a
//     batch (tensor.FromSlice allocates a header + shape slice per
//     call; View makes that a one-time cost per shape).
//
// Ownership contract (see internal/nn/README.md): a tensor returned
// from a Scratch or View is valid only until the owner's next request
// with the same primitive. Layers therefore never let two live uses of
// one Scratch overlap, and callers of Infer/Adapt-mode forwards must
// copy anything they want to keep across calls.

// Scratch is a reusable tensor: a growable buffer plus a cached header.
// The zero value is ready to use.
type Scratch struct {
	buf []float32
	v   View
}

// For returns a tensor of the given shape backed by the scratch buffer,
// growing it when too small. Contents are uninitialized (whatever the
// previous use left); callers that need zeros must Zero() it. The
// returned tensor is only valid until the next For call.
func (s *Scratch) For(shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if cap(s.buf) < n {
		s.buf = make([]float32, n)
	}
	return s.v.Of(s.buf[:n], shape...)
}

// View is a cached tensor header over caller-owned storage. The zero
// value is ready to use.
type View struct {
	t *tensor.Tensor
}

// Of returns a tensor of the given shape whose Data is exactly data.
// The header is reused when the shape matches the previous call, so
// repeated views of equal shape allocate nothing. The returned tensor
// is only valid until the next Of call on the same View.
func (v *View) Of(data []float32, shape ...int) *tensor.Tensor {
	if v.t != nil && shapeEqual(v.t, shape) {
		v.t.Data = data
		return v.t
	}
	// Copy the shape before handing it to FromSlice: its panic path
	// formats the slice, which makes the parameter escape — rebuilding
	// the header from a fresh copy keeps `shape` itself non-escaping,
	// so the hot path's variadic argument stays on the caller's stack
	// instead of costing one []int allocation per call.
	own := make([]int, len(shape))
	copy(own, shape)
	v.t = tensor.FromSlice(data, own...)
	return v.t
}

// shapeEqual reports whether t's shape is exactly shape.
func shapeEqual(t *tensor.Tensor, shape []int) bool {
	if t.NDim() != len(shape) {
		return false
	}
	for i, d := range shape {
		if t.Dim(i) != d {
			return false
		}
	}
	return true
}

// growF32 returns buf resized to n, reallocating only on growth.
func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// growI8 returns buf resized to n, reallocating only on growth.
func growI8(buf []int8, n int) []int8 {
	if cap(buf) < n {
		return make([]int8, n)
	}
	return buf[:n]
}

// growI32 returns buf resized to n, reallocating only on growth.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}
