package nn

import "ldbnadapt/internal/tensor"

// scratchFor returns a tensor with the given shape backed by *buf,
// growing *buf when it is too small. Infer-mode forwards use it to
// reuse their output storage across calls; the returned tensor is only
// valid until the next call that borrows the same buffer.
func scratchFor(buf *[]float32, shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	return tensor.FromSlice((*buf)[:n], shape...)
}
