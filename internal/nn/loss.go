package nn

import (
	"fmt"
	"math"

	"ldbnadapt/internal/tensor"
)

// CrossEntropyRows computes the mean softmax cross-entropy over the
// rows of logits [rows, classes] against integer targets, returning the
// scalar loss and dL/dlogits. A target of -1 marks a row to ignore
// (contributes neither loss nor gradient).
func CrossEntropyRows(logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	if logits.NDim() != 2 {
		panic(fmt.Sprintf("nn: CrossEntropyRows needs 2-D logits, got %v", logits.Shape()))
	}
	rows, classes := logits.Dim(0), logits.Dim(1)
	if len(targets) != rows {
		panic(fmt.Sprintf("nn: CrossEntropyRows got %d targets for %d rows", len(targets), rows))
	}
	probs := tensor.SoftmaxRows(logits)
	grad := tensor.New(rows, classes)
	loss := 0.0
	active := 0
	for i, t := range targets {
		if t < 0 {
			continue
		}
		if t >= classes {
			panic(fmt.Sprintf("nn: target %d out of range (classes=%d)", t, classes))
		}
		active++
		p := probs.At(i, t)
		loss -= math.Log(math.Max(float64(p), 1e-12))
		for j := 0; j < classes; j++ {
			grad.Set(probs.At(i, j), i, j)
		}
		grad.Set(probs.At(i, t)-1, i, t)
	}
	if active == 0 {
		return 0, grad
	}
	inv := float32(1.0 / float64(active))
	tensor.ScaleInPlace(grad, inv)
	return loss / float64(active), grad
}

// EntropyLoss computes the mean Shannon entropy of softmax(logits) over
// rows and its gradient w.r.t. the logits. This is the fully
// unsupervised objective of LD-BN-ADAPT (and of TENT): minimizing
// prediction entropy sharpens decisions on unlabeled target data.
//
// For one row with probabilities p and entropy H = −Σ p log p the
// gradient w.r.t. logit z_k is −p_k (log p_k + H).
func EntropyLoss(logits *tensor.Tensor) (float64, *tensor.Tensor) {
	if logits.NDim() != 2 {
		panic(fmt.Sprintf("nn: EntropyLoss needs 2-D logits, got %v", logits.Shape()))
	}
	rows, classes := logits.Dim(0), logits.Dim(1)
	probs := tensor.SoftmaxRows(logits)
	grad := tensor.New(rows, classes)
	total := 0.0
	inv := 1.0 / float64(rows)
	logp := make([]float64, classes) // reused across rows (fully overwritten each row)
	for i := 0; i < rows; i++ {
		p := probs.Data[i*classes : (i+1)*classes]
		h := 0.0
		for j, pv := range p {
			lp := math.Log(math.Max(float64(pv), 1e-12))
			logp[j] = lp
			h -= float64(pv) * lp
		}
		total += h
		g := grad.Data[i*classes : (i+1)*classes]
		for j, pv := range p {
			g[j] = float32(-float64(pv) * (logp[j] + h) * inv)
		}
	}
	return total * inv, grad
}

// ConfidenceLoss is the negative mean max-probability objective, an
// alternative unsupervised loss used by the ablation study: maximizing
// the winning class's probability also sharpens predictions.
// Returns the loss −mean_i max_c p_ic and its logit gradient.
func ConfidenceLoss(logits *tensor.Tensor) (float64, *tensor.Tensor) {
	if logits.NDim() != 2 {
		panic(fmt.Sprintf("nn: ConfidenceLoss needs 2-D logits, got %v", logits.Shape()))
	}
	rows, classes := logits.Dim(0), logits.Dim(1)
	probs := tensor.SoftmaxRows(logits)
	grad := tensor.New(rows, classes)
	total := 0.0
	inv := 1.0 / float64(rows)
	for i := 0; i < rows; i++ {
		p := probs.Data[i*classes : (i+1)*classes]
		best := 0
		for j, pv := range p {
			if pv > p[best] {
				best = j
			}
		}
		pm := float64(p[best])
		total -= pm
		// d(−p_m)/dz_k = −p_m (δ_km − p_k)
		g := grad.Data[i*classes : (i+1)*classes]
		for j, pv := range p {
			d := -pm * (-float64(pv))
			if j == best {
				d = -pm * (1 - float64(pv))
			}
			g[j] = float32(d * inv)
		}
	}
	return total * inv, grad
}

// GradThroughSoftmax converts a gradient w.r.t. the softmax output p
// into a gradient w.r.t. the logits, row by row:
// dL/dz_k = p_k (g_k − Σ_c g_c p_c).
func GradThroughSoftmax(probs, gradP *tensor.Tensor) *tensor.Tensor {
	rows, classes := probs.Dim(0), probs.Dim(1)
	out := tensor.New(rows, classes)
	for i := 0; i < rows; i++ {
		p := probs.Data[i*classes : (i+1)*classes]
		g := gradP.Data[i*classes : (i+1)*classes]
		dot := float32(0)
		for j := range p {
			dot += p[j] * g[j]
		}
		o := out.Data[i*classes : (i+1)*classes]
		for j := range p {
			o[j] = p[j] * (g[j] - dot)
		}
	}
	return out
}
