package nn

import (
	"math"
	"runtime"
	"testing"

	"ldbnadapt/internal/tensor"
)

// Layer-level bitwise determinism: the sample/channel banding in
// Conv2D and BatchNorm2D must be invisible in the output at any worker
// count. Goldens are computed with the batch gates at +∞ (the inline
// serial path) at GOMAXPROCS 1; candidates run with the gates at 1 so
// even a 5-sample batch fans out.

func lowLayerGates(t *testing.T) {
	t.Helper()
	bp, bn := batchParMin, bnParMin
	batchParMin, bnParMin = 1, 1
	t.Cleanup(func() { batchParMin, bnParMin = bp, bn })
}

func withNNProcs(t *testing.T, procs int, f func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	f()
}

func f32Diff(a, b []float32) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i
		}
	}
	return -1
}

// convRun builds a fresh deterministic conv layer, runs one forward in
// the given mode (and a backward when the mode supports it) and
// returns copies of the results.
func convRun(mode Mode) (out, dx, dw []float32) {
	rng := tensor.NewRNG(42)
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}
	c := NewConv2D("c", 3, 8, g, true, rng)
	x := tensor.New(5, 3, 9, 9) // 5 samples: odd, > most band counts
	rng.FillUniform(x, -1, 1)
	o := c.Forward(x, mode)
	out = append([]float32(nil), o.Data...)
	if mode == Adapt || mode == Train {
		grad := tensor.New(o.Dim(0), o.Dim(1), o.Dim(2), o.Dim(3))
		rng.FillUniform(grad, -1, 1)
		d := c.Backward(grad)
		dx = append([]float32(nil), d.Data...)
		dw = append([]float32(nil), c.Weight.Grad.Data...)
		dw = append(dw, c.Bias.Grad.Data...)
	}
	return out, dx, dw
}

func TestConvParallelBitwise(t *testing.T) {
	for _, mode := range []Mode{Infer, InferInt8, Adapt, Train} {
		var gOut, gDx, gDw []float32
		withNNProcs(t, 1, func() { gOut, gDx, gDw = convRun(mode) })
		lowLayerGates(t)
		for _, procs := range []int{2, 3, 8} {
			withNNProcs(t, procs, func() {
				out, dx, dw := convRun(mode)
				if i := f32Diff(gOut, out); i >= 0 {
					t.Fatalf("mode=%v procs=%d: output element %d differs: %v vs %v",
						mode, procs, i, gOut[i], out[i])
				}
				if i := f32Diff(gDx, dx); i >= 0 {
					t.Fatalf("mode=%v procs=%d: dX element %d differs", mode, procs, i)
				}
				if i := f32Diff(gDw, dw); i >= 0 {
					t.Fatalf("mode=%v procs=%d: dW element %d differs", mode, procs, i)
				}
			})
		}
	}
}

// bnRun builds a fresh deterministic BN layer, runs one forward (and
// backward for gradient modes) and returns results plus the mutated
// running statistics.
func bnRun(mode Mode) (out, dx, dg, running []float32) {
	rng := tensor.NewRNG(7)
	b := NewBatchNorm2D("b", 6)
	rng.FillUniform(b.Gamma.Value, 0.5, 1.5)
	rng.FillUniform(b.Beta.Value, -0.5, 0.5)
	rng.FillUniform(b.RunningMean, -0.2, 0.2)
	rng.FillUniform(b.RunningVar, 0.5, 1.5)
	x := tensor.New(5, 6, 7, 7)
	rng.FillUniform(x, -2, 2)
	o := b.Forward(x, mode)
	out = append([]float32(nil), o.Data...)
	if mode != Infer && mode != InferInt8 {
		grad := tensor.New(5, 6, 7, 7)
		rng.FillUniform(grad, -1, 1)
		d := b.Backward(grad)
		dx = append([]float32(nil), d.Data...)
		dg = append([]float32(nil), b.Gamma.Grad.Data...)
		dg = append(dg, b.Beta.Grad.Data...)
	}
	running = append([]float32(nil), b.RunningMean.Data...)
	running = append(running, b.RunningVar.Data...)
	return out, dx, dg, running
}

func TestBatchNormParallelBitwise(t *testing.T) {
	for _, mode := range []Mode{Infer, Train, Adapt, Eval} {
		var gOut, gDx, gDg, gRun []float32
		withNNProcs(t, 1, func() { gOut, gDx, gDg, gRun = bnRun(mode) })
		lowLayerGates(t)
		for _, procs := range []int{2, 3, 8} {
			withNNProcs(t, procs, func() {
				out, dx, dg, run := bnRun(mode)
				if i := f32Diff(gOut, out); i >= 0 {
					t.Fatalf("mode=%v procs=%d: output element %d differs", mode, procs, i)
				}
				if i := f32Diff(gDx, dx); i >= 0 {
					t.Fatalf("mode=%v procs=%d: dX element %d differs", mode, procs, i)
				}
				if i := f32Diff(gDg, dg); i >= 0 {
					t.Fatalf("mode=%v procs=%d: dγ/dβ element %d differs", mode, procs, i)
				}
				if i := f32Diff(gRun, run); i >= 0 {
					t.Fatalf("mode=%v procs=%d: running stat %d differs", mode, procs, i)
				}
			})
		}
	}
}
