package nn

import (
	"testing"

	"ldbnadapt/internal/tensor"
)

// Layer-level kernel benchmarks for the bench-json `-cpu 1,4` rows:
// where the tensor-level benchmarks measure one pooled kernel in
// isolation, these measure the sample-banded layer paths (forward,
// adapt step) whose nested kernel calls share the same pool.

func benchConv() (*Conv2D, *tensor.Tensor) {
	rng := tensor.NewRNG(11)
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}
	c := NewConv2D("bench", 32, 64, g, false, rng)
	x := tensor.New(4, 32, 28, 28)
	rng.FillUniform(x, -1, 1)
	return c, x
}

func BenchmarkKernelConvInfer(b *testing.B) {
	c, x := benchConv()
	c.Forward(x, Infer) // grow scratch and shards outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x, Infer)
	}
}

func BenchmarkKernelConvAdaptStep(b *testing.B) {
	c, x := benchConv()
	out := c.Forward(x, Adapt)
	grad := tensor.New(out.Dim(0), out.Dim(1), out.Dim(2), out.Dim(3))
	tensor.NewRNG(12).FillUniform(grad, -1, 1)
	c.Backward(grad)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x, Adapt)
		c.Backward(grad)
	}
}

func BenchmarkKernelBatchNormAdaptStep(b *testing.B) {
	rng := tensor.NewRNG(13)
	bn := NewBatchNorm2D("bench", 64)
	x := tensor.New(4, 64, 28, 28)
	grad := tensor.New(4, 64, 28, 28)
	rng.FillUniform(x, -1, 1)
	rng.FillUniform(grad, -1, 1)
	bn.Forward(x, Adapt)
	bn.Backward(grad)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn.Forward(x, Adapt)
		bn.Backward(grad)
	}
}
