package nn

import (
	"math"
	"testing"

	"ldbnadapt/internal/tensor"
)

// The int8 inference path's numerical contract (internal/nn/README.md):
// weights are quantized per output channel with symmetric scales,
// activations per sample, products accumulate in exact int32, and the
// only error sources are the two rounding steps. For one output
//
//	y = Σₖ xₖ·wₖ   with   x = s_x·x_q + e_x,  w = s_w·w_q + e_w,
//	|e_x| ≤ s_x/2, |e_w| ≤ s_w/2
//
// the int8 result s_x·s_w·Σ x_q·w_q differs from y by at most
//
//	½·s_w·Σ|xₖ| + ½·s_x·Σ|wₖ| + K·s_x·s_w
//
// (first-order rounding against the other factor's magnitude, plus a
// generous K-term cover for the second-order products). The tests
// below hold the kernels to that bound on inputs chosen to cross the
// int32 accumulation block boundary, and pin the invalidation
// contract that makes the lazy weight cache safe under adaptation.

// int8LinearBound computes the analytic error bound for row i, output
// j of a Linear int8 forward, given the activation and weight scales.
func int8LinearBound(x, w []float32, sx, sw float32, k int) float64 {
	sumX, sumW := 0.0, 0.0
	for _, v := range x {
		sumX += math.Abs(float64(v))
	}
	for _, v := range w {
		sumW += math.Abs(float64(v))
	}
	return 0.5*float64(sw)*sumX + 0.5*float64(sx)*sumW + float64(k)*float64(sx)*float64(sw)
}

// TestInt8LinearErrorBound: every output of an InferInt8 linear
// forward stays within the analytic quantization-error bound of the
// float32 Infer forward. In = 300 crosses the 256-element int32
// accumulation block, so the blocked kernel's seam is covered.
func TestInt8LinearErrorBound(t *testing.T) {
	const n, in, out = 5, 300, 33
	for _, seed := range []uint64{1, 7, 42} {
		rng := tensor.NewRNG(seed)
		l := NewLinear("fc", in, out, rng)
		rng.FillNormal(l.Bias.Value, 0, 0.5)
		x := tensor.New(n, in)
		rng.FillNormal(x, 0.2, 1.2)

		fp := l.Forward(x, Infer).Clone() // Infer and InferInt8 share scratch
		q8 := l.Forward(x, InferInt8)

		// Recompute the scales the kernel used, to price the bound.
		xq := make([]int8, in)
		wq := make([]int8, in)
		for i := 0; i < n; i++ {
			xi := x.Data[i*in : (i+1)*in]
			sx := tensor.QuantizeInt8(xq, xi)
			for j := 0; j < out; j++ {
				wj := l.Weight.Value.Data[j*in : (j+1)*in]
				sw := tensor.QuantizeInt8(wq, wj)
				diff := math.Abs(float64(fp.At(i, j) - q8.At(i, j)))
				// 1e-4 absolute slack covers the float32 rounding of the
				// reference accumulation itself.
				bound := 1.05*int8LinearBound(xi, wj, sx, sw, in) + 1e-4
				if diff > bound {
					t.Fatalf("seed %d row %d out %d: |%g - %g| = %g exceeds bound %g",
						seed, i, j, fp.At(i, j), q8.At(i, j), diff, bound)
				}
			}
		}
	}
}

// TestInt8ConvCloseToFloat: the conv kernel shares the linear kernel's
// arithmetic through im2col, so rather than re-deriving patch sums the
// test pins the empirical contract the serving stack depends on: int8
// conv outputs stay within a few percent of the float32 output range.
// Measured ≤ 1.5% across these seeds; 5% leaves slack without letting
// a broken scale or seam slip through.
func TestInt8ConvCloseToFloat(t *testing.T) {
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}
	for _, seed := range []uint64{2, 9, 55} {
		rng := tensor.NewRNG(seed)
		c := NewConv2D("conv", 5, 8, g, true, rng)
		x := tensor.New(2, 5, 9, 11)
		rng.FillNormal(x, 0.3, 1.0)

		fp := c.Forward(x, Infer).Clone()
		q8 := c.Forward(x, InferInt8)

		maxAbs, maxDiff := 0.0, 0.0
		for i, v := range fp.Data {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
			if d := math.Abs(float64(v - q8.Data[i])); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 0.05*maxAbs {
			t.Fatalf("seed %d: int8 conv max error %g is %.1f%% of float range %g, want < 5%%",
				seed, maxDiff, 100*maxDiff/maxAbs, maxAbs)
		}
	}
}

// eqData reports bitwise equality of two tensors' contents.
func eqData(a, b *tensor.Tensor) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// TestInt8InvalidateRequantizes pins the lazy-cache contract: after a
// weight mutation, InvalidateInt8 must make the next InferInt8 forward
// bitwise-identical to a fresh layer holding the same weights — and
// without the call the stale cache keeps serving the old weights,
// which is exactly why every weight-mutating path must invalidate.
func TestInt8InvalidateRequantizes(t *testing.T) {
	rng := tensor.NewRNG(11)
	l := NewLinear("fc", 64, 16, rng)
	x := tensor.New(3, 64)
	rng.FillNormal(x, 0, 1)

	stale := l.Forward(x, InferInt8).Clone()
	for i := range l.Weight.Value.Data {
		l.Weight.Value.Data[i] *= 1.5
	}
	if got := l.Forward(x, InferInt8); !eqData(got, stale) {
		t.Fatal("int8 cache requantized without InvalidateInt8 — the cache is not actually lazy")
	}
	l.InvalidateInt8()
	got := l.Forward(x, InferInt8).Clone()

	fresh := NewLinear("fc2", 64, 16, tensor.NewRNG(99))
	copy(fresh.Weight.Value.Data, l.Weight.Value.Data)
	copy(fresh.Bias.Value.Data, l.Bias.Value.Data)
	want := fresh.Forward(x, InferInt8)
	if !eqData(got, want) {
		t.Fatal("post-invalidate int8 forward does not match a fresh quantization of the same weights")
	}
	if eqData(got, stale) {
		t.Fatal("post-invalidate forward still serves the stale quantization")
	}
}

// TestInt8BatchedMatchesSequential: per-sample activation scales make
// the batched int8 forward bitwise-identical to serving each sample
// alone — the property that lets the engine coalesce frames onto the
// int8 rung without any cross-stream numeric coupling.
func TestInt8BatchedMatchesSequential(t *testing.T) {
	rng := tensor.NewRNG(23)
	l := NewLinear("fc", 48, 12, rng)
	const n = 4
	x := tensor.New(n, 48)
	rng.FillNormal(x, 0.1, 0.9)

	batched := l.Forward(x, InferInt8).Clone()
	for i := 0; i < n; i++ {
		xi := tensor.FromSlice(append([]float32(nil), x.Data[i*48:(i+1)*48]...), 1, 48)
		yi := l.Forward(xi, InferInt8)
		for j := 0; j < 12; j++ {
			if yi.At(0, j) != batched.At(i, j) {
				t.Fatalf("sample %d out %d: solo %g != batched %g", i, j, yi.At(0, j), batched.At(i, j))
			}
		}
	}
}
