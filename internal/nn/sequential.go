package nn

import "ldbnadapt/internal/tensor"

// Sequential chains layers, forwarding left-to-right and backwarding
// right-to-left. It itself satisfies Layer, so sequences nest.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential constructs a layer chain.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, Layers: layers}
}

// Name returns the chain identifier.
func (s *Sequential) Name() string { return s.name }

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.Layers = append(s.Layers, layers...) }

// Forward runs each layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, mode)
	}
	return x
}

// Backward runs each layer's backward pass in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Int8Invalidator is implemented by layers (and composite layers) that
// cache quantized weights for InferInt8 forwards.
type Int8Invalidator interface {
	InvalidateInt8()
}

// InvalidateInt8 drops every cached int8 weight table in the chain so
// the next InferInt8 forward re-quantizes from the current weights.
func (s *Sequential) InvalidateInt8() {
	for _, l := range s.Layers {
		if inv, ok := l.(Int8Invalidator); ok {
			inv.InvalidateInt8()
		}
	}
}

// Params concatenates all layer parameters in order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// BatchNorms returns every BatchNorm2D in the chain, recursing into
// nested Sequential and BatchNormCarrier layers. The adaptation
// algorithms use this to locate the parameters they update.
func (s *Sequential) BatchNorms() []*BatchNorm2D {
	var out []*BatchNorm2D
	for _, l := range s.Layers {
		out = append(out, CollectBatchNorms(l)...)
	}
	return out
}

// BatchNormCarrier is implemented by composite layers (e.g. residual
// blocks) that contain BatchNorm2D layers and want them discoverable by
// the adaptation algorithms.
type BatchNormCarrier interface {
	BatchNorms() []*BatchNorm2D
}

// CollectBatchNorms extracts the BatchNorm2D layers reachable from l.
func CollectBatchNorms(l Layer) []*BatchNorm2D {
	switch v := l.(type) {
	case *BatchNorm2D:
		return []*BatchNorm2D{v}
	case BatchNormCarrier:
		return v.BatchNorms()
	default:
		return nil
	}
}
