package nn

import (
	"fmt"
	"math"

	"ldbnadapt/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW tensor. It is the
// centrepiece of LD-BN-ADAPT: the paper's adaptation recomputes the
// normalization statistics (µ, σ) from unlabeled target batches and
// optimizes only the affine scale (γ) and shift (β) with one entropy
// backprop pass.
//
// Modes:
//   - Train: normalize by batch stats, update running stats with
//     Momentum.
//   - Eval:  normalize by running stats.
//   - Adapt: normalize by batch stats (the paper's step (i)) and
//     refresh running stats with AdaptMomentum so later Eval passes
//     operate in the target domain.
type BatchNorm2D struct {
	name string
	C    int
	// Eps is the variance-stabilizing constant.
	Eps float32
	// Momentum is the running-stat EMA factor in Train mode.
	Momentum float32
	// AdaptMomentum is the running-stat EMA factor in Adapt mode.
	AdaptMomentum float32

	Gamma *Param // scale γ, [C]
	Beta  *Param // shift β, [C]

	// RunningMean and RunningVar are the inference statistics.
	RunningMean *tensor.Tensor // [C]
	RunningVar  *tensor.Tensor // [C]

	// Backward caches.
	lastXHat     *tensor.Tensor
	lastInvStd   []float32
	lastMode     Mode
	lastShape    [4]int
	lastAdaptMom float32

	// Infer-mode state: reusable output buffer and optional per-sample
	// statistics sources (multi-stream batched serving).
	inferOut  Scratch
	sampleSrc []*BNSource

	// Adapt-mode scratch (see scratch.go): output, x̂ cache and the
	// per-channel statistics buffers, reused across adaptation steps.
	adaptOut  Scratch
	adaptXHat Scratch
	meanBuf   []float32
	varBuf    []float32
	invStdBuf []float32
	dxOut     Scratch // backward input gradient (all modes)
}

// BNSource supplies the complete normalization state of one stream for
// Infer-mode forwards: the multi-stream serving engine coalesces frames
// from different camera streams into one batched forward pass, and each
// stream carries its own adapted statistics and affine parameters.
type BNSource struct {
	// Mean, Var are the stream's running statistics, [C].
	Mean, Var []float32
	// Gamma, Beta are the stream's adapted affine parameters, [C].
	Gamma, Beta []float32
}

// NewBatchNorm2D constructs a BN layer with γ=1, β=0, running stats
// (0, 1).
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	return &BatchNorm2D{
		name:          name,
		C:             c,
		Eps:           1e-5,
		Momentum:      0.1,
		AdaptMomentum: 0.3,
		Gamma:         NewParam(name+".gamma", tensor.Ones(c)),
		Beta:          NewParam(name+".beta", tensor.New(c)),
		RunningMean:   tensor.New(c),
		RunningVar:    tensor.Ones(c),
	}
}

// Name returns the layer identifier.
func (b *BatchNorm2D) Name() string { return b.name }

// Params returns γ and β.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// SetSampleSources installs per-sample normalization state for
// subsequent Infer-mode forwards: sample i is normalized with src[i]
// instead of the layer's own running statistics and γ/β. Pass nil to
// restore the layer's own state. Modes other than Infer panic while
// sources are installed, so adaptation passes cannot silently pick up
// another stream's state.
func (b *BatchNorm2D) SetSampleSources(src []*BNSource) { b.sampleSrc = src }

// Forward normalizes x according to the mode.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != b.C {
		panic(fmt.Sprintf("nn: %s: input %v, want [n,%d,h,w]", b.name, x.Shape(), b.C))
	}
	if b.sampleSrc != nil && !mode.IsInfer() {
		panic(fmt.Sprintf("nn: %s: sample sources installed but mode is %v", b.name, mode))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	hw := h * w
	cnt := n * hw
	if mode.IsInfer() {
		return b.forwardInfer(x, n, h, w)
	}
	hot := mode == Adapt
	var out *tensor.Tensor
	if hot {
		out = b.adaptOut.For(n, b.C, h, w)
	} else {
		out = tensor.New(n, b.C, h, w)
	}
	b.lastMode = mode
	b.lastShape = [4]int{n, b.C, h, w}

	var mean, varc []float32
	switch mode {
	case Eval:
		mean = b.RunningMean.Data
		varc = b.RunningVar.Data
	case Train, Adapt:
		b.meanBuf = growF32(b.meanBuf, b.C)
		b.varBuf = growF32(b.varBuf, b.C)
		mean = b.meanBuf
		varc = b.varBuf
		for c := 0; c < b.C; c++ {
			s := 0.0
			for ni := 0; ni < n; ni++ {
				base := (ni*b.C + c) * hw
				for _, v := range x.Data[base : base+hw] {
					s += float64(v)
				}
			}
			m := s / float64(cnt)
			v := 0.0
			for ni := 0; ni < n; ni++ {
				base := (ni*b.C + c) * hw
				for _, xv := range x.Data[base : base+hw] {
					d := float64(xv) - m
					v += d * d
				}
			}
			mean[c] = float32(m)
			varc[c] = float32(v / float64(cnt))
		}
		mom := b.Momentum
		if mode == Adapt {
			mom = b.AdaptMomentum
		}
		for c := 0; c < b.C; c++ {
			b.RunningMean.Data[c] = (1-mom)*b.RunningMean.Data[c] + mom*mean[c]
			b.RunningVar.Data[c] = (1-mom)*b.RunningVar.Data[c] + mom*varc[c]
		}
		if mode == Adapt {
			// LD-BN-ADAPT normalizes with the just-refreshed running
			// statistics: an exponential moving average over the
			// unlabeled target stream. With AdaptMomentum = 1 this is
			// exactly the batch statistics (TENT's choice); smaller
			// values trade reactivity for stability, which matters at
			// batch size 1 where single-image statistics are noisy.
			mean = b.RunningMean.Data
			varc = b.RunningVar.Data
			b.lastAdaptMom = mom
		}
	default:
		panic(fmt.Sprintf("nn: %s: unknown mode %v", b.name, mode))
	}

	var invStd []float32
	var xhat *tensor.Tensor
	if hot {
		b.invStdBuf = growF32(b.invStdBuf, b.C)
		invStd = b.invStdBuf
		xhat = b.adaptXHat.For(n, b.C, h, w)
	} else {
		invStd = make([]float32, b.C)
		xhat = tensor.New(n, b.C, h, w)
	}
	for c := 0; c < b.C; c++ {
		invStd[c] = float32(1.0 / math.Sqrt(float64(varc[c])+float64(b.Eps)))
	}
	for ni := 0; ni < n; ni++ {
		for c := 0; c < b.C; c++ {
			base := (ni*b.C + c) * hw
			m, is := mean[c], invStd[c]
			g, bt := b.Gamma.Value.Data[c], b.Beta.Value.Data[c]
			xs := x.Data[base : base+hw]
			hs := xhat.Data[base : base+hw]
			os := out.Data[base : base+hw]
			for i, v := range xs {
				xh := (v - m) * is
				hs[i] = xh
				os[i] = g*xh + bt
			}
		}
	}
	b.lastXHat = xhat
	b.lastInvStd = invStd
	return out
}

// forwardInfer is the serving fast path: Eval-mode arithmetic (bitwise
// identical per sample) without the x̂ backward cache, writing into a
// reusable scratch buffer. When sample sources are installed each
// sample is normalized with its own stream's statistics and γ/β.
func (b *BatchNorm2D) forwardInfer(x *tensor.Tensor, n, h, w int) *tensor.Tensor {
	if b.sampleSrc != nil && len(b.sampleSrc) != n {
		panic(fmt.Sprintf("nn: %s: %d sample sources for batch of %d", b.name, len(b.sampleSrc), n))
	}
	hw := h * w
	out := b.inferOut.For(n, b.C, h, w)
	b.lastXHat = nil // Backward after an Infer forward must panic
	for ni := 0; ni < n; ni++ {
		mean, varc := b.RunningMean.Data, b.RunningVar.Data
		gamma, beta := b.Gamma.Value.Data, b.Beta.Value.Data
		if b.sampleSrc != nil {
			src := b.sampleSrc[ni]
			mean, varc, gamma, beta = src.Mean, src.Var, src.Gamma, src.Beta
		}
		for c := 0; c < b.C; c++ {
			base := (ni*b.C + c) * hw
			m := mean[c]
			is := float32(1.0 / math.Sqrt(float64(varc[c])+float64(b.Eps)))
			g, bt := gamma[c], beta[c]
			xs := x.Data[base : base+hw]
			os := out.Data[base : base+hw]
			for i, v := range xs {
				xh := (v - m) * is
				os[i] = g*xh + bt
			}
		}
	}
	return out
}

// Backward returns dX and accumulates dγ, dβ.
//
// In Train/Adapt mode the batch statistics depend on the input, so the
// full BN gradient is used:
//
//	dX = (γ·invStd/N)·(N·dY − Σ dY − x̂·Σ(dY·x̂))
//
// In Eval mode the statistics are constants and dX = γ·invStd·dY.
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", b.name))
	}
	n, h, w := b.lastShape[0], b.lastShape[2], b.lastShape[3]
	hw := h * w
	cnt := float32(n * hw)
	if grad.Size() != n*b.C*hw {
		panic(fmt.Sprintf("nn: %s: grad %v, want %v", b.name, grad.Shape(), b.lastShape))
	}
	dx := b.dxOut.For(n, b.C, h, w)
	for c := 0; c < b.C; c++ {
		// First pass: per-channel reductions Σ dY and Σ dY·x̂.
		sumDY, sumDYX := float32(0), float32(0)
		for ni := 0; ni < n; ni++ {
			base := (ni*b.C + c) * hw
			gs := grad.Data[base : base+hw]
			hs := b.lastXHat.Data[base : base+hw]
			for i, g := range gs {
				sumDY += g
				sumDYX += g * hs[i]
			}
		}
		b.Beta.Grad.Data[c] += sumDY
		b.Gamma.Grad.Data[c] += sumDYX
		g, is := b.Gamma.Value.Data[c], b.lastInvStd[c]
		if b.lastMode == Eval {
			scale := g * is
			for ni := 0; ni < n; ni++ {
				base := (ni*b.C + c) * hw
				gs := grad.Data[base : base+hw]
				ds := dx.Data[base : base+hw]
				for i, gv := range gs {
					ds[i] = scale * gv
				}
			}
			continue
		}
		// The statistics-dependence correction terms are weighted by
		// how much the current batch influenced the normalization
		// statistics: 1 in Train mode (pure batch stats), AdaptMomentum
		// in Adapt mode (EMA-blended stats). Train mode stays the exact
		// BN gradient; Adapt mode interpolates between the exact train
		// (mom=1) and frozen-stats eval (mom=0) endpoints.
		w := float32(1)
		if b.lastMode == Adapt {
			w = b.lastAdaptMom
		}
		k := g * is / cnt
		for ni := 0; ni < n; ni++ {
			base := (ni*b.C + c) * hw
			gs := grad.Data[base : base+hw]
			hs := b.lastXHat.Data[base : base+hw]
			ds := dx.Data[base : base+hw]
			for i, gv := range gs {
				ds[i] = k * (cnt*gv - w*(sumDY+hs[i]*sumDYX))
			}
		}
	}
	return dx
}

// SetRunningStats overwrites the running statistics (used by tests and
// by the stats-reset ablation).
func (b *BatchNorm2D) SetRunningStats(mean, varc *tensor.Tensor) {
	b.RunningMean.CopyFrom(mean)
	b.RunningVar.CopyFrom(varc)
}
