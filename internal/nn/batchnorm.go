package nn

import (
	"fmt"
	"math"

	"ldbnadapt/internal/par"
	"ldbnadapt/internal/tensor"
)

// bnParMin gates the BN parallel paths, in tensor elements. BN is a
// pure memory-bound pass (one multiply-add per element), so the
// break-even is the same order as the lowering kernels', not the
// GEMMs'. A var so the bitwise suite can force banding on tiny shapes.
var bnParMin = 1 << 17

// BatchNorm2D normalizes each channel of an NCHW tensor. It is the
// centrepiece of LD-BN-ADAPT: the paper's adaptation recomputes the
// normalization statistics (µ, σ) from unlabeled target batches and
// optimizes only the affine scale (γ) and shift (β) with one entropy
// backprop pass.
//
// Modes:
//   - Train: normalize by batch stats, update running stats with
//     Momentum.
//   - Eval:  normalize by running stats.
//   - Adapt: normalize by batch stats (the paper's step (i)) and
//     refresh running stats with AdaptMomentum so later Eval passes
//     operate in the target domain.
//
// Parallel decomposition: the statistics and backward passes band over
// channels (each channel's float64/float32 reduction runs in the exact
// serial order), the normalize and infer passes band over samples.
// Both partitions are pure output-ownership splits, so results are
// bitwise identical at any worker count.
type BatchNorm2D struct {
	name string
	C    int
	// Eps is the variance-stabilizing constant.
	Eps float32
	// Momentum is the running-stat EMA factor in Train mode.
	Momentum float32
	// AdaptMomentum is the running-stat EMA factor in Adapt mode.
	AdaptMomentum float32

	Gamma *Param // scale γ, [C]
	Beta  *Param // shift β, [C]

	// RunningMean and RunningVar are the inference statistics.
	RunningMean *tensor.Tensor // [C]
	RunningVar  *tensor.Tensor // [C]

	// Backward caches.
	lastXHat     *tensor.Tensor
	lastInvStd   []float32
	lastMode     Mode
	lastShape    [4]int
	lastAdaptMom float32

	// Infer-mode state: reusable output buffer and optional per-sample
	// statistics sources (multi-stream batched serving).
	inferOut  Scratch
	sampleSrc []*BNSource

	// Adapt-mode scratch (see scratch.go): output, x̂ cache and the
	// per-channel statistics buffers, reused across adaptation steps.
	adaptOut  Scratch
	adaptXHat Scratch
	meanBuf   []float32
	varBuf    []float32
	invStdBuf []float32
	dxOut     Scratch // backward input gradient (all modes)

	// Layer-embedded parallel bodies (zero-alloc dispatch; see
	// internal/par). Their slice fields are set before each For and
	// nilled after, so no tensor data is retained between calls.
	statsBody bnStatsBody
	normBody  bnNormBody
	inferBody bnInferBody
	bwdBody   bnBwdBody
}

// BNSource supplies the complete normalization state of one stream for
// Infer-mode forwards: the multi-stream serving engine coalesces frames
// from different camera streams into one batched forward pass, and each
// stream carries its own adapted statistics and affine parameters.
type BNSource struct {
	// Mean, Var are the stream's running statistics, [C].
	Mean, Var []float32
	// Gamma, Beta are the stream's adapted affine parameters, [C].
	Gamma, Beta []float32
}

// NewBatchNorm2D constructs a BN layer with γ=1, β=0, running stats
// (0, 1).
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	return &BatchNorm2D{
		name:          name,
		C:             c,
		Eps:           1e-5,
		Momentum:      0.1,
		AdaptMomentum: 0.3,
		Gamma:         NewParam(name+".gamma", tensor.Ones(c)),
		Beta:          NewParam(name+".beta", tensor.New(c)),
		RunningMean:   tensor.New(c),
		RunningVar:    tensor.Ones(c),
	}
}

// Name returns the layer identifier.
func (b *BatchNorm2D) Name() string { return b.name }

// Params returns γ and β.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// SetSampleSources installs per-sample normalization state for
// subsequent Infer-mode forwards: sample i is normalized with src[i]
// instead of the layer's own running statistics and γ/β. Pass nil to
// restore the layer's own state. Modes other than Infer panic while
// sources are installed, so adaptation passes cannot silently pick up
// another stream's state.
func (b *BatchNorm2D) SetSampleSources(src []*BNSource) { b.sampleSrc = src }

// bnStatsBody computes per-channel batch statistics and the running
// EMA update for channels [clo,chi). Each channel's two float64
// reductions walk samples in order — exactly the serial loop — and a
// channel's running stats are touched by exactly one band.
type bnStatsBody struct {
	b     *BatchNorm2D
	x     []float32
	n, hw int
	mom   float32
}

func (t *bnStatsBody) Chunk(_, clo, chi int) {
	b := t.b
	cnt := t.n * t.hw
	for c := clo; c < chi; c++ {
		s := 0.0
		for ni := 0; ni < t.n; ni++ {
			base := (ni*b.C + c) * t.hw
			for _, v := range t.x[base : base+t.hw] {
				s += float64(v)
			}
		}
		m := s / float64(cnt)
		v := 0.0
		for ni := 0; ni < t.n; ni++ {
			base := (ni*b.C + c) * t.hw
			for _, xv := range t.x[base : base+t.hw] {
				d := float64(xv) - m
				v += d * d
			}
		}
		b.meanBuf[c] = float32(m)
		b.varBuf[c] = float32(v / float64(cnt))
		b.RunningMean.Data[c] = (1-t.mom)*b.RunningMean.Data[c] + t.mom*b.meanBuf[c]
		b.RunningVar.Data[c] = (1-t.mom)*b.RunningVar.Data[c] + t.mom*b.varBuf[c]
	}
}

// bnNormBody writes x̂ and the affine output for samples [nlo,nhi).
type bnNormBody struct {
	b            *BatchNorm2D
	x, xhat, out []float32
	mean, invStd []float32
	hw           int
}

func (t *bnNormBody) Chunk(_, nlo, nhi int) {
	b := t.b
	for ni := nlo; ni < nhi; ni++ {
		for c := 0; c < b.C; c++ {
			base := (ni*b.C + c) * t.hw
			m, is := t.mean[c], t.invStd[c]
			g, bt := b.Gamma.Value.Data[c], b.Beta.Value.Data[c]
			xs := t.x[base : base+t.hw]
			hs := t.xhat[base : base+t.hw]
			os := t.out[base : base+t.hw]
			for i, v := range xs {
				xh := (v - m) * is
				hs[i] = xh
				os[i] = g*xh + bt
			}
		}
	}
}

// Forward normalizes x according to the mode.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != b.C {
		panic(fmt.Sprintf("nn: %s: input %v, want [n,%d,h,w]", b.name, x.Shape(), b.C))
	}
	if b.sampleSrc != nil && !mode.IsInfer() {
		panic(fmt.Sprintf("nn: %s: sample sources installed but mode is %v", b.name, mode))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	hw := h * w
	elems := n * b.C * hw
	if mode.IsInfer() {
		return b.forwardInfer(x, n, h, w)
	}
	hot := mode == Adapt
	var out *tensor.Tensor
	if hot {
		out = b.adaptOut.For(n, b.C, h, w)
	} else {
		out = tensor.New(n, b.C, h, w)
	}
	b.lastMode = mode
	b.lastShape = [4]int{n, b.C, h, w}

	var mean, varc []float32
	switch mode {
	case Eval:
		mean = b.RunningMean.Data
		varc = b.RunningVar.Data
	case Train, Adapt:
		b.meanBuf = growF32(b.meanBuf, b.C)
		b.varBuf = growF32(b.varBuf, b.C)
		mean = b.meanBuf
		varc = b.varBuf
		mom := b.Momentum
		if mode == Adapt {
			mom = b.AdaptMomentum
		}
		st := &b.statsBody
		*st = bnStatsBody{b: b, x: x.Data, n: n, hw: hw, mom: mom}
		if b.C >= 2 && elems >= bnParMin {
			par.For(b.C, 1, st)
		} else {
			st.Chunk(0, 0, b.C)
		}
		st.x = nil
		if mode == Adapt {
			// LD-BN-ADAPT normalizes with the just-refreshed running
			// statistics: an exponential moving average over the
			// unlabeled target stream. With AdaptMomentum = 1 this is
			// exactly the batch statistics (TENT's choice); smaller
			// values trade reactivity for stability, which matters at
			// batch size 1 where single-image statistics are noisy.
			mean = b.RunningMean.Data
			varc = b.RunningVar.Data
			b.lastAdaptMom = mom
		}
	default:
		panic(fmt.Sprintf("nn: %s: unknown mode %v", b.name, mode))
	}

	var invStd []float32
	var xhat *tensor.Tensor
	if hot {
		b.invStdBuf = growF32(b.invStdBuf, b.C)
		invStd = b.invStdBuf
		xhat = b.adaptXHat.For(n, b.C, h, w)
	} else {
		invStd = make([]float32, b.C)
		xhat = tensor.New(n, b.C, h, w)
	}
	for c := 0; c < b.C; c++ {
		invStd[c] = float32(1.0 / math.Sqrt(float64(varc[c])+float64(b.Eps)))
	}
	nb := &b.normBody
	*nb = bnNormBody{b: b, x: x.Data, xhat: xhat.Data, out: out.Data, mean: mean, invStd: invStd, hw: hw}
	if n >= 2 && elems >= bnParMin {
		par.For(n, 1, nb)
	} else {
		nb.Chunk(0, 0, n)
	}
	nb.x, nb.xhat, nb.out, nb.mean, nb.invStd = nil, nil, nil, nil, nil
	b.lastXHat = xhat
	b.lastInvStd = invStd
	return out
}

// bnInferBody normalizes samples [nlo,nhi) with Eval-mode arithmetic,
// resolving each sample's statistics source independently.
type bnInferBody struct {
	b      *BatchNorm2D
	x, out []float32
	hw     int
}

func (t *bnInferBody) Chunk(_, nlo, nhi int) {
	b := t.b
	for ni := nlo; ni < nhi; ni++ {
		mean, varc := b.RunningMean.Data, b.RunningVar.Data
		gamma, beta := b.Gamma.Value.Data, b.Beta.Value.Data
		if b.sampleSrc != nil {
			src := b.sampleSrc[ni]
			mean, varc, gamma, beta = src.Mean, src.Var, src.Gamma, src.Beta
		}
		for c := 0; c < b.C; c++ {
			base := (ni*b.C + c) * t.hw
			m := mean[c]
			is := float32(1.0 / math.Sqrt(float64(varc[c])+float64(b.Eps)))
			g, bt := gamma[c], beta[c]
			xs := t.x[base : base+t.hw]
			os := t.out[base : base+t.hw]
			for i, v := range xs {
				xh := (v - m) * is
				os[i] = g*xh + bt
			}
		}
	}
}

// forwardInfer is the serving fast path: Eval-mode arithmetic (bitwise
// identical per sample) without the x̂ backward cache, writing into a
// reusable scratch buffer. When sample sources are installed each
// sample is normalized with its own stream's statistics and γ/β.
func (b *BatchNorm2D) forwardInfer(x *tensor.Tensor, n, h, w int) *tensor.Tensor {
	if b.sampleSrc != nil && len(b.sampleSrc) != n {
		panic(fmt.Sprintf("nn: %s: %d sample sources for batch of %d", b.name, len(b.sampleSrc), n))
	}
	hw := h * w
	out := b.inferOut.For(n, b.C, h, w)
	b.lastXHat = nil // Backward after an Infer forward must panic
	ib := &b.inferBody
	*ib = bnInferBody{b: b, x: x.Data, out: out.Data, hw: hw}
	if n >= 2 && n*b.C*hw >= bnParMin {
		par.For(n, 1, ib)
	} else {
		ib.Chunk(0, 0, n)
	}
	ib.x, ib.out = nil, nil
	return out
}

// bnBwdBody runs the full per-channel backward for channels [clo,chi):
// the Σ dY and Σ dY·x̂ reductions (serial sample order), the γ/β
// gradient accumulation (one band per channel) and the dX write.
type bnBwdBody struct {
	b             *BatchNorm2D
	grad, dx      []float32
	n, hw         int
	cnt, statsMom float32
}

func (t *bnBwdBody) Chunk(_, clo, chi int) {
	b := t.b
	for c := clo; c < chi; c++ {
		sumDY, sumDYX := float32(0), float32(0)
		for ni := 0; ni < t.n; ni++ {
			base := (ni*b.C + c) * t.hw
			gs := t.grad[base : base+t.hw]
			hs := b.lastXHat.Data[base : base+t.hw]
			for i, g := range gs {
				sumDY += g
				sumDYX += g * hs[i]
			}
		}
		b.Beta.Grad.Data[c] += sumDY
		b.Gamma.Grad.Data[c] += sumDYX
		g, is := b.Gamma.Value.Data[c], b.lastInvStd[c]
		if b.lastMode == Eval {
			scale := g * is
			for ni := 0; ni < t.n; ni++ {
				base := (ni*b.C + c) * t.hw
				gs := t.grad[base : base+t.hw]
				ds := t.dx[base : base+t.hw]
				for i, gv := range gs {
					ds[i] = scale * gv
				}
			}
			continue
		}
		k := g * is / t.cnt
		for ni := 0; ni < t.n; ni++ {
			base := (ni*b.C + c) * t.hw
			gs := t.grad[base : base+t.hw]
			hs := b.lastXHat.Data[base : base+t.hw]
			ds := t.dx[base : base+t.hw]
			for i, gv := range gs {
				ds[i] = k * (t.cnt*gv - t.statsMom*(sumDY+hs[i]*sumDYX))
			}
		}
	}
}

// Backward returns dX and accumulates dγ, dβ.
//
// In Train/Adapt mode the batch statistics depend on the input, so the
// full BN gradient is used:
//
//	dX = (γ·invStd/N)·(N·dY − Σ dY − x̂·Σ(dY·x̂))
//
// In Eval mode the statistics are constants and dX = γ·invStd·dY.
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", b.name))
	}
	n, h, w := b.lastShape[0], b.lastShape[2], b.lastShape[3]
	hw := h * w
	if grad.Size() != n*b.C*hw {
		panic(fmt.Sprintf("nn: %s: grad %v, want %v", b.name, grad.Shape(), b.lastShape))
	}
	dx := b.dxOut.For(n, b.C, h, w)
	// The statistics-dependence correction terms are weighted by how
	// much the current batch influenced the normalization statistics:
	// 1 in Train mode (pure batch stats), AdaptMomentum in Adapt mode
	// (EMA-blended stats). Train mode stays the exact BN gradient;
	// Adapt mode interpolates between the exact train (mom=1) and
	// frozen-stats eval (mom=0) endpoints.
	statsMom := float32(1)
	if b.lastMode == Adapt {
		statsMom = b.lastAdaptMom
	}
	bw := &b.bwdBody
	*bw = bnBwdBody{b: b, grad: grad.Data, dx: dx.Data, n: n, hw: hw, cnt: float32(n * hw), statsMom: statsMom}
	if b.C >= 2 && n*b.C*hw >= bnParMin {
		par.For(b.C, 1, bw)
	} else {
		bw.Chunk(0, 0, b.C)
	}
	bw.grad, bw.dx = nil, nil
	return dx
}

// SetRunningStats overwrites the running statistics (used by tests and
// by the stats-reset ablation).
func (b *BatchNorm2D) SetRunningStats(mean, varc *tensor.Tensor) {
	b.RunningMean.CopyFrom(mean)
	b.RunningVar.CopyFrom(varc)
}
