package nn

import (
	"fmt"

	"ldbnadapt/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	name     string
	lastMask []bool
	adaptOut Scratch // Adapt-mode forward output
	dxOut    Scratch // backward gradient output
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name returns the layer identifier.
func (r *ReLU) Name() string { return r.name }

// Params returns nil (ReLU has no parameters).
func (r *ReLU) Params() []*Param { return nil }

// Forward computes max(0, x), caching the pass-through mask.
// In Infer mode it clamps in place (the input is an upstream layer's
// scratch buffer that is not read again) and keeps no mask.
func (r *ReLU) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	if mode.IsInfer() {
		r.lastMask = nil // Backward after an Infer forward must panic
		for i, v := range x.Data {
			if v <= 0 {
				x.Data[i] = 0
			}
		}
		return x
	}
	var out *tensor.Tensor
	if mode == Adapt {
		out = r.adaptOut.For(x.Shape()...)
		out.Zero()
	} else {
		out = tensor.New(x.Shape()...)
	}
	if cap(r.lastMask) < x.Size() {
		r.lastMask = make([]bool, x.Size())
	}
	r.lastMask = r.lastMask[:x.Size()]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.lastMask[i] = true
		} else {
			r.lastMask[i] = false
		}
	}
	return out
}

// Backward gates the incoming gradient by the forward mask.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.lastMask == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", r.name))
	}
	if grad.Size() != len(r.lastMask) {
		panic(fmt.Sprintf("nn: %s: grad size %d, want %d", r.name, grad.Size(), len(r.lastMask)))
	}
	out := r.dxOut.For(grad.Shape()...)
	for i, v := range grad.Data {
		if r.lastMask[i] {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Flatten reshapes [n, c, h, w] (or any rank ≥ 2) to [n, rest].
type Flatten struct {
	name      string
	lastShape []int
	hotView   View // cached forward header (Infer/InferInt8/Adapt)
	gradView  View // cached backward header
}

// NewFlatten constructs a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name returns the layer identifier.
func (f *Flatten) Name() string { return f.name }

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }

// Forward flattens all but the leading (batch) dimension. On the hot
// paths (Infer/InferInt8/Adapt) the returned header is a cached view
// re-pointed at x's storage; Train and Eval allocate a fresh header.
func (f *Flatten) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	if x.NDim() < 2 {
		panic(fmt.Sprintf("nn: %s: input %v, want rank ≥ 2", f.name, x.Shape()))
	}
	f.lastShape = append(f.lastShape[:0], x.Shape()...)
	if mode.IsInfer() || mode == Adapt {
		return f.hotView.Of(x.Data, x.Dim(0), x.Size()/x.Dim(0))
	}
	return x.Reshape(x.Dim(0), x.Size()/x.Dim(0))
}

// Backward restores the cached input shape (as a cached view over the
// incoming gradient's storage).
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.lastShape == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", f.name))
	}
	return f.gradView.Of(grad.Data, f.lastShape...)
}
