package nn

import (
	"math"

	"ldbnadapt/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and leaves the
	// gradients untouched (callers clear them with ZeroGrads).
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum and
// decoupled L2 weight decay.
type SGD struct {
	// LR is the learning rate.
	LR float64
	// Momentum in [0,1); 0 disables the velocity term.
	Momentum float64
	// WeightDecay is the L2 coefficient applied to the parameter value.
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param]*tensor.Tensor)}
}

// Step applies v ← µv + (g + λw); w ← w − lr·v per parameter.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		lr := float32(s.LR)
		mu := float32(s.Momentum)
		wd := float32(s.WeightDecay)
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + wd*p.Value.Data[i]
			v.Data[i] = mu*v.Data[i] + g
			p.Value.Data[i] -= lr * v.Data[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	// LR is the learning rate.
	LR float64
	// Beta1, Beta2 are the first/second moment decay rates.
	Beta1, Beta2 float64
	// Eps stabilizes the denominator.
	Eps float64
	// WeightDecay is the L2 coefficient.
	WeightDecay float64

	step int
	m, v map[*Param]*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with standard β parameters.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Tensor), v: make(map[*Param]*tensor.Tensor)}
}

// Step applies one Adam update to every parameter.
func (a *Adam) Step(params []*Param) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = tensor.New(p.Value.Shape()...)
			v = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = v
		}
		b1 := float32(a.Beta1)
		b2 := float32(a.Beta2)
		wd := float32(a.WeightDecay)
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + wd*p.Value.Data[i]
			m.Data[i] = b1*m.Data[i] + (1-b1)*g
			v.Data[i] = b2*v.Data[i] + (1-b2)*g*g
			mh := float64(m.Data[i]) / bc1
			vh := float64(v.Data[i]) / bc2
			p.Value.Data[i] -= float32(a.LR * mh / (math.Sqrt(vh) + a.Eps))
		}
	}
}

// ClipGradNorm rescales gradients so their global L2 norm does not
// exceed maxNorm. Returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		n := p.Grad.Norm2()
		total += n * n
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			tensor.ScaleInPlace(p.Grad, scale)
		}
	}
	return norm
}
