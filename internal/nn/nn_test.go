package nn

import (
	"bytes"
	"math"
	"testing"

	"ldbnadapt/internal/tensor"
)

func TestModeString(t *testing.T) {
	if Train.String() != "train" || Eval.String() != "eval" || Adapt.String() != "adapt" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}

func TestParamCountAndFilter(t *testing.T) {
	rng := tensor.NewRNG(1)
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}
	seq := NewSequential("net",
		NewConv2D("c1", 2, 4, g, false, rng), // 4*2*3*3 = 72
		NewBatchNorm2D("bn1", 4),             // 4+4 = 8
	)
	if got := ParamCount(seq.Params()); got != 80 {
		t.Fatalf("ParamCount = %d, want 80", got)
	}
	bnOnly := FilterParams(seq.Params(), func(p *Param) bool {
		return p.Name == "bn1.gamma" || p.Name == "bn1.beta"
	})
	if ParamCount(bnOnly) != 8 {
		t.Fatal("FilterParams wrong")
	}
}

func TestBatchNormTrainNormalizes(t *testing.T) {
	rng := tensor.NewRNG(2)
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(4, 2, 5, 5)
	rng.FillNormal(x, 3.0, 2.5) // far from standard
	y := bn.Forward(x, Train)
	// With γ=1, β=0 each channel of y must be ~N(0,1).
	for c := 0; c < 2; c++ {
		var vals []float32
		for n := 0; n < 4; n++ {
			base := (n*2 + c) * 25
			vals = append(vals, y.Data[base:base+25]...)
		}
		ch := tensor.FromSlice(vals, len(vals))
		mean, std := ch.MeanStd()
		if math.Abs(mean) > 1e-4 || math.Abs(std-1) > 1e-3 {
			t.Fatalf("channel %d not normalized: mean=%v std=%v", c, mean, std)
		}
	}
}

func TestBatchNormAdaptEqualsTrainForward(t *testing.T) {
	rng := tensor.NewRNG(3)
	a := NewBatchNorm2D("bn", 3)
	b := NewBatchNorm2D("bn", 3)
	b.AdaptMomentum = 1 // EMA fully replaced by batch stats = TENT/Train behaviour
	x := tensor.New(2, 3, 4, 4)
	rng.FillNormal(x, -1, 4)
	ya := a.Forward(x, Train)
	yb := b.Forward(x, Adapt)
	if !ya.AllClose(yb, 1e-6) {
		t.Fatal("Adapt forward must normalize by batch stats exactly like Train")
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm2D("bn", 1)
	mean := tensor.FromSlice([]float32{2}, 1)
	varc := tensor.FromSlice([]float32{4}, 1)
	bn.SetRunningStats(mean, varc)
	x := tensor.FromSlice([]float32{2, 4, 0, 6}, 1, 1, 2, 2)
	y := bn.Forward(x, Eval)
	want := tensor.FromSlice([]float32{0, 1, -1, 2}, 1, 1, 2, 2)
	if !y.AllClose(want, 1e-3) {
		t.Fatalf("Eval output %v, want %v", y, want)
	}
}

func TestBatchNormAdaptMovesRunningStatsTowardTarget(t *testing.T) {
	rng := tensor.NewRNG(4)
	bn := NewBatchNorm2D("bn", 1)
	// Source stats.
	bn.SetRunningStats(tensor.FromSlice([]float32{0}, 1), tensor.FromSlice([]float32{1}, 1))
	x := tensor.New(4, 1, 8, 8)
	rng.FillNormal(x, 5, 1) // shifted target domain
	before := bn.RunningMean.Data[0]
	bn.Forward(x, Adapt)
	after := bn.RunningMean.Data[0]
	if !(after > before && after <= 5.1) {
		t.Fatalf("running mean did not move toward target: %v → %v", before, after)
	}
	// Repeated adaptation converges near the target mean.
	for i := 0; i < 40; i++ {
		bn.Forward(x, Adapt)
	}
	if math.Abs(float64(bn.RunningMean.Data[0])-5) > 0.2 {
		t.Fatalf("running mean did not converge: %v", bn.RunningMean.Data[0])
	}
}

func TestBatchNormEvalDoesNotTouchRunningStats(t *testing.T) {
	rng := tensor.NewRNG(5)
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(2, 2, 3, 3)
	rng.FillNormal(x, 7, 2)
	m0 := bn.RunningMean.Clone()
	v0 := bn.RunningVar.Clone()
	bn.Forward(x, Eval)
	if !bn.RunningMean.AllClose(m0, 0) || !bn.RunningVar.AllClose(v0, 0) {
		t.Fatal("Eval must not update running stats")
	}
}

func TestBatchNormOnlyGammaBetaAreParams(t *testing.T) {
	bn := NewBatchNorm2D("bn", 4)
	ps := bn.Params()
	if len(ps) != 2 || ps[0].Name != "bn.gamma" || ps[1].Name != "bn.beta" {
		t.Fatalf("params = %v", ps)
	}
	if ParamCount(ps) != 8 {
		t.Fatal("BN param count wrong")
	}
}

func TestReLUForward(t *testing.T) {
	r := NewReLU("r")
	x := tensor.FromSlice([]float32{-1, 0, 2, -3}, 1, 1, 2, 2)
	y := r.Forward(x, Eval)
	want := tensor.FromSlice([]float32{0, 0, 2, 0}, 1, 1, 2, 2)
	if !y.AllClose(want, 0) {
		t.Fatalf("ReLU = %v", y)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("f")
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, Eval)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("Flatten shape %v", y.Shape())
	}
	g := f.Backward(tensor.New(2, 60))
	if g.NDim() != 4 || g.Dim(3) != 5 {
		t.Fatalf("Backward shape %v", g.Shape())
	}
}

func TestMaxPoolForward(t *testing.T) {
	p := NewMaxPool2D("p", tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2})
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := p.Forward(x, Eval)
	want := tensor.FromSlice([]float32{6, 8, 14, 16}, 1, 1, 2, 2)
	if !y.AllClose(want, 0) {
		t.Fatalf("MaxPool = %v", y)
	}
}

func TestGlobalAvgPoolForward(t *testing.T) {
	p := NewGlobalAvgPool("g")
	x := tensor.FromSlice([]float32{1, 3, 5, 7, 2, 2, 2, 2}, 1, 2, 2, 2)
	y := p.Forward(x, Eval)
	want := tensor.FromSlice([]float32{4, 2}, 1, 2)
	if !y.AllClose(want, 0) {
		t.Fatalf("GAP = %v", y)
	}
}

func TestSGDReducesQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||² with SGD; gradient = 2(w-target).
	target := tensor.FromSlice([]float32{1, -2, 3}, 3)
	p := NewParam("w", tensor.New(3))
	opt := NewSGD(0.1, 0.9, 0)
	for i := 0; i < 100; i++ {
		p.ZeroGrad()
		for j := range p.Value.Data {
			p.Grad.Data[j] = 2 * (p.Value.Data[j] - target.Data[j])
		}
		opt.Step([]*Param{p})
	}
	if !p.Value.AllClose(target, 1e-2) {
		t.Fatalf("SGD did not converge: %v", p.Value)
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	target := tensor.FromSlice([]float32{0.5, -1.5}, 2)
	p := NewParam("w", tensor.New(2))
	opt := NewAdam(0.1)
	for i := 0; i < 300; i++ {
		p.ZeroGrad()
		for j := range p.Value.Data {
			p.Grad.Data[j] = 2 * (p.Value.Data[j] - target.Data[j])
		}
		opt.Step([]*Param{p})
	}
	if !p.Value.AllClose(target, 5e-2) {
		t.Fatalf("Adam did not converge: %v", p.Value)
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{10}, 1))
	opt := NewSGD(0.1, 0, 0.5)
	for i := 0; i < 50; i++ {
		p.ZeroGrad()
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.Value.Data[0])) > 1 {
		t.Fatalf("weight decay ineffective: %v", p.Value.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.New(4))
	p.Grad.CopyFrom(tensor.FromSlice([]float32{3, 4, 0, 0}, 4)) // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-6 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	if math.Abs(p.Grad.Norm2()-1) > 1e-5 {
		t.Fatalf("post-clip norm %v", p.Grad.Norm2())
	}
	// Below the limit nothing changes.
	p.Grad.CopyFrom(tensor.FromSlice([]float32{0.1, 0, 0, 0}, 4))
	ClipGradNorm([]*Param{p}, 1)
	if math.Abs(p.Grad.Norm2()-0.1) > 1e-7 {
		t.Fatal("clip must not scale small gradients")
	}
}

func TestParamsSaveLoadRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(20)
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}
	make1 := func(r *tensor.RNG) *Sequential {
		return NewSequential("m",
			NewConv2D("c1", 1, 2, g, true, r),
			NewBatchNorm2D("bn1", 2),
			NewFlatten("f"),
			NewLinear("fc", 2*3*3, 4, r),
		)
	}
	src := make1(rng)
	bn := src.BatchNorms()[0]
	rng.FillUniform(bn.RunningMean, -1, 1)
	extras := map[string]*tensor.Tensor{"bn1.running_mean": bn.RunningMean, "bn1.running_var": bn.RunningVar}
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params(), extras); err != nil {
		t.Fatalf("SaveParams: %v", err)
	}
	dst := make1(tensor.NewRNG(999)) // different init
	got, err := LoadParams(&buf, dst.Params())
	if err != nil {
		t.Fatalf("LoadParams: %v", err)
	}
	for i, p := range src.Params() {
		if !p.Value.AllClose(dst.Params()[i].Value, 0) {
			t.Fatalf("param %s not restored", p.Name)
		}
	}
	if !got["bn1.running_mean"].AllClose(bn.RunningMean, 0) {
		t.Fatal("extras not returned")
	}
	dst.BatchNorms()[0].SetRunningStats(got["bn1.running_mean"], got["bn1.running_var"])
	// Same input → same output after restore.
	x := tensor.New(1, 1, 3, 3)
	rng.FillNormal(x, 0, 1)
	if !src.Forward(x, Eval).AllClose(dst.Forward(x, Eval), 1e-6) {
		t.Fatal("restored model diverges")
	}
}

func TestLoadParamsRejectsMissingAndMisshaped(t *testing.T) {
	rng := tensor.NewRNG(21)
	p1 := NewParam("a", tensor.New(3))
	var buf bytes.Buffer
	if err := SaveParams(&buf, []*Param{p1}, nil); err != nil {
		t.Fatal(err)
	}
	// Missing param "b".
	p2 := NewParam("b", tensor.New(3))
	if _, err := LoadParams(bytes.NewReader(buf.Bytes()), []*Param{p2}); err == nil {
		t.Fatal("missing param accepted")
	}
	// Shape mismatch.
	p3 := NewParam("a", tensor.New(4))
	if _, err := LoadParams(bytes.NewReader(buf.Bytes()), []*Param{p3}); err == nil {
		t.Fatal("misshaped param accepted")
	}
	_ = rng
}

func TestCollectBatchNormsRecurses(t *testing.T) {
	rng := tensor.NewRNG(22)
	g := tensor.ConvGeom{KH: 1, KW: 1, SH: 1, SW: 1}
	inner := NewSequential("inner", NewBatchNorm2D("bn_a", 2), NewConv2D("c", 2, 2, g, false, rng))
	outer := NewSequential("outer", inner, NewBatchNorm2D("bn_b", 2))
	bns := outer.BatchNorms()
	if len(bns) != 2 || bns[0].Name() != "bn_a" || bns[1].Name() != "bn_b" {
		t.Fatalf("BatchNorms = %v", bns)
	}
}

func TestEntropyLossDirectionSharpens(t *testing.T) {
	// A gradient step against the entropy gradient must reduce entropy.
	rng := tensor.NewRNG(23)
	logits := tensor.New(6, 5)
	rng.FillNormal(logits, 0, 0.5)
	h0, grad := EntropyLoss(logits)
	stepped := tensor.AxpyInPlace(logits.Clone(), -0.5, grad)
	h1, _ := EntropyLoss(stepped)
	if h1 >= h0 {
		t.Fatalf("entropy did not decrease: %v → %v", h0, h1)
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes → loss = log 4.
	logits := tensor.New(2, 4)
	loss, _ := CrossEntropyRows(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-5 {
		t.Fatalf("loss = %v, want %v", loss, math.Log(4))
	}
}

func TestGradThroughSoftmaxMatchesNumeric(t *testing.T) {
	rng := tensor.NewRNG(24)
	logits := tensor.New(3, 4)
	rng.FillNormal(logits, 0, 1)
	// L = Σ w·p with fixed w.
	w := tensor.New(3, 4)
	rng.FillUniform(w, -1, 1)
	probs := tensor.SoftmaxRows(logits)
	grad := GradThroughSoftmax(probs, w)
	eps := float32(1e-2)
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp := tensor.Dot(tensor.SoftmaxRows(logits), w)
		logits.Data[i] = orig - eps
		lm := tensor.Dot(tensor.SoftmaxRows(logits), w)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * float64(eps))
		if math.Abs(num-float64(grad.Data[i])) > 1e-2 {
			t.Fatalf("grad mismatch at %d: %v vs %v", i, grad.Data[i], num)
		}
	}
}
