package nn

import (
	"fmt"

	"ldbnadapt/internal/par"
	"ldbnadapt/internal/tensor"
)

// batchParMin gates batch-level (per-sample) parallelism in the conv
// layer, in per-batch multiply-accumulate counts, matching the tensor
// kernels' gate unit. Below it the sample loop runs on the caller and
// only the inner kernels parallelize. A var so the cross-layer
// bitwise suite can force sample banding on small shapes.
var batchParMin = 1 << 16

// Conv2D is a 2-D convolution over NCHW tensors, lowered to matrix
// products via im2col. Bias is optional (ResNet convolutions are
// bias-free because they are followed by BatchNorm).
type Conv2D struct {
	name         string
	InC, OutC    int
	Geom         tensor.ConvGeom
	Weight       *Param // [outC, inC, kh, kw]
	Bias         *Param // [outC] or nil
	lastCols     []*tensor.Tensor
	lastIn       [4]int // cached input shape [n,c,h,w]
	lastOutShape [4]int

	// Scratch buffers and cached headers (see scratch.go for the
	// ownership contract). Infer and Adapt keep separate output
	// scratches because the two paths usually run at different batch
	// sizes; sharing one would re-shape the header every call.
	inferOut  Scratch
	adaptOut  Scratch
	adaptCols []float32 // one [n, K, hw] slab backing lastCols in Adapt
	colViews  []View    // per-sample [K, hw] headers over adaptCols
	wmView    View      // weight matrix view [outC, K]
	giView    View      // per-sample gradient view (backward phase A)
	dwView    View      // weight-grad matrix view (backward)
	dxOut     Scratch   // backward input gradient

	// shards are the per-band scratch blocks for sample-parallel
	// forwards/backwards: band b of a par.For over the batch owns
	// shards[b] exclusively for the duration of the call (see
	// internal/par's ownership contract). Grown to par.Width(n, 1) at
	// the top of Forward/Backward, so steady-state calls at a stable
	// batch size and GOMAXPROCS allocate nothing.
	shards  []convShard
	fwdBody convFwdBody
	bwdBody convBwdBody

	// Int8 weight cache for InferInt8: per-output-channel symmetric
	// quantization of Weight, built lazily on first use. Serving
	// freezes conv weights, so the cache stays valid; callers that
	// mutate Weight.Value must call InvalidateInt8.
	wq      []int8
	wScales []float32
	wqOK    bool
}

// convShard is one band's private scratch: lowering buffers, cached
// sub-tensor headers and the int8 staging blocks.
type convShard struct {
	cols  Scratch // infer-mode im2col lowering
	dcols Scratch // backward column gradient
	xi    View    // per-sample input view
	oi    View    // per-sample output view
	gi    View    // per-sample gradient view (backward phase B)
	dxi   View    // per-sample view of dxOut
	xq    []int8  // quantized input sample
	colsQ []int8  // quantized im2col lowering
}

// ensureShards grows the shard slice to bands entries (never shrinks,
// so headers and buffers persist across batch-size changes).
func (c *Conv2D) ensureShards(bands int) {
	if len(c.shards) < bands {
		ns := make([]convShard, bands)
		copy(ns, c.shards)
		c.shards = ns
	}
}

// NewConv2D constructs a convolution layer with Kaiming-initialized
// weights drawn from rng.
func NewConv2D(name string, inC, outC int, g tensor.ConvGeom, withBias bool, rng *tensor.RNG) *Conv2D {
	w := tensor.New(outC, inC, g.KH, g.KW)
	rng.KaimingConv(w)
	c := &Conv2D{
		name:   name,
		InC:    inC,
		OutC:   outC,
		Geom:   g,
		Weight: NewParam(name+".weight", w),
	}
	if withBias {
		c.Bias = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// Name returns the layer identifier.
func (c *Conv2D) Name() string { return c.name }

// Params returns weight (and bias when present).
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// kDim is the lowered weight-matrix inner dimension inC·kh·kw.
func (c *Conv2D) kDim() int { return c.InC * c.Geom.KH * c.Geom.KW }

// addBiasRows adds the per-channel bias to an [outC, hw] output block.
func (c *Conv2D) addBiasRows(oi *tensor.Tensor, hw int) {
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.Value.Data[oc]
		row := oi.Data[oc*hw : (oc+1)*hw]
		for i := range row {
			row[i] += b
		}
	}
}

// convFwdBody is the sample-parallel forward loop: band b processes
// samples [lo,hi) with shards[b]'s private scratch. Each sample's
// lowering and product are the serial kernels over that sample's
// data, so the batched output is bitwise the sequential one at any
// band count.
type convFwdBody struct {
	c            *Conv2D
	x, out       *tensor.Tensor
	wm           *tensor.Tensor
	mode         Mode
	h, w, oh, ow int
}

func (b *convFwdBody) Chunk(band, lo, hi int) {
	c := b.c
	K := c.kDim()
	hw := b.oh * b.ow
	chw := c.InC * b.h * b.w
	sh := &c.shards[band]
	for ni := lo; ni < hi; ni++ {
		oi := sh.oi.Of(b.out.Data[ni*c.OutC*hw:(ni+1)*c.OutC*hw], c.OutC, hw)
		if b.mode == InferInt8 {
			xScale := tensor.QuantizeInt8(sh.xq, b.x.Data[ni*chw:(ni+1)*chw])
			tensor.Im2ColInt8Into(sh.colsQ, sh.xq, c.InC, b.h, b.w, c.Geom)
			tensor.Int8MatMulInto(oi, c.wq, c.wScales, sh.colsQ, xScale, c.OutC, K, hw)
		} else {
			xi := sh.xi.Of(b.x.Data[ni*chw:(ni+1)*chw], 1, c.InC, b.h, b.w)
			var cols *tensor.Tensor
			switch b.mode {
			case Infer:
				cols = sh.cols.For(K, hw)
				tensor.Im2ColInto(cols, xi, c.Geom)
			case Adapt:
				cols = c.colViews[ni].Of(c.adaptCols[ni*K*hw:(ni+1)*K*hw], K, hw)
				tensor.Im2ColInto(cols, xi, c.Geom)
				c.lastCols[ni] = cols
			default: // Train, Eval: fresh tensors, safe to retain
				cols = tensor.Im2Col(xi, c.Geom)
				c.lastCols[ni] = cols
			}
			tensor.MatMulInto(oi, b.wm, cols)
		}
		if c.Bias != nil {
			c.addBiasRows(oi, hw)
		}
	}
}

// Forward computes the convolution sample by sample: per sample the
// im2col matrix has shape [inC*kh*kw, oh*ow] and the product
// W[outC, inC*kh*kw]·cols lands directly in the output layout.
// Infer/InferInt8 and Adapt mode use layer-owned scratch for the
// im2col lowering and the output (Adapt additionally keeps the
// lowering as the backward cache); Train and Eval allocate fresh
// tensors so their outputs are safe to retain across calls. Samples
// are processed in parallel bands over the worker pool when the batch
// is big enough; the nested per-sample kernels parallelize over
// whatever workers remain.
func (c *Conv2D) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s: input %v, want [n,%d,h,w]", c.name, x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.Geom.OutSize(h, w)
	infer := mode.IsInfer()
	hot := mode == Adapt
	K := c.kDim()
	hw := oh * ow
	var out *tensor.Tensor
	switch {
	case infer:
		out = c.inferOut.For(n, c.OutC, oh, ow)
		c.lastCols = nil // Backward after an Infer forward must panic
	case hot:
		out = c.adaptOut.For(n, c.OutC, oh, ow)
		c.adaptCols = growF32(c.adaptCols, n*K*hw)
		if cap(c.colViews) < n {
			c.colViews = make([]View, n)
		}
		c.colViews = c.colViews[:n]
		if cap(c.lastCols) < n {
			c.lastCols = make([]*tensor.Tensor, n)
		}
		c.lastCols = c.lastCols[:n]
		c.lastIn = [4]int{n, c.InC, h, w}
		c.lastOutShape = [4]int{n, c.OutC, oh, ow}
	default:
		out = tensor.New(n, c.OutC, oh, ow)
		c.lastCols = make([]*tensor.Tensor, n)
		c.lastIn = [4]int{n, c.InC, h, w}
		c.lastOutShape = [4]int{n, c.OutC, oh, ow}
	}
	bands := par.Width(n, 1)
	c.ensureShards(bands)
	if mode == InferInt8 {
		c.ensureInt8()
		for b := 0; b < bands; b++ {
			c.shards[b].xq = growI8(c.shards[b].xq, c.InC*h*w)
			c.shards[b].colsQ = growI8(c.shards[b].colsQ, K*hw)
		}
	}
	body := &c.fwdBody
	*body = convFwdBody{c: c, x: x, out: out, mode: mode, h: h, w: w, oh: oh, ow: ow}
	if mode != InferInt8 {
		body.wm = c.wmView.Of(c.Weight.Value.Data, c.OutC, K)
	}
	if n >= 2 && n*c.OutC*K*hw >= batchParMin {
		par.For(n, 1, body)
	} else {
		body.Chunk(0, 0, n)
	}
	body.x, body.out, body.wm = nil, nil, nil
	return out
}

// ensureInt8 builds the per-output-channel int8 weight cache.
func (c *Conv2D) ensureInt8() {
	if c.wqOK {
		return
	}
	K := c.kDim()
	c.wq = growI8(c.wq, c.OutC*K)
	c.wScales = growF32(c.wScales, c.OutC)
	tensor.QuantizeInt8PerRow(c.wq, c.wScales, c.Weight.Value.Data, c.OutC, K)
	c.wqOK = true
}

// InvalidateInt8 drops the cached int8 weights so the next InferInt8
// forward re-quantizes Weight.Value. Call after mutating the weights.
func (c *Conv2D) InvalidateInt8() { c.wqOK = false }

// convBwdBody is the sample-parallel half of Backward: the input
// gradient. Each band owns its samples' dcols/dx scratch, and the
// per-sample kernels (Wᵀ·gi then col2im) are the serial ones, so dX
// is bitwise stable at any band count.
type convBwdBody struct {
	c         *Conv2D
	grad, dx  *tensor.Tensor
	wm        *tensor.Tensor
	inC, h, w int
	hw        int
}

func (b *convBwdBody) Chunk(band, lo, hi int) {
	c := b.c
	K := c.kDim()
	sh := &c.shards[band]
	for ni := lo; ni < hi; ni++ {
		gi := sh.gi.Of(b.grad.Data[ni*c.OutC*b.hw:(ni+1)*c.OutC*b.hw], c.OutC, b.hw)
		dcols := sh.dcols.For(K, b.hw)
		tensor.MatMulTAInto(dcols, b.wm, gi)
		dxi := sh.dxi.Of(b.dx.Data[ni*b.inC*b.h*b.w:(ni+1)*b.inC*b.h*b.w], 1, b.inC, b.h, b.w)
		tensor.Col2ImInto(dxi, dcols, c.Geom)
	}
}

// Backward accumulates dW (and db) and returns dX. The returned
// gradient lives in layer-owned scratch, valid until the next
// Backward. Two phases: the weight/bias gradients walk the batch
// serially (dW accumulates across samples — its per-element order is
// part of the bitwise contract — while the GEMM inside row-bands over
// output channels), then the input gradients run sample-parallel.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", c.name))
	}
	n, inC, h, w := c.lastIn[0], c.lastIn[1], c.lastIn[2], c.lastIn[3]
	oh, ow := c.lastOutShape[2], c.lastOutShape[3]
	hw := oh * ow
	if grad.Size() != n*c.OutC*hw {
		panic(fmt.Sprintf("nn: %s: grad %v, want %v", c.name, grad.Shape(), c.lastOutShape))
	}
	K := c.kDim()
	dW := c.dwView.Of(c.Weight.Grad.Data, c.OutC, K)
	wm := c.wmView.Of(c.Weight.Value.Data, c.OutC, K)
	dx := c.dxOut.For(n, inC, h, w)
	for ni := 0; ni < n; ni++ {
		gi := c.giView.Of(grad.Data[ni*c.OutC*hw:(ni+1)*c.OutC*hw], c.OutC, hw)
		// dW += gi · colsᵀ
		tensor.MatMulTBAcc(dW, gi, c.lastCols[ni])
		if c.Bias != nil {
			for oc := 0; oc < c.OutC; oc++ {
				s := float32(0)
				for _, v := range gi.Data[oc*hw : (oc+1)*hw] {
					s += v
				}
				c.Bias.Grad.Data[oc] += s
			}
		}
	}
	bands := par.Width(n, 1)
	c.ensureShards(bands)
	body := &c.bwdBody
	*body = convBwdBody{c: c, grad: grad, dx: dx, wm: wm, inC: inC, h: h, w: w, hw: hw}
	if n >= 2 && n*c.OutC*K*hw >= batchParMin {
		par.For(n, 1, body)
	} else {
		body.Chunk(0, 0, n)
	}
	body.grad, body.dx, body.wm = nil, nil, nil
	return dx
}

// FLOPs returns the multiply-accumulate count for one forward pass on
// an input of spatial size h×w (used by the Orin performance model).
func (c *Conv2D) FLOPs(h, w int) int64 {
	oh, ow := c.Geom.OutSize(h, w)
	macs := int64(c.OutC) * int64(oh) * int64(ow) * int64(c.InC) * int64(c.Geom.KH) * int64(c.Geom.KW)
	return 2 * macs
}
