package nn

import (
	"fmt"

	"ldbnadapt/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW tensors, lowered to matrix
// products via im2col. Bias is optional (ResNet convolutions are
// bias-free because they are followed by BatchNorm).
type Conv2D struct {
	name         string
	InC, OutC    int
	Geom         tensor.ConvGeom
	Weight       *Param // [outC, inC, kh, kw]
	Bias         *Param // [outC] or nil
	lastCols     []*tensor.Tensor
	lastIn       [4]int // cached input shape [n,c,h,w]
	lastOutShape [4]int

	// Scratch buffers and cached headers (see scratch.go for the
	// ownership contract). Infer and Adapt keep separate output
	// scratches because the two paths usually run at different batch
	// sizes; sharing one would re-shape the header every call.
	inferOut  Scratch
	inferCols Scratch
	adaptOut  Scratch
	adaptCols []float32 // one [n, K, hw] slab backing lastCols in Adapt mode
	colViews  []View    // per-sample [K, hw] headers over adaptCols
	xiView    View      // per-sample input view
	oiView    View      // per-sample output view
	wmView    View      // weight matrix view [outC, K]
	giView    View      // per-sample gradient view (backward)
	dwView    View      // weight-grad matrix view (backward)
	dcols     Scratch   // backward column gradient
	dxOut     Scratch   // backward input gradient
	dxiView   View      // per-sample view of dxOut

	// Int8 weight cache for InferInt8: per-output-channel symmetric
	// quantization of Weight, built lazily on first use. Serving
	// freezes conv weights, so the cache stays valid; callers that
	// mutate Weight.Value must call InvalidateInt8.
	wq      []int8
	wScales []float32
	wqOK    bool
	xq      []int8 // quantized input sample
	colsQ   []int8 // quantized im2col lowering
}

// NewConv2D constructs a convolution layer with Kaiming-initialized
// weights drawn from rng.
func NewConv2D(name string, inC, outC int, g tensor.ConvGeom, withBias bool, rng *tensor.RNG) *Conv2D {
	w := tensor.New(outC, inC, g.KH, g.KW)
	rng.KaimingConv(w)
	c := &Conv2D{
		name:   name,
		InC:    inC,
		OutC:   outC,
		Geom:   g,
		Weight: NewParam(name+".weight", w),
	}
	if withBias {
		c.Bias = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// Name returns the layer identifier.
func (c *Conv2D) Name() string { return c.name }

// Params returns weight (and bias when present).
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// kDim is the lowered weight-matrix inner dimension inC·kh·kw.
func (c *Conv2D) kDim() int { return c.InC * c.Geom.KH * c.Geom.KW }

// addBiasRows adds the per-channel bias to an [outC, hw] output block.
func (c *Conv2D) addBiasRows(oi *tensor.Tensor, hw int) {
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.Value.Data[oc]
		row := oi.Data[oc*hw : (oc+1)*hw]
		for i := range row {
			row[i] += b
		}
	}
}

// Forward computes the convolution sample by sample: per sample the
// im2col matrix has shape [inC*kh*kw, oh*ow] and the product
// W[outC, inC*kh*kw]·cols lands directly in the output layout.
// Infer/InferInt8 and Adapt mode use layer-owned scratch for the
// im2col lowering and the output (Adapt additionally keeps the
// lowering as the backward cache); Train and Eval allocate fresh
// tensors so their outputs are safe to retain across calls.
func (c *Conv2D) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s: input %v, want [n,%d,h,w]", c.name, x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.Geom.OutSize(h, w)
	infer := mode.IsInfer()
	hot := mode == Adapt
	K := c.kDim()
	hw := oh * ow
	var out *tensor.Tensor
	switch {
	case infer:
		out = c.inferOut.For(n, c.OutC, oh, ow)
		c.lastCols = nil // Backward after an Infer forward must panic
	case hot:
		out = c.adaptOut.For(n, c.OutC, oh, ow)
		c.adaptCols = growF32(c.adaptCols, n*K*hw)
		if cap(c.colViews) < n {
			c.colViews = make([]View, n)
		}
		c.colViews = c.colViews[:n]
		if cap(c.lastCols) < n {
			c.lastCols = make([]*tensor.Tensor, n)
		}
		c.lastCols = c.lastCols[:n]
		c.lastIn = [4]int{n, c.InC, h, w}
		c.lastOutShape = [4]int{n, c.OutC, oh, ow}
	default:
		out = tensor.New(n, c.OutC, oh, ow)
		c.lastCols = make([]*tensor.Tensor, n)
		c.lastIn = [4]int{n, c.InC, h, w}
		c.lastOutShape = [4]int{n, c.OutC, oh, ow}
	}
	if mode == InferInt8 {
		return c.forwardInt8(x, out, n, h, w, oh, ow)
	}
	wm := c.wmView.Of(c.Weight.Value.Data, c.OutC, K)
	for ni := 0; ni < n; ni++ {
		xi := c.xiView.Of(x.Data[ni*c.InC*h*w:(ni+1)*c.InC*h*w], 1, c.InC, h, w)
		var cols *tensor.Tensor
		switch {
		case infer:
			cols = c.inferCols.For(K, hw)
			tensor.Im2ColInto(cols, xi, c.Geom)
		case hot:
			cols = c.colViews[ni].Of(c.adaptCols[ni*K*hw:(ni+1)*K*hw], K, hw)
			tensor.Im2ColInto(cols, xi, c.Geom)
			c.lastCols[ni] = cols
		default:
			cols = tensor.Im2Col(xi, c.Geom)
			c.lastCols[ni] = cols
		}
		oi := c.oiView.Of(out.Data[ni*c.OutC*hw:(ni+1)*c.OutC*hw], c.OutC, hw)
		tensor.MatMulInto(oi, wm, cols)
		if c.Bias != nil {
			c.addBiasRows(oi, hw)
		}
	}
	return out
}

// forwardInt8 is the quantized serving kernel: the weight matrix is
// quantized once per output channel, each input sample gets one
// dynamic scale, and the product accumulates in int32 (see
// internal/tensor/int8.go for the error model). Bias addition and
// everything downstream stay in float32.
func (c *Conv2D) forwardInt8(x, out *tensor.Tensor, n, h, w, oh, ow int) *tensor.Tensor {
	c.ensureInt8()
	K := c.kDim()
	hw := oh * ow
	chw := c.InC * h * w
	c.xq = growI8(c.xq, chw)
	c.colsQ = growI8(c.colsQ, K*hw)
	for ni := 0; ni < n; ni++ {
		xScale := tensor.QuantizeInt8(c.xq, x.Data[ni*chw:(ni+1)*chw])
		tensor.Im2ColInt8Into(c.colsQ, c.xq, c.InC, h, w, c.Geom)
		oi := c.oiView.Of(out.Data[ni*c.OutC*hw:(ni+1)*c.OutC*hw], c.OutC, hw)
		tensor.Int8MatMulInto(oi, c.wq, c.wScales, c.colsQ, xScale, c.OutC, K, hw)
		if c.Bias != nil {
			c.addBiasRows(oi, hw)
		}
	}
	return out
}

// ensureInt8 builds the per-output-channel int8 weight cache.
func (c *Conv2D) ensureInt8() {
	if c.wqOK {
		return
	}
	K := c.kDim()
	c.wq = growI8(c.wq, c.OutC*K)
	c.wScales = growF32(c.wScales, c.OutC)
	tensor.QuantizeInt8PerRow(c.wq, c.wScales, c.Weight.Value.Data, c.OutC, K)
	c.wqOK = true
}

// InvalidateInt8 drops the cached int8 weights so the next InferInt8
// forward re-quantizes Weight.Value. Call after mutating the weights.
func (c *Conv2D) InvalidateInt8() { c.wqOK = false }

// Backward accumulates dW (and db) and returns dX. The returned
// gradient lives in layer-owned scratch, valid until the next Backward.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", c.name))
	}
	n, inC, h, w := c.lastIn[0], c.lastIn[1], c.lastIn[2], c.lastIn[3]
	oh, ow := c.lastOutShape[2], c.lastOutShape[3]
	hw := oh * ow
	if grad.Size() != n*c.OutC*hw {
		panic(fmt.Sprintf("nn: %s: grad %v, want %v", c.name, grad.Shape(), c.lastOutShape))
	}
	K := c.kDim()
	dW := c.dwView.Of(c.Weight.Grad.Data, c.OutC, K)
	wm := c.wmView.Of(c.Weight.Value.Data, c.OutC, K)
	dx := c.dxOut.For(n, inC, h, w)
	for ni := 0; ni < n; ni++ {
		gi := c.giView.Of(grad.Data[ni*c.OutC*hw:(ni+1)*c.OutC*hw], c.OutC, hw)
		// dW += gi · colsᵀ
		tensor.MatMulTBAcc(dW, gi, c.lastCols[ni])
		if c.Bias != nil {
			for oc := 0; oc < c.OutC; oc++ {
				s := float32(0)
				for _, v := range gi.Data[oc*hw : (oc+1)*hw] {
					s += v
				}
				c.Bias.Grad.Data[oc] += s
			}
		}
		// dcols = Wᵀ · gi ; dx_i = col2im(dcols)
		dcols := c.dcols.For(K, hw)
		tensor.MatMulTAInto(dcols, wm, gi)
		dxi := c.dxiView.Of(dx.Data[ni*inC*h*w:(ni+1)*inC*h*w], 1, inC, h, w)
		tensor.Col2ImInto(dxi, dcols, c.Geom)
	}
	return dx
}

// FLOPs returns the multiply-accumulate count for one forward pass on
// an input of spatial size h×w (used by the Orin performance model).
func (c *Conv2D) FLOPs(h, w int) int64 {
	oh, ow := c.Geom.OutSize(h, w)
	macs := int64(c.OutC) * int64(oh) * int64(ow) * int64(c.InC) * int64(c.Geom.KH) * int64(c.Geom.KW)
	return 2 * macs
}
