package nn

import (
	"fmt"

	"ldbnadapt/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW tensors, lowered to matrix
// products via im2col. Bias is optional (ResNet convolutions are
// bias-free because they are followed by BatchNorm).
type Conv2D struct {
	name         string
	InC, OutC    int
	Geom         tensor.ConvGeom
	Weight       *Param // [outC, inC, kh, kw]
	Bias         *Param // [outC] or nil
	lastCols     []*tensor.Tensor
	lastIn       []int // cached input shape [n,c,h,w]
	lastOutShape []int

	// Infer-mode scratch: im2col lowering and output buffers reused
	// across calls (no backward caches are kept on this path).
	scratchCols []float32
	scratchOut  []float32
}

// NewConv2D constructs a convolution layer with Kaiming-initialized
// weights drawn from rng.
func NewConv2D(name string, inC, outC int, g tensor.ConvGeom, withBias bool, rng *tensor.RNG) *Conv2D {
	w := tensor.New(outC, inC, g.KH, g.KW)
	rng.KaimingConv(w)
	c := &Conv2D{
		name:   name,
		InC:    inC,
		OutC:   outC,
		Geom:   g,
		Weight: NewParam(name+".weight", w),
	}
	if withBias {
		c.Bias = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// Name returns the layer identifier.
func (c *Conv2D) Name() string { return c.name }

// Params returns weight (and bias when present).
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// Forward computes the convolution sample by sample: per sample the
// im2col matrix has shape [inC*kh*kw, oh*ow] and the product
// W[outC, inC*kh*kw]·cols lands directly in the output layout.
// In Infer mode the im2col and output buffers are layer-owned scratch
// reused across calls, and no backward caches are kept.
func (c *Conv2D) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s: input %v, want [n,%d,h,w]", c.name, x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.Geom.OutSize(h, w)
	infer := mode == Infer
	var out *tensor.Tensor
	if infer {
		out = scratchFor(&c.scratchOut, n, c.OutC, oh, ow)
		c.lastCols = nil // Backward after an Infer forward must panic
	} else {
		out = tensor.New(n, c.OutC, oh, ow)
		c.lastCols = make([]*tensor.Tensor, n)
		c.lastIn = []int{n, c.InC, h, w}
		c.lastOutShape = []int{n, c.OutC, oh, ow}
	}
	wm := c.Weight.Value.Reshape(c.OutC, c.InC*c.Geom.KH*c.Geom.KW)
	hw := oh * ow
	for ni := 0; ni < n; ni++ {
		xi := tensor.FromSlice(x.Data[ni*c.InC*h*w:(ni+1)*c.InC*h*w], 1, c.InC, h, w)
		var cols *tensor.Tensor
		if infer {
			cols = scratchFor(&c.scratchCols, c.InC*c.Geom.KH*c.Geom.KW, hw)
			tensor.Im2ColInto(cols, xi, c.Geom)
		} else {
			cols = tensor.Im2Col(xi, c.Geom)
			c.lastCols[ni] = cols
		}
		oi := tensor.FromSlice(out.Data[ni*c.OutC*hw:(ni+1)*c.OutC*hw], c.OutC, hw)
		tensor.MatMulInto(oi, wm, cols)
		if c.Bias != nil {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.Bias.Value.Data[oc]
				row := oi.Data[oc*hw : (oc+1)*hw]
				for i := range row {
					row[i] += b
				}
			}
		}
	}
	return out
}

// Backward accumulates dW (and db) and returns dX.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", c.name))
	}
	n, inC, h, w := c.lastIn[0], c.lastIn[1], c.lastIn[2], c.lastIn[3]
	oh, ow := c.lastOutShape[2], c.lastOutShape[3]
	hw := oh * ow
	if grad.Size() != n*c.OutC*hw {
		panic(fmt.Sprintf("nn: %s: grad %v, want %v", c.name, grad.Shape(), c.lastOutShape))
	}
	dW := c.Weight.Grad.Reshape(c.OutC, inC*c.Geom.KH*c.Geom.KW)
	wm := c.Weight.Value.Reshape(c.OutC, inC*c.Geom.KH*c.Geom.KW)
	dx := tensor.New(n, inC, h, w)
	for ni := 0; ni < n; ni++ {
		gi := tensor.FromSlice(grad.Data[ni*c.OutC*hw:(ni+1)*c.OutC*hw], c.OutC, hw)
		// dW += gi · colsᵀ
		tensor.AddInPlace(dW, tensor.MatMulTB(gi, c.lastCols[ni]))
		if c.Bias != nil {
			for oc := 0; oc < c.OutC; oc++ {
				s := float32(0)
				for _, v := range gi.Data[oc*hw : (oc+1)*hw] {
					s += v
				}
				c.Bias.Grad.Data[oc] += s
			}
		}
		// dcols = Wᵀ · gi ; dx_i = col2im(dcols)
		dcols := tensor.MatMulTA(wm, gi)
		dxi := tensor.Col2Im(dcols, 1, inC, h, w, c.Geom)
		copy(dx.Data[ni*inC*h*w:(ni+1)*inC*h*w], dxi.Data)
	}
	return dx
}

// FLOPs returns the multiply-accumulate count for one forward pass on
// an input of spatial size h×w (used by the Orin performance model).
func (c *Conv2D) FLOPs(h, w int) int64 {
	oh, ow := c.Geom.OutSize(h, w)
	macs := int64(c.OutC) * int64(oh) * int64(ow) * int64(c.InC) * int64(c.Geom.KH) * int64(c.Geom.KW)
	return 2 * macs
}
