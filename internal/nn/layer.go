// Package nn implements the neural-network substrate used by the UFLD
// lane detector and the adaptation algorithms: layers with explicit
// reverse-mode gradients (Conv2D, BatchNorm2D, Linear, ReLU, pooling),
// losses (group cross-entropy, Shannon prediction entropy, UFLD
// structural losses) and optimizers (SGD with momentum, Adam).
//
// Layers follow a simple contract: Forward caches whatever the matching
// Backward needs; Backward consumes the gradient w.r.t. the layer
// output and returns the gradient w.r.t. the layer input while
// accumulating parameter gradients into Param.Grad. A forward Mode
// selects between training, inference and the BN-adaptation behaviour
// at the centre of LD-BN-ADAPT.
package nn

import (
	"fmt"

	"ldbnadapt/internal/tensor"
)

// Mode selects the forward-pass behaviour of mode-dependent layers
// (currently only BatchNorm2D distinguishes the three).
type Mode int

const (
	// Train normalizes by batch statistics and updates running stats.
	Train Mode = iota
	// Eval normalizes by the stored running statistics.
	Eval
	// Adapt is the LD-BN-ADAPT mode: normalize by the *current batch*
	// statistics computed from unlabeled target data (the paper's step
	// (i): "normalization ... recomputed from the unlabeled data") and
	// refresh the running statistics so subsequent Eval passes see the
	// target domain.
	Adapt
	// Infer is the serving fast path: numerically identical to Eval but
	// layers skip every backward cache and reuse layer-owned scratch
	// buffers for their outputs. A tensor returned by an Infer forward
	// is only valid until the layer's next Infer forward, and Backward
	// after an Infer forward panics. BatchNorm2D additionally honours
	// per-sample statistics sources in this mode (multi-stream batched
	// serving, see SetSampleSources).
	Infer
	// InferInt8 is Infer with the Conv2D and Linear products computed in
	// symmetric int8 (per-output-channel weight scales, one dynamic
	// activation scale per sample; see internal/tensor/int8.go). All
	// other layers — BatchNorm, ReLU, pooling — run in float32, so the
	// output differs from Infer only by the quantization error of the
	// conv/linear kernels. Scratch and cache semantics are identical to
	// Infer. Because activation scales are per sample, a batched
	// InferInt8 forward remains bitwise identical to the sequential one.
	InferInt8
)

// IsInfer reports whether m is one of the serving fast-path modes
// (Infer or InferInt8): no backward caches, scratch-backed outputs,
// per-sample BN sources honoured.
func (m Mode) IsInfer() bool { return m == Infer || m == InferInt8 }

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Train:
		return "train"
	case Eval:
		return "eval"
	case Adapt:
		return "adapt"
	case Infer:
		return "infer"
	case InferInt8:
		return "infer-int8"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	// Name identifies the parameter for serialization and for the
	// adaptation selectors (e.g. "layer3.bn2.gamma").
	Name string
	// Value is the parameter tensor.
	Value *tensor.Tensor
	// Grad accumulates the loss gradient; same shape as Value.
	Grad *tensor.Tensor
}

// NewParam allocates a parameter with a zeroed gradient.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable network component.
type Layer interface {
	// Forward computes the layer output for input x under the given
	// mode, caching activations needed by Backward.
	Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients. It must be called after
	// Forward on the same input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// Name returns the layer's identifier (used to prefix param names).
	Name() string
}

// ZeroGrads clears the gradients of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Value.Size()
	}
	return n
}

// FilterParams returns the params for which keep returns true.
func FilterParams(params []*Param, keep func(*Param) bool) []*Param {
	var out []*Param
	for _, p := range params {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}
