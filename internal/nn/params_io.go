package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ldbnadapt/internal/tensor"
)

// paramsMagic identifies the parameter-bundle format ("LDP1").
const paramsMagic = 0x4C445031

// SaveParams writes a named parameter bundle: every Param's Value plus
// the extras map (used for BN running statistics, which are state but
// not trainable parameters).
func SaveParams(w io.Writer, params []*Param, extras map[string]*tensor.Tensor) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, uint32(paramsMagic)); err != nil {
		return err
	}
	total := len(params) + len(extras)
	if err := binary.Write(bw, binary.LittleEndian, uint32(total)); err != nil {
		return err
	}
	writeOne := func(name string, t *tensor.Tensor) error {
		nb := []byte(name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(nb))); err != nil {
			return err
		}
		if _, err := bw.Write(nb); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		_, err := t.WriteTo(w)
		return err
	}
	for _, p := range params {
		if err := writeOne(p.Name, p.Value); err != nil {
			return fmt.Errorf("nn: saving %q: %w", p.Name, err)
		}
	}
	for _, kv := range sortedExtras(extras) {
		if err := writeOne(kv.name, kv.t); err != nil {
			return fmt.Errorf("nn: saving %q: %w", kv.name, err)
		}
	}
	return bw.Flush()
}

type namedTensor struct {
	name string
	t    *tensor.Tensor
}

// sortedExtras returns extras in deterministic (sorted) order.
func sortedExtras(extras map[string]*tensor.Tensor) []namedTensor {
	names := make([]string, 0, len(extras))
	for n := range extras {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := make([]namedTensor, len(names))
	for i, n := range names {
		out[i] = namedTensor{n, extras[n]}
	}
	return out
}

// LoadParams reads a parameter bundle into the given params (matched by
// name) and returns any entries that matched no param (the extras).
// Every param must be present in the bundle with a matching shape.
func LoadParams(r io.Reader, params []*Param) (map[string]*tensor.Tensor, error) {
	var m, count uint32
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if m != paramsMagic {
		return nil, fmt.Errorf("nn: bad magic %#x", m)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("nn: reading count: %w", err)
	}
	byName := make(map[string]*Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	seen := make(map[string]bool, len(params))
	extras := make(map[string]*tensor.Tensor)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("nn: reading name length: %w", err)
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		nb := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nb); err != nil {
			return nil, fmt.Errorf("nn: reading name: %w", err)
		}
		t, err := tensor.ReadFrom(r)
		if err != nil {
			return nil, fmt.Errorf("nn: reading tensor %q: %w", nb, err)
		}
		name := string(nb)
		if p, ok := byName[name]; ok {
			if !p.Value.SameShape(t) {
				return nil, fmt.Errorf("nn: %q shape %v, want %v", name, t.Shape(), p.Value.Shape())
			}
			p.Value.CopyFrom(t)
			seen[name] = true
		} else {
			extras[name] = t
		}
	}
	for _, p := range params {
		if !seen[p.Name] {
			return nil, fmt.Errorf("nn: bundle is missing parameter %q", p.Name)
		}
	}
	return extras, nil
}
