package nn

import (
	"testing"

	"ldbnadapt/internal/tensor"
)

// inferNet builds a small conv→bn→relu→pool→flatten→linear chain with
// non-trivial BN state, exercising every layer that has an Infer fast
// path.
func inferNet(rng *tensor.RNG) *Sequential {
	conv := NewConv2D("c", 3, 4, tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}, true, rng)
	bn := NewBatchNorm2D("b", 4)
	for c := 0; c < 4; c++ {
		bn.RunningMean.Data[c] = float32(rng.Range(-0.5, 0.5))
		bn.RunningVar.Data[c] = float32(rng.Range(0.5, 2))
		bn.Gamma.Value.Data[c] = float32(rng.Range(0.5, 1.5))
		bn.Beta.Value.Data[c] = float32(rng.Range(-0.3, 0.3))
	}
	pool := NewMaxPool2D("p", tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2})
	fc := NewLinear("f", 4*4*5, 7, rng)
	return NewSequential("net", conv, bn, NewReLU("r"), pool, NewFlatten("fl"), fc)
}

func randInput(rng *tensor.RNG, n int) *tensor.Tensor {
	x := tensor.New(n, 3, 8, 10)
	for i := range x.Data {
		x.Data[i] = float32(rng.Range(-1, 1))
	}
	return x
}

// TestInferMatchesEval asserts the Infer fast path is bitwise identical
// to Eval-mode arithmetic, including across repeated calls that reuse
// the scratch buffers.
func TestInferMatchesEval(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := inferNet(rng)
	for trial := 0; trial < 4; trial++ {
		x := randInput(rng, 1+trial%3)
		want := net.Forward(x, Eval).Clone()
		got := net.Forward(x, Infer)
		if !want.AllClose(got, 0) {
			t.Fatalf("trial %d: Infer output differs from Eval", trial)
		}
	}
}

// TestInferSampleSources asserts per-sample BN conditioning: a batch
// whose samples carry different BNSource states must reproduce, per
// sample, the output of Eval mode with that state installed.
func TestInferSampleSources(t *testing.T) {
	rng := tensor.NewRNG(11)
	net := inferNet(rng)
	var bn *BatchNorm2D
	for _, l := range net.Layers {
		if b, ok := l.(*BatchNorm2D); ok {
			bn = b
		}
	}
	const n = 3
	srcs := make([]*BNSource, n)
	for i := range srcs {
		s := &BNSource{
			Mean:  make([]float32, bn.C),
			Var:   make([]float32, bn.C),
			Gamma: make([]float32, bn.C),
			Beta:  make([]float32, bn.C),
		}
		for c := 0; c < bn.C; c++ {
			s.Mean[c] = float32(rng.Range(-0.4, 0.4))
			s.Var[c] = float32(rng.Range(0.6, 1.8))
			s.Gamma[c] = float32(rng.Range(0.7, 1.3))
			s.Beta[c] = float32(rng.Range(-0.2, 0.2))
		}
		srcs[i] = s
	}
	x := randInput(rng, n)
	bn.SetSampleSources(srcs)
	got := net.Forward(x, Infer).Clone()
	bn.SetSampleSources(nil)

	chw := 3 * 8 * 10
	outDim := got.Dim(1)
	for i := 0; i < n; i++ {
		// Install sample i's state as the layer state and run Eval on
		// just that sample.
		copy(bn.RunningMean.Data, srcs[i].Mean)
		copy(bn.RunningVar.Data, srcs[i].Var)
		copy(bn.Gamma.Value.Data, srcs[i].Gamma)
		copy(bn.Beta.Value.Data, srcs[i].Beta)
		xi := tensor.FromSlice(x.Data[i*chw:(i+1)*chw], 1, 3, 8, 10)
		want := net.Forward(xi, Eval)
		for j := 0; j < outDim; j++ {
			if want.Data[j] != got.Data[i*outDim+j] {
				t.Fatalf("sample %d logit %d: batched %g, sequential %g", i, j, got.Data[i*outDim+j], want.Data[j])
			}
		}
	}
}

// TestInferForbidsBackward asserts the Infer path invalidates backward
// caches so a stale Backward cannot silently use them.
func TestInferForbidsBackward(t *testing.T) {
	rng := tensor.NewRNG(3)
	conv := NewConv2D("c", 3, 4, tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}, false, rng)
	x := randInput(rng, 2)
	out := conv.Forward(x, Infer)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward after Infer forward did not panic")
		}
	}()
	conv.Backward(tensor.New(out.Shape()...))
}

// TestInferSourcesPanicOutsideInfer asserts the mode guard: installed
// sample sources must not leak into Eval/Train/Adapt forwards.
func TestInferSourcesPanicOutsideInfer(t *testing.T) {
	rng := tensor.NewRNG(5)
	bn := NewBatchNorm2D("b", 2)
	src := &BNSource{Mean: make([]float32, 2), Var: []float32{1, 1}, Gamma: []float32{1, 1}, Beta: make([]float32, 2)}
	bn.SetSampleSources([]*BNSource{src})
	x := tensor.New(1, 2, 2, 2)
	for i := range x.Data {
		x.Data[i] = float32(rng.Range(-1, 1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Eval forward with sample sources installed did not panic")
		}
	}()
	bn.Forward(x, Eval)
}
