package nn

import (
	"fmt"

	"ldbnadapt/internal/tensor"
)

// Linear is a fully-connected layer y = x·Wᵀ + b over [n, in] inputs.
type Linear struct {
	name    string
	In, Out int
	Weight  *Param // [out, in]
	Bias    *Param // [out]
	lastX   *tensor.Tensor

	scratchOut []float32 // Infer-mode output buffer
}

// NewLinear constructs a Kaiming-initialized fully-connected layer.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	w := tensor.New(out, in)
	rng.KaimingLinear(w)
	return &Linear{
		name:   name,
		In:     in,
		Out:    out,
		Weight: NewParam(name+".weight", w),
		Bias:   NewParam(name+".bias", tensor.New(out)),
	}
}

// Name returns the layer identifier.
func (l *Linear) Name() string { return l.name }

// Params returns weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward computes x·Wᵀ + b. In Infer mode the output lands in a
// reusable scratch buffer and no backward cache is kept.
func (l *Linear) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	if x.NDim() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s: input %v, want [n,%d]", l.name, x.Shape(), l.In))
	}
	var out *tensor.Tensor
	if mode == Infer {
		l.lastX = nil // Backward after an Infer forward must panic
		out = scratchFor(&l.scratchOut, x.Dim(0), l.Out)
		tensor.MatMulTBInto(out, x, l.Weight.Value)
	} else {
		l.lastX = x
		out = tensor.MatMulTB(x, l.Weight.Value) // [n, out]
	}
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.Value.Data[j]
		}
	}
	return out
}

// Backward accumulates dW = dYᵀ·X and db = Σ dY, returning dX = dY·W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.lastX == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", l.name))
	}
	n := l.lastX.Dim(0)
	if grad.NDim() != 2 || grad.Dim(0) != n || grad.Dim(1) != l.Out {
		panic(fmt.Sprintf("nn: %s: grad %v, want [%d,%d]", l.name, grad.Shape(), n, l.Out))
	}
	tensor.AddInPlace(l.Weight.Grad, tensor.MatMulTA(grad, l.lastX))
	for i := 0; i < n; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			l.Bias.Grad.Data[j] += v
		}
	}
	return tensor.MatMul(grad, l.Weight.Value)
}

// FLOPs returns the multiply-accumulate count of one forward pass for a
// single sample.
func (l *Linear) FLOPs() int64 { return 2 * int64(l.In) * int64(l.Out) }
