package nn

import (
	"fmt"

	"ldbnadapt/internal/tensor"
)

// Linear is a fully-connected layer y = x·Wᵀ + b over [n, in] inputs.
//
// Unlike Conv2D/BatchNorm2D, Linear needs no sample banding of its
// own: its forward is a single MatMulTBInto (Int8MatMulTBInto on the
// int8 rung) and its backward a MatMulTAInto + MatMulInto, all of
// which parallelize internally on the shared worker pool — the TB
// kernels band output features when the batch has fewer rows than
// workers, so even a one-frame forward spreads across cores. The
// remaining per-sample loops here (bias add, activation quantize) are
// O(n·out) byte-movers far below any dispatch break-even.
type Linear struct {
	name    string
	In, Out int
	Weight  *Param // [out, in]
	Bias    *Param // [out]
	lastX   *tensor.Tensor

	// Scratch (see scratch.go): separate infer and adapt output
	// buffers because the two paths run at different batch sizes.
	inferOut Scratch
	adaptOut Scratch
	dwTmp    Scratch // backward weight-grad staging
	dxOut    Scratch // backward input gradient

	// Int8 weight cache for InferInt8 (per-output-feature scales),
	// built lazily; see Conv2D for the invalidation contract.
	wq      []int8
	wScales []float32
	wqOK    bool
	xq      []int8
	xScales []float32
}

// NewLinear constructs a Kaiming-initialized fully-connected layer.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	w := tensor.New(out, in)
	rng.KaimingLinear(w)
	return &Linear{
		name:   name,
		In:     in,
		Out:    out,
		Weight: NewParam(name+".weight", w),
		Bias:   NewParam(name+".bias", tensor.New(out)),
	}
}

// Name returns the layer identifier.
func (l *Linear) Name() string { return l.name }

// Params returns weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward computes x·Wᵀ + b. Infer/InferInt8 and Adapt mode write into
// layer-owned scratch (no backward cache on the infer paths); Train
// and Eval allocate fresh outputs that are safe to retain.
func (l *Linear) Forward(x *tensor.Tensor, mode Mode) *tensor.Tensor {
	if x.NDim() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s: input %v, want [n,%d]", l.name, x.Shape(), l.In))
	}
	n := x.Dim(0)
	var out *tensor.Tensor
	switch {
	case mode.IsInfer():
		l.lastX = nil // Backward after an Infer forward must panic
		out = l.inferOut.For(n, l.Out)
		if mode == InferInt8 {
			l.ensureInt8()
			l.xq = growI8(l.xq, n*l.In)
			l.xScales = growF32(l.xScales, n)
			for i := 0; i < n; i++ {
				l.xScales[i] = tensor.QuantizeInt8(l.xq[i*l.In:(i+1)*l.In], x.Data[i*l.In:(i+1)*l.In])
			}
			tensor.Int8MatMulTBInto(out, l.xq, l.xScales, l.wq, l.wScales, n, l.In, l.Out)
		} else {
			tensor.MatMulTBInto(out, x, l.Weight.Value)
		}
	case mode == Adapt:
		l.lastX = x
		out = l.adaptOut.For(n, l.Out)
		tensor.MatMulTBInto(out, x, l.Weight.Value)
	default:
		l.lastX = x
		out = tensor.MatMulTB(x, l.Weight.Value) // [n, out]
	}
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.Value.Data[j]
		}
	}
	return out
}

// ensureInt8 builds the per-output-feature int8 weight cache.
func (l *Linear) ensureInt8() {
	if l.wqOK {
		return
	}
	l.wq = growI8(l.wq, l.Out*l.In)
	l.wScales = growF32(l.wScales, l.Out)
	tensor.QuantizeInt8PerRow(l.wq, l.wScales, l.Weight.Value.Data, l.Out, l.In)
	l.wqOK = true
}

// InvalidateInt8 drops the cached int8 weights so the next InferInt8
// forward re-quantizes Weight.Value. Call after mutating the weights.
func (l *Linear) InvalidateInt8() { l.wqOK = false }

// Backward accumulates dW = dYᵀ·X and db = Σ dY, returning dX = dY·W
// in layer-owned scratch (valid until the next Backward).
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.lastX == nil {
		panic(fmt.Sprintf("nn: %s: Backward before Forward", l.name))
	}
	n := l.lastX.Dim(0)
	if grad.NDim() != 2 || grad.Dim(0) != n || grad.Dim(1) != l.Out {
		panic(fmt.Sprintf("nn: %s: grad %v, want [%d,%d]", l.name, grad.Shape(), n, l.Out))
	}
	dw := l.dwTmp.For(l.Out, l.In)
	tensor.MatMulTAInto(dw, grad, l.lastX)
	tensor.AddInPlace(l.Weight.Grad, dw)
	for i := 0; i < n; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			l.Bias.Grad.Data[j] += v
		}
	}
	dx := l.dxOut.For(n, l.In)
	tensor.MatMulInto(dx, grad, l.Weight.Value)
	return dx
}

// FLOPs returns the multiply-accumulate count of one forward pass for a
// single sample.
func (l *Linear) FLOPs() int64 { return 2 * int64(l.In) * int64(l.Out) }
