package stream

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

type fixture struct {
	bench *carlane.Benchmark
	model *ufld.Model
	rng   *tensor.RNG
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := tensor.NewRNG(99)
		b := carlane.Build(carlane.MoLane, resnet.R18, ufld.Tiny,
			carlane.Sizes{SourceTrain: 40, SourceVal: 12, TargetTrain: 24, TargetVal: 16}, 13)
		m := ufld.MustNewModel(b.Cfg, rng)
		tc := ufld.DefaultTrainConfig()
		tc.Epochs = 4
		if _, err := ufld.TrainSource(m, b.SourceTrain, tc, rng.Split()); err != nil {
			panic(err)
		}
		fix = fixture{bench: b, model: m, rng: rng}
	})
	return &fix
}

func TestSourceTimestamps(t *testing.T) {
	f := getFixture(t)
	src := NewSource(f.bench.TargetTrain, 30)
	if len(src.Frames) != f.bench.TargetTrain.Len() {
		t.Fatal("frame count wrong")
	}
	period := src.Period()
	if period != time.Second/30 {
		t.Fatalf("period %v", period)
	}
	for i, fr := range src.Frames {
		if fr.Index != i {
			t.Fatal("indices must be ordered")
		}
		if fr.Arrival != time.Duration(i)*period {
			t.Fatalf("frame %d arrival %v", i, fr.Arrival)
		}
	}
}

// TestSourceScheduleArrivals pins the phased arrival arithmetic: a
// lull→burst→lull schedule with a join offset must stamp each frame at
// the exact integral of its phase periods and report the burst rate as
// the nominal FPS.
func TestSourceScheduleArrivals(t *testing.T) {
	f := getFixture(t)
	start := 500 * time.Millisecond
	src := NewSourceSchedule(f.bench.TargetTrain, start, []RatePhase{
		{Frames: 3, FPS: 10}, // lull: 100 ms period
		{Frames: 4, FPS: 40}, // burst: 25 ms period
		{Frames: 2, FPS: 10},
	})
	if src.FPS != 40 {
		t.Fatalf("nominal FPS %v, want the fastest phase (40)", src.FPS)
	}
	if len(src.Frames) != 9 {
		t.Fatalf("frame count %d, want 9", len(src.Frames))
	}
	want := []time.Duration{
		start,
		start + 100*time.Millisecond,
		start + 200*time.Millisecond,
		start + 300*time.Millisecond, // burst starts one lull period after its opener
		start + 325*time.Millisecond,
		start + 350*time.Millisecond,
		start + 375*time.Millisecond,
		start + 400*time.Millisecond, // back to the lull rate
		start + 500*time.Millisecond,
	}
	for i, fr := range src.Frames {
		if fr.Index != i {
			t.Fatalf("frame %d index %d", i, fr.Index)
		}
		if fr.Arrival != want[i] {
			t.Fatalf("frame %d arrives at %v, want %v", i, fr.Arrival, want[i])
		}
	}
}

// TestSourceScheduleTruncatesToDataset: a schedule longer than the
// dataset ends early — the natural model of a stream that leaves.
func TestSourceScheduleTruncatesToDataset(t *testing.T) {
	f := getFixture(t)
	n := f.bench.TargetTrain.Len()
	src := NewSourceSchedule(f.bench.TargetTrain, 0, []RatePhase{{Frames: n + 50, FPS: 30}})
	if len(src.Frames) != n {
		t.Fatalf("schedule served %d frames, want dataset size %d", len(src.Frames), n)
	}
}

// TestSourceScheduleRejectsBadPhases: non-positive rates and empty
// schedules must panic like NewSource's fps validation.
func TestSourceScheduleRejectsBadPhases(t *testing.T) {
	f := getFixture(t)
	for name, phases := range map[string][]RatePhase{
		"zero-fps":   {{Frames: 4, FPS: 0}},
		"neg-frames": {{Frames: -1, FPS: 30}},
		"empty":      {},
		"no-frames":  {{Frames: 0, FPS: 30}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: schedule accepted", name)
				}
			}()
			NewSourceSchedule(f.bench.TargetTrain, 0, phases)
		}()
	}
}

func TestNewSourceRejectsBadFPS(t *testing.T) {
	f := getFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("fps=0 accepted")
		}
	}()
	NewSource(f.bench.TargetTrain, 0)
}

func TestRunMeets30FPSWithR18At60W(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	src := NewSource(f.bench.TargetTrain, 30)
	res := Run(m, resnet.R18, src, Config{
		Method:     adapt.NewLDBNAdapt(m, adapt.DefaultConfig()),
		BatchSize:  1,
		Mode:       orin.Mode60W,
		DeadlineMs: orin.Deadline30FPS,
	})
	// The paper's headline: R-18 at 60 W meets every 33.3 ms deadline.
	if res.MissRate != 0 {
		t.Fatalf("R-18@60W miss rate %.2f, want 0", res.MissRate)
	}
	if res.AdaptSteps != len(src.Frames) {
		t.Fatalf("bs=1 must adapt once per frame: %d vs %d", res.AdaptSteps, len(src.Frames))
	}
	if res.OnlineAccuracy <= 0 || res.OnlineAccuracy > 1 {
		t.Fatalf("online accuracy %v", res.OnlineAccuracy)
	}
}

func TestRunMissesDeadlineAtLowPower(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	src := NewSource(f.bench.TargetTrain, 30)
	var log strings.Builder
	res := Run(m, resnet.R18, src, Config{
		Method:     adapt.NewLDBNAdapt(m, adapt.DefaultConfig()),
		BatchSize:  1,
		Mode:       orin.Mode15W,
		DeadlineMs: orin.Deadline30FPS,
		Log:        &log,
	})
	// 15 W misses every frame per Fig. 3.
	if res.MissRate != 1 {
		t.Fatalf("R-18@15W miss rate %.2f, want 1", res.MissRate)
	}
	if !strings.Contains(log.String(), "deadline") {
		t.Fatal("misses must be logged")
	}
}

func TestRunNoAdaptIsCheaper(t *testing.T) {
	f := getFixture(t)
	src := NewSource(f.bench.TargetTrain, 30)
	mA := f.model.Clone(f.rng.Split())
	withAdapt := Run(mA, resnet.R18, src, Config{
		Method: adapt.NewLDBNAdapt(mA, adapt.DefaultConfig()), BatchSize: 1,
		Mode: orin.Mode60W, DeadlineMs: orin.Deadline30FPS,
	})
	mB := f.model.Clone(f.rng.Split())
	noAdapt := Run(mB, resnet.R18, src, Config{
		Method: adapt.NewNoAdapt(), BatchSize: 1,
		Mode: orin.Mode60W, DeadlineMs: orin.Deadline30FPS,
	})
	if noAdapt.MeanLatencyMs >= withAdapt.MeanLatencyMs {
		t.Fatal("inference-only must be cheaper than inference+adaptation")
	}
}

func TestRunTrailingPartialBatchAdapts(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	src := NewSource(f.bench.TargetTrain, 30) // 24 frames
	res := Run(m, resnet.R18, src, Config{
		Method:     adapt.NewLDBNAdapt(m, adapt.DefaultConfig()),
		BatchSize:  5, // 24 = 4 full batches + trailing 4
		Mode:       orin.Mode60W,
		DeadlineMs: orin.Deadline18FPS,
	})
	want := (len(src.Frames) + 4) / 5
	if res.AdaptSteps != want {
		t.Fatalf("adapt steps %d, want %d", res.AdaptSteps, want)
	}
}

func TestRunRecordsPerFrame(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	src := NewSource(f.bench.TargetTrain, 30)
	res := Run(m, resnet.R18, src, Config{
		Method: adapt.NewNoAdapt(), BatchSize: 2,
		Mode: orin.Mode60W, DeadlineMs: orin.Deadline30FPS,
	})
	if len(res.Records) != len(src.Frames) {
		t.Fatal("per-frame records missing")
	}
	for i, r := range res.Records {
		if r.Index != i || r.LatencyMs <= 0 {
			t.Fatalf("record %d malformed: %+v", i, r)
		}
		if r.DeadlineMet != (r.LatencyMs <= orin.Deadline30FPS) {
			t.Fatal("deadline flag inconsistent")
		}
	}
	if res.MaxLatencyMs < res.MeanLatencyMs-1e-9 {
		t.Fatal("max < mean")
	}
}

func TestRunAdaptationImprovesOverStream(t *testing.T) {
	// Accuracy over the second half of the stream should be at least
	// as good as the first half once adaptation kicks in.
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	src := NewSource(f.bench.TargetTrain, 30)
	res := Run(m, resnet.R18, src, Config{
		Method:     adapt.NewLDBNAdapt(m, adapt.DefaultConfig()),
		BatchSize:  1,
		Mode:       orin.Mode60W,
		DeadlineMs: orin.Deadline30FPS,
	})
	half := len(res.Records) / 2
	score := func(rs []FrameRecord) float64 {
		w, p := 0.0, 0
		for _, r := range rs {
			w += r.Accuracy * float64(r.Points)
			p += r.Points
		}
		if p == 0 {
			return 0
		}
		return w / float64(p)
	}
	first, second := score(res.Records[:half]), score(res.Records[half:])
	if second+0.05 < first {
		t.Fatalf("accuracy degraded over the stream: %.3f → %.3f", first, second)
	}
}

func TestOverloadPolicyNames(t *testing.T) {
	if DropNone.String() != "drop-none" || SkipAdapt.String() != "skip-adapt" || DropFrames.String() != "drop-frames" {
		t.Fatal("policy names wrong")
	}
	if OverloadPolicy(9).String() == "" {
		t.Fatal("unknown policy must render")
	}
}

func TestOverloadDropFramesShedsLoad(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	src := NewSource(f.bench.TargetTrain, 30)
	// 15 W is massively overloaded at 30 FPS: frames must be dropped.
	res := RunWithOverload(m, resnet.R18, src, Config{
		Method:     adapt.NewLDBNAdapt(m, adapt.DefaultConfig()),
		BatchSize:  1,
		Mode:       orin.Mode15W,
		DeadlineMs: orin.Deadline30FPS,
	}, DropFrames)
	if res.FramesDropped == 0 {
		t.Fatal("overloaded pipeline dropped no frames")
	}
	if res.FramesDropped+len(res.Records) != len(src.Frames) {
		t.Fatal("dropped+processed != total")
	}
}

func TestOverloadSkipAdaptKeepsEveryFrame(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	src := NewSource(f.bench.TargetTrain, 30)
	res := RunWithOverload(m, resnet.R18, src, Config{
		Method:     adapt.NewLDBNAdapt(m, adapt.DefaultConfig()),
		BatchSize:  1,
		Mode:       orin.Mode15W,
		DeadlineMs: orin.Deadline30FPS,
	}, SkipAdapt)
	if len(res.Records) != len(src.Frames) {
		t.Fatal("SkipAdapt must process every frame")
	}
	if res.AdaptsSkipped == 0 {
		t.Fatal("overloaded pipeline skipped no adaptations")
	}
	if res.AdaptSteps+res.AdaptsSkipped != len(src.Frames) {
		t.Fatal("adapt accounting inconsistent")
	}
}

func TestOverloadNoShedWhenFast(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	src := NewSource(f.bench.TargetTrain, 30)
	// 60 W fits the budget: nothing is shed under any policy.
	for _, pol := range []OverloadPolicy{DropNone, SkipAdapt, DropFrames} {
		mc := f.model.Clone(f.rng.Split())
		res := RunWithOverload(mc, resnet.R18, src, Config{
			Method:     adapt.NewLDBNAdapt(mc, adapt.DefaultConfig()),
			BatchSize:  1,
			Mode:       orin.Mode60W,
			DeadlineMs: orin.Deadline30FPS,
		}, pol)
		if res.FramesDropped != 0 || res.AdaptsSkipped != 0 {
			t.Fatalf("%v: shed work despite meeting the deadline", pol)
		}
		if len(res.Records) != len(src.Frames) {
			t.Fatalf("%v: frames missing", pol)
		}
	}
	_ = m
}

// TestRunTrailingBatchPricedAtActualSize is the regression test for
// trailing-batch pricing: the final partial batch adapts at its real
// (smaller) size, so its frames amortize the adaptation step over
// fewer frames and must be priced more expensively than full-batch
// frames — not with the full batch's amortization.
func TestRunTrailingBatchPricedAtActualSize(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	src := NewSource(f.bench.TargetTrain, 30) // 24 frames
	const bs = 5                              // 24 = 4 full batches + trailing 4
	res := Run(m, resnet.R18, src, Config{
		Method:     adapt.NewLDBNAdapt(m, adapt.DefaultConfig()),
		BatchSize:  bs,
		Mode:       orin.Mode60W,
		DeadlineMs: orin.Deadline18FPS,
	})
	n := len(src.Frames)
	trailing := n % bs
	if trailing == 0 {
		t.Fatalf("fixture stream length %d is a multiple of %d — test needs a partial batch", n, bs)
	}
	cost := ufld.DescribeModel(ufld.FullScale(resnet.R18, m.Cfg.Lanes))
	wantFull := orin.EstimateFrame("R-18", cost, orin.Mode60W, bs).TotalMs
	wantTail := orin.EstimateFrame("R-18", cost, orin.Mode60W, trailing).TotalMs
	if wantTail <= wantFull {
		t.Fatalf("pricing model broken: bs=%d frame %.3f ms not above bs=%d frame %.3f ms", trailing, wantTail, bs, wantFull)
	}
	for i, rec := range res.Records {
		want := wantFull
		if i >= n-trailing {
			want = wantTail
		}
		if diff := rec.LatencyMs - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("frame %d latency %.6f ms, want %.6f ms", i, rec.LatencyMs, want)
		}
	}
}

// TestParsePolicy round-trips every policy name and rejects junk.
func TestParsePolicy(t *testing.T) {
	for _, p := range []OverloadPolicy{DropNone, SkipAdapt, DropFrames} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nonsense"); err == nil {
		t.Fatal("junk policy accepted")
	}
}
