// Package stream simulates the paper's deployment setting: a 30 FPS
// camera feeding target-domain frames to the vehicle, which must run
// inference and then LD-BN-ADAPT adaptation on each frame inside the
// frame budget. Functional behaviour (predictions, adaptation) runs on
// the real models; per-frame latency is priced by the Orin performance
// model so deadline misses reflect the paper's hardware, not the host
// CPU.
package stream

import (
	"fmt"
	"io"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/ufld"
)

// Frame is one camera capture.
type Frame struct {
	// Index is the frame number.
	Index int
	// Arrival is the camera timestamp.
	Arrival time.Duration
	// Sample is the image (labels used for scoring only).
	Sample ufld.Sample
}

// Source replays a dataset as a fixed-rate camera stream.
type Source struct {
	// FPS is the camera rate (the paper's cameras run at 30 FPS).
	FPS float64
	// Frames holds the stream in arrival order.
	Frames []Frame
}

// NewSource builds a source from a dataset at the given rate.
func NewSource(ds *ufld.Dataset, fps float64) *Source {
	if fps <= 0 {
		panic(fmt.Sprintf("stream: fps %v", fps))
	}
	s := &Source{FPS: fps, Frames: make([]Frame, ds.Len())}
	period := time.Duration(float64(time.Second) / fps)
	for i, smp := range ds.Samples {
		s.Frames[i] = Frame{Index: i, Arrival: time.Duration(i) * period, Sample: smp}
	}
	return s
}

// Period returns the frame interval at the source's nominal rate. For
// schedule-built sources (NewSourceSchedule) the nominal rate is the
// fastest phase, so backlog caps measured in periods stay meaningful
// during bursts.
func (s *Source) Period() time.Duration {
	return time.Duration(float64(time.Second) / s.FPS)
}

// RatePhase is one segment of a time-varying camera schedule: the next
// Frames frames arrive at FPS. Sequencing phases expresses the
// deployment scenarios a fixed-rate source cannot: load bursts (lull →
// burst → lull), diurnal ramps (staircase of rising then falling
// rates), and finite sessions (a short schedule is a stream that
// leaves early).
type RatePhase struct {
	// Frames is the number of frames the phase emits.
	Frames int
	// FPS is the camera rate during the phase.
	FPS float64
}

// NewSourceSchedule replays a dataset through consecutive rate phases,
// with the first frame arriving at start (a late join). The stream
// carries min(ds.Len(), Σ phase frames) frames; the nominal Source.FPS
// is the fastest phase rate. Arrival stamps are exact integrals of the
// phase periods, so schedules are deterministic inputs to the
// event-time scheduler and the governor's telemetry.
func NewSourceSchedule(ds *ufld.Dataset, start time.Duration, phases []RatePhase) *Source {
	maxFPS := 0.0
	total := 0
	for _, p := range phases {
		if p.FPS <= 0 {
			panic(fmt.Sprintf("stream: phase fps %v", p.FPS))
		}
		if p.Frames < 0 {
			panic(fmt.Sprintf("stream: phase frames %d", p.Frames))
		}
		total += p.Frames
		if p.FPS > maxFPS {
			maxFPS = p.FPS
		}
	}
	if total == 0 || maxFPS == 0 {
		panic("stream: empty schedule")
	}
	if total > ds.Len() {
		total = ds.Len()
	}
	s := &Source{FPS: maxFPS, Frames: make([]Frame, 0, total)}
	t := start
	for _, p := range phases {
		period := time.Duration(float64(time.Second) / p.FPS)
		for k := 0; k < p.Frames; k++ {
			i := len(s.Frames)
			if i == total {
				return s
			}
			s.Frames = append(s.Frames, Frame{Index: i, Arrival: t, Sample: ds.Samples[i]})
			t += period
		}
	}
	return s
}

// ScoreSample is the scoring stage shared by the single-camera
// simulator and the multi-stream serving engine: it counts the labeled
// ground-truth points of s and computes the TuSimple accuracy of pred
// against them.
func ScoreSample(cfg ufld.Config, pred ufld.Prediction, s ufld.Sample) (acc float64, points int) {
	for _, c := range s.Cells {
		if c != ufld.Absent {
			points++
		}
	}
	acc = ufld.Accuracy(cfg, []ufld.Prediction{pred}, []ufld.Sample{s}, []int{0})
	return acc, points
}

// Config describes one deployment to simulate.
type Config struct {
	// Method adapts the model (use adapt.NewNoAdapt() to disable).
	Method adapt.Method
	// BatchSize groups frames per adaptation step (paper: 1, 2, 4).
	BatchSize int
	// Mode is the Orin power mode to price latencies with.
	Mode orin.PowerMode
	// DeadlineMs is the per-frame budget (Deadline30FPS etc.).
	DeadlineMs float64
	// Log, when non-nil, receives one line per deadline miss.
	Log io.Writer
}

// FrameRecord is the outcome of one streamed frame.
type FrameRecord struct {
	// Index is the frame number.
	Index int
	// LatencyMs is the Orin-model per-frame latency (inference +
	// amortized adaptation + overhead).
	LatencyMs float64
	// DeadlineMet reports LatencyMs ≤ deadline.
	DeadlineMet bool
	// Accuracy is the frame's TuSimple point accuracy (NaN-free: 0 if
	// the frame has no labeled points).
	Accuracy float64
	// Points is the number of labeled ground-truth points.
	Points int
}

// Result aggregates a streamed run.
type Result struct {
	// MethodName, ModelName, ModeName identify the deployment.
	MethodName, ModelName, ModeName string
	// Records holds per-frame outcomes in order.
	Records []FrameRecord
	// OnlineAccuracy is the point-weighted accuracy over the stream.
	OnlineAccuracy float64
	// MissRate is the fraction of frames whose priced latency exceeded
	// the deadline.
	MissRate float64
	// MeanLatencyMs and MaxLatencyMs summarize the latency profile.
	MeanLatencyMs, MaxLatencyMs float64
	// AdaptSteps counts adaptation steps performed.
	AdaptSteps int
}

// Run streams every frame through the model: inference first (scored
// against the hidden labels), then adaptation per batch, with latency
// priced by the Orin model for the deployed full-scale architecture.
func Run(m *ufld.Model, variant resnet.Variant, src *Source, cfg Config) Result {
	if cfg.BatchSize < 1 {
		panic(fmt.Sprintf("stream: batch size %d", cfg.BatchSize))
	}
	cost := ufld.DescribeModel(ufld.FullScale(variant, m.Cfg.Lanes))
	_, isNoAdapt := cfg.Method.(*adapt.NoAdapt)
	var est orin.Estimate
	if isNoAdapt {
		est = orin.EstimateInferenceOnly(variant.String(), cost, cfg.Mode)
	} else {
		est = orin.EstimateFrame(variant.String(), cost, cfg.Mode, cfg.BatchSize)
	}
	// The final partial batch (when the stream length is not a multiple
	// of BatchSize) adapts at its real, smaller size, so its frames
	// amortize the adaptation step over fewer frames and must be priced
	// accordingly.
	nFrames := len(src.Frames)
	trailing := 0
	estTail := est
	if !isNoAdapt {
		if trailing = nFrames % cfg.BatchSize; trailing > 0 {
			estTail = orin.EstimateFrame(variant.String(), cost, cfg.Mode, trailing)
		}
	}
	res := Result{
		MethodName: cfg.Method.Name(),
		ModelName:  variant.String(),
		ModeName:   cfg.Mode.Name,
	}
	accW, points := 0.0, 0
	var batch []int
	latSum := 0.0
	for fi, fr := range src.Frames {
		frameEst := est
		if fi >= nFrames-trailing {
			frameEst = estTail
		}
		// Phase 1: inference.
		x, _ := ufld.Batch(m.Cfg, []ufld.Sample{fr.Sample}, []int{0})
		logits := m.Forward(x, nn.Eval)
		preds := ufld.Decode(m.Cfg, logits, 1)
		acc, cnt := ScoreSample(m.Cfg, preds[0], fr.Sample)
		accW += acc * float64(cnt)
		points += cnt

		rec := FrameRecord{
			Index:       fr.Index,
			LatencyMs:   frameEst.TotalMs,
			DeadlineMet: frameEst.TotalMs <= cfg.DeadlineMs,
			Accuracy:    acc,
			Points:      cnt,
		}
		latSum += rec.LatencyMs
		if rec.LatencyMs > res.MaxLatencyMs {
			res.MaxLatencyMs = rec.LatencyMs
		}
		if !rec.DeadlineMet {
			res.MissRate++
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "frame %d: %.1f ms > %.1f ms deadline\n",
					fr.Index, rec.LatencyMs, cfg.DeadlineMs)
			}
		}
		res.Records = append(res.Records, rec)

		// Phase 2: adaptation once the batch is full.
		batch = append(batch, fr.Index)
		if len(batch) == cfg.BatchSize {
			xb, _ := ufld.Batch(m.Cfg, samplesOf(src, batch), indices(len(batch)))
			cfg.Method.Adapt(xb)
			res.AdaptSteps++
			batch = batch[:0]
		}
	}
	if len(batch) > 0 { // trailing partial batch
		xb, _ := ufld.Batch(m.Cfg, samplesOf(src, batch), indices(len(batch)))
		cfg.Method.Adapt(xb)
		res.AdaptSteps++
	}
	if points > 0 {
		res.OnlineAccuracy = accW / float64(points)
	}
	n := float64(len(src.Frames))
	if n > 0 {
		res.MissRate /= n
		res.MeanLatencyMs = latSum / n
	}
	return res
}

// samplesOf gathers the stream samples at the given frame indices.
func samplesOf(src *Source, idx []int) []ufld.Sample {
	out := make([]ufld.Sample, len(idx))
	for i, fi := range idx {
		out[i] = src.Frames[fi].Sample
	}
	return out
}

// indices returns [0, 1, ..., n-1].
func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// OverloadPolicy selects what happens when the per-frame work does not
// fit the camera period: an overloaded deployment must either skip the
// adaptation phase or drop whole frames to catch up.
type OverloadPolicy int

const (
	// DropNone processes every frame regardless of overrun (latency
	// misses accumulate; the default Run behaviour).
	DropNone OverloadPolicy = iota
	// SkipAdapt keeps inference on every frame but skips the
	// adaptation phase whenever the previous frame overran — the model
	// still drives, adaptation degrades gracefully.
	SkipAdapt
	// DropFrames discards incoming frames while the pipeline is busy
	// (classic camera-queue behaviour).
	DropFrames
)

// String names the policy.
func (p OverloadPolicy) String() string {
	switch p {
	case DropNone:
		return "drop-none"
	case SkipAdapt:
		return "skip-adapt"
	case DropFrames:
		return "drop-frames"
	}
	return fmt.Sprintf("OverloadPolicy(%d)", int(p))
}

// ParsePolicy resolves a policy name as printed by String (used by the
// serving CLIs).
func ParsePolicy(s string) (OverloadPolicy, error) {
	for _, p := range []OverloadPolicy{DropNone, SkipAdapt, DropFrames} {
		if s == p.String() {
			return p, nil
		}
	}
	return DropNone, fmt.Errorf("stream: unknown overload policy %q (have drop-none/skip-adapt/drop-frames)", s)
}

// OverloadResult extends Result with overload accounting.
type OverloadResult struct {
	// Result is the base accounting over the frames actually processed.
	Result
	// FramesDropped counts frames discarded by DropFrames.
	FramesDropped int
	// AdaptsSkipped counts adaptation phases skipped by SkipAdapt.
	AdaptsSkipped int
}

// RunWithOverload streams frames under an overload policy: a virtual
// pipeline clock advances by the Orin-priced latency of the work
// actually performed, and the policy decides what to shed whenever the
// clock falls behind a frame's arrival time.
func RunWithOverload(m *ufld.Model, variant resnet.Variant, src *Source, cfg Config, policy OverloadPolicy) OverloadResult {
	cost := ufld.DescribeModel(ufld.FullScale(variant, m.Cfg.Lanes))
	inferOnly := orin.EstimateInferenceOnly(variant.String(), cost, cfg.Mode)
	full := orin.EstimateFrame(variant.String(), cost, cfg.Mode, 1)
	res := OverloadResult{Result: Result{
		MethodName: cfg.Method.Name(),
		ModelName:  variant.String(),
		ModeName:   cfg.Mode.Name,
	}}
	clockMs := 0.0
	accW, points := 0.0, 0
	latSum := 0.0
	processed := 0
	for _, fr := range src.Frames {
		arrivalMs := float64(fr.Arrival) / 1e6
		if policy == DropFrames && clockMs > arrivalMs {
			res.FramesDropped++
			continue
		}
		if clockMs < arrivalMs {
			clockMs = arrivalMs // pipeline idles until the frame arrives
		}
		behind := clockMs > arrivalMs
		frameMs := full.TotalMs
		doAdapt := true
		if policy == SkipAdapt && behind {
			frameMs = inferOnly.TotalMs
			doAdapt = false
			res.AdaptsSkipped++
		}
		x, _ := ufld.Batch(m.Cfg, []ufld.Sample{fr.Sample}, []int{0})
		logits := m.Forward(x, nn.Eval)
		preds := ufld.Decode(m.Cfg, logits, 1)
		acc, cnt := ScoreSample(m.Cfg, preds[0], fr.Sample)
		accW += acc * float64(cnt)
		points += cnt
		if doAdapt {
			cfg.Method.Adapt(x)
			res.AdaptSteps++
		}
		clockMs += frameMs
		latSum += frameMs
		if frameMs > res.MaxLatencyMs {
			res.MaxLatencyMs = frameMs
		}
		met := frameMs <= cfg.DeadlineMs
		if !met {
			res.MissRate++
		}
		res.Records = append(res.Records, FrameRecord{
			Index: fr.Index, LatencyMs: frameMs, DeadlineMet: met,
			Accuracy: acc, Points: cnt,
		})
		processed++
	}
	if points > 0 {
		res.OnlineAccuracy = accW / float64(points)
	}
	if processed > 0 {
		res.MissRate /= float64(processed)
		res.MeanLatencyMs = latSum / float64(processed)
	}
	return res
}
