package ufld

import "ldbnadapt/internal/resnet"

// DescribeModel prices the complete detector (backbone + neck + head)
// analytically for the Orin performance model, without allocating
// weights. The layer list matches NewModel's construction.
func DescribeModel(cfg Config) resnet.ModelCost {
	cost := resnet.Describe(cfg.Backbone, cfg.InputH, cfg.InputW)
	oh, ow := cost.OutH, cost.OutW
	featC := cost.OutC

	// Neck: 1×1 conv + BN + ReLU.
	neckParams := int64(cfg.NeckChannels) * int64(featC)
	cost.Layers = append(cost.Layers, resnet.LayerCost{
		Name: "neck.conv", Kind: "conv",
		FLOPs:       2 * int64(cfg.NeckChannels) * int64(oh) * int64(ow) * int64(featC),
		Params:      neckParams,
		ActBytes:    4 * int64(cfg.NeckChannels) * int64(oh) * int64(ow),
		WeightBytes: 4 * neckParams,
		OutC:        cfg.NeckChannels, OutH: oh, OutW: ow,
	})
	cost.Layers = append(cost.Layers, resnet.LayerCost{
		Name: "neck.bn", Kind: "bn",
		FLOPs:       4 * int64(cfg.NeckChannels) * int64(oh) * int64(ow),
		Params:      2 * int64(cfg.NeckChannels),
		BNParams:    2 * int64(cfg.NeckChannels),
		ActBytes:    4 * int64(cfg.NeckChannels) * int64(oh) * int64(ow),
		WeightBytes: 8 * int64(cfg.NeckChannels),
		OutC:        cfg.NeckChannels, OutH: oh, OutW: ow,
	})
	cost.Layers = append(cost.Layers, resnet.LayerCost{
		Name: "neck.relu", Kind: "relu",
		FLOPs:    int64(cfg.NeckChannels) * int64(oh) * int64(ow),
		ActBytes: 4 * int64(cfg.NeckChannels) * int64(oh) * int64(ow),
		OutC:     cfg.NeckChannels, OutH: oh, OutW: ow,
	})

	// Head: two fully-connected layers.
	flat := int64(cfg.NeckChannels) * int64(oh) * int64(ow)
	hid := int64(cfg.HiddenDim)
	out := int64(cfg.Groups()) * int64(cfg.Classes())
	fc1Params := flat*hid + hid
	cost.Layers = append(cost.Layers, resnet.LayerCost{
		Name: "head.fc1", Kind: "linear",
		FLOPs:       2 * flat * hid,
		Params:      fc1Params,
		ActBytes:    4 * hid,
		WeightBytes: 4 * fc1Params,
		OutC:        int(hid), OutH: 1, OutW: 1,
	})
	fc2Params := hid*out + out
	cost.Layers = append(cost.Layers, resnet.LayerCost{
		Name: "head.fc2", Kind: "linear",
		FLOPs:       2 * hid * out,
		Params:      fc2Params,
		ActBytes:    4 * out,
		WeightBytes: 4 * fc2Params,
		OutC:        int(out), OutH: 1, OutW: 1,
	})
	cost.OutC, cost.OutH, cost.OutW = int(out), 1, 1
	return cost
}
