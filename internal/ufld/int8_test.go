package ufld

import (
	"math"
	"testing"

	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
)

// TestInt8ForwardWithinDocumentedBound pins the end-to-end error model
// of the int8 inference rung (internal/nn/README.md): through the full
// detector — conv stacks, float32 BN/ReLU/pool, the FC head — the int8
// logits stay within 8% of the float32 logit range on seeded inputs.
// Measured 2.8–4.4% across these seeds; 8% leaves recalibration slack
// while still catching a broken scale, a stale weight cache, or a
// quantized layer that silently saturates.
func TestInt8ForwardWithinDocumentedBound(t *testing.T) {
	for _, seed := range []uint64{3, 17, 91, 200} {
		cfg := Tiny(resnet.R18, 2)
		m := MustNewModel(cfg, tensor.NewRNG(seed))
		x := tensor.New(3, 3, cfg.InputH, cfg.InputW)
		tensor.NewRNG(seed+1).FillNormal(x, 0.4, 0.3)

		fp := m.ForwardInfer(x).Clone() // infer paths share scratch
		q8 := m.ForwardInferInt8(x)

		maxAbs, maxDiff := 0.0, 0.0
		for i, v := range fp.Data {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
			if d := math.Abs(float64(v - q8.Data[i])); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 0.08*maxAbs {
			t.Fatalf("seed %d: int8 logits deviate %g (%.1f%% of float range %g), documented bound is 8%%",
				seed, maxDiff, 100*maxDiff/maxAbs, maxAbs)
		}
	}
}

// TestInt8ForwardBatchedMatchesSequential: the per-sample activation
// scales make the batched int8 forward bitwise-identical to running
// each frame alone — the whole-model version of the kernel-level pin,
// and the property that lets the serving engine coalesce frames from
// different streams onto the int8 rung with zero numeric coupling.
func TestInt8ForwardBatchedMatchesSequential(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	m := MustNewModel(cfg, tensor.NewRNG(31))
	const n = 3
	x := tensor.New(n, 3, cfg.InputH, cfg.InputW)
	tensor.NewRNG(32).FillNormal(x, 0.4, 0.3)

	batched := m.ForwardInferInt8(x).Clone()
	rows, classes := cfg.Groups(), cfg.Classes()
	chw := 3 * cfg.InputH * cfg.InputW
	for i := 0; i < n; i++ {
		xi := tensor.FromSlice(append([]float32(nil), x.Data[i*chw:(i+1)*chw]...), 1, 3, cfg.InputH, cfg.InputW)
		yi := m.ForwardInferInt8(xi)
		for r := 0; r < rows; r++ {
			for c := 0; c < classes; c++ {
				if got, want := batched.At(i*rows+r, c), yi.At(r, c); got != want {
					t.Fatalf("sample %d row %d class %d: batched %g != solo %g", i, r, c, got, want)
				}
			}
		}
	}
}
