package ufld

import (
	"runtime"
	"testing"

	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
)

// TestInferForwardAllocationFree pins the serving fast path's
// allocation contract: after one warmup call has grown every
// layer-owned scratch buffer (and, on the int8 rung, quantized the
// weights), repeated Infer-mode forwards of the same shape perform
// zero heap allocations. This is what lets a worker replica serve
// frames for hours without GC pressure; the contract is documented in
// internal/nn/README.md and enforced fleet-wide by `make alloc-gate`.
func TestInferForwardAllocationFree(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	m := MustNewModel(cfg, tensor.NewRNG(3))
	x := tensor.New(2, 3, cfg.InputH, cfg.InputW)
	tensor.NewRNG(4).FillNormal(x, 0, 1)

	m.ForwardInfer(x) // warmup: grow scratch outside the measurement
	if n := testing.AllocsPerRun(20, func() { m.ForwardInfer(x) }); n != 0 {
		t.Fatalf("ForwardInfer allocates %.1f objects per call at steady state, want 0", n)
	}
	m.ForwardInferInt8(x) // warmup: lazy weight quantization + int8 scratch
	if n := testing.AllocsPerRun(20, func() { m.ForwardInferInt8(x) }); n != 0 {
		t.Fatalf("ForwardInferInt8 allocates %.1f objects per call at steady state, want 0", n)
	}
}

// TestInferForwardAllocationFreeParallel is the same pin with the
// worker pool engaged. testing.AllocsPerRun forces GOMAXPROCS to 1 —
// which makes par.For strictly serial and would bypass every pooled
// dispatch path — so this variant measures Mallocs deltas directly at
// GOMAXPROCS 4. The budget is per-call fractional because background
// runtime activity can add stray allocations; steady state must still
// round to zero.
func TestInferForwardAllocationFreeParallel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	cfg := Tiny(resnet.R18, 2)
	m := MustNewModel(cfg, tensor.NewRNG(3))
	x := tensor.New(2, 3, cfg.InputH, cfg.InputW)
	tensor.NewRNG(4).FillNormal(x, 0, 1)

	measure := func(name string, f func()) {
		t.Helper()
		for i := 0; i < 5; i++ {
			f() // warmup: grow scratch, shards, pooled task blocks, workers
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		const runs = 50
		for i := 0; i < runs; i++ {
			f()
		}
		runtime.ReadMemStats(&after)
		if per := float64(after.Mallocs-before.Mallocs) / runs; per > 0.1 {
			t.Fatalf("%s allocates %.2f objects per call at GOMAXPROCS 4, want 0", name, per)
		}
	}
	measure("ForwardInfer", func() { m.ForwardInfer(x) })
	measure("ForwardInferInt8", func() { m.ForwardInferInt8(x) })
}
