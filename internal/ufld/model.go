package ufld

import (
	"fmt"
	"strings"

	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
)

// Model is the UFLD detector: ResNet backbone → 1×1 reduction conv →
// flatten → hidden FC → output FC producing one logit per
// (lane, row anchor, cell) triple.
type Model struct {
	// Cfg is the detector configuration.
	Cfg Config
	net *nn.Sequential

	backbone *resnet.ResNet
	neckConv *nn.Conv2D
	neckBN   *nn.BatchNorm2D
	fc1, fc2 *nn.Linear
	lastN    int

	// Cached reshape headers for the hot paths (see nn.View): the
	// logits-rows views returned by Infer/InferInt8 and Adapt forwards
	// (separate, because a serving replica alternates the two at
	// different batch sizes) and the gradient view consumed by
	// Backward.
	inferRows nn.View
	adaptRows nn.View
	gradView  nn.View
}

// NewModel builds a UFLD detector with weights drawn from rng.
func NewModel(cfg Config, rng *tensor.RNG) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	backbone := resnet.New(cfg.Backbone, rng)
	oh, ow := backbone.OutSpatial(cfg.InputH, cfg.InputW)
	neckConv := nn.NewConv2D("neck.conv", backbone.OutChannels(), cfg.NeckChannels,
		tensor.ConvGeom{KH: 1, KW: 1, SH: 1, SW: 1}, false, rng)
	neckBN := nn.NewBatchNorm2D("neck.bn", cfg.NeckChannels)
	flatDim := cfg.NeckChannels * oh * ow
	fc1 := nn.NewLinear("head.fc1", flatDim, cfg.HiddenDim, rng)
	fc2 := nn.NewLinear("head.fc2", cfg.HiddenDim, cfg.Groups()*cfg.Classes(), rng)
	net := nn.NewSequential("ufld",
		backbone,
		neckConv,
		neckBN,
		nn.NewReLU("neck.relu"),
		nn.NewFlatten("head.flatten"),
		fc1,
		nn.NewReLU("head.relu"),
		fc2,
	)
	return &Model{Cfg: cfg, net: net, backbone: backbone,
		neckConv: neckConv, neckBN: neckBN, fc1: fc1, fc2: fc2}, nil
}

// MustNewModel is NewModel that panics on configuration errors
// (convenient in examples and tests).
func MustNewModel(cfg Config, rng *tensor.RNG) *Model {
	m, err := NewModel(cfg, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// Forward runs the detector on a batch [n, 3, H, W] and returns the
// classification logits as rows: shape [n·Lanes·RowAnchors, Classes].
// Row (ni, lane, anchor) lives at index (ni·Lanes+lane)·RowAnchors+anchor.
func (m *Model) Forward(x *tensor.Tensor, mode nn.Mode) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(2) != m.Cfg.InputH || x.Dim(3) != m.Cfg.InputW {
		panic(fmt.Sprintf("ufld: input %v, want [n,3,%d,%d]", x.Shape(), m.Cfg.InputH, m.Cfg.InputW))
	}
	n := x.Dim(0)
	m.lastN = n
	out := m.net.Forward(x, mode) // [n, groups*classes]
	// Hot paths reuse a cached header; Train/Eval outputs stay freshly
	// allocated so callers may retain them across calls.
	if mode.IsInfer() {
		return m.inferRows.Of(out.Data, n*m.Cfg.Groups(), m.Cfg.Classes())
	}
	if mode == nn.Adapt {
		return m.adaptRows.Of(out.Data, n*m.Cfg.Groups(), m.Cfg.Classes())
	}
	return out.Reshape(n*m.Cfg.Groups(), m.Cfg.Classes())
}

// ForwardInfer is the serving fast path: numerically identical to
// Forward in Eval mode, but every layer skips its backward caches and
// reuses layer-owned scratch buffers, so a steady-state serving loop
// performs almost no per-call allocation. The returned logits alias
// layer scratch storage and are only valid until the model's next
// ForwardInfer call; Backward after ForwardInfer panics. Combined with
// nn.BatchNorm2D.SetSampleSources this is the batched multi-stream
// entry point used by internal/serve.
func (m *Model) ForwardInfer(x *tensor.Tensor) *tensor.Tensor {
	return m.Forward(x, nn.Infer)
}

// ForwardInferInt8 is ForwardInfer with the Conv2D/Linear products in
// symmetric int8 (per-output-channel weight scales, one dynamic scale
// per sample): the governed accuracy/latency rung. BatchNorm, ReLU and
// pooling stay in float32 and per-sample BN sources are honoured, so
// this path drops into the batched serving loop unchanged. The first
// call quantizes the (frozen) weights once; call InvalidateInt8 after
// mutating weights. Output differs from ForwardInfer only by the
// quantization error bound documented in internal/tensor/README.md;
// batched and sequential InferInt8 forwards remain bitwise identical.
func (m *Model) ForwardInferInt8(x *tensor.Tensor) *tensor.Tensor {
	return m.Forward(x, nn.InferInt8)
}

// InvalidateInt8 drops every cached int8 weight table so the next
// ForwardInferInt8 re-quantizes from the current weights.
func (m *Model) InvalidateInt8() { m.net.InvalidateInt8() }

// Backward propagates a gradient with the same row layout Forward
// returns, and returns the input gradient.
func (m *Model) Backward(gradRows *tensor.Tensor) *tensor.Tensor {
	g := m.gradView.Of(gradRows.Data, m.lastN, m.Cfg.Groups()*m.Cfg.Classes())
	return m.net.Backward(g)
}

// Params returns every trainable parameter.
func (m *Model) Params() []*nn.Param { return m.net.Params() }

// BatchNorms returns every BN layer (backbone + neck).
func (m *Model) BatchNorms() []*nn.BatchNorm2D { return m.net.BatchNorms() }

// BNParams returns only the γ/β parameters of every BatchNorm layer —
// the parameter set LD-BN-ADAPT updates.
func (m *Model) BNParams() []*nn.Param {
	var out []*nn.Param
	for _, bn := range m.BatchNorms() {
		out = append(out, bn.Params()...)
	}
	return out
}

// ConvParams returns the convolution weights (the ablation's
// "convolutional adaptation" parameter set).
func (m *Model) ConvParams() []*nn.Param {
	return nn.FilterParams(m.Params(), func(p *nn.Param) bool {
		return strings.Contains(p.Name, "conv") && strings.HasSuffix(p.Name, ".weight")
	})
}

// FCParams returns the fully-connected head parameters (the ablation's
// "fully-connected adaptation" set).
func (m *Model) FCParams() []*nn.Param {
	return append(append([]*nn.Param{}, m.fc1.Params()...), m.fc2.Params()...)
}

// Backbone exposes the ResNet feature extractor (used by the CARLANE
// SOTA baseline to compute embeddings and by the performance model).
func (m *Model) Backbone() *resnet.ResNet { return m.backbone }

// Embed runs the backbone and global-average-pools the feature map
// into one embedding vector per sample: [n, OutChannels]. The SOTA
// baseline clusters these embeddings to encode the semantic structure
// of the source and target domains.
func (m *Model) Embed(x *tensor.Tensor, mode nn.Mode) *tensor.Tensor {
	feats := m.backbone.Forward(x, mode)
	n, c, h, w := feats.Dim(0), feats.Dim(1), feats.Dim(2), feats.Dim(3)
	out := tensor.New(n, c)
	hw := h * w
	inv := 1.0 / float64(hw)
	for i := 0; i < n*c; i++ {
		s := 0.0
		for _, v := range feats.Data[i*hw : (i+1)*hw] {
			s += float64(v)
		}
		out.Data[i] = float32(s * inv)
	}
	return out
}

// RowIndex returns the logits-row index for (sample, lane, anchor).
func (m *Model) RowIndex(sample, lane, anchor int) int {
	return (sample*m.Cfg.Lanes+lane)*m.Cfg.RowAnchors + anchor
}

// Clone returns a deep copy of the model (weights, BN running stats).
// The clone shares no storage with the original, so adapting one does
// not disturb the other.
func (m *Model) Clone(rng *tensor.RNG) *Model {
	c := MustNewModel(m.Cfg, rng)
	src, dst := m.Params(), c.Params()
	for i := range src {
		dst[i].Value.CopyFrom(src[i].Value)
	}
	sb, db := m.BatchNorms(), c.BatchNorms()
	for i := range sb {
		db[i].SetRunningStats(sb[i].RunningMean, sb[i].RunningVar)
		db[i].Momentum = sb[i].Momentum
		db[i].AdaptMomentum = sb[i].AdaptMomentum
	}
	return c
}

// Replica returns a model that literally shares m's convolution and
// fully-connected weight tensors (read-only at serving time) while
// owning private BatchNorm parameters, running statistics, gradient
// accumulators and layer caches. The multi-stream serving engine gives
// each worker a replica: concurrent forward passes never race because
// all mutable per-pass state (caches, scratch, BN state) is
// per-replica, yet the heavy weights exist once in memory. Only the BN
// γ/β set may be updated on a replica (LD-BN-ADAPT's parameter set);
// mutating shared conv/FC weights would corrupt every replica.
func (m *Model) Replica(rng *tensor.RNG) *Model {
	c := MustNewModel(m.Cfg, rng)
	src, dst := m.Params(), c.Params()
	for i := range src {
		if strings.HasSuffix(src[i].Name, ".gamma") || strings.HasSuffix(src[i].Name, ".beta") {
			dst[i].Value.CopyFrom(src[i].Value)
		} else {
			dst[i].Value = src[i].Value // alias the shared weights
		}
	}
	sb, db := m.BatchNorms(), c.BatchNorms()
	for i := range sb {
		db[i].SetRunningStats(sb[i].RunningMean, sb[i].RunningVar)
		db[i].Momentum = sb[i].Momentum
		db[i].AdaptMomentum = sb[i].AdaptMomentum
	}
	return c
}

// BNStateExtras bundles the BN running statistics under stable names
// for serialization alongside SaveParams.
func (m *Model) BNStateExtras() map[string]*tensor.Tensor {
	extras := make(map[string]*tensor.Tensor)
	for _, bn := range m.BatchNorms() {
		extras[bn.Name()+".running_mean"] = bn.RunningMean
		extras[bn.Name()+".running_var"] = bn.RunningVar
	}
	return extras
}

// ApplyBNStateExtras restores running statistics saved with
// BNStateExtras. Unknown entries are ignored; missing entries are an
// error.
func (m *Model) ApplyBNStateExtras(extras map[string]*tensor.Tensor) error {
	for _, bn := range m.BatchNorms() {
		mean, ok1 := extras[bn.Name()+".running_mean"]
		varc, ok2 := extras[bn.Name()+".running_var"]
		if !ok1 || !ok2 {
			return fmt.Errorf("ufld: missing running stats for %s", bn.Name())
		}
		bn.SetRunningStats(mean, varc)
	}
	return nil
}
