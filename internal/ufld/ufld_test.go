package ufld

import (
	"math"
	"testing"

	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	good := Tiny(resnet.R18, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.GridCells = 1
	if bad.Validate() == nil {
		t.Fatal("GridCells=1 accepted")
	}
	bad = good
	bad.Lanes = 0
	if bad.Validate() == nil {
		t.Fatal("Lanes=0 accepted")
	}
	bad = good
	bad.InputH = 2
	if bad.Validate() == nil {
		t.Fatal("tiny input accepted")
	}
	bad = good
	bad.HiddenDim = 0
	if bad.Validate() == nil {
		t.Fatal("HiddenDim=0 accepted")
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := Config{GridCells: 100, RowAnchors: 56, Lanes: 4}
	if cfg.Classes() != 101 {
		t.Fatalf("Classes = %d", cfg.Classes())
	}
	if cfg.Groups() != 224 {
		t.Fatalf("Groups = %d", cfg.Groups())
	}
}

func TestFullScaleMatchesPaperDims(t *testing.T) {
	cfg := FullScale(resnet.R18, 4)
	if cfg.GridCells != 100 || cfg.RowAnchors != 56 {
		t.Fatal("full-scale grid must be 100×56 per the paper")
	}
	if cfg.InputH != 288 || cfg.InputW != 800 {
		t.Fatal("full-scale input must be 288×800")
	}
}

func TestModelForwardShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	cfg := Tiny(resnet.R18, 2)
	m := MustNewModel(cfg, rng)
	x := tensor.New(3, 3, cfg.InputH, cfg.InputW)
	rng.FillNormal(x, 0, 1)
	logits := m.Forward(x, nn.Eval)
	if logits.Dim(0) != 3*cfg.Groups() || logits.Dim(1) != cfg.Classes() {
		t.Fatalf("logits %v, want [%d,%d]", logits.Shape(), 3*cfg.Groups(), cfg.Classes())
	}
}

func TestRowIndexLayout(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	m := MustNewModel(cfg, tensor.NewRNG(2))
	if m.RowIndex(0, 0, 0) != 0 {
		t.Fatal("first row index wrong")
	}
	if m.RowIndex(1, 0, 0) != cfg.Groups() {
		t.Fatal("sample stride wrong")
	}
	if m.RowIndex(0, 1, 2) != cfg.RowAnchors+2 {
		t.Fatal("lane/anchor layout wrong")
	}
}

func TestParamSubsets(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := MustNewModel(Tiny(resnet.R18, 2), rng)
	all := nn.ParamCount(m.Params())
	bn := nn.ParamCount(m.BNParams())
	conv := nn.ParamCount(m.ConvParams())
	fc := nn.ParamCount(m.FCParams())
	if bn == 0 || conv == 0 || fc == 0 {
		t.Fatal("parameter subsets must be non-empty")
	}
	if bn >= all || conv >= all || fc >= all {
		t.Fatal("subsets must be proper")
	}
	// BN is by far the smallest set — the paper's efficiency argument.
	if !(bn < conv && bn < fc) {
		t.Fatalf("BN params (%d) must be the smallest subset (conv %d, fc %d)", bn, conv, fc)
	}
	// 21 BN layers in the R18 repro backbone+neck.
	if got := len(m.BatchNorms()); got != 21 {
		t.Fatalf("BatchNorms = %d, want 21", got)
	}
}

func TestDecodePerfectLogits(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	rows := cfg.Groups()
	logits := tensor.New(rows, cfg.Classes())
	want := make([]int, rows)
	rng := tensor.NewRNG(4)
	for r := 0; r < rows; r++ {
		cell := rng.Intn(cfg.GridCells)
		if r%5 == 4 { // every 5th anchor has no lane
			cell = Absent
		}
		want[r] = cell
		cls := cell
		if cell == Absent {
			cls = cfg.GridCells
		}
		logits.Set(20, r, cls) // confident spike
	}
	preds := Decode(cfg, logits, 1)
	for lane := 0; lane < cfg.Lanes; lane++ {
		for a := 0; a < cfg.RowAnchors; a++ {
			r := lane*cfg.RowAnchors + a
			p := preds[0].Points[lane][a]
			if want[r] == Absent {
				if p.Present {
					t.Fatalf("row %d: predicted lane where none labeled", r)
				}
				continue
			}
			if !p.Present {
				t.Fatalf("row %d: missing prediction", r)
			}
			if math.Abs(p.Cell-float64(want[r])) > 0.5 {
				t.Fatalf("row %d: decoded %.2f, want %d", r, p.Cell, want[r])
			}
		}
	}
}

func TestDecodeExpectationIsBetweenCells(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	logits := tensor.New(cfg.Groups(), cfg.Classes())
	// Equal mass on cells 2 and 3 → expectation 2.5.
	logits.Set(10, 0, 2)
	logits.Set(10, 0, 3)
	p := Decode(cfg, logits, 1)[0].Points[0][0]
	if !p.Present || math.Abs(p.Cell-2.5) > 1e-3 {
		t.Fatalf("expectation decode = %+v, want 2.5", p)
	}
}

func TestAccuracyPerfectAndBounds(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	s := Sample{Image: tensor.New(3, cfg.InputH, cfg.InputW), Cells: make([]int, cfg.Groups())}
	pred := Prediction{Points: make([][]LanePoint, cfg.Lanes)}
	for lane := 0; lane < cfg.Lanes; lane++ {
		pred.Points[lane] = make([]LanePoint, cfg.RowAnchors)
		for a := 0; a < cfg.RowAnchors; a++ {
			s.Cells[lane*cfg.RowAnchors+a] = 3
			pred.Points[lane][a] = LanePoint{Present: true, Cell: 3}
		}
	}
	acc := Accuracy(cfg, []Prediction{pred}, []Sample{s}, []int{0})
	if acc != 1 {
		t.Fatalf("perfect prediction accuracy = %v", acc)
	}
	// Shift all predictions far away → 0.
	for lane := range pred.Points {
		for a := range pred.Points[lane] {
			pred.Points[lane][a].Cell = 9
		}
	}
	if acc := Accuracy(cfg, []Prediction{pred}, []Sample{s}, []int{0}); acc != 0 {
		t.Fatalf("bad prediction accuracy = %v", acc)
	}
}

func TestAccuracyIgnoresAbsentGroundTruth(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	s := Sample{Image: tensor.New(3, cfg.InputH, cfg.InputW), Cells: make([]int, cfg.Groups())}
	for i := range s.Cells {
		s.Cells[i] = Absent
	}
	s.Cells[0] = 5
	pred := Prediction{Points: make([][]LanePoint, cfg.Lanes)}
	for lane := 0; lane < cfg.Lanes; lane++ {
		pred.Points[lane] = make([]LanePoint, cfg.RowAnchors)
	}
	pred.Points[0][0] = LanePoint{Present: true, Cell: 5.4}
	if acc := Accuracy(cfg, []Prediction{pred}, []Sample{s}, []int{0}); acc != 1 {
		t.Fatalf("accuracy = %v, want 1 (only labeled point matched)", acc)
	}
}

func TestAccuracyToleranceScales(t *testing.T) {
	small := Config{GridCells: 25}
	big := Config{GridCells: 100}
	if AccuracyTolCells(small) != 1.0 {
		t.Fatalf("25-cell tol = %v, want floor 1.0", AccuracyTolCells(small))
	}
	if math.Abs(AccuracyTolCells(big)-1.56) > 1e-9 {
		t.Fatalf("100-cell tol = %v, want 1.56", AccuracyTolCells(big))
	}
}

func TestBatchAssembly(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	rng := tensor.NewRNG(5)
	samples := make([]Sample, 3)
	for i := range samples {
		img := tensor.New(3, cfg.InputH, cfg.InputW)
		rng.FillUniform(img, 0, 1)
		cells := make([]int, cfg.Groups())
		for j := range cells {
			cells[j] = (i + j) % cfg.GridCells
		}
		cells[0] = Absent
		samples[i] = Sample{Image: img, Cells: cells}
	}
	x, targets := Batch(cfg, samples, []int{2, 0})
	if x.Dim(0) != 2 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if len(targets) != 2*cfg.Groups() {
		t.Fatalf("targets %d", len(targets))
	}
	// Absent maps to the "no lane" class index.
	if targets[0] != cfg.GridCells {
		t.Fatalf("absent target = %d, want %d", targets[0], cfg.GridCells)
	}
	// Image payload is copied in order.
	if x.At(0, 0, 0, 0) != samples[2].Image.At(0, 0, 0) {
		t.Fatal("batch order wrong")
	}
}

func TestSimilarityLossZeroForIdenticalAnchors(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	logits := tensor.New(cfg.Groups(), cfg.Classes())
	rng := tensor.NewRNG(6)
	// Same logits on every anchor of each lane.
	for lane := 0; lane < cfg.Lanes; lane++ {
		row := make([]float32, cfg.Classes())
		for k := range row {
			row[k] = float32(rng.Normal(0, 1))
		}
		for a := 0; a < cfg.RowAnchors; a++ {
			copy(logits.Data[(lane*cfg.RowAnchors+a)*cfg.Classes():(lane*cfg.RowAnchors+a+1)*cfg.Classes()], row)
		}
	}
	loss, grad := SimilarityLoss(cfg, logits, 1)
	if loss != 0 || grad.Norm2() != 0 {
		t.Fatalf("identical anchors: loss %v grad %v", loss, grad.Norm2())
	}
}

func TestSimilarityLossGradientNumeric(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	rng := tensor.NewRNG(7)
	logits := tensor.New(cfg.Groups(), cfg.Classes())
	rng.FillNormal(logits, 0, 1)
	_, grad := SimilarityLoss(cfg, logits, 1)
	eps := float32(1e-3)
	for _, i := range []int{0, 13, 40, logits.Size() - 1} {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SimilarityLoss(cfg, logits, 1)
		logits.Data[i] = orig - eps
		lm, _ := SimilarityLoss(cfg, logits, 1)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * float64(eps))
		if math.Abs(num-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("sim grad mismatch at %d: %v vs %v", i, grad.Data[i], num)
		}
	}
}

func TestShapeLossZeroForStraightLane(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	logits := tensor.New(cfg.Groups(), cfg.Classes())
	// Constant location per lane → zero second difference.
	for lane := 0; lane < cfg.Lanes; lane++ {
		for a := 0; a < cfg.RowAnchors; a++ {
			logits.Set(15, lane*cfg.RowAnchors+a, 4)
		}
	}
	loss, _ := ShapeLoss(cfg, logits, 1)
	if loss > 1e-9 {
		t.Fatalf("straight lane shape loss = %v", loss)
	}
}

func TestShapeLossGradientNumeric(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	rng := tensor.NewRNG(8)
	logits := tensor.New(cfg.Groups(), cfg.Classes())
	rng.FillNormal(logits, 0, 0.5)
	_, grad := ShapeLoss(cfg, logits, 1)
	eps := float32(1e-2)
	for _, i := range []int{1, 25, 77} {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := ShapeLoss(cfg, logits, 1)
		logits.Data[i] = orig - eps
		lm, _ := ShapeLoss(cfg, logits, 1)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * float64(eps))
		if math.Abs(num-float64(grad.Data[i])) > 5e-3*math.Max(1, math.Abs(num)) {
			t.Fatalf("shape grad mismatch at %d: %v vs %v", i, grad.Data[i], num)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := tensor.NewRNG(9)
	m := MustNewModel(Tiny(resnet.R18, 2), rng)
	c := m.Clone(rng.Split())
	x := tensor.New(1, 3, m.Cfg.InputH, m.Cfg.InputW)
	rng.FillNormal(x, 0, 1)
	if !m.Forward(x, nn.Eval).AllClose(c.Forward(x, nn.Eval), 1e-6) {
		t.Fatal("clone output differs")
	}
	// Mutating the clone must not affect the original.
	c.Params()[0].Value.Fill(0)
	if m.Params()[0].Value.Norm2() == 0 {
		t.Fatal("clone shares storage with original")
	}
}

func TestBNStateExtrasRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(10)
	m := MustNewModel(Tiny(resnet.R18, 2), rng)
	for _, bn := range m.BatchNorms() {
		rng.FillUniform(bn.RunningMean, -1, 1)
		rng.FillUniform(bn.RunningVar, 0.5, 2)
	}
	extras := m.BNStateExtras()
	m2 := MustNewModel(m.Cfg, tensor.NewRNG(11))
	if err := m2.ApplyBNStateExtras(extras); err != nil {
		t.Fatalf("ApplyBNStateExtras: %v", err)
	}
	for i, bn := range m.BatchNorms() {
		if !bn.RunningMean.AllClose(m2.BatchNorms()[i].RunningMean, 0) {
			t.Fatal("running mean not restored")
		}
	}
	if err := m2.ApplyBNStateExtras(map[string]*tensor.Tensor{}); err == nil {
		t.Fatal("missing extras accepted")
	}
}

func TestDescribeModelAddsHead(t *testing.T) {
	cfg := FullScale(resnet.R18, 4)
	full := DescribeModel(cfg)
	backboneOnly := resnet.Describe(cfg.Backbone, cfg.InputH, cfg.InputW)
	if full.TotalFLOPs() <= backboneOnly.TotalFLOPs() {
		t.Fatal("head must add FLOPs")
	}
	if full.TotalParams() <= backboneOnly.TotalParams() {
		t.Fatal("head must add params")
	}
	// Output dimension is groups × classes.
	if full.OutC != cfg.Groups()*cfg.Classes() {
		t.Fatalf("head out %d, want %d", full.OutC, cfg.Groups()*cfg.Classes())
	}
	// BN params stay ≈1% of the model even with the FC head.
	frac := float64(full.TotalBNParams()) / float64(full.TotalParams())
	if frac > 0.02 {
		t.Fatalf("BN fraction %.4f too large", frac)
	}
}

func TestEvaluateOnUntrainedModelIsFinite(t *testing.T) {
	rng := tensor.NewRNG(12)
	cfg := Tiny(resnet.R18, 2)
	m := MustNewModel(cfg, rng)
	ds := &Dataset{Name: "t", Samples: make([]Sample, 3)}
	for i := range ds.Samples {
		img := tensor.New(3, cfg.InputH, cfg.InputW)
		rng.FillUniform(img, 0, 1)
		cells := make([]int, cfg.Groups())
		for j := range cells {
			cells[j] = j % cfg.GridCells
		}
		ds.Samples[i] = Sample{Image: img, Cells: cells}
	}
	res := Evaluate(m, ds, 2)
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Fatalf("accuracy %v out of range", res.Accuracy)
	}
	if res.MeanEntropy <= 0 || math.IsNaN(res.MeanEntropy) {
		t.Fatalf("entropy %v", res.MeanEntropy)
	}
	if res.Samples != 3 {
		t.Fatalf("samples %d", res.Samples)
	}
}
