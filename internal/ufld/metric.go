package ufld

import (
	"math"

	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/tensor"
)

// AccuracyTolCells returns the matching tolerance in cell units.
// TuSimple counts a point correct within 20 px of 1280 (≈1.56 % of the
// image width); we keep the same fraction of the grid, with a floor of
// one cell so coarse grids are not impossibly strict.
func AccuracyTolCells(cfg Config) float64 {
	return math.Max(1.0, 0.0156*float64(cfg.GridCells))
}

// Accuracy computes the TuSimple-style lane accuracy of predictions
// against labels: the fraction of ground-truth lane points whose
// predicted location is present and within tolerance.
func Accuracy(cfg Config, preds []Prediction, samples []Sample, idx []int) float64 {
	tol := AccuracyTolCells(cfg)
	correct, total := 0, 0
	for bi, si := range idx {
		s := samples[si]
		for lane := 0; lane < cfg.Lanes; lane++ {
			for a := 0; a < cfg.RowAnchors; a++ {
				gt := s.Cells[lane*cfg.RowAnchors+a]
				if gt == Absent {
					continue
				}
				total++
				p := preds[bi].Points[lane][a]
				if p.Present && math.Abs(p.Cell-float64(gt)) <= tol {
					correct++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// EvalResult summarizes an evaluation pass.
type EvalResult struct {
	// Accuracy is the TuSimple-style point accuracy in [0, 1].
	Accuracy float64
	// MeanEntropy is the mean prediction entropy (nats per group) —
	// the quantity LD-BN-ADAPT minimizes; useful for diagnostics.
	MeanEntropy float64
	// Samples is the number of images evaluated.
	Samples int
}

// Evaluate runs the model in Eval mode over the whole dataset in
// batches and returns accuracy plus mean prediction entropy.
func Evaluate(m *Model, ds *Dataset, batchSize int) EvalResult {
	if batchSize < 1 {
		batchSize = 1
	}
	totalAccW, totalEnt := 0.0, 0.0
	points := 0
	n := ds.Len()
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, _ := Batch(m.Cfg, ds.Samples, idx)
		logits := m.Forward(x, nn.Eval)
		preds := Decode(m.Cfg, logits, len(idx))
		// Accumulate weighted by ground-truth point count so batches
		// combine exactly.
		cnt := 0
		for _, si := range idx {
			for _, c := range ds.Samples[si].Cells {
				if c != Absent {
					cnt++
				}
			}
		}
		totalAccW += Accuracy(m.Cfg, preds, ds.Samples, idx) * float64(cnt)
		points += cnt
		for _, h := range tensor.RowEntropy(tensor.SoftmaxRows(logits)) {
			totalEnt += h
		}
	}
	res := EvalResult{Samples: n}
	if points > 0 {
		res.Accuracy = totalAccW / float64(points)
	}
	res.MeanEntropy = totalEnt / float64(n*m.Cfg.Groups())
	return res
}
