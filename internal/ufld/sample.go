package ufld

import (
	"fmt"

	"ldbnadapt/internal/tensor"
)

// Absent marks a row anchor with no lane in a label vector.
const Absent = -1

// Sample is one labeled image: the input tensor and, for every
// (lane, anchor) pair, the ground-truth cell index (or Absent).
// Unsupervised consumers simply ignore Cells.
type Sample struct {
	// Image has shape [3, H, W] with values in [0, 1].
	Image *tensor.Tensor
	// Cells is indexed lane·RowAnchors+anchor; values in
	// [0, GridCells) or Absent.
	Cells []int
}

// Dataset is an ordered collection of samples from one domain.
type Dataset struct {
	// Name identifies the split (e.g. "molane/target-val").
	Name string
	// Domain is "sim", "molane-real" or "tulane-real".
	Domain string
	// Samples holds the data.
	Samples []Sample
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Batch assembles samples[idx] into an input tensor [len(idx),3,H,W]
// and the concatenated target cells (one entry per logits row).
func Batch(cfg Config, samples []Sample, idx []int) (*tensor.Tensor, []int) {
	if len(idx) == 0 {
		panic("ufld: empty batch")
	}
	chw := 3 * cfg.InputH * cfg.InputW
	x := tensor.New(len(idx), 3, cfg.InputH, cfg.InputW)
	targets := make([]int, 0, len(idx)*cfg.Groups())
	for bi, si := range idx {
		s := samples[si]
		if s.Image.Size() != chw {
			panic(fmt.Sprintf("ufld: sample %d image %v, want [3,%d,%d]", si, s.Image.Shape(), cfg.InputH, cfg.InputW))
		}
		copy(x.Data[bi*chw:(bi+1)*chw], s.Image.Data)
		if len(s.Cells) != cfg.Groups() {
			panic(fmt.Sprintf("ufld: sample %d has %d cells, want %d", si, len(s.Cells), cfg.Groups()))
		}
		for _, c := range s.Cells {
			if c == Absent {
				targets = append(targets, cfg.GridCells) // "no lane" class
			} else {
				targets = append(targets, c)
			}
		}
	}
	return x, targets
}

// Images assembles an unlabeled input batch (targets discarded).
func Images(cfg Config, samples []Sample, idx []int) *tensor.Tensor {
	x, _ := Batch(cfg, samples, idx)
	return x
}
