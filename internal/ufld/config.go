// Package ufld implements the Ultra-Fast Lane Detection (UFLD)
// formulation used by the paper: lanes are detected as a per-row-anchor
// classification over horizontal grid cells (Qin et al., ECCV 2020).
// For each of Lanes lanes and each of RowAnchors image rows, the model
// selects one of GridCells cells — or an extra "no lane" class. The
// package provides the model (ResNet backbone + group-classification
// head), lane decoding, the TuSimple-style accuracy metric, the
// structural losses and supervised source-domain training.
package ufld

import (
	"fmt"

	"ldbnadapt/internal/resnet"
)

// Config describes a UFLD detector.
type Config struct {
	// GridCells is the number of horizontal location cells per row
	// anchor (the paper uses 100).
	GridCells int
	// RowAnchors is the number of predefined rows (the paper uses 56).
	RowAnchors int
	// Lanes is the number of lanes (2 for MoLane, 4 for TuLane/MuLane).
	Lanes int
	// InputH, InputW are the model input dimensions.
	InputH, InputW int
	// Backbone configures the ResNet feature extractor.
	Backbone resnet.Config
	// NeckChannels is the channel count after the 1×1 reduction conv.
	NeckChannels int
	// HiddenDim is the width of the head's hidden FC layer.
	HiddenDim int
}

// Classes returns GridCells+1 (the extra class is "no lane on this
// row anchor").
func (c Config) Classes() int { return c.GridCells + 1 }

// Groups returns the number of classification groups (= output rows
// per sample): Lanes × RowAnchors.
func (c Config) Groups() int { return c.Lanes * c.RowAnchors }

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.GridCells < 2:
		return fmt.Errorf("ufld: GridCells = %d, want ≥ 2", c.GridCells)
	case c.RowAnchors < 2:
		return fmt.Errorf("ufld: RowAnchors = %d, want ≥ 2", c.RowAnchors)
	case c.Lanes < 1:
		return fmt.Errorf("ufld: Lanes = %d, want ≥ 1", c.Lanes)
	case c.InputH < 8 || c.InputW < 8:
		return fmt.Errorf("ufld: input %dx%d too small", c.InputH, c.InputW)
	case c.NeckChannels < 1:
		return fmt.Errorf("ufld: NeckChannels = %d, want ≥ 1", c.NeckChannels)
	case c.HiddenDim < 1:
		return fmt.Errorf("ufld: HiddenDim = %d, want ≥ 1", c.HiddenDim)
	}
	return nil
}

// FullScale returns the published UFLD configuration: 288×800 input
// (resized from the 1280×720 camera), 100 grid cells, 56 row anchors.
func FullScale(v resnet.Variant, lanes int) Config {
	return Config{
		GridCells:    100,
		RowAnchors:   56,
		Lanes:        lanes,
		InputH:       288,
		InputW:       800,
		Backbone:     resnet.FullScale(v),
		NeckChannels: 8,
		HiddenDim:    2048,
	}
}

// Repro returns the reduced configuration used for CPU training: the
// same formulation at 64×160 input, 25 cells × 14 anchors, width-8
// backbone.
func Repro(v resnet.Variant, lanes int) Config {
	return Config{
		GridCells:    25,
		RowAnchors:   14,
		Lanes:        lanes,
		InputH:       64,
		InputW:       160,
		Backbone:     resnet.Repro(v),
		NeckChannels: 4,
		HiddenDim:    64,
	}
}

// Tiny returns a minimal configuration for fast unit tests.
func Tiny(v resnet.Variant, lanes int) Config {
	cfg := Config{
		GridCells:    10,
		RowAnchors:   6,
		Lanes:        lanes,
		InputH:       32,
		InputW:       80,
		Backbone:     resnet.Repro(v),
		NeckChannels: 2,
		HiddenDim:    32,
	}
	cfg.Backbone.BaseWidth = 4
	return cfg
}

// Small returns the experiment profile used by the figure-regeneration
// harness: large enough that domain shift and adaptation behave like
// the full-scale system, small enough that a single-core CPU trains it
// in about a minute.
func Small(v resnet.Variant, lanes int) Config {
	cfg := Config{
		GridCells:    20,
		RowAnchors:   10,
		Lanes:        lanes,
		InputH:       48,
		InputW:       120,
		Backbone:     resnet.Repro(v),
		NeckChannels: 4,
		HiddenDim:    48,
	}
	cfg.Backbone.BaseWidth = 6
	return cfg
}
