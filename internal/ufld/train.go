package ufld

import (
	"fmt"
	"io"

	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/tensor"
)

// TrainConfig controls supervised source-domain training.
type TrainConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the mini-batch size.
	BatchSize int
	// LR is the learning rate (Adam).
	LR float64
	// SimWeight weights the UFLD similarity structural loss.
	SimWeight float64
	// ShapeWeight weights the UFLD shape structural loss.
	ShapeWeight float64
	// ClipNorm bounds the global gradient norm (0 disables).
	ClipNorm float64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// DefaultTrainConfig returns the settings used by the repro profile.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:      6,
		BatchSize:   8,
		LR:          2e-3,
		SimWeight:   0.1,
		ShapeWeight: 0.01,
		ClipNorm:    10,
	}
}

// TrainSource trains the model on labeled source-domain data with the
// UFLD objective (group cross-entropy + structural losses), exactly as
// the paper's models are pre-trained on CARLA simulation data before
// deployment. Returns the final epoch's mean training loss.
func TrainSource(m *Model, train *Dataset, tc TrainConfig, rng *tensor.RNG) (float64, error) {
	if train.Len() == 0 {
		return 0, fmt.Errorf("ufld: empty training set")
	}
	if tc.BatchSize < 1 {
		return 0, fmt.Errorf("ufld: batch size %d", tc.BatchSize)
	}
	opt := nn.NewAdam(tc.LR)
	params := m.Params()
	var epochLoss float64
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		perm := rng.Perm(train.Len())
		epochLoss = 0
		batches := 0
		for lo := 0; lo < len(perm); lo += tc.BatchSize {
			hi := lo + tc.BatchSize
			if hi > len(perm) {
				hi = len(perm)
			}
			idx := perm[lo:hi]
			x, targets := Batch(m.Cfg, train.Samples, idx)
			nn.ZeroGrads(params)
			logits := m.Forward(x, nn.Train)
			loss, grad := nn.CrossEntropyRows(logits, targets)
			if tc.SimWeight > 0 {
				sl, sg := SimilarityLoss(m.Cfg, logits, len(idx))
				loss += tc.SimWeight * sl
				tensor.AxpyInPlace(grad, float32(tc.SimWeight), sg)
			}
			if tc.ShapeWeight > 0 {
				pl, pg := ShapeLoss(m.Cfg, logits, len(idx))
				loss += tc.ShapeWeight * pl
				tensor.AxpyInPlace(grad, float32(tc.ShapeWeight), pg)
			}
			m.Backward(grad)
			if tc.ClipNorm > 0 {
				nn.ClipGradNorm(params, tc.ClipNorm)
			}
			opt.Step(params)
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		if tc.Log != nil {
			fmt.Fprintf(tc.Log, "epoch %d/%d: loss %.4f\n", epoch+1, tc.Epochs, epochLoss)
		}
	}
	return epochLoss, nil
}
