package ufld

import (
	"ldbnadapt/internal/tensor"
)

// LanePoint is one decoded lane location on a row anchor.
type LanePoint struct {
	// Present reports whether the model predicts a lane on this anchor.
	Present bool
	// Cell is the continuous horizontal location in cell units
	// (expectation decode per the UFLD paper), valid when Present.
	Cell float64
}

// Prediction holds the decoded lanes of one image:
// Points[lane][anchor].
type Prediction struct {
	// Points is indexed [lane][anchor].
	Points [][]LanePoint
}

// Decode converts logits rows (as returned by Model.Forward) into
// per-sample predictions. Following UFLD: the "no lane" decision uses
// the argmax over all Classes; the location uses the expectation of
// the cell index under the softmax restricted to the location cells.
func Decode(cfg Config, logitsRows *tensor.Tensor, n int) []Prediction {
	classes := cfg.Classes()
	probs := tensor.SoftmaxRows(logitsRows)
	preds := make([]Prediction, n)
	for ni := 0; ni < n; ni++ {
		pts := make([][]LanePoint, cfg.Lanes)
		for lane := 0; lane < cfg.Lanes; lane++ {
			pts[lane] = make([]LanePoint, cfg.RowAnchors)
			for a := 0; a < cfg.RowAnchors; a++ {
				row := (ni*cfg.Lanes+lane)*cfg.RowAnchors + a
				p := probs.Data[row*classes : (row+1)*classes]
				best := 0
				for j, v := range p {
					if v > p[best] {
						best = j
					}
				}
				if best == cfg.GridCells { // "no lane" class wins
					continue
				}
				// Expectation over location cells only.
				sum, loc := 0.0, 0.0
				for k := 0; k < cfg.GridCells; k++ {
					sum += float64(p[k])
					loc += float64(k) * float64(p[k])
				}
				if sum <= 0 {
					continue
				}
				pts[lane][a] = LanePoint{Present: true, Cell: loc / sum}
			}
		}
		preds[ni] = Prediction{Points: pts}
	}
	return preds
}

// CellToPixel converts a cell coordinate to an image-x pixel for the
// given configuration (cell centres are evenly spaced across the
// width).
func CellToPixel(cfg Config, cell float64) float64 {
	return (cell + 0.5) * float64(cfg.InputW) / float64(cfg.GridCells)
}
