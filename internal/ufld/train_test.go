package ufld

import (
	"strings"
	"testing"

	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
)

// tinyDataset builds n trivially-learnable samples (same scene).
func tinyDataset(cfg Config, n int, rng *tensor.RNG) *Dataset {
	ds := &Dataset{Name: "toy", Domain: "sim"}
	for i := 0; i < n; i++ {
		img := tensor.New(3, cfg.InputH, cfg.InputW)
		rng.FillUniform(img, 0, 0.1)
		cells := make([]int, cfg.Groups())
		for lane := 0; lane < cfg.Lanes; lane++ {
			cell := (lane*cfg.GridCells/cfg.Lanes + cfg.GridCells/4) % cfg.GridCells
			x := (cell * cfg.InputW) / cfg.GridCells
			for a := 0; a < cfg.RowAnchors; a++ {
				cells[lane*cfg.RowAnchors+a] = cell
			}
			// Draw a bright vertical stripe at the labeled cell.
			for y := cfg.InputH / 3; y < cfg.InputH; y++ {
				for dx := 0; dx < 2 && x+dx < cfg.InputW; dx++ {
					img.Set(0.95, 0, y, x+dx)
					img.Set(0.95, 1, y, x+dx)
					img.Set(0.95, 2, y, x+dx)
				}
			}
		}
		ds.Samples = append(ds.Samples, Sample{Image: img, Cells: cells})
	}
	return ds
}

func TestTrainSourceRejectsBadInput(t *testing.T) {
	rng := tensor.NewRNG(1)
	cfg := Tiny(resnet.R18, 2)
	m := MustNewModel(cfg, rng)
	if _, err := TrainSource(m, &Dataset{}, DefaultTrainConfig(), rng); err == nil {
		t.Fatal("empty dataset accepted")
	}
	bad := DefaultTrainConfig()
	bad.BatchSize = 0
	ds := tinyDataset(cfg, 4, rng)
	if _, err := TrainSource(m, ds, bad, rng); err == nil {
		t.Fatal("batch size 0 accepted")
	}
}

func TestTrainSourceLearnsToyTask(t *testing.T) {
	rng := tensor.NewRNG(2)
	cfg := Tiny(resnet.R18, 2)
	m := MustNewModel(cfg, rng)
	ds := tinyDataset(cfg, 12, rng)
	tc := DefaultTrainConfig()
	tc.Epochs = 20
	tc.BatchSize = 4
	tc.LR = 4e-3
	var log strings.Builder
	tc.Log = &log
	last, err := TrainSource(m, ds, tc, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if last > 1.0 {
		t.Fatalf("final loss %.3f did not converge on a trivial task", last)
	}
	if !strings.Contains(log.String(), "epoch 1/20") {
		t.Fatal("training log missing")
	}
	acc := Evaluate(m, ds, 4).Accuracy
	if acc < 0.85 {
		t.Fatalf("toy-task accuracy %.3f, want ≥ 0.85", acc)
	}
}

func TestNewModelRejectsInvalidConfig(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	cfg.GridCells = 0
	if _, err := NewModel(cfg, tensor.NewRNG(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewModel did not panic")
		}
	}()
	MustNewModel(cfg, tensor.NewRNG(1))
}

func TestForwardRejectsWrongGeometry(t *testing.T) {
	cfg := Tiny(resnet.R18, 2)
	m := MustNewModel(cfg, tensor.NewRNG(3))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input size accepted")
		}
	}()
	m.Forward(tensor.New(1, 3, cfg.InputH+2, cfg.InputW), 0)
}
