package ufld

import (
	"math"

	"ldbnadapt/internal/tensor"
)

// SimilarityLoss is the UFLD structural loss L_sim: adjacent row
// anchors of the same lane should produce similar classification
// distributions. It is the mean L1 distance between the logits of
// neighbouring anchors; the returned gradient has the layout of the
// logits rows.
func SimilarityLoss(cfg Config, logitsRows *tensor.Tensor, n int) (float64, *tensor.Tensor) {
	classes := cfg.Classes()
	grad := tensor.New(logitsRows.Dim(0), classes)
	pairs := n * cfg.Lanes * (cfg.RowAnchors - 1)
	if pairs == 0 {
		return 0, grad
	}
	inv := 1.0 / float64(pairs*classes)
	total := 0.0
	for ni := 0; ni < n; ni++ {
		for lane := 0; lane < cfg.Lanes; lane++ {
			base := (ni*cfg.Lanes + lane) * cfg.RowAnchors
			for a := 0; a+1 < cfg.RowAnchors; a++ {
				r0 := (base + a) * classes
				r1 := (base + a + 1) * classes
				for k := 0; k < classes; k++ {
					d := float64(logitsRows.Data[r0+k] - logitsRows.Data[r1+k])
					if d == 0 {
						continue // L1 subgradient at zero
					}
					total += math.Abs(d)
					s := float32(inv)
					if d < 0 {
						s = -s
					}
					grad.Data[r0+k] += s
					grad.Data[r1+k] -= s
				}
			}
		}
	}
	return total * inv, grad
}

// ShapeLoss is the UFLD second-order structural loss L_shp: the
// expected lane location should vary smoothly (small second
// difference) down consecutive row anchors. Returns the loss and its
// gradient w.r.t. the logits rows.
func ShapeLoss(cfg Config, logitsRows *tensor.Tensor, n int) (float64, *tensor.Tensor) {
	classes := cfg.Classes()
	cells := cfg.GridCells
	rows := logitsRows.Dim(0)
	grad := tensor.New(rows, classes)
	if cfg.RowAnchors < 3 {
		return 0, grad
	}
	// Expectation location per row over the location cells only, via a
	// softmax restricted to cells [0, GridCells).
	probs := make([][]float64, rows)
	locs := make([]float64, rows)
	for r := 0; r < rows; r++ {
		src := logitsRows.Data[r*classes : r*classes+cells]
		mx := src[0]
		for _, v := range src[1:] {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		p := make([]float64, cells)
		for k, v := range src {
			e := math.Exp(float64(v - mx))
			p[k] = e
			sum += e
		}
		loc := 0.0
		for k := range p {
			p[k] /= sum
			loc += float64(k) * p[k]
		}
		probs[r] = p
		locs[r] = loc
	}
	triples := n * cfg.Lanes * (cfg.RowAnchors - 2)
	inv := 1.0 / float64(triples)
	total := 0.0
	// dLoc_r/dz_k = p_k (k − loc_r); accumulate via chain rule.
	addLocGrad := func(r int, coeff float64) {
		p := probs[r]
		loc := locs[r]
		g := grad.Data[r*classes : r*classes+cells]
		for k := 0; k < cells; k++ {
			g[k] += float32(coeff * p[k] * (float64(k) - loc))
		}
	}
	for ni := 0; ni < n; ni++ {
		for lane := 0; lane < cfg.Lanes; lane++ {
			base := (ni*cfg.Lanes + lane) * cfg.RowAnchors
			for a := 0; a+2 < cfg.RowAnchors; a++ {
				d := locs[base+a] - 2*locs[base+a+1] + locs[base+a+2]
				total += d * d * inv
				c := 2 * d * inv
				addLocGrad(base+a, c)
				addLocGrad(base+a+1, -2*c)
				addLocGrad(base+a+2, c)
			}
		}
	}
	return total, grad
}
