// Package experiments regenerates every figure and quantitative claim
// of the paper's evaluation: Fig. 1 (benchmark composition), Fig. 2
// (lane-detection accuracy across benchmarks, methods, batch sizes and
// backbones), Fig. 3 (latency per Jetson Orin power mode against the
// 30 FPS / 18 FPS deadlines), the §II SOTA-cost claim and the §III
// parameter-set ablation. The same entry points back cmd/ldbench and
// the testing.B benchmarks in bench_test.go.
package experiments

import (
	"fmt"
	"io"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/sota"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// Profile bundles the scale knobs of an experiment run.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// CfgFor builds the detector config for a variant and lane count.
	CfgFor func(resnet.Variant, int) ufld.Config
	// Sizes fixes the dataset split sizes.
	Sizes carlane.Sizes
	// TrainEpochs is the source pre-training epoch count.
	TrainEpochs int
	// SOTAEpochs is the baseline's retraining epoch count.
	SOTAEpochs int
	// Seed makes the whole run reproducible.
	Seed uint64
}

// Quick returns a minutes-scale profile (tiny models, small splits) —
// used by unit tests and the testing.B benchmarks.
func Quick() Profile {
	return Profile{
		Name:        "quick",
		CfgFor:      ufld.Tiny,
		Sizes:       carlane.Sizes{SourceTrain: 48, SourceVal: 16, TargetTrain: 32, TargetVal: 24},
		TrainEpochs: 5,
		SOTAEpochs:  2,
		Seed:        1,
	}
}

// Full returns the profile behind the numbers in EXPERIMENTS.md:
// the Small detector configuration with the default split sizes.
func Full() Profile {
	return Profile{
		Name:        "full",
		CfgFor:      ufld.Small,
		Sizes:       carlane.Sizes{SourceTrain: 192, SourceVal: 40, TargetTrain: 192, TargetVal: 64},
		TrainEpochs: 10,
		SOTAEpochs:  2,
		Seed:        1,
	}
}

// Fig2Cell is one bar of the paper's Fig. 2.
type Fig2Cell struct {
	// Benchmark is "MoLane", "TuLane" or "MuLane".
	Benchmark string
	// Model is "R-18" or "R-34".
	Model string
	// Method is "NoAdapt", "CARLANE-SOTA" or "LD-BN-ADAPT".
	Method string
	// BatchSize is the adaptation batch size (0 for NoAdapt/SOTA).
	BatchSize int
	// Accuracy is the target-validation accuracy in [0, 1].
	Accuracy float64
	// OnlineAccuracy is the during-stream accuracy (LD-BN-ADAPT only).
	OnlineAccuracy float64
}

// Fig2Result is the full accuracy grid.
type Fig2Result struct {
	// Cells holds every (benchmark, model, method, bs) accuracy.
	Cells []Fig2Cell
	// SourceAcc maps "benchmark/model" to source-validation accuracy
	// (the upper reference line).
	SourceAcc map[string]float64
}

// trainSourceModel builds the benchmark data and pre-trains the UFLD
// model on the simulator source split.
func trainSourceModel(p Profile, name carlane.BenchmarkName, v resnet.Variant, seed uint64, log io.Writer) (*carlane.Benchmark, *ufld.Model, error) {
	b := carlane.Build(name, v, p.CfgFor, p.Sizes, seed)
	rng := tensor.NewRNG(seed + 1000)
	m, err := ufld.NewModel(b.Cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	tc := ufld.DefaultTrainConfig()
	tc.Epochs = p.TrainEpochs
	if log != nil {
		fmt.Fprintf(log, "[%s %s] pre-training on %d source images (%d epochs)\n",
			name, v, b.SourceTrain.Len(), tc.Epochs)
	}
	if _, err := ufld.TrainSource(m, b.SourceTrain, tc, rng.Split()); err != nil {
		return nil, nil, err
	}
	return b, m, nil
}

// RunFig2 regenerates the accuracy grid of Fig. 2 for the given
// benchmarks and backbone variants.
func RunFig2(p Profile, benchmarks []carlane.BenchmarkName, variants []resnet.Variant, log io.Writer) (*Fig2Result, error) {
	res := &Fig2Result{SourceAcc: make(map[string]float64)}
	for _, bn := range benchmarks {
		for _, v := range variants {
			b, m, err := trainSourceModel(p, bn, v, p.Seed, log)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", bn, v, err)
			}
			key := fmt.Sprintf("%s/%s", bn, v)
			res.SourceAcc[key] = ufld.Evaluate(m, b.SourceVal, 8).Accuracy

			// (i) UFLD with no adaptation.
			noAdapt := ufld.Evaluate(m, b.TargetVal, 8).Accuracy
			res.Cells = append(res.Cells, Fig2Cell{
				Benchmark: string(bn), Model: v.String(), Method: "NoAdapt", Accuracy: noAdapt,
			})
			if log != nil {
				fmt.Fprintf(log, "[%s %s] source %.4f, no-adapt %.4f\n", bn, v, res.SourceAcc[key], noAdapt)
			}

			// (ii) CARLANE SOTA baseline (full retraining, needs
			// labeled source data on device).
			ms := m.Clone(tensor.NewRNG(p.Seed + 7))
			sc := sota.DefaultConfig()
			sc.Epochs = p.SOTAEpochs
			if _, err := sota.New(ms, sc).Run(b.SourceTrain, b.TargetTrain, tensor.NewRNG(p.Seed+8)); err != nil {
				return nil, fmt.Errorf("experiments: sota %s/%s: %w", bn, v, err)
			}
			sotaAcc := ufld.Evaluate(ms, b.TargetVal, 8).Accuracy
			res.Cells = append(res.Cells, Fig2Cell{
				Benchmark: string(bn), Model: v.String(), Method: "CARLANE-SOTA", Accuracy: sotaAcc,
			})
			if log != nil {
				fmt.Fprintf(log, "[%s %s] SOTA %.4f\n", bn, v, sotaAcc)
			}

			// (iii) Real-time LD-BN-ADAPT at batch sizes 1, 2, 4.
			for _, bs := range []int{1, 2, 4} {
				mc := m.Clone(tensor.NewRNG(p.Seed + uint64(10+bs)))
				meth := adapt.NewLDBNAdapt(mc, adapt.DefaultConfig())
				r := adapt.RunOnline(mc, meth, b.TargetTrain, b.TargetVal, bs)
				res.Cells = append(res.Cells, Fig2Cell{
					Benchmark: string(bn), Model: v.String(), Method: "LD-BN-ADAPT",
					BatchSize: bs, Accuracy: r.FinalAccuracy, OnlineAccuracy: r.OnlineAccuracy,
				})
				if log != nil {
					fmt.Fprintf(log, "[%s %s] LD-BN-ADAPT bs=%d: %.4f (online %.4f)\n",
						bn, v, bs, r.FinalAccuracy, r.OnlineAccuracy)
				}
			}
		}
	}
	return res, nil
}

// Lookup returns the accuracy of a cell (ok=false when absent).
func (r *Fig2Result) Lookup(benchmark, model, method string, bs int) (float64, bool) {
	for _, c := range r.Cells {
		if c.Benchmark == benchmark && c.Model == model && c.Method == method && c.BatchSize == bs {
			return c.Accuracy, true
		}
	}
	return 0, false
}

// BestPerBenchmark returns, per benchmark, the best accuracy the given
// method achieves across models (and batch sizes) — the quantity the
// paper quotes ("LD-BN-ADAPT's best accuracies ... avg of 92.19%").
func (r *Fig2Result) BestPerBenchmark(method string) map[string]float64 {
	out := make(map[string]float64)
	for _, c := range r.Cells {
		if c.Method != method {
			continue
		}
		if c.Accuracy > out[c.Benchmark] {
			out[c.Benchmark] = c.Accuracy
		}
	}
	return out
}

// WriteTable renders the grid as text.
func (r *Fig2Result) WriteTable(w io.Writer) {
	tb := metrics.NewTable("benchmark", "model", "method", "bs", "accuracy", "online")
	for _, c := range r.Cells {
		bs := "-"
		if c.BatchSize > 0 {
			bs = fmt.Sprint(c.BatchSize)
		}
		online := "-"
		if c.OnlineAccuracy > 0 {
			online = metrics.FormatPct(c.OnlineAccuracy)
		}
		tb.AddRow(c.Benchmark, c.Model, c.Method, bs, metrics.FormatPct(c.Accuracy), online)
	}
	if _, err := tb.WriteTo(w); err != nil {
		fmt.Fprintln(w, err)
	}
	for key, acc := range r.SourceAcc {
		fmt.Fprintf(w, "source-val %-14s %s\n", key, metrics.FormatPct(acc))
	}
}

// RunFig3 regenerates the latency figure: LD-BN-ADAPT (batch size 1,
// the configuration the paper selects) on R-18 and R-34 across every
// Orin power mode, using the full-scale model costs.
func RunFig3(lanes int) []orin.Estimate {
	var out []orin.Estimate
	for _, v := range []resnet.Variant{resnet.R18, resnet.R34} {
		cost := ufld.DescribeModel(ufld.FullScale(v, lanes))
		for _, mode := range orin.Modes {
			out = append(out, orin.EstimateFrame(v.String(), cost, mode, 1))
		}
	}
	return out
}

// WriteFig3 renders the latency table with deadline verdicts.
func WriteFig3(w io.Writer, lanes int) {
	orin.WriteLatencyTable(w, RunFig3(lanes))
	fmt.Fprintf(w, "deadlines: 30 FPS = %.1f ms, 18 FPS (Audi A8 L3) = %.1f ms\n",
		orin.Deadline30FPS, orin.Deadline18FPS)
}

// RunFig1 regenerates the benchmark-composition view of Fig. 1 for all
// three benchmarks.
func RunFig1(p Profile, w io.Writer) {
	for _, bn := range carlane.AllBenchmarks {
		b := carlane.Build(bn, resnet.R18, p.CfgFor, p.Sizes, p.Seed)
		carlane.WriteBenchmarkTable(w, b)
		fmt.Fprintln(w)
	}
}

// WriteSOTACost regenerates the §II claim: one epoch of the SOTA
// baseline on the Orin versus LD-BN-ADAPT's per-frame cost.
func WriteSOTACost(w io.Writer, lanes int) {
	wl := orin.CARLANEScaleWorkload()
	tb := metrics.NewTable("model", "mode", "SOTA epoch", "10 epochs", "LD-BN-ADAPT/frame")
	for _, v := range []resnet.Variant{resnet.R18, resnet.R34} {
		cost := ufld.DescribeModel(ufld.FullScale(v, lanes))
		for _, mode := range []orin.PowerMode{orin.Mode60W, orin.Mode30W} {
			epoch := orin.SOTAEpochCost(cost, wl, mode)
			frame := orin.LDBNAdaptPerFrameCost(cost, mode)
			tb.AddRow(v.String(), mode.Name,
				fmt.Sprintf("%.1f h", epoch.Hours()),
				fmt.Sprintf("%.0f h", 10*epoch.Hours()),
				fmt.Sprintf("%.1f ms", float64(frame.Microseconds())/1000))
		}
	}
	if _, err := tb.WriteTo(w); err != nil {
		fmt.Fprintln(w, err)
	}
	fmt.Fprintf(w, "workload: %d labeled source + %d unlabeled target samples/epoch (CARLANE MoLane scale)\n",
		wl.SourceSamples, wl.TargetSamples)
}

// AblationCell is one row of the §III parameter-set ablation.
type AblationCell struct {
	// Method names the adapted parameter set or loss variant.
	Method string
	// Accuracy is target-validation accuracy after adaptation.
	Accuracy float64
	// AdaptedParams counts the scalars the method updates.
	AdaptedParams int
}

// RunAblation reproduces the paper's §III observation that BN-based
// adaptation beats convolutional and fully-connected adaptation, plus
// the entropy-vs-confidence loss comparison, on MoLane.
func RunAblation(p Profile, v resnet.Variant, log io.Writer) ([]AblationCell, error) {
	b, m, err := trainSourceModel(p, carlane.MoLane, v, p.Seed, log)
	if err != nil {
		return nil, err
	}
	var out []AblationCell
	out = append(out, AblationCell{
		Method:   "NoAdapt",
		Accuracy: ufld.Evaluate(m, b.TargetVal, 8).Accuracy,
	})
	type mk struct {
		name string
		make func(*ufld.Model) adapt.Method
	}
	cfg := adapt.DefaultConfig()
	confCfg := cfg
	confCfg.Loss = adapt.Confidence
	// Conv/FC adaptation uses a smaller LR: full-weight entropy steps
	// at the BN rate destabilize immediately.
	weightCfg := cfg
	weightCfg.LR = cfg.LR / 10
	makers := []mk{
		{"LD-BN-ADAPT (entropy)", func(m *ufld.Model) adapt.Method { return adapt.NewLDBNAdapt(m, cfg) }},
		{"LD-BN-ADAPT (confidence)", func(m *ufld.Model) adapt.Method { return adapt.NewLDBNAdapt(m, confCfg) }},
		{"CONV-ADAPT", func(m *ufld.Model) adapt.Method { return adapt.NewConvAdapt(m, weightCfg) }},
		{"FC-ADAPT", func(m *ufld.Model) adapt.Method { return adapt.NewFCAdapt(m, weightCfg) }},
	}
	for _, mker := range makers {
		mc := m.Clone(tensor.NewRNG(p.Seed + 60))
		meth := mker.make(mc)
		r := adapt.RunOnline(mc, meth, b.TargetTrain, b.TargetVal, 1)
		cell := AblationCell{Method: mker.name, Accuracy: r.FinalAccuracy}
		switch v := meth.(type) {
		case *adapt.LDBNAdapt:
			cell.AdaptedParams = v.AdaptedParamCount()
		}
		out = append(out, cell)
		if log != nil {
			fmt.Fprintf(log, "[ablation] %-26s %.4f\n", mker.name, r.FinalAccuracy)
		}
	}
	return out, nil
}

// WriteAblation renders the ablation table.
func WriteAblation(w io.Writer, cells []AblationCell) {
	tb := metrics.NewTable("method", "target accuracy", "adapted params")
	for _, c := range cells {
		params := "-"
		if c.AdaptedParams > 0 {
			params = fmt.Sprint(c.AdaptedParams)
		}
		tb.AddRow(c.Method, metrics.FormatPct(c.Accuracy), params)
	}
	if _, err := tb.WriteTo(w); err != nil {
		fmt.Fprintln(w, err)
	}
}

// MomentumCell is one row of the BN-statistics-momentum ablation.
type MomentumCell struct {
	// AdaptMomentum is the EMA factor used by Adapt-mode normalization
	// (1.0 = raw per-batch statistics, TENT's choice).
	AdaptMomentum float32
	// Accuracy is target-validation accuracy after online adaptation
	// at batch size 1.
	Accuracy float64
}

// RunMomentumAblation sweeps the Adapt-mode statistics momentum on
// MoLane — the design choice DESIGN.md calls out: at full scale,
// per-image statistics are stable and TENT normalizes with raw batch
// stats (momentum 1); at reduced scale an EMA over the stream is
// needed for batch-size-1 stability.
func RunMomentumAblation(p Profile, v resnet.Variant, log io.Writer) ([]MomentumCell, error) {
	b, m, err := trainSourceModel(p, carlane.MoLane, v, p.Seed, log)
	if err != nil {
		return nil, err
	}
	var out []MomentumCell
	for _, am := range []float32{0.1, 0.3, 0.5, 1.0} {
		mc := m.Clone(tensor.NewRNG(p.Seed + 80))
		for _, bn := range mc.BatchNorms() {
			bn.AdaptMomentum = am
		}
		meth := adapt.NewLDBNAdapt(mc, adapt.DefaultConfig())
		r := adapt.RunOnline(mc, meth, b.TargetTrain, b.TargetVal, 1)
		out = append(out, MomentumCell{AdaptMomentum: am, Accuracy: r.FinalAccuracy})
		if log != nil {
			fmt.Fprintf(log, "[momentum] am=%.1f: %.4f\n", am, r.FinalAccuracy)
		}
	}
	return out, nil
}

// WriteMomentumAblation renders the momentum ablation table.
func WriteMomentumAblation(w io.Writer, cells []MomentumCell) {
	tb := metrics.NewTable("adapt momentum", "target accuracy", "note")
	for _, c := range cells {
		note := ""
		if c.AdaptMomentum == 1.0 {
			note = "raw batch stats (TENT)"
		}
		tb.AddRow(fmt.Sprintf("%.1f", c.AdaptMomentum), metrics.FormatPct(c.Accuracy), note)
	}
	if _, err := tb.WriteTo(w); err != nil {
		fmt.Fprintln(w, err)
	}
}

// Medium returns an intermediate profile: the Small detector with
// reduced split sizes and epochs — for filling individual Fig. 2 cells
// in bounded time on a single core.
func Medium() Profile {
	return Profile{
		Name:        "medium",
		CfgFor:      ufld.Small,
		Sizes:       carlane.Sizes{SourceTrain: 128, SourceVal: 32, TargetTrain: 128, TargetVal: 48},
		TrainEpochs: 7,
		SOTAEpochs:  2,
		Seed:        1,
	}
}
