package experiments

import (
	"strings"
	"testing"

	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
)

func TestRunFig2QuickMoLaneR18(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short mode")
	}
	p := Quick()
	res, err := RunFig2(p, []carlane.BenchmarkName{carlane.MoLane}, []resnet.Variant{resnet.R18}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One NoAdapt + one SOTA + three LD-BN-ADAPT cells.
	if len(res.Cells) != 5 {
		t.Fatalf("cells = %d, want 5", len(res.Cells))
	}
	noAdapt, ok := res.Lookup("MoLane", "R-18", "NoAdapt", 0)
	if !ok {
		t.Fatal("NoAdapt cell missing")
	}
	src := res.SourceAcc["MoLane/R-18"]
	if !(noAdapt < src) {
		t.Fatalf("domain gap missing: no-adapt %.3f vs source %.3f", noAdapt, src)
	}
	// Every adaptation method must improve on no adaptation.
	for _, method := range []string{"CARLANE-SOTA", "LD-BN-ADAPT"} {
		best := res.BestPerBenchmark(method)["MoLane"]
		if best <= noAdapt {
			t.Errorf("%s best %.3f did not beat NoAdapt %.3f", method, best, noAdapt)
		}
	}
	var sb strings.Builder
	res.WriteTable(&sb)
	for _, want := range []string{"MoLane", "LD-BN-ADAPT", "CARLANE-SOTA", "source-val"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("table missing %q", want)
		}
	}
}

func TestRunFig3CoversGrid(t *testing.T) {
	est := RunFig3(4)
	if len(est) != 2*len(orin.Modes) {
		t.Fatalf("estimates = %d, want %d", len(est), 2*len(orin.Modes))
	}
	// The paper's Fig. 3 key facts.
	find := func(model string, watts int) orin.Estimate {
		for _, e := range est {
			if e.ModelName == model && e.Mode.Watts == watts {
				return e
			}
		}
		t.Fatalf("estimate %s@%dW missing", model, watts)
		return orin.Estimate{}
	}
	if !find("R-18", 60).Meets(orin.Deadline30FPS) {
		t.Error("R-18@60W must meet 30 FPS")
	}
	if find("R-34", 60).Meets(orin.Deadline30FPS) {
		t.Error("R-34@60W must miss 30 FPS")
	}
	if !find("R-34", 60).Meets(orin.Deadline18FPS) {
		t.Error("R-34@60W must meet 18 FPS")
	}
	var sb strings.Builder
	WriteFig3(&sb, 4)
	if !strings.Contains(sb.String(), "30 FPS") {
		t.Fatal("Fig3 table missing deadline note")
	}
}

func TestRunFig1Writes(t *testing.T) {
	var sb strings.Builder
	p := Quick()
	RunFig1(p, &sb)
	for _, want := range []string{"MoLane", "TuLane", "MuLane", "sim"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("Fig1 output missing %q", want)
		}
	}
}

func TestWriteSOTACost(t *testing.T) {
	var sb strings.Builder
	WriteSOTACost(&sb, 4)
	out := sb.String()
	if !strings.Contains(out, "R-18") || !strings.Contains(out, "h") {
		t.Fatalf("SOTA cost table malformed:\n%s", out)
	}
	// The table must show hours-scale epochs (the >1h claim).
	if !strings.Contains(out, "SOTA epoch") {
		t.Fatal("missing epoch column")
	}
}

func TestRunAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short mode")
	}
	p := Quick()
	cells, err := RunAblation(p, resnet.R18, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("ablation cells = %d, want 5", len(cells))
	}
	byName := make(map[string]AblationCell)
	for _, c := range cells {
		byName[c.Method] = c
		if c.Accuracy < 0 || c.Accuracy > 1 {
			t.Fatalf("%s accuracy %v out of range", c.Method, c.Accuracy)
		}
	}
	bn := byName["LD-BN-ADAPT (entropy)"]
	if bn.AdaptedParams <= 0 {
		t.Fatal("BN adapted params not recorded")
	}
	// The paper's §III ordering (BN beats conv/FC adaptation) is a
	// full-profile result recorded in EXPERIMENTS.md; at the quick
	// profile the tiny stream is too noisy to assert it. Here we only
	// require that BN adaptation does not lose to NoAdapt.
	if bn.Accuracy+0.02 < byName["NoAdapt"].Accuracy {
		t.Errorf("LD-BN-ADAPT (%.3f) lost to NoAdapt (%.3f)", bn.Accuracy, byName["NoAdapt"].Accuracy)
	}
	var sb strings.Builder
	WriteAblation(&sb, cells)
	if !strings.Contains(sb.String(), "CONV-ADAPT") {
		t.Fatal("ablation table malformed")
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{Quick(), Full()} {
		if p.CfgFor == nil || p.TrainEpochs < 1 || p.SOTAEpochs < 1 {
			t.Fatalf("profile %s malformed", p.Name)
		}
		cfg := p.CfgFor(resnet.R18, 2)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("profile %s config invalid: %v", p.Name, err)
		}
	}
}

func TestRunMomentumAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short mode")
	}
	p := Quick()
	cells, err := RunMomentumAblation(p, resnet.R18, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	seen := make(map[float32]bool)
	for _, c := range cells {
		if c.Accuracy < 0 || c.Accuracy > 1 {
			t.Fatalf("am=%.1f accuracy %v out of range", c.AdaptMomentum, c.Accuracy)
		}
		seen[c.AdaptMomentum] = true
	}
	if !seen[1.0] {
		t.Fatal("TENT endpoint (momentum 1.0) missing from sweep")
	}
	var sb strings.Builder
	WriteMomentumAblation(&sb, cells)
	if !strings.Contains(sb.String(), "TENT") {
		t.Fatal("momentum table missing TENT note")
	}
}
