// Package par is the shared kernel worker pool: a fixed set of
// long-lived worker goroutines that tensor and nn kernels borrow for
// the duration of one data-parallel loop. It exists so that every
// parallel kernel in the repo shares one runtime with one contract,
// instead of each call spawning ad-hoc goroutines (the pre-pool
// matmul band path paid one goroutine + closure + WaitGroup churn
// per call — measurable garbage on a hot path that is otherwise
// 0 allocs/op).
//
// # Determinism contract
//
// For partitions the index range [0, n) into at most Width(n, minPer)
// contiguous bands and hands each band to exactly one participant
// (the caller runs one band itself). Callers must partition only over
// *output ownership*: each output element is written by exactly one
// Chunk call, and the arithmetic inside a Chunk must not depend on
// the band boundaries (loop order per element stays what the serial
// kernel does). Under that discipline the result is bitwise identical
// at any worker count — GOMAXPROCS, pool contention and band count
// change only who computes, never what is computed. The kernel-level
// property suite in internal/tensor pins this for every kernel routed
// through the pool.
//
// # Allocation contract
//
// Steady-state For calls perform zero heap allocations: workers are
// spawned once and parked on per-worker task slots (capacity-1
// channels carry a by-value run descriptor), slot ids live in a
// fixed free list, and kernel argument blocks come from Cache (a
// grow-to-high-water free list). This is what lets the parallel
// infer forward stay 0 allocs/op at GOMAXPROCS > 1 (pinned by
// ufld.TestInferForwardAllocationFree and the `make alloc-gate`
// -cpu 4 row).
//
// # Scheduling model
//
// Helpers are acquired best-effort from a shared free list: a For
// call enlists up to Width-1 free workers and always executes at
// least its own band inline, so nested parallel kernels (a
// sample-parallel conv forward whose per-sample GEMM is itself
// parallel) and concurrent board actors degrade gracefully toward
// serial execution instead of deadlocking or oversubscribing — under
// contention the inner call simply finds no free workers and runs
// serially on its caller.
package par

import (
	"runtime"
	"sync"
)

// MaxWorkers caps the pool size regardless of GOMAXPROCS. 64 is far
// above any plausible core count for this workload and bounds the
// fixed-size slot arrays that keep For allocation-free.
const MaxWorkers = 64

// Body is one data-parallel loop body. Chunk processes items
// [lo, hi); band is the index of the contiguous band within this For
// call (0 ≤ band < Width(n, minPer)), stable for the duration of the
// call — callers use it to select per-band scratch shards.
type Body interface {
	Chunk(band, lo, hi int)
}

// run is one band dispatch, passed by value through a slot channel.
type run struct {
	body   Body
	band   int
	lo, hi int
}

// slot is one persistent worker's mailbox: a capacity-1 run channel
// and a capacity-1 completion channel, both allocated once at spawn.
type slot struct {
	run  chan run
	done chan struct{}
}

var (
	mu      sync.Mutex
	slots   [MaxWorkers]slot
	free    [MaxWorkers]int // stack of idle worker ids
	nfree   int
	spawned int
)

// worker serves one slot forever. Workers are deliberately never torn
// down: they park on a channel receive between calls, so an idle pool
// costs nothing but MaxWorkers-bounded goroutine stacks (the
// goroutine-leak pin in par_test.go holds the count flat).
func worker(s *slot) {
	for r := range s.run {
		r.body.Chunk(r.band, r.lo, r.hi)
		s.done <- struct{}{}
	}
}

// Width reports the number of bands For would use for n items with at
// least minPer items per band: min(n/minPer, GOMAXPROCS, MaxWorkers),
// floored at 1. Layers size per-band scratch shards with it before
// calling For, so shard growth happens on the warmup call and the
// steady state allocates nothing.
func Width(n, minPer int) int {
	if minPer < 1 {
		minPer = 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > MaxWorkers {
		w = MaxWorkers
	}
	if m := n / minPer; m < w {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// grab pops up to k idle worker ids into ids, spawning workers lazily
// but never more than GOMAXPROCS in total — concurrent For callers
// (fleet board actors) share one GOMAXPROCS-sized pool rather than
// oversubscribing the machine, so a contended call gets fewer (or
// zero) helpers and For degrades toward serial.
func grab(ids []int, k int) int {
	gp := runtime.GOMAXPROCS(0)
	if gp > MaxWorkers {
		gp = MaxWorkers
	}
	mu.Lock()
	for spawned < gp && nfree < k {
		s := &slots[spawned]
		s.run = make(chan run, 1)
		s.done = make(chan struct{}, 1)
		go worker(s)
		free[nfree] = spawned
		nfree++
		spawned++
	}
	got := 0
	for got < k && nfree > 0 {
		nfree--
		ids[got] = free[nfree]
		got++
	}
	mu.Unlock()
	return got
}

// release returns worker ids to the free list.
func release(ids []int) {
	mu.Lock()
	for _, id := range ids {
		free[nfree] = id
		nfree++
	}
	mu.Unlock()
}

// For runs body over [0, n) with at most Width(n, minPer) bands. The
// caller executes the last band inline and blocks until every helper
// band has completed, so body's outputs are fully written when For
// returns. With one band (GOMAXPROCS 1, small n, or an exhausted
// pool) it is exactly body.Chunk(0, 0, n) on the caller — the serial
// reference every parallel kernel is pinned against.
func For(n, minPer int, body Body) {
	if n <= 0 {
		return
	}
	w := Width(n, minPer)
	if w <= 1 {
		body.Chunk(0, 0, n)
		return
	}
	var ids [MaxWorkers]int
	k := grab(ids[:], w-1)
	if k == 0 {
		body.Chunk(0, 0, n)
		return
	}
	bands := k + 1
	// Balanced contiguous partition: every band non-empty (bands ≤ n
	// because Width ≤ n/minPer ≤ n), remainder spread over the leading
	// bands.
	base, ext := n/bands, n%bands
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + base
		if i < ext {
			hi++
		}
		slots[ids[i]].run <- run{body: body, band: i, lo: lo, hi: hi}
		lo = hi
	}
	body.Chunk(k, lo, n)
	for i := 0; i < k; i++ {
		<-slots[ids[i]].done
	}
	release(ids[:k])
}

// Cache is a grow-to-high-water free list of kernel argument blocks.
// Get returns a recycled *T or a new one; Put returns it. After the
// working set peaks, Get/Put allocate nothing — the deterministic
// alternative to sync.Pool (whose GC-clearing would re-allocate
// mid-measurement) for keeping free-function kernels like MatMulInto
// allocation-free while remaining safe under concurrent and nested
// calls.
type Cache[T any] struct {
	mu   sync.Mutex
	free []*T
}

// Get pops a recycled block or allocates a fresh one.
func (c *Cache[T]) Get() *T {
	c.mu.Lock()
	if n := len(c.free); n > 0 {
		t := c.free[n-1]
		c.free = c.free[:n-1]
		c.mu.Unlock()
		return t
	}
	c.mu.Unlock()
	return new(T)
}

// Put recycles a block. Callers should zero any reference fields
// first so the cache does not extend buffer lifetimes.
func (c *Cache[T]) Put(t *T) {
	c.mu.Lock()
	c.free = append(c.free, t)
	c.mu.Unlock()
}
