package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// markBody records which band processed each item.
type markBody struct {
	owner []int32
}

func (b *markBody) Chunk(band, lo, hi int) {
	for i := lo; i < hi; i++ {
		atomic.StoreInt32(&b.owner[i], int32(band+1))
	}
}

// withProcs runs f under the given GOMAXPROCS, restoring it after.
func withProcs(t *testing.T, procs int, f func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	f()
}

// TestForCoversEveryItemOnce checks the partition invariant at worker
// counts around and past the item count, including prime sizes and
// n < workers.
func TestForCoversEveryItemOnce(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 8} {
		for _, n := range []int{1, 2, 3, 7, 13, 64, 101} {
			withProcs(t, procs, func() {
				b := &markBody{owner: make([]int32, n)}
				For(n, 1, b)
				for i, o := range b.owner {
					if o == 0 {
						t.Fatalf("procs=%d n=%d: item %d never processed", procs, n, i)
					}
				}
				// Bands must be contiguous: owner changes at most
				// Width-1 times and band ids are ≤ Width.
				w := int32(Width(n, 1))
				changes := 0
				for i := 1; i < n; i++ {
					if b.owner[i] != b.owner[i-1] {
						changes++
					}
					if b.owner[i] > w {
						t.Fatalf("procs=%d n=%d: band id %d exceeds width %d", procs, n, b.owner[i], w)
					}
				}
				if changes >= int(w) {
					t.Fatalf("procs=%d n=%d: %d band transitions for width %d", procs, n, changes, w)
				}
			})
		}
	}
}

// TestWidthClamps pins the band-count formula the shard-sizing in nn
// relies on.
func TestWidthClamps(t *testing.T) {
	withProcs(t, 8, func() {
		if w := Width(100, 1); w != 8 {
			t.Fatalf("Width(100,1) at 8 procs = %d, want 8", w)
		}
		if w := Width(3, 1); w != 3 {
			t.Fatalf("Width(3,1) = %d, want 3 (n < procs)", w)
		}
		if w := Width(100, 40); w != 2 {
			t.Fatalf("Width(100,40) = %d, want 2 (minPer clamp)", w)
		}
		if w := Width(5, 100); w != 1 {
			t.Fatalf("Width(5,100) = %d, want 1", w)
		}
	})
	withProcs(t, 1, func() {
		if w := Width(1000, 1); w != 1 {
			t.Fatalf("Width at GOMAXPROCS 1 = %d, want 1", w)
		}
	})
}

type sumBody struct {
	src []float64
	// per-band partial sums, far apart to avoid false-sharing noise.
	part [MaxWorkers]float64
}

func (b *sumBody) Chunk(band, lo, hi int) {
	s := 0.0
	for _, v := range b.src[lo:hi] {
		s += v
	}
	b.part[band] = s
}

// TestNestedAndConcurrentFor hammers the pool from many client
// goroutines with nested For calls — the fleet-of-board-actors shape —
// under the race detector (make race includes this package).
func TestNestedAndConcurrentFor(t *testing.T) {
	withProcs(t, 4, func() {
		src := make([]float64, 1000)
		want := 0.0
		for i := range src {
			src[i] = float64(i % 17)
			want += src[i]
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for it := 0; it < 50; it++ {
					outer := &nestedBody{src: src}
					For(4, 1, outer)
					got := 0.0
					for _, q := range outer.quarter {
						got += q
					}
					if got != want {
						t.Errorf("nested sum = %v, want %v", got, want)
						return
					}
				}
			}()
		}
		wg.Wait()
	})
}

type nestedBody struct {
	src     []float64
	quarter [4]float64
}

func (b *nestedBody) Chunk(_, lo, hi int) {
	for q := lo; q < hi; q++ {
		inner := &sumBody{src: b.src[q*250 : (q+1)*250]}
		For(250, 16, inner) // nested: may find no free workers
		s := 0.0
		for _, p := range inner.part {
			s += p
		}
		b.quarter[q] = s
	}
}

// TestNoGoroutineLeak pins the pool's persistence model: workers are
// spawned once up to the GOMAXPROCS cap and then reused — thousands of
// For calls add no goroutines beyond that bound.
func TestNoGoroutineLeak(t *testing.T) {
	withProcs(t, 4, func() {
		b := &sumBody{src: make([]float64, 4096)}
		For(len(b.src), 64, b) // spawn up to the cap
		runtime.Gosched()
		base := runtime.NumGoroutine()
		for i := 0; i < 2000; i++ {
			For(len(b.src), 64, b)
		}
		// Workers park between calls; give any in-flight done-handoff a
		// moment before counting.
		time.Sleep(10 * time.Millisecond)
		if got := runtime.NumGoroutine(); got > base {
			t.Fatalf("goroutines grew %d → %d across 2000 For calls", base, got)
		}
	})
}

// TestForSteadyStateAllocFree pins the zero-allocation contract at
// GOMAXPROCS > 1. testing.AllocsPerRun forces GOMAXPROCS to 1 (which
// would bypass the pool), so this measures Mallocs directly.
func TestForSteadyStateAllocFree(t *testing.T) {
	withProcs(t, 4, func() {
		b := &sumBody{src: make([]float64, 8192)}
		cache := &Cache[sumBody]{}
		work := func() {
			tb := cache.Get()
			tb.src = b.src
			For(len(tb.src), 64, tb)
			tb.src = nil
			cache.Put(tb)
		}
		for i := 0; i < 10; i++ {
			work() // warmup: spawn workers, fill the cache high-water
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		const runs = 200
		for i := 0; i < runs; i++ {
			work()
		}
		runtime.ReadMemStats(&after)
		if per := float64(after.Mallocs-before.Mallocs) / runs; per > 0.05 {
			t.Fatalf("steady-state For allocates %.2f objects per call, want 0", per)
		}
	})
}

// TestCacheRecycles pins Cache's grow-to-high-water behaviour.
func TestCacheRecycles(t *testing.T) {
	var c Cache[int]
	a := c.Get()
	c.Put(a)
	if b := c.Get(); b != a {
		t.Fatal("Cache did not recycle the returned block")
	}
}
