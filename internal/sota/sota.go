// Package sota implements the comparison baseline of the paper: the
// CARLANE-benchmark state-of-the-art unsupervised domain adaptation
// algorithm (Stuhr et al., NeurIPS 2022), as characterized in the
// paper's §II:
//
//	(i)   encode the semantic structure of source and target data into
//	      an embedding space, using K-means,
//	(ii)  transfer knowledge from source to target via the embeddings
//	      (cluster alignment + pseudo-labels), and
//	(iii) update ALL model parameters with backpropagation for several
//	      epochs.
//
// Unlike LD-BN-ADAPT it therefore requires labeled source data on the
// device, runs for tens of epochs × thousands of samples, and updates
// the full parameter set — accurate, but orders of magnitude too slow
// for real-time adaptation (the paper measures > 1 h per epoch on a
// Jetson Orin). The cost counters recorded here feed the Orin
// performance model that reproduces that claim.
package sota

import (
	"fmt"
	"io"
	"math"

	"ldbnadapt/internal/kmeans"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// Config controls the baseline.
type Config struct {
	// Epochs of full-network retraining (the paper's baseline uses ~10).
	Epochs int
	// BatchSize for both source and target mini-batches.
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// Clusters is K for the K-means semantic encoding.
	Clusters int
	// AlignWeight scales the embedding cluster-alignment loss.
	AlignWeight float64
	// PseudoWeight scales the pseudo-label cross-entropy on confident
	// target predictions.
	PseudoWeight float64
	// PseudoThreshold is the softmax confidence needed to accept a
	// pseudo-label.
	PseudoThreshold float64
	// ClipNorm bounds the gradient norm (0 disables).
	ClipNorm float64
	// RecalibrateBN runs a final statistics-only pass over the
	// unlabeled target data so the inference-time BN statistics match
	// the deployment domain (training interleaves source and target
	// batches, which leaves the running statistics blended between
	// domains). Standard practice in UDA pipelines.
	RecalibrateBN bool
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// DefaultConfig returns the settings used in the reproduction.
func DefaultConfig() Config {
	return Config{
		Epochs:          4,
		BatchSize:       8,
		LR:              1e-3,
		Clusters:        6,
		AlignWeight:     0.1,
		PseudoWeight:    0.5,
		PseudoThreshold: 0.95,
		ClipNorm:        10,
		RecalibrateBN:   true,
	}
}

// Cost tallies the work the baseline performed — the quantities that
// make it non-real-time. The Orin model prices these counters.
type Cost struct {
	// FullForwards counts complete model forward passes (one sample
	// each).
	FullForwards int64
	// FullBackwards counts complete model backward passes.
	FullBackwards int64
	// BackboneForwards counts backbone-only passes (embeddings).
	BackboneForwards int64
	// BackboneBackwards counts backbone-only backward passes.
	BackboneBackwards int64
	// KMeansPointIters counts point×iteration work in K-means.
	KMeansPointIters int64
	// LabeledSourceSamples is the number of labeled source samples the
	// baseline required on device (LD-BN-ADAPT needs zero).
	LabeledSourceSamples int
	// UpdatedParams is the number of parameters touched per step (the
	// full model).
	UpdatedParams int
}

// Result summarizes a baseline adaptation run.
type Result struct {
	// EpochLosses records the mean combined loss per epoch.
	EpochLosses []float64
	// FinalInertia is the K-means inertia of the last encoding pass.
	FinalInertia float64
	// PseudoLabelsAccepted counts confident target rows used.
	PseudoLabelsAccepted int64
	// Cost tallies the computational work.
	Cost Cost
}

// Adapter runs the baseline against a deployed model.
type Adapter struct {
	model *ufld.Model
	cfg   Config
}

// New wires the baseline to a model.
func New(m *ufld.Model, cfg Config) *Adapter { return &Adapter{model: m, cfg: cfg} }

// Name identifies the baseline (the paper's "CARLANE SOTA").
func (a *Adapter) Name() string { return "CARLANE-SOTA" }

// embedAll computes embeddings for every sample of a dataset.
func (a *Adapter) embedAll(ds *ufld.Dataset, cost *Cost) *tensor.Tensor {
	n := ds.Len()
	dim := a.model.Backbone().OutChannels()
	out := tensor.New(n, dim)
	bs := a.cfg.BatchSize
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x := ufld.Images(a.model.Cfg, ds.Samples, idx)
		emb := a.model.Embed(x, nn.Eval)
		copy(out.Data[lo*dim:hi*dim], emb.Data)
		cost.BackboneForwards += int64(hi - lo)
	}
	return out
}

// Run performs the full baseline adaptation: semantic encoding with
// K-means, knowledge transfer, pseudo-labeling and multi-epoch
// full-parameter retraining using labeled source AND unlabeled target
// data.
func (a *Adapter) Run(source, target *ufld.Dataset, rng *tensor.RNG) (*Result, error) {
	if source.Len() == 0 || target.Len() == 0 {
		return nil, fmt.Errorf("sota: empty source or target dataset")
	}
	if a.cfg.Epochs < 1 || a.cfg.BatchSize < 1 {
		return nil, fmt.Errorf("sota: bad config %+v", a.cfg)
	}
	res := &Result{}
	res.Cost.LabeledSourceSamples = source.Len()
	res.Cost.UpdatedParams = nn.ParamCount(a.model.Params())
	opt := nn.NewAdam(a.cfg.LR)
	params := a.model.Params()
	m := a.model
	cfg := m.Cfg

	for epoch := 0; epoch < a.cfg.Epochs; epoch++ {
		// Step (i): semantic encoding — embeddings + K-means on the
		// source domain, recomputed every epoch as the features move.
		srcEmb := a.embedAll(source, &res.Cost)
		k := a.cfg.Clusters
		if k > source.Len() {
			k = source.Len()
		}
		km, err := kmeans.Run(srcEmb, kmeans.DefaultConfig(k), rng.Split())
		if err != nil {
			return nil, fmt.Errorf("sota: k-means: %w", err)
		}
		res.FinalInertia = km.Inertia
		res.Cost.KMeansPointIters += int64(km.Iterations) * int64(source.Len()) * int64(k)

		epochLoss := 0.0
		batches := 0
		perm := rng.Perm(source.Len())
		tgtPerm := rng.Perm(target.Len())
		tgtPos := 0
		for lo := 0; lo < len(perm); lo += a.cfg.BatchSize {
			hi := lo + a.cfg.BatchSize
			if hi > len(perm) {
				hi = len(perm)
			}
			srcIdx := perm[lo:hi]

			// Source pass: supervised UFLD objective (labeled source
			// data required on device — a key cost of this baseline).
			nn.ZeroGrads(params)
			x, targets := ufld.Batch(cfg, source.Samples, srcIdx)
			logits := m.Forward(x, nn.Train)
			loss, grad := nn.CrossEntropyRows(logits, targets)
			sl, sg := ufld.SimilarityLoss(cfg, logits, len(srcIdx))
			loss += 0.1 * sl
			tensor.AxpyInPlace(grad, 0.1, sg)
			m.Backward(grad)
			res.Cost.FullForwards += int64(len(srcIdx))
			res.Cost.FullBackwards += int64(len(srcIdx))

			// Target pass (ii): knowledge transfer — pull target
			// embeddings toward their assigned source centroid.
			tgtIdx := make([]int, 0, a.cfg.BatchSize)
			for len(tgtIdx) < a.cfg.BatchSize {
				tgtIdx = append(tgtIdx, tgtPerm[tgtPos%len(tgtPerm)])
				tgtPos++
			}
			tx := ufld.Images(cfg, target.Samples, tgtIdx)
			feats := m.Backbone().Forward(tx, nn.Train)
			n, c, fh, fw := feats.Dim(0), feats.Dim(1), feats.Dim(2), feats.Dim(3)
			hw := fh * fw
			emb := tensor.New(n, c)
			inv := 1.0 / float64(hw)
			for i := 0; i < n*c; i++ {
				s := 0.0
				for _, v := range feats.Data[i*hw : (i+1)*hw] {
					s += float64(v)
				}
				emb.Data[i] = float32(s * inv)
			}
			alignLoss := 0.0
			dEmb := tensor.New(n, c)
			for i := 0; i < n; i++ {
				cl := kmeans.AssignTo(km.Centroids, emb.Data[i*c:(i+1)*c])
				cent := km.Centroids.Data[cl*c : (cl+1)*c]
				for j := 0; j < c; j++ {
					d := float64(emb.Data[i*c+j]) - float64(cent[j])
					alignLoss += d * d
					dEmb.Data[i*c+j] = float32(2 * d * a.cfg.AlignWeight / float64(n*c))
				}
			}
			alignLoss *= a.cfg.AlignWeight / float64(n*c)
			loss += alignLoss
			// Spread the embedding gradient uniformly over the pooled
			// spatial positions and backprop through the backbone.
			dFeats := tensor.New(n, c, fh, fw)
			for i := 0; i < n*c; i++ {
				g := dEmb.Data[i] * float32(inv)
				dst := dFeats.Data[i*hw : (i+1)*hw]
				for j := range dst {
					dst[j] = g
				}
			}
			m.Backbone().Backward(dFeats)
			res.Cost.BackboneForwards += int64(n)
			res.Cost.BackboneBackwards += int64(n)

			// Target pass (iii): pseudo-labels on confident predictions.
			tLogits := m.Forward(tx, nn.Train)
			probs := tensor.SoftmaxRows(tLogits)
			classes := cfg.Classes()
			pseudo := make([]int, tLogits.Dim(0))
			accepted := int64(0)
			for r := 0; r < tLogits.Dim(0); r++ {
				row := probs.Data[r*classes : (r+1)*classes]
				best := 0
				for j, v := range row {
					if v > row[best] {
						best = j
					}
				}
				if float64(row[best]) >= a.cfg.PseudoThreshold {
					pseudo[r] = best
					accepted++
				} else {
					pseudo[r] = -1
				}
			}
			res.PseudoLabelsAccepted += accepted
			if accepted > 0 {
				pl, pgrad := nn.CrossEntropyRows(tLogits, pseudo)
				loss += a.cfg.PseudoWeight * pl
				tensor.ScaleInPlace(pgrad, float32(a.cfg.PseudoWeight))
				m.Backward(pgrad)
				res.Cost.FullBackwards += int64(n)
			}
			res.Cost.FullForwards += int64(n)

			// Step (iii): update ALL parameters.
			if a.cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, a.cfg.ClipNorm)
			}
			opt.Step(params)
			epochLoss += loss
			batches++
		}
		epochLoss /= math.Max(float64(batches), 1)
		res.EpochLosses = append(res.EpochLosses, epochLoss)
		if a.cfg.Log != nil {
			fmt.Fprintf(a.cfg.Log, "sota epoch %d/%d: loss %.4f (pseudo %d)\n",
				epoch+1, a.cfg.Epochs, epochLoss, res.PseudoLabelsAccepted)
		}
	}
	if a.cfg.RecalibrateBN {
		// Final statistics-only pass over the unlabeled target stream:
		// Adapt-mode forwards refresh the BN running statistics without
		// touching any weights (no backward pass, no optimizer step).
		for lo := 0; lo < target.Len(); lo += a.cfg.BatchSize {
			hi := lo + a.cfg.BatchSize
			if hi > target.Len() {
				hi = target.Len()
			}
			idx := make([]int, hi-lo)
			for i := range idx {
				idx[i] = lo + i
			}
			tx := ufld.Images(cfg, target.Samples, idx)
			m.Forward(tx, nn.Adapt)
			res.Cost.FullForwards += int64(hi - lo)
		}
	}
	return res, nil
}
