package sota

import (
	"strings"
	"sync"
	"testing"

	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

type fixture struct {
	bench *carlane.Benchmark
	model *ufld.Model
	rng   *tensor.RNG
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := tensor.NewRNG(77)
		b := carlane.Build(carlane.MoLane, resnet.R18, ufld.Tiny,
			carlane.Sizes{SourceTrain: 48, SourceVal: 16, TargetTrain: 32, TargetVal: 24}, 3)
		m := ufld.MustNewModel(b.Cfg, rng)
		tc := ufld.DefaultTrainConfig()
		tc.Epochs = 6
		if _, err := ufld.TrainSource(m, b.SourceTrain, tc, rng.Split()); err != nil {
			panic(err)
		}
		fix = fixture{bench: b, model: m, rng: rng}
	})
	return &fix
}

func TestName(t *testing.T) {
	f := getFixture(t)
	if New(f.model, DefaultConfig()).Name() != "CARLANE-SOTA" {
		t.Fatal("name wrong")
	}
}

func TestRunImprovesTargetAccuracy(t *testing.T) {
	f := getFixture(t)
	base := ufld.Evaluate(f.model, f.bench.TargetVal, 8).Accuracy
	m := f.model.Clone(f.rng.Split())
	cfg := DefaultConfig()
	cfg.Epochs = 2
	a := New(m, cfg)
	res, err := a.Run(f.bench.SourceTrain, f.bench.TargetTrain, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	after := ufld.Evaluate(m, f.bench.TargetVal, 8).Accuracy
	if after <= base {
		t.Fatalf("SOTA baseline did not improve target accuracy: %.4f → %.4f", base, after)
	}
	if len(res.EpochLosses) != 2 {
		t.Fatalf("epoch losses %v", res.EpochLosses)
	}
}

func TestCostAccounting(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	cfg := DefaultConfig()
	cfg.Epochs = 1
	a := New(m, cfg)
	res, err := a.Run(f.bench.SourceTrain, f.bench.TargetTrain, tensor.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cost
	// Every source sample passes through the full model once per epoch.
	if c.FullForwards < int64(f.bench.SourceTrain.Len()) {
		t.Fatalf("FullForwards %d too low", c.FullForwards)
	}
	if c.FullBackwards < int64(f.bench.SourceTrain.Len()) {
		t.Fatalf("FullBackwards %d too low", c.FullBackwards)
	}
	// Embedding pass covers the source set at least once per epoch.
	if c.BackboneForwards < int64(f.bench.SourceTrain.Len()) {
		t.Fatalf("BackboneForwards %d too low", c.BackboneForwards)
	}
	if c.KMeansPointIters <= 0 {
		t.Fatal("k-means work not recorded")
	}
	// The baseline's two defining costs versus LD-BN-ADAPT:
	if c.LabeledSourceSamples != f.bench.SourceTrain.Len() {
		t.Fatal("labeled source requirement not recorded")
	}
	if c.UpdatedParams != len(paramsFlat(m)) {
		t.Fatalf("UpdatedParams %d, want full model %d", c.UpdatedParams, len(paramsFlat(m)))
	}
}

// paramsFlat returns a flat view of all model parameter scalars.
func paramsFlat(m *ufld.Model) []float32 {
	var out []float32
	for _, p := range m.Params() {
		out = append(out, p.Value.Data...)
	}
	return out
}

func TestRunUpdatesAllParameterKinds(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	convBefore := m.ConvParams()[0].Value.Clone()
	fcBefore := m.FCParams()[0].Value.Clone()
	bnBefore := m.BNParams()[0].Value.Clone()
	cfg := DefaultConfig()
	cfg.Epochs = 1
	if _, err := New(m, cfg).Run(f.bench.SourceTrain, f.bench.TargetTrain, tensor.NewRNG(11)); err != nil {
		t.Fatal(err)
	}
	if m.ConvParams()[0].Value.AllClose(convBefore, 0) {
		t.Fatal("conv weights not updated — baseline must retrain the full model")
	}
	if m.FCParams()[0].Value.AllClose(fcBefore, 0) {
		t.Fatal("fc weights not updated")
	}
	if m.BNParams()[0].Value.AllClose(bnBefore, 0) {
		t.Fatal("bn params not updated")
	}
}

func TestRunRejectsEmptyData(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	empty := &ufld.Dataset{Name: "empty"}
	if _, err := New(m, DefaultConfig()).Run(empty, f.bench.TargetTrain, tensor.NewRNG(1)); err == nil {
		t.Fatal("empty source accepted")
	}
	if _, err := New(m, DefaultConfig()).Run(f.bench.SourceTrain, empty, tensor.NewRNG(1)); err == nil {
		t.Fatal("empty target accepted")
	}
	bad := DefaultConfig()
	bad.Epochs = 0
	if _, err := New(m, bad).Run(f.bench.SourceTrain, f.bench.TargetTrain, tensor.NewRNG(1)); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestLogOutput(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	var sb strings.Builder
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.Log = &sb
	if _, err := New(m, cfg).Run(f.bench.SourceTrain, f.bench.TargetTrain, tensor.NewRNG(12)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sota epoch 1/1") {
		t.Fatalf("log output missing: %q", sb.String())
	}
}

func TestEmbedShape(t *testing.T) {
	f := getFixture(t)
	x := ufld.Images(f.model.Cfg, f.bench.SourceTrain.Samples, []int{0, 1, 2})
	emb := f.model.Embed(x, 0 /* Train */)
	if emb.Dim(0) != 3 || emb.Dim(1) != f.model.Backbone().OutChannels() {
		t.Fatalf("embedding shape %v", emb.Shape())
	}
}
