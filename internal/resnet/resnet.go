// Package resnet builds the ResNet-18 and ResNet-34 backbones used by
// the UFLD lane detector (the two models evaluated in the paper).
// Width and stem geometry are configurable so that the same code runs
// both the full-scale architecture (for the Orin performance model) and
// the reduced "repro" profile that pure-Go CPU training can handle.
package resnet

import (
	"fmt"

	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/tensor"
)

// Variant selects the residual stage layout.
type Variant int

const (
	// R18 is ResNet-18: stages of [2, 2, 2, 2] basic blocks.
	R18 Variant = 18
	// R34 is ResNet-34: stages of [3, 4, 6, 3] basic blocks.
	R34 Variant = 34
)

// Blocks returns the per-stage block counts for the variant.
func (v Variant) Blocks() [4]int {
	switch v {
	case R18:
		return [4]int{2, 2, 2, 2}
	case R34:
		return [4]int{3, 4, 6, 3}
	}
	panic(fmt.Sprintf("resnet: unknown variant %d", int(v)))
}

// String returns "R-18" / "R-34", matching the paper's labels.
func (v Variant) String() string { return fmt.Sprintf("R-%d", int(v)) }

// Config parameterizes a backbone.
type Config struct {
	// Variant is R18 or R34.
	Variant Variant
	// InChannels is the image channel count (3 for RGB).
	InChannels int
	// BaseWidth is the channel count of the first stage (64 in the
	// full-scale architecture; the repro profile uses 8).
	BaseWidth int
	// StemStride is the stride of the stem convolution (2 full-scale,
	// 1 for small repro inputs).
	StemStride int
	// StemPool adds the 3×3/2 max-pool after the stem (full-scale
	// architecture only).
	StemPool bool
}

// FullScale returns the configuration of the published architecture.
func FullScale(v Variant) Config {
	return Config{Variant: v, InChannels: 3, BaseWidth: 64, StemStride: 2, StemPool: true}
}

// Repro returns the reduced configuration used for CPU training.
func Repro(v Variant) Config {
	return Config{Variant: v, InChannels: 3, BaseWidth: 8, StemStride: 1, StemPool: false}
}

// BasicBlock is the two-convolution residual block of ResNet-18/34:
// out = ReLU(BN(conv(ReLU(BN(conv(x))))) + shortcut(x)).
type BasicBlock struct {
	name  string
	conv1 *nn.Conv2D
	bn1   *nn.BatchNorm2D
	relu1 *nn.ReLU
	conv2 *nn.Conv2D
	bn2   *nn.BatchNorm2D
	// Downsample path (1×1 conv + BN) when stride ≠ 1 or channels grow.
	dsConv *nn.Conv2D
	dsBN   *nn.BatchNorm2D

	lastMask []bool     // final ReLU mask
	adaptOut nn.Scratch // Adapt-mode residual-add output
	dMask    nn.Scratch // backward masked-gradient staging
}

// NewBasicBlock constructs a residual block mapping inC→outC with the
// given stride on the first convolution.
func NewBasicBlock(name string, inC, outC, stride int, rng *tensor.RNG) *BasicBlock {
	g1 := tensor.ConvGeom{KH: 3, KW: 3, SH: stride, SW: stride, PH: 1, PW: 1}
	g2 := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}
	b := &BasicBlock{
		name:  name,
		conv1: nn.NewConv2D(name+".conv1", inC, outC, g1, false, rng),
		bn1:   nn.NewBatchNorm2D(name+".bn1", outC),
		relu1: nn.NewReLU(name + ".relu1"),
		conv2: nn.NewConv2D(name+".conv2", outC, outC, g2, false, rng),
		bn2:   nn.NewBatchNorm2D(name+".bn2", outC),
	}
	if stride != 1 || inC != outC {
		gd := tensor.ConvGeom{KH: 1, KW: 1, SH: stride, SW: stride}
		b.dsConv = nn.NewConv2D(name+".ds.conv", inC, outC, gd, false, rng)
		b.dsBN = nn.NewBatchNorm2D(name+".ds.bn", outC)
	}
	return b
}

// Name returns the block identifier.
func (b *BasicBlock) Name() string { return b.name }

// Params returns all trainable parameters of the block.
func (b *BasicBlock) Params() []*nn.Param {
	out := append([]*nn.Param{}, b.conv1.Params()...)
	out = append(out, b.bn1.Params()...)
	out = append(out, b.conv2.Params()...)
	out = append(out, b.bn2.Params()...)
	if b.dsConv != nil {
		out = append(out, b.dsConv.Params()...)
		out = append(out, b.dsBN.Params()...)
	}
	return out
}

// BatchNorms exposes the block's BN layers to the adaptation code.
func (b *BasicBlock) BatchNorms() []*nn.BatchNorm2D {
	out := []*nn.BatchNorm2D{b.bn1, b.bn2}
	if b.dsBN != nil {
		out = append(out, b.dsBN)
	}
	return out
}

// Forward computes the residual block output.
func (b *BasicBlock) Forward(x *tensor.Tensor, mode nn.Mode) *tensor.Tensor {
	main := b.conv1.Forward(x, mode)
	main = b.bn1.Forward(main, mode)
	main = b.relu1.Forward(main, mode)
	main = b.conv2.Forward(main, mode)
	main = b.bn2.Forward(main, mode)
	short := x
	if b.dsConv != nil {
		short = b.dsConv.Forward(x, mode)
		short = b.dsBN.Forward(short, mode)
	}
	if mode.IsInfer() {
		// Serving fast path: the residual add and final ReLU run in
		// place on bn2's scratch output; no mask is cached.
		b.lastMask = nil
		tensor.AddInPlace(main, short)
		for i, v := range main.Data {
			if v <= 0 {
				main.Data[i] = 0
			}
		}
		return main
	}
	var out *tensor.Tensor
	if mode == nn.Adapt {
		out = b.adaptOut.For(main.Shape()...)
	} else {
		out = tensor.New(main.Shape()...)
	}
	if cap(b.lastMask) < out.Size() {
		b.lastMask = make([]bool, out.Size())
	}
	b.lastMask = b.lastMask[:out.Size()]
	for i := range out.Data {
		v := main.Data[i] + short.Data[i]
		if v > 0 {
			out.Data[i] = v
			b.lastMask[i] = true
		} else {
			out.Data[i] = 0
			b.lastMask[i] = false
		}
	}
	return out
}

// InvalidateInt8 drops the block's cached int8 weights (both branches).
func (b *BasicBlock) InvalidateInt8() {
	b.conv1.InvalidateInt8()
	b.conv2.InvalidateInt8()
	if b.dsConv != nil {
		b.dsConv.InvalidateInt8()
	}
}

// Backward propagates through both branches and sums the input grads.
func (b *BasicBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastMask == nil {
		panic(fmt.Sprintf("resnet: %s: Backward before Forward", b.name))
	}
	d := b.dMask.For(grad.Shape()...)
	for i, v := range grad.Data {
		if b.lastMask[i] {
			d.Data[i] = v
		} else {
			d.Data[i] = 0
		}
	}
	// Main branch.
	dm := b.bn2.Backward(d)
	dm = b.conv2.Backward(dm)
	dm = b.relu1.Backward(dm)
	dm = b.bn1.Backward(dm)
	dm = b.conv1.Backward(dm)
	// Shortcut branch.
	ds := d
	if b.dsConv != nil {
		ds = b.dsBN.Backward(d)
		ds = b.dsConv.Backward(ds)
	}
	return tensor.AddInPlace(dm, ds)
}

// ResNet is the backbone: stem followed by four residual stages. Its
// output is a feature map [n, 8·BaseWidth, h/k, w/k].
type ResNet struct {
	// Cfg is the construction configuration.
	Cfg Config
	net *nn.Sequential
}

// New builds a backbone per cfg with weights drawn from rng.
func New(cfg Config, rng *tensor.RNG) *ResNet {
	stem := []nn.Layer{
		nn.NewConv2D("stem.conv", cfg.InChannels, cfg.BaseWidth,
			tensor.ConvGeom{KH: 3, KW: 3, SH: cfg.StemStride, SW: cfg.StemStride, PH: 1, PW: 1}, false, rng),
		nn.NewBatchNorm2D("stem.bn", cfg.BaseWidth),
		nn.NewReLU("stem.relu"),
	}
	if cfg.StemPool {
		stem = append(stem, nn.NewMaxPool2D("stem.pool",
			tensor.ConvGeom{KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1}))
	}
	layers := stem
	blocks := cfg.Variant.Blocks()
	inC := cfg.BaseWidth
	for stage := 0; stage < 4; stage++ {
		outC := cfg.BaseWidth << stage
		for blk := 0; blk < blocks[stage]; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			name := fmt.Sprintf("layer%d.block%d", stage+1, blk)
			layers = append(layers, NewBasicBlock(name, inC, outC, stride, rng))
			inC = outC
		}
	}
	return &ResNet{Cfg: cfg, net: nn.NewSequential(fmt.Sprintf("resnet%d", int(cfg.Variant)), layers...)}
}

// Name returns e.g. "resnet18".
func (r *ResNet) Name() string { return r.net.Name() }

// Forward runs the backbone.
func (r *ResNet) Forward(x *tensor.Tensor, mode nn.Mode) *tensor.Tensor {
	return r.net.Forward(x, mode)
}

// Backward propagates through the backbone.
func (r *ResNet) Backward(grad *tensor.Tensor) *tensor.Tensor { return r.net.Backward(grad) }

// InvalidateInt8 drops every cached int8 weight table in the backbone.
func (r *ResNet) InvalidateInt8() { r.net.InvalidateInt8() }

// Params returns all backbone parameters.
func (r *ResNet) Params() []*nn.Param { return r.net.Params() }

// BatchNorms returns every BN layer in the backbone.
func (r *ResNet) BatchNorms() []*nn.BatchNorm2D { return r.net.BatchNorms() }

// OutChannels returns the channel count of the final feature map.
func (r *ResNet) OutChannels() int { return r.Cfg.BaseWidth * 8 }

// OutSpatial returns the feature-map size for an input of h×w.
func (r *ResNet) OutSpatial(h, w int) (oh, ow int) {
	oh, ow = h, w
	div := func(v, s int) int { return (v + s - 1) / s }
	oh, ow = div(oh, r.Cfg.StemStride), div(ow, r.Cfg.StemStride)
	if r.Cfg.StemPool {
		oh, ow = div(oh, 2), div(ow, 2)
	}
	for i := 0; i < 3; i++ { // stages 2..4 stride 2
		oh, ow = div(oh, 2), div(ow, 2)
	}
	return oh, ow
}
