package resnet

// This file contains the analytic cost model of the backbone: layer
// shapes, FLOPs, parameter and byte counts computed *without*
// allocating weights. The Orin performance model uses it to price the
// full-scale (288×800, width-64) architecture, which is never actually
// executed on the CPU.

// LayerCost describes the cost of one layer at a given input geometry.
type LayerCost struct {
	// Name identifies the layer ("layer3.block1.conv2", ...).
	Name string
	// Kind is "conv", "bn", "relu", "pool" or "linear".
	Kind string
	// FLOPs is the forward floating-point operation count (one sample).
	FLOPs int64
	// Params is the trainable parameter count.
	Params int64
	// BNParams is the γ/β subset of Params (non-zero only for BN).
	BNParams int64
	// ActBytes is the size of the layer's output activation in bytes.
	ActBytes int64
	// WeightBytes is the size of the layer's weights in bytes.
	WeightBytes int64
	// OutC, OutH, OutW give the output geometry.
	OutC, OutH, OutW int
}

// ModelCost aggregates the per-layer costs of a network.
type ModelCost struct {
	// Layers lists every layer in forward order.
	Layers []LayerCost
	// OutC, OutH, OutW give the final feature-map geometry.
	OutC, OutH, OutW int
}

// TotalFLOPs sums forward FLOPs over all layers (one sample).
func (m ModelCost) TotalFLOPs() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.FLOPs
	}
	return s
}

// TotalParams sums trainable parameters.
func (m ModelCost) TotalParams() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.Params
	}
	return s
}

// TotalBNParams sums BatchNorm γ/β parameters. The paper's key
// observation — BN parameters are ≈1 % of the model — is checked
// against this number in the tests.
func (m ModelCost) TotalBNParams() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.BNParams
	}
	return s
}

// TotalActBytes sums activation output bytes (one sample).
func (m ModelCost) TotalActBytes() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.ActBytes
	}
	return s
}

// TotalWeightBytes sums weight bytes.
func (m ModelCost) TotalWeightBytes() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.WeightBytes
	}
	return s
}

// convCost prices a conv layer.
func convCost(name string, inC, outC, kh, kw, stride, h, w int) (LayerCost, int, int) {
	oh := (h + 2*(kh/2) - kh) / stride // symmetric same-style padding kh/2
	oh++
	ow := (w+2*(kw/2)-kw)/stride + 1
	params := int64(outC) * int64(inC) * int64(kh) * int64(kw)
	return LayerCost{
		Name: name, Kind: "conv",
		FLOPs:       2 * int64(outC) * int64(oh) * int64(ow) * int64(inC) * int64(kh) * int64(kw),
		Params:      params,
		ActBytes:    4 * int64(outC) * int64(oh) * int64(ow),
		WeightBytes: 4 * params,
		OutC:        outC, OutH: oh, OutW: ow,
	}, oh, ow
}

// bnCost prices a BatchNorm layer (per-element normalize+affine ≈ 4
// FLOPs, plus the statistics reductions ≈ 4 more in adapt mode; we
// charge the inference cost here and let the Orin model scale the
// adaptation phase).
func bnCost(name string, c, h, w int) LayerCost {
	params := int64(2 * c)
	return LayerCost{
		Name: name, Kind: "bn",
		FLOPs:       4 * int64(c) * int64(h) * int64(w),
		Params:      params,
		BNParams:    params,
		ActBytes:    4 * int64(c) * int64(h) * int64(w),
		WeightBytes: 4 * params,
		OutC:        c, OutH: h, OutW: w,
	}
}

// reluCost prices a ReLU layer.
func reluCost(name string, c, h, w int) LayerCost {
	return LayerCost{
		Name: name, Kind: "relu",
		FLOPs:    int64(c) * int64(h) * int64(w),
		ActBytes: 4 * int64(c) * int64(h) * int64(w),
		OutC:     c, OutH: h, OutW: w,
	}
}

// Describe prices a backbone per cfg on an h×w input, without building
// it. The layer list matches New's construction exactly.
func Describe(cfg Config, h, w int) ModelCost {
	var m ModelCost
	// Stem.
	lc, oh, ow := convCost("stem.conv", cfg.InChannels, cfg.BaseWidth, 3, 3, cfg.StemStride, h, w)
	m.Layers = append(m.Layers, lc)
	m.Layers = append(m.Layers, bnCost("stem.bn", cfg.BaseWidth, oh, ow))
	m.Layers = append(m.Layers, reluCost("stem.relu", cfg.BaseWidth, oh, ow))
	if cfg.StemPool {
		ph := (oh+2*1-3)/2 + 1
		pw := (ow+2*1-3)/2 + 1
		m.Layers = append(m.Layers, LayerCost{
			Name: "stem.pool", Kind: "pool",
			FLOPs:    9 * int64(cfg.BaseWidth) * int64(ph) * int64(pw),
			ActBytes: 4 * int64(cfg.BaseWidth) * int64(ph) * int64(pw),
			OutC:     cfg.BaseWidth, OutH: ph, OutW: pw,
		})
		oh, ow = ph, pw
	}
	inC := cfg.BaseWidth
	blocks := cfg.Variant.Blocks()
	for stage := 0; stage < 4; stage++ {
		outC := cfg.BaseWidth << stage
		for blk := 0; blk < blocks[stage]; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			prefix := blockName(stage, blk)
			lc1, bh, bw := convCost(prefix+".conv1", inC, outC, 3, 3, stride, oh, ow)
			m.Layers = append(m.Layers, lc1,
				bnCost(prefix+".bn1", outC, bh, bw),
				reluCost(prefix+".relu1", outC, bh, bw))
			lc2, bh2, bw2 := convCost(prefix+".conv2", outC, outC, 3, 3, 1, bh, bw)
			m.Layers = append(m.Layers, lc2, bnCost(prefix+".bn2", outC, bh2, bw2))
			if stride != 1 || inC != outC {
				lcd, _, _ := convCost(prefix+".ds.conv", inC, outC, 1, 1, stride, oh, ow)
				m.Layers = append(m.Layers, lcd, bnCost(prefix+".ds.bn", outC, bh2, bw2))
			}
			m.Layers = append(m.Layers, reluCost(prefix+".relu2", outC, bh2, bw2))
			oh, ow, inC = bh2, bw2, outC
		}
	}
	m.OutC, m.OutH, m.OutW = inC, oh, ow
	return m
}

func blockName(stage, blk int) string {
	return "layer" + string(rune('1'+stage)) + ".block" + string(rune('0'+blk))
}
