package resnet

import (
	"math"
	"testing"

	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/tensor"
)

func TestVariantBlocks(t *testing.T) {
	if R18.Blocks() != [4]int{2, 2, 2, 2} {
		t.Fatal("R18 layout wrong")
	}
	if R34.Blocks() != [4]int{3, 4, 6, 3} {
		t.Fatal("R34 layout wrong")
	}
	if R18.String() != "R-18" || R34.String() != "R-34" {
		t.Fatal("variant names wrong")
	}
}

func TestForwardShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := New(Repro(R18), rng)
	x := tensor.New(2, 3, 32, 80)
	y := net.Forward(x, nn.Eval)
	oh, ow := net.OutSpatial(32, 80)
	if y.Dim(0) != 2 || y.Dim(1) != net.OutChannels() || y.Dim(2) != oh || y.Dim(3) != ow {
		t.Fatalf("output %v, want [2,%d,%d,%d]", y.Shape(), net.OutChannels(), oh, ow)
	}
	if oh != 4 || ow != 10 {
		t.Fatalf("OutSpatial = %d,%d, want 4,10 for 32x80 repro stem", oh, ow)
	}
}

func TestFullScaleStemGeometry(t *testing.T) {
	// Full-scale stem (stride 2 + pool) plus three stride-2 stages gives
	// a /32 reduction — the canonical ResNet downsampling.
	rng := tensor.NewRNG(2)
	cfg := FullScale(R18)
	cfg.BaseWidth = 4 // keep the test cheap; geometry is width-independent
	net := New(cfg, rng)
	oh, ow := net.OutSpatial(64, 128)
	if oh != 2 || ow != 4 {
		t.Fatalf("OutSpatial = %d,%d, want 2,4", oh, ow)
	}
	y := net.Forward(tensor.New(1, 3, 64, 128), nn.Eval)
	if y.Dim(2) != oh || y.Dim(3) != ow {
		t.Fatalf("forward %v disagrees with OutSpatial %d,%d", y.Shape(), oh, ow)
	}
}

func TestR34HasMoreParamsThanR18(t *testing.T) {
	rng := tensor.NewRNG(3)
	p18 := nn.ParamCount(New(Repro(R18), rng).Params())
	p34 := nn.ParamCount(New(Repro(R34), rng).Params())
	if p34 <= p18 {
		t.Fatalf("R34 params %d should exceed R18 %d", p34, p18)
	}
}

func TestBasicBlockIdentityShortcut(t *testing.T) {
	rng := tensor.NewRNG(4)
	blk := NewBasicBlock("b", 4, 4, 1, rng)
	if blk.dsConv != nil {
		t.Fatal("same-shape block must not have a downsample path")
	}
	blk2 := NewBasicBlock("b2", 4, 8, 2, rng)
	if blk2.dsConv == nil {
		t.Fatal("stride-2 block must have a downsample path")
	}
	if len(blk.BatchNorms()) != 2 || len(blk2.BatchNorms()) != 3 {
		t.Fatal("BatchNorms count wrong")
	}
}

func TestBasicBlockGradient(t *testing.T) {
	rng := tensor.NewRNG(5)
	blk := NewBasicBlock("b", 3, 6, 2, rng)
	x := tensor.New(2, 3, 6, 8)
	rng.FillNormal(x, 0, 1)

	w := tensor.New(2, 6, 3, 4)
	rng.FillUniform(w, -1, 1)
	loss := func() float64 {
		return tensor.Dot(blk.Forward(x, nn.Eval), w)
	}
	nn.ZeroGrads(blk.Params())
	y := blk.Forward(x, nn.Eval)
	if y.Dim(1) != 6 || y.Dim(2) != 3 || y.Dim(3) != 4 {
		t.Fatalf("block output %v", y.Shape())
	}
	dx := blk.Backward(w)
	// Check input gradient at a few coordinates by central differences.
	eps := float32(1e-2)
	for _, i := range []int{0, 17, 100, x.Size() - 1} {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * float64(eps))
		if math.Abs(num-float64(dx.Data[i])) > 2e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("input grad mismatch at %d: analytic %v numeric %v", i, dx.Data[i], num)
		}
	}
	// Check one conv weight and one BN gamma gradient.
	for _, p := range []*nn.Param{blk.conv1.Weight, blk.bn2.Gamma} {
		idx := 0
		orig := p.Value.Data[idx]
		p.Value.Data[idx] = orig + eps
		lp := loss()
		p.Value.Data[idx] = orig - eps
		lm := loss()
		p.Value.Data[idx] = orig
		num := (lp - lm) / (2 * float64(eps))
		if math.Abs(num-float64(p.Grad.Data[idx])) > 3e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("%s grad mismatch: analytic %v numeric %v", p.Name, p.Grad.Data[idx], num)
		}
	}
}

func TestBackboneBNDiscovery(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := New(Repro(R18), rng)
	bns := net.BatchNorms()
	// Stem BN + 8 blocks × 2 + 3 downsample BNs = 20.
	if len(bns) != 20 {
		t.Fatalf("R18 BN count = %d, want 20", len(bns))
	}
	net34 := New(Repro(R34), rng)
	// Stem + 16 blocks × 2 + 3 downsample = 36.
	if got := len(net34.BatchNorms()); got != 36 {
		t.Fatalf("R34 BN count = %d, want 36", got)
	}
}

func TestDescribeMatchesBuiltModel(t *testing.T) {
	rng := tensor.NewRNG(7)
	for _, v := range []Variant{R18, R34} {
		cfg := Repro(v)
		net := New(cfg, rng)
		cost := Describe(cfg, 32, 80)
		if got, want := cost.TotalParams(), int64(nn.ParamCount(net.Params())); got != want {
			t.Fatalf("%v: Describe params %d, built model %d", v, got, want)
		}
		var bnWant int64
		for _, bn := range net.BatchNorms() {
			bnWant += int64(bn.C * 2)
		}
		if got := cost.TotalBNParams(); got != bnWant {
			t.Fatalf("%v: Describe BN params %d, built model %d", v, got, bnWant)
		}
		oh, ow := net.OutSpatial(32, 80)
		if cost.OutH != oh || cost.OutW != ow || cost.OutC != net.OutChannels() {
			t.Fatalf("%v: Describe geometry %dx%dx%d, model %dx%dx%d",
				v, cost.OutC, cost.OutH, cost.OutW, net.OutChannels(), oh, ow)
		}
	}
}

func TestBNParamsAreAboutOnePercentFullScale(t *testing.T) {
	// The paper's motivation: "BN parameters typically only comprise of
	// 1% of the total model parameters".
	for _, v := range []Variant{R18, R34} {
		cost := Describe(FullScale(v), 288, 800)
		frac := float64(cost.TotalBNParams()) / float64(cost.TotalParams())
		if frac <= 0 || frac > 0.02 {
			t.Fatalf("%v: BN fraction %.4f, want ≤ 2%%", v, frac)
		}
	}
}

func TestFullScaleFLOPsOrdering(t *testing.T) {
	f18 := Describe(FullScale(R18), 288, 800).TotalFLOPs()
	f34 := Describe(FullScale(R34), 288, 800).TotalFLOPs()
	if f34 <= f18 {
		t.Fatalf("R34 FLOPs %d must exceed R18 %d", f34, f18)
	}
	// Sanity: R18 at 288×800 should be within a factor of two of the
	// canonical ~8.3 GFLOPs estimate (1.8 GFLOPs at 224² scaled by area).
	if f18 < 4e9 || f18 > 16e9 {
		t.Fatalf("R18 FLOPs %v outside plausible band", f18)
	}
}

func TestDescribeFLOPsScaleWithInput(t *testing.T) {
	small := Describe(Repro(R18), 32, 80).TotalFLOPs()
	big := Describe(Repro(R18), 64, 160).TotalFLOPs()
	ratio := float64(big) / float64(small)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("4× area should be ≈4× FLOPs, got %.2f", ratio)
	}
}

func TestTrainReducesLossOnToyTask(t *testing.T) {
	// A 2-class classification on the backbone + GAP + linear head must
	// overfit 8 samples quickly — an end-to-end smoke test of the whole
	// backward path.
	rng := tensor.NewRNG(8)
	cfg := Config{Variant: R18, InChannels: 1, BaseWidth: 4, StemStride: 1}
	net := New(cfg, rng)
	gap := nn.NewGlobalAvgPool("gap")
	head := nn.NewLinear("head", net.OutChannels(), 2, rng)
	params := append(net.Params(), head.Params()...)
	opt := nn.NewSGD(0.05, 0.9, 0)

	x := tensor.New(8, 1, 16, 16)
	targets := make([]int, 8)
	for i := 0; i < 8; i++ {
		cls := i % 2
		targets[i] = cls
		img := x.Data[i*256 : (i+1)*256]
		for j := range img {
			v := rng.Normal(0, 0.3)
			if cls == 1 {
				v += float64(j%16) / 8.0 // horizontal gradient for class 1
			}
			img[j] = float32(v)
		}
	}
	forward := func(mode nn.Mode) *tensor.Tensor {
		return head.Forward(gap.Forward(net.Forward(x, mode), mode), mode)
	}
	first, last := 0.0, 0.0
	for it := 0; it < 12; it++ {
		nn.ZeroGrads(params)
		logits := forward(nn.Train)
		loss, grad := nn.CrossEntropyRows(logits, targets)
		if it == 0 {
			first = loss
		}
		last = loss
		net.Backward(gap.Backward(head.Backward(grad)))
		opt.Step(params)
	}
	if !(last < first*0.7) {
		t.Fatalf("training did not reduce loss: %.4f → %.4f", first, last)
	}
}
