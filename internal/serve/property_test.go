package serve

import (
	"testing"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// testModel builds a small random detector for serving tests.
func testModel(seed uint64) *ufld.Model {
	return ufld.MustNewModel(ufld.Tiny(resnet.R18, 2), tensor.NewRNG(seed))
}

// testSamples renders frames in the MoLane target domain.
func testSamples(cfg ufld.Config, n int, seed uint64) []ufld.Sample {
	ds := carlane.Generate(cfg, carlane.SplitSpec{
		Name:    "serve-test",
		Layouts: []carlane.Layout{carlane.Ego2},
		Domains: []carlane.Domain{carlane.MoReal},
		N:       n,
		Seed:    seed,
	})
	return ds.Samples
}

// perturbedState builds a stream state whose BN snapshot has drifted
// away from the model's, simulating a stream mid-adaptation.
func perturbedState(m *ufld.Model, rng *tensor.RNG) *streamState {
	st := newStreamState(m, adapt.DefaultConfig())
	for j := range st.bn {
		for c := range st.bn[j].Mean {
			st.bn[j].Mean[c] += float32(rng.Range(-0.2, 0.2))
			st.bn[j].Var[c] *= float32(rng.Range(0.7, 1.4))
			st.bn[j].Gamma[c] *= float32(rng.Range(0.8, 1.2))
			st.bn[j].Beta[c] += float32(rng.Range(-0.1, 0.1))
		}
	}
	return st
}

// TestPropBatchedForwardMatchesSequential is the engine's numerical
// contract: a coalesced batch of frames from different streams, served
// through the Infer fast path with per-sample BN conditioning, must
// produce exactly the logits that sequential eval-mode Model.Forward
// calls produce with each stream's state installed. The arithmetic is
// designed to be bitwise identical, so the tolerance is zero.
func TestPropBatchedForwardMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{3, 17, 91} {
		rng := tensor.NewRNG(seed)
		m := testModel(seed)
		n := 2 + int(seed%3) // batch sizes 2..4
		samples := testSamples(m.Cfg, n, seed+1)
		states := make([]*streamState, n)
		for i := range states {
			states[i] = perturbedState(m, rng)
		}

		// Batched path: shared-weight replica, per-sample sources.
		replica := m.Replica(rng.Split())
		bns := replica.BatchNorms()
		for j, b := range bns {
			srcs := make([]*nn.BNSource, n)
			for i := range srcs {
				srcs[i] = &states[i].bn[j]
			}
			b.SetSampleSources(srcs)
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		x := ufld.Images(m.Cfg, samples, idx)
		batched := replica.ForwardInfer(x).Clone()
		for _, b := range bns {
			b.SetSampleSources(nil)
		}

		// Sequential reference: plain eval-mode Forward with the
		// stream state installed as the model state.
		ref := m.Clone(rng.Split())
		refBNs := ref.BatchNorms()
		rows := m.Cfg.Groups()
		classes := m.Cfg.Classes()
		for i := 0; i < n; i++ {
			for j, b := range refBNs {
				copy(b.RunningMean.Data, states[i].bn[j].Mean)
				copy(b.RunningVar.Data, states[i].bn[j].Var)
				copy(b.Gamma.Value.Data, states[i].bn[j].Gamma)
				copy(b.Beta.Value.Data, states[i].bn[j].Beta)
			}
			xi := ufld.Images(m.Cfg, samples, []int{i})
			want := ref.Forward(xi, nn.Eval)
			for r := 0; r < rows; r++ {
				for cl := 0; cl < classes; cl++ {
					got := batched.At(i*rows+r, cl)
					exp := want.At(r, cl)
					if got != exp {
						t.Fatalf("seed %d sample %d row %d class %d: batched %g != sequential %g",
							seed, i, r, cl, got, exp)
					}
				}
			}
		}
	}
}

// TestPropInferReusesStorage pins the allocation contract of the fast
// path: the second ForwardInfer call must hand back the same backing
// storage (scratch reuse), while Forward allocates fresh logits.
func TestPropInferReusesStorage(t *testing.T) {
	m := testModel(5)
	samples := testSamples(m.Cfg, 2, 6)
	x := ufld.Images(m.Cfg, samples, []int{0, 1})
	a := m.ForwardInfer(x)
	aPtr := &a.Data[0]
	b := m.ForwardInfer(x)
	if &b.Data[0] != aPtr {
		t.Fatal("ForwardInfer did not reuse its scratch output buffer")
	}
	c := m.Forward(x, nn.Eval)
	if &c.Data[0] == aPtr {
		t.Fatal("Forward must not alias the Infer scratch buffer")
	}
}

// TestReplicaSharesWeights pins the memory contract: replicas alias
// the conv/FC weight tensors and own their BN parameters.
func TestReplicaSharesWeights(t *testing.T) {
	m := testModel(9)
	r := m.Replica(tensor.NewRNG(2))
	mp, rp := m.Params(), r.Params()
	shared, private := 0, 0
	for i := range mp {
		alias := &mp[i].Value.Data[0] == &rp[i].Value.Data[0]
		isBN := false
		for _, suffix := range []string{".gamma", ".beta"} {
			if len(mp[i].Name) > len(suffix) && mp[i].Name[len(mp[i].Name)-len(suffix):] == suffix {
				isBN = true
			}
		}
		switch {
		case isBN && alias:
			t.Fatalf("%s: BN parameter aliased across replicas", mp[i].Name)
		case !isBN && !alias:
			t.Fatalf("%s: weight not shared with replica", mp[i].Name)
		case isBN:
			private++
		default:
			shared++
		}
		if &mp[i].Grad.Data[0] == &rp[i].Grad.Data[0] {
			t.Fatalf("%s: gradient accumulator aliased across replicas", mp[i].Name)
		}
	}
	if shared == 0 || private == 0 {
		t.Fatalf("degenerate parameter split: %d shared, %d private", shared, private)
	}
	// Running statistics must be private too.
	mb, rb := m.BatchNorms(), r.BatchNorms()
	for i := range mb {
		if &mb[i].RunningMean.Data[0] == &rb[i].RunningMean.Data[0] {
			t.Fatalf("%s: running stats aliased across replicas", mb[i].Name())
		}
	}
}
