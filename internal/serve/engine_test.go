package serve

import (
	"testing"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/resnet"
)

// TestEngineServesEveryFrame drives a small fleet through the engine
// and checks the bookkeeping invariants: every frame of every stream
// is served exactly once, adaptation fires exactly once per full
// window, and the aggregates are consistent.
func TestEngineServesEveryFrame(t *testing.T) {
	m := testModel(21)
	const streams, frames = 3, 10
	fleet := SyntheticFleet(m.Cfg, streams, frames, 30, 77)
	e := New(m, Config{
		Variant:    resnet.R18,
		Workers:    2,
		MaxBatch:   4,
		Window:     2 * time.Millisecond,
		AdaptEvery: 2,
		Adapt:      adapt.DefaultConfig(),
	})
	rep := e.Run(fleet)

	if rep.Frames != streams*frames {
		t.Fatalf("served %d frames, want %d", rep.Frames, streams*frames)
	}
	if rep.Batches < 1 || rep.Batches > rep.Frames {
		t.Fatalf("implausible batch count %d", rep.Batches)
	}
	if rep.MeanBatch < 1 || rep.MeanBatch > 4 {
		t.Fatalf("mean batch %f outside [1,4]", rep.MeanBatch)
	}
	for si, sr := range rep.Streams {
		if sr.Frames != frames {
			t.Fatalf("stream %d served %d frames, want %d", si, sr.Frames, frames)
		}
		if want := frames / 2; sr.AdaptSteps != want {
			t.Fatalf("stream %d ran %d adapt steps, want %d", si, sr.AdaptSteps, want)
		}
		if sr.OnlineAccuracy < 0 || sr.OnlineAccuracy > 1 {
			t.Fatalf("stream %d accuracy %f outside [0,1]", si, sr.OnlineAccuracy)
		}
		if sr.MeanLatencyMs <= 0 || sr.P50LatencyMs <= 0 || sr.P99LatencyMs < sr.P50LatencyMs {
			t.Fatalf("stream %d latency summary inconsistent: %+v", si, sr)
		}
		if sr.MaxLatencyMs < sr.P99LatencyMs {
			t.Fatalf("stream %d max latency below p99: %+v", si, sr)
		}
	}
	if rep.ThroughputFPS <= 0 {
		t.Fatal("throughput must be positive")
	}
}

// TestEngineNoAdapt asserts AdaptEvery=0 serves inference-only.
func TestEngineNoAdapt(t *testing.T) {
	m := testModel(22)
	fleet := SyntheticFleet(m.Cfg, 2, 6, 30, 5)
	e := New(m, Config{Workers: 1, MaxBatch: 4, AdaptEvery: 0})
	rep := e.Run(fleet)
	if rep.Frames != 12 {
		t.Fatalf("served %d frames, want 12", rep.Frames)
	}
	for si, sr := range rep.Streams {
		if sr.AdaptSteps != 0 {
			t.Fatalf("stream %d adapted %d times with adaptation disabled", si, sr.AdaptSteps)
		}
	}
}

// TestEngineConcurrentStreams is the race-coverage workload: ≥8
// concurrent streams multiplexed over 4 worker replicas, with
// adaptation enabled so the shared-weights and per-stream-BN paths all
// execute under contention. Run via `go test -race ./internal/serve`.
// The existing internal/tensor matmul worker pool is also exercised
// (inference matmuls cross its parallel threshold) and was audited for
// races along with this test: its row-band partitioning writes
// disjoint dst slices, so no fix was required.
func TestEngineConcurrentStreams(t *testing.T) {
	m := testModel(23)
	const streams, frames = 8, 8
	fleet := SyntheticFleet(m.Cfg, streams, frames, 30, 123)
	e := New(m, Config{
		Workers:    4,
		MaxBatch:   8,
		Window:     time.Millisecond,
		AdaptEvery: 4,
		Adapt:      adapt.DefaultConfig(),
	})
	rep := e.Run(fleet)
	if rep.Frames != streams*frames {
		t.Fatalf("served %d frames, want %d", rep.Frames, streams*frames)
	}
	for si, sr := range rep.Streams {
		if sr.Frames != frames {
			t.Fatalf("stream %d served %d frames, want %d", si, sr.Frames, frames)
		}
		if sr.AdaptSteps != frames/4 {
			t.Fatalf("stream %d ran %d adapt steps, want %d", si, sr.AdaptSteps, frames/4)
		}
	}
}

// TestEngineAdaptationIsPerStream asserts stream isolation: after a
// run, different streams must hold different BN snapshots (they saw
// different data), and all must differ from the source model (they
// adapted at all). This is the per-stream state-isolation contract.
func TestEngineAdaptationIsPerStream(t *testing.T) {
	m := testModel(24)
	fleet := SyntheticFleet(m.Cfg, 2, 8, 30, 9)
	e := New(m, Config{Workers: 2, MaxBatch: 4, AdaptEvery: 2, Adapt: adapt.Config{LR: 1e-2, UseAdam: true}})

	// Run through the internals to keep the states inspectable. Every
	// second frame per stream completes its AdaptEvery=2 window, which
	// the scheduler would tag adaptStep.
	states := make([]*streamState, 2)
	for i := range states {
		states[i] = newStreamState(m, e.cfg.Adapt)
	}
	wk := e.newWorker()
	records := make(chan execRec, 64)
	for fi := 0; fi < 8; fi++ {
		action := adaptNone
		if fi%2 == 1 {
			action = adaptStep
		}
		batch := plannedBatch{frames: []plannedFrame{
			{stream: 0, frame: fleet[0].Frames[fi], action: action, windowed: true},
			{stream: 1, frame: fleet[1].Frames[fi], action: action, windowed: true},
		}}
		wk.serve(batch, states, records)
	}

	diffAB, diffA := 0.0, 0.0
	base := newStreamState(m, e.cfg.Adapt)
	for j := range states[0].bn {
		for c := range states[0].bn[j].Mean {
			dAB := float64(states[0].bn[j].Mean[c] - states[1].bn[j].Mean[c])
			dA := float64(states[0].bn[j].Mean[c] - base.bn[j].Mean[c])
			diffAB += dAB * dAB
			diffA += dA * dA
		}
	}
	if diffA == 0 {
		t.Fatal("stream 0 never adapted its BN statistics")
	}
	if diffAB == 0 {
		t.Fatal("streams share identical adapted state — isolation broken")
	}
	// The source model itself must be untouched by serving.
	for j, b := range m.BatchNorms() {
		for c := range base.bn[j].Mean {
			if b.RunningMean.Data[c] != base.bn[j].Mean[c] {
				t.Fatalf("deployed model's %s running mean mutated by serving", b.Name())
			}
		}
	}
}

// TestSyntheticFleetShapes sanity-checks the fleet generator.
func TestSyntheticFleetShapes(t *testing.T) {
	m := testModel(25)
	fleet := SyntheticFleet(m.Cfg, 3, 5, 30, 1)
	if len(fleet) != 3 {
		t.Fatalf("fleet size %d, want 3", len(fleet))
	}
	for i, src := range fleet {
		if len(src.Frames) != 5 {
			t.Fatalf("stream %d has %d frames, want 5", i, len(src.Frames))
		}
	}
	// Distinct seeds must give distinct first frames.
	a := fleet[0].Frames[0].Sample.Image
	b := fleet[1].Frames[0].Sample.Image
	if a.AllClose(b, 0) {
		t.Fatal("streams render identical frames")
	}
}

// TestRunNaiveBaseline exercises the reference deployment: every frame
// adapts, nothing batches.
func TestRunNaiveBaseline(t *testing.T) {
	m := testModel(26)
	fleet := SyntheticFleet(m.Cfg, 2, 4, 30, 3)
	rep := RunNaive(m, Config{AdaptEvery: 1, Adapt: adapt.DefaultConfig()}, fleet)
	if rep.Frames != 8 {
		t.Fatalf("served %d frames, want 8", rep.Frames)
	}
	if rep.MeanBatch != 1 {
		t.Fatalf("naive baseline batched (mean batch %f)", rep.MeanBatch)
	}
	for si, sr := range rep.Streams {
		if sr.AdaptSteps != 4 {
			t.Fatalf("stream %d: %d adapt steps, want one per frame", si, sr.AdaptSteps)
		}
	}
}
