package serve

import (
	"testing"

	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// TestPropBatchedInt8MatchesSequential is the int8 rung's version of
// the engine's numerical contract (TestPropBatchedForwardMatchesSequential):
// a coalesced batch served through ForwardInferInt8 with per-sample BN
// conditioning must produce exactly the logits that sequential
// single-frame ForwardInferInt8 calls produce with each stream's state
// installed. The float pin tolerates nothing and neither does this
// one — activation scales are per sample and weight scales are batch
// independent, so quantization introduces no cross-stream coupling
// and the tolerance stays zero even on the lossy rung. (The int8-vs-
// float error budget is pinned separately, at the kernel and model
// level; batching is never allowed to add to it.)
func TestPropBatchedInt8MatchesSequential(t *testing.T) {
	for _, seed := range []uint64{5, 23, 87} {
		rng := tensor.NewRNG(seed)
		m := testModel(seed)
		n := 2 + int(seed%3) // batch sizes 2..4
		samples := testSamples(m.Cfg, n, seed+1)
		states := make([]*streamState, n)
		for i := range states {
			states[i] = perturbedState(m, rng)
		}

		// Batched path: shared-weight replica, per-sample sources.
		replica := m.Replica(rng.Split())
		bns := replica.BatchNorms()
		for j, b := range bns {
			srcs := make([]*nn.BNSource, n)
			for i := range srcs {
				srcs[i] = &states[i].bn[j]
			}
			b.SetSampleSources(srcs)
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		x := ufld.Images(m.Cfg, samples, idx)
		batched := replica.ForwardInferInt8(x).Clone()
		for _, b := range bns {
			b.SetSampleSources(nil)
		}

		// Sequential reference: single-frame int8 forwards with the
		// stream state installed as the model state. The clone's weights
		// are bit-identical to the replica's, so its lazy quantization
		// produces the same int8 weights and scales.
		ref := m.Clone(rng.Split())
		refBNs := ref.BatchNorms()
		rows := m.Cfg.Groups()
		classes := m.Cfg.Classes()
		for i := 0; i < n; i++ {
			for j, b := range refBNs {
				copy(b.RunningMean.Data, states[i].bn[j].Mean)
				copy(b.RunningVar.Data, states[i].bn[j].Var)
				copy(b.Gamma.Value.Data, states[i].bn[j].Gamma)
				copy(b.Beta.Value.Data, states[i].bn[j].Beta)
			}
			xi := ufld.Images(m.Cfg, samples, []int{i})
			want := ref.ForwardInferInt8(xi)
			for r := 0; r < rows; r++ {
				for cl := 0; cl < classes; cl++ {
					got := batched.At(i*rows+r, cl)
					exp := want.At(r, cl)
					if got != exp {
						t.Fatalf("seed %d sample %d row %d class %d: batched int8 %g != sequential int8 %g",
							seed, i, r, cl, got, exp)
					}
				}
			}
		}
	}
}
