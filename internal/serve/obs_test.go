package serve

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ldbnadapt/internal/obs"
	"ldbnadapt/internal/stream"
)

// TestTraceFullyShedStream is the dangling-open regression for the
// frame-lifecycle trace: a stream whose every frame goes stale behind
// a hogged worker (the TestSchedFullyShedStreamReports scenario) must
// close every one of its lifecycle intervals with a "shed" end — the
// trace may never hold an open interval once the run finishes, no
// matter how a stream dies.
func TestTraceFullyShedStream(t *testing.T) {
	m := testModel(47)
	fleet := SyntheticFleetSchedules(m.Cfg, []StreamSchedule{
		{Phases: []stream.RatePhase{{Frames: 40, FPS: 200}}},
		{Start: 50 * time.Millisecond, Phases: []stream.RatePhase{{Frames: 6, FPS: 100}}},
	}, 31)
	tr := obs.NewTrace()
	rec := tr.Recorder(0, nil)
	rep := New(m, overloadConfig(stream.DropFrames)).RunObserved(fleet, 0, nil, rec, obs.BoardMetrics{})
	if rep.Streams[1].Frames != 0 || rep.Streams[1].FramesDropped != 6 {
		t.Fatalf("scenario drifted: shed stream served %d, dropped %d", rep.Streams[1].Frames, rep.Streams[1].FramesDropped)
	}

	opens := map[int]map[int]int{} // stream -> frame id -> open count
	shedEnds := 0
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case obs.Begin:
			if opens[ev.Stream] == nil {
				opens[ev.Stream] = map[int]int{}
			}
			opens[ev.Stream][ev.ID]++
		case obs.End:
			if opens[ev.Stream] == nil || opens[ev.Stream][ev.ID] == 0 {
				t.Fatalf("stream %d frame %d ended before it began", ev.Stream, ev.ID)
			}
			opens[ev.Stream][ev.ID]--
			if ev.Stream == 1 {
				if ev.Detail != "shed" {
					t.Fatalf("fully-shed stream's frame %d ended with %q, want \"shed\"", ev.ID, ev.Detail)
				}
				shedEnds++
			}
		}
	}
	for si, frames := range opens {
		for id, n := range frames {
			if n != 0 {
				t.Fatalf("stream %d frame %d left %d dangling opens", si, id, n)
			}
		}
	}
	if shedEnds != 6 {
		t.Fatalf("shed stream closed %d intervals, want all 6", shedEnds)
	}
}

// TestTraceGovernedDeterministic pins single-board trace reproducibility
// and the governor instants: two RunObserved passes over the same
// seeded overload fleet write byte-identical Chrome JSON, and the trace
// carries govern instants with the deciding telemetry and the
// controller's Explain reason.
func TestTraceGovernedDeterministic(t *testing.T) {
	run := func() []byte {
		m := testModel(59)
		fleet := SyntheticFleet(m.Cfg, 3, 24, 30, 59)
		tr := obs.NewTrace()
		rec := tr.Recorder(0, nil)
		New(m, overloadConfig(stream.DropNone)).RunObserved(fleet, 100, escalatingCtl{}, rec, obs.BoardMetrics{})
		var buf bytes.Buffer
		if err := tr.WriteChromeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := run()
	out := string(a)
	if !strings.Contains(out, `"govern"`) || !strings.Contains(out, "why=test-escalate") {
		t.Fatalf("trace has no govern instant with the Explain reason:\n%.2000s", out)
	}
	for _, want := range []string{`"epoch"`, `"batch"`, `"forecast"`, `"frame"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s events", want)
		}
	}
	if b := run(); !bytes.Equal(a, b) {
		t.Fatal("seeded rerun produced a different trace byte stream")
	}
}

// escalatingCtl is a toy governor that stretches the adaptation
// cadence once, so the trace records exactly one controls change; it
// implements Explainer to pin the why= plumbing.
type escalatingCtl struct{}

func (escalatingCtl) Name() string { return "test-escalating" }
func (escalatingCtl) Start(cfg Config) Controls {
	return Controls{Mode: cfg.Mode, Policy: cfg.Policy, AdaptEvery: cfg.AdaptEvery}
}
func (escalatingCtl) Decide(_ EpochStats, cur Controls, _ func(Controls) EpochStats) Controls {
	next := cur
	if next.AdaptEvery < 8 {
		next.AdaptEvery *= 2
	}
	return next
}
func (escalatingCtl) Explain() string { return "test-escalate" }
