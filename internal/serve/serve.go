// Package serve is the multi-stream batched serving engine: it
// multiplexes N simulated camera streams (each an internal/stream
// frame source with its own domain drift) onto a shared worker pool
// with dynamic batching.
//
// Frames arriving within a batching window are coalesced into one
// batched forward pass through the ufld detector's allocation-free
// Infer path, with per-sample BatchNorm conditioning so every frame
// is normalized by its own stream's adapted statistics. After
// inference, per-stream LD-BN-ADAPT updates run against per-stream BN
// snapshots (γ, β, running µ/σ² and optimizer moments), so streams
// adapt to their own domains independently while all heavy
// convolution and FC weights exist exactly once in memory, shared
// read-only across every worker replica and stream.
//
// Latency and deadline accounting are priced by the Orin performance
// model (internal/orin), not by host wall-clock: a frame's priced
// latency is the batching-window wait, plus the amortized per-frame
// share of its coalesced batched forward, plus the amortized
// adaptation share (one adaptation step per AdaptEvery frames per
// stream — the paper's batch-size amortization, which on the Orin GPU
// is free because a small-batch adaptation step costs the same as a
// bs=1 step). Host wall-clock only determines the reported engine
// throughput.
package serve
