// Package serve is the multi-stream batched serving engine: it
// multiplexes N simulated camera streams (each an internal/stream
// frame source with its own domain drift) onto a shared worker pool
// with dynamic batching.
//
// Frames arriving within a batching window are coalesced into one
// batched forward pass through the ufld detector's allocation-free
// Infer path, with per-sample BatchNorm conditioning so every frame
// is normalized by its own stream's adapted statistics. After
// inference, per-stream LD-BN-ADAPT updates run against per-stream BN
// snapshots (γ, β, running µ/σ² and optimizer moments), so streams
// adapt to their own domains independently while all heavy
// convolution and FC weights exist exactly once in memory, shared
// read-only across every worker replica and stream.
//
// Latency and deadline accounting run on an event-time virtual clock
// (sched.go), not host wall-clock: frames enter with their camera
// arrival timestamps, the scheduler tracks per-worker busy intervals
// and per-batch dispatch times priced by the Orin performance model
// (internal/orin), and each frame's latency is its measured queue wait
// plus its amortized share of the batched forward and of any
// adaptation step its window triggered. Because queueing is modeled,
// overload is a first-class scenario: the generalized
// stream.OverloadPolicy decides whether a backlogged stream grows its
// queue without bound (DropNone), sheds adaptation steps (SkipAdapt),
// or sheds stale frames (DropFrames), with queue-depth and shed
// accounting reported per stream. Host wall-clock only determines the
// reported engine throughput.
//
// The engine also runs closed-loop (RunGoverned): planning proceeds in
// control epochs whose windowed telemetry (EpochStats) a Controller —
// see internal/govern — observes to actuate the next epoch's power
// mode, overload policy and adaptation cadence (Controls), with queue,
// worker and adaptation-window state preserved across boundaries. The
// epoch loop itself is exposed as a Session (session.go), so a fleet
// coordinator — see internal/shard — can step many boards in lockstep
// and migrate streams between them at epoch boundaries, handing off
// each stream's adaptation state (DetachStream/AttachStream).
// Energy is accounted throughout: dynamic energy as per-dispatch
// Watts × busy-ms attributed to frames like latency shares, plus the
// board's static rail draw (IdleWatts) over however long it is on —
// the term a governor saves by descending the nvpmodel ladder during
// load lulls.
package serve
