package serve

import (
	"math"
	"testing"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/ufld"
)

// fixedCtl is a test controller that pins one set of controls, used to
// exercise the epoch loop without importing internal/govern (which
// imports serve).
type fixedCtl struct{ c Controls }

func (f fixedCtl) Name() string              { return "fixed" }
func (f fixedCtl) Start(cfg Config) Controls { return f.c }
func (f fixedCtl) Decide(_ EpochStats, cur Controls, _ func(Controls) EpochStats) Controls {
	return cur
}

// TestEnergyHandChecked pins Report energy against Σ(mode.Watts × busy
// interval) on a schedule simple enough to check by hand: one 2 FPS
// stream, MaxBatch 1, one worker, AdaptEvery 3 over 6 frames. Every
// frame dispatches alone the instant it arrives (500 ms period ≫ frame
// cost), so the busy intervals are exactly 6 single-frame forwards
// plus the 2 completed adaptation steps, and the board is on from
// virtual zero to the makespan.
func TestEnergyHandChecked(t *testing.T) {
	m := testModel(61)
	fleet := SyntheticFleet(m.Cfg, 1, 6, 2, 19)
	mode := orin.Mode30W
	e := New(m, Config{
		Workers:    1,
		MaxBatch:   1,
		AdaptEvery: 3,
		Adapt:      adapt.DefaultConfig(),
		Mode:       mode,
	})
	rep := e.Run(fleet)

	cost := ufld.DescribeModel(ufld.FullScale(resnet.R18, m.Cfg.Lanes))
	batchMs := orin.EstimateInferenceBatch("R-18", cost, mode, 1).BatchMs
	stepMs := orin.EstimateAdaptStep(cost, mode)
	wantBusyMs := 6*batchMs + 2*stepMs
	wantBusyMJ := float64(mode.Watts) * wantBusyMs
	if diff := math.Abs(rep.BusyEnergyMJ - wantBusyMJ); diff > 1e-6 {
		t.Fatalf("busy energy %.6f mJ, hand-checked Σ(W×busy) = %.6f mJ", rep.BusyEnergyMJ, wantBusyMJ)
	}
	// The last frame arrives at 2500 ms and its dispatch carries the
	// forward plus the second adaptation step.
	wantMakespanMs := 2500 + batchMs + stepMs
	if diff := math.Abs(rep.VirtualSeconds*1e3 - wantMakespanMs); diff > 1e-6 {
		t.Fatalf("makespan %.3f ms, want %.3f ms", rep.VirtualSeconds*1e3, wantMakespanMs)
	}
	wantIdleMJ := mode.IdleWatts * wantMakespanMs
	if diff := math.Abs(rep.IdleEnergyMJ - wantIdleMJ); diff > 1e-6 {
		t.Fatalf("idle energy %.6f mJ, want IdleWatts × makespan = %.6f mJ", rep.IdleEnergyMJ, wantIdleMJ)
	}
	if diff := math.Abs(rep.EnergyMJ - (wantBusyMJ + wantIdleMJ)); diff > 1e-6 {
		t.Fatalf("total energy %.6f mJ, want busy+idle = %.6f mJ", rep.EnergyMJ, wantBusyMJ+wantIdleMJ)
	}
	if want := rep.EnergyMJ / 1e3 / 6; math.Abs(rep.JPerFrame-want) > 1e-9 {
		t.Fatalf("J/frame %.6f, want %.6f", rep.JPerFrame, want)
	}
}

// TestEnergyFrameAttributionSums: the per-frame energy attributions
// must partition the dynamic energy exactly — Σ over streams of
// StreamReport.EnergyMJ equals Report.BusyEnergyMJ even under
// overload, shedding and partial adaptation windows.
func TestEnergyFrameAttributionSums(t *testing.T) {
	m := testModel(62)
	fleet := BurstyFleet(m.Cfg, 2, 2, 4, 12, 2, 30, 23)
	for _, policy := range []stream.OverloadPolicy{stream.DropNone, stream.SkipAdapt, stream.DropFrames} {
		e := New(m, Config{
			Workers:    1,
			MaxBatch:   4,
			AdaptEvery: 3,
			Adapt:      adapt.DefaultConfig(),
			Mode:       orin.Mode15W,
			Policy:     policy,
		})
		rep := e.Run(fleet)
		sum := 0.0
		for _, sr := range rep.Streams {
			sum += sr.EnergyMJ
		}
		if rel := math.Abs(sum-rep.BusyEnergyMJ) / rep.BusyEnergyMJ; rel > 1e-9 {
			t.Fatalf("%v: Σ stream energy %.6f mJ != busy energy %.6f mJ (rel %.2e)",
				policy, sum, rep.BusyEnergyMJ, rel)
		}
		if rep.EnergyMJ <= rep.BusyEnergyMJ {
			t.Fatalf("%v: total energy %.3f must exceed busy energy %.3f by the static draw",
				policy, rep.EnergyMJ, rep.BusyEnergyMJ)
		}
	}
}

// TestRunGovernedPartitionMatchesOneShot: with controls that never
// change, any epoch partition must reproduce the one-shot schedule's
// virtual accounting exactly — queue state, worker busy intervals and
// open adaptation windows carry across boundaries, and the static
// energy integrates to the same makespan.
func TestRunGovernedPartitionMatchesOneShot(t *testing.T) {
	m := testModel(63)
	fleet := BurstyFleet(m.Cfg, 2, 2, 4, 12, 2, 30, 29)
	cfg := Config{
		Workers:    1,
		MaxBatch:   4,
		Window:     2 * time.Millisecond,
		AdaptEvery: 3,
		Adapt:      adapt.DefaultConfig(),
		Mode:       orin.Mode30W,
		Policy:     stream.DropFrames,
	}
	one := New(m, cfg).Run(fleet)
	for _, epochMs := range []float64{100, 250, 1000} {
		part := New(m, cfg).RunGoverned(fleet, epochMs, fixedCtl{c: Controls{
			Mode: cfg.Mode, Policy: cfg.Policy, AdaptEvery: cfg.AdaptEvery,
		}})
		if part.Frames != one.Frames || part.Batches != one.Batches ||
			part.FramesDropped != one.FramesDropped || part.AdaptsSkipped != one.AdaptsSkipped {
			t.Fatalf("epoch %v ms: counts diverge: %d/%d/%d/%d vs %d/%d/%d/%d", epochMs,
				part.Frames, part.Batches, part.FramesDropped, part.AdaptsSkipped,
				one.Frames, one.Batches, one.FramesDropped, one.AdaptsSkipped)
		}
		for name, pair := range map[string][2]float64{
			"virtual": {part.VirtualSeconds, one.VirtualSeconds},
			"busy":    {part.BusyEnergyMJ, one.BusyEnergyMJ},
			"idle":    {part.IdleEnergyMJ, one.IdleEnergyMJ},
			"total":   {part.EnergyMJ, one.EnergyMJ},
			"p99":     {part.P99LatencyMs, one.P99LatencyMs},
			"miss":    {part.MissRate, one.MissRate},
			"queue":   {part.MeanQueueMs, one.MeanQueueMs},
		} {
			if diff := math.Abs(pair[0] - pair[1]); diff > 1e-6 {
				t.Fatalf("epoch %v ms: %s diverges: %.9f vs %.9f", epochMs, name, pair[0], pair[1])
			}
		}
		if len(part.Epochs) < 2 {
			t.Fatalf("epoch %v ms: expected a multi-epoch trace, got %d", epochMs, len(part.Epochs))
		}
	}
	if len(one.Epochs) != 1 {
		t.Fatalf("one-shot run must report a single epoch, got %d", len(one.Epochs))
	}
}

// TestEpochTelemetryConsistency: the epoch trace must tile the run —
// served/dropped/energy totals across epochs match the report, every
// arrival is counted exactly once, and the backlog telemetry never
// goes negative.
func TestEpochTelemetryConsistency(t *testing.T) {
	m := testModel(64)
	fleet := BurstyFleet(m.Cfg, 2, 2, 4, 12, 2, 30, 31)
	total := 0
	for _, src := range fleet {
		total += len(src.Frames)
	}
	rep := New(m, Config{
		Workers:    1,
		MaxBatch:   4,
		AdaptEvery: 3,
		Adapt:      adapt.DefaultConfig(),
		Mode:       orin.Mode30W,
	}).RunGoverned(fleet, 200, fixedCtl{c: Controls{Mode: orin.Mode30W, AdaptEvery: 3}})
	served, arrived, dropped, busyMJ, idleMJ := 0, 0, 0, 0.0, 0.0
	steps := 0
	for i, es := range rep.Epochs {
		if es.Epoch != i {
			t.Fatalf("epoch %d numbered %d", i, es.Epoch)
		}
		if es.QueueDepth < 0 {
			t.Fatalf("epoch %d backlog %d negative", i, es.QueueDepth)
		}
		if es.DeadlineHitRate < 0 || es.DeadlineHitRate > 1 {
			t.Fatalf("epoch %d hit rate %f", i, es.DeadlineHitRate)
		}
		served += es.Served
		arrived += es.Arrived
		dropped += es.FramesDropped
		steps += es.AdaptSteps
		busyMJ += es.BusyEnergyMJ
		idleMJ += es.IdleEnergyMJ
	}
	if served != rep.Frames {
		t.Fatalf("Σ epoch served %d != report frames %d", served, rep.Frames)
	}
	if arrived != total {
		t.Fatalf("Σ epoch arrived %d != fleet frames %d", arrived, total)
	}
	if dropped != rep.FramesDropped {
		t.Fatalf("Σ epoch dropped %d != report %d", dropped, rep.FramesDropped)
	}
	wantSteps := 0
	for _, sr := range rep.Streams {
		wantSteps += sr.AdaptSteps
	}
	if steps != wantSteps {
		t.Fatalf("Σ epoch adapt steps %d != report %d", steps, wantSteps)
	}
	if diff := math.Abs(busyMJ - rep.BusyEnergyMJ); diff > 1e-6 {
		t.Fatalf("Σ epoch busy energy %.6f != report %.6f", busyMJ, rep.BusyEnergyMJ)
	}
	if diff := math.Abs(idleMJ - rep.IdleEnergyMJ); diff > 1e-6 {
		t.Fatalf("Σ epoch idle energy %.6f != report %.6f", idleMJ, rep.IdleEnergyMJ)
	}
}

// TestNaiveEnergyAccounting: the unbatched baseline prices every frame
// at the full single-frame draw with the board on for the whole
// makespan.
func TestNaiveEnergyAccounting(t *testing.T) {
	m := testModel(65)
	fleet := SyntheticFleet(m.Cfg, 2, 4, 30, 37)
	mode := orin.Mode30W
	rep := RunNaive(m, Config{AdaptEvery: 1, Adapt: adapt.DefaultConfig(), Mode: mode}, fleet)
	cost := ufld.DescribeModel(ufld.FullScale(resnet.R18, m.Cfg.Lanes))
	frameMs := orin.EstimateFrame("R-18", cost, mode, 1).TotalMs
	wantBusy := float64(mode.Watts) * frameMs * 8
	if diff := math.Abs(rep.BusyEnergyMJ - wantBusy); diff > 1e-6 {
		t.Fatalf("naive busy energy %.6f, want %.6f", rep.BusyEnergyMJ, wantBusy)
	}
	wantIdle := mode.IdleWatts * rep.VirtualSeconds * 1e3
	if diff := math.Abs(rep.IdleEnergyMJ - wantIdle); diff > 1e-6 {
		t.Fatalf("naive idle energy %.6f, want %.6f", rep.IdleEnergyMJ, wantIdle)
	}
	if math.Abs(rep.EnergyMJ-(wantBusy+wantIdle)) > 1e-6 || rep.JPerFrame <= 0 {
		t.Fatalf("naive totals inconsistent: %+v", rep)
	}
}
