package serve

import (
	"fmt"
	"runtime"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/forecast"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// Config parameterizes the serving engine.
type Config struct {
	// Variant names the deployed full-scale backbone for Orin pricing.
	Variant resnet.Variant
	// Workers is the number of model replicas serving batches
	// (default GOMAXPROCS). The same count drives both the virtual
	// workers of the event-time scheduler and the host goroutines that
	// execute the planned batches. Replicas share all conv/FC weight
	// tensors.
	Workers int
	// MaxBatch caps how many frames one batched forward coalesces
	// (default 8).
	MaxBatch int
	// Window is the batching grace on the virtual clock: once the
	// oldest queued frame opens a batch, dispatch waits at most this
	// long for the batch to fill (default 2 ms).
	Window time.Duration
	// AdaptEvery runs one LD-BN-ADAPT step per stream every AdaptEvery
	// frames — the paper's batch-size amortization. The step is priced
	// per dispatch (orin.EstimateAdaptStep) and its cost is shared by
	// the frames of the window that triggered it. 0 disables adaptation
	// entirely. A Controller may re-actuate the cadence per epoch.
	AdaptEvery int
	// AdaptBatch is how many of the window's most recent frames feed
	// the adaptation step (default 1, capped at AdaptEvery).
	AdaptBatch int
	// Adapt carries the LD-BN-ADAPT hyperparameters.
	Adapt adapt.Config
	// Mode is the Orin power mode used for pricing (default 60 W). A
	// Controller may re-actuate the mode per epoch.
	Mode orin.PowerMode
	// DeadlineMs is the per-frame budget (default the 30 FPS budget).
	DeadlineMs float64
	// Quantized starts the engine on the int8 inference rung: batched
	// forwards run through nn.InferInt8 and price by the mode's int8
	// table. A Controller may re-actuate quantization per epoch.
	Quantized bool
	// Policy selects what the scheduler sheds when a stream falls
	// behind its camera (default stream.DropNone: nothing — the queue
	// grows without bound under overload). A Controller may re-actuate
	// the policy per epoch.
	Policy stream.OverloadPolicy
	// Backlog is the per-stream backlog cap in camera periods: a frame
	// queued longer than Backlog periods marks its stream as behind,
	// which is when SkipAdapt sheds adaptation steps and DropFrames
	// sheds the stale frames themselves (default 1).
	Backlog int
	// Forecast builds the per-stream arrival-rate forecaster a Session
	// feeds with each epoch's arrival count (default forecast.Default:
	// Holt linear trend). The resulting next-epoch forecasts ride in
	// EpochStats for predictive controllers and the fleet coordinator;
	// a migrating stream's forecaster travels with it in the Handoff.
	Forecast forecast.Factory
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Variant == 0 {
		c.Variant = resnet.R18
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.AdaptBatch <= 0 {
		c.AdaptBatch = 1
	}
	if c.AdaptEvery > 0 && c.AdaptBatch > c.AdaptEvery {
		c.AdaptBatch = c.AdaptEvery
	}
	if c.Mode.Name == "" {
		c.Mode = orin.Mode60W
	}
	if c.DeadlineMs <= 0 {
		c.DeadlineMs = orin.Deadline30FPS
	}
	if c.Backlog <= 0 {
		c.Backlog = 1
	}
	if c.Forecast == nil {
		c.Forecast = forecast.Default
	}
	return c
}

// FrameRecord is the serving outcome of one frame.
type FrameRecord struct {
	// Stream and Index identify the frame.
	Stream, Index int
	// QueueMs is the measured wait from camera arrival to batch
	// dispatch on the scheduler's virtual clock.
	QueueMs float64
	// LatencyMs is the event-time per-frame latency: measured queue
	// wait + amortized batched-forward share + the frame's share of any
	// adaptation step its window triggered.
	LatencyMs float64
	// EnergyMJ is the frame's dynamic energy in millijoules: its
	// amortized share of per-dispatch Watts × busy-ms, under the power
	// mode(s) actually in force when its forward and adaptation work
	// dispatched.
	EnergyMJ float64
	// DeadlineMet reports LatencyMs ≤ deadline.
	DeadlineMet bool
	// Accuracy and Points score the frame against its hidden labels.
	Accuracy float64
	Points   int
	// BatchSize is the size of the coalesced batch that served the
	// frame.
	BatchSize int
}

// StreamReport aggregates one stream's serving outcomes.
type StreamReport struct {
	// Stream is the stream id.
	Stream int
	// Frames is the number of frames served (dropped frames excluded).
	Frames int
	// OnlineAccuracy is the point-weighted accuracy over the stream.
	OnlineAccuracy float64
	// MeanLatencyMs, P50LatencyMs, P99LatencyMs, MaxLatencyMs
	// summarize the priced latency distribution.
	MeanLatencyMs, P50LatencyMs, P99LatencyMs, MaxLatencyMs float64
	// MeanQueueMs and MaxQueueMs summarize the measured queue waits.
	MeanQueueMs, MaxQueueMs float64
	// MaxQueueDepth is the deepest backlog (frames arrived but not yet
	// served) the stream reached on the virtual clock.
	MaxQueueDepth int
	// MissRate is the fraction of served frames over deadline.
	MissRate float64
	// AdaptSteps counts the stream's executed adaptation steps.
	AdaptSteps int
	// FramesDropped counts frames shed by the DropFrames policy.
	FramesDropped int
	// AdaptsSkipped counts due adaptation steps shed by SkipAdapt.
	AdaptsSkipped int
	// EnergyMJ is the stream's dynamic energy in millijoules (the sum
	// of its frames' EnergyMJ shares).
	EnergyMJ float64
}

// Report aggregates a full engine run.
type Report struct {
	// Streams holds per-stream outcomes indexed by stream id.
	Streams []StreamReport
	// Frames is the total served frame count across streams.
	Frames int
	// Batches is the number of coalesced forward passes; MeanBatch is
	// Frames / Batches.
	Batches   int
	MeanBatch float64
	// WallSeconds is the host wall-clock duration of the run and
	// ThroughputFPS the resulting frames/s (host measurement, not Orin
	// pricing).
	WallSeconds   float64
	ThroughputFPS float64
	// VirtualSeconds is the Orin-clock makespan: when the last virtual
	// worker went idle.
	VirtualSeconds float64
	// OnlineAccuracy is the point-weighted accuracy over all streams.
	OnlineAccuracy float64
	// MissRate, P50LatencyMs, P99LatencyMs summarize priced latency
	// over all served frames.
	MissRate                   float64
	P50LatencyMs, P99LatencyMs float64
	// MeanQueueMs and P99QueueMs summarize measured queue waits over
	// all served frames; MaxQueueDepth is the deepest per-stream
	// backlog any stream reached.
	MeanQueueMs, P99QueueMs float64
	MaxQueueDepth           int
	// FramesDropped and AdaptsSkipped total the overload shedding.
	FramesDropped, AdaptsSkipped int
	// BusyEnergyMJ is the run's dynamic energy: Σ over dispatches of
	// Watts(mode at dispatch) × busy interval, in millijoules. It
	// equals the sum of the per-stream EnergyMJ attributions.
	BusyEnergyMJ float64
	// IdleEnergyMJ is the static rail draw: IdleWatts of whatever mode
	// the board was parked at, integrated over the run (per control
	// epoch under a governor, over the makespan otherwise).
	IdleEnergyMJ float64
	// EnergyMJ = BusyEnergyMJ + IdleEnergyMJ, the total energy the
	// deployment drew.
	EnergyMJ float64
	// JPerFrame is the total energy per served frame in joules.
	JPerFrame float64
	// Epochs is the per-control-epoch telemetry trace (one entry for a
	// one-shot Run).
	Epochs []EpochStats
}

// modeTable is the Orin pricing of the engine's batching geometry
// under one power mode and numeric path (float32 or int8 forwards).
type modeTable struct {
	batchEst       []orin.BatchEstimate // index 1..MaxBatch
	adaptPerStepMs float64
}

// tableKey addresses a pricing table: power mode wattage × whether the
// batched forward runs the int8 path. Adaptation steps stay float32 in
// both variants.
type tableKey struct {
	watts int
	quant bool
}

// Engine serves a fleet of camera streams with one shared-weight model.
type Engine struct {
	cfg   Config
	model *ufld.Model

	windowMs float64
	// tables prices every orin.Modes entry (plus the configured mode)
	// in both numeric paths, so per-epoch mode/quantization actuation
	// is a table lookup; def is the configured mode's table.
	tables map[tableKey]*modeTable
	def    *modeTable
}

// New builds an engine around a deployed model. Latency pricing uses
// the full-scale architecture of cfg.Variant, mirroring
// stream.Run's convention of running the repro-scale model
// functionally while pricing the deployed one.
func New(m *ufld.Model, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	cost := ufld.DescribeModel(ufld.FullScale(cfg.Variant, m.Cfg.Lanes))
	e := &Engine{
		cfg:      cfg,
		model:    m,
		windowMs: float64(cfg.Window) / float64(time.Millisecond),
		tables:   make(map[tableKey]*modeTable, 2*(len(orin.Modes)+1)),
	}
	name := cfg.Variant.String()
	build := func(mode orin.PowerMode, quant bool) *modeTable {
		t := &modeTable{
			batchEst:       make([]orin.BatchEstimate, cfg.MaxBatch+1),
			adaptPerStepMs: orin.EstimateAdaptStep(cost, mode),
		}
		for k := 1; k <= cfg.MaxBatch; k++ {
			if quant {
				t.batchEst[k] = orin.EstimateInferenceBatchInt8(name, cost, mode, k)
			} else {
				t.batchEst[k] = orin.EstimateInferenceBatch(name, cost, mode, k)
			}
		}
		return t
	}
	for _, quant := range []bool{false, true} {
		for _, mode := range orin.Modes {
			e.tables[tableKey{mode.Watts, quant}] = build(mode, quant)
		}
		// Built last so a custom configured mode that shares a wattage
		// with a stock orin.Modes entry prices itself, not the stock
		// point.
		e.tables[tableKey{cfg.Mode.Watts, quant}] = build(cfg.Mode, quant)
	}
	e.def = e.tables[tableKey{cfg.Mode.Watts, cfg.Quantized}]
	return e
}

// Config returns the engine configuration after defaulting.
func (e *Engine) Config() Config { return e.cfg }

// tableFor resolves the pricing table for a power mode and numeric
// path.
func (e *Engine) tableFor(mode orin.PowerMode, quant bool) *modeTable {
	t, ok := e.tables[tableKey{mode.Watts, quant}]
	if !ok {
		panic(fmt.Sprintf("serve: no pricing table for mode %q — controllers must choose from orin.Modes", mode.Name))
	}
	return t
}

// FrameLatencyMs prices the steady-state cost of one frame served in a
// coalesced batch of the given size with zero queue wait under the
// configured mode: the frame's amortized share of the batched forward
// plus (when adaptation is enabled) the amortized share of its
// stream's adaptation step. Actual served frames add their measured
// queue wait on top of this floor.
func (e *Engine) FrameLatencyMs(batchSize int) float64 {
	if batchSize < 1 || batchSize > e.cfg.MaxBatch {
		panic(fmt.Sprintf("serve: batch size %d outside [1,%d]", batchSize, e.cfg.MaxBatch))
	}
	lat := e.def.batchEst[batchSize].PerFrameMs
	if e.cfg.AdaptEvery > 0 {
		lat += e.def.adaptPerStepMs / float64(e.cfg.AdaptEvery)
	}
	return lat
}

// execRec is one executed frame: the functional outcome joined to its
// planned frame. Latency and energy are read off the plan only after
// all planning completes, because a later epoch may still assign the
// frame its adaptation-step share retroactively.
type execRec struct {
	pf  *plannedFrame
	acc float64
	pts int
	n   int // coalesced batch size that served the frame
}

// buildReport aggregates the executed frames, the plan's shed/energy
// accounting and the epoch trace into the run report.
func (e *Engine) buildReport(p *planner, states []*streamState, recs []execRec, epochs []EpochStats, wall time.Duration) Report {
	nStreams := len(states)
	type agg struct {
		frames, points int
		accW, latSum   float64
		energy         float64
		misses         int
		lats, queues   []float64
	}
	aggs := make([]agg, nStreams)
	for _, r := range recs {
		rec := FrameRecord{
			Stream: r.pf.stream, Index: r.pf.frame.Index,
			QueueMs: r.pf.queueMs, LatencyMs: r.pf.latencyMs, EnergyMJ: r.pf.energyMJ,
			DeadlineMet: r.pf.latencyMs <= e.cfg.DeadlineMs,
			Accuracy:    r.acc, Points: r.pts, BatchSize: r.n,
		}
		a := &aggs[rec.Stream]
		a.frames++
		a.accW += rec.Accuracy * float64(rec.Points)
		a.points += rec.Points
		a.latSum += rec.LatencyMs
		a.energy += rec.EnergyMJ
		a.lats = append(a.lats, rec.LatencyMs)
		a.queues = append(a.queues, rec.QueueMs)
		if !rec.DeadlineMet {
			a.misses++
		}
	}

	rep := Report{
		Streams:        make([]StreamReport, nStreams),
		WallSeconds:    wall.Seconds(),
		VirtualSeconds: p.sc.makespanMs / 1e3,
		Epochs:         epochs,
	}
	var allLats, allQueues []float64
	totalPoints, totalAccW, totalMisses := 0, 0.0, 0
	for si := range aggs {
		a := &aggs[si]
		ss := p.sc.streams[si]
		sr := StreamReport{
			Stream: si, Frames: a.frames, AdaptSteps: states[si].steps - states[si].baseSteps,
			MaxQueueDepth: ss.maxDepth, FramesDropped: ss.dropped, AdaptsSkipped: ss.skipped,
			EnergyMJ: a.energy,
		}
		if a.points > 0 {
			sr.OnlineAccuracy = a.accW / float64(a.points)
		}
		if a.frames > 0 {
			sr.MeanLatencyMs = a.latSum / float64(a.frames)
			sr.MissRate = float64(a.misses) / float64(a.frames)
		}
		// Guard the percentiles on the sample slices themselves, not the
		// frame counter: a stream can end a run with zero latency samples
		// (fully shed under DropFrames, or detached before serving) and
		// metrics.Percentile panics on empty input.
		if len(a.lats) > 0 {
			sr.P50LatencyMs = metrics.Percentile(a.lats, 50)
			sr.P99LatencyMs = metrics.Percentile(a.lats, 99)
			sr.MaxLatencyMs = metrics.Percentile(a.lats, 100)
		}
		if len(a.queues) > 0 {
			sr.MeanQueueMs = metrics.Mean(a.queues)
			sr.MaxQueueMs = metrics.Percentile(a.queues, 100)
		}
		rep.Streams[si] = sr
		rep.Frames += a.frames
		rep.FramesDropped += ss.dropped
		rep.AdaptsSkipped += ss.skipped
		if ss.maxDepth > rep.MaxQueueDepth {
			rep.MaxQueueDepth = ss.maxDepth
		}
		totalPoints += a.points
		totalAccW += a.accW
		totalMisses += a.misses
		allLats = append(allLats, a.lats...)
		allQueues = append(allQueues, a.queues...)
	}
	rep.Batches = len(p.sc.batches)
	if rep.Batches > 0 {
		rep.MeanBatch = float64(rep.Frames) / float64(rep.Batches)
	}
	if totalPoints > 0 {
		rep.OnlineAccuracy = totalAccW / float64(totalPoints)
	}
	if rep.Frames > 0 {
		rep.MissRate = float64(totalMisses) / float64(rep.Frames)
	}
	if len(allLats) > 0 {
		rep.P50LatencyMs = metrics.Percentile(allLats, 50)
		rep.P99LatencyMs = metrics.Percentile(allLats, 99)
	}
	if len(allQueues) > 0 {
		rep.MeanQueueMs = metrics.Mean(allQueues)
		rep.P99QueueMs = metrics.Percentile(allQueues, 99)
	}
	rep.BusyEnergyMJ = p.sc.busyEnergyMJ
	for _, es := range epochs {
		rep.IdleEnergyMJ += es.IdleEnergyMJ
	}
	rep.EnergyMJ = rep.BusyEnergyMJ + rep.IdleEnergyMJ
	if rep.Frames > 0 {
		rep.JPerFrame = rep.EnergyMJ / 1e3 / float64(rep.Frames)
	}
	if rep.WallSeconds > 0 {
		rep.ThroughputFPS = float64(rep.Frames) / rep.WallSeconds
	}
	return rep
}

// worker is one serving replica with its reusable batch buffers.
type worker struct {
	e        *Engine
	model    *ufld.Model
	bns      []*nn.BatchNorm2D
	bnParams []*nn.Param

	inBuf    []float32       // [MaxBatch, 3, H, W] assembly buffer
	adaptBuf []float32       // [AdaptBatch, 3, H, W] adaptation buffer
	srcs     [][]nn.BNSource // per BN layer: per-sample state copies
	srcPtrs  [][]*nn.BNSource

	// inView and adaptView are cached headers over the assembly
	// buffers, so the steady-state serve loop builds its batch tensors
	// without per-dispatch allocation.
	inView, adaptView nn.View
}

// newWorker builds a worker around a fresh shared-weight replica.
func (e *Engine) newWorker() *worker {
	// The rng only seeds weights that are immediately aliased or
	// overwritten by Replica, so a fixed seed keeps workers cheap and
	// deterministic.
	m := e.model.Replica(tensor.NewRNG(1))
	wk := &worker{e: e, model: m, bns: m.BatchNorms(), bnParams: m.BNParams()}
	chw := 3 * m.Cfg.InputH * m.Cfg.InputW
	wk.inBuf = make([]float32, e.cfg.MaxBatch*chw)
	wk.adaptBuf = make([]float32, e.cfg.AdaptBatch*chw)
	wk.srcs = make([][]nn.BNSource, len(wk.bns))
	wk.srcPtrs = make([][]*nn.BNSource, len(wk.bns))
	for j, b := range wk.bns {
		wk.srcs[j] = make([]nn.BNSource, e.cfg.MaxBatch)
		wk.srcPtrs[j] = make([]*nn.BNSource, e.cfg.MaxBatch)
		for i := range wk.srcs[j] {
			wk.srcs[j][i] = nn.BNSource{
				Mean:  make([]float32, b.C),
				Var:   make([]float32, b.C),
				Gamma: make([]float32, b.C),
				Beta:  make([]float32, b.C),
			}
			wk.srcPtrs[j][i] = &wk.srcs[j][i]
		}
	}
	return wk
}

// serve executes one planned batch: per-stream-conditioned batched
// inference and scoring, then the adaptation steps the scheduler
// decided. Queue waits, deadline and energy accounting were fixed at
// planning time (with step shares possibly still landing from later
// epochs, which is why only the planner's final state is reported);
// this stage supplies the functional results.
func (wk *worker) serve(pb plannedBatch, states []*streamState, records chan<- execRec) {
	mcfg := wk.model.Cfg
	chw := 3 * mcfg.InputH * mcfg.InputW
	batch := pb.frames
	n := len(batch)

	// Assemble the input batch and copy each frame's stream BN state
	// into the worker arena (briefly locking one stream at a time, so
	// a concurrent adaptation step on another worker cannot tear it).
	for i := range batch {
		pf := &batch[i]
		img := pf.frame.Sample.Image
		if img.Size() != chw {
			panic(fmt.Sprintf("serve: stream %d frame %d image %v, want [3,%d,%d]",
				pf.stream, pf.frame.Index, img.Shape(), mcfg.InputH, mcfg.InputW))
		}
		copy(wk.inBuf[i*chw:(i+1)*chw], img.Data)
		st := states[pf.stream]
		st.mu.Lock()
		for j := range wk.bns {
			dst := &wk.srcs[j][i]
			copy(dst.Mean, st.bn[j].Mean)
			copy(dst.Var, st.bn[j].Var)
			copy(dst.Gamma, st.bn[j].Gamma)
			copy(dst.Beta, st.bn[j].Beta)
		}
		st.mu.Unlock()
	}

	// Batched inference with per-sample BN conditioning, on the numeric
	// path the scheduler planned the batch for.
	x := wk.inView.Of(wk.inBuf[:n*chw], n, 3, mcfg.InputH, mcfg.InputW)
	for j, b := range wk.bns {
		b.SetSampleSources(wk.srcPtrs[j][:n])
	}
	var logits *tensor.Tensor
	if pb.quantized {
		logits = wk.model.ForwardInferInt8(x)
	} else {
		logits = wk.model.ForwardInfer(x)
	}
	preds := ufld.Decode(mcfg, logits, n)
	for _, b := range wk.bns {
		b.SetSampleSources(nil)
	}

	for i := range batch {
		pf := &batch[i]
		acc, pts := stream.ScoreSample(mcfg, preds[i], pf.frame.Sample)
		records <- execRec{pf: pf, acc: acc, pts: pts, n: n}
	}

	// Adaptation stage: windowed frames join their stream's window; the
	// scheduler has already decided which frames complete a window and
	// whether the due step runs or was shed under pressure.
	for i := range batch {
		pf := &batch[i]
		if !pf.windowed {
			continue
		}
		st := states[pf.stream]
		st.mu.Lock()
		st.pending = append(st.pending, pf.frame.Sample)
		switch pf.action {
		case adaptStep:
			wk.adaptLocked(st)
			st.pending = st.pending[:0]
		case adaptSkip:
			st.pending = st.pending[:0]
		}
		st.mu.Unlock()
	}
}

// adaptLocked runs one LD-BN-ADAPT step for a stream on this worker's
// replica (caller holds st.mu): swap the stream's BN state in, run the
// entropy step on the window's most recent AdaptBatch frames, and
// capture the refreshed statistics and updated γ/β back out. This
// mirrors adapt.LDBNAdapt's step with model-portable optimizer state.
func (wk *worker) adaptLocked(st *streamState) {
	e := wk.e
	mcfg := wk.model.Cfg
	chw := 3 * mcfg.InputH * mcfg.InputW
	nb := e.cfg.AdaptBatch
	if nb > len(st.pending) {
		nb = len(st.pending)
	}
	tail := st.pending[len(st.pending)-nb:]
	for i, s := range tail {
		copy(wk.adaptBuf[i*chw:(i+1)*chw], s.Image.Data)
	}
	xa := wk.adaptView.Of(wk.adaptBuf[:nb*chw], nb, 3, mcfg.InputH, mcfg.InputW)

	st.swapInto(wk.bns)
	nn.ZeroGrads(wk.model.Params())
	logits := wk.model.Forward(xa, nn.Adapt)
	var grad *tensor.Tensor
	switch e.cfg.Adapt.Loss {
	case adapt.Confidence:
		_, grad = nn.ConfidenceLoss(logits)
	default:
		_, grad = nn.EntropyLoss(logits)
	}
	if st.steps >= e.cfg.Adapt.WarmupSteps {
		wk.model.Backward(grad)
		if e.cfg.Adapt.ClipNorm > 0 {
			nn.ClipGradNorm(wk.bnParams, e.cfg.Adapt.ClipNorm)
		}
		st.opt.apply(wk.bnParams)
	}
	st.steps++
	st.captureFrom(wk.bns)
}
