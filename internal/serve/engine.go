package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// Config parameterizes the serving engine.
type Config struct {
	// Variant names the deployed full-scale backbone for Orin pricing.
	Variant resnet.Variant
	// Workers is the number of model replicas serving batches
	// (default GOMAXPROCS). Replicas share all conv/FC weight tensors.
	Workers int
	// MaxBatch caps how many frames one batched forward coalesces
	// (default 8).
	MaxBatch int
	// Window is the batching grace: once a batch is opened the engine
	// waits at most this long for it to fill before dispatching
	// (default 2 ms). It is also priced into every frame's latency as
	// the worst-case queuing delay.
	Window time.Duration
	// AdaptEvery runs one LD-BN-ADAPT step per stream every AdaptEvery
	// frames — the paper's batch-size amortization, which the Orin
	// prices as one batch-independent adaptation step shared by the
	// window (orin.EstimateFrame). 0 disables adaptation entirely.
	AdaptEvery int
	// AdaptBatch is how many of the window's most recent frames feed
	// the adaptation step (default 1, capped at AdaptEvery).
	AdaptBatch int
	// Adapt carries the LD-BN-ADAPT hyperparameters.
	Adapt adapt.Config
	// Mode is the Orin power mode used for pricing (default 60 W).
	Mode orin.PowerMode
	// DeadlineMs is the per-frame budget (default the 30 FPS budget).
	DeadlineMs float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Variant == 0 {
		c.Variant = resnet.R18
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.AdaptBatch <= 0 {
		c.AdaptBatch = 1
	}
	if c.AdaptEvery > 0 && c.AdaptBatch > c.AdaptEvery {
		c.AdaptBatch = c.AdaptEvery
	}
	if c.Mode.Name == "" {
		c.Mode = orin.Mode60W
	}
	if c.DeadlineMs <= 0 {
		c.DeadlineMs = orin.Deadline30FPS
	}
	return c
}

// FrameRecord is the serving outcome of one frame.
type FrameRecord struct {
	// Stream and Index identify the frame.
	Stream, Index int
	// LatencyMs is the Orin-priced per-frame latency: window wait +
	// amortized batched inference + amortized adaptation.
	LatencyMs float64
	// DeadlineMet reports LatencyMs ≤ deadline.
	DeadlineMet bool
	// Accuracy and Points score the frame against its hidden labels.
	Accuracy float64
	Points   int
	// BatchSize is the size of the coalesced batch that served the
	// frame.
	BatchSize int
}

// StreamReport aggregates one stream's serving outcomes.
type StreamReport struct {
	// Stream is the stream id.
	Stream int
	// Frames is the number of frames served.
	Frames int
	// OnlineAccuracy is the point-weighted accuracy over the stream.
	OnlineAccuracy float64
	// MeanLatencyMs, P50LatencyMs, P99LatencyMs, MaxLatencyMs
	// summarize the priced latency distribution.
	MeanLatencyMs, P50LatencyMs, P99LatencyMs, MaxLatencyMs float64
	// MissRate is the fraction of frames over deadline.
	MissRate float64
	// AdaptSteps counts the stream's adaptation steps.
	AdaptSteps int
}

// Report aggregates a full engine run.
type Report struct {
	// Streams holds per-stream outcomes indexed by stream id.
	Streams []StreamReport
	// Frames is the total frame count across streams.
	Frames int
	// Batches is the number of coalesced forward passes; MeanBatch is
	// Frames / Batches.
	Batches   int
	MeanBatch float64
	// WallSeconds is the host wall-clock duration of the run and
	// ThroughputFPS the resulting frames/s (host measurement, not Orin
	// pricing).
	WallSeconds   float64
	ThroughputFPS float64
	// OnlineAccuracy is the point-weighted accuracy over all streams.
	OnlineAccuracy float64
	// MissRate, P50LatencyMs, P99LatencyMs summarize priced latency
	// over all frames.
	MissRate                   float64
	P50LatencyMs, P99LatencyMs float64
}

// Engine serves a fleet of camera streams with one shared-weight model.
type Engine struct {
	cfg   Config
	model *ufld.Model

	adaptPerStepMs float64
	batchEst       []orin.BatchEstimate // index 1..MaxBatch
}

// New builds an engine around a deployed model. Latency pricing uses
// the full-scale architecture of cfg.Variant, mirroring
// stream.Run's convention of running the repro-scale model
// functionally while pricing the deployed one.
func New(m *ufld.Model, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	cost := ufld.DescribeModel(ufld.FullScale(cfg.Variant, m.Cfg.Lanes))
	e := &Engine{
		cfg:      cfg,
		model:    m,
		batchEst: make([]orin.BatchEstimate, cfg.MaxBatch+1),
	}
	name := cfg.Variant.String()
	// bs=1 makes AdaptMs the full (batch-size-independent) step cost.
	e.adaptPerStepMs = orin.EstimateFrame(name, cost, cfg.Mode, 1).AdaptMs
	for k := 1; k <= cfg.MaxBatch; k++ {
		e.batchEst[k] = orin.EstimateInferenceBatch(name, cost, cfg.Mode, k)
	}
	return e
}

// Config returns the engine configuration after defaulting.
func (e *Engine) Config() Config { return e.cfg }

// FrameLatencyMs prices one frame served in a coalesced batch of the
// given size: worst-case batching-window wait, the frame's amortized
// share of the batched forward, and (when adaptation is enabled) the
// amortized share of its stream's adaptation step.
func (e *Engine) FrameLatencyMs(batchSize int) float64 {
	if batchSize < 1 || batchSize > e.cfg.MaxBatch {
		panic(fmt.Sprintf("serve: batch size %d outside [1,%d]", batchSize, e.cfg.MaxBatch))
	}
	lat := float64(e.cfg.Window) / float64(time.Millisecond)
	lat += e.batchEst[batchSize].PerFrameMs
	if e.cfg.AdaptEvery > 0 {
		lat += e.adaptPerStepMs / float64(e.cfg.AdaptEvery)
	}
	return lat
}

// frameIn is one frame tagged with its stream, flowing source →
// batcher → worker.
type frameIn struct {
	stream int
	frame  stream.Frame
}

// Run serves every frame of every source to completion and reports.
//
// With Workers > 1 a stream's frames can be split across batches that
// finish out of order, so — like any concurrent serving system — the
// engine relaxes the paper's strictly sequential inference-then-adapt
// ordering: a frame may occasionally be scored against BN state that
// already saw a slightly later frame, and OnlineAccuracy is therefore
// not bitwise reproducible across runs. Frame, batch and
// adaptation-step counts are exact regardless. Use Workers: 1 when
// sequential reproducibility matters more than parallelism.
func (e *Engine) Run(sources []*stream.Source) Report {
	nStreams := len(sources)
	if nStreams == 0 {
		return Report{}
	}
	states := make([]*streamState, nStreams)
	for i := range states {
		states[i] = newStreamState(e.model, e.cfg.Adapt)
	}

	in := make(chan frameIn, 4*e.cfg.MaxBatch)
	batches := make(chan []frameIn, e.cfg.Workers)
	records := make(chan FrameRecord, 4*e.cfg.MaxBatch)
	var batchCount atomic.Int64

	start := time.Now()

	// Stage 1: sources. One producer goroutine per stream replays its
	// frames in arrival order.
	var producers sync.WaitGroup
	for si, src := range sources {
		producers.Add(1)
		go func(si int, src *stream.Source) {
			defer producers.Done()
			for _, fr := range src.Frames {
				in <- frameIn{stream: si, frame: fr}
			}
		}(si, src)
	}
	go func() {
		producers.Wait()
		close(in)
	}()

	// Stage 2: dynamic batcher. The first frame opens a batch; it is
	// dispatched when full (MaxBatch) or when the window grace expires.
	go func() {
		defer close(batches)
		var cur []frameIn
		var timer *time.Timer
		var expired <-chan time.Time
		flush := func() {
			if len(cur) > 0 {
				batchCount.Add(1)
				batches <- cur
				cur = nil
			}
			if timer != nil {
				timer.Stop()
				timer, expired = nil, nil
			}
		}
		for {
			if cur == nil {
				fi, ok := <-in
				if !ok {
					return
				}
				cur = make([]frameIn, 0, e.cfg.MaxBatch)
				cur = append(cur, fi)
				timer = time.NewTimer(e.cfg.Window)
				expired = timer.C
				if len(cur) == e.cfg.MaxBatch {
					flush()
				}
				continue
			}
			select {
			case fi, ok := <-in:
				if !ok {
					flush()
					return
				}
				cur = append(cur, fi)
				if len(cur) == e.cfg.MaxBatch {
					flush()
				}
			case <-expired:
				flush()
			}
		}
	}()

	// Stage 3: worker pool. Each worker owns a shared-weight replica.
	var workers sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			wk := e.newWorker()
			for batch := range batches {
				wk.serve(batch, states, records)
			}
		}()
	}
	go func() {
		workers.Wait()
		close(records)
	}()

	// Stage 4: collector.
	type agg struct {
		frames, points int
		accW, latSum   float64
		misses         int
		lats           []float64
	}
	aggs := make([]agg, nStreams)
	for rec := range records {
		a := &aggs[rec.Stream]
		a.frames++
		a.accW += rec.Accuracy * float64(rec.Points)
		a.points += rec.Points
		a.latSum += rec.LatencyMs
		a.lats = append(a.lats, rec.LatencyMs)
		if !rec.DeadlineMet {
			a.misses++
		}
	}
	wall := time.Since(start)

	rep := Report{Streams: make([]StreamReport, nStreams), WallSeconds: wall.Seconds()}
	var allLats []float64
	totalPoints, totalAccW, totalMisses := 0, 0.0, 0
	for si := range aggs {
		a := &aggs[si]
		sr := StreamReport{Stream: si, Frames: a.frames, AdaptSteps: states[si].steps}
		if a.points > 0 {
			sr.OnlineAccuracy = a.accW / float64(a.points)
		}
		if a.frames > 0 {
			sr.MeanLatencyMs = a.latSum / float64(a.frames)
			sr.MissRate = float64(a.misses) / float64(a.frames)
			sr.P50LatencyMs = metrics.Percentile(a.lats, 50)
			sr.P99LatencyMs = metrics.Percentile(a.lats, 99)
			sr.MaxLatencyMs = metrics.Percentile(a.lats, 100)
		}
		rep.Streams[si] = sr
		rep.Frames += a.frames
		totalPoints += a.points
		totalAccW += a.accW
		totalMisses += a.misses
		allLats = append(allLats, a.lats...)
	}
	rep.Batches = int(batchCount.Load())
	if rep.Batches > 0 {
		rep.MeanBatch = float64(rep.Frames) / float64(rep.Batches)
	}
	if totalPoints > 0 {
		rep.OnlineAccuracy = totalAccW / float64(totalPoints)
	}
	if rep.Frames > 0 {
		rep.MissRate = float64(totalMisses) / float64(rep.Frames)
		rep.P50LatencyMs = metrics.Percentile(allLats, 50)
		rep.P99LatencyMs = metrics.Percentile(allLats, 99)
	}
	if rep.WallSeconds > 0 {
		rep.ThroughputFPS = float64(rep.Frames) / rep.WallSeconds
	}
	return rep
}

// worker is one serving replica with its reusable batch buffers.
type worker struct {
	e        *Engine
	model    *ufld.Model
	bns      []*nn.BatchNorm2D
	bnParams []*nn.Param

	inBuf    []float32       // [MaxBatch, 3, H, W] assembly buffer
	adaptBuf []float32       // [AdaptBatch, 3, H, W] adaptation buffer
	srcs     [][]nn.BNSource // per BN layer: per-sample state copies
	srcPtrs  [][]*nn.BNSource
}

// newWorker builds a worker around a fresh shared-weight replica.
func (e *Engine) newWorker() *worker {
	// The rng only seeds weights that are immediately aliased or
	// overwritten by Replica, so a fixed seed keeps workers cheap and
	// deterministic.
	m := e.model.Replica(tensor.NewRNG(1))
	wk := &worker{e: e, model: m, bns: m.BatchNorms(), bnParams: m.BNParams()}
	chw := 3 * m.Cfg.InputH * m.Cfg.InputW
	wk.inBuf = make([]float32, e.cfg.MaxBatch*chw)
	wk.adaptBuf = make([]float32, e.cfg.AdaptBatch*chw)
	wk.srcs = make([][]nn.BNSource, len(wk.bns))
	wk.srcPtrs = make([][]*nn.BNSource, len(wk.bns))
	for j, b := range wk.bns {
		wk.srcs[j] = make([]nn.BNSource, e.cfg.MaxBatch)
		wk.srcPtrs[j] = make([]*nn.BNSource, e.cfg.MaxBatch)
		for i := range wk.srcs[j] {
			wk.srcs[j][i] = nn.BNSource{
				Mean:  make([]float32, b.C),
				Var:   make([]float32, b.C),
				Gamma: make([]float32, b.C),
				Beta:  make([]float32, b.C),
			}
			wk.srcPtrs[j][i] = &wk.srcs[j][i]
		}
	}
	return wk
}

// serve runs one coalesced batch: per-stream-conditioned batched
// inference, scoring, then any adaptation steps that became due.
func (wk *worker) serve(batch []frameIn, states []*streamState, records chan<- FrameRecord) {
	e := wk.e
	mcfg := wk.model.Cfg
	chw := 3 * mcfg.InputH * mcfg.InputW
	n := len(batch)

	// Assemble the input batch and copy each frame's stream BN state
	// into the worker arena (briefly locking one stream at a time, so
	// a concurrent adaptation step on another worker cannot tear it).
	for i, fi := range batch {
		img := fi.frame.Sample.Image
		if img.Size() != chw {
			panic(fmt.Sprintf("serve: stream %d frame %d image %v, want [3,%d,%d]",
				fi.stream, fi.frame.Index, img.Shape(), mcfg.InputH, mcfg.InputW))
		}
		copy(wk.inBuf[i*chw:(i+1)*chw], img.Data)
		st := states[fi.stream]
		st.mu.Lock()
		for j := range wk.bns {
			dst := &wk.srcs[j][i]
			copy(dst.Mean, st.bn[j].Mean)
			copy(dst.Var, st.bn[j].Var)
			copy(dst.Gamma, st.bn[j].Gamma)
			copy(dst.Beta, st.bn[j].Beta)
		}
		st.mu.Unlock()
	}

	// Batched inference with per-sample BN conditioning.
	x := tensor.FromSlice(wk.inBuf[:n*chw], n, 3, mcfg.InputH, mcfg.InputW)
	for j, b := range wk.bns {
		b.SetSampleSources(wk.srcPtrs[j][:n])
	}
	logits := wk.model.ForwardInfer(x)
	preds := ufld.Decode(mcfg, logits, n)
	for _, b := range wk.bns {
		b.SetSampleSources(nil)
	}

	lat := e.FrameLatencyMs(n)
	met := lat <= e.cfg.DeadlineMs
	for i, fi := range batch {
		acc, pts := stream.ScoreSample(mcfg, preds[i], fi.frame.Sample)
		records <- FrameRecord{
			Stream: fi.stream, Index: fi.frame.Index,
			LatencyMs: lat, DeadlineMet: met,
			Accuracy: acc, Points: pts, BatchSize: n,
		}
	}

	// Adaptation stage: frames join their stream's window; a full
	// window triggers one LD-BN-ADAPT step on the stream's snapshot.
	if e.cfg.AdaptEvery <= 0 {
		return
	}
	for _, fi := range batch {
		st := states[fi.stream]
		st.mu.Lock()
		st.pending = append(st.pending, fi.frame.Sample)
		if len(st.pending) >= e.cfg.AdaptEvery {
			wk.adaptLocked(st)
			st.pending = st.pending[:0]
		}
		st.mu.Unlock()
	}
}

// adaptLocked runs one LD-BN-ADAPT step for a stream on this worker's
// replica (caller holds st.mu): swap the stream's BN state in, run the
// entropy step on the window's most recent AdaptBatch frames, and
// capture the refreshed statistics and updated γ/β back out. This
// mirrors adapt.LDBNAdapt's step with model-portable optimizer state.
func (wk *worker) adaptLocked(st *streamState) {
	e := wk.e
	mcfg := wk.model.Cfg
	chw := 3 * mcfg.InputH * mcfg.InputW
	nb := e.cfg.AdaptBatch
	if nb > len(st.pending) {
		nb = len(st.pending)
	}
	tail := st.pending[len(st.pending)-nb:]
	for i, s := range tail {
		copy(wk.adaptBuf[i*chw:(i+1)*chw], s.Image.Data)
	}
	xa := tensor.FromSlice(wk.adaptBuf[:nb*chw], nb, 3, mcfg.InputH, mcfg.InputW)

	st.swapInto(wk.bns)
	nn.ZeroGrads(wk.model.Params())
	logits := wk.model.Forward(xa, nn.Adapt)
	var grad *tensor.Tensor
	switch e.cfg.Adapt.Loss {
	case adapt.Confidence:
		_, grad = nn.ConfidenceLoss(logits)
	default:
		_, grad = nn.EntropyLoss(logits)
	}
	if st.steps >= e.cfg.Adapt.WarmupSteps {
		wk.model.Backward(grad)
		if e.cfg.Adapt.ClipNorm > 0 {
			nn.ClipGradNorm(wk.bnParams, e.cfg.Adapt.ClipNorm)
		}
		st.opt.apply(wk.bnParams)
	}
	st.steps++
	st.captureFrom(wk.bns)
}
