package serve

import (
	"sync"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// RunNaive is the unbatched reference deployment the engine is
// measured against: one goroutine per stream, each running the paper's
// single-camera loop — per-frame eval-mode inference through the
// allocating Forward path, then one bs=1 LD-BN-ADAPT step on every
// frame — on its own shared-weight replica. There is no coalescing, no
// adaptation amortization and no scratch reuse; per-frame priced
// latency is the single-stream orin.EstimateFrame total. AdaptEvery
// only gates whether adaptation runs at all (≤ 0 disables it, anything
// positive adapts on every frame); Config fields other than Variant,
// AdaptEvery, Adapt, Mode and DeadlineMs are ignored.
func RunNaive(m *ufld.Model, cfg Config, sources []*stream.Source) Report {
	cfg = cfg.withDefaults()
	nStreams := len(sources)
	if nStreams == 0 {
		return Report{}
	}
	cost := ufld.DescribeModel(ufld.FullScale(cfg.Variant, m.Cfg.Lanes))
	noAdapt := cfg.AdaptEvery <= 0
	var lat float64
	if noAdapt {
		lat = orin.EstimateInferenceOnly(cfg.Variant.String(), cost, cfg.Mode).TotalMs
	} else {
		lat = orin.EstimateFrame(cfg.Variant.String(), cost, cfg.Mode, 1).TotalMs
	}
	met := lat <= cfg.DeadlineMs

	start := time.Now()
	reports := make([]StreamReport, nStreams)
	pointsBy := make([]int, nStreams)
	accWBy := make([]float64, nStreams)
	missesBy := make([]int, nStreams)
	var wg sync.WaitGroup
	for si, src := range sources {
		wg.Add(1)
		go func(si int, src *stream.Source) {
			defer wg.Done()
			replica := m.Replica(tensor.NewRNG(1))
			var method adapt.Method = adapt.NewNoAdapt()
			if !noAdapt {
				method = adapt.NewLDBNAdapt(replica, cfg.Adapt)
			}
			accW, points, misses := 0.0, 0, 0
			for _, fr := range src.Frames {
				x, _ := ufld.Batch(replica.Cfg, []ufld.Sample{fr.Sample}, []int{0})
				logits := replica.Forward(x, nn.Eval)
				preds := ufld.Decode(replica.Cfg, logits, 1)
				acc, pts := stream.ScoreSample(replica.Cfg, preds[0], fr.Sample)
				accW += acc * float64(pts)
				points += pts
				if !met {
					misses++
				}
				if !noAdapt {
					method.Adapt(x)
				}
			}
			sr := StreamReport{
				Stream: si, Frames: len(src.Frames),
				MeanLatencyMs: lat, P50LatencyMs: lat, P99LatencyMs: lat, MaxLatencyMs: lat,
				AdaptSteps: method.Steps(),
			}
			if noAdapt {
				sr.AdaptSteps = 0
			}
			if points > 0 {
				sr.OnlineAccuracy = accW / float64(points)
			}
			if sr.Frames > 0 {
				sr.MissRate = float64(misses) / float64(sr.Frames)
			}
			reports[si] = sr
			pointsBy[si], accWBy[si], missesBy[si] = points, accW, misses
		}(si, src)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := Report{Streams: reports, WallSeconds: wall.Seconds()}
	totalMisses, totalPoints, totalAccW := 0, 0, 0.0
	for si, sr := range reports {
		rep.Frames += sr.Frames
		totalMisses += missesBy[si]
		totalPoints += pointsBy[si]
		totalAccW += accWBy[si]
	}
	rep.Batches = rep.Frames
	if rep.Frames > 0 {
		rep.MeanBatch = 1
		rep.MissRate = float64(totalMisses) / float64(rep.Frames)
		rep.P50LatencyMs, rep.P99LatencyMs = lat, lat
	}
	if totalPoints > 0 {
		rep.OnlineAccuracy = totalAccW / float64(totalPoints)
	}
	if rep.WallSeconds > 0 {
		rep.ThroughputFPS = float64(rep.Frames) / rep.WallSeconds
	}
	return rep
}
