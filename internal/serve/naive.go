package serve

import (
	"sync"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/metrics"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// RunNaive is the unbatched reference deployment the engine is
// measured against: one goroutine per stream, each running the paper's
// single-camera loop — per-frame eval-mode inference through the
// allocating Forward path, then one bs=1 LD-BN-ADAPT step on every
// frame — on its own shared-weight replica. There is no coalescing, no
// adaptation amortization and no scratch reuse.
//
// Latency accounting is event-timed like the engine's, but per stream:
// each stream owns a dedicated virtual pipeline whose clock advances by
// the single-frame orin.EstimateFrame price, so a frame's LatencyMs is
// its measured wait for the previous frame to finish plus its own
// processing — the same serial backlog model as
// stream.RunWithOverload's DropNone policy. AdaptEvery only gates
// whether adaptation runs at all (≤ 0 disables it, anything positive
// adapts on every frame); Config fields other than Variant, AdaptEvery,
// Adapt, Mode and DeadlineMs are ignored — in particular the naive loop
// never sheds work.
func RunNaive(m *ufld.Model, cfg Config, sources []*stream.Source) Report {
	cfg = cfg.withDefaults()
	nStreams := len(sources)
	if nStreams == 0 {
		return Report{}
	}
	cost := ufld.DescribeModel(ufld.FullScale(cfg.Variant, m.Cfg.Lanes))
	noAdapt := cfg.AdaptEvery <= 0
	var frameMs float64
	if noAdapt {
		frameMs = orin.EstimateInferenceOnly(cfg.Variant.String(), cost, cfg.Mode).TotalMs
	} else {
		frameMs = orin.EstimateFrame(cfg.Variant.String(), cost, cfg.Mode, 1).TotalMs
	}
	// Dynamic energy per frame: the pipeline is busy for frameMs at the
	// mode's full draw (no batching, so nothing amortizes).
	frameMJ := float64(cfg.Mode.Watts) * frameMs

	start := time.Now()
	reports := make([]StreamReport, nStreams)
	pointsBy := make([]int, nStreams)
	accWBy := make([]float64, nStreams)
	missesBy := make([]int, nStreams)
	latsBy := make([][]float64, nStreams)
	queuesBy := make([][]float64, nStreams)
	clockBy := make([]float64, nStreams)
	var wg sync.WaitGroup
	for si, src := range sources {
		wg.Add(1)
		go func(si int, src *stream.Source) {
			defer wg.Done()
			replica := m.Replica(tensor.NewRNG(1))
			var method adapt.Method = adapt.NewNoAdapt()
			if !noAdapt {
				method = adapt.NewLDBNAdapt(replica, cfg.Adapt)
			}
			accW, points, misses := 0.0, 0, 0
			clockMs := 0.0
			maxDepth, ahead := 0, 0
			lats := make([]float64, 0, len(src.Frames))
			queues := make([]float64, 0, len(src.Frames))
			for fi, fr := range src.Frames {
				arrMs := float64(fr.Arrival) / 1e6
				startMs := clockMs
				if arrMs > startMs {
					startMs = arrMs // pipeline idles until the frame arrives
				}
				queueMs := startMs - arrMs
				lat := queueMs + frameMs
				clockMs = startMs + frameMs
				// Queue depth: frames that have arrived but not started.
				// startMs and arrivals are both non-decreasing, so the
				// lookahead pointer only ever advances.
				if ahead <= fi {
					ahead = fi + 1
				}
				for ahead < len(src.Frames) && float64(src.Frames[ahead].Arrival)/1e6 < startMs {
					ahead++
				}
				if depth := ahead - fi; depth > maxDepth {
					maxDepth = depth
				}
				lats = append(lats, lat)
				queues = append(queues, queueMs)
				if lat > cfg.DeadlineMs {
					misses++
				}

				x, _ := ufld.Batch(replica.Cfg, []ufld.Sample{fr.Sample}, []int{0})
				logits := replica.Forward(x, nn.Eval)
				preds := ufld.Decode(replica.Cfg, logits, 1)
				acc, pts := stream.ScoreSample(replica.Cfg, preds[0], fr.Sample)
				accW += acc * float64(pts)
				points += pts
				if !noAdapt {
					method.Adapt(x)
				}
			}
			sr := StreamReport{
				Stream: si, Frames: len(src.Frames),
				AdaptSteps:    method.Steps(),
				MaxQueueDepth: maxDepth,
				EnergyMJ:      frameMJ * float64(len(src.Frames)),
			}
			if noAdapt {
				sr.AdaptSteps = 0
			}
			if points > 0 {
				sr.OnlineAccuracy = accW / float64(points)
			}
			if sr.Frames > 0 {
				sr.MissRate = float64(misses) / float64(sr.Frames)
			}
			// Percentiles guard on the samples, not the frame counter —
			// metrics.Percentile panics on empty input, and the naive path
			// keeps them decoupled the same way the engine report does.
			if len(lats) > 0 {
				sr.MeanLatencyMs = metrics.Mean(lats)
				sr.P50LatencyMs = metrics.Percentile(lats, 50)
				sr.P99LatencyMs = metrics.Percentile(lats, 99)
				sr.MaxLatencyMs = metrics.Percentile(lats, 100)
			}
			if len(queues) > 0 {
				sr.MeanQueueMs = metrics.Mean(queues)
				sr.MaxQueueMs = metrics.Percentile(queues, 100)
			}
			reports[si] = sr
			pointsBy[si], accWBy[si], missesBy[si] = points, accW, misses
			latsBy[si], queuesBy[si] = lats, queues
			clockBy[si] = clockMs
		}(si, src)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := Report{Streams: reports, WallSeconds: wall.Seconds()}
	var allLats, allQueues []float64
	totalMisses, totalPoints, totalAccW := 0, 0, 0.0
	for si, sr := range reports {
		rep.Frames += sr.Frames
		totalMisses += missesBy[si]
		totalPoints += pointsBy[si]
		totalAccW += accWBy[si]
		rep.BusyEnergyMJ += sr.EnergyMJ
		allLats = append(allLats, latsBy[si]...)
		allQueues = append(allQueues, queuesBy[si]...)
		if sr.MaxQueueDepth > rep.MaxQueueDepth {
			rep.MaxQueueDepth = sr.MaxQueueDepth
		}
		if clockBy[si]/1e3 > rep.VirtualSeconds {
			rep.VirtualSeconds = clockBy[si] / 1e3
		}
	}
	// The board sits at cfg.Mode for the whole naive run.
	rep.IdleEnergyMJ = cfg.Mode.IdleWatts * rep.VirtualSeconds * 1e3
	rep.EnergyMJ = rep.BusyEnergyMJ + rep.IdleEnergyMJ
	rep.Batches = rep.Frames
	if rep.Frames > 0 {
		rep.MeanBatch = 1
		rep.JPerFrame = rep.EnergyMJ / 1e3 / float64(rep.Frames)
		rep.MissRate = float64(totalMisses) / float64(rep.Frames)
	}
	if len(allLats) > 0 {
		rep.P50LatencyMs = metrics.Percentile(allLats, 50)
		rep.P99LatencyMs = metrics.Percentile(allLats, 99)
	}
	if len(allQueues) > 0 {
		rep.MeanQueueMs = metrics.Mean(allQueues)
		rep.P99QueueMs = metrics.Percentile(allQueues, 99)
	}
	if totalPoints > 0 {
		rep.OnlineAccuracy = totalAccW / float64(totalPoints)
	}
	if rep.WallSeconds > 0 {
		rep.ThroughputFPS = float64(rep.Frames) / rep.WallSeconds
	}
	return rep
}
