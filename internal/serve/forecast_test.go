package serve

import (
	"math"
	"sort"
	"testing"

	"ldbnadapt/internal/forecast"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/stream"
)

// TestEpochForecastTelemetry: every recorded epoch's per-stream
// arrival counts must tile the epoch's Arrived total, and the
// published forecasts must be non-negative with ForecastArrived their
// exact sum. With the naive forecaster the next-epoch forecast is
// exactly this epoch's fleet arrival count — the lag-1 contract, end
// to end through the telemetry path.
func TestEpochForecastTelemetry(t *testing.T) {
	m := testModel(95)
	fleet := BurstyFleet(m.Cfg, 2, 2, 4, 12, 2, 30, 43)
	cfg := migrationConfig()
	cfg.Forecast = func() forecast.Forecaster { return forecast.NewNaive() }
	s := New(m, cfg).NewSession(fleet)
	var trace []EpochStats
	for i := 0; !s.Done(); i++ {
		if i > 10000 {
			t.Fatal("session failed to drain")
		}
		trace = append(trace, s.RunEpoch(s.Now()+250))
	}
	s.Finish()
	for i, es := range trace {
		sumA := 0
		for _, n := range es.StreamArrivals {
			sumA += n
		}
		if sumA != es.Arrived {
			t.Fatalf("epoch %d: Σ stream arrivals %d != Arrived %d", i, sumA, es.Arrived)
		}
		sumF := 0.0
		for _, f := range es.StreamForecasts {
			if f < 0 {
				t.Fatalf("epoch %d: negative forecast %v", i, f)
			}
			sumF += f
		}
		if math.Abs(sumF-es.ForecastArrived) > 1e-9 {
			t.Fatalf("epoch %d: Σ forecasts %v != ForecastArrived %v", i, sumF, es.ForecastArrived)
		}
		if es.ForecastArrived != float64(es.Arrived) {
			t.Fatalf("epoch %d: naive forecast %v != this epoch's arrivals %d", i, es.ForecastArrived, es.Arrived)
		}
	}
}

// TestHandoffCarriesForecaster: a migrating stream's forecaster — and
// therefore its observation history — must move with the stream, while
// the source board replaces its slot with a cold model. The EWMA level
// built on board 1 must be visible in board 2's first boundary
// forecast.
func TestHandoffCarriesForecaster(t *testing.T) {
	m := testModel(96)
	cfg := migrationConfig()
	cfg.Forecast = func() forecast.Forecaster { return forecast.NewEWMA(0.5) }
	fleet := SyntheticFleet(m.Cfg, 1, 12, 4, 29) // 4 FPS: one arrival per 250 ms
	s1 := New(m, cfg).NewSession(fleet)
	s2 := New(m, cfg).NewSession(nil)
	s1.RunEpoch(1000)
	s2.RunEpoch(1000)
	warm := s1.fc[0]
	h := s1.DetachStream(0)
	if h == nil {
		t.Fatal("nothing detached")
	}
	if h.fc != warm {
		t.Fatal("handoff does not carry the stream's live forecaster")
	}
	if s1.fc[0] == warm {
		t.Fatal("source board kept the emigrated stream's forecaster")
	}
	local := s2.AttachStream(h)
	if s2.fc[local] != warm {
		t.Fatal("destination board did not adopt the handoff forecaster")
	}
	es := s2.RunEpoch(2000)
	// Board 1 observed 4 arrivals in [0,1000); the EWMA level carried
	// over and then absorbed board 2's first epoch, so the forecast
	// must exceed what a cold forecaster fed one epoch could predict.
	if es.StreamForecasts[local] <= 0 {
		t.Fatalf("carried forecaster predicts %v after a served epoch", es.StreamForecasts[local])
	}
	s1.Finish()
	s2.Finish()
}

// roundTripReports runs the same fleet twice: a reference end-to-end
// run, and a run where stream `victim` is detached and immediately
// re-attached to the SAME session at boundary `atMs`. Returns both
// reports plus the victim's new local id.
func roundTripReports(t *testing.T, seed uint64, victim int, atMs float64) (ref, rt Report, nl int) {
	t.Helper()
	m := testModel(seed)
	cfg := migrationConfig()
	cfg.MaxBatch = 2
	// Coprime-ish rates keep arrival stamps distinct across streams, so
	// the event-list tie-break (stream id) cannot reorder a re-attached
	// stream's arrivals against simultaneous ones.
	mk := func() []*stream.Source { return SyntheticFleetRates(m.Cfg, 3, 14, []float64{3.7, 5.3, 7.1}, seed+7) }

	refSess := New(m, cfg).NewSession(mk())
	ref = driveToCompletion(t, refSess, 500)

	s := New(m, cfg).NewSession(mk())
	for s.Now() < atMs {
		s.RunEpoch(s.Now() + 500)
	}
	h := s.DetachStream(victim)
	if h == nil {
		t.Fatalf("stream %d had nothing to detach at %v ms", victim, atMs)
	}
	nl = s.AttachStream(h)
	rt = driveToCompletion(t, s, 500)
	return ref, rt, nl
}

// TestDetachAttachRoundTripInvariant is the handoff property pin
// consolidation leans on: DetachStream immediately followed by
// AttachStream on the same board must be invisible — the schedule
// (frames, batches, makespan), the report totals (energy, latency,
// misses) and the victim stream's own aggregate outcome all match the
// untouched run exactly. The only permitted difference is bookkeeping:
// the victim's future frames live under a fresh local id.
func TestDetachAttachRoundTripInvariant(t *testing.T) {
	for _, tc := range []struct {
		seed   uint64
		victim int
		atMs   float64
	}{
		{101, 0, 500},
		{102, 1, 1000},
		{103, 2, 1500},
		{104, 2, 500},
	} {
		ref, rt, nl := roundTripReports(t, tc.seed, tc.victim, tc.atMs)
		if rt.Frames != ref.Frames || rt.Batches != ref.Batches {
			t.Fatalf("seed %d: round trip changed the schedule: %d frames/%d batches vs %d/%d",
				tc.seed, rt.Frames, rt.Batches, ref.Frames, ref.Batches)
		}
		for name, pair := range map[string][2]float64{
			"virtual": {rt.VirtualSeconds, ref.VirtualSeconds},
			"busy":    {rt.BusyEnergyMJ, ref.BusyEnergyMJ},
			"energy":  {rt.EnergyMJ, ref.EnergyMJ},
			"p99":     {rt.P99LatencyMs, ref.P99LatencyMs},
			"miss":    {rt.MissRate, ref.MissRate},
			"queue":   {rt.MeanQueueMs, ref.MeanQueueMs},
		} {
			if diff := math.Abs(pair[0] - pair[1]); diff > 1e-9 {
				t.Fatalf("seed %d: round trip changed %s: %.9f vs %.9f", tc.seed, name, pair[0], pair[1])
			}
		}
		// The victim stream is split across two local ids; recombined it
		// must equal the reference stream's aggregate exactly.
		pre, post, want := rt.Streams[tc.victim], rt.Streams[nl], ref.Streams[tc.victim]
		if got := pre.Frames + post.Frames; got != want.Frames {
			t.Fatalf("seed %d: victim served %d frames after round trip, want %d", tc.seed, got, want.Frames)
		}
		if got := pre.AdaptSteps + post.AdaptSteps; got != want.AdaptSteps {
			t.Fatalf("seed %d: victim ran %d adaptation steps, want %d", tc.seed, got, want.AdaptSteps)
		}
		if diff := math.Abs(pre.EnergyMJ + post.EnergyMJ - want.EnergyMJ); diff > 1e-9 {
			t.Fatalf("seed %d: victim energy off by %v after round trip", tc.seed, diff)
		}
		// Latency distribution of the recombined stream matches the
		// reference's extremes (the full distributions are identical;
		// max is the cheap witness).
		if got := math.Max(pre.MaxLatencyMs, post.MaxLatencyMs); math.Abs(got-want.MaxLatencyMs) > 1e-9 {
			t.Fatalf("seed %d: victim max latency %.9f vs %.9f", tc.seed, got, want.MaxLatencyMs)
		}
		// Untouched streams' reports match field for field.
		for si := range ref.Streams {
			if si == tc.victim {
				continue
			}
			a, b := rt.Streams[si], ref.Streams[si]
			if a.Frames != b.Frames || math.Abs(a.P99LatencyMs-b.P99LatencyMs) > 1e-9 ||
				math.Abs(a.EnergyMJ-b.EnergyMJ) > 1e-9 || a.AdaptSteps != b.AdaptSteps {
				t.Fatalf("seed %d: bystander stream %d changed: %+v vs %+v", tc.seed, si, a, b)
			}
		}
	}
}

// TestRoundTripPreservesEpochTiling: after a same-board round trip the
// epoch trace still tiles the run — every arrival counted exactly
// once, per-stream arrivals summing to the fleet total.
func TestRoundTripPreservesEpochTiling(t *testing.T) {
	_, rt, _ := roundTripReports(t, 105, 1, 1000)
	total := 0
	for _, es := range rt.Epochs {
		sumA := 0
		for _, n := range es.StreamArrivals {
			sumA += n
		}
		if sumA != es.Arrived {
			t.Fatalf("epoch %d: Σ stream arrivals %d != %d", es.Epoch, sumA, es.Arrived)
		}
		total += es.Arrived
	}
	if total != 3*14 {
		t.Fatalf("epoch trace counted %d arrivals, want %d", total, 3*14)
	}
	// Epoch boundaries stay sorted and non-overlapping.
	if !sort.SliceIsSorted(rt.Epochs, func(i, j int) bool { return rt.Epochs[i].StartMs < rt.Epochs[j].StartMs }) {
		t.Fatal("epoch trace out of order after round trip")
	}
}

// TestForecastDefaultsToHolt: the engine defaults the forecaster
// factory so sessions always publish forecasts, and a governed run's
// trace therefore carries a usable leading signal out of the box.
func TestForecastDefaultsToHolt(t *testing.T) {
	m := testModel(97)
	fleet := SyntheticFleet(m.Cfg, 2, 8, 4, 31)
	cfg := migrationConfig()
	e := New(m, cfg)
	if e.Config().Forecast == nil {
		t.Fatal("withDefaults left Forecast nil")
	}
	if name := e.Config().Forecast().Name(); name != "holt" {
		t.Fatalf("default forecaster %q, want holt", name)
	}
	rep := e.RunGoverned(fleet, 500, fixedCtl{c: Controls{Mode: orin.Mode60W, AdaptEvery: 3}})
	if len(rep.Epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
	for _, es := range rep.Epochs {
		if es.StreamForecasts == nil {
			t.Fatalf("epoch %d published no forecasts", es.Epoch)
		}
	}
}
