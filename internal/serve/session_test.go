package serve

import (
	"math"
	"testing"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/stream"
)

// driveToCompletion steps a session in fixed epochs until it drains.
func driveToCompletion(t *testing.T, s *Session, epochMs float64) Report {
	t.Helper()
	for i := 0; !s.Done(); i++ {
		if i > 10000 {
			t.Fatal("session failed to drain in 10000 epochs")
		}
		s.RunEpoch(s.Now() + epochMs)
	}
	return s.Finish()
}

// migrationConfig is an underloaded single-worker deployment where
// every frame dispatches alone the instant it arrives (MaxBatch 1,
// 60 W ≫ 4 FPS), so a stream's dispatch history — and therefore its
// adaptation trajectory — is identical whether it is served by one
// board or handed off between two mid-run. WarmupSteps 1 makes the
// optimizer moments move, so state equality covers them too.
func migrationConfig() Config {
	acfg := adapt.DefaultConfig()
	acfg.WarmupSteps = 1
	return Config{
		Workers:    1,
		MaxBatch:   1,
		Window:     time.Millisecond,
		AdaptEvery: 3,
		Adapt:      acfg,
		Mode:       orin.Mode60W,
	}
}

// TestMigrationPreservesStreamState is the state-preservation pin for
// migration: a stream handed off between boards mid-run — mid
// adaptation window, even — must end with bitwise the same BN
// statistics, γ/β, optimizer moments and step count as the same
// stream served end-to-end on one board.
func TestMigrationPreservesStreamState(t *testing.T) {
	m := testModel(91)
	cfg := migrationConfig()
	fleet := SyntheticFleet(m.Cfg, 1, 12, 4, 17) // arrivals every 250 ms

	// Reference: one board serves the stream end to end.
	ref := New(m, cfg).NewSession(fleet)
	refRep := driveToCompletion(t, ref, 1000)
	if refRep.Frames != 12 {
		t.Fatalf("reference served %d frames, want 12", refRep.Frames)
	}
	if steps := refRep.Streams[0].AdaptSteps; steps != 4 {
		t.Fatalf("reference ran %d adaptation steps, want 4", steps)
	}

	// Migrated: board 1 serves frames 0–3, then the stream moves to
	// board 2 at the 1000 ms boundary — one frame into its third
	// adaptation window (AdaptEvery 3), so the handoff must carry the
	// open window, not just the BN snapshot.
	s1 := New(m, cfg).NewSession(fleet)
	s2 := New(m, cfg).NewSession(nil)
	s1.RunEpoch(1000)
	s2.RunEpoch(1000)
	h := s1.DetachStream(0)
	if h == nil {
		t.Fatal("detach returned nil despite 8 future frames")
	}
	if len(h.Source.Frames) != 8 {
		t.Fatalf("handoff carries %d frames, want 8", len(h.Source.Frames))
	}
	if h.sinceAdapt != 1 {
		t.Fatalf("handoff window position %d, want 1", h.sinceAdapt)
	}
	local := s2.AttachStream(h)
	for !s1.Done() || !s2.Done() {
		end := s1.Now() + 1000
		s1.RunEpoch(end)
		s2.RunEpoch(end)
	}
	rep1, rep2 := s1.Finish(), s2.Finish()
	if rep1.Frames != 4 || rep2.Frames != 8 {
		t.Fatalf("served %d + %d frames across boards, want 4 + 8", rep1.Frames, rep2.Frames)
	}
	if got := rep1.Streams[0].AdaptSteps + rep2.Streams[local].AdaptSteps; got != 4 {
		t.Fatalf("split run executed %d adaptation steps, want 4", got)
	}

	want, got := ref.states[0], s2.states[local]
	if want.steps != got.steps {
		t.Fatalf("step counters diverge: %d vs %d", got.steps, want.steps)
	}
	if want.opt.step != got.opt.step {
		t.Fatalf("optimizer steps diverge: %d vs %d", got.opt.step, want.opt.step)
	}
	for i := range want.opt.m {
		if want.opt.m[i] != got.opt.m[i] || want.opt.v[i] != got.opt.v[i] {
			t.Fatalf("optimizer moment %d diverges: m %g vs %g, v %g vs %g",
				i, got.opt.m[i], want.opt.m[i], got.opt.v[i], want.opt.v[i])
		}
	}
	for j := range want.bn {
		w, g := want.bn[j], got.bn[j]
		for c := range w.Mean {
			if w.Mean[c] != g.Mean[c] || w.Var[c] != g.Var[c] ||
				w.Gamma[c] != g.Gamma[c] || w.Beta[c] != g.Beta[c] {
				t.Fatalf("BN layer %d channel %d diverges after migration", j, c)
			}
		}
	}
}

// TestMigrationDeterministic: the split-board run is virtually
// deterministic — repeating it reproduces the same frame counts,
// energy and latency accounting bit for bit.
func TestMigrationDeterministic(t *testing.T) {
	m := testModel(92)
	cfg := migrationConfig()
	run := func() (Report, Report) {
		fleet := SyntheticFleet(m.Cfg, 2, 10, 4, 19)
		s1 := New(m, cfg).NewSession(fleet)
		s2 := New(m, cfg).NewSession(nil)
		s1.RunEpoch(1000)
		s2.RunEpoch(1000)
		if h := s1.DetachStream(1); h != nil {
			s2.AttachStream(h)
		}
		for !s1.Done() || !s2.Done() {
			end := s1.Now() + 1000
			s1.RunEpoch(end)
			s2.RunEpoch(end)
		}
		return s1.Finish(), s2.Finish()
	}
	a1, a2 := run()
	b1, b2 := run()
	for i, pair := range [][2]Report{{a1, b1}, {a2, b2}} {
		x, y := pair[0], pair[1]
		if x.Frames != y.Frames || x.BusyEnergyMJ != y.BusyEnergyMJ ||
			x.EnergyMJ != y.EnergyMJ || x.P99LatencyMs != y.P99LatencyMs {
			t.Fatalf("board %d run not deterministic: %+v vs %+v", i+1, x, y)
		}
	}
}

// TestDetachAccounting: a detach leaves already-queued frames to drain
// on the source board, moves exactly the future frames, and the two
// boards' telemetry still counts every arrival exactly once.
func TestDetachAccounting(t *testing.T) {
	m := testModel(93)
	cfg := migrationConfig()
	cfg.MaxBatch = 2
	fleet := SyntheticFleet(m.Cfg, 2, 12, 4, 23)
	total := 0
	for _, src := range fleet {
		total += len(src.Frames)
	}
	s1 := New(m, cfg).NewSession(fleet)
	s2 := New(m, cfg).NewSession(nil)
	s1.RunEpoch(500)
	s2.RunEpoch(500)
	h := s1.DetachStream(0)
	if h == nil {
		t.Fatal("nothing detached")
	}
	for _, fr := range h.Source.Frames {
		if float64(fr.Arrival)/1e6 < 500 {
			t.Fatalf("handoff frame arrives at %v, before the 500 ms boundary", fr.Arrival)
		}
	}
	s2.AttachStream(h)
	for !s1.Done() || !s2.Done() {
		end := s1.Now() + 500
		s1.RunEpoch(end)
		s2.RunEpoch(end)
	}
	rep1, rep2 := s1.Finish(), s2.Finish()
	if rep1.Frames+rep2.Frames != total {
		t.Fatalf("served %d + %d frames, want %d", rep1.Frames, rep2.Frames, total)
	}
	arrived := 0
	for _, es := range append(append([]EpochStats(nil), rep1.Epochs...), rep2.Epochs...) {
		if es.QueueDepth < 0 {
			t.Fatalf("negative backlog in epoch telemetry: %+v", es)
		}
		arrived += es.Arrived
	}
	if arrived != total {
		t.Fatalf("Σ epoch arrivals %d != fleet frames %d", arrived, total)
	}
	// A second detach of the same stream has nothing left to move.
	if h2 := s1.DetachStream(0); h2 != nil {
		t.Fatalf("re-detach returned %d frames, want nil", len(h2.Source.Frames))
	}
}

// TestSessionMatchesRunGoverned: driving a session by hand with fixed
// controls reproduces RunGoverned's report exactly — the Session API
// is the same machine, exposed.
func TestSessionMatchesRunGoverned(t *testing.T) {
	m := testModel(94)
	fleet := BurstyFleet(m.Cfg, 2, 2, 4, 12, 2, 30, 41)
	cfg := Config{
		Workers:    1,
		MaxBatch:   4,
		AdaptEvery: 3,
		Adapt:      adapt.DefaultConfig(),
		Mode:       orin.Mode30W,
		Policy:     stream.DropFrames,
	}
	want := New(m, cfg).RunGoverned(fleet, 250, fixedCtl{c: Controls{
		Mode: cfg.Mode, Policy: cfg.Policy, AdaptEvery: cfg.AdaptEvery,
	}})
	s := New(m, cfg).NewSession(fleet)
	got := driveToCompletion(t, s, 250)
	if got.Frames != want.Frames || got.Batches != want.Batches ||
		got.FramesDropped != want.FramesDropped || len(got.Epochs) != len(want.Epochs) {
		t.Fatalf("session diverges from RunGoverned: %d/%d/%d/%d vs %d/%d/%d/%d",
			got.Frames, got.Batches, got.FramesDropped, len(got.Epochs),
			want.Frames, want.Batches, want.FramesDropped, len(want.Epochs))
	}
	for name, pair := range map[string][2]float64{
		"virtual": {got.VirtualSeconds, want.VirtualSeconds},
		"energy":  {got.EnergyMJ, want.EnergyMJ},
		"p99":     {got.P99LatencyMs, want.P99LatencyMs},
		"miss":    {got.MissRate, want.MissRate},
	} {
		if diff := math.Abs(pair[0] - pair[1]); diff > 1e-9 {
			t.Fatalf("session %s %.9f != RunGoverned %.9f", name, pair[0], pair[1])
		}
	}
}
