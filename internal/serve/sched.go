package serve

import (
	"math"
	"sort"

	"ldbnadapt/internal/stream"
)

// adaptAction is the scheduler's decision for one served frame: whether
// the frame closes its stream's adaptation window, and if so whether
// the due step runs or is shed by the overload policy.
type adaptAction uint8

const (
	// adaptNone: the frame joins its stream's window; no step is due.
	adaptNone adaptAction = iota
	// adaptStep: the frame completes the window and the step runs.
	adaptStep
	// adaptSkip: the frame completes the window but the step is shed
	// (SkipAdapt under pressure). The window is consumed without a step.
	adaptSkip
)

// plannedFrame is one frame after scheduling: its measured event-time
// accounting plus the adaptation decision the executing worker must
// honor.
type plannedFrame struct {
	stream int
	frame  stream.Frame
	// queueMs is the measured wait from camera arrival to batch
	// dispatch on the virtual clock.
	queueMs float64
	// latencyMs = queueMs + amortized batched-forward share + (for
	// frames of a window whose step ran) the step's amortized share.
	latencyMs float64
	action    adaptAction
}

// plannedBatch is one coalesced dispatch: which frames, when (virtual
// time), and on which virtual worker.
type plannedBatch struct {
	dispatchMs float64
	worker     int
	frames     []plannedFrame
}

// schedStream is the per-stream shed/backlog accounting accumulated
// while planning.
type schedStream struct {
	dropped  int
	skipped  int
	maxDepth int
}

// schedule is the full event-time plan for a fleet: every dispatch with
// its frames priced, plus the shed accounting the report needs for
// frames that never execute.
type schedule struct {
	batches    []plannedBatch
	streams    []schedStream
	makespanMs float64
}

// plan runs the event-time virtual-clock scheduler over the fleet.
//
// The clock is driven by frame arrival timestamps and the Orin-priced
// cost of the work actually dispatched. Batching follows the dynamic
// batcher's contract in virtual time: the oldest queued frame opens a
// batch, which becomes ready when MaxBatch frames have arrived or the
// Window grace expires, whichever is first; dispatch happens at the
// later of that readiness and the earliest virtual worker becoming
// free. Frames arriving while the batch waits for a worker coalesce
// into it (up to MaxBatch), which is what lets a backlogged engine
// recover throughput by batching harder.
//
// Worker occupancy is charged per dispatch: the whole-batch forward
// price for the actual coalesced size plus one full adaptation step
// per window completed in the batch — not a per-frame worst case.
//
// The overload policy decides what to shed when a stream falls behind
// (its frames queue longer than Backlog camera periods):
//
//   - DropNone serves everything; under overload the queue — and every
//     frame's measured wait — grows without bound.
//   - SkipAdapt serves every frame but sheds due adaptation steps while
//     the stream is behind.
//   - DropFrames sheds queued frames that are already older than the
//     backlog cap at dispatch time, so served frames' waits stay
//     bounded by Backlog periods.
func (e *Engine) plan(sources []*stream.Source) *schedule {
	cfg := e.cfg
	nStreams := len(sources)
	sc := &schedule{streams: make([]schedStream, nStreams)}

	// Flatten the fleet into one arrival-ordered event list. Per-stream
	// order is preserved; ties across streams break by stream id so the
	// plan is deterministic.
	total := 0
	for _, src := range sources {
		total += len(src.Frames)
	}
	type arrival struct {
		stream int
		frame  stream.Frame
		arrMs  float64
	}
	all := make([]arrival, 0, total)
	shedMs := make([]float64, nStreams) // per-stream backlog cap in ms
	for si, src := range sources {
		periodMs := float64(src.Period()) / 1e6
		shedMs[si] = float64(cfg.Backlog) * periodMs
		for _, fr := range src.Frames {
			all = append(all, arrival{stream: si, frame: fr, arrMs: float64(fr.Arrival) / 1e6})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].arrMs != all[j].arrMs {
			return all[i].arrMs < all[j].arrMs
		}
		return all[i].stream < all[j].stream
	})

	workers := make([]float64, cfg.Workers) // virtual busy-until times
	pending := make([]arrival, 0, cfg.MaxBatch)
	head, next := 0, 0

	// Per-stream backlog depth (frames arrived but not yet served or
	// shed), maintained incrementally: up on absorb, down on leave.
	depth := make([]int, nStreams)
	absorb := func(a arrival) {
		pending = append(pending, a)
		si := a.stream
		depth[si]++
		if depth[si] > sc.streams[si].maxDepth {
			sc.streams[si].maxDepth = depth[si]
		}
	}

	// Per-stream adaptation windows: how many served frames since the
	// last step, and the planned frames awaiting their step's amortized
	// share (assigned retroactively when the window completes).
	sinceAdapt := make([]int, nStreams)
	window := make([][]*plannedFrame, nStreams)

	for next < len(all) || head < len(pending) {
		if head == len(pending) {
			pending = pending[:0]
			head = 0
			absorb(all[next])
			next++
			continue
		}
		open := pending[head].arrMs
		// Readiness: MaxBatch-th arrival counting from the batch opener
		// (wherever it currently is — queued or still in the future), or
		// window expiry.
		tFull := math.Inf(1)
		queued := len(pending) - head
		if queued >= cfg.MaxBatch {
			tFull = pending[head+cfg.MaxBatch-1].arrMs
		} else if j := next + (cfg.MaxBatch - queued) - 1; j < len(all) {
			tFull = all[j].arrMs
		}
		ready := open + e.windowMs
		if tFull < ready {
			ready = tFull
		}
		wi := 0
		for w := 1; w < len(workers); w++ {
			if workers[w] < workers[wi] {
				wi = w
			}
		}
		dispatch := ready
		if workers[wi] > dispatch {
			dispatch = workers[wi]
		}
		// Absorb every frame that has arrived by dispatch time.
		for next < len(all) && all[next].arrMs <= dispatch {
			absorb(all[next])
			next++
		}
		// Form the batch, shedding stale frames under DropFrames.
		batch := make([]plannedFrame, 0, cfg.MaxBatch)
		for head < len(pending) && len(batch) < cfg.MaxBatch {
			a := pending[head]
			if a.arrMs > dispatch {
				break
			}
			head++
			depth[a.stream]--
			if cfg.Policy == stream.DropFrames && dispatch-a.arrMs > shedMs[a.stream] {
				sc.streams[a.stream].dropped++
				continue
			}
			batch = append(batch, plannedFrame{stream: a.stream, frame: a.frame})
		}
		if len(batch) == 0 {
			continue // everything stale was shed; replan from the survivors
		}
		n := len(batch)
		steps := 0
		for i := range batch {
			f := &batch[i]
			f.queueMs = dispatch - float64(f.frame.Arrival)/1e6
			f.latencyMs = f.queueMs + e.batchEst[n].PerFrameMs
			if cfg.AdaptEvery <= 0 {
				continue
			}
			si := f.stream
			window[si] = append(window[si], f)
			sinceAdapt[si]++
			if sinceAdapt[si] < cfg.AdaptEvery {
				continue
			}
			if cfg.Policy == stream.SkipAdapt && f.queueMs > shedMs[si] {
				f.action = adaptSkip
				sc.streams[si].skipped++
			} else {
				f.action = adaptStep
				steps++
				share := e.adaptPerStepMs / float64(len(window[si]))
				for _, wf := range window[si] {
					wf.latencyMs += share
				}
			}
			sinceAdapt[si] = 0
			window[si] = window[si][:0]
		}
		workers[wi] = dispatch + e.batchEst[n].BatchMs + float64(steps)*e.adaptPerStepMs
		if workers[wi] > sc.makespanMs {
			sc.makespanMs = workers[wi]
		}
		sc.batches = append(sc.batches, plannedBatch{dispatchMs: dispatch, worker: wi, frames: batch})
	}
	return sc
}
