package serve

import (
	"fmt"
	"math"
	"sort"

	"ldbnadapt/internal/obs"
	"ldbnadapt/internal/stream"
)

// adaptAction is the scheduler's decision for one served frame: whether
// the frame closes its stream's adaptation window, and if so whether
// the due step runs or is shed by the overload policy.
type adaptAction uint8

const (
	// adaptNone: the frame joins its stream's window; no step is due.
	adaptNone adaptAction = iota
	// adaptStep: the frame completes the window and the step runs.
	adaptStep
	// adaptSkip: the frame completes the window but the step is shed
	// (SkipAdapt under pressure). The window is consumed without a step.
	adaptSkip
)

// plannedFrame is one frame after scheduling: its measured event-time
// accounting plus the adaptation decision the executing worker must
// honor. latencyMs and energyMJ may still be amended retroactively by
// a later dispatch that completes the frame's adaptation window, so
// executing workers never read them — the report reads them once all
// planning is done.
type plannedFrame struct {
	stream int
	frame  stream.Frame
	// queueMs is the measured wait from camera arrival to batch
	// dispatch on the virtual clock.
	queueMs float64
	// latencyMs = queueMs + amortized batched-forward share + (for
	// frames of a window whose step ran) the step's amortized share.
	latencyMs float64
	// energyMJ is the frame's dynamic-energy attribution in
	// millijoules: Watts at dispatch × its forward share, plus Watts at
	// step time × its adaptation-step share. Summed over frames it
	// equals the per-dispatch Watts × busy-ms total exactly.
	energyMJ float64
	action   adaptAction
	// windowed marks frames that joined their stream's adaptation
	// window (false while adaptation is disabled), so the executing
	// worker accumulates exactly the samples the plan accounted.
	windowed bool
	// shared marks windowed frames whose adaptation-step share has
	// landed; telemetry estimates the steady-state share for the rest
	// so epoch hit rates do not read optimistically at slow cadences.
	shared bool
}

// plannedBatch is one coalesced dispatch: which frames, when (virtual
// time), on which virtual worker, and on which numeric path (the
// Quantized control at planning time, honored by the executing
// worker).
type plannedBatch struct {
	dispatchMs float64
	worker     int
	quantized  bool
	frames     []plannedFrame
}

// schedStream is the per-stream shed/backlog accounting accumulated
// while planning.
type schedStream struct {
	dropped  int
	skipped  int
	maxDepth int
}

// schedule is the full event-time plan for a fleet: every dispatch with
// its frames priced, plus the shed and energy accounting the report
// needs beyond per-frame records.
type schedule struct {
	batches    []plannedBatch
	streams    []schedStream
	makespanMs float64
	// busyMs is the aggregate virtual worker busy time and
	// busyEnergyMJ its dynamic energy: Σ over dispatches of
	// Watts(mode at dispatch) × busy interval.
	busyMs       float64
	busyEnergyMJ float64
}

// arrival is one camera frame on the fleet-wide event list.
type arrival struct {
	stream int
	frame  stream.Frame
	arrMs  float64
}

// planner runs the event-time virtual-clock scheduler over a fleet,
// resumably: runUntil plans every dispatch up to a virtual-time bound
// and preserves the queue, per-worker busy intervals, backlog depths
// and open adaptation windows, so the next call — possibly under
// different Controls — continues exactly where planning stopped. With
// an infinite bound it reproduces the original one-shot plan; the
// epoch loop of RunGoverned calls it once per control epoch.
//
// The clock is driven by frame arrival timestamps and the Orin-priced
// cost of the work actually dispatched. Batching follows the dynamic
// batcher's contract in virtual time: the oldest queued frame opens a
// batch, which becomes ready when MaxBatch frames have arrived or the
// Window grace expires, whichever is first; dispatch happens at the
// later of that readiness and the earliest virtual worker becoming
// free. Frames arriving while the batch waits for a worker coalesce
// into it (up to MaxBatch), which is what lets a backlogged engine
// recover throughput by batching harder.
//
// Worker occupancy is charged per dispatch: the whole-batch forward
// price for the actual coalesced size plus one full adaptation step
// per window completed in the batch — not a per-frame worst case.
// Dynamic energy is charged alongside as Watts × that busy interval.
//
// The overload policy decides what to shed when a stream falls behind
// (its frames queue longer than Backlog camera periods):
//
//   - DropNone serves everything; under overload the queue — and every
//     frame's measured wait — grows without bound.
//   - SkipAdapt serves every frame but sheds due adaptation steps while
//     the stream is behind.
//   - DropFrames sheds queued frames that are already older than the
//     backlog cap at dispatch time, so served frames' waits stay
//     bounded by Backlog periods.
type planner struct {
	e  *Engine
	sc *schedule

	// all is the arrival-ordered fleet event list (read-only after
	// construction; clones share it).
	all  []arrival
	next int

	pending []arrival
	head    int

	workers []float64 // virtual busy-until times
	depth   []int     // per-stream backlog (arrived, not served/shed)
	shedMs  []float64 // per-stream backlog cap in ms

	// Per-stream adaptation windows: served frames since the last step,
	// and the planned frames awaiting their step's amortized share
	// (assigned retroactively when the window completes).
	sinceAdapt []int
	window     [][]*plannedFrame

	// served and shed are cumulative counters for backlog telemetry.
	served, shed int
	// arrSeen indexes the first arrival not yet counted into epoch
	// telemetry, and arrOld the first not yet old enough to count as
	// backlog (both independent of the batching pointers above).
	arrSeen, arrOld int

	// Dynamic controls: the actuator state for subsequent planning.
	ctrl Controls
	tbl  *modeTable

	// arena is the current plannedFrame slab: per-dispatch batches are
	// carved from it so a steady-state epoch loop allocates one chunk
	// per ~arenaChunk frames instead of one slice per dispatch. Chunks
	// are never recycled within a run (committed batches and open
	// adaptation windows hold pointers into them); clone severs the
	// slab so probe batches land in probe-owned chunks.
	arena []plannedFrame

	// rec receives the planner's trace events (frame lifecycles, batch
	// and adapt spans) and bm its serve-layer metrics. Both default to
	// no-op — nil recorder, all-nil instruments — so the hot loop pays
	// only pointer tests when observability is off; clone nils them so
	// what-if probes never emit.
	rec *obs.Recorder
	bm  obs.BoardMetrics
}

// newPlanner flattens the fleet into one arrival-ordered event list.
// Per-stream order is preserved; ties across streams break by stream
// id so the plan is deterministic.
func (e *Engine) newPlanner(sources []*stream.Source) *planner {
	nStreams := len(sources)
	p := &planner{
		e:          e,
		sc:         &schedule{streams: make([]schedStream, nStreams)},
		workers:    make([]float64, e.cfg.Workers),
		depth:      make([]int, nStreams),
		shedMs:     make([]float64, nStreams),
		sinceAdapt: make([]int, nStreams),
		window:     make([][]*plannedFrame, nStreams),
	}
	total := 0
	for _, src := range sources {
		total += len(src.Frames)
	}
	p.all = make([]arrival, 0, total)
	p.pending = make([]arrival, 0, e.cfg.MaxBatch)
	for si, src := range sources {
		periodMs := float64(src.Period()) / 1e6
		p.shedMs[si] = float64(e.cfg.Backlog) * periodMs
		for _, fr := range src.Frames {
			p.all = append(p.all, arrival{stream: si, frame: fr, arrMs: float64(fr.Arrival) / 1e6})
		}
	}
	sort.SliceStable(p.all, func(i, j int) bool {
		if p.all[i].arrMs != p.all[j].arrMs {
			return p.all[i].arrMs < p.all[j].arrMs
		}
		return p.all[i].stream < p.all[j].stream
	})
	return p
}

// addStream extends the planner with one more stream — a migrated
// stream attaching mid-run. Its arrivals must not predate the last
// finalized epoch boundary; they merge into the unplanned suffix of
// the event list (ties after existing streams, matching the
// stream-id tie-break of the initial sort). sinceAdapt seeds the
// stream's adaptation window so a cadence interrupted mid-window on
// the source board resumes where it stopped.
func (p *planner) addStream(src *stream.Source, sinceAdapt int) int {
	si := len(p.depth)
	p.depth = append(p.depth, 0)
	p.shedMs = append(p.shedMs, float64(p.e.cfg.Backlog)*float64(src.Period())/1e6)
	p.sinceAdapt = append(p.sinceAdapt, sinceAdapt)
	p.window = append(p.window, nil)
	p.sc.streams = append(p.sc.streams, schedStream{})
	suffix := p.all[p.arrSeen:]
	merged := make([]arrival, 0, len(suffix)+len(src.Frames))
	j := 0
	for _, fr := range src.Frames {
		a := arrival{stream: si, frame: fr, arrMs: float64(fr.Arrival) / 1e6}
		for j < len(suffix) && suffix[j].arrMs <= a.arrMs {
			merged = append(merged, suffix[j])
			j++
		}
		merged = append(merged, a)
	}
	merged = append(merged, suffix[j:]...)
	p.all = append(p.all[:p.arrSeen:p.arrSeen], merged...)
	return si
}

// setControls switches the planner's actuators for subsequent
// dispatches. Panics if the mode has no pricing table (governors must
// choose from orin.Modes or the engine's configured mode).
func (p *planner) setControls(c Controls) {
	if c.Mode.Name == "" {
		c.Mode = p.e.cfg.Mode
	}
	if c.AdaptEvery < 0 {
		c.AdaptEvery = 0
	}
	p.tbl = p.e.tableFor(c.Mode, c.Quantized)
	p.ctrl = c
}

// arenaChunk is the plannedFrame slab granularity: one allocation
// amortizes over this many planned frames at steady state.
const arenaChunk = 256

// takeBatch returns an empty batch slice carved from the arena with
// room for a full MaxBatch, starting a fresh chunk when the current
// one cannot hold one. The caller appends up to MaxBatch frames and
// commits the result with commitBatch; pointers into the slab stay
// valid for the run because chunks never grow or get recycled.
func (p *planner) takeBatch() []plannedFrame {
	if cap(p.arena)-len(p.arena) < p.e.cfg.MaxBatch {
		n := arenaChunk
		if n < p.e.cfg.MaxBatch {
			n = p.e.cfg.MaxBatch
		}
		p.arena = make([]plannedFrame, 0, n)
	}
	return p.arena[len(p.arena):len(p.arena)]
}

// commitBatch marks the batch's frames as used slab space and returns
// the batch with its capacity clamped, so later chunk carving can
// never alias a committed dispatch.
func (p *planner) commitBatch(batch []plannedFrame) []plannedFrame {
	p.arena = p.arena[:len(p.arena)+len(batch)]
	return batch[:len(batch):len(batch)]
}

// remaining reports whether any frame is still waiting to be planned.
func (p *planner) remaining() bool {
	return p.next < len(p.all) || p.head < len(p.pending)
}

// clone snapshots the planner for a what-if probe: the copy shares the
// read-only event list but owns every piece of mutable state. Open
// adaptation windows are deep-copied so a simulated step assigns its
// retroactive shares to throwaway frames, never to the real records.
func (p *planner) clone() *planner {
	q := *p
	scCopy := *p.sc
	scCopy.batches = nil // probes never execute; stats don't need the dispatch list
	scCopy.streams = append([]schedStream(nil), p.sc.streams...)
	q.sc = &scCopy
	q.pending = append([]arrival(nil), p.pending...)
	q.workers = append([]float64(nil), p.workers...)
	q.depth = append([]int(nil), p.depth...)
	q.sinceAdapt = append([]int(nil), p.sinceAdapt...)
	q.window = make([][]*plannedFrame, len(p.window))
	for i, w := range p.window {
		cw := make([]*plannedFrame, len(w))
		for j, f := range w {
			cp := *f
			cw[j] = &cp
		}
		q.window[i] = cw
	}
	q.rec = nil
	q.bm = obs.BoardMetrics{}
	// Sever the slab: probe dispatches must carve probe-owned chunks,
	// never write into slots the real planner will hand out later.
	q.arena = nil
	return &q
}

// absorb moves one arrival into the pending queue and tracks backlog
// depth.
func (p *planner) absorb(a arrival) {
	p.pending = append(p.pending, a)
	si := a.stream
	p.depth[si]++
	if p.depth[si] > p.sc.streams[si].maxDepth {
		p.sc.streams[si].maxDepth = p.depth[si]
	}
}

// runUntil plans every dispatch with virtual dispatch time < endMs
// under the current controls, accumulating epoch telemetry into es
// when non-nil. Batches whose dispatch falls at or beyond endMs are
// left for the next call, which recomputes them identically when the
// controls have not changed — an epoch partition with static controls
// reproduces the one-shot schedule exactly.
func (p *planner) runUntil(endMs float64, es *EpochStats) {
	e := p.e
	cfg := e.cfg
	for p.remaining() {
		if p.head == len(p.pending) {
			if p.all[p.next].arrMs >= endMs {
				break // the next batch opens in a later epoch
			}
			p.pending = p.pending[:0]
			p.head = 0
			p.absorb(p.all[p.next])
			p.next++
			continue
		}
		open := p.pending[p.head].arrMs
		// Readiness: MaxBatch-th arrival counting from the batch opener
		// (wherever it currently is — queued or still in the future), or
		// window expiry.
		tFull := math.Inf(1)
		queued := len(p.pending) - p.head
		if queued >= cfg.MaxBatch {
			tFull = p.pending[p.head+cfg.MaxBatch-1].arrMs
		} else if j := p.next + (cfg.MaxBatch - queued) - 1; j < len(p.all) {
			tFull = p.all[j].arrMs
		}
		ready := open + e.windowMs
		if tFull < ready {
			ready = tFull
		}
		wi := 0
		for w := 1; w < len(p.workers); w++ {
			if p.workers[w] < p.workers[wi] {
				wi = w
			}
		}
		dispatch := ready
		if p.workers[wi] > dispatch {
			dispatch = p.workers[wi]
		}
		if dispatch >= endMs {
			break // dispatches in a later epoch, possibly under new controls
		}
		// Absorb every frame that has arrived by dispatch time.
		for p.next < len(p.all) && p.all[p.next].arrMs <= dispatch {
			p.absorb(p.all[p.next])
			p.next++
		}
		// Form the batch, shedding stale frames under DropFrames.
		batch := p.takeBatch()
		for p.head < len(p.pending) && len(batch) < cfg.MaxBatch {
			a := p.pending[p.head]
			if a.arrMs > dispatch {
				break
			}
			p.head++
			p.depth[a.stream]--
			if p.ctrl.Policy == stream.DropFrames && dispatch-a.arrMs > p.shedMs[a.stream] {
				p.sc.streams[a.stream].dropped++
				p.shed++
				p.bm.Dropped.Add(1)
				if p.rec != nil {
					p.rec.Frame(a.stream, a.frame.Index, a.arrMs, dispatch, "shed")
				}
				if es != nil {
					es.FramesDropped++
				}
				continue
			}
			batch = append(batch, plannedFrame{stream: a.stream, frame: a.frame})
		}
		if len(batch) == 0 {
			continue // everything stale was shed; replan from the survivors
		}
		batch = p.commitBatch(batch)
		n := len(batch)
		watts := float64(p.ctrl.Mode.Watts)
		steps := 0
		for i := range batch {
			f := &batch[i]
			f.queueMs = dispatch - float64(f.frame.Arrival)/1e6
			f.latencyMs = f.queueMs + p.tbl.batchEst[n].PerFrameMs
			f.energyMJ = watts * p.tbl.batchEst[n].PerFrameMs
			p.bm.QueueWaitMs.Observe(f.queueMs)
			if p.ctrl.AdaptEvery <= 0 {
				continue
			}
			f.windowed = true
			si := f.stream
			p.window[si] = append(p.window[si], f)
			p.sinceAdapt[si]++
			if p.sinceAdapt[si] < p.ctrl.AdaptEvery {
				continue
			}
			if p.ctrl.Policy == stream.SkipAdapt && f.queueMs > p.shedMs[si] {
				f.action = adaptSkip
				p.sc.streams[si].skipped++
				p.bm.Skipped.Add(1)
				if es != nil {
					es.AdaptsSkipped++
				}
			} else {
				f.action = adaptStep
				if p.rec != nil {
					// Adapt steps run serially after the batched forward in
					// the busy model; the span start replays that layout.
					start := dispatch + p.tbl.batchEst[n].BatchMs + float64(steps)*p.tbl.adaptPerStepMs
					p.rec.Span("adapt", wi, start, p.tbl.adaptPerStepMs,
						fmt.Sprintf("stream=%d window=%d", p.rec.StreamID(si), len(p.window[si])))
				}
				steps++
				share := p.tbl.adaptPerStepMs / float64(len(p.window[si]))
				for _, wf := range p.window[si] {
					wf.latencyMs += share
					wf.energyMJ += watts * share
					wf.shared = true
				}
			}
			p.sinceAdapt[si] = 0
			p.window[si] = p.window[si][:0]
		}
		busy := p.tbl.batchEst[n].BatchMs + float64(steps)*p.tbl.adaptPerStepMs
		p.bm.Served.Add(int64(n))
		p.bm.AdaptSteps.Add(int64(steps))
		if p.rec != nil {
			prec := "fp32"
			if p.ctrl.Quantized {
				prec = "int8"
			}
			p.rec.Span("batch", wi, dispatch, busy,
				fmt.Sprintf("n=%d steps=%d watts=%d prec=%s", n, steps, p.ctrl.Mode.Watts, prec))
			for i := range batch {
				f := &batch[i]
				act := "none"
				switch f.action {
				case adaptStep:
					act = "step"
				case adaptSkip:
					act = "skip"
				}
				// Begin backdated to arrival, End at forward completion —
				// the pair is emitted together once the outcome is known,
				// so no trace ever holds a dangling open.
				p.rec.Frame(f.stream, f.frame.Index, dispatch-f.queueMs, dispatch+p.tbl.batchEst[n].PerFrameMs,
					fmt.Sprintf("queue_ms=%.3f fwd_ms=%.3f n=%d adapt=%s", f.queueMs, p.tbl.batchEst[n].PerFrameMs, n, act))
			}
		}
		p.workers[wi] = dispatch + busy
		if p.workers[wi] > p.sc.makespanMs {
			p.sc.makespanMs = p.workers[wi]
		}
		p.sc.busyMs += busy
		p.sc.busyEnergyMJ += watts * busy
		p.served += n
		p.sc.batches = append(p.sc.batches, plannedBatch{
			dispatchMs: dispatch, worker: wi, quantized: p.ctrl.Quantized, frames: batch})
		if es != nil {
			es.Served += n
			es.AdaptSteps += steps
			es.BusyMs += busy
			es.BusyEnergyMJ += watts * busy
			for i := range batch {
				f := &batch[i]
				// Frames still awaiting their step share are judged at
				// the steady-state floor — a pending share will only
				// push them later, never earlier.
				est := f.latencyMs
				if f.windowed && !f.shared {
					est += p.tbl.adaptPerStepMs / float64(p.ctrl.AdaptEvery)
				}
				if est <= cfg.DeadlineMs {
					es.hits++
				}
				es.queueSum += f.queueMs
				if f.queueMs > es.MaxQueueMs {
					es.MaxQueueMs = f.queueMs
				}
			}
		}
	}
}

// plan runs the whole fleet to completion under the engine's static
// configuration — the one-shot schedule RunGoverned generalizes.
func (e *Engine) plan(sources []*stream.Source) *schedule {
	p := e.newPlanner(sources)
	p.setControls(Controls{Mode: e.cfg.Mode, Policy: e.cfg.Policy, AdaptEvery: e.cfg.AdaptEvery, Quantized: e.cfg.Quantized})
	p.runUntil(math.Inf(1), nil)
	return p.sc
}
