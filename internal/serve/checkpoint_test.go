package serve

import (
	"bytes"
	"strings"
	"testing"
)

// checkpointedSession drives a single-stream session two epochs deep —
// past warmup, mid adaptation window — and returns it with its engine,
// so checkpoints cover moved optimizer moments and pending samples.
func checkpointedSession(t *testing.T) (*Engine, *Session) {
	t.Helper()
	m := testModel(91)
	e := New(m, migrationConfig())
	fleet := SyntheticFleet(m.Cfg, 1, 12, 4, 17) // arrivals every 250 ms
	s := e.NewSession(fleet)
	s.RunEpoch(1000)
	s.RunEpoch(2000)
	return e, s
}

// equalCheckpoints compares two checkpoints bitwise, field by field.
func equalCheckpoints(t *testing.T, want, got *Checkpoint) {
	t.Helper()
	if got.Stream != want.Stream || got.Epoch != want.Epoch || got.FPS != want.FPS {
		t.Fatalf("identity diverges: %d/%d/%v vs %d/%d/%v",
			got.Stream, got.Epoch, got.FPS, want.Stream, want.Epoch, want.FPS)
	}
	if got.sinceAdapt != want.sinceAdapt {
		t.Fatalf("window position %d, want %d", got.sinceAdapt, want.sinceAdapt)
	}
	w, g := want.state, got.state
	if g.steps != w.steps || g.opt.step != w.opt.step {
		t.Fatalf("counters diverge: steps %d/%d, opt %d/%d", g.steps, w.steps, g.opt.step, w.opt.step)
	}
	if len(g.bn) != len(w.bn) {
		t.Fatalf("%d BN layers, want %d", len(g.bn), len(w.bn))
	}
	for j := range w.bn {
		for c := range w.bn[j].Mean {
			if w.bn[j].Mean[c] != g.bn[j].Mean[c] || w.bn[j].Var[c] != g.bn[j].Var[c] ||
				w.bn[j].Gamma[c] != g.bn[j].Gamma[c] || w.bn[j].Beta[c] != g.bn[j].Beta[c] {
				t.Fatalf("BN layer %d channel %d diverges", j, c)
			}
		}
	}
	for i := range w.opt.m {
		if w.opt.m[i] != g.opt.m[i] || w.opt.v[i] != g.opt.v[i] {
			t.Fatalf("optimizer moment %d diverges", i)
		}
	}
	if len(g.pending) != len(w.pending) {
		t.Fatalf("%d pending samples, want %d", len(g.pending), len(w.pending))
	}
	for i := range w.pending {
		wp, gp := w.pending[i], g.pending[i]
		if !bytes.Equal(f32bytes(wp.Image.Data), f32bytes(gp.Image.Data)) {
			t.Fatalf("pending sample %d image diverges", i)
		}
		if len(wp.Cells) != len(gp.Cells) {
			t.Fatalf("pending sample %d has %d cells, want %d", i, len(gp.Cells), len(wp.Cells))
		}
		for j := range wp.Cells {
			if wp.Cells[j] != gp.Cells[j] {
				t.Fatalf("pending sample %d cell %d diverges", i, j)
			}
		}
	}
	if got.fcKind != want.fcKind || len(got.fcState) != len(want.fcState) {
		t.Fatalf("forecaster %q/%d, want %q/%d", got.fcKind, len(got.fcState), want.fcKind, len(want.fcState))
	}
	for i := range want.fcState {
		if got.fcState[i] != want.fcState[i] {
			t.Fatalf("forecaster state %d: %v, want %v", i, got.fcState[i], want.fcState[i])
		}
	}
}

// f32bytes views a float32 slice's raw bits for bitwise comparison.
func f32bytes(v []float32) []byte {
	var buf bytes.Buffer
	for _, f := range v {
		t := packF64([]float64{float64(f)})
		_, _ = t.WriteTo(&buf)
	}
	return buf.Bytes()
}

// TestCheckpointRoundTrip is the golden codec pin: a checkpoint taken
// mid-adaptation encodes, decodes, and re-encodes to bitwise-identical
// state and bytes.
func TestCheckpointRoundTrip(t *testing.T) {
	e, s := checkpointedSession(t)
	defer s.Finish()
	c := s.Checkpoint(0)
	c.Stream, c.Epoch = 7, 2
	if c.state.steps == 0 || c.state.opt.step == 0 {
		t.Fatalf("scenario too shallow: %d steps, %d opt steps", c.state.steps, c.state.opt.step)
	}
	if len(c.state.pending) == 0 || c.sinceAdapt == 0 {
		t.Fatalf("scenario closed its adaptation window: %d pending, window at %d",
			len(c.state.pending), c.sinceAdapt)
	}
	if c.fcKind == "" {
		t.Fatal("no forecaster state captured")
	}

	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := e.DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	equalCheckpoints(t, c, got)
	// baseSteps resets at decode: a recovering board charges itself only
	// the steps it will execute, like any attach.
	if got.state.baseSteps != got.state.steps {
		t.Fatalf("decoded baseSteps %d != steps %d", got.state.baseSteps, got.state.steps)
	}
	// Deterministic bytes: encoding the decoded checkpoint reproduces
	// the original file exactly.
	var again bytes.Buffer
	if err := EncodeCheckpoint(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("re-encode diverges: %d vs %d bytes", again.Len(), buf.Len())
	}
	// The restored forecaster predicts exactly what the live one does.
	if got.Forecast() != s.fc[0].Forecast() {
		t.Fatalf("restored forecast %v != live %v", got.Forecast(), s.fc[0].Forecast())
	}
}

// TestCheckpointRestoreMatchesHandoff: resuming a stream from its
// decoded checkpoint is bitwise equivalent to migrating it live — the
// recovery path is the migration path with storage in the middle.
func TestCheckpointRestoreMatchesHandoff(t *testing.T) {
	m := testModel(95)
	cfg := migrationConfig()
	run := func(throughCheckpoint bool) *streamState {
		fleet := SyntheticFleet(m.Cfg, 1, 12, 4, 17)
		e := New(m, cfg)
		s1 := e.NewSession(fleet)
		s2 := e.NewSession(nil)
		s1.RunEpoch(1000)
		s2.RunEpoch(1000)
		c := s1.Checkpoint(0)
		h := s1.DetachStream(0)
		if h == nil {
			t.Fatal("nothing to detach")
		}
		if throughCheckpoint {
			var buf bytes.Buffer
			if err := EncodeCheckpoint(&buf, c); err != nil {
				t.Fatal(err)
			}
			dec, err := e.DecodeCheckpoint(&buf)
			if err != nil {
				t.Fatal(err)
			}
			h = e.RestoreHandoff(dec, h.Source)
		}
		local := s2.AttachStream(h)
		for !s1.Done() || !s2.Done() {
			end := s1.Now() + 1000
			s1.RunEpoch(end)
			s2.RunEpoch(end)
		}
		if rep := s2.Finish(); rep.Streams[local].Frames != 8 {
			t.Fatalf("destination served %d frames, want 8", rep.Streams[local].Frames)
		}
		s1.Finish()
		return s2.states[local]
	}
	want := run(false)
	got := run(true)
	if want.steps != got.steps || want.opt.step != got.opt.step {
		t.Fatalf("counters diverge: %d/%d vs %d/%d", got.steps, got.opt.step, want.steps, want.opt.step)
	}
	for j := range want.bn {
		for c := range want.bn[j].Mean {
			if want.bn[j].Mean[c] != got.bn[j].Mean[c] || want.bn[j].Gamma[c] != got.bn[j].Gamma[c] {
				t.Fatalf("BN layer %d channel %d diverges through checkpoint", j, c)
			}
		}
	}
	for i := range want.opt.m {
		if want.opt.m[i] != got.opt.m[i] || want.opt.v[i] != got.opt.v[i] {
			t.Fatalf("optimizer moment %d diverges through checkpoint", i)
		}
	}
}

// TestCheckpointDecodeErrors covers the corrupt-checkpoint paths: a
// truncated file, a foreign magic, and an empty reader must all error
// out of nn.LoadParams rather than yield a torn checkpoint.
func TestCheckpointDecodeErrors(t *testing.T) {
	e, s := checkpointedSession(t)
	defer s.Finish()
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, s.Checkpoint(0)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := e.DecodeCheckpoint(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("decode accepted a truncated checkpoint")
	}
	bad := append([]byte(nil), data...)
	bad[0], bad[1] = 'X', 'Y'
	_, err := e.DecodeCheckpoint(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("foreign magic: err = %v, want bad magic", err)
	}
	if _, err := e.DecodeCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Fatal("decode accepted an empty file")
	}
}

// TestCheckpointStores pins the two store implementations: latest-wins
// semantics, missing-stream misses, and defensive copying.
func TestCheckpointStores(t *testing.T) {
	file, err := NewFileCheckpoints(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, store := range map[string]CheckpointStore{
		"mem":  NewMemCheckpoints(),
		"file": file,
	} {
		if _, ok, err := store.Latest(3); err != nil || ok {
			t.Fatalf("%s: empty store Latest = %v/%v, want miss", name, ok, err)
		}
		if err := store.Put(3, []byte("v1")); err != nil {
			t.Fatal(err)
		}
		if err := store.Put(3, []byte("v2")); err != nil {
			t.Fatal(err)
		}
		got, ok, err := store.Latest(3)
		if err != nil || !ok || string(got) != "v2" {
			t.Fatalf("%s: Latest = %q/%v/%v, want v2", name, got, ok, err)
		}
		got[0] = 'X' // mutating the returned slice must not corrupt the store
		if again, _, _ := store.Latest(3); string(again) != "v2" {
			t.Fatalf("%s: store aliased its buffer: %q", name, again)
		}
		if _, ok, _ := store.Latest(4); ok {
			t.Fatalf("%s: hit for a never-checkpointed stream", name)
		}
	}
}
