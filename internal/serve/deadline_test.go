package serve

import (
	"testing"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/ufld"
)

// TestFrameLatencyComposition pins the steady-state pricing floor:
// amortized batched inference + amortized adaptation (queue wait is
// measured per frame by the scheduler, not priced here).
func TestFrameLatencyComposition(t *testing.T) {
	m := testModel(31)
	cost := ufld.DescribeModel(ufld.FullScale(resnet.R18, m.Cfg.Lanes))
	for _, tc := range []struct {
		name       string
		adaptEvery int
		mode       orin.PowerMode
	}{
		{"noadapt-60W", 0, orin.Mode60W},
		{"adapt4-60W", 4, orin.Mode60W},
		{"adapt1-30W", 1, orin.Mode30W},
	} {
		e := New(m, Config{
			Variant:    resnet.R18,
			MaxBatch:   8,
			Window:     2 * time.Millisecond,
			AdaptEvery: tc.adaptEvery,
			Mode:       tc.mode,
		})
		for k := 1; k <= 8; k++ {
			want := orin.EstimateInferenceBatch("R-18", cost, tc.mode, k).PerFrameMs
			if tc.adaptEvery > 0 {
				want += orin.EstimateFrame("R-18", cost, tc.mode, 1).AdaptMs / float64(tc.adaptEvery)
			}
			got := e.FrameLatencyMs(k)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s k=%d: latency %.6f, want %.6f", tc.name, k, got, want)
			}
		}
	}
}

// TestFrameLatencyMonotoneInBatch asserts bigger coalesced batches
// never price worse per frame.
func TestFrameLatencyMonotoneInBatch(t *testing.T) {
	e := New(testModel(32), Config{MaxBatch: 8, AdaptEvery: 4})
	prev := e.FrameLatencyMs(1)
	for k := 2; k <= 8; k++ {
		lat := e.FrameLatencyMs(k)
		if lat >= prev {
			t.Fatalf("batch %d latency %.4f not below batch %d latency %.4f", k, lat, k-1, prev)
		}
		prev = lat
	}
}

// TestFrameLatencyAmortizesAdaptation asserts the AdaptEvery knob
// amortizes exactly like the paper's adaptation batch size.
func TestFrameLatencyAmortizesAdaptation(t *testing.T) {
	m := testModel(33)
	e1 := New(m, Config{AdaptEvery: 1})
	e4 := New(m, Config{AdaptEvery: 4})
	e0 := New(m, Config{AdaptEvery: 0})
	l1, l4, l0 := e1.FrameLatencyMs(1), e4.FrameLatencyMs(1), e0.FrameLatencyMs(1)
	if !(l1 > l4 && l4 > l0) {
		t.Fatalf("amortization broken: every=1 %.3f, every=4 %.3f, none %.3f", l1, l4, l0)
	}
}

// TestEngineReportsMissesExactly is the deadline-accounting contract:
// in a deliberately underloaded deployment (one slow camera, one
// worker, MaxBatch=1, so every frame dispatches the instant it arrives
// with zero queue wait) each frame's event-time latency is exactly the
// steady-state FrameLatencyMs(1) floor, so a deadline a hair above it
// must report zero misses and a hair below it 100% misses — on every
// frame. The frame count is a multiple of AdaptEvery so every window
// completes and every frame carries its adaptation share.
func TestEngineReportsMissesExactly(t *testing.T) {
	m := testModel(34)
	fleet := SyntheticFleet(m.Cfg, 1, 6, 2, 11) // 2 FPS: 500 ms period ≫ frame cost
	for _, tc := range []struct {
		name       string
		adaptEvery int
		slackMs    float64
		wantMiss   float64
	}{
		{"meets-noadapt", 0, +0.1, 0},
		{"misses-noadapt", 0, -0.1, 1},
		{"meets-adapt", 3, +0.1, 0},
		{"misses-adapt", 3, -0.1, 1},
	} {
		probe := New(m, Config{MaxBatch: 1, AdaptEvery: tc.adaptEvery, Adapt: adapt.DefaultConfig()})
		deadline := probe.FrameLatencyMs(1) + tc.slackMs
		e := New(m, Config{
			Workers:    1,
			MaxBatch:   1,
			AdaptEvery: tc.adaptEvery,
			Adapt:      adapt.DefaultConfig(),
			DeadlineMs: deadline,
		})
		rep := e.Run(fleet)
		if rep.MissRate != tc.wantMiss {
			t.Fatalf("%s: miss rate %.3f, want %.0f (deadline %.3f ms)", tc.name, rep.MissRate, tc.wantMiss, deadline)
		}
		if rep.MeanQueueMs != 0 || rep.P99QueueMs != 0 {
			t.Fatalf("%s: underloaded MaxBatch=1 run queued (mean %.4f ms, p99 %.4f ms)",
				tc.name, rep.MeanQueueMs, rep.P99QueueMs)
		}
		for si, sr := range rep.Streams {
			if sr.MissRate != tc.wantMiss {
				t.Fatalf("%s: stream %d miss rate %.3f, want %.0f", tc.name, si, sr.MissRate, tc.wantMiss)
			}
		}
	}
}
