package serve

import (
	"fmt"
	"io"
	"math"
	"strings"

	"ldbnadapt/internal/forecast"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// Checkpoint is a stream's full adaptation state frozen at an epoch
// boundary, in a form that survives the board that produced it: BN
// running statistics and γ/β, optimizer moments and step count, the
// warmup counter, the open adaptation window (cadence position plus
// pending samples) and the arrival-rate forecaster's history. It is
// the durable twin of Handoff — a Handoff moves a live stream between
// boards through memory; a Checkpoint revives a dead board's stream
// from storage onto a survivor, at the price of losing whatever
// adaptation happened after the snapshot (bounded by the checkpoint
// cadence).
type Checkpoint struct {
	// Stream is the fleet-global stream id (the coordinator's key, not
	// a board-local id). Epoch is the fleet epoch the snapshot was
	// taken at. Both are set by the caller that owns those namespaces.
	Stream, Epoch int
	// FPS is the stream's nominal camera rate, kept so a recovered
	// stream can be re-admitted with its original pacing metadata.
	FPS float64
	// Quantized records whether the board was serving on the int8
	// inference rung (Controls.Quantized) when the snapshot was taken —
	// the placement signal a failover coordinator reads, mirroring
	// Handoff.Quantized.
	Quantized bool

	state      *streamState
	sinceAdapt int
	// fcKind/fcState are the forecaster model and its flattened state
	// (forecast.Snapshot); kind "" means the forecaster was a custom
	// implementation the codec cannot carry and restore starts fresh.
	fcKind  string
	fcState []float64
}

// Forecast is the checkpointed forecaster's next-epoch arrival
// prediction — the load score failover placement ranks a recovered
// stream by. Zero when no forecaster state was captured.
func (c *Checkpoint) Forecast() float64 {
	if c.fcKind == "" {
		return 0
	}
	f, err := forecast.Restore(c.fcKind, c.fcState)
	if err != nil {
		return 0
	}
	return f.Forecast()
}

// Steps is the stream's lifetime adaptation-step count at the
// snapshot, a staleness proxy for reports and debugging.
func (c *Checkpoint) Steps() int { return c.state.steps }

// Checkpoint snapshots board-local stream id's adaptation state
// without detaching it — the periodic durability hook a coordinator
// calls at epoch boundaries. Stream and Epoch are left zero for the
// caller to fill (they belong to the fleet namespace, not the board).
// Call only at an epoch boundary.
func (s *Session) Checkpoint(id int) *Checkpoint {
	c := &Checkpoint{
		FPS:        s.sources[id].FPS,
		Quantized:  s.p.ctrl.Quantized,
		state:      s.states[id].snapshot(),
		sinceAdapt: s.p.sinceAdapt[id],
	}
	if kind, st, ok := forecast.Snapshot(s.fc[id]); ok {
		c.fcKind, c.fcState = kind, st
	}
	return c
}

// RestoreHandoff turns a decoded checkpoint back into a live Handoff
// carrying the given future frames, ready for Session.AttachStream on
// a surviving board. The checkpoint's state is deep-copied, so one
// decoded checkpoint can seed several restore attempts.
func (e *Engine) RestoreHandoff(c *Checkpoint, src *stream.Source) *Handoff {
	h := &Handoff{
		Source:     src,
		Quantized:  c.Quantized,
		state:      c.state.snapshot(),
		sinceAdapt: c.sinceAdapt,
	}
	if c.fcKind != "" {
		if f, err := forecast.Restore(c.fcKind, c.fcState); err == nil {
			h.fc = f
		}
	}
	return h
}

// NewHandoff wraps the given frames with cold (deployment-default)
// adaptation state — the fallback when a stream's checkpoint is
// missing or unreadable: the stream survives, its adaptation history
// does not.
func (e *Engine) NewHandoff(src *stream.Source) *Handoff {
	return &Handoff{Source: src, state: newStreamState(e.model, e.cfg.Adapt)}
}

// Forecast is the handoff's predicted next-epoch arrival count (zero
// for a stream travelling without forecaster history).
func (h *Handoff) Forecast() float64 {
	if h.fc == nil {
		return 0
	}
	return h.fc.Forecast()
}

// checkpointVersion guards the meta layout below. Version 2 appended
// the Quantized lane; older checkpoints are rejected rather than
// guessed at (failover falls back to cold state on any decode error).
const checkpointVersion = 2

// EncodeCheckpoint writes c to w as an nn parameter bundle (the
// "LDP1" format of nn.SaveParams) holding only named extras: a packed
// "meta" record, per-BN-layer state, optimizer moments, forecaster
// state and the pending adaptation-window samples. Every scalar is
// stored bit-exactly (float64 values as two float32 bit lanes), so
// decode reproduces the checkpoint bitwise.
func EncodeCheckpoint(w io.Writer, c *Checkpoint) error {
	st := c.state
	extras := map[string]*tensor.Tensor{
		"meta": packF64([]float64{
			checkpointVersion,
			float64(c.Stream), float64(c.Epoch), c.FPS,
			float64(c.sinceAdapt), float64(st.steps), float64(st.opt.step),
			float64(len(st.bn)), float64(len(st.pending)),
			b2f(c.Quantized),
		}),
	}
	for i, b := range st.bn {
		extras[fmt.Sprintf("bn.%03d.mean", i)] = tensor.FromSlice(b.Mean, len(b.Mean))
		extras[fmt.Sprintf("bn.%03d.var", i)] = tensor.FromSlice(b.Var, len(b.Var))
		extras[fmt.Sprintf("bn.%03d.gamma", i)] = tensor.FromSlice(b.Gamma, len(b.Gamma))
		extras[fmt.Sprintf("bn.%03d.beta", i)] = tensor.FromSlice(b.Beta, len(b.Beta))
	}
	if len(st.opt.m) > 0 {
		extras["opt.m"] = tensor.FromSlice(st.opt.m, len(st.opt.m))
		extras["opt.v"] = tensor.FromSlice(st.opt.v, len(st.opt.v))
	}
	if c.fcKind != "" {
		extras["fc."+c.fcKind] = packF64(c.fcState)
	}
	for i, smp := range st.pending {
		extras[fmt.Sprintf("pending.%03d.image", i)] = smp.Image
		cells := make([]float32, len(smp.Cells)+1)
		cells[0] = float32(len(smp.Cells))
		for j, v := range smp.Cells {
			cells[j+1] = float32(v)
		}
		extras[fmt.Sprintf("pending.%03d.cells", i)] = tensor.FromSlice(cells, len(cells))
	}
	return nn.SaveParams(w, nil, extras)
}

// DecodeCheckpoint reads a checkpoint written by EncodeCheckpoint and
// validates it against this engine's deployed model: the BN layer
// count and per-layer widths must match, because the state is about
// to be swapped into this model's replicas. Truncated data, a foreign
// magic, or a mismatched model are all errors — a failover that
// cannot trust a checkpoint must fall back to cold state, never to a
// torn one.
func (e *Engine) DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	extras, err := nn.LoadParams(r, nil)
	if err != nil {
		return nil, fmt.Errorf("serve: reading checkpoint: %w", err)
	}
	meta, err := unpackF64(extras["meta"])
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint meta: %w", err)
	}
	if len(meta) != 10 {
		return nil, fmt.Errorf("serve: checkpoint meta has %d fields, want 10", len(meta))
	}
	if v := int(meta[0]); v != checkpointVersion {
		return nil, fmt.Errorf("serve: checkpoint version %d, want %d", v, checkpointVersion)
	}
	c := &Checkpoint{
		Stream:     int(meta[1]),
		Epoch:      int(meta[2]),
		FPS:        meta[3],
		Quantized:  meta[9] != 0,
		sinceAdapt: int(meta[4]),
	}
	nBN, nPending := int(meta[7]), int(meta[8])
	bns := e.model.BatchNorms()
	if nBN != len(bns) {
		return nil, fmt.Errorf("serve: checkpoint has %d BN layers, model has %d", nBN, len(bns))
	}
	st := &streamState{bn: make([]nn.BNSource, nBN), steps: int(meta[5])}
	st.baseSteps = st.steps
	flat := 0
	for i, b := range bns {
		lane := func(kind string) ([]float32, error) {
			t := extras[fmt.Sprintf("bn.%03d.%s", i, kind)]
			if t == nil {
				return nil, fmt.Errorf("serve: checkpoint is missing bn.%03d.%s", i, kind)
			}
			if t.Size() != b.C {
				return nil, fmt.Errorf("serve: checkpoint bn.%03d.%s has %d channels, model has %d",
					i, kind, t.Size(), b.C)
			}
			return t.Data, nil
		}
		var src nn.BNSource
		if src.Mean, err = lane("mean"); err != nil {
			return nil, err
		}
		if src.Var, err = lane("var"); err != nil {
			return nil, err
		}
		if src.Gamma, err = lane("gamma"); err != nil {
			return nil, err
		}
		if src.Beta, err = lane("beta"); err != nil {
			return nil, err
		}
		st.bn[i] = src
		flat += 2 * b.C
	}
	st.opt = newBNOpt(e.cfg.Adapt, flat)
	st.opt.step = int(meta[6])
	for _, mv := range []struct {
		name string
		dst  []float32
	}{{"opt.m", st.opt.m}, {"opt.v", st.opt.v}} {
		t := extras[mv.name]
		if t == nil {
			if flat == 0 {
				continue
			}
			return nil, fmt.Errorf("serve: checkpoint is missing %s", mv.name)
		}
		if t.Size() != flat {
			return nil, fmt.Errorf("serve: checkpoint %s has %d moments, model needs %d", mv.name, t.Size(), flat)
		}
		copy(mv.dst, t.Data)
	}
	st.pending = make([]ufld.Sample, nPending)
	for i := range st.pending {
		img := extras[fmt.Sprintf("pending.%03d.image", i)]
		cells := extras[fmt.Sprintf("pending.%03d.cells", i)]
		if img == nil || cells == nil {
			return nil, fmt.Errorf("serve: checkpoint is missing pending sample %d", i)
		}
		n := int(cells.Data[0])
		if n < 0 || n != cells.Size()-1 {
			return nil, fmt.Errorf("serve: checkpoint pending.%03d.cells header %d does not match %d entries",
				i, n, cells.Size()-1)
		}
		cs := make([]int, n)
		for j := range cs {
			cs[j] = int(cells.Data[j+1])
		}
		st.pending[i] = ufld.Sample{Image: img, Cells: cs}
	}
	c.state = st
	for name, t := range extras {
		if strings.HasPrefix(name, "fc.") {
			c.fcKind = strings.TrimPrefix(name, "fc.")
			if c.fcState, err = unpackF64(t); err != nil {
				return nil, fmt.Errorf("serve: checkpoint forecaster state: %w", err)
			}
			break
		}
	}
	return c, nil
}

// b2f encodes a bool as a meta lane.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// packF64 stores float64 values bit-exactly in a float32 tensor, two
// bit lanes per value, so checkpoints round-trip bitwise through the
// float32-only tensor wire format.
func packF64(vals []float64) *tensor.Tensor {
	t := tensor.New(2 * len(vals))
	for i, v := range vals {
		b := math.Float64bits(v)
		t.Data[2*i] = math.Float32frombits(uint32(b))
		t.Data[2*i+1] = math.Float32frombits(uint32(b >> 32))
	}
	return t
}

// unpackF64 reverses packF64.
func unpackF64(t *tensor.Tensor) ([]float64, error) {
	if t == nil {
		return nil, fmt.Errorf("missing record")
	}
	if t.Size()%2 != 0 {
		return nil, fmt.Errorf("odd lane count %d", t.Size())
	}
	vals := make([]float64, t.Size()/2)
	for i := range vals {
		lo := uint64(math.Float32bits(t.Data[2*i]))
		hi := uint64(math.Float32bits(t.Data[2*i+1]))
		vals[i] = math.Float64frombits(hi<<32 | lo)
	}
	return vals, nil
}
