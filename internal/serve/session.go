package serve

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ldbnadapt/internal/forecast"
	"ldbnadapt/internal/obs"
	"ldbnadapt/internal/stream"
)

// Session is the serving engine opened for external stepping: where
// RunGoverned drives the whole epoch loop internally, a Session hands
// the loop to a caller — a fleet coordinator (internal/shard) that
// steps many boards in lockstep, decides controls per board, and
// migrates streams between boards at epoch boundaries.
//
// The contract is epoch-synchronous: RunEpoch plans every dispatch up
// to the epoch boundary, executes them on the host worker pool, and
// waits for execution to drain before returning. That barrier is what
// makes the boundary a safe point for SetControls, Probe,
// DetachStream and AttachStream — no worker is reading stream state
// while the caller snapshots or rewires it. The barrier trades a
// little host wall-clock (workers idle while the next epoch is
// planned and the controller decides) for that simplicity; all
// virtual-clock accounting is unaffected, and a one-shot Run plans
// everything in a single epoch so the batching benchmarks lose
// nothing.
//
// Ownership: a Session is confined to one goroutine. It has no
// internal locking beyond the worker pool — the epoch-synchronous
// methods above must all be called from the same goroutine, with any
// cross-goroutine handoff ordered by a happens-before edge. The fleet
// runtime (internal/shard) follows exactly that contract: each
// board's actor goroutine owns its Session for the board's lifetime
// and serves typed directives over a control bus, and the coordinator
// may read a quiescent session (Done, Now, Controls) only after
// receiving the actor's reply for the current directive.
type Session struct {
	e       *Engine
	p       *planner
	sources []*stream.Source
	states  []*streamState
	// fc is each stream's arrival-rate forecaster, observed once per
	// epoch with the stream's arrival count; a detached stream's
	// forecaster leaves with it in the Handoff so its history follows
	// it across boards.
	fc []forecast.Forecaster

	batches   chan plannedBatch
	records   chan execRec
	inflight  sync.WaitGroup // batches handed to workers, not yet executed
	workers   sync.WaitGroup
	recs      []execRec
	collected chan struct{}

	epochs     []EpochStats
	epochIdx   int
	epochStart float64
	sent       int
	start      time.Time
	finished   bool
	rep        Report

	// rec receives the session's control-lane trace events (epoch
	// spans, forecast instants); nil when tracing is off. The planner
	// carries its own copy for the dispatch-level events.
	rec *obs.Recorder
}

// Observe attaches a trace recorder and serve-layer metrics to the
// session (both may be nil/zero for no-op). Call before the first
// RunEpoch; the same goroutine-confinement contract as the other
// session methods applies.
func (s *Session) Observe(rec *obs.Recorder, bm obs.BoardMetrics) {
	s.rec = rec
	s.p.rec = rec
	s.p.bm = bm
}

// NewSession opens the engine over a fleet without running it. An
// empty fleet is valid: a board may start idle and receive its first
// stream by AttachStream. Finish must be called to release the worker
// goroutines and obtain the report.
func (e *Engine) NewSession(sources []*stream.Source) *Session {
	s := &Session{
		e:         e,
		p:         e.newPlanner(sources),
		sources:   append([]*stream.Source(nil), sources...),
		states:    make([]*streamState, len(sources)),
		batches:   make(chan plannedBatch, e.cfg.Workers),
		records:   make(chan execRec, 4*e.cfg.MaxBatch),
		collected: make(chan struct{}),
		start:     time.Now(),
	}
	for i := range s.states {
		s.states[i] = newStreamState(e.model, e.cfg.Adapt)
	}
	s.fc = make([]forecast.Forecaster, len(sources))
	for i := range s.fc {
		s.fc[i] = e.cfg.Forecast()
	}
	s.p.setControls(Controls{Mode: e.cfg.Mode, Policy: e.cfg.Policy, AdaptEvery: e.cfg.AdaptEvery, Quantized: e.cfg.Quantized})
	for w := 0; w < e.cfg.Workers; w++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			wk := e.newWorker()
			for b := range s.batches {
				wk.serve(b, s.states, s.records)
				s.inflight.Done()
			}
		}()
	}
	go func() {
		defer close(s.collected)
		for r := range s.records {
			s.recs = append(s.recs, r)
		}
	}()
	return s
}

// Controls returns the session's current actuator state.
func (s *Session) Controls() Controls { return s.p.ctrl }

// SetControls actuates the controls for subsequent planning. Call only
// at an epoch boundary (between RunEpoch calls).
func (s *Session) SetControls(c Controls) { s.p.setControls(c) }

// Now is the session's epoch clock: the nominal end of the last epoch
// run (zero before the first).
func (s *Session) Now() float64 { return s.epochStart }

// Done reports whether the session is fully drained: no frame remains
// to plan and the board has been charged through its last worker's
// busy interval. AttachStream revives a done session.
func (s *Session) Done() bool {
	return !s.p.remaining() && s.epochStart >= s.p.sc.makespanMs
}

// Probe simulates the next spanMs of this board under candidate
// controls from its exact current state without committing — the
// what-if hook a Controller's Decide receives.
func (s *Session) Probe(c Controls, spanMs float64) EpochStats {
	return probe(s.p, c, s.epochStart, s.epochStart+spanMs, s.e.cfg.Workers)
}

// RunEpoch plans every dispatch in [Now(), endMs) under the current
// controls, executes the planned batches on the host workers, waits
// for them to drain, and returns the epoch's telemetry. Static energy
// is charged for the epoch span while the board has work; once a board
// drains, the remaining busy tail is charged epoch by epoch (capped at
// the epoch length) and a fully drained board charges nothing until
// new work attaches — idle boards in a fleet sleep rather than burn
// their rail draw forever. A sleeping board's zero-span epochs are
// returned but not recorded in the report trace (the epoch numbering
// keeps counting, so a gap in Report.Epochs reads as time asleep).
func (s *Session) RunEpoch(endMs float64) EpochStats {
	es := EpochStats{Epoch: s.epochIdx, StartMs: s.epochStart, EndMs: endMs, Controls: s.p.ctrl}
	s.epochIdx++
	s.p.runUntil(endMs, &es)
	for ; s.sent < len(s.p.sc.batches); s.sent++ {
		s.inflight.Add(1)
		s.batches <- s.p.sc.batches[s.sent]
	}
	// Epoch barrier: migrations and state snapshots at the boundary need
	// every executed adaptation step already captured into stream state.
	s.inflight.Wait()
	span := endMs - s.epochStart
	if !s.p.remaining() {
		span = math.Min(span, math.Max(0, s.p.sc.makespanMs-s.epochStart))
	}
	finalizeEpoch(&es, s.p, span, s.e.cfg.Workers)
	// Observe the epoch into the per-stream forecasters and publish
	// their next-epoch predictions — the leading load signal a
	// predictive controller or fleet coordinator acts on at this
	// boundary. Probes never reach here, so what-if epochs leave the
	// forecast state untouched.
	es.StreamForecasts = make([]float64, len(s.fc))
	for si, f := range s.fc {
		f.Observe(float64(es.StreamArrivals[si]))
		es.StreamForecasts[si] = f.Forecast()
		es.ForecastArrived += es.StreamForecasts[si]
	}
	es.EndMs = s.epochStart + span
	if span > 0 {
		s.epochs = append(s.epochs, es)
		if s.rec != nil {
			s.rec.Span("epoch", -1, es.StartMs, span,
				fmt.Sprintf("epoch=%d mode=%s policy=%s adapt=%d arrived=%d served=%d dropped=%d queue=%d hit=%.3f util=%.3f",
					es.Epoch, es.Controls.Mode.Name, es.Controls.Policy, es.Controls.AdaptEvery,
					es.Arrived, es.Served, es.FramesDropped, es.QueueDepth, es.DeadlineHitRate, es.Utilization))
			s.rec.Instant("forecast", es.EndMs, fmt.Sprintf("epoch=%d next=%.2f", es.Epoch, es.ForecastArrived))
		}
	}
	s.epochStart = endMs
	return es
}

// Finish releases the worker pool and builds the session report. It is
// idempotent; the first call closes the pipeline.
func (s *Session) Finish() Report {
	if s.finished {
		return s.rep
	}
	s.finished = true
	close(s.batches)
	s.workers.Wait()
	close(s.records)
	<-s.collected
	s.rep = s.e.buildReport(s.p, s.states, s.recs, s.epochs, time.Since(s.start))
	return s.rep
}

// Handoff is a stream in flight between boards: its future frames and
// a deep copy of its adaptation state. Migration is a leave+rejoin
// with state — the checkpoint a returning stream resumes from.
type Handoff struct {
	// Source carries the stream's frames from the detach boundary on,
	// with their original arrival stamps and indices.
	Source *stream.Source
	// Quantized records the numeric path (Controls.Quantized) in force
	// on the source board at the boundary: whether the stream was being
	// served on the int8 rung. Quantization is a board-level control,
	// so the destination is not forced onto the rung — the flag is the
	// placement signal a coordinator reads when deciding where a
	// latency-sensitive stream should land.
	Quantized bool
	// state is the stream's BN statistics and γ/β, optimizer moments,
	// warmup counter and pending adaptation-window samples, snapshotted
	// at the boundary.
	state *streamState
	// sinceAdapt is the planner's open-window length at the boundary, so
	// the destination continues the adaptation cadence mid-window.
	sinceAdapt int
	// fc is the stream's arrival-rate forecaster: its observation
	// history moves with the stream, so the destination board's
	// telemetry predicts the migrant's load from the first boundary.
	fc forecast.Forecaster
	// from and local identify the planner and local id the stream
	// detached from. A re-attach to the same planner (a same-board
	// rejoin, e.g. a consolidation move that found no better board) can
	// then resume the stream's actual open adaptation window — the
	// planned frames awaiting their step share are on that planner —
	// so the round trip is exactly invariant, not just approximately.
	from  *planner
	local int
}

// DetachStream removes stream id's future frames (arrivals at or after
// the last epoch boundary) from this board and returns them with a
// snapshot of the stream's adaptation state. Frames already queued at
// the boundary stay and drain here under the pre-migration state — the
// in-flight work of a real handoff. Returns nil when the stream has no
// future frames (nothing to migrate). Call only at an epoch boundary.
func (s *Session) DetachStream(id int) *Handoff {
	p := s.p
	future := 0
	for _, a := range p.all[p.arrSeen:] {
		if a.stream == id {
			future++
		}
	}
	if future == 0 {
		return nil
	}
	frames := make([]stream.Frame, 0, future)
	kept := p.all[:p.arrSeen:p.arrSeen]
	for _, a := range p.all[p.arrSeen:] {
		if a.stream == id {
			frames = append(frames, a.frame)
			continue
		}
		kept = append(kept, a)
	}
	p.all = kept
	h := &Handoff{
		Source:     &stream.Source{FPS: s.sources[id].FPS, Frames: frames},
		Quantized:  p.ctrl.Quantized,
		state:      s.states[id].snapshot(),
		sinceAdapt: p.sinceAdapt[id],
		fc:         s.fc[id],
		from:       p,
		local:      id,
	}
	// The local id stays valid (its served history remains here); give
	// it a fresh forecaster so the emigrated stream's history is owned
	// by exactly one board.
	s.fc[id] = s.e.cfg.Forecast()
	return h
}

// AttachStream adds a migrated (or newly joining) stream to this board
// and returns its board-local stream id. The handoff's state snapshot
// becomes the stream's live state, so adaptation resumes exactly where
// the source board left it. Call only at an epoch boundary; the
// handoff's frames must not predate it.
func (s *Session) AttachStream(h *Handoff) int {
	s.sources = append(s.sources, h.Source)
	s.states = append(s.states, h.state)
	fc := h.fc
	if fc == nil { // a newly joining stream arrives without history
		fc = s.e.cfg.Forecast()
	}
	s.fc = append(s.fc, fc)
	nl := s.p.addStream(h.Source, h.sinceAdapt)
	if h.from == s.p {
		// Same-board rejoin: splice the stream's open adaptation window
		// from its old local id, so the next completed step spreads its
		// share over the very frames that opened the window. Cross-board
		// attaches cannot do this — the awaiting frames live on the
		// source planner and keep their floor latency there, like any
		// in-flight work a real handoff leaves behind.
		s.p.window[nl] = s.p.window[h.local]
		s.p.window[h.local] = nil
		s.p.sinceAdapt[h.local] = 0
	}
	return nl
}
