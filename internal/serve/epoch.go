package serve

import (
	"math"

	"ldbnadapt/internal/obs"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/stream"
)

// Controls is the actuator set a governor may change at each control
// epoch boundary: the Orin power mode (the nvpmodel ladder), the
// overload policy, and the adaptation cadence. The engine's static
// Config supplies the initial values; everything else in Config
// (batching geometry, worker count, deadline) stays fixed for the run.
type Controls struct {
	// Mode is the Orin power mode pricing subsequent dispatches. It
	// must be one of orin.Modes or the engine's configured mode (those
	// are the modes the engine pre-prices); an empty mode keeps the
	// engine's configured one.
	Mode orin.PowerMode
	// Policy is the overload shedding policy for subsequent dispatches.
	Policy stream.OverloadPolicy
	// AdaptEvery is the adaptation cadence (one LD-BN-ADAPT step per
	// stream every AdaptEvery served frames); 0 disables adaptation.
	AdaptEvery int
	// Quantized runs subsequent batched forwards through the symmetric
	// int8 path (nn.InferInt8) instead of float32 — the governed
	// accuracy/latency rung. Dispatches are priced by the mode's int8
	// table (orin.EstimateInferenceBatchInt8); adaptation steps always
	// run and price in float32 regardless.
	Quantized bool
}

// EpochStats is the windowed telemetry of one control epoch — what the
// governor observes before actuating the next epoch's Controls, and
// what Report.Epochs records for analysis.
//
// Latency-derived fields are measured at planning time. Frames whose
// adaptation window is still open when they are counted have not yet
// absorbed their step share, so DeadlineHitRate judges them at the
// steady-state floor (their measured latency plus the expected share
// adaptPerStep/AdaptEvery); the estimate is exact in steady state and
// only differs transiently when the cadence changes mid-window. The
// final Report is always exact — shares land on the right frames
// regardless of epoch partitioning.
type EpochStats struct {
	// Epoch numbers the control epoch from 0; StartMs/EndMs bound it on
	// the virtual clock.
	Epoch          int
	StartMs, EndMs float64
	// Controls is the actuator set that was in force during the epoch.
	Controls Controls
	// Arrived counts camera frames that arrived in the epoch; Served
	// counts frames dispatched (possibly arrived earlier).
	Arrived, Served int
	// AdaptSteps, FramesDropped and AdaptsSkipped count the epoch's
	// adaptation and shedding activity.
	AdaptSteps, FramesDropped, AdaptsSkipped int
	// QueueDepth is the fleet backlog at the epoch boundary — frames
	// that arrived more than the batching grace before the boundary
	// but were neither served nor shed. Frames still coalescing inside
	// the Window grace are excluded, so an aligned-but-healthy epoch
	// reads zero; this is the governor's leading overload signal.
	QueueDepth int
	// DeadlineHitRate is the fraction of the epoch's served frames
	// within the deadline (1 when nothing was served).
	DeadlineHitRate float64
	// MeanQueueMs and MaxQueueMs summarize the epoch's measured queue
	// waits.
	MeanQueueMs, MaxQueueMs float64
	// BusyMs is the aggregate virtual-worker busy time charged to the
	// epoch's dispatches; Utilization normalizes it by worker-capacity
	// (Workers × epoch span).
	BusyMs      float64
	Utilization float64
	// BusyEnergyMJ is the epoch's dynamic energy (Watts × busy-ms over
	// its dispatches), IdleEnergyMJ the static rail draw (IdleWatts ×
	// epoch span), EnergyMJ their sum — all in millijoules.
	BusyEnergyMJ, IdleEnergyMJ, EnergyMJ float64
	// StreamArrivals counts the epoch's arrivals per board-local
	// stream id — the observation the per-stream forecasters consume.
	StreamArrivals []int
	// StreamForecasts is each stream's forecast arrival count for the
	// next epoch and ForecastArrived their sum — the leading load
	// signal predictive controllers and the fleet coordinator act on.
	// A Session fills them after observing the epoch; probe-simulated
	// stats leave them nil/zero (a what-if epoch updates no
	// forecaster).
	StreamForecasts []float64
	ForecastArrived float64

	// accumulators finalized into the exported fields.
	hits     int
	queueSum float64
}

// Controller steers the engine across control epochs: a governor
// policy in the sense of internal/govern.
type Controller interface {
	// Name labels the controller in reports and demos.
	Name() string
	// Start returns the controls for the first epoch given the engine
	// configuration.
	Start(cfg Config) Controls
	// Decide returns the controls for the next epoch. prev is the
	// telemetry of the epoch just planned and cur the controls it ran
	// under. probe simulates the next epoch under candidate controls
	// from the engine's exact current state — queue, worker busy
	// intervals, open adaptation windows — without committing to them;
	// exhaustive controllers (govern.Oracle) sweep it, rule-based ones
	// ignore it.
	Decide(prev EpochStats, cur Controls, probe func(Controls) EpochStats) Controls
}

// probe simulates one epoch [startMs, endMs) under candidate controls
// on a throwaway clone of the planner state.
func probe(p *planner, c Controls, startMs, endMs float64, workers int) EpochStats {
	q := p.clone()
	q.setControls(c)
	es := EpochStats{StartMs: startMs, EndMs: endMs, Controls: q.ctrl}
	q.runUntil(endMs, &es)
	finalizeEpoch(&es, q, endMs-startMs, workers)
	return es
}

// finalizeEpoch turns the epoch's accumulators into telemetry: arrival
// counting, end-of-epoch backlog, rates, utilization and the static
// energy of parking the board at the epoch's mode for its span.
func finalizeEpoch(es *EpochStats, p *planner, spanMs float64, workers int) {
	es.StreamArrivals = make([]int, len(p.depth))
	for p.arrSeen < len(p.all) && p.all[p.arrSeen].arrMs < es.EndMs {
		es.StreamArrivals[p.all[p.arrSeen].stream]++
		p.arrSeen++
		es.Arrived++
	}
	// Backlog counts only frames past the batching grace: an arrival
	// still coalescing at the boundary is in-flight, not queued.
	for p.arrOld < len(p.all) && p.all[p.arrOld].arrMs < es.EndMs-p.e.windowMs {
		p.arrOld++
	}
	es.QueueDepth = p.arrOld - p.served - p.shed
	if es.QueueDepth < 0 {
		es.QueueDepth = 0
	}
	if es.Served > 0 {
		es.DeadlineHitRate = float64(es.hits) / float64(es.Served)
		es.MeanQueueMs = es.queueSum / float64(es.Served)
	} else {
		es.DeadlineHitRate = 1
	}
	if spanMs > 0 && !math.IsInf(spanMs, 1) {
		es.Utilization = es.BusyMs / (spanMs * float64(workers))
		es.IdleEnergyMJ = es.Controls.Mode.IdleWatts * spanMs
	}
	es.EnergyMJ = es.BusyEnergyMJ + es.IdleEnergyMJ
}

// Run serves every frame of every source to completion under the
// static configuration and reports. It is RunGoverned with a single
// control epoch spanning the whole run.
func (e *Engine) Run(sources []*stream.Source) Report {
	return e.RunGoverned(sources, 0, nil)
}

// RunGoverned serves the fleet in control epochs of epochMs virtual
// milliseconds: each epoch is planned on the event-time scheduler
// under the epoch's Controls, its dispatches execute on the host
// worker pool, and at the boundary the controller observes the epoch's
// telemetry (and may probe candidates) to actuate the next epoch's
// power mode, overload policy and adaptation cadence. Queue state,
// per-worker busy intervals, open adaptation windows and per-stream BN
// state all persist across epochs, so with a nil controller (or one
// that never changes the controls) any epoch partition reproduces
// Run's one-shot schedule exactly.
//
// epochMs <= 0 or a nil controller degenerates to a single epoch
// spanning the whole run. Static energy is charged only while the
// board is on: once the last frame is planned, the remaining busy tail
// is charged epoch by epoch until the last worker drains, never past
// the virtual makespan.
//
// RunGoverned is a Session driven to completion; external steppers
// (internal/shard's fleet coordinator) use the Session API directly.
// It is RunObserved with observability off.
func (e *Engine) RunGoverned(sources []*stream.Source, epochMs float64, ctl Controller) Report {
	return e.RunObserved(sources, epochMs, ctl, nil, obs.BoardMetrics{})
}
