package serve

import (
	"math"
	"sync"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/ufld"
)

// streamState is everything one camera stream owns while being served:
// a snapshot of every BatchNorm layer's state (running statistics and
// the γ/β parameters LD-BN-ADAPT updates), the stream's optimizer
// moments, and its pending adaptation window. Workers swap this state
// into whichever model replica happens to process the stream, so the
// stream's adaptation trajectory is independent of worker scheduling.
type streamState struct {
	mu sync.Mutex
	// bn holds one source per BN layer, in model.BatchNorms() order.
	bn []nn.BNSource
	// opt is the stream's private optimizer over the flattened γ/β
	// vector (state keyed by offset, not parameter pointer, so it
	// follows the stream across replicas).
	opt *bnOpt
	// steps counts the stream's lifetime adaptation steps (drives
	// warmup, and survives migration with the stream).
	steps int
	// baseSteps is the lifetime count at the moment the stream attached
	// to this board (zero for streams that started here): reports charge
	// a board only the steps it executed.
	baseSteps int
	// pending accumulates samples since the last adaptation step.
	pending []ufld.Sample
}

// newStreamState snapshots the deployed model's BN state for one
// stream.
func newStreamState(m *ufld.Model, cfg adapt.Config) *streamState {
	bns := m.BatchNorms()
	st := &streamState{bn: make([]nn.BNSource, len(bns))}
	flat := 0
	for i, b := range bns {
		st.bn[i] = nn.BNSource{
			Mean:  append([]float32(nil), b.RunningMean.Data...),
			Var:   append([]float32(nil), b.RunningVar.Data...),
			Gamma: append([]float32(nil), b.Gamma.Value.Data...),
			Beta:  append([]float32(nil), b.Beta.Value.Data...),
		}
		flat += 2 * b.C
	}
	st.opt = newBNOpt(cfg, flat)
	return st
}

// snapshot deep-copies the stream's adaptation state for migration:
// BN statistics and γ/β, optimizer moments, warmup counter and the
// pending adaptation-window samples (samples themselves are shared —
// they are read-only).
func (st *streamState) snapshot() *streamState {
	st.mu.Lock()
	defer st.mu.Unlock()
	cp := &streamState{
		bn:        make([]nn.BNSource, len(st.bn)),
		steps:     st.steps,
		baseSteps: st.steps,
		opt: &bnOpt{
			cfg:  st.opt.cfg,
			step: st.opt.step,
			m:    append([]float32(nil), st.opt.m...),
			v:    append([]float32(nil), st.opt.v...),
		},
		pending: append([]ufld.Sample(nil), st.pending...),
	}
	for i, b := range st.bn {
		cp.bn[i] = nn.BNSource{
			Mean:  append([]float32(nil), b.Mean...),
			Var:   append([]float32(nil), b.Var...),
			Gamma: append([]float32(nil), b.Gamma...),
			Beta:  append([]float32(nil), b.Beta...),
		}
	}
	return cp
}

// swapInto installs the stream's BN state on a replica's layers
// (caller holds st.mu).
func (st *streamState) swapInto(bns []*nn.BatchNorm2D) {
	for i, b := range bns {
		copy(b.RunningMean.Data, st.bn[i].Mean)
		copy(b.RunningVar.Data, st.bn[i].Var)
		copy(b.Gamma.Value.Data, st.bn[i].Gamma)
		copy(b.Beta.Value.Data, st.bn[i].Beta)
	}
}

// captureFrom copies a replica's (possibly updated) BN state back into
// the stream snapshot (caller holds st.mu).
func (st *streamState) captureFrom(bns []*nn.BatchNorm2D) {
	for i, b := range bns {
		copy(st.bn[i].Mean, b.RunningMean.Data)
		copy(st.bn[i].Var, b.RunningVar.Data)
		copy(st.bn[i].Gamma, b.Gamma.Value.Data)
		copy(st.bn[i].Beta, b.Beta.Value.Data)
	}
}

// bnOpt is a per-stream optimizer over the flattened γ/β vector. It
// mirrors nn.Adam / nn.SGD but keys its moments by flat offset instead
// of *nn.Param, so a stream's optimizer state is portable across the
// worker replicas that execute its adaptation steps.
type bnOpt struct {
	cfg  adapt.Config
	step int
	m, v []float32 // Adam moments, or m as SGD velocity
}

// newBNOpt allocates optimizer state for flat parameters.
func newBNOpt(cfg adapt.Config, flat int) *bnOpt {
	return &bnOpt{cfg: cfg, m: make([]float32, flat), v: make([]float32, flat)}
}

// apply performs one update on the replica's BN params from their
// accumulated gradients, advancing the stream's moments. The params
// must be the replica's BNParams() in model order, matching the flat
// layout the moments were allocated for.
func (o *bnOpt) apply(params []*nn.Param) {
	o.step++
	if o.cfg.UseAdam {
		const beta1, beta2, eps = 0.9, 0.999, 1e-8
		bc1 := 1 - math.Pow(beta1, float64(o.step))
		bc2 := 1 - math.Pow(beta2, float64(o.step))
		i := 0
		for _, p := range params {
			for j := range p.Value.Data {
				g := p.Grad.Data[j]
				o.m[i] = beta1*o.m[i] + (1-beta1)*g
				o.v[i] = beta2*o.v[i] + (1-beta2)*g*g
				mh := float64(o.m[i]) / bc1
				vh := float64(o.v[i]) / bc2
				p.Value.Data[j] -= float32(o.cfg.LR * mh / (math.Sqrt(vh) + eps))
				i++
			}
		}
		return
	}
	lr := float32(o.cfg.LR)
	mu := float32(o.cfg.Momentum)
	i := 0
	for _, p := range params {
		for j := range p.Value.Data {
			o.m[i] = mu*o.m[i] + p.Grad.Data[j]
			p.Value.Data[j] -= lr * o.m[i]
			i++
		}
	}
}
