package serve

import (
	"fmt"
	"math"

	"ldbnadapt/internal/obs"
	"ldbnadapt/internal/stream"
)

// Explainer is the optional controller extension the observability
// layer consumes: a governor that can say *why* its last Decide moved
// the controls ("pre-climb", "descend", "escalate-policy", ...). The
// interface lives in serve rather than govern so the trace emission
// sites (RunObserved here, the board actor in internal/shard) need no
// dependency on any concrete governor package.
type Explainer interface {
	// Explain describes the last Decide's branch in a short stable
	// token; traced verbatim, so keep it deterministic.
	Explain() string
}

// GovernEvent emits a governor-decision instant onto rec when the
// controller actually moved the controls, carrying the before/after
// actuator state and the deciding telemetry (hit rate, backlog,
// utilization) — plus the controller's own reason when it implements
// Explainer. Shared by RunObserved and the fleet board actors so the
// single-board and fleet traces use one vocabulary.
func GovernEvent(rec *obs.Recorder, ctl Controller, prev EpochStats, cur, next Controls) {
	if rec == nil || next == cur {
		return
	}
	detail := fmt.Sprintf("mode=%s->%s policy=%s->%s adapt=%d->%d quant=%t->%t hit=%.3f queue=%d util=%.3f",
		cur.Mode.Name, next.Mode.Name, cur.Policy, next.Policy, cur.AdaptEvery, next.AdaptEvery,
		cur.Quantized, next.Quantized,
		prev.DeadlineHitRate, prev.QueueDepth, prev.Utilization)
	if ex, ok := ctl.(Explainer); ok {
		if why := ex.Explain(); why != "" {
			detail += " why=" + why
		}
	}
	rec.Instant("govern", prev.EndMs, detail)
}

// RunObserved is RunGoverned with the observability layer attached:
// the session emits its frame/batch/epoch trace into rec and its
// serve-layer metrics into bm, and every controls change is traced as
// a governor instant. A nil recorder and zero BoardMetrics make it
// exactly RunGoverned (the no-op path costs pointer tests only).
func (e *Engine) RunObserved(sources []*stream.Source, epochMs float64, ctl Controller, rec *obs.Recorder, bm obs.BoardMetrics) Report {
	if len(sources) == 0 {
		return Report{}
	}
	if epochMs <= 0 || ctl == nil {
		epochMs = math.Inf(1)
	}
	s := e.NewSession(sources)
	s.Observe(rec, bm)
	if ctl != nil {
		s.SetControls(ctl.Start(e.cfg))
	}
	for {
		es := s.RunEpoch(s.Now() + epochMs)
		if s.Done() {
			break
		}
		if ctl != nil {
			cur := s.Controls()
			next := ctl.Decide(es, cur, func(c Controls) EpochStats {
				return s.Probe(c, epochMs)
			})
			GovernEvent(rec, ctl, es, cur, next)
			s.SetControls(next)
		}
	}
	return s.Finish()
}
