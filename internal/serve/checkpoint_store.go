package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// CheckpointStore is where a fleet's durable stream checkpoints live.
// Keys are fleet-global stream ids; each Put replaces the stream's
// previous checkpoint (recovery only ever wants the latest). A store
// must tolerate concurrent Puts for different streams — boards
// checkpoint in parallel at the epoch barrier.
type CheckpointStore interface {
	// Put durably records data as stream id's latest checkpoint.
	Put(stream int, data []byte) error
	// Latest returns stream id's most recent checkpoint, or ok=false
	// when the stream has never been checkpointed. An error means the
	// store exists but could not be read — callers should treat both
	// as "recover cold".
	Latest(stream int) (data []byte, ok bool, err error)
}

// MemCheckpoints is the in-process CheckpointStore: it survives board
// failure (boards are goroutine-simulated; the coordinator's memory
// is the durable domain) but not process death. It is the default
// store for chaos tests and simulations.
type MemCheckpoints struct {
	mu   sync.RWMutex
	data map[int][]byte
}

// NewMemCheckpoints returns an empty in-memory store.
func NewMemCheckpoints() *MemCheckpoints {
	return &MemCheckpoints{data: make(map[int][]byte)}
}

// Put implements CheckpointStore.
func (m *MemCheckpoints) Put(stream int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[stream] = append([]byte(nil), data...)
	return nil
}

// Latest implements CheckpointStore.
func (m *MemCheckpoints) Latest(stream int) ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.data[stream]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), d...), true, nil
}

// FileCheckpoints is the file-backed CheckpointStore: one file per
// stream under a directory, each Put written to a temp file and
// renamed into place so a crash mid-write leaves the previous
// checkpoint intact rather than a torn one.
type FileCheckpoints struct {
	dir string
}

// NewFileCheckpoints opens (creating if needed) a checkpoint
// directory.
func NewFileCheckpoints(dir string) (*FileCheckpoints, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	return &FileCheckpoints{dir: dir}, nil
}

// path is stream id's checkpoint file.
func (f *FileCheckpoints) path(stream int) string {
	return filepath.Join(f.dir, fmt.Sprintf("stream-%04d.ckpt", stream))
}

// Put implements CheckpointStore (atomic via temp + rename).
func (f *FileCheckpoints) Put(stream int, data []byte) error {
	tmp, err := os.CreateTemp(f.dir, fmt.Sprintf("stream-%04d-*.tmp", stream))
	if err != nil {
		return fmt.Errorf("serve: checkpoint temp: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("serve: checkpoint write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: checkpoint close: %w", err)
	}
	if err := os.Rename(name, f.path(stream)); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: checkpoint rename: %w", err)
	}
	return nil
}

// Latest implements CheckpointStore.
func (f *FileCheckpoints) Latest(stream int) ([]byte, bool, error) {
	data, err := os.ReadFile(f.path(stream))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("serve: checkpoint read: %w", err)
	}
	return data, true, nil
}
