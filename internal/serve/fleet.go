package serve

import (
	"fmt"
	"time"

	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/ufld"
)

// SyntheticFleet generates n simulated camera streams for a detector
// config: each stream renders its own scenes under its own seed and
// target domain, so the streams drift independently like cameras on
// different vehicles. Two-lane configs draw every stream from the
// MoLane-style model-vehicle shift; four-lane configs alternate
// TuLane-style highway and MoLane-style shifts so the fleet mixes
// domains.
func SyntheticFleet(cfg ufld.Config, streams, framesPerStream int, fps float64, seed uint64) []*stream.Source {
	return SyntheticFleetRates(cfg, streams, framesPerStream, []float64{fps}, seed)
}

// fleetStreamDataset renders stream i's frames under the fleet's
// per-stream seed and domain-mix policy: two-lane configs draw every
// stream from the MoLane-style shift, four-lane configs alternate
// TuLane-style highway and MoLane-style shifts. Every fleet generator
// goes through here so fixed-rate and scheduled fleets stay
// comparable under the same seed.
func fleetStreamDataset(cfg ufld.Config, i, frames int, seed uint64) *ufld.Dataset {
	layout, domain := carlane.Ego2, carlane.MoReal
	if cfg.Lanes == 4 {
		if i%2 == 0 {
			layout, domain = carlane.Quad4, carlane.TuReal
		} else {
			layout, domain = carlane.Mo4, carlane.MoReal
		}
	}
	return carlane.Generate(cfg, carlane.SplitSpec{
		Name:    fmt.Sprintf("fleet/stream-%02d", i),
		Layouts: []carlane.Layout{layout},
		Domains: []carlane.Domain{domain},
		N:       frames,
		Seed:    seed + uint64(i)*101,
	})
}

// SyntheticFleetRates is SyntheticFleet with explicit per-stream frame
// rates: stream i runs at rates[i%len(rates)], so mixed-FPS fleets
// (e.g. alternating 30 and 15 FPS cameras) exercise the event-time
// scheduler's interleaved arrivals and per-stream backlog caps.
func SyntheticFleetRates(cfg ufld.Config, streams, framesPerStream int, rates []float64, seed uint64) []*stream.Source {
	out := make([]*stream.Source, streams)
	for i := range out {
		out[i] = stream.NewSource(fleetStreamDataset(cfg, i, framesPerStream, seed), rates[i%len(rates)])
	}
	return out
}

// SyntheticFleetShared generates a fleet-scale workload: one scene set
// is rendered once (framesPerStream samples under the fleet seed) and
// shared by every stream, with stream i's arrivals phase-shifted by
// i/streams of a frame period so the fleet's load interleaves instead
// of arriving in lockstep spikes. Rendering cost is O(frames), not
// O(streams × frames), which is what makes 64-board × 1024-stream
// coordinator benchmarks affordable; per-stream adaptation still
// diverges because every stream owns its BN state and sees its own
// arrival clock. Use SyntheticFleet when per-stream scene drift
// matters more than scale.
func SyntheticFleetShared(cfg ufld.Config, streams, framesPerStream int, fps float64, seed uint64) []*stream.Source {
	if streams <= 0 {
		return nil
	}
	base := stream.NewSource(fleetStreamDataset(cfg, 0, framesPerStream, seed), fps)
	period := base.Period()
	out := make([]*stream.Source, streams)
	out[0] = base
	for i := 1; i < streams; i++ {
		shift := time.Duration(int64(period) * int64(i) / int64(streams))
		frames := make([]stream.Frame, len(base.Frames))
		for k, fr := range base.Frames {
			fr.Arrival += shift
			frames[k] = fr
		}
		out[i] = &stream.Source{FPS: fps, Frames: frames}
	}
	return out
}

// StreamSchedule describes one time-varying camera in a fleet: when it
// joins and the rate phases it plays. A short schedule is a stream
// that leaves early.
type StreamSchedule struct {
	// Start is the join time of the stream's first frame.
	Start time.Duration
	// Phases is the stream's rate schedule in order.
	Phases []stream.RatePhase
}

// SyntheticFleetSchedules is SyntheticFleet with explicit per-stream
// time-varying schedules: bursty cameras, diurnal FPS ramps, and
// stream join/leave all reduce to phase lists, which is what gives a
// closed-loop governor load swings to react to. Each stream renders
// exactly the frames its schedule plays, under the same per-stream
// seed and domain mix as SyntheticFleet.
func SyntheticFleetSchedules(cfg ufld.Config, scheds []StreamSchedule, seed uint64) []*stream.Source {
	out := make([]*stream.Source, len(scheds))
	for i, sch := range scheds {
		frames := 0
		for _, p := range sch.Phases {
			frames += p.Frames
		}
		out[i] = stream.NewSourceSchedule(fleetStreamDataset(cfg, i, frames, seed), sch.Start, sch.Phases)
	}
	return out
}

// BurstyFleet is the deterministic governor scenario: streams cycles
// times through a lull (lullFrames at lullFPS) followed by a burst
// (burstFrames at burstFPS), with every camera bursting together so
// fleet load genuinely swings instead of averaging out — plus one
// extra camera that joins one full cycle late and leaves after a
// single cycle, exercising join/leave. This is the workload where a
// static mode must choose between burning the burst-sized power
// budget through every lull and missing deadlines in every burst.
func BurstyFleet(cfg ufld.Config, streams, cycles, lullFrames, burstFrames int, lullFPS, burstFPS float64, seed uint64) []*stream.Source {
	cycle := []stream.RatePhase{
		{Frames: lullFrames, FPS: lullFPS},
		{Frames: burstFrames, FPS: burstFPS},
	}
	var phases []stream.RatePhase
	for c := 0; c < cycles; c++ {
		phases = append(phases, cycle...)
	}
	scheds := make([]StreamSchedule, streams+1)
	for i := 0; i < streams; i++ {
		scheds[i] = StreamSchedule{Phases: phases}
	}
	cycleSpan := time.Duration(float64(lullFrames)/lullFPS*float64(time.Second)) +
		time.Duration(float64(burstFrames)/burstFPS*float64(time.Second))
	scheds[streams] = StreamSchedule{Start: cycleSpan, Phases: cycle}
	return SyntheticFleetSchedules(cfg, scheds, seed)
}
