package serve

import (
	"fmt"

	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/ufld"
)

// SyntheticFleet generates n simulated camera streams for a detector
// config: each stream renders its own scenes under its own seed and
// target domain, so the streams drift independently like cameras on
// different vehicles. Two-lane configs draw every stream from the
// MoLane-style model-vehicle shift; four-lane configs alternate
// TuLane-style highway and MoLane-style shifts so the fleet mixes
// domains.
func SyntheticFleet(cfg ufld.Config, streams, framesPerStream int, fps float64, seed uint64) []*stream.Source {
	return SyntheticFleetRates(cfg, streams, framesPerStream, []float64{fps}, seed)
}

// SyntheticFleetRates is SyntheticFleet with explicit per-stream frame
// rates: stream i runs at rates[i%len(rates)], so mixed-FPS fleets
// (e.g. alternating 30 and 15 FPS cameras) exercise the event-time
// scheduler's interleaved arrivals and per-stream backlog caps.
func SyntheticFleetRates(cfg ufld.Config, streams, framesPerStream int, rates []float64, seed uint64) []*stream.Source {
	out := make([]*stream.Source, streams)
	for i := range out {
		fps := rates[i%len(rates)]
		layout, domain := carlane.Ego2, carlane.MoReal
		if cfg.Lanes == 4 {
			if i%2 == 0 {
				layout, domain = carlane.Quad4, carlane.TuReal
			} else {
				layout, domain = carlane.Mo4, carlane.MoReal
			}
		}
		ds := carlane.Generate(cfg, carlane.SplitSpec{
			Name:    fmt.Sprintf("fleet/stream-%02d", i),
			Layouts: []carlane.Layout{layout},
			Domains: []carlane.Domain{domain},
			N:       framesPerStream,
			Seed:    seed + uint64(i)*101,
		})
		out[i] = stream.NewSource(ds, fps)
	}
	return out
}
