package serve

import (
	"testing"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/stream"
)

// overloadConfig builds a deployment that one worker cannot sustain:
// three 30 FPS cameras against the 15 W mode, whose priced frame cost
// is several camera periods (Fig. 3 places 15 W far over the 33 ms
// budget even for a single camera).
func overloadConfig(policy stream.OverloadPolicy) Config {
	return Config{
		Variant:    resnet.R18,
		Workers:    1,
		MaxBatch:   4,
		Window:     2 * time.Millisecond,
		AdaptEvery: 2,
		Adapt:      adapt.DefaultConfig(),
		Mode:       orin.Mode15W,
		Policy:     policy,
	}
}

// TestSchedUnderloadedNearZeroQueue: when every stream's work fits its
// camera period with room to spare, measured queue waits collapse to
// (at most) the batching grace and nothing is shed — the event-time
// scheduler must not invent queueing that is not there.
func TestSchedUnderloadedNearZeroQueue(t *testing.T) {
	m := testModel(41)
	// 5 FPS (200 ms period) at 60 W: per-period work is tens of ms.
	fleet := SyntheticFleet(m.Cfg, 2, 8, 5, 7)
	e := New(m, Config{
		Workers:    1,
		MaxBatch:   2, // both streams arrive together: batch fills instantly
		Window:     2 * time.Millisecond,
		AdaptEvery: 2,
		Adapt:      adapt.DefaultConfig(),
		Mode:       orin.Mode60W,
	})
	rep := e.Run(fleet)
	if rep.Frames != 16 {
		t.Fatalf("served %d frames, want 16", rep.Frames)
	}
	if rep.MaxQueueDepth > 1 {
		t.Fatalf("underloaded fleet reached queue depth %d", rep.MaxQueueDepth)
	}
	windowMs := 2.0
	for si, sr := range rep.Streams {
		if sr.MaxQueueMs > windowMs+1e-9 {
			t.Fatalf("stream %d max queue wait %.3f ms exceeds the %.1f ms batching grace", si, sr.MaxQueueMs, windowMs)
		}
	}
	if rep.FramesDropped != 0 || rep.AdaptsSkipped != 0 {
		t.Fatalf("underloaded fleet shed work: %d dropped, %d skipped", rep.FramesDropped, rep.AdaptsSkipped)
	}
	// Synchronized arrivals fill the MaxBatch=2 batch the instant it
	// opens, so the wait is not even the window grace — it is zero.
	if rep.MeanQueueMs > 1e-9 {
		t.Fatalf("mean queue wait %.6f ms, want 0", rep.MeanQueueMs)
	}
}

// TestSchedDropNoneQueueGrowsUnbounded: an overloaded fleet under
// DropNone serves everything, so the backlog — and every later frame's
// measured wait — keeps growing for the whole run.
func TestSchedDropNoneQueueGrowsUnbounded(t *testing.T) {
	m := testModel(42)
	fleet := SyntheticFleet(m.Cfg, 3, 12, 30, 13)
	rep := New(m, overloadConfig(stream.DropNone)).Run(fleet)
	if rep.Frames != 36 {
		t.Fatalf("DropNone served %d frames, want all 36", rep.Frames)
	}
	if rep.FramesDropped != 0 || rep.AdaptsSkipped != 0 {
		t.Fatalf("DropNone shed work: %d dropped, %d skipped", rep.FramesDropped, rep.AdaptsSkipped)
	}
	periodMs := 1000.0 / 30.0
	if rep.P99QueueMs < 3*periodMs {
		t.Fatalf("overloaded DropNone p99 queue wait %.1f ms — expected runaway growth ≫ %.1f ms period", rep.P99QueueMs, periodMs)
	}
	// Latency must vary with load: the backlog makes late frames far
	// slower than early ones.
	for si, sr := range rep.Streams {
		if sr.MaxLatencyMs <= sr.P50LatencyMs {
			t.Fatalf("stream %d latency flat (p50 %.1f ms, max %.1f ms) — not load-dependent", si, sr.P50LatencyMs, sr.MaxLatencyMs)
		}
	}
}

// TestSchedDropFramesBoundsQueueWait: DropFrames sheds frames older
// than the backlog cap at dispatch time, so every frame actually
// served waited at most Backlog camera periods — the virtual clock
// stays within one period of arrivals at the default cap.
func TestSchedDropFramesBoundsQueueWait(t *testing.T) {
	m := testModel(43)
	const streams, frames = 3, 12
	fleet := SyntheticFleet(m.Cfg, streams, frames, 30, 17)
	rep := New(m, overloadConfig(stream.DropFrames)).Run(fleet)
	if rep.FramesDropped == 0 {
		t.Fatal("overloaded DropFrames dropped nothing")
	}
	if rep.Frames+rep.FramesDropped != streams*frames {
		t.Fatalf("served %d + dropped %d != %d total", rep.Frames, rep.FramesDropped, streams*frames)
	}
	periodMs := 1000.0 / 30.0
	for si, sr := range rep.Streams {
		if sr.MaxQueueMs > periodMs+1e-9 {
			t.Fatalf("stream %d served a frame after %.1f ms queue wait — beyond the %.1f ms backlog cap", si, sr.MaxQueueMs, periodMs)
		}
	}
}

// TestSchedSkipAdaptShedsSteps: SkipAdapt serves every frame but sheds
// due adaptation steps while a stream is behind, and every completed
// window is accounted either as a step or a skip.
func TestSchedSkipAdaptShedsSteps(t *testing.T) {
	m := testModel(44)
	const streams, frames, every = 3, 12, 2
	fleet := SyntheticFleet(m.Cfg, streams, frames, 30, 19)
	rep := New(m, overloadConfig(stream.SkipAdapt)).Run(fleet)
	if rep.Frames != streams*frames {
		t.Fatalf("SkipAdapt served %d frames, want all %d", rep.Frames, streams*frames)
	}
	if rep.FramesDropped != 0 {
		t.Fatalf("SkipAdapt dropped %d frames", rep.FramesDropped)
	}
	if rep.AdaptsSkipped == 0 {
		t.Fatal("overloaded SkipAdapt skipped nothing")
	}
	for si, sr := range rep.Streams {
		if sr.AdaptSteps+sr.AdaptsSkipped != frames/every {
			t.Fatalf("stream %d: %d steps + %d skips != %d completed windows",
				si, sr.AdaptSteps, sr.AdaptsSkipped, frames/every)
		}
	}
}

// TestSchedPlanIsDeterministic: the virtual-clock plan is pure
// arithmetic over arrivals and prices, so two plans of the same fleet
// must agree dispatch for dispatch.
func TestSchedPlanIsDeterministic(t *testing.T) {
	m := testModel(45)
	fleet := SyntheticFleet(m.Cfg, 3, 10, 30, 23)
	e := New(m, overloadConfig(stream.DropFrames))
	a, b := e.plan(fleet), e.plan(fleet)
	if len(a.batches) != len(b.batches) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a.batches), len(b.batches))
	}
	for i := range a.batches {
		ab, bb := a.batches[i], b.batches[i]
		if ab.dispatchMs != bb.dispatchMs || ab.worker != bb.worker || len(ab.frames) != len(bb.frames) {
			t.Fatalf("batch %d differs: %+v vs %+v", i, ab, bb)
		}
	}
	if a.makespanMs != b.makespanMs {
		t.Fatalf("makespans differ: %f vs %f", a.makespanMs, b.makespanMs)
	}
}

// TestSchedMixedFPSFleet: a mixed-rate fleet interleaves arrivals; the
// scheduler must serve every frame of both rates and report sane
// virtual time.
func TestSchedMixedFPSFleet(t *testing.T) {
	m := testModel(46)
	fleet := SyntheticFleetRates(m.Cfg, 4, 6, []float64{30, 10}, 29)
	if fleet[0].FPS != 30 || fleet[1].FPS != 10 || fleet[2].FPS != 30 || fleet[3].FPS != 10 {
		t.Fatalf("rates not cycled: %v %v %v %v", fleet[0].FPS, fleet[1].FPS, fleet[2].FPS, fleet[3].FPS)
	}
	e := New(m, Config{
		Workers:    2,
		MaxBatch:   4,
		AdaptEvery: 3,
		Adapt:      adapt.DefaultConfig(),
		Mode:       orin.Mode60W,
	})
	rep := e.Run(fleet)
	if rep.Frames != 24 {
		t.Fatalf("served %d frames, want 24", rep.Frames)
	}
	// The 10 FPS streams span 500 ms of virtual time; the makespan must
	// cover their last arrival.
	if rep.VirtualSeconds < 0.5 {
		t.Fatalf("virtual makespan %.3f s shorter than the slow streams' arrival span", rep.VirtualSeconds)
	}
}

// TestSchedFullyShedStreamReports is the empty-latency-slice
// regression: a stream whose every frame goes stale behind a hogged
// worker serves nothing under DropFrames, so its report aggregates
// zero latency samples. The report path must guard the percentile
// calls on the samples themselves — metrics.Percentile panics on empty
// input — and still account every shed frame.
func TestSchedFullyShedStreamReports(t *testing.T) {
	m := testModel(47)
	// Stream 0 floods the single worker (40 frames at 200 FPS); stream 1
	// joins mid-flood at 100 FPS, so its Backlog=1 shed cap is one 10 ms
	// period while the queue ahead of it is already tens of frames deep:
	// every one of its frames is stale by dispatch time.
	fleet := SyntheticFleetSchedules(m.Cfg, []StreamSchedule{
		{Phases: []stream.RatePhase{{Frames: 40, FPS: 200}}},
		{Start: 50 * time.Millisecond, Phases: []stream.RatePhase{{Frames: 6, FPS: 100}}},
	}, 31)
	rep := New(m, overloadConfig(stream.DropFrames)).Run(fleet)
	shed := rep.Streams[1]
	if shed.Frames != 0 || shed.FramesDropped != 6 {
		t.Fatalf("shed stream served %d, dropped %d — want 0 served, all 6 dropped",
			shed.Frames, shed.FramesDropped)
	}
	if shed.P50LatencyMs != 0 || shed.MaxLatencyMs != 0 || shed.MaxQueueMs != 0 || shed.MissRate != 0 {
		t.Fatalf("shed stream reports phantom latency: %+v", shed)
	}
	if rep.Frames == 0 || rep.Frames+rep.FramesDropped != 46 {
		t.Fatalf("served %d + dropped %d != 46 produced", rep.Frames, rep.FramesDropped)
	}
	if rep.P50LatencyMs <= 0 {
		t.Fatal("fleet percentiles lost the served stream's samples")
	}
}
