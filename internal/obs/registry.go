package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic count. A nil *Counter
// is a no-op, which is the disabled-observability fast path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins atomic float64. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. The sum accumulates as
// integer microseconds so concurrent boards observing in any order
// produce the identical total — float addition is order-dependent,
// atomic integer addition is not, and the registry dump must match
// between lockstep and concurrent fleet runs. A nil *Histogram is a
// no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last bucket is +inf
	n      atomic.Int64
	sumUs  atomic.Int64
}

// Observe records one sample (in the bounds' unit, milliseconds for
// the standard instruments).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sumUs.Add(int64(math.Round(v * 1000)))
}

// Count reads the total number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reads the accumulated sample total, rounded per-sample to a
// microsecond (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumUs.Load()) / 1000
}

// Registry is a name-keyed instrument store. Lookups are idempotent —
// the same name always returns the same instrument — so independent
// layers can share fleet-wide counters by name. A nil *Registry hands
// out nil instruments; metrics-off costs one pointer test per
// emission site.
type Registry struct {
	mu    sync.Mutex
	names []string
	items map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]any)}
}

func (r *Registry) lookup(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if it, ok := r.items[name]; ok {
		return it
	}
	it := mk()
	r.items[name] = it
	r.names = append(r.names, name)
	return it
}

// Counter returns the counter registered under name, creating it on
// first use (nil on a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	it := r.lookup(name, func() any { return new(Counter) })
	c, ok := it.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a counter", name, it))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	it := r.lookup(name, func() any { return new(Gauge) })
	g, ok := it.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a gauge", name, it))
	}
	return g
}

// Histogram returns the fixed-bucket histogram registered under name,
// creating it with the given upper bounds on first use (nil on a nil
// registry). Bounds must be ascending; later calls reuse the first
// registration's bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	it := r.lookup(name, func() any {
		b := append([]float64(nil), bounds...)
		return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	})
	h, ok := it.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a histogram", name, it))
	}
	return h
}

// QueueWaitBuckets are the standard queue-wait histogram bounds in
// milliseconds, spanning sub-period waits up to multi-second backlog.
var QueueWaitBuckets = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}

// BoardMetrics bundles the serve-layer instruments one planner
// updates. The zero value is fully no-op (all-nil instruments), which
// is what probe clones and metrics-off runs carry.
type BoardMetrics struct {
	// QueueWaitMs distributes each served frame's queue wait.
	QueueWaitMs *Histogram
	// Served counts frames that completed a forward pass.
	Served *Counter
	// Dropped counts frames shed by the DropFrames overload policy.
	Dropped *Counter
	// Skipped counts adaptation steps suppressed by SkipAdapt.
	Skipped *Counter
	// AdaptSteps counts BN adaptation steps actually taken.
	AdaptSteps *Counter
}

// NewBoardMetrics resolves the standard serve-layer instruments from
// the registry. The names are fleet-shared on purpose: every board
// adds into the same atomic counters, so the dump aggregates the
// fleet without a reduction pass. A nil registry yields the no-op
// bundle.
func NewBoardMetrics(r *Registry) BoardMetrics {
	return BoardMetrics{
		QueueWaitMs: r.Histogram("serve.queue_wait_ms", QueueWaitBuckets),
		Served:      r.Counter("serve.frames_served"),
		Dropped:     r.Counter("serve.frames_dropped"),
		Skipped:     r.Counter("serve.adapts_skipped"),
		AdaptSteps:  r.Counter("serve.adapt_steps"),
	}
}
