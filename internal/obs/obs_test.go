package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilSafety pins the disabled-observability contract: a nil Trace
// hands out nil Recorders, a nil Registry nil instruments, and every
// method on them is a no-op — so emission sites need no enabled
// branches and the hot path pays only pointer tests.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	rec := tr.Recorder(0, nil)
	if rec != nil {
		t.Fatal("nil trace handed out a live recorder")
	}
	rec.Span("batch", 0, 1, 2, "")
	rec.Frame(0, 0, 1, 2, "")
	rec.Instant("epoch", 1, "")
	if got := rec.StreamID(3); got != -1 {
		t.Fatalf("nil recorder mapped stream to %d", got)
	}
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil trace produced %d events", len(evs))
	}

	var reg *Registry
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(1)
	reg.Histogram("h", QueueWaitBuckets).Observe(1)
	bm := NewBoardMetrics(reg)
	bm.Served.Add(1)
	bm.QueueWaitMs.Observe(2)
	if bm.Served.Value() != 0 || bm.QueueWaitMs.Count() != 0 {
		t.Fatal("nil registry instruments accumulated")
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry dump: err=%v len=%d", err, buf.Len())
	}
}

// TestMergeOrder pins the deterministic merge: concatenation in
// recorder-creation order, stable sort by timestamp — so an
// equal-timestamp tie resolves fleet-recorder-first, then by emission
// order within a recorder, independent of which goroutine emitted
// when.
func TestMergeOrder(t *testing.T) {
	tr := NewTrace()
	fleet := tr.Recorder(-1, nil)
	b0 := tr.Recorder(0, func(local int) int { return 10 + local })
	fleet.Instant("epoch", 100, "")
	b0.Span("batch", 0, 100, 5, "") // same stamp as the fleet instant
	b0.Frame(2, 7, 90, 104, "ok")

	evs := tr.Events()
	want := []struct {
		kind  Kind
		tsMs  float64
		board int
	}{
		{Begin, 90, 0},
		{Instant, 100, -1}, // fleet recorder created first wins the tie
		{Span, 100, 0},
		{End, 104, 0},
	}
	if len(evs) != len(want) {
		t.Fatalf("merged %d events, want %d", len(evs), len(want))
	}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].TsMs != w.tsMs || evs[i].Board != w.board {
			t.Fatalf("event %d = %+v, want kind=%d ts=%g board=%d", i, evs[i], w.kind, w.tsMs, w.board)
		}
	}
	if evs[0].Stream != 12 {
		t.Fatalf("local stream 2 mapped to %d, want 12", evs[0].Stream)
	}
}

// TestChromeJSONWellFormed round-trips the export through
// encoding/json and checks the structural invariants cmd/tracecheck
// enforces on real runs: the file parses, async begin/end pairs
// balance per (pid, id), and rewriting produces identical bytes.
func TestChromeJSONWellFormed(t *testing.T) {
	tr := NewTrace()
	fleet := tr.Recorder(-1, nil)
	b0 := tr.Recorder(0, nil)
	fleet.Instant("migrate", 50, "stream=1 from=0 to=1 reason=saturation")
	b0.Span("epoch", -1, 0, 100, "epoch=0")
	b0.Span("batch", 0, 10, 8, "n=2")
	b0.Frame(1, 0, 5, 18, "queue_ms=5.000")
	b0.Frame(1, 1, 12, 18, "queue_ms=6.000")

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			ID   string  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	open := map[string]int{}
	spans, instants := 0, 0
	for _, e := range doc.TraceEvents {
		key := e.ID + "@" + string(rune(e.Pid))
		switch e.Ph {
		case "b":
			open[key]++
		case "e":
			open[key]--
			if open[key] < 0 {
				t.Fatalf("async end before begin for id %s", e.ID)
			}
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Fatalf("dangling async pair %s (%d opens)", key, n)
		}
	}
	if spans != 2 || instants != 1 {
		t.Fatalf("got %d spans, %d instants; want 2, 1", spans, instants)
	}

	var again bytes.Buffer
	if err := tr.WriteChromeJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("rewriting the same trace produced different bytes")
	}
}

// TestRegistryDump pins the text dump format and the histogram's
// order-independent integer-microsecond sum.
func TestRegistryDump(t *testing.T) {
	reg := NewRegistry()
	bm := NewBoardMetrics(reg)
	if bm2 := NewBoardMetrics(reg); bm2.Served != bm.Served {
		t.Fatal("registry lookups are not idempotent")
	}
	bm.Served.Add(3)
	bm.QueueWaitMs.Observe(0.25)
	bm.QueueWaitMs.Observe(7.5)
	bm.QueueWaitMs.Observe(10000) // beyond the last bound -> +inf bucket
	reg.Gauge("fleet.wall_seconds").Set(1.5)

	if got := bm.QueueWaitMs.Sum(); got != 10007.75 {
		t.Fatalf("histogram sum %v, want 10007.75", got)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"serve.frames_served 3\n",
		"fleet.wall_seconds 1.5\n",
		"serve.queue_wait_ms count 3\n",
		"serve.queue_wait_ms sum_ms 10007.750\n",
		"serve.queue_wait_ms le=0.5 1\n",
		"serve.queue_wait_ms le=+inf 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	if !sortedLinesByPrefix(out) {
		t.Fatalf("dump not sorted by name:\n%s", out)
	}
}

func sortedLinesByPrefix(s string) bool {
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		a := strings.SplitN(lines[i-1], " ", 2)[0]
		b := strings.SplitN(lines[i], " ", 2)[0]
		if b < a {
			return false
		}
	}
	return true
}

// TestEpochCSV pins the timeline header and fixed-precision rows.
func TestEpochCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []EpochRow{
		{Board: 0, Epoch: 0, StartMs: 0, EndMs: 250, Mode: "MAXN (60W)", Policy: "drop-frames",
			AdaptEvery: 1, Arrived: 12, Forecast: 11.5, Served: 10, Dropped: 2,
			Queue: 1, HitRate: 0.8333, Util: 0.91, EnergyMJ: 1.25},
	}
	if err := WriteEpochCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "board,epoch,start_ms,end_ms,mode,") {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,0,0.000,250.000,MAXN (60W),drop-frames,1,false,12,11.50,10,2,0,1,0.8333,0.9100,1.250" {
		t.Fatalf("row = %q", lines[1])
	}
}
