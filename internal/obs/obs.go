// Package obs is the deterministic event-time observability layer of
// the serving stack: trace spans and instant events stamped on the
// engine's virtual clock (internal/serve's event-time milliseconds),
// plus a fleet metrics registry (counters, gauges, fixed-bucket
// histograms). Because every timestamp is virtual, a seeded run's
// trace is bitwise-reproducible — and identical between the fleet
// runtime's Config.Lockstep serial reference and its concurrent
// actors — so the observability layer itself is pinned by tests
// (shard's TestConcurrentMatchesLockstep) rather than best-effort.
//
// The design splits three ways:
//
//   - Recorder is a single-writer event buffer. The fleet coordinator
//     owns one (board -1), each board actor owns one; the epoch
//     barrier's happens-before edges make the merge race-free without
//     any locking on the emission path.
//   - Trace owns the recorders and merges their buffers into one
//     deterministic event order: concatenate in recorder-creation
//     order (fleet first, then boards in open order), then stable-sort
//     by timestamp — so equal-timestamp events resolve
//     fleet-before-board, then by within-recorder emission order,
//     identically in lockstep and concurrent mode.
//   - Registry (registry.go) holds named atomic instruments with a
//     nil-safe no-op default: a nil *Registry yields nil instruments
//     whose methods return immediately, so the hot path pays a
//     pointer test and nothing else when observability is off.
//
// Exporters live in export.go: Chrome trace-event JSON (Perfetto
// loads it; one track per board, one per fleet stream), a CSV epoch
// timeline, and a text metrics dump. cmd/ldserve wires them behind
// -trace-out / -metrics-out / -epoch-csv, and cmd/tracecheck
// validates an emitted trace (spans nest, async pairs balance).
//
// This package is observability plumbing; the post-hoc experiment
// report tables (means, percentiles) live in internal/metrics.
package obs

import "sort"

// Kind discriminates the event shapes a Recorder emits.
type Kind uint8

const (
	// Span is a complete duration event on a board worker lane (or the
	// control lane): a batched forward, an adaptation step, a control
	// epoch. Spans on one lane nest strictly.
	Span Kind = iota
	// Begin opens a frame-lifecycle interval on a stream track. Frame
	// intervals of one stream may partially overlap (a frame arrives
	// while the previous one is still queued), which is why frames are
	// async begin/end pairs rather than Spans.
	Begin
	// End closes the Begin with the same stream and ID.
	End
	// Instant is a zero-duration control-plane event: an epoch
	// boundary, a governor decision, a migration, a kill/drain/join,
	// an admission, a checkpoint write.
	Instant
)

// Event is one trace record. Timestamps and durations are virtual
// event-time milliseconds (the serve engine's clock), never wall time.
type Event struct {
	Kind Kind
	// Name labels the event ("batch", "adapt", "epoch", "frame",
	// "migrate", ...). The taxonomy is documented in
	// internal/shard/README.md.
	Name string
	// TsMs is the event start (Span/Begin) or occurrence (Instant/End)
	// on the virtual clock.
	TsMs float64
	// DurMs is the Span length; zero for the other kinds.
	DurMs float64
	// Board is the emitting board's dense id, or -1 for the fleet
	// coordinator.
	Board int
	// Worker is the board worker lane a Span occupies, or -1 for the
	// board's control lane (epoch spans, instants).
	Worker int
	// Stream is the fleet-global stream id for Begin/End (frame
	// lifecycle), or -1 when the event is not stream-scoped.
	Stream int
	// ID pairs a Begin with its End within one stream: the frame
	// index, which survives migration (Handoff keeps frame indices).
	ID int
	// Detail is a preformatted "k=v k=v" payload. Callers format it
	// with fixed-precision verbs so the bytes are reproducible.
	Detail string
}

// Recorder is a single-writer append-only event buffer bound to one
// board (or the fleet coordinator, board -1). All methods are nil-safe
// no-ops so emission sites need no "if enabled" guards beyond the one
// pointer test, and probe clones can silence tracing by nilling their
// recorder.
type Recorder struct {
	board     int
	mapStream func(local int) int
	events    []Event
}

// StreamID translates a board-local stream index to the fleet-global
// id (identity when no mapping was installed, -1 on a nil Recorder or
// unknown local index).
func (r *Recorder) StreamID(local int) int {
	if r == nil {
		return -1
	}
	if r.mapStream == nil {
		return local
	}
	return r.mapStream(local)
}

// Span records a complete duration event on a worker lane (worker -1 =
// the board's control lane).
func (r *Recorder) Span(name string, worker int, startMs, durMs float64, detail string) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{
		Kind: Span, Name: name, TsMs: startMs, DurMs: durMs,
		Board: r.board, Worker: worker, Stream: -1, Detail: detail,
	})
}

// Frame records one frame's lifecycle interval on its stream track:
// a Begin at the arrival timestamp and the matching End at completion
// (or shed) time, emitted together once the outcome is known — so a
// trace never holds a dangling open, even when a board is killed
// mid-epoch (lost frames emit nothing; the kill instant counts them).
func (r *Recorder) Frame(localStream, id int, beginMs, endMs float64, detail string) {
	if r == nil {
		return
	}
	gid := r.StreamID(localStream)
	r.events = append(r.events,
		Event{Kind: Begin, Name: "frame", TsMs: beginMs, Board: r.board, Worker: -1, Stream: gid, ID: id},
		Event{Kind: End, Name: "frame", TsMs: endMs, Board: r.board, Worker: -1, Stream: gid, ID: id, Detail: detail},
	)
}

// Instant records a zero-duration control-plane event on the board's
// control lane (or the fleet track for the coordinator's recorder).
func (r *Recorder) Instant(name string, tsMs float64, detail string) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{
		Kind: Instant, Name: name, TsMs: tsMs,
		Board: r.board, Worker: -1, Stream: -1, Detail: detail,
	})
}

// Trace owns the run's recorders. A nil *Trace hands out nil
// Recorders, so "tracing off" needs no branches at the wiring sites
// either.
type Trace struct {
	recs []*Recorder
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Recorder creates and registers a single-writer event buffer for one
// board (-1 = the fleet coordinator). mapStream translates board-local
// stream indices to fleet-global ids (nil = identity). Creation order
// is the merge tie-break order, so create the coordinator's recorder
// before any board's. Not safe for concurrent use — the fleet
// coordinator opens boards single-threaded.
func (t *Trace) Recorder(board int, mapStream func(local int) int) *Recorder {
	if t == nil {
		return nil
	}
	r := &Recorder{board: board, mapStream: mapStream}
	t.recs = append(t.recs, r)
	return r
}

// Events merges every recorder's buffer into one deterministic order:
// concatenation in recorder-creation order, then a stable sort by
// timestamp. Call only after the run finished (the fleet joins its
// actors before returning, which is the happens-before edge that makes
// this read race-free).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	n := 0
	for _, r := range t.recs {
		n += len(r.events)
	}
	out := make([]Event, 0, n)
	for _, r := range t.recs {
		out = append(out, r.events...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TsMs < out[j].TsMs })
	return out
}
