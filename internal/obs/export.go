package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event pid/tid layout. Perfetto groups tracks by
// process: the fleet coordinator is one process, each board one, each
// fleet stream one (frame lifecycle intervals live on stream tracks
// so a migrated stream's frames stay on one timeline across boards).
const (
	fleetPid      = 1
	boardPidBase  = 10     // board b -> pid boardPidBase+b
	streamPidBase = 100000 // stream s -> pid streamPidBase+s
	controlTid    = 0      // board control lane; worker w -> tid w+1
)

func (e *Event) pid() int {
	if e.Kind == Begin || e.Kind == End {
		return streamPidBase + e.Stream
	}
	if e.Board < 0 {
		return fleetPid
	}
	return boardPidBase + e.Board
}

func (e *Event) tid() int {
	if e.Worker < 0 {
		return controlTid
	}
	return e.Worker + 1
}

// usec renders a virtual-clock millisecond stamp as the trace format's
// microseconds with fixed sub-microsecond precision, so equal stamps
// always serialize to equal bytes.
func usec(ms float64) string {
	return strconv.FormatFloat(ms*1000, 'f', 3, 64)
}

// WriteChromeJSON serializes the merged trace in Chrome trace-event
// JSON ("JSON Array Format" wrapped in an object), loadable by
// Perfetto and chrome://tracing. Spans become "X" complete events,
// frame lifecycles "b"/"e" async-nestable pairs keyed by stream and
// frame index, instants "i" thread-scoped marks; metadata events name
// and order the tracks. The writer is hand-rolled and every float is
// fixed-precision, so a seeded run's file is byte-identical across
// reruns and between lockstep and concurrent fleet modes.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	events := t.Events()

	type lane struct{ pid, tid int }
	procs := map[int]bool{}
	lanes := map[lane]bool{}
	for i := range events {
		e := &events[i]
		procs[e.pid()] = true
		if e.Kind == Span {
			lanes[lane{e.pid(), e.tid()}] = true
		}
	}

	fmt.Fprint(bw, "{\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Metadata first: process names + sort order, then span lane names.
	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		var name string
		switch {
		case pid == fleetPid:
			name = "fleet"
		case pid >= streamPidBase:
			name = fmt.Sprintf("stream %d", pid-streamPidBase)
		default:
			name = fmt.Sprintf("board %d", pid-boardPidBase)
		}
		emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`, pid, strconv.Quote(name))
		emit(`{"name":"process_sort_index","ph":"M","pid":%d,"args":{"sort_index":%d}}`, pid, pid)
	}
	lns := make([]lane, 0, len(lanes))
	for l := range lanes {
		lns = append(lns, l)
	}
	sort.Slice(lns, func(i, j int) bool {
		if lns[i].pid != lns[j].pid {
			return lns[i].pid < lns[j].pid
		}
		return lns[i].tid < lns[j].tid
	})
	for _, l := range lns {
		name := "control"
		if l.tid != controlTid {
			name = fmt.Sprintf("worker %d", l.tid-1)
		}
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`, l.pid, l.tid, strconv.Quote(name))
	}

	for i := range events {
		e := &events[i]
		args := ""
		if e.Detail != "" {
			args = fmt.Sprintf(`,"args":{"detail":%s}`, strconv.Quote(e.Detail))
		}
		switch e.Kind {
		case Span:
			emit(`{"name":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s%s}`,
				strconv.Quote(e.Name), e.pid(), e.tid(), usec(e.TsMs), usec(e.DurMs), args)
		case Begin:
			emit(`{"name":%s,"cat":"frame","ph":"b","id":"%d","pid":%d,"tid":%d,"ts":%s%s}`,
				strconv.Quote(e.Name), e.ID, e.pid(), controlTid, usec(e.TsMs), args)
		case End:
			emit(`{"name":%s,"cat":"frame","ph":"e","id":"%d","pid":%d,"tid":%d,"ts":%s%s}`,
				strconv.Quote(e.Name), e.ID, e.pid(), controlTid, usec(e.TsMs), args)
		case Instant:
			emit(`{"name":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s%s}`,
				strconv.Quote(e.Name), e.pid(), controlTid, usec(e.TsMs), args)
		}
	}
	fmt.Fprint(bw, "]}\n")
	return bw.Flush()
}

// EpochRow is one line of the CSV epoch timeline. It mirrors the
// fields of serve.EpochStats the timeline needs without importing
// serve (obs sits below every layer); cmd/ldserve converts Report
// epochs into rows.
type EpochRow struct {
	Board      int
	Epoch      int
	StartMs    float64
	EndMs      float64
	Mode       string
	Policy     string
	AdaptEvery int
	Quantized  bool
	Arrived    int
	Forecast   float64
	Served     int
	Dropped    int
	Skipped    int
	Queue      int
	HitRate    float64
	Util       float64
	EnergyMJ   float64
}

// WriteEpochCSV writes the epoch timeline with a fixed header and
// fixed-precision floats (byte-stable for seeded runs).
func WriteEpochCSV(w io.Writer, rows []EpochRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "board,epoch,start_ms,end_ms,mode,policy,adapt_every,quantized,arrived,forecast,served,dropped,skipped,queue,hit_rate,util,energy_mj")
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(bw, "%d,%d,%.3f,%.3f,%s,%s,%d,%t,%d,%.2f,%d,%d,%d,%d,%.4f,%.4f,%.3f\n",
			r.Board, r.Epoch, r.StartMs, r.EndMs, csvField(r.Mode), csvField(r.Policy), r.AdaptEvery,
			r.Quantized, r.Arrived, r.Forecast, r.Served, r.Dropped, r.Skipped, r.Queue,
			r.HitRate, r.Util, r.EnergyMJ)
	}
	return bw.Flush()
}

// csvField quotes a string field only when it needs it (commas or
// quotes), keeping the common mode names readable.
func csvField(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '"' || s[i] == '\n' {
			return strconv.Quote(s)
		}
	}
	return s
}

// WriteText dumps every instrument sorted by name, one line per
// scalar and one per cumulative histogram bucket:
//
//	fleet.migrations 12
//	serve.queue_wait_ms count 4096
//	serve.queue_wait_ms sum_ms 51234.875
//	serve.queue_wait_ms le=0.5 120
//	serve.queue_wait_ms le=+inf 4096
//
// Counters and histograms are deterministic for a seeded run; gauges
// that mirror wall-clock measurements (fleet.wall_seconds,
// fleet.coord_seconds) are not, which is why determinism is pinned on
// the trace, not this dump.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	items := make(map[string]any, len(names))
	for _, n := range names {
		items[n] = r.items[n]
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		switch it := items[name].(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s %d\n", name, it.Value())
		case *Gauge:
			fmt.Fprintf(bw, "%s %s\n", name, strconv.FormatFloat(it.Value(), 'g', -1, 64))
		case *Histogram:
			fmt.Fprintf(bw, "%s count %d\n", name, it.Count())
			fmt.Fprintf(bw, "%s sum_ms %.3f\n", name, it.Sum())
			cum := int64(0)
			for i := range it.counts {
				cum += it.counts[i].Load()
				le := "+inf"
				if i < len(it.bounds) {
					le = strconv.FormatFloat(it.bounds[i], 'g', -1, 64)
				}
				fmt.Fprintf(bw, "%s le=%s %d\n", name, le, cum)
			}
		}
	}
	return bw.Flush()
}
