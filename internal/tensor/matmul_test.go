package tensor

import (
	"math"
	"testing"
)

// naiveMatMul is the reference implementation the fast kernel is
// checked against.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			out.Set(float32(s), i, j)
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !got.AllClose(want, 1e-5) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := NewRNG(42)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 7, 5}, {16, 33, 9}, {65, 17, 40}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := New(m, k), New(k, n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.AllClose(want, 1e-3) {
			t.Fatalf("MatMul mismatch at %v", dims)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := New(5, 5)
	rng.FillNormal(a, 0, 1)
	eye := New(5, 5)
	for i := 0; i < 5; i++ {
		eye.Set(1, i, i)
	}
	if !MatMul(a, eye).AllClose(a, 1e-6) || !MatMul(eye, a).AllClose(a, 1e-6) {
		t.Fatal("identity law violated")
	}
}

func TestMatMulInto(t *testing.T) {
	rng := NewRNG(3)
	a, b := New(4, 6), New(6, 3)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	out := Full(99, 4, 3) // pre-polluted to verify zeroing
	MatMulInto(out, a, b)
	if !out.AllClose(MatMul(a, b), 1e-5) {
		t.Fatal("MatMulInto differs from MatMul")
	}
}

func TestMatMulTA(t *testing.T) {
	rng := NewRNG(5)
	a, b := New(7, 4), New(7, 6) // aᵀ·b : [4,6]
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	got := MatMulTA(a, b)
	want := MatMul(Transpose(a), b)
	if !got.AllClose(want, 1e-4) {
		t.Fatal("MatMulTA mismatch")
	}
}

func TestMatMulTB(t *testing.T) {
	rng := NewRNG(6)
	a, b := New(5, 8), New(9, 8) // a·bᵀ : [5,9]
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	got := MatMulTB(a, b)
	want := MatMul(a, Transpose(b))
	if !got.AllClose(want, 1e-4) {
		t.Fatal("MatMulTB mismatch")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(New(2, 3), New(4, 2)) },
		func() { MatMul(New(2), New(2, 2)) },
		func() { MatMulTA(New(3, 2), New(4, 2)) },
		func() { MatMulTB(New(2, 3), New(2, 4)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMatMulAssociativity(t *testing.T) {
	rng := NewRNG(11)
	a, b, c := New(4, 5), New(5, 6), New(6, 3)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(b, -1, 1)
	rng.FillUniform(c, -1, 1)
	left := MatMul(MatMul(a, b), c)
	right := MatMul(a, MatMul(b, c))
	if !left.AllClose(right, 1e-3) {
		t.Fatal("(ab)c != a(bc) beyond float tolerance")
	}
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	rng := NewRNG(12)
	a, b, c := New(3, 4), New(4, 5), New(4, 5)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(b, -1, 1)
	rng.FillUniform(c, -1, 1)
	left := MatMul(a, Add(b, c))
	right := Add(MatMul(a, b), MatMul(a, c))
	if !left.AllClose(right, 1e-4) {
		t.Fatal("a(b+c) != ab+ac beyond float tolerance")
	}
}

func TestMatMulFloatStability(t *testing.T) {
	// Large-k accumulation should stay finite and accurate.
	k := 4096
	a, b := Ones(1, k), Full(0.001, k, 1)
	got := MatMul(a, b).At(0, 0)
	if math.Abs(float64(got)-4.096) > 1e-2 {
		t.Fatalf("accumulation drifted: %v", got)
	}
}
