package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// magic identifies the on-disk tensor format ("LDT1" = lane-detection
// tensor, version 1).
const magic = 0x4C445431

// WriteTo serializes the tensor (shape + raw little-endian float32
// payload) to w. The format is stable and covered by round-trip tests.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(magic)); err != nil {
		return n, err
	}
	if err := write(uint32(len(t.shape))); err != nil {
		return n, err
	}
	for _, d := range t.shape {
		if err := write(uint32(d)); err != nil {
			return n, err
		}
	}
	if err := write(t.Data); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a tensor previously written with WriteTo.
// It reads exactly the serialized bytes (no read-ahead), so tensors can
// be streamed back-to-back from the same reader.
func ReadFrom(r io.Reader) (*Tensor, error) {
	br := r
	var m, nd uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("tensor: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("tensor: bad magic %#x (want %#x)", m, magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &nd); err != nil {
		return nil, fmt.Errorf("tensor: reading rank: %w", err)
	}
	if nd == 0 || nd > 8 {
		return nil, fmt.Errorf("tensor: implausible rank %d", nd)
	}
	shape := make([]int, nd)
	size := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, fmt.Errorf("tensor: reading shape: %w", err)
		}
		if d == 0 || d > 1<<24 {
			return nil, fmt.Errorf("tensor: implausible dimension %d", d)
		}
		shape[i] = int(d)
		size *= int(d)
	}
	if size > 1<<28 {
		return nil, fmt.Errorf("tensor: implausible element count %d", size)
	}
	t := New(shape...)
	if err := binary.Read(br, binary.LittleEndian, t.Data); err != nil {
		return nil, fmt.Errorf("tensor: reading payload: %w", err)
	}
	return t, nil
}
