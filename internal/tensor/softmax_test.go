package tensor

import (
	"math"
	"testing"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := NewRNG(31)
	x := New(10, 7)
	rng.FillNormal(x, 0, 3)
	p := SoftmaxRows(x)
	for i := 0; i < 10; i++ {
		s := 0.0
		for j := 0; j < 7; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxStableUnderLargeLogits(t *testing.T) {
	x := FromSlice([]float32{1000, 1001, 999}, 1, 3)
	p := SoftmaxRows(x)
	if p.HasNaN() {
		t.Fatal("softmax overflowed")
	}
	if p.At(0, 1) <= p.At(0, 0) || p.At(0, 0) <= p.At(0, 2) {
		t.Fatal("ordering not preserved")
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	x := FromSlice([]float32{0.1, -0.7, 2.0}, 1, 3)
	y := AddScalar(x, 5)
	if !SoftmaxRows(x).AllClose(SoftmaxRows(y), 1e-6) {
		t.Fatal("softmax not shift-invariant")
	}
}

func TestLogSoftmaxMatchesLogOfSoftmax(t *testing.T) {
	rng := NewRNG(32)
	x := New(4, 9)
	rng.FillNormal(x, 0, 2)
	ls := LogSoftmaxRows(x)
	p := SoftmaxRows(x)
	for i := range ls.Data {
		if math.Abs(float64(ls.Data[i])-math.Log(float64(p.Data[i]))) > 1e-4 {
			t.Fatalf("log-softmax mismatch at %d", i)
		}
	}
}

func TestRowEntropyBounds(t *testing.T) {
	// One-hot rows have zero entropy; uniform rows have log(c).
	c := 5
	oneHot := New(1, c)
	oneHot.Set(1, 0, 3)
	if h := RowEntropy(oneHot)[0]; h != 0 {
		t.Fatalf("one-hot entropy = %v", h)
	}
	uniform := Full(1.0/float32(c), 1, c)
	if h := RowEntropy(uniform)[0]; math.Abs(h-math.Log(float64(c))) > 1e-5 {
		t.Fatalf("uniform entropy = %v, want %v", h, math.Log(float64(c)))
	}
	// Any softmax output's entropy lies in [0, log c].
	rng := NewRNG(33)
	x := New(20, c)
	rng.FillNormal(x, 0, 4)
	for i, h := range RowEntropy(SoftmaxRows(x)) {
		if h < 0 || h > math.Log(float64(c))+1e-6 {
			t.Fatalf("row %d entropy %v out of bounds", i, h)
		}
	}
}

func TestUniformMaximizesEntropy(t *testing.T) {
	rng := NewRNG(34)
	c := 8
	maxH := math.Log(float64(c))
	x := New(50, c)
	rng.FillNormal(x, 0, 1)
	for _, h := range RowEntropy(SoftmaxRows(x)) {
		if h > maxH {
			t.Fatalf("entropy %v exceeds uniform bound %v", h, maxH)
		}
	}
}
