package tensor

import (
	"fmt"
	"math"
)

// binary applies op elementwise into a fresh tensor.
func ewise(a, b *Tensor, name string, op func(x, y float32) float32) *Tensor {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", name, a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = op(a.Data[i], b.Data[i])
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Tensor) *Tensor {
	return ewise(a, b, "Add", func(x, y float32) float32 { return x + y })
}

// Sub returns a-b elementwise.
func Sub(a, b *Tensor) *Tensor {
	return ewise(a, b, "Sub", func(x, y float32) float32 { return x - y })
}

// Mul returns a*b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	return ewise(a, b, "Mul", func(x, y float32) float32 { return x * y })
}

// Div returns a/b elementwise.
func Div(a, b *Tensor) *Tensor {
	return ewise(a, b, "Div", func(x, y float32) float32 { return x / y })
}

// AddInPlace accumulates b into a and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: AddInPlace size mismatch %v vs %v", a.shape, b.shape))
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
	return a
}

// AxpyInPlace computes a += alpha*b and returns a.
func AxpyInPlace(a *Tensor, alpha float32, b *Tensor) *Tensor {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: AxpyInPlace size mismatch %v vs %v", a.shape, b.shape))
	}
	for i := range a.Data {
		a.Data[i] += alpha * b.Data[i]
	}
	return a
}

// Scale returns alpha*a in a fresh tensor.
func Scale(a *Tensor, alpha float32) *Tensor {
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = alpha * a.Data[i]
	}
	return out
}

// ScaleInPlace multiplies every element of a by alpha and returns a.
func ScaleInPlace(a *Tensor, alpha float32) *Tensor {
	for i := range a.Data {
		a.Data[i] *= alpha
	}
	return a
}

// AddScalar returns a+c elementwise in a fresh tensor.
func AddScalar(a *Tensor, c float32) *Tensor {
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + c
	}
	return out
}

// Apply returns f mapped over a in a fresh tensor.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i])
	}
	return out
}

// ApplyInPlace maps f over a in place and returns a.
func ApplyInPlace(a *Tensor, f func(float32) float32) *Tensor {
	for i := range a.Data {
		a.Data[i] = f(a.Data[i])
	}
	return a
}

// Sum returns the sum of all elements (accumulated in float64 for
// stability).
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// Max returns the largest element.
func (t *Tensor) Max() float32 {
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element.
func (t *Tensor) Min() float32 {
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the largest element (first on ties).
func (t *Tensor) Argmax() int {
	best, bi := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Dot returns the inner product of two equal-sized tensors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %v vs %v", a.shape, b.shape))
	}
	s := 0.0
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}

// Norm2 returns the Euclidean norm of the tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MeanStd returns the mean and (population) standard deviation of all
// elements, computed in float64.
func (t *Tensor) MeanStd() (mean, std float64) {
	mean = t.Mean()
	v := 0.0
	for _, x := range t.Data {
		d := float64(x) - mean
		v += d * d
	}
	v /= float64(len(t.Data))
	return mean, math.Sqrt(v)
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.NDim() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs 2-D tensor, got %v", a.shape))
	}
	r, c := a.shape[0], a.shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		row := a.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j*r+i] = v
		}
	}
	return out
}

// Clamp returns a fresh tensor with every element limited to [lo, hi].
func Clamp(a *Tensor, lo, hi float32) *Tensor {
	return Apply(a, func(v float32) float32 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}
