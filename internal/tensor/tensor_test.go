package tensor

import (
	"bytes"
	"math"
	"testing"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.NDim() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestFullOnesFill(t *testing.T) {
	x := Full(2.5, 3)
	for _, v := range x.Data {
		if v != 2.5 {
			t.Fatalf("Full: got %v", v)
		}
	}
	y := Ones(2, 2)
	if y.Sum() != 4 {
		t.Fatalf("Ones sum = %v", y.Sum())
	}
	y.Fill(7)
	if y.Sum() != 28 {
		t.Fatalf("Fill sum = %v", y.Sum())
	}
	y.Zero()
	if y.Sum() != 0 {
		t.Fatalf("Zero sum = %v", y.Sum())
	}
}

func TestFromSliceAndAtSet(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(0, 0) != 1 || x.At(1, 2) != 6 || x.At(0, 2) != 3 {
		t.Fatalf("At wrong: %v", x)
	}
	x.Set(9, 1, 0)
	if x.At(1, 0) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	x.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data[0] = 42
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must view the same storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	x.Reshape(3)
}

func TestSameShape(t *testing.T) {
	a, b, c := New(2, 3), New(2, 3), New(3, 2)
	if !a.SameShape(b) || a.SameShape(c) || a.SameShape(New(6)) {
		t.Fatal("SameShape wrong")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := Add(a, b); !got.AllClose(FromSlice([]float32{5, 7, 9}, 3), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.AllClose(FromSlice([]float32{3, 3, 3}, 3), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.AllClose(FromSlice([]float32{4, 10, 18}, 3), 0) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Div(b, a); !got.AllClose(FromSlice([]float32{4, 2.5, 2}, 3), 1e-7) {
		t.Fatalf("Div = %v", got)
	}
	if got := Scale(a, 2); !got.AllClose(FromSlice([]float32{2, 4, 6}, 3), 0) {
		t.Fatalf("Scale = %v", got)
	}
	if got := AddScalar(a, 1); !got.AllClose(FromSlice([]float32{2, 3, 4}, 3), 0) {
		t.Fatalf("AddScalar = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	AddInPlace(a, FromSlice([]float32{10, 20}, 2))
	if !a.AllClose(FromSlice([]float32{11, 22}, 2), 0) {
		t.Fatalf("AddInPlace = %v", a)
	}
	AxpyInPlace(a, 2, FromSlice([]float32{1, 1}, 2))
	if !a.AllClose(FromSlice([]float32{13, 24}, 2), 0) {
		t.Fatalf("AxpyInPlace = %v", a)
	}
	ScaleInPlace(a, 0.5)
	if !a.AllClose(FromSlice([]float32{6.5, 12}, 2), 0) {
		t.Fatalf("ScaleInPlace = %v", a)
	}
	ApplyInPlace(a, func(v float32) float32 { return -v })
	if a.Data[0] != -6.5 {
		t.Fatalf("ApplyInPlace = %v", a)
	}
}

func TestMismatchedBinaryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Add(New(2), New(3))
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{3, -1, 4, 1}, 4)
	if x.Sum() != 7 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.75 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 4 || x.Min() != -1 {
		t.Fatalf("Max/Min = %v/%v", x.Max(), x.Min())
	}
	if x.Argmax() != 2 {
		t.Fatalf("Argmax = %d", x.Argmax())
	}
	mean, std := x.MeanStd()
	if math.Abs(mean-1.75) > 1e-9 || math.Abs(std-1.920286) > 1e-5 {
		t.Fatalf("MeanStd = %v, %v", mean, std)
	}
}

func TestDotAndNorm(t *testing.T) {
	a := FromSlice([]float32{1, 2, 2}, 3)
	b := FromSlice([]float32{2, 0, 1}, 3)
	if Dot(a, b) != 4 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if a.Norm2() != 3 {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	want := FromSlice([]float32{1, 4, 2, 5, 3, 6}, 3, 2)
	if !at.AllClose(want, 0) {
		t.Fatalf("Transpose = %v", at)
	}
	// Double transpose is identity.
	if !Transpose(at).AllClose(a, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestClamp(t *testing.T) {
	x := FromSlice([]float32{-2, 0.5, 3}, 3)
	got := Clamp(x, 0, 1)
	if !got.AllClose(FromSlice([]float32{0, 0.5, 1}, 3), 0) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestAllCloseAndHasNaN(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1.0005, 2}, 2)
	if !a.AllClose(b, 1e-3) || a.AllClose(b, 1e-5) {
		t.Fatal("AllClose tolerance handling wrong")
	}
	if a.AllClose(New(3), 1) {
		t.Fatal("AllClose must reject size mismatch")
	}
	n := FromSlice([]float32{float32(math.NaN())}, 1)
	if !n.HasNaN() || a.HasNaN() {
		t.Fatal("HasNaN wrong")
	}
	inf := FromSlice([]float32{float32(math.Inf(1))}, 1)
	if !inf.HasNaN() {
		t.Fatal("HasNaN must flag Inf")
	}
	if n.AllClose(n, 1) {
		t.Fatal("AllClose must reject NaN")
	}
}

func TestStringTruncates(t *testing.T) {
	s := New(100).String()
	if len(s) == 0 || len(s) > 120 {
		t.Fatalf("String length %d", len(s))
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := NewRNG(7)
	x := New(3, 5, 2)
	rng.FillNormal(x, 0, 1)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	y, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if !x.SameShape(y) || !x.AllClose(y, 0) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}
