package tensor

import (
	"fmt"
	"math"

	"ldbnadapt/internal/par"
)

// Int8 symmetric quantization kernels for the inference fast path.
//
// Scheme: weights are quantized per output channel (per row of the
// GEMM's left operand), activations per sample with one dynamic scale
// per tensor, both symmetric around zero with the int8 range clamped
// to ±127 (−128 is never produced, so negation is always exact):
//
//	scale = maxabs(v) / 127,  q = clamp(round(v/scale), −127, 127)
//
// Accumulation runs in int32 — exact for any K up to 2³¹/127² ≈ 1.3e5
// taps, far beyond every kernel in this repo — and the float32 result
// is reconstructed as acc · wScale[row] · xScale. Because each sample
// carries its own activation scale, quantizing a batch is literally
// quantizing each sample alone: the batched int8 forward is bitwise
// identical to the sequential one, preserving the serve property
// test's structure (only the int8-vs-float comparison needs an error
// bound; see internal/tensor/README.md for the error model).

// QuantizeInt8 quantizes src into dst (same length) with one symmetric
// dynamic scale for the whole slice and returns that scale. A zero
// input yields scale 0 and an all-zero dst; consumers multiply by the
// scale, so the round trip is still exact.
func QuantizeInt8(dst []int8, src []float32) float32 {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QuantizeInt8 size mismatch %d vs %d", len(dst), len(src)))
	}
	maxAbs := float32(0)
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / float64(scale)
	for i, v := range src {
		q := math.Round(float64(v) * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// QuantizeInt8PerRow quantizes a [rows, k] row-major matrix with an
// independent symmetric scale per row (the per-output-channel weight
// scheme), writing int8 values into dst and the per-row scales into
// scales. dst must have len rows*k and scales len rows.
func QuantizeInt8PerRow(dst []int8, scales []float32, src []float32, rows, k int) {
	if len(src) != rows*k || len(dst) != rows*k || len(scales) != rows {
		panic(fmt.Sprintf("tensor: QuantizeInt8PerRow size mismatch src=%d dst=%d scales=%d rows=%d k=%d",
			len(src), len(dst), len(scales), rows, k))
	}
	for r := 0; r < rows; r++ {
		scales[r] = QuantizeInt8(dst[r*k:(r+1)*k], src[r*k:(r+1)*k])
	}
}

// Int8MatMulInto computes out[m,n] = diag(aScales)·(a·b)·xScale where
// a is an int8 [m,k] matrix with per-row scales (quantized weights)
// and b an int8 [k,n] matrix with a single scale (quantized
// activations, e.g. an im2col lowering of one sample). Accumulation is
// int32; out is overwritten.
func Int8MatMulInto(out *Tensor, a []int8, aScales []float32, b []int8, xScale float32, m, k, n int) {
	if len(a) != m*k || len(b) != k*n || len(aScales) != m || len(out.Data) != m*n {
		panic(fmt.Sprintf("tensor: Int8MatMulInto size mismatch a=%d b=%d scales=%d out=%d (m=%d k=%d n=%d)",
			len(a), len(b), len(aScales), len(out.Data), m, k, n))
	}
	if m*k*n < int8ParMin {
		int8MMRows(out.Data, a, aScales, b, xScale, k, n, 0, m)
		return
	}
	t := i8Cache.Get()
	*t = i8Task{op: opI8Rows, out: out.Data, a: a, aScales: aScales, b: b, xScale: xScale, m: m, k: k, n: n}
	par.For(m, 1, t)
	t.out, t.a, t.aScales, t.b, t.bScales = nil, nil, nil, nil, nil
	i8Cache.Put(t)
}

// int8MMRows computes output rows [lo,hi) of the weight-stationary
// int8 GEMM. Each row's int32 accumulation is self-contained, so row
// banding is trivially bitwise-stable (and integer accumulation is
// exact regardless).
func int8MMRows(out []float32, a []int8, aScales []float32, b []int8, xScale float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		oi := out[i*n : (i+1)*n]
		int8AxpyRows(oi, ai, b, k, n, aScales[i]*xScale)
	}
}

// i8Task is the pooled argument block shared by the int8 GEMM
// variants.
type i8Task struct {
	op               int
	out              []float32
	a, b             []int8
	aScales, bScales []float32
	xScale           float32
	m, k, n          int
}

const (
	opI8Rows = iota // Int8MatMulInto, banded over output rows
	opI8TBRows
	opI8TBCols
)

func (t *i8Task) Chunk(_, lo, hi int) {
	switch t.op {
	case opI8Rows:
		int8MMRows(t.out, t.a, t.aScales, t.b, t.xScale, t.k, t.n, lo, hi)
	case opI8TBRows:
		int8TBRange(t.out, t.a, t.aScales, t.b, t.bScales, t.k, t.n, lo, hi, 0, t.n)
	case opI8TBCols:
		int8TBRange(t.out, t.a, t.aScales, t.b, t.bScales, t.k, t.n, 0, t.m, lo, hi)
	}
}

var i8Cache par.Cache[i8Task]

// int8AxpyRows computes oi = s · Σ_p ai[p]·b[p*n:...] with int32
// accumulation per output element, using a k-blocked walk so the
// int32 partial sums live in a small reused stack buffer.
func int8AxpyRows(oi []float32, ai []int8, b []int8, k, n int, s float32) {
	const block = 256
	var acc [block]int32
	for j0 := 0; j0 < n; j0 += block {
		j1 := j0 + block
		if j1 > n {
			j1 = n
		}
		w := j1 - j0
		for j := 0; j < w; j++ {
			acc[j] = 0
		}
		for p := 0; p < k; p++ {
			av := int32(ai[p])
			if av == 0 {
				continue
			}
			bp := b[p*n+j0 : p*n+j1]
			for j, bv := range bp {
				acc[j] += av * int32(bv)
			}
		}
		for j := 0; j < w; j++ {
			oi[j0+j] = s * float32(acc[j])
		}
	}
}

// Int8MatMulTBInto computes out[m,n] = a·bᵀ for int8 a:[m,k] with
// per-row scales aScales (quantized activations, one scale per sample
// row) and int8 b:[n,k] with per-row scales bScales (quantized weights,
// one scale per output feature). Accumulation is int32; out is
// overwritten. This is the quantized Linear forward.
func Int8MatMulTBInto(out *Tensor, a []int8, aScales []float32, b []int8, bScales []float32, m, k, n int) {
	if len(a) != m*k || len(b) != n*k || len(aScales) != m || len(bScales) != n || len(out.Data) != m*n {
		panic(fmt.Sprintf("tensor: Int8MatMulTBInto size mismatch a=%d b=%d out=%d (m=%d k=%d n=%d)",
			len(a), len(b), len(out.Data), m, k, n))
	}
	if m*k*n < int8ParMin {
		int8TBRange(out.Data, a, aScales, b, bScales, k, n, 0, m, 0, n)
		return
	}
	t := i8Cache.Get()
	if m >= 2*par.Width(m, 1) {
		*t = i8Task{op: opI8TBRows, out: out.Data, a: a, aScales: aScales, b: b, bScales: bScales, m: m, k: k, n: n}
		par.For(m, 1, t)
	} else {
		// Serving batches are small (m ∈ 1..8): band the output
		// features instead so one frame still spreads across workers.
		*t = i8Task{op: opI8TBCols, out: out.Data, a: a, aScales: aScales, b: b, bScales: bScales, m: m, k: k, n: n}
		par.For(n, 16, t)
	}
	t.out, t.a, t.aScales, t.b, t.bScales = nil, nil, nil, nil, nil
	i8Cache.Put(t)
}

// int8TBRange computes rows [ilo,ihi) × columns [jlo,jhi) of the
// activation-stationary int8 GEMM. Every element is one exact int32
// dot product, so any banding is bitwise-stable.
func int8TBRange(out []float32, a []int8, aScales []float32, b []int8, bScales []float32, k, n, ilo, ihi, jlo, jhi int) {
	for i := ilo; i < ihi; i++ {
		ai := a[i*k : (i+1)*k]
		oi := out[i*n : (i+1)*n]
		as := aScales[i]
		for j := jlo; j < jhi; j++ {
			bj := b[j*k : (j+1)*k]
			s := int32(0)
			p := 0
			for ; p+4 <= k; p += 4 {
				s += int32(ai[p])*int32(bj[p]) + int32(ai[p+1])*int32(bj[p+1]) +
					int32(ai[p+2])*int32(bj[p+2]) + int32(ai[p+3])*int32(bj[p+3])
			}
			for ; p < k; p++ {
				s += int32(ai[p]) * int32(bj[p])
			}
			oi[j] = as * bScales[j] * float32(s)
		}
	}
}

// Im2ColInt8Into lowers one int8 image [c, h, w] into a [c*kh*kw,
// oh*ow] int8 matrix (single-sample im2col). Zero padding is exact in
// int8 — the symmetric scheme maps 0.0 to quantized 0 — so the lowering
// commutes with quantization.
func Im2ColInt8Into(dst []int8, x []int8, c, h, w int, g ConvGeom) {
	oh, ow := g.OutSize(h, w)
	rows := c * g.KH * g.KW
	cols := oh * ow
	if len(x) != c*h*w || len(dst) != rows*cols {
		panic(fmt.Sprintf("tensor: Im2ColInt8Into size mismatch x=%d dst=%d want x=%d dst=%d",
			len(x), len(dst), c*h*w, rows*cols))
	}
	if rows*cols < lowerParMin {
		im2colInt8Rows(dst, x, c, h, w, oh, ow, g, 0, rows)
		return
	}
	t := i8LowerCache.Get()
	*t = i8LowerTask{dst: dst, x: x, c: c, h: h, w: w, oh: oh, ow: ow, g: g}
	par.For(rows, 1, t)
	t.dst, t.x = nil, nil
	i8LowerCache.Put(t)
}

// i8LowerTask is the pooled argument block for Im2ColInt8Into, banded
// over output rows like the float lowering.
type i8LowerTask struct {
	dst, x  []int8
	c, h, w int
	oh, ow  int
	g       ConvGeom
}

func (t *i8LowerTask) Chunk(_, lo, hi int) {
	im2colInt8Rows(t.dst, t.x, t.c, t.h, t.w, t.oh, t.ow, t.g, lo, hi)
}

var i8LowerCache par.Cache[i8LowerTask]

// im2colInt8Rows fills int8 lowering rows [rlo,rhi). Like the float
// kernel, a row is zero-filled only when its kernel tap can read out
// of bounds — quantized zero is exactly 0, so padding stays exact and
// unpadded geometries skip the clearing pass entirely.
func im2colInt8Rows(dst, x []int8, c, h, w, oh, ow int, g ConvGeom, rlo, rhi int) {
	cols := oh * ow
	for r := rlo; r < rhi; r++ {
		kx := r % g.KW
		ky := (r / g.KW) % g.KH
		ci := r / (g.KH * g.KW)
		src := x[ci*h*w : (ci+1)*h*w]
		d := dst[r*cols : (r+1)*cols]
		if g.tapOOB(h, w, oh, ow, ky, kx) {
			clear(d)
		}
		for oy := 0; oy < oh; oy++ {
			iy := oy*g.SH - g.PH + ky
			if iy < 0 || iy >= h {
				continue
			}
			rowSrc := src[iy*w : (iy+1)*w]
			dcol := oy * ow
			ix := -g.PW + kx
			for ox := 0; ox < ow; ox++ {
				if ix >= 0 && ix < w {
					d[dcol+ox] = rowSrc[ix]
				}
				ix += g.SW
			}
		}
	}
}
