package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// MatMul computes the matrix product a·b of two 2-D tensors
// ([m,k]·[k,n] → [m,n]). The kernel is cache-blocked over k and
// parallelized over row bands when more than one CPU is available.
func MatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner-dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulInto computes out = a·b, reusing out's storage. Shapes must
// already agree; out must not alias a or b.
func MatMulInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v = %v × %v", out.shape, a.shape, b.shape))
	}
	out.Zero()
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
}

// matmulInto accumulates a·b into dst (dst must be zeroed by callers
// that need a pure product). The i-k-j loop order keeps the inner loop
// streaming over contiguous rows of b and dst, which is the fastest
// pure-Go arrangement for row-major data.
func matmulInto(dst, a, b []float32, m, k, n int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 || m*n*k < 1<<16 {
		matmulRows(dst, a, b, 0, m, k, n)
		return
	}
	var wg sync.WaitGroup
	band := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := lo + band
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(dst, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulRows computes rows [lo,hi) of dst += a·b.
func matmulRows(dst, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		di := dst[i*n : (i+1)*n]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			axpyRow(di, bp, av)
		}
	}
}

// axpyRow computes di += av*bp with 4-way unrolling.
func axpyRow(di, bp []float32, av float32) {
	n := len(di)
	i := 0
	for ; i+4 <= n; i += 4 {
		di[i] += av * bp[i]
		di[i+1] += av * bp[i+1]
		di[i+2] += av * bp[i+2]
		di[i+3] += av * bp[i+3]
	}
	for ; i < n; i++ {
		di[i] += av * bp[i]
	}
}

// MatMulTA computes aᵀ·b for a:[k,m], b:[k,n] → [m,n] without
// materializing the transpose.
func MatMulTA(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTA needs 2-D operands, got %v × %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTA inner-dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, b.shape[1])
	MatMulTAInto(out, a, b)
	return out
}

// MatMulTAInto computes out = aᵀ·b reusing out's storage ([k,m]ᵀ·[k,n]
// → [m,n]). The accumulation order is identical to MatMulTA, so a
// scratch-backed call is bitwise equal to the allocating one. out must
// not alias a or b.
func MatMulTAInto(out, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTAInto shape mismatch %v = %vᵀ × %v", out.shape, a.shape, b.shape))
	}
	out.Zero()
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			axpyRow(out.Data[i*n:(i+1)*n], bp, av)
		}
	}
}

// MatMulTB computes a·bᵀ for a:[m,k], b:[n,k] → [m,n] without
// materializing the transpose.
func MatMulTB(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTB needs 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m := a.shape[0]
	if b.shape[1] != a.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTB inner-dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, b.shape[0])
	MatMulTBInto(out, a, b)
	return out
}

// MatMulTBInto computes out = a·bᵀ reusing out's storage ([m,k]·[n,k]ᵀ
// → [m,n]). Every element is overwritten; out must not alias a or b.
func MatMulTBInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTBInto shape mismatch %v = %v × %vᵀ", out.shape, a.shape, b.shape))
	}
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		oi := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			s := float32(0)
			p := 0
			for ; p+4 <= k; p += 4 {
				s += ai[p]*bj[p] + ai[p+1]*bj[p+1] + ai[p+2]*bj[p+2] + ai[p+3]*bj[p+3]
			}
			for ; p < k; p++ {
				s += ai[p] * bj[p]
			}
			oi[j] = s
		}
	}
}

// MatMulTBAcc computes out += a·bᵀ. The per-element dot product is the
// same kernel as MatMulTBInto, so `MatMulTBAcc(g, a, b)` is bitwise
// equal to `AddInPlace(g, MatMulTB(a, b))` without the intermediate
// allocation — exactly what gradient accumulation needs.
func MatMulTBAcc(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTBAcc shape mismatch %v += %v × %vᵀ", out.shape, a.shape, b.shape))
	}
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		oi := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			s := float32(0)
			p := 0
			for ; p+4 <= k; p += 4 {
				s += ai[p]*bj[p] + ai[p+1]*bj[p+1] + ai[p+2]*bj[p+2] + ai[p+3]*bj[p+3]
			}
			for ; p < k; p++ {
				s += ai[p] * bj[p]
			}
			oi[j] += s
		}
	}
}
