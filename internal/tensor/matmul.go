package tensor

import (
	"fmt"

	"ldbnadapt/internal/par"
)

// Parallel gates, in multiply-accumulate counts (m·k·n). Below the
// gate a kernel runs serially on the caller: band dispatch costs two
// channel operations and a free-list round trip per helper (~1 µs
// uncontended, a scheduler switch when GOMAXPROCS exceeds physical
// cores), so shapes whose whole product runs in that budget must not
// pay it. 1<<19 MACs ≈ 340 µs of serial pure-Go GEMM on the
// reference container; tuned empirically — at 1<<16 the many small
// conv layers of the Tiny model made the oversubscribed -cpu 4
// forward measurably slower than -cpu 1, at 1<<19 it is flat within
// noise while every heavy layer (≥10⁷ MACs) still bands (see the
// parallel-kernel-model section of PERFORMANCE.md). Vars, not
// consts, so the cross-kernel bitwise property suite can lower them
// and exercise banding on adversarial small shapes.
var (
	matmulParMin = 1 << 19 // all four float GEMM variants
	int8ParMin   = 1 << 19 // int8 GEMM variants (int8_test lowers it too)
)

// gemmTask is the pooled argument block for every float GEMM variant:
// op selects the row/column kernel, the slices alias caller storage
// for the duration of one par.For call.
type gemmTask struct {
	op      int
	dst     []float32
	a, b    []float32
	m, k, n int
}

const (
	opMMRows = iota // matmulInto, banded over dst rows
	opMMCols        // matmulInto, banded over dst columns (small m)
	opTARows        // MatMulTAInto, banded over dst rows
	opTBRows        // MatMulTB{Into,Acc}, banded over dst rows
	opTBCols        // MatMulTB{Into,Acc}, banded over dst columns
	opTBAccRows
	opTBAccCols
)

func (t *gemmTask) Chunk(_, lo, hi int) {
	switch t.op {
	case opMMRows:
		matmulRows(t.dst, t.a, t.b, lo, hi, t.k, t.n)
	case opMMCols:
		matmulCols(t.dst, t.a, t.b, t.m, t.k, t.n, lo, hi)
	case opTARows:
		matmulTARows(t.dst, t.a, t.b, t.m, t.k, t.n, lo, hi)
	case opTBRows:
		matmulTBRows(t.dst, t.a, t.b, t.k, t.n, lo, hi, 0, t.n, false)
	case opTBCols:
		matmulTBRows(t.dst, t.a, t.b, t.k, t.n, 0, t.m, lo, hi, false)
	case opTBAccRows:
		matmulTBRows(t.dst, t.a, t.b, t.k, t.n, lo, hi, 0, t.n, true)
	case opTBAccCols:
		matmulTBRows(t.dst, t.a, t.b, t.k, t.n, 0, t.m, lo, hi, true)
	}
}

var gemmCache par.Cache[gemmTask]

// runGEMM dispatches one banded GEMM over the pool: items is the
// banded axis extent (rows or columns). The task block is recycled
// through a free list so steady-state calls allocate nothing.
func runGEMM(op, items, minPer int, dst, a, b []float32, m, k, n int) {
	t := gemmCache.Get()
	t.op, t.dst, t.a, t.b, t.m, t.k, t.n = op, dst, a, b, m, k, n
	par.For(items, minPer, t)
	t.dst, t.a, t.b = nil, nil, nil
	gemmCache.Put(t)
}

// MatMul computes the matrix product a·b of two 2-D tensors
// ([m,k]·[k,n] → [m,n]). The kernel is parallelized over output
// bands through the shared worker pool (internal/par) when the shape
// is past the serial gate.
func MatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner-dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulInto computes out = a·b, reusing out's storage. Shapes must
// already agree; out must not alias a or b. Every element of out is
// written (the kernel zeroes each output band before accumulating).
func MatMulInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v = %v × %v", out.shape, a.shape, b.shape))
	}
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
}

// matmulInto computes dst = a·b (dst fully overwritten). The i-k-j
// loop order keeps the inner loop streaming over contiguous rows of b
// and dst, which is the fastest pure-Go arrangement for row-major
// data. Banding is over dst rows — or dst columns when m is too small
// to feed the pool — so each output element's accumulation order is
// the serial kernel's regardless of worker count.
func matmulInto(dst, a, b []float32, m, k, n int) {
	if m*k*n < matmulParMin {
		matmulRows(dst, a, b, 0, m, k, n)
		return
	}
	if m >= 2*par.Width(m, 1) {
		runGEMM(opMMRows, m, 1, dst, a, b, m, k, n)
	} else {
		// Few tall rows (e.g. the n=1 linear backward dX): band the
		// output columns instead; 16 floats = one cache line per
		// boundary, so adjacent bands never share a line.
		runGEMM(opMMCols, n, 16, dst, a, b, m, k, n)
	}
}

// matmulRows computes rows [lo,hi) of dst = a·b.
func matmulRows(dst, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		di := dst[i*n : (i+1)*n]
		clear(di)
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			axpyRow(di, bp, av)
		}
	}
}

// matmulCols computes columns [jlo,jhi) of every row of dst = a·b.
// Per output element the p-accumulation order matches matmulRows.
func matmulCols(dst, a, b []float32, m, k, n, jlo, jhi int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		di := dst[i*n+jlo : i*n+jhi]
		clear(di)
		for p, av := range ai {
			if av == 0 {
				continue
			}
			axpyRow(di, b[p*n+jlo:p*n+jhi], av)
		}
	}
}

// axpyRow computes di += av*bp with 4-way unrolling.
func axpyRow(di, bp []float32, av float32) {
	n := len(di)
	i := 0
	for ; i+4 <= n; i += 4 {
		di[i] += av * bp[i]
		di[i+1] += av * bp[i+1]
		di[i+2] += av * bp[i+2]
		di[i+3] += av * bp[i+3]
	}
	for ; i < n; i++ {
		di[i] += av * bp[i]
	}
}

// MatMulTA computes aᵀ·b for a:[k,m], b:[k,n] → [m,n] without
// materializing the transpose.
func MatMulTA(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTA needs 2-D operands, got %v × %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTA inner-dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, b.shape[1])
	MatMulTAInto(out, a, b)
	return out
}

// MatMulTAInto computes out = aᵀ·b reusing out's storage ([k,m]ᵀ·[k,n]
// → [m,n]). The accumulation order is identical to MatMulTA at any
// worker count — banding is over output rows and each row accumulates
// over k in serial order — so a scratch-backed call is bitwise equal
// to the allocating one. out must not alias a or b.
func MatMulTAInto(out, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTAInto shape mismatch %v = %vᵀ × %v", out.shape, a.shape, b.shape))
	}
	if m*k*n < matmulParMin {
		matmulTARows(out.Data, a.Data, b.Data, m, k, n, 0, m)
		return
	}
	runGEMM(opTARows, m, 1, out.Data, a.Data, b.Data, m, k, n)
}

// matmulTARows computes rows [lo,hi) of out = aᵀ·b. The k-outer loop
// order is the serial kernel's: each owned row accumulates its
// rank-1 updates in increasing p, so band boundaries never reorder
// any element's sum.
func matmulTARows(dst, a, b []float32, m, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		clear(dst[i*n : (i+1)*n])
	}
	for p := 0; p < k; p++ {
		ap := a[p*m : (p+1)*m]
		bp := b[p*n : (p+1)*n]
		for i := lo; i < hi; i++ {
			if av := ap[i]; av != 0 {
				axpyRow(dst[i*n:(i+1)*n], bp, av)
			}
		}
	}
}

// MatMulTB computes a·bᵀ for a:[m,k], b:[n,k] → [m,n] without
// materializing the transpose.
func MatMulTB(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTB needs 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m := a.shape[0]
	if b.shape[1] != a.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTB inner-dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, b.shape[0])
	MatMulTBInto(out, a, b)
	return out
}

// matmulTB runs a·bᵀ through the pool, banding over output rows when
// the batch dimension m can feed it and over output columns otherwise
// (the m∈{1..4} adaptation batches). acc selects += over =.
func matmulTB(out, a, b *Tensor, acc bool) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k || out.shape[0] != m || out.shape[1] != n {
		if acc {
			panic(fmt.Sprintf("tensor: MatMulTBAcc shape mismatch %v += %v × %vᵀ", out.shape, a.shape, b.shape))
		}
		panic(fmt.Sprintf("tensor: MatMulTBInto shape mismatch %v = %v × %vᵀ", out.shape, a.shape, b.shape))
	}
	if m*k*n < matmulParMin {
		matmulTBRows(out.Data, a.Data, b.Data, k, n, 0, m, 0, n, acc)
		return
	}
	if m >= 2*par.Width(m, 1) {
		op := opTBRows
		if acc {
			op = opTBAccRows
		}
		runGEMM(op, m, 1, out.Data, a.Data, b.Data, m, k, n)
	} else {
		op := opTBCols
		if acc {
			op = opTBAccCols
		}
		runGEMM(op, n, 16, out.Data, a.Data, b.Data, m, k, n)
	}
}

// MatMulTBInto computes out = a·bᵀ reusing out's storage ([m,k]·[n,k]ᵀ
// → [m,n]). Every element is overwritten; out must not alias a or b.
func MatMulTBInto(out, a, b *Tensor) { matmulTB(out, a, b, false) }

// MatMulTBAcc computes out += a·bᵀ. The per-element dot product is the
// same row kernel as MatMulTBInto (matmulTBRows), so
// `MatMulTBAcc(g, a, b)` is bitwise equal to
// `AddInPlace(g, MatMulTB(a, b))` without the intermediate allocation
// — exactly what gradient accumulation needs.
func MatMulTBAcc(out, a, b *Tensor) { matmulTB(out, a, b, true) }

// matmulTBRows is the one a·bᵀ kernel: rows [ilo,ihi) × columns
// [jlo,jhi) of out, assigning or accumulating per acc. Each output
// element is one self-contained dot product, so any row/column
// banding yields bitwise-identical results.
func matmulTBRows(dst, a, b []float32, k, n, ilo, ihi, jlo, jhi int, acc bool) {
	for i := ilo; i < ihi; i++ {
		ai := a[i*k : (i+1)*k]
		oi := dst[i*n : (i+1)*n]
		for j := jlo; j < jhi; j++ {
			s := dotUnroll4(ai, b[j*k:(j+1)*k], k)
			if acc {
				oi[j] += s
			} else {
				oi[j] = s
			}
		}
	}
}

// dotUnroll4 is the shared 4-way-unrolled dot product. The expression
// shape (two chained 2-term sums per step) is load-bearing: it is the
// historical MatMulTBInto/MatMulTBAcc accumulation order, which the
// seeded report pins depend on bitwise.
func dotUnroll4(a, b []float32, k int) float32 {
	s := float32(0)
	p := 0
	for ; p+4 <= k; p += 4 {
		s += a[p]*b[p] + a[p+1]*b[p+1] + a[p+2]*b[p+2] + a[p+3]*b[p+3]
	}
	for ; p < k; p++ {
		s += a[p] * b[p]
	}
	return s
}
