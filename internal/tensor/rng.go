package tensor

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. Every
// stochastic component in this repository (weight init, data synthesis,
// sampling) draws from an explicitly-seeded RNG so that experiments are
// exactly reproducible run-to-run.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform sample in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform sample in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a sample from N(mean, std²) via Box–Muller.
func (r *RNG) Normal(mean, std float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + std*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new, independent generator derived from this one.
// Useful for giving each subsystem its own stream.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// FillUniform fills t with uniform samples in [lo, hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.Range(lo, hi))
	}
}

// FillNormal fills t with N(mean, std²) samples.
func (r *RNG) FillNormal(t *Tensor, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.Normal(mean, std))
	}
}

// KaimingConv fills a conv weight tensor [outC, inC, kh, kw] with
// Kaiming-He initialization for ReLU networks.
func (r *RNG) KaimingConv(w *Tensor) {
	s := w.Shape()
	if len(s) != 4 {
		panic("tensor: KaimingConv needs [outC,inC,kh,kw] weights")
	}
	fanIn := s[1] * s[2] * s[3]
	std := math.Sqrt(2.0 / float64(fanIn))
	r.FillNormal(w, 0, std)
}

// KaimingLinear fills a linear weight tensor [out, in] with Kaiming-He
// initialization.
func (r *RNG) KaimingLinear(w *Tensor) {
	s := w.Shape()
	if len(s) != 2 {
		panic("tensor: KaimingLinear needs [out,in] weights")
	}
	std := math.Sqrt(2.0 / float64(s[1]))
	r.FillNormal(w, 0, std)
}
