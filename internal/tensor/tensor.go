// Package tensor implements a small dense float32 tensor library: the
// numeric substrate for every neural-network component in this
// repository. Tensors are row-major and contiguous; shapes are immutable
// after construction (use Reshape to obtain a view with a new shape).
//
// The package is deliberately minimal — only the operations needed by
// the UFLD lane detector, the LD-BN-ADAPT algorithm and the CARLANE
// SOTA baseline are provided — but every operation is fully implemented
// (no stubs) and covered by unit and property tests.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 array with an explicit shape.
// The zero value is not usable; construct with New, Zeros, FromSlice &c.
type Tensor struct {
	// Data holds the elements in row-major order. len(Data) == Size().
	Data []float32
	// shape holds the extent of each dimension.
	shape []int
}

// New allocates a zero-filled tensor with the given shape.
// It panics if any dimension is non-positive.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// Zeros is an alias for New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones allocates a tensor filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Full allocates a tensor filled with v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is
// used directly (not copied); it panics if the element count mismatches.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// checkShape validates a shape and returns the element count.
func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified by the caller.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal sizes.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.Data, src.Data)
}

// Reshape returns a view over the same data with a new shape.
// The element count must be preserved.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.Data), shape, n))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set writes v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d for shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// String renders a compact description (shape plus leading elements),
// suitable for debugging and error messages.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if n < len(t.Data) {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}

// AllClose reports whether all elements of t and o are within tol of
// each other. It returns false on shape-size mismatch or NaNs.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if len(t.Data) != len(o.Data) {
		return false
	}
	for i := range t.Data {
		a, b := float64(t.Data[i]), float64(o.Data[i])
		if math.IsNaN(a) || math.IsNaN(b) {
			return false
		}
		if math.Abs(a-b) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}
