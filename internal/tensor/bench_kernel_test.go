package tensor

import "testing"

// Kernel benchmarks behind the bench-json `-cpu 1,4` rows: the same
// GEMM/lowering shapes the Tiny detector's heaviest conv layer feeds
// the pool (64 output channels, 64·3·3 taps, 28×28 output). The -cpu
// sweep measures the worker-pool speedup curve per kernel; BENCHTIME
// and the manifest plumbing are shared with the serving benchmarks
// (see Makefile bench-json and PERFORMANCE.md).

const (
	bkM = 64  // output channels
	bkK = 576 // 64 input channels × 3×3 taps
	bkN = 784 // 28×28 output pixels
)

func BenchmarkKernelMatMul(b *testing.B) {
	rng := NewRNG(1)
	a := New(bkM, bkK)
	x := New(bkK, bkN)
	out := New(bkM, bkN)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(x, -1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, a, x)
	}
}

// BenchmarkKernelMatMulTB is the Linear-forward shape: a small serving
// batch against a wide weight matrix, which the pool bands over output
// features because the batch has fewer rows than workers.
func BenchmarkKernelMatMulTB(b *testing.B) {
	rng := NewRNG(2)
	a := New(4, 512)
	w := New(1024, 512)
	out := New(4, 1024)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(w, -1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTBInto(out, a, w)
	}
}

// BenchmarkKernelMatMulTA is the conv-backward dcols shape:
// Wᵀ[K,outC] · dY[outC, hw].
func BenchmarkKernelMatMulTA(b *testing.B) {
	rng := NewRNG(3)
	w := New(bkM, bkK)
	g := New(bkM, bkN)
	out := New(bkK, bkN)
	rng.FillUniform(w, -1, 1)
	rng.FillUniform(g, -1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTAInto(out, w, g)
	}
}

var bkGeom = ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}

func BenchmarkKernelIm2Col(b *testing.B) {
	rng := NewRNG(4)
	x := New(1, 64, 28, 28)
	rng.FillUniform(x, -1, 1)
	out := New(bkK, bkN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(out, x, bkGeom)
	}
}

func BenchmarkKernelCol2Im(b *testing.B) {
	rng := NewRNG(5)
	cols := New(bkK, bkN)
	rng.FillUniform(cols, -1, 1)
	out := New(1, 64, 28, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Col2ImInto(out, cols, bkGeom)
	}
}

func BenchmarkKernelInt8MatMul(b *testing.B) {
	rng := NewRNG(6)
	af := New(bkM, bkK)
	xf := New(bkK, bkN)
	rng.FillUniform(af, -1, 1)
	rng.FillUniform(xf, -1, 1)
	a := make([]int8, bkM*bkK)
	aScales := make([]float32, bkM)
	QuantizeInt8PerRow(a, aScales, af.Data, bkM, bkK)
	x := make([]int8, bkK*bkN)
	xScale := QuantizeInt8(x, xf.Data)
	out := New(bkM, bkN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Int8MatMulInto(out, a, aScales, x, xScale, bkM, bkK, bkN)
	}
}
