package tensor

import (
	"math"
	"testing"
)

func TestConvGeomOutSize(t *testing.T) {
	g := ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}
	oh, ow := g.OutSize(8, 10)
	if oh != 8 || ow != 10 {
		t.Fatalf("same-pad 3x3: got %dx%d", oh, ow)
	}
	g = ConvGeom{KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1}
	oh, ow = g.OutSize(8, 10)
	if oh != 4 || ow != 5 {
		t.Fatalf("stride-2: got %dx%d", oh, ow)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("impossible geometry did not panic")
		}
	}()
	ConvGeom{KH: 9, KW: 9, SH: 1, SW: 1}.OutSize(4, 4)
}

// naiveConv computes a direct convolution for cross-checking the
// im2col+matmul path.
func naiveConv(x, w *Tensor, g ConvGeom) *Tensor {
	n, c, h, wd := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outC := w.Dim(0)
	oh, ow := g.OutSize(h, wd)
	out := New(n, outC, oh, ow)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < g.KH; ky++ {
							for kx := 0; kx < g.KW; kx++ {
								iy := oy*g.SH - g.PH + ky
								ix := ox*g.SW - g.PW + kx
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								s += float64(x.At(ni, ci, iy, ix)) * float64(w.At(oc, ci, ky, kx))
							}
						}
					}
					out.Set(float32(s), ni, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	rng := NewRNG(21)
	cases := []struct {
		n, c, h, w, outC int
		g                ConvGeom
	}{
		{1, 1, 5, 5, 1, ConvGeom{3, 3, 1, 1, 1, 1}},
		{2, 3, 8, 6, 4, ConvGeom{3, 3, 1, 1, 1, 1}},
		{2, 3, 9, 7, 5, ConvGeom{3, 3, 2, 2, 1, 1}},
		{1, 2, 6, 6, 3, ConvGeom{1, 1, 1, 1, 0, 0}},
		{1, 2, 7, 9, 3, ConvGeom{5, 3, 2, 1, 2, 1}},
	}
	for i, tc := range cases {
		x := New(tc.n, tc.c, tc.h, tc.w)
		w := New(tc.outC, tc.c, tc.g.KH, tc.g.KW)
		rng.FillNormal(x, 0, 1)
		rng.FillNormal(w, 0, 1)
		oh, ow := tc.g.OutSize(tc.h, tc.w)
		cols := Im2Col(x, tc.g)
		wm := w.Reshape(tc.outC, tc.c*tc.g.KH*tc.g.KW)
		prod := MatMul(wm, cols) // [outC, n*oh*ow]
		// Rearrange [outC, n, oh*ow] → [n, outC, oh, ow].
		got := New(tc.n, tc.outC, oh, ow)
		for oc := 0; oc < tc.outC; oc++ {
			for ni := 0; ni < tc.n; ni++ {
				src := prod.Data[(oc*tc.n+ni)*oh*ow : (oc*tc.n+ni+1)*oh*ow]
				dst := got.Data[(ni*tc.outC+oc)*oh*ow : (ni*tc.outC+oc+1)*oh*ow]
				copy(dst, src)
			}
		}
		want := naiveConv(x, w, tc.g)
		if !got.AllClose(want, 1e-3) {
			t.Fatalf("case %d: im2col conv mismatch", i)
		}
	}
}

// TestCol2ImAdjoint verifies the defining adjoint property
// <Im2Col(x), y> == <x, Col2Im(y)> which makes Col2Im the correct
// gradient of Im2Col.
func TestCol2ImAdjoint(t *testing.T) {
	rng := NewRNG(22)
	g := ConvGeom{KH: 3, KW: 3, SH: 2, SW: 1, PH: 1, PW: 1}
	n, c, h, w := 2, 3, 7, 6
	x := New(n, c, h, w)
	rng.FillNormal(x, 0, 1)
	cols := Im2Col(x, g)
	y := New(cols.Dim(0), cols.Dim(1))
	rng.FillNormal(y, 0, 1)
	lhs := Dot(cols, y)
	rhs := Dot(x, Col2Im(y, n, c, h, w, g))
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint violated: %v vs %v", lhs, rhs)
	}
}

func TestIm2ColShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 3-D input")
		}
	}()
	Im2Col(New(1, 2, 3), ConvGeom{KH: 1, KW: 1, SH: 1, SW: 1})
}

func TestCol2ImShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong cols shape")
		}
	}()
	Col2Im(New(2, 2), 1, 1, 4, 4, ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1})
}
