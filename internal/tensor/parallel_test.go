package tensor

import (
	"math"
	"runtime"
	"testing"
)

// Cross-kernel bitwise determinism suite: every parallel kernel must
// produce byte-identical output at any worker count, because band
// boundaries only decide WHO computes an output element, never the
// order of that element's accumulation (see internal/tensor/README.md
// and internal/par). The suite lowers the serial-threshold gate vars
// so even adversarial small shapes — prime dims, fewer rows than
// workers, empty remainder bands — take the pooled path, and compares
// against a golden computed with the gates at +∞ (strictly serial).

// lowGates forces every kernel through the pooled path and restores
// the production gates after the test.
func lowGates(t *testing.T) {
	t.Helper()
	pm, im, lm := matmulParMin, int8ParMin, lowerParMin
	matmulParMin, int8ParMin, lowerParMin = 1, 1, 1
	t.Cleanup(func() { matmulParMin, int8ParMin, lowerParMin = pm, im, lm })
}

// serialGates disables the pooled path entirely.
func serialGates(t *testing.T) func() {
	pm, im, lm := matmulParMin, int8ParMin, lowerParMin
	matmulParMin, int8ParMin, lowerParMin = math.MaxInt, math.MaxInt, math.MaxInt
	return func() { matmulParMin, int8ParMin, lowerParMin = pm, im, lm }
}

func withMaxProcs(t *testing.T, procs int, f func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	f()
}

// bitsEqual reports exact bitwise equality (NaN-safe, ±0-distinguishing).
func bitsEqual(a, b []float32) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i
		}
	}
	return -1
}

var parProcs = []int{1, 2, 3, 8}

// gemmShapes covers both banding axes: m ≥ 2·width rows (row bands),
// wide-and-short (column bands), prime dims, m < workers, k=0-adjacent
// tiny dims and single elements.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{2, 3, 5},
	{7, 11, 13},
	{3, 17, 97}, // fewer rows than workers at 8 procs → column bands
	{37, 5, 4},  // row bands with remainder
	{8, 64, 8},
	{13, 1, 29},
	{1, 128, 101}, // single row: must fall to column banding
}

func TestMatMulBitwiseAcrossWorkers(t *testing.T) {
	rng := NewRNG(0x5eed)
	for _, sh := range gemmShapes {
		a := New(sh.m, sh.k)
		b := New(sh.k, sh.n)
		rng.FillUniform(a, -2, 2)
		rng.FillUniform(b, -2, 2)
		golden := New(sh.m, sh.n)
		restore := serialGates(t)
		MatMulInto(golden, a, b)
		restore()
		lowGates(t)
		for _, procs := range parProcs {
			withMaxProcs(t, procs, func() {
				got := New(sh.m, sh.n)
				// Poison dst: the kernel must fully overwrite it.
				for i := range got.Data {
					got.Data[i] = float32(math.NaN())
				}
				MatMulInto(got, a, b)
				if i := bitsEqual(golden.Data, got.Data); i >= 0 {
					t.Fatalf("MatMul %dx%dx%d procs=%d: element %d differs: %v vs %v",
						sh.m, sh.k, sh.n, procs, i, golden.Data[i], got.Data[i])
				}
			})
		}
	}
}

func TestMatMulTABitwiseAcrossWorkers(t *testing.T) {
	rng := NewRNG(0xabcd)
	for _, sh := range gemmShapes {
		// TA: a is [k, m], out is [m, n]
		a := New(sh.k, sh.m)
		b := New(sh.k, sh.n)
		rng.FillUniform(a, -2, 2)
		rng.FillUniform(b, -2, 2)
		golden := New(sh.m, sh.n)
		restore := serialGates(t)
		MatMulTAInto(golden, a, b)
		restore()
		lowGates(t)
		for _, procs := range parProcs {
			withMaxProcs(t, procs, func() {
				got := New(sh.m, sh.n)
				for i := range got.Data {
					got.Data[i] = float32(math.NaN())
				}
				MatMulTAInto(got, a, b)
				if i := bitsEqual(golden.Data, got.Data); i >= 0 {
					t.Fatalf("MatMulTA %dx%dx%d procs=%d: element %d differs",
						sh.m, sh.k, sh.n, procs, i)
				}
			})
		}
	}
}

func TestMatMulTBBitwiseAcrossWorkers(t *testing.T) {
	rng := NewRNG(0x7777)
	for _, sh := range gemmShapes {
		a := New(sh.m, sh.k)
		b := New(sh.n, sh.k) // TB: b is [n, k]
		rng.FillUniform(a, -2, 2)
		rng.FillUniform(b, -2, 2)
		golden := New(sh.m, sh.n)
		goldenAcc := New(sh.m, sh.n)
		rng.FillUniform(goldenAcc, -1, 1)
		accInit := append([]float32(nil), goldenAcc.Data...)
		restore := serialGates(t)
		MatMulTBInto(golden, a, b)
		MatMulTBAcc(goldenAcc, a, b)
		restore()
		lowGates(t)
		for _, procs := range parProcs {
			withMaxProcs(t, procs, func() {
				got := New(sh.m, sh.n)
				MatMulTBInto(got, a, b)
				if i := bitsEqual(golden.Data, got.Data); i >= 0 {
					t.Fatalf("MatMulTB %dx%dx%d procs=%d: element %d differs",
						sh.m, sh.k, sh.n, procs, i)
				}
				gotAcc := New(sh.m, sh.n)
				copy(gotAcc.Data, accInit)
				MatMulTBAcc(gotAcc, a, b)
				if i := bitsEqual(goldenAcc.Data, gotAcc.Data); i >= 0 {
					t.Fatalf("MatMulTBAcc %dx%dx%d procs=%d: element %d differs",
						sh.m, sh.k, sh.n, procs, i)
				}
			})
		}
	}
}

// lowerShapes stresses the padded/unpadded zero-skip split and odd
// geometries: stride > kernel, asymmetric padding reach, rows < workers.
var lowerShapes = []struct {
	n, c, h, w int
	g          ConvGeom
}{
	{1, 1, 5, 5, ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}},
	{2, 3, 7, 11, ConvGeom{KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1}},
	{1, 2, 8, 8, ConvGeom{KH: 1, KW: 1, SH: 1, SW: 1}}, // unpadded 1x1: no zeroing at all
	{3, 1, 6, 9, ConvGeom{KH: 2, KW: 2, SH: 2, SW: 3}}, // unpadded, stride > kernel in x
	{1, 5, 13, 7, ConvGeom{KH: 5, KW: 3, SH: 1, SW: 2, PH: 2, PW: 1}},
	{2, 1, 3, 3, ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}}, // 9 rows < width? no: rows=9
	{1, 1, 4, 4, ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}},               // rows=4 < 8 workers
}

func TestIm2ColBitwiseAcrossWorkers(t *testing.T) {
	rng := NewRNG(0x12c0)
	for _, sh := range lowerShapes {
		x := New(sh.n, sh.c, sh.h, sh.w)
		rng.FillUniform(x, -3, 3)
		oh, ow := sh.g.OutSize(sh.h, sh.w)
		rows := sh.c * sh.g.KH * sh.g.KW
		cols := sh.n * oh * ow
		golden := New(rows, cols)
		restore := serialGates(t)
		Im2ColInto(golden, x, sh.g)
		restore()
		lowGates(t)
		for _, procs := range parProcs {
			withMaxProcs(t, procs, func() {
				got := New(rows, cols)
				// Poison: padding zeros must be written, not inherited.
				for i := range got.Data {
					got.Data[i] = 42
				}
				Im2ColInto(got, x, sh.g)
				if i := bitsEqual(golden.Data, got.Data); i >= 0 {
					t.Fatalf("Im2Col %+v procs=%d: element %d differs: %v vs %v",
						sh, procs, i, golden.Data[i], got.Data[i])
				}
			})
		}
	}
}

func TestCol2ImBitwiseAcrossWorkers(t *testing.T) {
	rng := NewRNG(0xc021)
	for _, sh := range lowerShapes {
		oh, ow := sh.g.OutSize(sh.h, sh.w)
		rows := sh.c * sh.g.KH * sh.g.KW
		cols := New(rows, sh.n*oh*ow)
		rng.FillUniform(cols, -3, 3)
		golden := New(sh.n, sh.c, sh.h, sh.w)
		restore := serialGates(t)
		Col2ImInto(golden, cols, sh.g)
		restore()
		lowGates(t)
		for _, procs := range parProcs {
			withMaxProcs(t, procs, func() {
				got := New(sh.n, sh.c, sh.h, sh.w)
				for i := range got.Data {
					got.Data[i] = 42
				}
				Col2ImInto(got, cols, sh.g)
				if i := bitsEqual(golden.Data, got.Data); i >= 0 {
					t.Fatalf("Col2Im %+v procs=%d: element %d differs", sh, procs, i)
				}
			})
		}
	}
}

func TestInt8KernelsBitwiseAcrossWorkers(t *testing.T) {
	rng := NewRNG(0x8b17)
	for _, sh := range gemmShapes {
		a := make([]int8, sh.m*sh.k)
		b := make([]int8, sh.k*sh.n)
		bt := make([]int8, sh.n*sh.k)
		aScales := make([]float32, sh.m)
		bScales := make([]float32, sh.n)
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
		}
		for i := range b {
			b[i] = int8(rng.Intn(255) - 127)
		}
		for i := range bt {
			bt[i] = int8(rng.Intn(255) - 127)
		}
		for i := range aScales {
			aScales[i] = rng.Float32() + 0.01
		}
		for i := range bScales {
			bScales[i] = rng.Float32() + 0.01
		}
		xScale := rng.Float32() + 0.01
		goldenMM := New(sh.m, sh.n)
		goldenTB := New(sh.m, sh.n)
		restore := serialGates(t)
		Int8MatMulInto(goldenMM, a, aScales, b, xScale, sh.m, sh.k, sh.n)
		Int8MatMulTBInto(goldenTB, a, aScales, bt, bScales, sh.m, sh.k, sh.n)
		restore()
		lowGates(t)
		for _, procs := range parProcs {
			withMaxProcs(t, procs, func() {
				got := New(sh.m, sh.n)
				Int8MatMulInto(got, a, aScales, b, xScale, sh.m, sh.k, sh.n)
				if i := bitsEqual(goldenMM.Data, got.Data); i >= 0 {
					t.Fatalf("Int8MatMul %dx%dx%d procs=%d: element %d differs",
						sh.m, sh.k, sh.n, procs, i)
				}
				gotTB := New(sh.m, sh.n)
				Int8MatMulTBInto(gotTB, a, aScales, bt, bScales, sh.m, sh.k, sh.n)
				if i := bitsEqual(goldenTB.Data, gotTB.Data); i >= 0 {
					t.Fatalf("Int8MatMulTB %dx%dx%d procs=%d: element %d differs",
						sh.m, sh.k, sh.n, procs, i)
				}
			})
		}
	}
}

func TestIm2ColInt8BitwiseAcrossWorkers(t *testing.T) {
	rng := NewRNG(0x18c0)
	for _, sh := range lowerShapes {
		if sh.n != 1 {
			continue // int8 lowering is single-sample
		}
		x := make([]int8, sh.c*sh.h*sh.w)
		for i := range x {
			x[i] = int8(rng.Intn(255) - 127)
		}
		oh, ow := sh.g.OutSize(sh.h, sh.w)
		rows := sh.c * sh.g.KH * sh.g.KW
		golden := make([]int8, rows*oh*ow)
		restore := serialGates(t)
		Im2ColInt8Into(golden, x, sh.c, sh.h, sh.w, sh.g)
		restore()
		lowGates(t)
		for _, procs := range parProcs {
			withMaxProcs(t, procs, func() {
				got := make([]int8, rows*oh*ow)
				for i := range got {
					got[i] = 42
				}
				Im2ColInt8Into(got, x, sh.c, sh.h, sh.w, sh.g)
				for i := range golden {
					if golden[i] != got[i] {
						t.Fatalf("Im2ColInt8 %+v procs=%d: element %d differs", sh, procs, i)
					}
				}
			})
		}
	}
}
