package tensor

import (
	"fmt"

	"ldbnadapt/internal/par"
)

// Parallel gate for the lowering kernels, in output elements. The
// lowering is a strided copy (memory-bound, no MACs), so its
// break-even is higher than the GEMM gate in per-element terms; the
// var is lowered by the bitwise property suite like the GEMM gates.
var lowerParMin = 1 << 17

// ConvGeom describes the geometry of a 2-D convolution: kernel size,
// stride and symmetric zero padding. It is shared by the convolution
// layer, the pooling layers and the FLOPs model.
type ConvGeom struct {
	KH, KW int // kernel height and width
	SH, SW int // stride
	PH, PW int // zero padding (applied symmetrically)
}

// OutSize returns the output spatial size for an input of size (h, w).
// It panics if the geometry does not fit the input.
func (g ConvGeom) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*g.PH-g.KH)/g.SH + 1
	ow = (w+2*g.PW-g.KW)/g.SW + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v does not fit input %dx%d", g, h, w))
	}
	return oh, ow
}

// tapOOB reports whether kernel tap (ky,kx) reads out of bounds for
// any output position — i.e. whether the corresponding im2col row has
// padding-supplied zeros. With no padding every tap is in bounds for
// every position (OutSize guarantees it), so unpadded lowerings skip
// zero-filling entirely: every element of the row is overwritten.
func (g ConvGeom) tapOOB(h, w, oh, ow, ky, kx int) bool {
	return ky-g.PH < 0 || (oh-1)*g.SH+ky-g.PH >= h ||
		kx-g.PW < 0 || (ow-1)*g.SW+kx-g.PW >= w
}

// Im2Col lowers a batched image tensor x with shape [n, c, h, w] into a
// matrix of shape [c*kh*kw, n*oh*ow] so that convolution becomes a
// single matrix product weights[outC, c*kh*kw] · cols.
// Out-of-bounds taps read as zero (zero padding).
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	if x.NDim() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs [n,c,h,w] input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := g.OutSize(h, w)
	out := New(c*g.KH*g.KW, n*oh*ow)
	Im2ColInto(out, x, g)
	return out
}

// im2colTask is the pooled argument block for Im2ColInto, banded over
// output rows (each row is one (channel, kernel-tap) combination and
// is written by exactly one band).
type im2colTask struct {
	out, x     []float32
	n, c, h, w int
	oh, ow     int
	g          ConvGeom
}

func (t *im2colTask) Chunk(_, lo, hi int) {
	im2colRows(t.out, t.x, t.n, t.c, t.h, t.w, t.oh, t.ow, t.g, lo, hi)
}

var im2colCache par.Cache[im2colTask]

// Im2ColInto is Im2Col writing into a preallocated [c*kh*kw, n*oh*ow]
// matrix, so inference-path callers can reuse the lowering buffer
// across frames instead of allocating one per convolution call. Rows
// are zero-filled only when their kernel tap can read out of bounds
// (zero padding); unpadded geometries overwrite every element, so the
// old full-buffer Zero() pass is skipped entirely.
func Im2ColInto(out, x *Tensor, g ConvGeom) {
	if x.NDim() != 4 {
		panic(fmt.Sprintf("tensor: Im2ColInto needs [n,c,h,w] input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := g.OutSize(h, w)
	rows := c * g.KH * g.KW
	cols := n * oh * ow
	if out.NDim() != 2 || out.shape[0] != rows || out.shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2ColInto dst %v, want [%d,%d]", out.shape, rows, cols))
	}
	if rows*cols < lowerParMin {
		im2colRows(out.Data, x.Data, n, c, h, w, oh, ow, g, 0, rows)
		return
	}
	t := im2colCache.Get()
	*t = im2colTask{out: out.Data, x: x.Data, n: n, c: c, h: h, w: w, oh: oh, ow: ow, g: g}
	par.For(rows, 1, t)
	t.out, t.x = nil, nil
	im2colCache.Put(t)
}

// im2colRows fills output rows [rlo,rhi). Row r corresponds to
// (channel ci, kernel tap ky,kx); column corresponds to (image ni,
// output pixel oy,ox).
func im2colRows(out, x []float32, n, c, h, w, oh, ow int, g ConvGeom, rlo, rhi int) {
	cols := n * oh * ow
	for r := rlo; r < rhi; r++ {
		kx := r % g.KW
		ky := (r / g.KW) % g.KH
		ci := r / (g.KH * g.KW)
		dst := out[r*cols : (r+1)*cols]
		if g.tapOOB(h, w, oh, ow, ky, kx) {
			clear(dst)
		}
		for ni := 0; ni < n; ni++ {
			src := x[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
			base := ni * oh * ow
			for oy := 0; oy < oh; oy++ {
				iy := oy*g.SH - g.PH + ky
				if iy < 0 || iy >= h {
					continue // leave zeros
				}
				rowSrc := src[iy*w : (iy+1)*w]
				dcol := base + oy*ow
				ix := -g.PW + kx
				for ox := 0; ox < ow; ox++ {
					if ix >= 0 && ix < w {
						dst[dcol+ox] = rowSrc[ix]
					}
					ix += g.SW
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a [c*kh*kw, n*oh*ow]
// matrix back into a [n, c, h, w] tensor, accumulating where kernel
// windows overlap. It is the gradient of Im2Col and is used by the
// convolution backward pass.
func Col2Im(cols *Tensor, n, c, h, w int, g ConvGeom) *Tensor {
	out := New(n, c, h, w)
	Col2ImInto(out, cols, g)
	return out
}

// col2imTask is the pooled argument block for Col2ImInto, banded over
// input channels: destination element (ni,ci,iy,ix) only receives
// scatter-adds from im2col rows of the same channel ci, so channel
// bands own disjoint output and the per-element accumulation order
// (ky,kx,oy,ox-major, exactly the serial loop) is unchanged at any
// worker count.
type col2imTask struct {
	out, cols  []float32
	n, c, h, w int
	oh, ow     int
	g          ConvGeom
}

func (t *col2imTask) Chunk(_, lo, hi int) {
	col2imChans(t.out, t.cols, t.n, t.c, t.h, t.w, t.oh, t.ow, t.g, lo, hi)
}

var col2imCache par.Cache[col2imTask]

// Col2ImInto is Col2Im scattering into a preallocated [n,c,h,w] tensor.
// The destination is zeroed first and the scatter order matches Col2Im,
// so a scratch-backed call is bitwise equal to the allocating one.
func Col2ImInto(out, cols *Tensor, g ConvGeom) {
	if out.NDim() != 4 {
		panic(fmt.Sprintf("tensor: Col2ImInto needs [n,c,h,w] dst, got %v", out.shape))
	}
	n, c, h, w := out.shape[0], out.shape[1], out.shape[2], out.shape[3]
	oh, ow := g.OutSize(h, w)
	rows := c * g.KH * g.KW
	nc := n * oh * ow
	if cols.NDim() != 2 || cols.shape[0] != rows || cols.shape[1] != nc {
		panic(fmt.Sprintf("tensor: Col2ImInto got %v, want [%d,%d]", cols.shape, rows, nc))
	}
	if rows*nc < lowerParMin {
		col2imChans(out.Data, cols.Data, n, c, h, w, oh, ow, g, 0, c)
		return
	}
	t := col2imCache.Get()
	*t = col2imTask{out: out.Data, cols: cols.Data, n: n, c: c, h: h, w: w, oh: oh, ow: ow, g: g}
	par.For(c, 1, t)
	t.out, t.cols = nil, nil
	col2imCache.Put(t)
}

// col2imChans zeroes and scatter-accumulates destination channels
// [clo,chi) across all samples.
func col2imChans(out, cols []float32, n, c, h, w, oh, ow int, g ConvGeom, clo, chi int) {
	nc := n * oh * ow
	for ci := clo; ci < chi; ci++ {
		for ni := 0; ni < n; ni++ {
			clear(out[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w])
		}
	}
	for ci := clo; ci < chi; ci++ {
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				r := (ci*g.KH+ky)*g.KW + kx
				src := cols[r*nc : (r+1)*nc]
				for ni := 0; ni < n; ni++ {
					dst := out[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
					base := ni * oh * ow
					for oy := 0; oy < oh; oy++ {
						iy := oy*g.SH - g.PH + ky
						if iy < 0 || iy >= h {
							continue
						}
						dstRow := dst[iy*w : (iy+1)*w]
						scol := base + oy*ow
						ix := -g.PW + kx
						for ox := 0; ox < ow; ox++ {
							if ix >= 0 && ix < w {
								dstRow[ix] += src[scol+ox]
							}
							ix += g.SW
						}
					}
				}
			}
		}
	}
}
