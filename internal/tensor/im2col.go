package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution: kernel size,
// stride and symmetric zero padding. It is shared by the convolution
// layer, the pooling layers and the FLOPs model.
type ConvGeom struct {
	KH, KW int // kernel height and width
	SH, SW int // stride
	PH, PW int // zero padding (applied symmetrically)
}

// OutSize returns the output spatial size for an input of size (h, w).
// It panics if the geometry does not fit the input.
func (g ConvGeom) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*g.PH-g.KH)/g.SH + 1
	ow = (w+2*g.PW-g.KW)/g.SW + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v does not fit input %dx%d", g, h, w))
	}
	return oh, ow
}

// Im2Col lowers a batched image tensor x with shape [n, c, h, w] into a
// matrix of shape [c*kh*kw, n*oh*ow] so that convolution becomes a
// single matrix product weights[outC, c*kh*kw] · cols.
// Out-of-bounds taps read as zero (zero padding).
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	if x.NDim() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs [n,c,h,w] input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := g.OutSize(h, w)
	out := New(c*g.KH*g.KW, n*oh*ow)
	Im2ColInto(out, x, g)
	return out
}

// Im2ColInto is Im2Col writing into a preallocated [c*kh*kw, n*oh*ow]
// matrix, so inference-path callers can reuse the lowering buffer
// across frames instead of allocating one per convolution call.
func Im2ColInto(out, x *Tensor, g ConvGeom) {
	if x.NDim() != 4 {
		panic(fmt.Sprintf("tensor: Im2ColInto needs [n,c,h,w] input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := g.OutSize(h, w)
	rows := c * g.KH * g.KW
	cols := n * oh * ow
	if out.NDim() != 2 || out.shape[0] != rows || out.shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2ColInto dst %v, want [%d,%d]", out.shape, rows, cols))
	}
	out.Zero()
	// Row r of the output corresponds to (channel ci, kernel tap ky,kx);
	// column corresponds to (image ni, output pixel oy,ox).
	for ci := 0; ci < c; ci++ {
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				r := (ci*g.KH+ky)*g.KW + kx
				dst := out.Data[r*cols : (r+1)*cols]
				for ni := 0; ni < n; ni++ {
					src := x.Data[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
					base := ni * oh * ow
					for oy := 0; oy < oh; oy++ {
						iy := oy*g.SH - g.PH + ky
						if iy < 0 || iy >= h {
							continue // leave zeros
						}
						rowSrc := src[iy*w : (iy+1)*w]
						dcol := base + oy*ow
						ix := -g.PW + kx
						for ox := 0; ox < ow; ox++ {
							if ix >= 0 && ix < w {
								dst[dcol+ox] = rowSrc[ix]
							}
							ix += g.SW
						}
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a [c*kh*kw, n*oh*ow]
// matrix back into a [n, c, h, w] tensor, accumulating where kernel
// windows overlap. It is the gradient of Im2Col and is used by the
// convolution backward pass.
func Col2Im(cols *Tensor, n, c, h, w int, g ConvGeom) *Tensor {
	out := New(n, c, h, w)
	Col2ImInto(out, cols, g)
	return out
}

// Col2ImInto is Col2Im scattering into a preallocated [n,c,h,w] tensor.
// The destination is zeroed first and the scatter order matches Col2Im,
// so a scratch-backed call is bitwise equal to the allocating one.
func Col2ImInto(out, cols *Tensor, g ConvGeom) {
	if out.NDim() != 4 {
		panic(fmt.Sprintf("tensor: Col2ImInto needs [n,c,h,w] dst, got %v", out.shape))
	}
	n, c, h, w := out.shape[0], out.shape[1], out.shape[2], out.shape[3]
	oh, ow := g.OutSize(h, w)
	rows := c * g.KH * g.KW
	nc := n * oh * ow
	if cols.NDim() != 2 || cols.shape[0] != rows || cols.shape[1] != nc {
		panic(fmt.Sprintf("tensor: Col2ImInto got %v, want [%d,%d]", cols.shape, rows, nc))
	}
	out.Zero()
	for ci := 0; ci < c; ci++ {
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				r := (ci*g.KH+ky)*g.KW + kx
				src := cols.Data[r*nc : (r+1)*nc]
				for ni := 0; ni < n; ni++ {
					dst := out.Data[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
					base := ni * oh * ow
					for oy := 0; oy < oh; oy++ {
						iy := oy*g.SH - g.PH + ky
						if iy < 0 || iy >= h {
							continue
						}
						dstRow := dst[iy*w : (iy+1)*w]
						scol := base + oy*ow
						ix := -g.PW + kx
						for ox := 0; ox < ow; ox++ {
							if ix >= 0 && ix < w {
								dstRow[ix] += src[scol+ox]
							}
							ix += g.SW
						}
					}
				}
			}
		}
	}
}
