package tensor

import (
	"fmt"
	"math"
)

// SoftmaxRows applies a numerically-stable softmax independently to
// each row of a 2-D tensor [rows, classes].
func SoftmaxRows(logits *Tensor) *Tensor {
	if logits.NDim() != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows needs 2-D input, got %v", logits.shape))
	}
	r, c := logits.shape[0], logits.shape[1]
	out := New(r, c)
	for i := 0; i < r; i++ {
		softmaxRow(out.Data[i*c:(i+1)*c], logits.Data[i*c:(i+1)*c])
	}
	return out
}

// softmaxRow writes softmax(src) into dst (same length).
func softmaxRow(dst, src []float32) {
	m := src[0]
	for _, v := range src[1:] {
		if v > m {
			m = v
		}
	}
	sum := 0.0
	for i, v := range src {
		e := math.Exp(float64(v - m))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1.0 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSoftmaxRows applies a numerically-stable log-softmax to each row
// of a 2-D tensor.
func LogSoftmaxRows(logits *Tensor) *Tensor {
	if logits.NDim() != 2 {
		panic(fmt.Sprintf("tensor: LogSoftmaxRows needs 2-D input, got %v", logits.shape))
	}
	r, c := logits.shape[0], logits.shape[1]
	out := New(r, c)
	for i := 0; i < r; i++ {
		src := logits.Data[i*c : (i+1)*c]
		dst := out.Data[i*c : (i+1)*c]
		m := src[0]
		for _, v := range src[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for _, v := range src {
			sum += math.Exp(float64(v - m))
		}
		lse := float32(math.Log(sum)) + m
		for j, v := range src {
			dst[j] = v - lse
		}
	}
	return out
}

// RowEntropy returns the Shannon entropy (in nats) of each row of a
// 2-D probability tensor. Zero probabilities contribute zero.
func RowEntropy(probs *Tensor) []float64 {
	if probs.NDim() != 2 {
		panic(fmt.Sprintf("tensor: RowEntropy needs 2-D input, got %v", probs.shape))
	}
	r, c := probs.shape[0], probs.shape[1]
	out := make([]float64, r)
	for i := 0; i < r; i++ {
		h := 0.0
		for _, p := range probs.Data[i*c : (i+1)*c] {
			if p > 0 {
				h -= float64(p) * math.Log(float64(p))
			}
		}
		out[i] = h
	}
	return out
}
