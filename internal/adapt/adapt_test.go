package adapt

import (
	"math"
	"sync"
	"testing"

	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// fixture holds a pre-trained tiny MoLane model shared across tests
// (pre-training once keeps the suite fast on a single core).
type fixture struct {
	bench *carlane.Benchmark
	model *ufld.Model // source-trained; tests must Clone before mutating
	rng   *tensor.RNG
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := tensor.NewRNG(42)
		b := carlane.Build(carlane.MoLane, resnet.R18, ufld.Tiny,
			carlane.Sizes{SourceTrain: 60, SourceVal: 16, TargetTrain: 48, TargetVal: 24}, 5)
		m := ufld.MustNewModel(b.Cfg, rng)
		tc := ufld.DefaultTrainConfig()
		tc.Epochs = 6
		tc.BatchSize = 8
		if _, err := ufld.TrainSource(m, b.SourceTrain, tc, rng.Split()); err != nil {
			panic(err)
		}
		fix = fixture{bench: b, model: m, rng: rng}
	})
	return &fix
}

func TestLossKindString(t *testing.T) {
	if Entropy.String() != "entropy" || Confidence.String() != "confidence" {
		t.Fatal("loss names wrong")
	}
}

func TestMethodNames(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	cfg := DefaultConfig()
	if NewLDBNAdapt(m, cfg).Name() != "LD-BN-ADAPT" {
		t.Fatal("LDBNAdapt name")
	}
	if NewConvAdapt(m, cfg).Name() != "CONV-ADAPT" {
		t.Fatal("ConvAdapt name")
	}
	if NewFCAdapt(m, cfg).Name() != "FC-ADAPT" {
		t.Fatal("FCAdapt name")
	}
	if NewNoAdapt().Name() != "NoAdapt" {
		t.Fatal("NoAdapt name")
	}
}

func TestSourceTrainingWorked(t *testing.T) {
	f := getFixture(t)
	src := ufld.Evaluate(f.model, f.bench.SourceVal, 8).Accuracy
	if src < 0.7 {
		t.Fatalf("fixture source accuracy %.3f too low for meaningful tests", src)
	}
	tgt := ufld.Evaluate(f.model, f.bench.TargetVal, 8).Accuracy
	if tgt >= src {
		t.Fatalf("no domain gap: source %.3f target %.3f", src, tgt)
	}
}

func TestLDBNAdaptImprovesTargetAccuracy(t *testing.T) {
	f := getFixture(t)
	base := ufld.Evaluate(f.model, f.bench.TargetVal, 8).Accuracy
	m := f.model.Clone(f.rng.Split())
	meth := NewLDBNAdapt(m, DefaultConfig())
	res := RunOnline(m, meth, f.bench.TargetTrain, f.bench.TargetVal, 1)
	if res.FinalAccuracy <= base {
		t.Fatalf("LD-BN-ADAPT did not improve: %.4f → %.4f", base, res.FinalAccuracy)
	}
	if meth.Steps() != f.bench.TargetTrain.Len() {
		t.Fatalf("steps %d, want %d", meth.Steps(), f.bench.TargetTrain.Len())
	}
}

func TestLDBNAdaptTouchesOnlyBNParams(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	noWarm := DefaultConfig()
	noWarm.WarmupSteps = 0
	// Snapshot conv and FC weights.
	convBefore := make([]*tensor.Tensor, 0)
	for _, p := range m.ConvParams() {
		convBefore = append(convBefore, p.Value.Clone())
	}
	fcBefore := make([]*tensor.Tensor, 0)
	for _, p := range m.FCParams() {
		fcBefore = append(fcBefore, p.Value.Clone())
	}
	bnBefore := make([]*tensor.Tensor, 0)
	for _, p := range m.BNParams() {
		bnBefore = append(bnBefore, p.Value.Clone())
	}
	meth := NewLDBNAdapt(m, noWarm)
	x := ufld.Images(m.Cfg, f.bench.TargetTrain.Samples, []int{0, 1})
	meth.Adapt(x)
	for i, p := range m.ConvParams() {
		if !p.Value.AllClose(convBefore[i], 0) {
			t.Fatalf("conv param %s modified by LD-BN-ADAPT", p.Name)
		}
	}
	for i, p := range m.FCParams() {
		if !p.Value.AllClose(fcBefore[i], 0) {
			t.Fatalf("fc param %s modified by LD-BN-ADAPT", p.Name)
		}
	}
	changed := false
	for i, p := range m.BNParams() {
		if !p.Value.AllClose(bnBefore[i], 0) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("no BN parameter changed")
	}
}

func TestLDBNAdaptRefreshesRunningStats(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	before := m.BatchNorms()[0].RunningMean.Clone()
	meth := NewLDBNAdapt(m, DefaultConfig())
	meth.Adapt(ufld.Images(m.Cfg, f.bench.TargetTrain.Samples, []int{0}))
	if m.BatchNorms()[0].RunningMean.AllClose(before, 0) {
		t.Fatal("running stats not refreshed from target data")
	}
}

func TestConvAdaptTouchesOnlyConvParams(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	bnBefore := make([]*tensor.Tensor, 0)
	for _, p := range m.BNParams() {
		bnBefore = append(bnBefore, p.Value.Clone())
	}
	statsBefore := m.BatchNorms()[0].RunningMean.Clone()
	noWarm := DefaultConfig()
	noWarm.WarmupSteps = 0
	meth := NewConvAdapt(m, noWarm)
	meth.Adapt(ufld.Images(m.Cfg, f.bench.TargetTrain.Samples, []int{0, 1}))
	for i, p := range m.BNParams() {
		if !p.Value.AllClose(bnBefore[i], 0) {
			t.Fatalf("BN param %s modified by CONV-ADAPT", p.Name)
		}
	}
	// Conv adaptation runs in Eval mode: BN stats stay at source values.
	if !m.BatchNorms()[0].RunningMean.AllClose(statsBefore, 0) {
		t.Fatal("CONV-ADAPT must not touch BN running stats")
	}
	changed := false
	for _, p := range m.ConvParams() {
		for i := range p.Value.Data {
			if p.Grad.Data[i] != 0 || p.Value.Data[i] != 0 {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("conv params untouched")
	}
}

func TestFCAdaptTouchesOnlyFCParams(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	fcBefore := make([]*tensor.Tensor, 0)
	for _, p := range m.FCParams() {
		fcBefore = append(fcBefore, p.Value.Clone())
	}
	convBefore := m.ConvParams()[0].Value.Clone()
	noWarm := DefaultConfig()
	noWarm.WarmupSteps = 0
	meth := NewFCAdapt(m, noWarm)
	meth.Adapt(ufld.Images(m.Cfg, f.bench.TargetTrain.Samples, []int{0, 1}))
	if !m.ConvParams()[0].Value.AllClose(convBefore, 0) {
		t.Fatal("FC-ADAPT modified conv weights")
	}
	moved := false
	for i, p := range m.FCParams() {
		if !p.Value.AllClose(fcBefore[i], 0) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("FC params untouched")
	}
}

func TestNoAdaptChangesNothing(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	before := make([]*tensor.Tensor, 0)
	for _, p := range m.Params() {
		before = append(before, p.Value.Clone())
	}
	res := RunOnline(m, NewNoAdapt(), f.bench.TargetTrain, f.bench.TargetVal, 2)
	for i, p := range m.Params() {
		if !p.Value.AllClose(before[i], 0) {
			t.Fatalf("NoAdapt modified %s", p.Name)
		}
	}
	base := ufld.Evaluate(f.model, f.bench.TargetVal, 8).Accuracy
	if math.Abs(res.FinalAccuracy-base) > 1e-9 {
		t.Fatalf("NoAdapt final %.4f != baseline %.4f", res.FinalAccuracy, base)
	}
}

func TestAdaptReducesEntropyOnTarget(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	before := ufld.Evaluate(m, f.bench.TargetVal, 8).MeanEntropy
	meth := NewLDBNAdapt(m, DefaultConfig())
	RunOnline(m, meth, f.bench.TargetTrain, nil, 1)
	after := ufld.Evaluate(m, f.bench.TargetVal, 8).MeanEntropy
	if after >= before {
		t.Fatalf("prediction entropy did not decrease: %.4f → %.4f", before, after)
	}
}

func TestRunOnlineBatchAccounting(t *testing.T) {
	f := getFixture(t)
	n := f.bench.TargetTrain.Len()
	for _, bs := range []int{1, 2, 4, 5} {
		m := f.model.Clone(f.rng.Split())
		meth := NewLDBNAdapt(m, DefaultConfig())
		res := RunOnline(m, meth, f.bench.TargetTrain, nil, bs)
		if res.Frames != n {
			t.Fatalf("bs=%d: frames %d, want %d", bs, res.Frames, n)
		}
		wantSteps := (n + bs - 1) / bs
		if meth.Steps() != wantSteps {
			t.Fatalf("bs=%d: steps %d, want %d", bs, meth.Steps(), wantSteps)
		}
		if res.BatchSize != bs {
			t.Fatalf("bs mismatch in result")
		}
	}
}

func TestRunOnlineRejectsBadBatch(t *testing.T) {
	f := getFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("bs=0 accepted")
		}
	}()
	RunOnline(f.model.Clone(f.rng.Split()), NewNoAdapt(), f.bench.TargetTrain, nil, 0)
}

func TestAdaptationIsDeterministic(t *testing.T) {
	f := getFixture(t)
	run := func() OnlineResult {
		m := f.model.Clone(tensor.NewRNG(1))
		return RunOnline(m, NewLDBNAdapt(m, DefaultConfig()), f.bench.TargetTrain, f.bench.TargetVal, 2)
	}
	a, b := run(), run()
	if a.FinalAccuracy != b.FinalAccuracy || a.OnlineAccuracy != b.OnlineAccuracy {
		t.Fatalf("non-deterministic adaptation: %+v vs %+v", a, b)
	}
}

func TestAdaptedParamCountIsSmall(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	meth := NewLDBNAdapt(m, DefaultConfig())
	frac := float64(meth.AdaptedParamCount()) / float64(nn.ParamCount(m.Params()))
	// The paper: BN params ≈1% of the model. The tiny test model is
	// less extreme but the set must still be a small fraction.
	if frac > 0.10 {
		t.Fatalf("BN params are %.1f%% of the model — not lightweight", 100*frac)
	}
}

func TestConfidenceLossVariantRuns(t *testing.T) {
	f := getFixture(t)
	m := f.model.Clone(f.rng.Split())
	cfg := DefaultConfig()
	cfg.Loss = Confidence
	meth := NewLDBNAdapt(m, cfg)
	res := RunOnline(m, meth, f.bench.TargetTrain, f.bench.TargetVal, 2)
	if res.FinalAccuracy <= 0 || res.FinalAccuracy > 1 {
		t.Fatalf("confidence-loss accuracy %v out of range", res.FinalAccuracy)
	}
}

func TestBatchSizeOneMatchesPaperBestOrdering(t *testing.T) {
	// The paper's Fig. 2 finding: bs=1 (adapt after every frame) gives
	// the best accuracy among {1, 2, 4}. The tiny fixture is noisy, so
	// assert the weaker, always-true part: every batch size improves on
	// no adaptation.
	f := getFixture(t)
	base := ufld.Evaluate(f.model, f.bench.TargetVal, 8).Accuracy
	for _, bs := range []int{1, 2, 4} {
		m := f.model.Clone(f.rng.Split())
		res := RunOnline(m, NewLDBNAdapt(m, DefaultConfig()), f.bench.TargetTrain, f.bench.TargetVal, bs)
		if res.FinalAccuracy < base {
			t.Fatalf("bs=%d degraded accuracy: %.4f < %.4f", bs, res.FinalAccuracy, base)
		}
	}
}

// scriptedLossMethod is a Method+LossReporter whose per-step losses are
// scripted, so RunOnline's mean-loss accounting can be pinned exactly.
type scriptedLossMethod struct {
	losses []float64
	valid  []bool
	steps  int
}

func (s *scriptedLossMethod) Name() string               { return "scripted" }
func (s *scriptedLossMethod) Adapt(batch *tensor.Tensor) { s.steps++ }
func (s *scriptedLossMethod) Steps() int                 { return s.steps }
func (s *scriptedLossMethod) LastStepLoss() (float64, bool) {
	i := s.steps - 1
	if i < 0 || i >= len(s.losses) {
		return 0, false
	}
	return s.losses[i], s.valid[i]
}

// TestRunOnlineMeanLossIsTrueMean is the regression test for the
// MeanLoss accounting: the documented *mean* unsupervised loss over
// adaptation steps, not the last step's loss, and steps that computed
// no loss (skipped warmup forwards) are excluded from the mean.
func TestRunOnlineMeanLossIsTrueMean(t *testing.T) {
	f := getFixture(t)
	n := f.bench.TargetTrain.Len()
	bs := 2
	steps := (n + bs - 1) / bs
	meth := &scriptedLossMethod{losses: make([]float64, steps), valid: make([]bool, steps)}
	for i := range meth.losses {
		meth.losses[i] = float64(i + 1) // 1, 2, 3, ... — mean ≠ last
		meth.valid[i] = true
	}
	meth.valid[0] = false // a warmup-style step with no loss
	m := f.model.Clone(f.rng.Split())
	res := RunOnline(m, meth, f.bench.TargetTrain, nil, bs)
	want, cnt := 0.0, 0
	for i := 1; i < steps; i++ {
		want += meth.losses[i]
		cnt++
	}
	want /= float64(cnt)
	if math.Abs(res.MeanLoss-want) > 1e-12 {
		t.Fatalf("MeanLoss %.6f, want mean-over-valid-steps %.6f (last loss %.6f)",
			res.MeanLoss, want, meth.losses[steps-1])
	}
	if res.MeanLoss == meth.losses[steps-1] {
		t.Fatal("MeanLoss still reports the final step's loss")
	}
}

// TestRunOnlineMeanLossForAblations: the entropy ablations now report
// losses too — RunOnline must surface a nonzero mean for them, not
// only for LD-BN-ADAPT.
func TestRunOnlineMeanLossForAblations(t *testing.T) {
	f := getFixture(t)
	for _, mk := range []struct {
		name string
		make func(m *ufld.Model) Method
	}{
		{"ldbn", func(m *ufld.Model) Method { return NewLDBNAdapt(m, DefaultConfig()) }},
		{"conv", func(m *ufld.Model) Method {
			cfg := DefaultConfig()
			cfg.LR /= 10
			return NewConvAdapt(m, cfg)
		}},
		{"fc", func(m *ufld.Model) Method {
			cfg := DefaultConfig()
			cfg.LR /= 10
			return NewFCAdapt(m, cfg)
		}},
	} {
		m := f.model.Clone(f.rng.Split())
		res := RunOnline(m, mk.make(m), f.bench.TargetTrain, nil, 2)
		if res.MeanLoss <= 0 {
			t.Fatalf("%s: MeanLoss %.6f, want > 0", mk.name, res.MeanLoss)
		}
	}
}

// TestAblationWarmupSkipsDeadForward: Conv/FC warmup steps have no BN
// statistics to refresh, so they must not run (and report) a forward;
// updates still start only after WarmupSteps batches.
func TestAblationWarmupSkipsDeadForward(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultConfig()
	cfg.LR /= 10
	cfg.WarmupSteps = 2
	m := f.model.Clone(f.rng.Split())
	meth := NewConvAdapt(m, cfg)
	before := make([]*tensor.Tensor, 0)
	for _, p := range m.ConvParams() {
		before = append(before, p.Value.Clone())
	}
	x := ufld.Images(m.Cfg, f.bench.TargetTrain.Samples, []int{0})
	for step := 0; step < 2; step++ {
		meth.Adapt(x)
		if _, ok := meth.LastStepLoss(); ok {
			t.Fatalf("warmup step %d reported a loss — dead forward still runs", step)
		}
		for i, p := range m.ConvParams() {
			if !p.Value.AllClose(before[i], 0) {
				t.Fatalf("warmup step %d moved %s", step, p.Name)
			}
		}
	}
	meth.Adapt(x)
	if loss, ok := meth.LastStepLoss(); !ok || loss <= 0 {
		t.Fatalf("post-warmup step loss (%v, %v), want a positive entropy", loss, ok)
	}
	moved := false
	for i, p := range m.ConvParams() {
		if !p.Value.AllClose(before[i], 0) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("post-warmup step left conv weights untouched")
	}
	if meth.Steps() != 3 {
		t.Fatalf("steps %d, want 3 (warmup steps still count)", meth.Steps())
	}
}
