// Package adapt implements the paper's contribution, LD-BN-ADAPT:
// real-time, fully unsupervised, on-device adaptation of a deployed
// UFLD lane detector. After inference on each incoming batch of
// unlabeled target frames, the batch-normalization statistics are
// recomputed from the batch and a single backpropagation pass of the
// prediction-entropy loss updates only the BN scale/shift parameters
// (γ, β) — ≈1 % of the model. The package also provides the ablation
// variants the paper mentions (convolutional-only and FC-only
// adaptation) and a no-op baseline.
package adapt

import (
	"fmt"

	"ldbnadapt/internal/nn"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// LossKind selects the unsupervised objective.
type LossKind int

const (
	// Entropy is the Shannon prediction entropy (the paper's loss).
	Entropy LossKind = iota
	// Confidence is the negative max-probability alternative used by
	// the loss ablation.
	Confidence
)

// String names the loss.
func (k LossKind) String() string {
	if k == Confidence {
		return "confidence"
	}
	return "entropy"
}

// Method is an online, fully unsupervised adaptation algorithm: Adapt
// consumes one batch of unlabeled target images and updates the model
// in place.
type Method interface {
	// Name identifies the method in reports.
	Name() string
	// Adapt performs one adaptation step on the batch [n,3,H,W].
	Adapt(batch *tensor.Tensor)
	// Steps reports how many adaptation steps have run.
	Steps() int
}

// LossReporter is implemented by the entropy-based methods, which can
// report the unsupervised loss of their most recent Adapt call. ok is
// false when the last step computed no loss (no step yet, or a warmup
// step that skipped its forward).
type LossReporter interface {
	LastStepLoss() (loss float64, ok bool)
}

// Config parameterizes the entropy-minimization methods.
type Config struct {
	// LR is the adaptation learning rate.
	LR float64
	// Momentum is the SGD momentum (ignored when UseAdam is set).
	Momentum float64
	// UseAdam selects Adam instead of SGD for the γ/β update — the
	// adaptive step sizes make single-frame (bs=1) adaptation robust
	// to the noisy entropy gradients of early, badly-shifted frames.
	UseAdam bool
	// WarmupSteps delays the γ/β updates for the first N adaptation
	// steps: the BN statistics (which need no gradients) settle into
	// the target domain before entropy optimization starts.
	WarmupSteps int
	// Loss selects the unsupervised objective.
	Loss LossKind
	// ClipNorm bounds the gradient norm per step (0 disables).
	ClipNorm float64
}

// DefaultConfig returns the settings used for LD-BN-ADAPT in the
// reproduction experiments.
func DefaultConfig() Config {
	return Config{LR: 3e-3, UseAdam: true, WarmupSteps: 4, Loss: Entropy, ClipNorm: 10}
}

// newOptimizer builds the configured optimizer.
func newOptimizer(cfg Config) nn.Optimizer {
	if cfg.UseAdam {
		return nn.NewAdam(cfg.LR)
	}
	return nn.NewSGD(cfg.LR, cfg.Momentum, 0)
}

// entropyStep runs the shared inner loop: forward under mode, compute
// the unsupervised loss gradient, one backward pass, one optimizer
// step restricted to params. During warmup the parameter update is
// skipped (in Adapt mode the forward still refreshes BN statistics,
// which is the point of the warmup). Returns the loss value.
func entropyStep(m *ufld.Model, x *tensor.Tensor, mode nn.Mode, params []*nn.Param, opt nn.Optimizer, cfg Config, step int) float64 {
	nn.ZeroGrads(m.Params())
	logits := m.Forward(x, mode)
	var loss float64
	var grad *tensor.Tensor
	switch cfg.Loss {
	case Confidence:
		loss, grad = nn.ConfidenceLoss(logits)
	default:
		loss, grad = nn.EntropyLoss(logits)
	}
	if step < cfg.WarmupSteps {
		return loss
	}
	m.Backward(grad)
	if cfg.ClipNorm > 0 {
		nn.ClipGradNorm(params, cfg.ClipNorm)
	}
	opt.Step(params)
	return loss
}

// LDBNAdapt is the paper's method. Each Adapt call:
//
//  1. normalization statistics (µ, σ) of every BN layer are recomputed
//     from the unlabeled batch (nn.Adapt forward mode), refreshing the
//     running statistics used at inference, and
//  2. one backpropagation pass of the entropy loss updates only the BN
//     scale and shift parameters (γ, β).
type LDBNAdapt struct {
	model  *ufld.Model
	cfg    Config
	opt    nn.Optimizer
	params []*nn.Param
	steps  int
	// LastLoss is the unsupervised loss of the most recent step.
	LastLoss float64
}

// NewLDBNAdapt wires the method to a deployed model.
func NewLDBNAdapt(m *ufld.Model, cfg Config) *LDBNAdapt {
	return &LDBNAdapt{
		model:  m,
		cfg:    cfg,
		opt:    newOptimizer(cfg),
		params: m.BNParams(),
	}
}

// Name returns the paper's name for the method.
func (a *LDBNAdapt) Name() string { return "LD-BN-ADAPT" }

// Steps reports adaptation steps taken.
func (a *LDBNAdapt) Steps() int { return a.steps }

// AdaptedParamCount returns the number of scalars the method updates.
func (a *LDBNAdapt) AdaptedParamCount() int { return nn.ParamCount(a.params) }

// Adapt performs one LD-BN-ADAPT step on an unlabeled batch.
func (a *LDBNAdapt) Adapt(batch *tensor.Tensor) {
	a.LastLoss = entropyStep(a.model, batch, nn.Adapt, a.params, a.opt, a.cfg, a.steps)
	a.steps++
}

// LastStepLoss reports the most recent step's unsupervised loss. Every
// LD-BN-ADAPT step computes one (warmup forwards still run, to refresh
// the BN statistics), so it is valid as soon as one step has run.
func (a *LDBNAdapt) LastStepLoss() (float64, bool) { return a.LastLoss, a.steps > 0 }

// ConvAdapt is the paper's ablation: entropy adaptation of the
// convolution weights only (BN statistics stay at their source values).
type ConvAdapt struct {
	model    *ufld.Model
	cfg      Config
	opt      nn.Optimizer
	params   []*nn.Param
	steps    int
	lastLoss float64
	hasLoss  bool
}

// NewConvAdapt wires the ablation to a model.
func NewConvAdapt(m *ufld.Model, cfg Config) *ConvAdapt {
	return &ConvAdapt{model: m, cfg: cfg, opt: newOptimizer(cfg), params: m.ConvParams()}
}

// Name identifies the ablation.
func (a *ConvAdapt) Name() string { return "CONV-ADAPT" }

// Steps reports adaptation steps taken.
func (a *ConvAdapt) Steps() int { return a.steps }

// LastStepLoss reports the most recent step's loss (invalid during
// warmup, whose forwards are skipped).
func (a *ConvAdapt) LastStepLoss() (float64, bool) { return a.lastLoss, a.hasLoss }

// Adapt performs one entropy step on the conv weights. Warmup steps
// consume their batch without running the model at all: this ablation
// adapts in Eval mode, so — unlike LD-BN-ADAPT, whose warmup forwards
// refresh the BN statistics — a warmup forward here would compute
// nothing that is kept. Updates still begin only after WarmupSteps
// batches, keeping step counts comparable across methods.
func (a *ConvAdapt) Adapt(batch *tensor.Tensor) {
	if a.steps < a.cfg.WarmupSteps {
		a.steps++
		a.hasLoss = false
		return
	}
	a.lastLoss = entropyStep(a.model, batch, nn.Eval, a.params, a.opt, a.cfg, a.steps)
	a.hasLoss = true
	a.steps++
}

// FCAdapt is the paper's ablation: entropy adaptation of the
// fully-connected head only.
type FCAdapt struct {
	model    *ufld.Model
	cfg      Config
	opt      nn.Optimizer
	params   []*nn.Param
	steps    int
	lastLoss float64
	hasLoss  bool
}

// NewFCAdapt wires the ablation to a model.
func NewFCAdapt(m *ufld.Model, cfg Config) *FCAdapt {
	return &FCAdapt{model: m, cfg: cfg, opt: newOptimizer(cfg), params: m.FCParams()}
}

// Name identifies the ablation.
func (a *FCAdapt) Name() string { return "FC-ADAPT" }

// Steps reports adaptation steps taken.
func (a *FCAdapt) Steps() int { return a.steps }

// LastStepLoss reports the most recent step's loss (invalid during
// warmup, whose forwards are skipped).
func (a *FCAdapt) LastStepLoss() (float64, bool) { return a.lastLoss, a.hasLoss }

// Adapt performs one entropy step on the FC head. As with ConvAdapt,
// warmup steps skip the dead Eval-mode forward entirely: there are no
// BN statistics to refresh, so the forward's result would be discarded.
func (a *FCAdapt) Adapt(batch *tensor.Tensor) {
	if a.steps < a.cfg.WarmupSteps {
		a.steps++
		a.hasLoss = false
		return
	}
	a.lastLoss = entropyStep(a.model, batch, nn.Eval, a.params, a.opt, a.cfg, a.steps)
	a.hasLoss = true
	a.steps++
}

// NoAdapt is the "UFLD no adaptation" baseline of Fig. 2.
type NoAdapt struct{ steps int }

// NewNoAdapt returns the no-op baseline.
func NewNoAdapt() *NoAdapt { return &NoAdapt{} }

// Name identifies the baseline.
func (a *NoAdapt) Name() string { return "NoAdapt" }

// Steps reports 0-cost steps (counted for interface symmetry).
func (a *NoAdapt) Steps() int { return a.steps }

// Adapt does nothing.
func (a *NoAdapt) Adapt(*tensor.Tensor) { a.steps++ }

// statically assert the Method implementations.
var (
	_ Method = (*LDBNAdapt)(nil)
	_ Method = (*ConvAdapt)(nil)
	_ Method = (*FCAdapt)(nil)
	_ Method = (*NoAdapt)(nil)

	_ LossReporter = (*LDBNAdapt)(nil)
	_ LossReporter = (*ConvAdapt)(nil)
	_ LossReporter = (*FCAdapt)(nil)
)

// OnlineResult summarizes an online adaptation run over a target
// stream.
type OnlineResult struct {
	// MethodName records the method.
	MethodName string
	// BatchSize is the adaptation batch size (paper: 1, 2 or 4).
	BatchSize int
	// OnlineAccuracy is the accuracy of the predictions made on each
	// frame *before* the adaptation step that consumed it (the
	// paper's deployment order: inference, then adaptation).
	OnlineAccuracy float64
	// FinalAccuracy is the post-run accuracy on a held-out labeled
	// target validation set (the Fig. 2 number).
	FinalAccuracy float64
	// MeanLoss is the mean unsupervised loss over adaptation steps.
	MeanLoss float64
	// Frames is the number of stream frames processed.
	Frames int
}

// RunOnline drives a method over the unlabeled target stream in
// batches of size bs — inference first, adaptation second, updated
// model used for the next batch — then evaluates on the labeled
// validation split.
func RunOnline(m *ufld.Model, method Method, stream *ufld.Dataset, val *ufld.Dataset, bs int) OnlineResult {
	if bs < 1 {
		panic(fmt.Sprintf("adapt: batch size %d", bs))
	}
	res := OnlineResult{MethodName: method.Name(), BatchSize: bs}
	n := stream.Len()
	pointsTotal := 0
	accW := 0.0
	lossSum, lossSteps := 0.0, 0
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, _ := ufld.Batch(m.Cfg, stream.Samples, idx)
		// Phase 1: inference with the current model.
		logits := m.Forward(x, nn.Eval)
		preds := ufld.Decode(m.Cfg, logits, len(idx))
		cnt := 0
		for _, si := range idx {
			for _, c := range stream.Samples[si].Cells {
				if c != ufld.Absent {
					cnt++
				}
			}
		}
		accW += ufld.Accuracy(m.Cfg, preds, stream.Samples, idx) * float64(cnt)
		pointsTotal += cnt
		// Phase 2: adaptation on the same unlabeled batch.
		method.Adapt(x)
		if lr, ok := method.(LossReporter); ok {
			if loss, valid := lr.LastStepLoss(); valid {
				lossSum += loss
				lossSteps++
			}
		}
		res.Frames += len(idx)
	}
	if pointsTotal > 0 {
		res.OnlineAccuracy = accW / float64(pointsTotal)
	}
	if val != nil {
		res.FinalAccuracy = ufld.Evaluate(m, val, 8).Accuracy
	}
	if lossSteps > 0 {
		res.MeanLoss = lossSum / float64(lossSteps)
	}
	return res
}
