package shard

import (
	"fmt"
	"sort"
)

// Admission control. The legacy contract attaches every stream to a
// board unconditionally at placement time, which at fleet scale means
// a camera coming online during a burst lands on an already-saturated
// board and drags its whole batch below the deadline. With a gate
// configured, streams whose first frame lies beyond the first epoch
// boundary are withheld from initial placement and pass a
// forecast-headroom check at each boundary instead: admit when a board
// fits the stream under the utilization ceiling, otherwise queue for a
// later boundary (losing the frames that pass meanwhile) or shed the
// stream outright, per the policy. Admission looks one epoch ahead —
// a stream is considered at the last boundary before its first frame —
// so a fleet with headroom admits losslessly.

// Admission configures the gate.
type Admission struct {
	// MaxUtil is the forecast-utilization ceiling a board may be
	// filled to by admission, including its forecast load and the
	// arrivals already admitted this boundary (default: Config.MaxUtil,
	// the migration headroom gate).
	MaxUtil float64
	// Queue caps how many arrivals may wait for headroom; one more and
	// the newest waiter is shed. 0 means an unbounded queue.
	Queue int
	// Shed rejects an arrival immediately when no board has headroom
	// instead of queuing it.
	Shed bool
}

// AdmissionRecord is one gate outcome.
type AdmissionRecord struct {
	// Epoch is the boundary the decision fired at; Stream the fleet
	// stream id.
	Epoch, Stream int
	// Board is the admitting board id, -1 when the stream was rejected.
	Board int
	// Waited counts boundaries the stream spent queued for headroom
	// after it first became eligible.
	Waited int
	// DroppedFrames counts the stream's frames lost at the gate: frames
	// that passed while it waited, or its whole schedule on rejection.
	DroppedFrames int
	// Rejected marks a shed stream (queue overflow, shed policy, or a
	// schedule that expired while waiting).
	Rejected bool
}

// pendingStream is one arrival waiting at the gate.
type pendingStream struct {
	gid     int
	arrives float64 // first frame arrival, virtual ms
	since   int     // epoch it became eligible, -1 until then
}

// splitAdmission partitions the fleet for initial placement and
// returns the stream ids to place up front. Without a gate that is
// every stream; with one, later arrivals join the admission queue
// (ordered by stream id — deterministic, and FIFO per boundary since
// eligibility is by arrival time).
func (r *runCtx) splitAdmission() []int {
	upfront := make([]int, 0, len(r.sources))
	for gi, src := range r.sources {
		if r.f.cfg.Admission != nil && len(src.Frames) > 0 {
			if first := float64(src.Frames[0].Arrival) / 1e6; first >= r.f.cfg.EpochMs {
				r.pending = append(r.pending, pendingStream{gid: gi, arrives: first, since: -1})
				continue
			}
		}
		upfront = append(upfront, gi)
	}
	return upfront
}

// admitPass runs the gate at one epoch boundary (after failover and
// evacuation, before the group placers, so admitted load is part of
// the picture the placers and the checkpoint pass see). end is the
// boundary's virtual clock; a stream is eligible once its first frame
// falls inside the next epoch.
func (r *runCtx) admitPass(epoch int, end float64) {
	adm := r.f.cfg.Admission
	if adm == nil || len(r.pending) == 0 {
		return
	}
	f := r.f
	groups := r.groupView()
	// Load admitted this boundary, per board: the gate packs against
	// it so a burst of arrivals cannot all squeeze under the same
	// stale headroom reading.
	planned := make(map[*board]float64)
	var still []pendingStream
	for _, p := range r.pending {
		if p.arrives >= end+f.cfg.EpochMs {
			still = append(still, p) // camera not online yet
			continue
		}
		if p.since < 0 {
			p.since = epoch
		}
		src := futureSource(r.sources[p.gid], end)
		if src == nil {
			// Every frame passed while the stream waited: nothing left
			// to admit.
			r.admitReject(epoch, p)
			continue
		}
		// Provision by the camera's nominal rate — the same prior cold
		// recovery uses, since an unattached stream has no forecaster.
		load := src.FPS * f.cfg.EpochMs / 1000
		util := load * f.topFrameMs() / (f.cfg.EpochMs * float64(f.workers))
		dst := r.admitTarget(groups, planned, util, adm.MaxUtil)
		if dst == nil {
			if adm.Shed || (adm.Queue > 0 && len(still) >= adm.Queue) {
				r.admitReject(epoch, p)
			} else {
				still = append(still, p)
			}
			continue
		}
		nl := dst.attach(r.eng.NewHandoff(src))
		dst.local[p.gid] = nl
		dst.globals = append(dst.globals, p.gid)
		r.home[p.gid] = dst.id
		dropped := len(r.sources[p.gid].Frames) - len(src.Frames)
		r.admitDropped += dropped
		r.admissions = append(r.admissions, AdmissionRecord{
			Epoch: epoch, Stream: p.gid, Board: dst.id,
			Waited: epoch - p.since, DroppedFrames: dropped,
		})
		f.rec.Instant("admit", f.nowMs,
			fmt.Sprintf("stream=%d board=%d waited=%d dropped=%d", p.gid, dst.id, epoch-p.since, dropped))
		f.met.admitted.Add(1)
		f.met.admitDroppedFrames.Add(int64(dropped))
		// Hold the consolidation clock so the admitted stream is not
		// immediately re-packed while its telemetry is still settling.
		r.lastCon[p.gid] = epoch
		planned[dst] += util
		f.energize(dst, load)
	}
	r.pending = still
}

// admitReject sheds a waiting stream: its whole schedule is lost at
// the gate.
func (r *runCtx) admitReject(epoch int, p pendingStream) {
	r.admitDropped += len(r.sources[p.gid].Frames)
	r.admissions = append(r.admissions, AdmissionRecord{
		Epoch: epoch, Stream: p.gid, Board: -1,
		Waited: epoch - p.since, DroppedFrames: len(r.sources[p.gid].Frames), Rejected: true,
	})
	r.f.rec.Instant("admit-shed", r.f.nowMs,
		fmt.Sprintf("stream=%d waited=%d dropped=%d", p.gid, epoch-p.since, len(r.sources[p.gid].Frames)))
	r.f.met.admitRejected.Add(1)
	r.f.met.admitDroppedFrames.Add(int64(len(r.sources[p.gid].Frames)))
}

// admitTarget scores the gate hierarchically: placement groups in
// ascending mean forecast-utilization order, then the least-loaded
// board inside the group that still fits the stream under the ceiling
// — the coolest group's coolest board, found without a fleet-wide
// stream scan.
func (r *runCtx) admitTarget(groups [][]*board, planned map[*board]float64, util, ceiling float64) *board {
	f := r.f
	score := func(b *board) float64 { return f.forecastUtil(b) + planned[b] }
	type gm struct {
		id   int
		mean float64
	}
	var order []gm
	for gi, grp := range groups {
		n, sum := 0, 0.0
		for _, b := range grp {
			if b.leaving {
				continue
			}
			n++
			sum += score(b)
		}
		if n > 0 {
			order = append(order, gm{id: gi, mean: sum / float64(n)})
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].mean < order[j].mean })
	for _, g := range order {
		var dst *board
		for _, b := range groups[g.id] {
			if b.leaving || score(b)+util > ceiling {
				continue
			}
			if dst == nil || score(b) < score(dst) {
				dst = b
			}
		}
		if dst != nil {
			return dst
		}
	}
	return nil
}
