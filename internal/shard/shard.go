package shard

import (
	"fmt"
	"sync"
	"time"

	"ldbnadapt/internal/govern"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/ufld"
)

// Config parameterizes the fleet coordinator.
type Config struct {
	// Boards is the number of boards in the fleet (default 1).
	Boards int
	// Board configures every board's serve engine; Workers is the
	// per-board replica count.
	Board serve.Config
	// Placement picks the initial stream→board assignment (default
	// LeastLoaded).
	Placement Placement
	// Governor names each board's controller — static, hysteresis or
	// oracle (internal/govern); each board gets its own instance riding
	// its own ladder. Empty pins every board at Board.Mode with no
	// controller, like serve.Run.
	Governor string
	// BudgetW caps every board's power ladder in watts (0 =
	// unconstrained).
	BudgetW int
	// EpochMs is the control-epoch length shared by all boards (default
	// 250): boards plan, execute and report in lockstep, and the
	// coordinator migrates at the shared boundaries.
	EpochMs float64
	// Migrate enables saturation-driven migration: when a board's epoch
	// ran at its top affordable rung and still missed the service
	// target, the coordinator moves its hottest stream (most arrivals
	// due next epoch) to the coolest board with headroom.
	Migrate bool
	// TargetHitRate is the per-epoch deadline-hit service target used
	// for saturation detection (default 0.95, matching the governors).
	TargetHitRate float64
	// MaxUtil is the destination headroom gate: a stream migrates only
	// onto a board whose last epoch ran below this utilization (default
	// 0.5).
	MaxUtil float64
	// Cooldown is how many epochs a migrated stream stays put before it
	// may move again (default 8): a board draining the backlog that made
	// it saturated reads as still-saturated for a few epochs, and
	// without inertia the same stream ping-pongs between boards.
	Cooldown int
	// MakeController overrides Governor with a custom per-board
	// controller factory (tests). Boards built this way are treated as
	// pinned at the ladder top for saturation detection.
	MakeController func(board int) serve.Controller
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Boards <= 0 {
		c.Boards = 1
	}
	if c.EpochMs <= 0 {
		c.EpochMs = 250
	}
	if c.TargetHitRate <= 0 {
		c.TargetHitRate = 0.95
	}
	if c.MaxUtil <= 0 {
		c.MaxUtil = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
	if c.Placement == nil {
		c.Placement = LeastLoaded{}
	}
	return c
}

// Migration records one stream move.
type Migration struct {
	// Epoch is the control epoch whose boundary triggered the move.
	Epoch int
	// Stream is the fleet-wide stream id.
	Stream int
	// From and To are board ids.
	From, To int
}

// BoardReport is one board's outcome within the fleet.
type BoardReport struct {
	// Board is the board id.
	Board int
	// Report is the board's full serve report; its Streams are indexed
	// by board-local id.
	Report serve.Report
	// Globals maps the board's local stream ids to fleet-wide stream
	// ids, in local order (streams that migrated in appear once more
	// here with a fresh local id).
	Globals []int
	// MigratedIn and MigratedOut count stream moves at this board.
	MigratedIn, MigratedOut int
}

// StreamSummary aggregates one fleet-wide stream across every board
// that served part of it.
type StreamSummary struct {
	// Stream is the fleet-wide stream id.
	Stream int
	// Frames is the stream's total served frames across boards.
	Frames int
	// MissRate is the deadline-miss fraction over those frames.
	MissRate float64
	// EnergyMJ is the stream's dynamic energy across boards.
	EnergyMJ float64
	// AdaptSteps counts adaptation steps across boards.
	AdaptSteps int
	// Boards is how many boards served at least one of its frames.
	Boards int
}

// Report aggregates a fleet run.
type Report struct {
	// Boards holds per-board outcomes.
	Boards []BoardReport
	// Streams holds per-fleet-stream outcomes indexed by stream id.
	Streams []StreamSummary
	// Migrations lists every stream move in epoch order.
	Migrations []Migration
	// Frames is the fleet's total served frame count.
	Frames int
	// HitRate is the fleet deadline-hit fraction over served frames.
	HitRate float64
	// FramesDropped and AdaptsSkipped total the fleet's shedding.
	FramesDropped, AdaptsSkipped int
	// BusyEnergyMJ, IdleEnergyMJ and EnergyMJ total the fleet's
	// dynamic, static and overall energy in millijoules.
	BusyEnergyMJ, IdleEnergyMJ, EnergyMJ float64
	// JPerFrame is fleet energy per served frame in joules.
	JPerFrame float64
	// VirtualSeconds is the fleet makespan: the latest board drain.
	VirtualSeconds float64
	// StrandedMs is idle worker-milliseconds while boards were powered
	// (Σ boards of Workers × on-time − busy time): capacity the
	// placement provisioned but load never used.
	StrandedMs float64
	// WallSeconds is the host wall-clock duration of the run.
	WallSeconds float64
}

// board is one governed engine plus its coordinator-side bookkeeping.
type board struct {
	id      int
	sess    *serve.Session
	ctl     serve.Controller
	globals []int       // local id → fleet stream id
	local   map[int]int // fleet stream id → current local id
	in, out int
	// satW is the watts of the rung this board counts as "pinned at
	// top": the ladder top for closed-loop governors, the pinned mode
	// for static deployments.
	satW int
}

// Fleet coordinates N governed boards serving one stream fleet.
type Fleet struct {
	cfg   Config
	model *ufld.Model
	topW  int
}

// New validates the configuration and builds a coordinator. Boards are
// identical engines over the shared-weight model; per-board state
// (sessions, governors) is created per Run.
func New(m *ufld.Model, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	ladder, err := govern.Ladder(cfg.BudgetW)
	if err != nil {
		return nil, err
	}
	if cfg.MakeController == nil && cfg.Governor != "" {
		if _, err := govern.ByName(cfg.Governor, cfg.BudgetW); err != nil {
			return nil, err
		}
	}
	return &Fleet{cfg: cfg, model: m, topW: ladder[len(ladder)-1].Watts}, nil
}

// controller builds board b's private controller instance.
func (f *Fleet) controller(b int) serve.Controller {
	if f.cfg.MakeController != nil {
		return f.cfg.MakeController(b)
	}
	if f.cfg.Governor == "" {
		return nil
	}
	ctl, err := govern.ByName(f.cfg.Governor, f.cfg.BudgetW)
	if err != nil {
		panic(err.Error()) // New validated
	}
	return ctl
}

// Run places the fleet onto the boards and serves it to completion:
// every board steps the same control epochs in lockstep (concurrently
// on the host), the coordinator migrates streams off saturated boards
// at the boundaries, then each board's governor actuates its next
// epoch.
func (f *Fleet) Run(sources []*stream.Source) Report {
	cfg := f.cfg
	start := time.Now()

	// One engine serves every board: boards are identical hardware, the
	// engine is immutable after construction (pricing tables, config),
	// and per-board mutable state lives in each board's Session. Its
	// per-frame cost also prices the placement forecast.
	eng := serve.New(f.model, cfg.Board)
	frameMs := eng.FrameLatencyMs(1)
	loads := StreamLoads(sources, frameMs)
	workers := eng.Config().Workers
	assign := cfg.Placement.Place(loads, cfg.Boards, workers)

	boards := make([]*board, cfg.Boards)
	for bi := range boards {
		b := &board{id: bi, ctl: f.controller(bi), local: make(map[int]int), satW: f.topW}
		var mine []*stream.Source
		for gi, a := range assign {
			if a != bi {
				continue
			}
			b.local[gi] = len(mine)
			b.globals = append(b.globals, gi)
			mine = append(mine, sources[gi])
		}
		b.sess = eng.NewSession(mine)
		if b.ctl != nil {
			cur := b.ctl.Start(eng.Config())
			b.sess.SetControls(cur)
			if cfg.Governor == "static" {
				b.satW = cur.Mode.Watts
			}
		} else {
			b.satW = eng.Config().Mode.Watts
		}
		boards[bi] = b
	}
	home := append([]int(nil), assign...) // fleet stream id → current board

	// Per-stream arrival stamps for hottest-stream selection.
	arrivals := make([][]float64, len(sources))
	for gi, src := range sources {
		arrivals[gi] = make([]float64, len(src.Frames))
		for i, fr := range src.Frames {
			arrivals[gi][i] = float64(fr.Arrival) / 1e6
		}
	}

	var migrations []Migration
	lastMove := make([]int, len(sources))
	for i := range lastMove {
		lastMove[i] = -cfg.Cooldown
	}
	stats := make([]serve.EpochStats, len(boards))
	for {
		done := true
		for _, b := range boards {
			if !b.sess.Done() {
				done = false
				break
			}
		}
		if done {
			break
		}
		end := boards[0].sess.Now() + cfg.EpochMs
		var wg sync.WaitGroup
		for _, b := range boards {
			wg.Add(1)
			go func(b *board) {
				defer wg.Done()
				stats[b.id] = b.sess.RunEpoch(end)
			}(b)
		}
		wg.Wait()
		if cfg.Migrate {
			migrations = f.migrate(boards, stats, home, lastMove, arrivals, end, migrations)
		}
		for _, b := range boards {
			// A drained board has nothing to govern (and an oracle would
			// sweep probes for nothing); its controller resumes at the
			// first boundary after a stream attaches.
			if b.ctl == nil || b.sess.Done() {
				continue
			}
			next := b.ctl.Decide(stats[b.id], b.sess.Controls(), func(c serve.Controls) serve.EpochStats {
				return b.sess.Probe(c, cfg.EpochMs)
			})
			b.sess.SetControls(next)
		}
	}

	return f.buildReport(boards, sources, migrations, workers, time.Since(start))
}

// saturated reports whether a board's epoch ran pinned at its top rung
// while missing the service target — the trigger the governor cannot
// resolve with watts, only placement can.
func (f *Fleet) saturated(b *board, es serve.EpochStats) bool {
	return es.Controls.Mode.Watts >= b.satW && es.DeadlineHitRate < f.cfg.TargetHitRate
}

// migrate moves the hottest stream off each saturated board onto the
// coolest board with headroom, carrying the stream's adaptation state
// through a serve.Handoff.
func (f *Fleet) migrate(boards []*board, stats []serve.EpochStats, home, lastMove []int,
	arrivals [][]float64, end float64, migrations []Migration) []Migration {
	// A destination takes at most one migrant per boundary: its epoch
	// stats are stale within the pass, and two saturated boards dumping
	// onto the same cool board would just move the hot spot.
	taken := make(map[*board]bool)
	for _, src := range boards {
		if !f.saturated(src, stats[src.id]) {
			continue
		}
		var dst *board
		for _, c := range boards {
			if c == src || taken[c] || stats[c.id].Utilization >= f.cfg.MaxUtil || f.saturated(c, stats[c.id]) {
				continue
			}
			if dst == nil || stats[c.id].Utilization < stats[dst.id].Utilization {
				dst = c
			}
		}
		if dst == nil {
			continue // nowhere cooler to go: the whole fleet is hot
		}
		gid := f.hottest(src, home, lastMove, arrivals, stats[src.id].Epoch, end)
		if gid < 0 {
			continue
		}
		h := src.sess.DetachStream(src.local[gid])
		if h == nil {
			continue
		}
		nl := dst.sess.AttachStream(h)
		delete(src.local, gid)
		dst.local[gid] = nl
		dst.globals = append(dst.globals, gid)
		home[gid] = dst.id
		src.out++
		dst.in++
		taken[dst] = true
		lastMove[gid] = stats[src.id].Epoch
		migrations = append(migrations, Migration{
			Epoch: stats[src.id].Epoch, Stream: gid, From: src.id, To: dst.id,
		})
	}
	return migrations
}

// hottest picks the stream homed on board src with the most arrivals
// due in the next epoch window [end, end+EpochMs) — the load whose
// removal relieves the board soonest. Streams still in their
// migration cooldown are skipped. Returns -1 when no eligible stream
// has upcoming arrivals (a saturated board draining backlog sheds
// nothing by migration).
func (f *Fleet) hottest(src *board, home, lastMove []int, arrivals [][]float64, epoch int, end float64) int {
	best, bestDue := -1, 0
	for gid, b := range home {
		if b != src.id || epoch-lastMove[gid] < f.cfg.Cooldown {
			continue
		}
		due := 0
		for _, a := range arrivals[gid] {
			if a >= end && a < end+f.cfg.EpochMs {
				due++
			}
		}
		if due > bestDue {
			best, bestDue = gid, due
		}
	}
	return best
}

// buildReport finalizes every board and aggregates the fleet view.
func (f *Fleet) buildReport(boards []*board, sources []*stream.Source,
	migrations []Migration, workers int, wall time.Duration) Report {
	rep := Report{
		Streams:     make([]StreamSummary, len(sources)),
		Migrations:  migrations,
		WallSeconds: wall.Seconds(),
	}
	for gi := range rep.Streams {
		rep.Streams[gi].Stream = gi
	}
	misses := 0.0
	for _, b := range boards {
		br := BoardReport{
			Board: b.id, Report: b.sess.Finish(),
			Globals:    b.globals,
			MigratedIn: b.in, MigratedOut: b.out,
		}
		rep.Boards = append(rep.Boards, br)
		rep.Frames += br.Report.Frames
		rep.FramesDropped += br.Report.FramesDropped
		rep.AdaptsSkipped += br.Report.AdaptsSkipped
		rep.BusyEnergyMJ += br.Report.BusyEnergyMJ
		rep.IdleEnergyMJ += br.Report.IdleEnergyMJ
		misses += br.Report.MissRate * float64(br.Report.Frames)
		if br.Report.VirtualSeconds > rep.VirtualSeconds {
			rep.VirtualSeconds = br.Report.VirtualSeconds
		}
		onMs, busyMs := 0.0, 0.0
		for _, es := range br.Report.Epochs {
			onMs += es.EndMs - es.StartMs
			busyMs += es.BusyMs
		}
		rep.StrandedMs += onMs*float64(workers) - busyMs
		// A stream that migrates to the same board twice holds two local
		// ids there; count distinct boards, not attachments.
		counted := make(map[int]bool)
		for li, sr := range br.Report.Streams {
			if li >= len(br.Globals) {
				panic(fmt.Sprintf("shard: board %d local stream %d has no fleet id", b.id, li))
			}
			ss := &rep.Streams[br.Globals[li]]
			ss.Frames += sr.Frames
			ss.EnergyMJ += sr.EnergyMJ
			ss.AdaptSteps += sr.AdaptSteps
			ss.MissRate += sr.MissRate * float64(sr.Frames)
			if sr.Frames > 0 && !counted[br.Globals[li]] {
				counted[br.Globals[li]] = true
				ss.Boards++
			}
		}
	}
	for gi := range rep.Streams {
		if rep.Streams[gi].Frames > 0 {
			rep.Streams[gi].MissRate /= float64(rep.Streams[gi].Frames)
		}
	}
	rep.EnergyMJ = rep.BusyEnergyMJ + rep.IdleEnergyMJ
	if rep.Frames > 0 {
		rep.HitRate = 1 - misses/float64(rep.Frames)
		rep.JPerFrame = rep.EnergyMJ / 1e3 / float64(rep.Frames)
	}
	return rep
}
