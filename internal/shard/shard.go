package shard

import (
	"fmt"
	"time"

	"ldbnadapt/internal/govern"
	"ldbnadapt/internal/obs"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/ufld"
)

// Config parameterizes the fleet coordinator.
type Config struct {
	// Boards is the number of boards in the fleet (default 1).
	Boards int
	// Board configures every board's serve engine; Workers is the
	// per-board replica count.
	Board serve.Config
	// Placement picks the initial stream→board assignment (default
	// LeastLoaded).
	Placement Placement
	// Governor names each board's controller — static, hysteresis or
	// oracle (internal/govern); each board gets its own instance riding
	// its own ladder. Empty pins every board at Board.Mode with no
	// controller, like serve.Run.
	Governor string
	// BudgetW caps every board's power ladder in watts (0 =
	// unconstrained).
	BudgetW int
	// EpochMs is the control-epoch length shared by all boards (default
	// 250): boards plan, execute and report in lockstep, and the
	// coordinator migrates at the shared boundaries.
	EpochMs float64
	// Migrate enables saturation-driven migration: when a board's epoch
	// ran at its top affordable rung and still missed the service
	// target, the coordinator moves its hottest stream (highest
	// forecast arrivals for the next epoch) to the coolest board with
	// headroom.
	Migrate bool
	// Consolidate enables the reverse path — lull consolidation: when
	// the fleet's forecast load fits on fewer boards with headroom, the
	// coordinator drains the coldest occupied board, migrating its
	// streams (coldest-first) onto the boards with the most forecast
	// headroom. A drained board sleeps and charges no rail draw until
	// saturation migration reopens it.
	Consolidate bool
	// ConsolidateUtil is the forecast-utilization ceiling a board may
	// be packed to during consolidation (default 0.5, fraction of its
	// worker capacity): low enough that a consolidated board rides a
	// mild burst without immediately saturating.
	ConsolidateUtil float64
	// TargetHitRate is the per-epoch deadline-hit service target used
	// for saturation detection (default 0.95, matching the governors).
	TargetHitRate float64
	// MaxUtil is the destination headroom gate: a stream migrates only
	// onto a board whose last epoch ran below this utilization (default
	// 0.5).
	MaxUtil float64
	// Cooldown is how many epochs a migrated stream stays put before it
	// may move again (default 8): a board draining the backlog that made
	// it saturated reads as still-saturated for a few epochs, and
	// without inertia the same stream ping-pongs between boards.
	Cooldown int
	// GroupSize partitions boards into placement groups of this size
	// (default 16). Saturation migration, lull consolidation and
	// failover re-admission score O(group) inside each group's placer;
	// a top-level fleet placer rebalances streams across groups on
	// aggregated forecast load. Fleets of at most GroupSize boards form
	// a single group and reproduce the flat coordinator's decisions
	// exactly.
	GroupSize int
	// RebalanceGap is the minimum spread between the hottest and
	// coolest group's mean forecast utilization before the fleet placer
	// moves a stream across groups (default 0.25).
	RebalanceGap float64
	// Admission gates streams that come online after the run starts
	// (first frame beyond the first epoch boundary): instead of being
	// placed up front, they wait for a board with forecast headroom,
	// queuing or shedding per the policy. Nil keeps the legacy
	// contract — every stream placed unconditionally at start.
	Admission *Admission
	// Lockstep steps the boards serially through their actors — one
	// directive outstanding at a time — instead of concurrently. It is
	// the reference execution the concurrent runtime is pinned against
	// (TestConcurrentMatchesLockstep), not a production mode.
	Lockstep bool
	// MakeController overrides Governor with a custom per-board
	// controller factory (tests). Boards built this way are treated as
	// pinned at the ladder top for saturation detection.
	MakeController func(board int) serve.Controller
	// CheckpointEvery writes every homed stream's adaptation state into
	// Checkpoints every N fleet epochs (0 disables checkpointing;
	// defaults to 1 when a failure Plan is set). The cadence bounds the
	// BN-state staleness a recovered stream resumes with.
	CheckpointEvery int
	// Checkpoints is the durable store failover recovery reads stream
	// state back from (default: a fresh in-memory store whenever
	// checkpointing is enabled).
	Checkpoints serve.CheckpointStore
	// Plan injects membership events — board kills, graceful drains and
	// cold joins — at epoch boundaries: the seeded chaos hook.
	Plan *FailurePlan
	// Trace collects the run's deterministic event-time trace
	// (internal/obs): frame lifecycles and batch/adapt/epoch spans per
	// board, plus the coordinator's control-plane instants (epochs,
	// migrations, kills/drains/joins, admissions, checkpoints). Nil
	// disables tracing; the hot path then pays pointer tests only.
	// The merged trace is identical in Lockstep and concurrent mode.
	Trace *obs.Trace
	// Metrics is the fleet metrics registry (internal/obs): shared
	// serve-layer counters/histograms plus fleet counters and per-board
	// forecast-utilization gauges. Nil disables metrics.
	Metrics *obs.Registry
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Boards <= 0 {
		c.Boards = 1
	}
	if c.EpochMs <= 0 {
		c.EpochMs = 250
	}
	if c.TargetHitRate <= 0 {
		c.TargetHitRate = 0.95
	}
	if c.MaxUtil <= 0 {
		c.MaxUtil = 0.5
	}
	if c.ConsolidateUtil <= 0 {
		c.ConsolidateUtil = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
	if c.Placement == nil {
		c.Placement = LeastLoaded{}
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 16
	}
	if c.RebalanceGap <= 0 {
		c.RebalanceGap = 0.25
	}
	if c.Admission != nil {
		// Copy before defaulting so the caller's struct stays untouched.
		a := *c.Admission
		if a.MaxUtil <= 0 {
			a.MaxUtil = c.MaxUtil
		}
		c.Admission = &a
	}
	if c.Plan != nil && len(c.Plan.Events) > 0 && c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.CheckpointEvery > 0 && c.Checkpoints == nil {
		c.Checkpoints = serve.NewMemCheckpoints()
	}
	return c
}

// Migration reasons.
const (
	// Saturate marks a move off a board pinned at its top rung while
	// missing the service target.
	Saturate = "saturate"
	// Consolidate marks a lull-consolidation move onto a board with
	// forecast headroom, part of draining the source board.
	Consolidate = "consolidate"
	// Failover marks a re-admission of a dead board's stream onto a
	// survivor, resumed from its last durable checkpoint (or cold when
	// none was readable).
	Failover = "failover"
	// Evacuate marks a move off a board gracefully leaving the fleet (a
	// Drain event): all state travels live, nothing is lost.
	Evacuate = "evacuate"
	// Rebalance marks a cross-group move by the top-level fleet placer:
	// the hottest group's mean forecast load cleared the saturation
	// ceiling while another group sat cold, a spread no per-group
	// placer can see.
	Rebalance = "rebalance"
)

// Migration records one stream move.
type Migration struct {
	// Epoch is the control epoch whose boundary triggered the move.
	Epoch int
	// Stream is the fleet-wide stream id.
	Stream int
	// From and To are board ids.
	From, To int
	// Reason is Saturate, Consolidate, Failover or Evacuate.
	Reason string
	// Drained marks the final move of a consolidation or evacuation
	// that emptied the source board: every stream it still homed either
	// moved or had no future frames, so the board sleeps once its
	// in-flight work drains.
	Drained bool
}

// BoardReport is one board's outcome within the fleet.
type BoardReport struct {
	// Board is the board id; Group is the placement group it belonged
	// to.
	Board, Group int
	// Report is the board's full serve report; its Streams are indexed
	// by board-local id.
	Report serve.Report
	// Globals maps the board's local stream ids to fleet-wide stream
	// ids, in local order (streams that migrated in appear once more
	// here with a fresh local id).
	Globals []int
	// MigratedIn and MigratedOut count stream moves at this board.
	MigratedIn, MigratedOut int
	// JoinEpoch is the fleet epoch this board incarnation joined at (0
	// for founding boards). LeaveEpoch is the epoch it was killed or
	// retired after draining, -1 if it was still in the fleet at run
	// end. A rejoin after failure is a new incarnation with a new id,
	// so every id names exactly one lifetime.
	JoinEpoch, LeaveEpoch int
}

// StreamSummary aggregates one fleet-wide stream across every board
// that served part of it.
type StreamSummary struct {
	// Stream is the fleet-wide stream id.
	Stream int
	// Frames is the stream's total served frames across boards.
	Frames int
	// MissRate is the deadline-miss fraction over those frames.
	MissRate float64
	// EnergyMJ is the stream's dynamic energy across boards.
	EnergyMJ float64
	// AdaptSteps counts adaptation steps across boards.
	AdaptSteps int
	// Boards is how many boards served at least one of its frames.
	Boards int
}

// Report aggregates a fleet run.
type Report struct {
	// Boards holds per-board outcomes.
	Boards []BoardReport
	// Streams holds per-fleet-stream outcomes indexed by stream id.
	Streams []StreamSummary
	// Migrations lists every stream move in epoch order.
	Migrations []Migration
	// Events lists the membership events that fired (kills, drains,
	// joins) with their recovery outcomes, in epoch order.
	Events []EventRecord
	// LostFrames totals frames that had arrived at killed boards but
	// were neither served nor shed when the board died — the queue the
	// failure destroyed. (Frames not yet delivered at the kill re-home
	// with their stream and are not lost.)
	LostFrames int
	// Checkpoints counts successful stream-checkpoint writes;
	// CheckpointErrors counts failed writes, unreadable reads and
	// undecodable checkpoints (each of which forces a cold recovery).
	Checkpoints, CheckpointErrors int
	// Frames is the fleet's total served frame count.
	Frames int
	// HitRate is the fleet deadline-hit fraction over served frames.
	HitRate float64
	// FramesDropped and AdaptsSkipped total the fleet's shedding.
	FramesDropped, AdaptsSkipped int
	// BusyEnergyMJ, IdleEnergyMJ and EnergyMJ total the fleet's
	// dynamic, static and overall energy in millijoules.
	BusyEnergyMJ, IdleEnergyMJ, EnergyMJ float64
	// JPerFrame is fleet energy per served frame in joules.
	JPerFrame float64
	// VirtualSeconds is the fleet makespan: the latest board drain.
	VirtualSeconds float64
	// StrandedMs is idle worker-milliseconds while boards were powered
	// (Σ boards of Workers × on-time − busy time): capacity the
	// placement provisioned but load never used.
	StrandedMs float64
	// WallSeconds is the host wall-clock duration of the run.
	WallSeconds float64
	// FleetEpochs counts the control-epoch boundaries the fleet
	// stepped; FleetEpochs / WallSeconds is the fleet step rate the
	// scale benchmark tracks.
	FleetEpochs int
	// CoordSeconds is host wall-clock the coordinator spent in boundary
	// work — membership, placement, admission, checkpoint store writes
	// — while the board actors idled at the barrier. CoordSeconds /
	// WallSeconds is the coordinator-overhead share; board stepping and
	// the parallel governor/checkpoint-encode barriers are excluded.
	CoordSeconds float64
	// Admissions lists the admission gate's outcomes in epoch order
	// (empty without Config.Admission).
	Admissions []AdmissionRecord
	// AdmitDropped totals frames lost at the admission gate: frames
	// that passed while a stream waited for headroom, plus the full
	// schedules of streams the gate rejected.
	AdmitDropped int
}

// board is one governed engine plus its coordinator-side bookkeeping.
// Boards live in a registry (the run's append-only []*board): a
// board's id is its registry index, stable for its lifetime and never
// reused — a recovered board rejoins as a new incarnation with a new
// id. Liveness is a flag, not removal, so nothing ever re-indexes.
type board struct {
	id      int
	sess    *serve.Session
	ctl     serve.Controller
	act     *boardActor
	group   int         // placement group (see Config.GroupSize)
	globals []int       // local id → fleet stream id
	local   map[int]int // fleet stream id → current local id
	in, out int
	// satW is the watts of the rung this board counts as "pinned at
	// top": the ladder top for closed-loop governors, the pinned mode
	// for static deployments.
	satW int
	// stats is the board's last epoch telemetry, written only by the
	// coordinator as it collects the actor's step reply at the barrier
	// — there is no dense-id fleet slice to index out of range when
	// membership changes mid-run.
	stats serve.EpochStats
	// alive is false once the board is killed or retired; leaving marks
	// a graceful drain in progress (evacuated, still draining its
	// queue, excluded from placement).
	alive, leaving bool
	// joinEpoch and leaveEpoch bound the incarnation's lifetime in
	// fleet epochs (leaveEpoch -1 while in the fleet).
	joinEpoch, leaveEpoch int
	// rec is the board's trace recorder (nil when tracing is off). It
	// is single-writer: after openBoard hands the session to the actor,
	// only the actor's goroutine emits into it, and the coordinator
	// reads it only after the actors stop.
	rec *obs.Recorder
	// futil publishes the board's forecast utilization each boundary
	// (nil when metrics are off).
	futil *obs.Gauge
}

// Fleet coordinates N governed boards serving one stream fleet.
type Fleet struct {
	cfg    Config
	model  *ufld.Model
	topW   int
	topEff float64
	ladder []orin.PowerMode
	// frameMs and workers are run-scoped pricing context (set by Run):
	// the zero-queue per-frame cost at the configured mode, and the
	// per-board worker count — the currency placement seeds, migration
	// headroom gates and consolidation packing all share. refEff is the
	// configured mode's EffGFLOPS, the rung frameMs was priced at.
	frameMs float64
	workers int
	refEff  float64
	// rec is the coordinator's trace recorder (control-plane instants;
	// nil when tracing is off), met the fleet-level instrument bundle,
	// and nowMs the current boundary's fleet clock — run-scoped like
	// frameMs/workers, written only by the coordinator.
	rec   *obs.Recorder
	met   fleetMetrics
	nowMs float64
}

// fleetMetrics bundles the coordinator's instruments. The zero value
// (all-nil, from a nil registry) is fully no-op.
type fleetMetrics struct {
	migrations, lostFrames        *obs.Counter
	admitted, admitRejected       *obs.Counter
	admitDroppedFrames            *obs.Counter
	checkpoints, checkpointErrors *obs.Counter
	epochs, coordSeconds, wallSec *obs.Gauge
}

func newFleetMetrics(reg *obs.Registry) fleetMetrics {
	return fleetMetrics{
		migrations:         reg.Counter("fleet.migrations"),
		lostFrames:         reg.Counter("fleet.lost_frames"),
		admitted:           reg.Counter("fleet.admitted"),
		admitRejected:      reg.Counter("fleet.admit_rejected"),
		admitDroppedFrames: reg.Counter("fleet.admit_dropped_frames"),
		checkpoints:        reg.Counter("fleet.checkpoints"),
		checkpointErrors:   reg.Counter("fleet.checkpoint_errors"),
		epochs:             reg.Gauge("fleet.epochs"),
		coordSeconds:       reg.Gauge("fleet.coord_seconds"),
		wallSec:            reg.Gauge("fleet.wall_seconds"),
	}
}

// New validates the configuration and builds a coordinator. Boards are
// identical engines over the shared-weight model; per-board state
// (sessions, governors) is created per Run.
func New(m *ufld.Model, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Consolidate && !cfg.Migrate {
		// A drained board can only reopen through saturation migration;
		// consolidation without it would put rails to sleep with no way
		// to wake them when the load returns.
		return nil, fmt.Errorf("shard: Consolidate requires Migrate (drained boards reopen only by migration)")
	}
	ladder, err := govern.Ladder(cfg.BudgetW)
	if err != nil {
		return nil, err
	}
	if cfg.MakeController == nil && cfg.Governor != "" {
		if _, err := govern.ByName(cfg.Governor, cfg.BudgetW); err != nil {
			return nil, err
		}
	}
	top := ladder[len(ladder)-1]
	return &Fleet{cfg: cfg, model: m, topW: top.Watts, topEff: top.EffGFLOPS, ladder: ladder}, nil
}

// controller builds board b's private controller instance.
func (f *Fleet) controller(b int) serve.Controller {
	if f.cfg.MakeController != nil {
		return f.cfg.MakeController(b)
	}
	if f.cfg.Governor == "" {
		return nil
	}
	ctl, err := govern.ByName(f.cfg.Governor, f.cfg.BudgetW)
	if err != nil {
		panic(err.Error()) // New validated
	}
	return ctl
}

// openBoard builds one board incarnation around a fresh session over
// the given streams, with its private controller started, and hands
// the session to a new long-lived board actor. The setup touches the
// session directly — the actor does not exist yet, so the coordinator
// still owns it.
func (f *Fleet) openBoard(eng *serve.Engine, id, joinEpoch int, mine []*stream.Source) *board {
	b := &board{
		id: id, ctl: f.controller(id), local: make(map[int]int), satW: f.topW,
		alive: true, joinEpoch: joinEpoch, leaveEpoch: -1,
	}
	b.sess = eng.NewSession(mine)
	if b.ctl != nil {
		cur := b.ctl.Start(eng.Config())
		b.sess.SetControls(cur)
		if f.cfg.Governor == "static" {
			b.satW = cur.Mode.Watts
		}
	} else {
		b.satW = eng.Config().Mode.Watts
	}
	// Observability wiring must precede the actor handoff: the actor's
	// goroutine is the recorder's single writer once it owns the
	// session. The stream mapping closes over b.globals, which the
	// coordinator only mutates at barriers while the actor is
	// quiescent — the same happens-before contract the session has.
	b.rec = f.cfg.Trace.Recorder(id, func(li int) int {
		if li >= 0 && li < len(b.globals) {
			return b.globals[li]
		}
		return -1
	})
	b.sess.Observe(b.rec, obs.NewBoardMetrics(f.cfg.Metrics))
	b.futil = f.cfg.Metrics.Gauge(fmt.Sprintf("board%03d.forecast_util", id))
	b.act = newBoardActor(b.sess, b.ctl, b.rec)
	return b
}

// live filters the registry down to the boards currently in the fleet:
// alive incarnations, including leaving boards still draining.
func live(boards []*board) []*board {
	out := make([]*board, 0, len(boards))
	for _, b := range boards {
		if b.alive {
			out = append(out, b)
		}
	}
	return out
}

// Run places the fleet onto the boards and serves it to completion.
// Every board's session is owned by a long-lived actor goroutine; the
// coordinator drives them through shared control epochs with an
// explicit barrier protocol (see actor.go): step barrier, then
// board-local governor actuation, then the coordinator's boundary
// work — membership, failover, admission, the per-group placers and
// the top-level rebalancer — then the checkpoint pass. Every placement
// decision runs single-threaded at the boundary while the actors are
// quiescent, so the concurrent runtime reproduces the lockstep
// coordinator's Report bit for bit (Config.Lockstep is the pinned
// reference).
func (f *Fleet) Run(sources []*stream.Source) Report {
	cfg := f.cfg
	start := time.Now()

	// One engine serves every board: boards are identical hardware, the
	// engine is immutable after construction (pricing tables, config),
	// and per-board mutable state lives in each board's Session. Its
	// per-frame cost also prices the placement forecast.
	eng := serve.New(f.model, cfg.Board)
	// The coordinator's recorder must exist before any board's: recorder
	// creation order is the trace merge's tie-break order, and fleet
	// instants win equal-timestamp ties against board events.
	f.rec = cfg.Trace.Recorder(-1, nil)
	f.met = newFleetMetrics(cfg.Metrics)
	f.nowMs = 0
	f.frameMs = eng.FrameLatencyMs(1)
	f.workers = eng.Config().Workers
	f.refEff = eng.Config().Mode.EffGFLOPS
	loads := ForecastLoads(sources, f.frameMs, cfg.EpochMs, eng.Config().Forecast)
	workers := f.workers

	// Two cooldown clocks: lastSat guards saturation migration against
	// ping-pong between hot boards; lastCon keeps consolidation from
	// re-packing a stream every boundary. They are separate so a stream
	// packed during a lull stays immediately rescuable when the lull
	// ends. peak is the per-stream decayed peak of observed epoch
	// arrivals — the consolidation insurance against square-wave bursts
	// no causal forecaster sees coming.
	r := &runCtx{
		f: f, eng: eng, sources: sources,
		home:    make([]int, len(sources)), // fleet stream id → current board
		lastSat: make([]int, len(sources)),
		lastCon: make([]int, len(sources)),
		peak:    make([]float64, len(sources)),
		store:   cfg.Checkpoints,
	}
	for i := range r.lastSat {
		r.lastSat[i] = -cfg.Cooldown
		r.lastCon[i] = -cfg.Cooldown
		r.home[i] = -1
	}
	// With an admission gate, streams that come online later than the
	// first boundary are withheld from initial placement and queue for
	// the gate instead; without one every stream is placed up front.
	upfront := r.splitAdmission()
	assign := cfg.Placement.Place(pickLoads(loads, upfront), cfg.Boards, workers)
	for i, gi := range upfront {
		r.home[gi] = assign[i]
	}
	for bi := 0; bi < cfg.Boards; bi++ {
		var mine []*stream.Source
		var globals []int
		for _, gi := range upfront {
			if r.home[gi] != bi {
				continue
			}
			globals = append(globals, gi)
			mine = append(mine, sources[gi])
		}
		b := f.openBoard(eng, bi, 0, mine)
		b.group = bi / cfg.GroupSize
		b.globals = globals
		for li, gi := range globals {
			b.local[gi] = li
		}
		r.boards = append(r.boards, b)
	}

	var coord time.Duration
	for epoch := 0; ; epoch++ {
		stepped := live(r.boards)
		if len(stepped) == 0 {
			break // every board dead: nothing left to serve with
		}
		done := len(r.pending) == 0
		if done {
			for _, b := range stepped {
				if !b.sess.Done() {
					done = false
					break
				}
			}
		}
		if done {
			break
		}
		// The fleet clock is the max session clock over live boards —
		// never a fixed board's — so the boundary cadence survives any
		// board's death, including board 0's.
		now := 0.0
		for _, b := range stepped {
			if t := b.sess.Now(); t > now {
				now = t
			}
		}
		end := now + cfg.EpochMs
		f.stepBarrier(stepped, end)
		r.epochs++
		f.nowMs = end
		f.rec.Instant("epoch", end, fmt.Sprintf("epoch=%d boards=%d", epoch, len(stepped)))
		if cfg.Metrics != nil {
			for _, b := range stepped {
				b.futil.Set(f.forecastUtil(b))
			}
		}
		t0 := time.Now()
		for _, b := range stepped {
			for li, gid := range b.globals {
				if r.home[gid] != b.id || b.local[gid] != li || li >= len(b.stats.StreamArrivals) {
					continue
				}
				if arr := float64(b.stats.StreamArrivals[li]); arr > peakDecay*r.peak[gid] {
					r.peak[gid] = arr
				} else {
					r.peak[gid] = peakDecay * r.peak[gid]
				}
			}
		}
		// Membership first: kills and drains change who may be
		// governed or placed onto at this boundary; joins add fresh
		// destinations. Orphan re-admission itself waits until after
		// the governors so energize is not overwritten.
		r.applyEvents(epoch, end)
		for _, b := range stepped {
			if b.alive && b.leaving && b.sess.Done() {
				// A drained leaver retires: rail off, out of the registry's
				// live view, report already final.
				b.alive, b.leaveEpoch = false, epoch
				b.retire()
			}
		}
		coord += time.Since(t0)
		// Governors first, placement second: each board's controller
		// actuates from its own telemetry — on its own actor, in
		// parallel — then the coordinator rewires streams, and may
		// raise (never lower) a migration destination's rung for the
		// load it just handed it (energize). In the reverse order the
		// controllers would overwrite that actuation before it ever
		// priced a dispatch. Boards that joined at this boundary have
		// no telemetry yet and sit the round out.
		f.decideBarrier(stepped)
		t0 = time.Now()
		r.recoverOrphans(epoch, end)
		r.evacuateLeavers(epoch)
		r.admitPass(epoch, end)
		f.runGroups(r, epoch)
		r.checkpointPass(epoch)
		coord += time.Since(t0)
	}
	for _, b := range r.boards {
		if b.act != nil {
			b.act.stop()
		}
	}

	return f.buildReport(r, workers, time.Since(start), coord)
}

// pickLoads selects the load-forecast entries for the given fleet
// stream ids, in order.
func pickLoads(loads []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, gi := range idx {
		out[i] = loads[gi]
	}
	return out
}

// topFrameMs reprices the shared per-frame cost from the configured
// mode to the fleet's top affordable rung — the capacity currency
// saturation detection and destination headroom compare against.
func (f *Fleet) topFrameMs() float64 {
	if f.refEff <= 0 || f.topEff <= 0 {
		return f.frameMs
	}
	return f.frameMs * f.refEff / f.topEff
}

// saturated reports whether a board needs load taken off it — a
// problem the governor cannot resolve with watts, only placement can.
// Two triggers: the reactive one (the epoch ran pinned at its top
// rung and still missed the service target) and the predictive one
// (the forecast demand — next-epoch arrivals plus the backlog already
// queued — exceeds the board's worker capacity even at top-rung
// pricing, so waiting for the governor to finish climbing would just
// let deadlines die in the queue).
func (f *Fleet) saturated(b *board) bool {
	es := b.stats
	if es.Controls.Mode.Watts >= b.satW && es.DeadlineHitRate < f.cfg.TargetHitRate {
		return true
	}
	demand := (es.ForecastArrived + float64(es.QueueDepth)) * f.topFrameMs() / (f.cfg.EpochMs * float64(f.workers))
	return es.QueueDepth > 0 && demand >= 1
}

// forecastUtil is a board's predicted next-epoch utilization at its
// top affordable rung: its streams' forecast arrivals priced at the
// shared per-frame cost over the epoch. The observed utilization —
// rescaled from the rung it was measured at to the top rung, because
// a board running hot at 15 W still has a ladder to climb — is taken
// as a floor: a board draining backlog is busier than its arrivals
// suggest.
func (f *Fleet) forecastUtil(b *board) float64 {
	es := b.stats
	u := es.ForecastArrived * f.topFrameMs() / (f.cfg.EpochMs * float64(f.workers))
	if es.Controls.Mode.EffGFLOPS > 0 && f.topEff > 0 {
		if obs := es.Utilization * es.Controls.Mode.EffGFLOPS / f.topEff; obs > u {
			u = obs
		}
	}
	return u
}

// streamForecast reads one homed stream's next-epoch arrival forecast
// from its board's last telemetry (zero when the epoch predates the
// stream's attach).
func streamForecast(b *board, gid int) float64 {
	li, ok := b.local[gid]
	if !ok || li >= len(b.stats.StreamForecasts) {
		return 0
	}
	return b.stats.StreamForecasts[li]
}

// energize raises a migration destination's power mode when its
// current rung cannot serve its post-attach forecast demand — a
// reopened board wakes at whatever rung it froze at (often the ladder
// floor), and waiting one epoch for its governor to notice the
// migrant costs exactly the deadlines the move was meant to save. The
// coordinator knows the incoming load, so it actuates the lowest
// affordable rung that fits; the board's own controller takes over at
// the next boundary, by then fed telemetry that includes the migrant.
// Static deployments are left alone — pinning the mode is their
// contract.
func (f *Fleet) energize(dst *board, extraFrames float64) {
	if dst.ctl == nil || f.cfg.Governor == "static" {
		return
	}
	es := dst.stats
	demand := es.ForecastArrived + float64(es.QueueDepth) + extraFrames
	utilAt := func(m orin.PowerMode) float64 {
		return demand * f.frameMs * f.refEff / m.EffGFLOPS / (f.cfg.EpochMs * float64(f.workers))
	}
	cur := dst.sess.Controls()
	if utilAt(cur.Mode) <= 0.7 {
		return
	}
	for _, m := range f.ladder {
		if m.Watts <= cur.Mode.Watts {
			continue
		}
		if utilAt(m) <= 0.7 || m.Watts == f.ladder[len(f.ladder)-1].Watts {
			cur.Mode = m
			dst.setControls(cur)
			return
		}
	}
}

// move hands stream gid from src to dst at an epoch boundary — a
// detach/attach request-reply pair on the two boards' buses, never a
// direct cross-board session call — and records the migration. Returns
// false when the stream has no future frames (nothing to migrate — it
// drains where it is).
func (f *Fleet) move(src, dst *board, gid int, home []int, epoch int,
	reason string, migrations []Migration) ([]Migration, bool) {
	h := src.detach(src.local[gid])
	if h == nil {
		return migrations, false
	}
	nl := dst.attach(h)
	delete(src.local, gid)
	dst.local[gid] = nl
	dst.globals = append(dst.globals, gid)
	home[gid] = dst.id
	src.out++
	dst.in++
	f.rec.Instant("migrate", f.nowMs,
		fmt.Sprintf("stream=%d from=%d to=%d reason=%s", gid, src.id, dst.id, reason))
	f.met.migrations.Add(1)
	return append(migrations, Migration{
		Epoch: epoch, Stream: gid, From: src.id, To: dst.id, Reason: reason,
	}), true
}

// migrate sheds streams off each saturated board in the group —
// hottest first, one per eligible destination — onto the group's
// boards with the most forecast headroom, carrying each stream's
// adaptation state (and forecaster) through a serve.Handoff. Both the
// source scan and the destination scoring are O(group): cross-group
// spreads are the top-level rebalancer's job. A destination takes at
// most one migrant per boundary: its epoch stats are stale within the
// pass, and several saturated boards dumping onto the same cool board
// would just move the hot spot. A single saturated board may shed
// several streams in one boundary (one per destination) — a board that
// inherited a packed lull fleet cannot wait an epoch per stream when
// the burst lands.
func (f *Fleet) migrate(grp []*board, home, lastSat []int, epoch int,
	migrations []Migration) []Migration {
	taken := make(map[*board]bool)
	for _, src := range grp {
		if !src.alive || src.leaving || !f.saturated(src) {
			continue
		}
		// Shed at least one stream (the board is missing its target
		// regardless of what the forecast claims), then keep shedding
		// until the remaining forecast load fits the same headroom gate
		// destinations are held to — or the group runs out of cool
		// boards.
		remaining := f.forecastUtil(src)
		for first := true; first || remaining >= f.cfg.MaxUtil; first = false {
			var dst *board
			for _, c := range grp {
				if c == src || !c.alive || c.leaving || taken[c] ||
					f.forecastUtil(c) >= f.cfg.MaxUtil || f.saturated(c) {
					continue
				}
				if dst == nil || f.forecastUtil(c) < f.forecastUtil(dst) {
					dst = c
				}
			}
			if dst == nil {
				break // nowhere cooler to go: the whole group is hot
			}
			gid := f.hottest(src, home, lastSat, epoch)
			if gid < 0 {
				break
			}
			shedFrames := streamForecast(src, gid)
			var ok bool
			migrations, ok = f.move(src, dst, gid, home, epoch, Saturate, migrations)
			if !ok {
				break
			}
			f.energize(dst, shedFrames)
			lastSat[gid] = epoch
			taken[dst] = true
			remaining -= shedFrames * f.topFrameMs() / (f.cfg.EpochMs * float64(f.workers))
		}
	}
	return migrations
}

// hottest picks the stream homed on board src with the highest
// forecast arrivals for the next epoch — the load whose removal the
// forecast says relieves the board soonest. Streams still in their
// saturation-migration cooldown are skipped; consolidation moves do
// not count against it, so a stream packed during a lull can be
// rescued the moment the lull ends. Returns -1 when no eligible
// stream forecasts upcoming arrivals (a saturated board draining
// backlog sheds nothing by migration).
func (f *Fleet) hottest(src *board, home, lastSat []int, epoch int) int {
	best, bestDue := -1, 0.0
	for li, gid := range src.globals {
		if home[gid] != src.id || src.local[gid] != li ||
			epoch-lastSat[gid] < f.cfg.Cooldown {
			continue
		}
		if due := streamForecast(src, gid); due > bestDue {
			best, bestDue = gid, due
		}
	}
	return best
}

// buildReport finalizes every board incarnation (every actor is
// stopped by now, so the coordinator owns the sessions again; Finish
// is idempotent, so killed and retired boards contribute their
// already-final reports) and aggregates the fleet view.
func (f *Fleet) buildReport(r *runCtx, workers int, wall, coord time.Duration) Report {
	rep := Report{
		Streams:          make([]StreamSummary, len(r.sources)),
		Migrations:       r.migrations,
		Events:           r.events,
		Checkpoints:      r.ckpts,
		CheckpointErrors: r.ckptErrs,
		WallSeconds:      wall.Seconds(),
		FleetEpochs:      r.epochs,
		CoordSeconds:     coord.Seconds(),
		Admissions:       r.admissions,
		AdmitDropped:     r.admitDropped,
	}
	for _, ev := range r.events {
		rep.LostFrames += ev.LostFrames
	}
	for gi := range rep.Streams {
		rep.Streams[gi].Stream = gi
	}
	misses := 0.0
	for _, b := range r.boards {
		br := BoardReport{
			Board: b.id, Group: b.group, Report: b.sess.Finish(),
			Globals:    b.globals,
			MigratedIn: b.in, MigratedOut: b.out,
			JoinEpoch: b.joinEpoch, LeaveEpoch: b.leaveEpoch,
		}
		rep.Boards = append(rep.Boards, br)
		rep.Frames += br.Report.Frames
		rep.FramesDropped += br.Report.FramesDropped
		rep.AdaptsSkipped += br.Report.AdaptsSkipped
		rep.BusyEnergyMJ += br.Report.BusyEnergyMJ
		rep.IdleEnergyMJ += br.Report.IdleEnergyMJ
		misses += br.Report.MissRate * float64(br.Report.Frames)
		if br.Report.VirtualSeconds > rep.VirtualSeconds {
			rep.VirtualSeconds = br.Report.VirtualSeconds
		}
		onMs, busyMs := 0.0, 0.0
		for _, es := range br.Report.Epochs {
			onMs += es.EndMs - es.StartMs
			busyMs += es.BusyMs
		}
		rep.StrandedMs += onMs*float64(workers) - busyMs
		// A stream that migrates to the same board twice holds two local
		// ids there; count distinct boards, not attachments.
		counted := make(map[int]bool)
		for li, sr := range br.Report.Streams {
			if li >= len(br.Globals) {
				panic(fmt.Sprintf("shard: board %d local stream %d has no fleet id", b.id, li))
			}
			ss := &rep.Streams[br.Globals[li]]
			ss.Frames += sr.Frames
			ss.EnergyMJ += sr.EnergyMJ
			ss.AdaptSteps += sr.AdaptSteps
			ss.MissRate += sr.MissRate * float64(sr.Frames)
			if sr.Frames > 0 && !counted[br.Globals[li]] {
				counted[br.Globals[li]] = true
				ss.Boards++
			}
		}
	}
	for gi := range rep.Streams {
		if rep.Streams[gi].Frames > 0 {
			rep.Streams[gi].MissRate /= float64(rep.Streams[gi].Frames)
		}
	}
	rep.EnergyMJ = rep.BusyEnergyMJ + rep.IdleEnergyMJ
	if rep.Frames > 0 {
		rep.HitRate = 1 - misses/float64(rep.Frames)
		rep.JPerFrame = rep.EnergyMJ / 1e3 / float64(rep.Frames)
	}
	// Wall-clock gauges are the one non-deterministic corner of the
	// registry; trace bytes stay pinned, the dump does not claim to be.
	f.met.epochs.Set(float64(rep.FleetEpochs))
	f.met.coordSeconds.Set(rep.CoordSeconds)
	f.met.wallSec.Set(rep.WallSeconds)
	return rep
}
