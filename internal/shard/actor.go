package shard

import (
	"bytes"

	"ldbnadapt/internal/obs"
	"ldbnadapt/internal/serve"
)

// Board actors. Each board's serve.Session is owned by one long-lived
// goroutine for the run's lifetime — spawned when the board joins the
// fleet, stopped when it is killed, retired or the run ends — instead
// of the per-epoch goroutine churn the lockstep coordinator used.
// Coordinator↔board traffic moves over a typed control bus: epoch
// telemetry up; controls, stream Handoffs, checkpoint and membership
// directives down. The protocol is an explicit epoch barrier:
//
//  1. step    — the coordinator broadcasts stepEpoch to every live
//               actor, then collects every reply. Boards execute their
//               epochs concurrently; the collection is the barrier.
//  2. decide  — decideCtl broadcast/collect: each board's governor
//               actuates from its own telemetry on its own actor
//               (board-local controller execution), in parallel.
//  3. place   — the coordinator runs membership, admission and the
//               group placers. Stream moves are detachStream/
//               attachStream request-reply pairs on the two boards'
//               buses; there are no direct cross-board Session calls.
//  4. persist — checkpointStreams broadcast/collect: boards snapshot
//               and encode their streams in parallel, the coordinator
//               writes the store serially.
//
// Between a directive's reply and the next directive an actor is
// parked on its bus, so the channel operations give the coordinator a
// happens-before edge over everything the actor did: reading the
// quiescent Session (Done, Now, Controls) directly at the barrier is
// race-free, and the race-detector suite pins it. Config.Lockstep
// degrades every broadcast/collect to send-and-await per board — the
// serial reference semantics the concurrent runtime is pinned against
// (TestConcurrentMatchesLockstep).

// directive is one message on a board's control bus.
type directive interface {
	apply(a *boardActor)
}

// boardActor owns one board incarnation's Session (and its governor)
// for the board's lifetime.
type boardActor struct {
	sess *serve.Session
	ctl  serve.Controller
	// rec is the board's trace recorder (nil when tracing is off);
	// governor-decision instants are emitted here, on the actor's own
	// goroutine, like every other event of the board's recorder.
	rec *obs.Recorder
	bus chan directive
	// Persistent reply channels (capacity 1): the coordinator keeps at
	// most one directive outstanding per board, so replies never block
	// the actor and no channel is allocated per message.
	stepc  chan serve.EpochStats
	ackc   chan struct{}
	handc  chan *serve.Handoff
	localc chan int
	ckptc  chan [][]byte
	repc   chan serve.Report
	exited chan struct{}
	// stopped is coordinator-side bookkeeping (the actor never reads
	// it): true once the bus is closed and the goroutine has exited.
	stopped bool
}

// newBoardActor starts the owning goroutine for a session whose setup
// (initial controls) is complete.
func newBoardActor(sess *serve.Session, ctl serve.Controller, rec *obs.Recorder) *boardActor {
	a := &boardActor{
		sess:   sess,
		ctl:    ctl,
		rec:    rec,
		bus:    make(chan directive),
		stepc:  make(chan serve.EpochStats, 1),
		ackc:   make(chan struct{}, 1),
		handc:  make(chan *serve.Handoff, 1),
		localc: make(chan int, 1),
		ckptc:  make(chan [][]byte, 1),
		repc:   make(chan serve.Report, 1),
		exited: make(chan struct{}),
	}
	go a.run()
	return a
}

func (a *boardActor) run() {
	defer close(a.exited)
	for d := range a.bus {
		d.apply(a)
	}
}

// stop closes the bus and waits for the goroutine to exit, after which
// the coordinator owns the session again (buildReport's direct Finish).
func (a *boardActor) stop() {
	if a.stopped {
		return
	}
	a.stopped = true
	close(a.bus)
	<-a.exited
}

// stepEpoch runs one control epoch to end and replies with its
// telemetry.
type stepEpoch struct {
	end   float64
	reply chan serve.EpochStats
}

func (d stepEpoch) apply(a *boardActor) { d.reply <- a.sess.RunEpoch(d.end) }

// decideCtl runs the board's governor against the epoch telemetry the
// coordinator observed for it and actuates the resulting controls —
// controller execution stays board-local, so an Oracle's probe sweep
// costs the board's actor, not the coordinator's barrier.
type decideCtl struct {
	stats   serve.EpochStats
	epochMs float64
	reply   chan struct{}
}

func (d decideCtl) apply(a *boardActor) {
	cur := a.sess.Controls()
	next := a.ctl.Decide(d.stats, cur, func(c serve.Controls) serve.EpochStats {
		return a.sess.Probe(c, d.epochMs)
	})
	serve.GovernEvent(a.rec, a.ctl, d.stats, cur, next)
	a.sess.SetControls(next)
	d.reply <- struct{}{}
}

// detachStream lifts a stream (and its adaptation state) off the board.
type detachStream struct {
	local int
	reply chan *serve.Handoff
}

func (d detachStream) apply(a *boardActor) { d.reply <- a.sess.DetachStream(d.local) }

// attachStream lands a migrating or newly admitted stream and replies
// with its board-local id.
type attachStream struct {
	h     *serve.Handoff
	reply chan int
}

func (d attachStream) apply(a *boardActor) { d.reply <- a.sess.AttachStream(d.h) }

// setControls actuates controls from the coordinator (initial rung,
// destination energize); the governors' own actuation rides decideCtl.
type setControls struct {
	c     serve.Controls
	reply chan struct{}
}

func (d setControls) apply(a *boardActor) {
	a.sess.SetControls(d.c)
	d.reply <- struct{}{}
}

// checkpointStreams snapshots and encodes the given streams on the
// board; a nil entry in the reply marks an encode failure. Stamping
// and the store write stay with the coordinator.
type checkpointStreams struct {
	locals  []int
	globals []int
	epoch   int
	reply   chan [][]byte
}

func (d checkpointStreams) apply(a *boardActor) {
	out := make([][]byte, len(d.locals))
	for i, li := range d.locals {
		c := a.sess.Checkpoint(li)
		c.Stream, c.Epoch = d.globals[i], d.epoch
		var buf bytes.Buffer
		if err := serve.EncodeCheckpoint(&buf, c); err == nil {
			out[i] = buf.Bytes()
		}
	}
	d.reply <- out
}

// finishBoard finalizes the session and replies with its report — the
// kill and retire path.
type finishBoard struct {
	reply chan serve.Report
}

func (d finishBoard) apply(a *boardActor) { d.reply <- a.sess.Finish() }

// Coordinator-side bus helpers. begin/await pairs split a directive
// into its broadcast and collection halves so the barrier can overlap
// every board's work; the synchronous helpers are for request-reply
// traffic at the (already quiescent) boundary.

func (b *board) beginStep(end float64) {
	b.act.bus <- stepEpoch{end: end, reply: b.act.stepc}
}

func (b *board) awaitStep() { b.stats = <-b.act.stepc }

func (b *board) beginDecide(epochMs float64) {
	b.act.bus <- decideCtl{stats: b.stats, epochMs: epochMs, reply: b.act.ackc}
}

func (b *board) awaitDecide() { <-b.act.ackc }

func (b *board) beginCheckpoint(locals, globals []int, epoch int) {
	b.act.bus <- checkpointStreams{locals: locals, globals: globals, epoch: epoch, reply: b.act.ckptc}
}

func (b *board) awaitCheckpoint() [][]byte { return <-b.act.ckptc }

func (b *board) detach(local int) *serve.Handoff {
	b.act.bus <- detachStream{local: local, reply: b.act.handc}
	return <-b.act.handc
}

func (b *board) attach(h *serve.Handoff) int {
	b.act.bus <- attachStream{h: h, reply: b.act.localc}
	return <-b.act.localc
}

func (b *board) setControls(c serve.Controls) {
	b.act.bus <- setControls{c: c, reply: b.act.ackc}
	<-b.act.ackc
}

// retire finalizes the board's session on its actor and stops the
// actor: the kill and drained-leaver exit path. Finish is idempotent,
// so buildReport's later direct call returns this same report.
func (b *board) retire() serve.Report {
	b.act.bus <- finishBoard{reply: b.act.repc}
	rep := <-b.act.repc
	b.act.stop()
	return rep
}

// stepBarrier runs one fleet epoch across the live boards: broadcast,
// then collect — the explicit epoch barrier. Lockstep mode awaits each
// board before dispatching the next, which is the serial reference
// execution the concurrent runtime must reproduce bit for bit.
func (f *Fleet) stepBarrier(stepped []*board, end float64) {
	if f.cfg.Lockstep {
		for _, b := range stepped {
			b.beginStep(end)
			b.awaitStep()
		}
		return
	}
	for _, b := range stepped {
		b.beginStep(end)
	}
	for _, b := range stepped {
		b.awaitStep()
	}
}

// decideBarrier runs every eligible board's governor on its own actor.
// A dead board has no governor to run; a drained board has nothing to
// govern (and an oracle would sweep probes for nothing) — its
// controller resumes at the first boundary after a stream attaches.
func (f *Fleet) decideBarrier(stepped []*board) {
	var waiting []*board
	for _, b := range stepped {
		if !b.alive || b.ctl == nil || b.sess.Done() {
			continue
		}
		b.beginDecide(f.cfg.EpochMs)
		if f.cfg.Lockstep {
			b.awaitDecide()
		} else {
			waiting = append(waiting, b)
		}
	}
	for _, b := range waiting {
		b.awaitDecide()
	}
}
