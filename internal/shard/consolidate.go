package shard

import "sort"

// Lull consolidation is the reverse of saturation migration: where
// migration spreads load off a board the governor cannot save with
// watts, consolidation packs load back onto few boards when the
// fleet's forecast says the capacity is no longer needed. The payoff
// is the static rail draw: a board whose streams all left drains its
// in-flight work and sleeps (serve.Session charges no idle energy to
// a drained board), so the 4-rail penalty that keeps governed shards
// above a single board's energy is only paid while the load actually
// needs four boards.
//
// The pass is deliberately conservative: one board per boundary, the
// coldest one, and only when every stream it homes fits on the
// remaining boards under the ConsolidateUtil forecast ceiling —
// a partial drain would move streams without putting any rail to
// sleep, all risk and no payoff.

// conHome describes one homed stream during consolidation planning.
type conHome struct {
	gid  int
	util float64 // provisioning utilization share at the shared frame cost
}

// peakDecay is the per-epoch decay of the coordinator's peak-load
// memory: the insurance half-life that prices how long a lull must
// last before the fleet stops provisioning for the last burst. It is
// deliberately slower than govern.Predictive's per-board decay —
// repacking a whole fleet onto one board is a far more expensive
// mistake than holding one board's rung an epoch too long, so the
// fleet remembers bursts for ~3× longer (half-life ≈ 14 epochs).
const peakDecay = 0.95

// consolidate drains the coldest occupied board in the group when the
// group's provisioning load — each stream's forecast, floored by its
// decayed peak — fits on the others with headroom, migrating its
// streams coldest-first onto the boards with the most headroom. The
// scan is positional over the group slice, so planning state is
// O(group) regardless of fleet size. lastCon is the consolidation
// cooldown clock; lastSat is read-only here — a stream that saturation
// migration just rescued must not be packed straight back into the hot
// spot it escaped.
func (f *Fleet) consolidate(grp []*board, home, lastSat, lastCon []int,
	peak []float64, epoch int, migrations []Migration) []Migration {
	// Board provisioning loads in utilization units and homed streams,
	// indexed by position in the group slice.
	homed := make([][]conHome, len(grp))
	loads := make([]float64, len(grp))
	for pi, b := range grp {
		if !b.alive || b.leaving || b.sess.Done() {
			// A dead or leaving board takes no part; a drained-and-finished
			// board has nothing to consolidate and nothing worth draining:
			// its streams' schedules ended, every detach would return nil,
			// and selecting it as the perpetual "coldest victim" would
			// block real consolidation elsewhere for the rest of the run.
			continue
		}
		for li, gid := range b.globals {
			if home[gid] != b.id || b.local[gid] != li {
				continue
			}
			frames := streamForecast(b, gid)
			if peak[gid] > frames {
				frames = peak[gid]
			}
			u := frames * f.topFrameMs() / (f.cfg.EpochMs * float64(f.workers))
			homed[pi] = append(homed[pi], conHome{gid: gid, util: u})
			loads[pi] += u
		}
	}
	// The victim is the coldest occupied board; it needs company — a
	// group already on one board has nothing left to consolidate.
	victim := -1
	occupied := 0
	for pi := range grp {
		if len(homed[pi]) == 0 {
			continue
		}
		occupied++
		if victim < 0 || loads[pi] < loads[victim] {
			victim = pi
		}
	}
	if occupied < 2 {
		return migrations
	}
	// Plan the full drain: every victim stream must be off cooldown and
	// must fit a keeper under the packing ceiling, or nothing moves.
	streams := append([]conHome(nil), homed[victim]...)
	sort.SliceStable(streams, func(i, j int) bool { return streams[i].util < streams[j].util })
	cap := f.cfg.ConsolidateUtil
	planned := make([]float64, len(grp))
	dests := make([]int, len(streams))
	for i, s := range streams {
		if epoch-lastCon[s.gid] < f.cfg.Cooldown || epoch-lastSat[s.gid] < f.cfg.Cooldown {
			return migrations
		}
		dst := -1
		for pi, b := range grp {
			if pi == victim || len(homed[pi]) == 0 || f.saturated(b) {
				continue // keepers only: occupied, healthy, live boards
			}
			if loads[pi]+planned[pi]+s.util > cap {
				continue
			}
			if dst < 0 || loads[pi]+planned[pi] < loads[dst]+planned[dst] {
				dst = pi
			}
		}
		if dst < 0 {
			return migrations // no headroom anywhere: the lull is not deep enough
		}
		dests[i] = dst
		planned[dst] += s.util
	}
	// Execute. A stream with no future frames detaches to nil and stays
	// to drain — it does not keep the board awake, so the drain still
	// completes.
	first := len(migrations)
	for i, s := range streams {
		var ok bool
		migrations, ok = f.move(grp[victim], grp[dests[i]], s.gid, home, epoch, Consolidate, migrations)
		if ok {
			lastCon[s.gid] = epoch
		}
	}
	if len(migrations) > first {
		migrations[len(migrations)-1].Drained = true
	}
	return migrations
}
