package shard

import (
	"math"
	"testing"

	"ldbnadapt/internal/forecast"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
)

// TestForecastLoads pins the admission-time placement seeds: each
// stream's load is its forecaster's prediction after observing the
// opening-epoch arrival count, priced at the shared per-frame cost —
// not the whole-run mean the old estimator used (a replay oracle no
// admission controller has).
func TestForecastLoads(t *testing.T) {
	m := testModel(71)
	scheds := []serve.StreamSchedule{
		// Opens at 10 FPS (3 arrivals inside the first 250 ms) before
		// collapsing to 2 FPS: an admission controller sees 3, the
		// whole-run mean would see ~2.6 FPS.
		{Phases: []stream.RatePhase{{Frames: 12, FPS: 10}, {Frames: 20, FPS: 2}}},
		// Opens at 2 FPS (1 arrival in the first 250 ms) and later
		// bursts: admission sees the lull.
		{Phases: []stream.RatePhase{{Frames: 4, FPS: 2}, {Frames: 40, FPS: 20}}},
	}
	fleet := serve.SyntheticFleetSchedules(m.Cfg, scheds, 71)
	mk := func() forecast.Forecaster { return forecast.NewNaive() }
	frameMs, epochMs := 40.0, 250.0
	loads := ForecastLoads(fleet, frameMs, epochMs, mk)
	want0 := 3 * frameMs / epochMs
	want1 := 1 * frameMs / epochMs
	if math.Abs(loads[0]-want0) > 1e-12 || math.Abs(loads[1]-want1) > 1e-12 {
		t.Fatalf("ForecastLoads = %v, want [%v %v]", loads, want0, want1)
	}
	// Late joiners are measured from their own first arrival.
	late := serve.SyntheticFleetSchedules(m.Cfg, []serve.StreamSchedule{
		{Start: 5 * 1e9, Phases: []stream.RatePhase{{Frames: 8, FPS: 10}}},
	}, 72)
	if l := ForecastLoads(late, frameMs, epochMs, mk); math.Abs(l[0]-want0) > 1e-12 {
		t.Fatalf("late joiner load %v, want %v", l[0], want0)
	}
	// An empty source carries no load.
	if l := ForecastLoads([]*stream.Source{{FPS: 30}}, frameMs, epochMs, mk); l[0] != 0 {
		t.Fatalf("empty source load %v, want 0", l[0])
	}
}

// consolidationScenario is the lull-consolidation reference workload,
// a compressed diurnal cycle with sign-offs: twelve cameras spread
// three per board (LeastLoaded) idle at 2 FPS and rush together at
// 8 FPS twice; after the second rush half the cameras leave (a short
// schedule is a stream that ends) and the survivors settle into a
// long 2 FPS evening. The admission lull lets consolidation pack the
// fleet, and the evening is what consolidation exists for: the
// peak-load memory decays, the sign-offs halve the fleet load, and
// the coordinator drains a board mid-run — its rail sleeps while the
// migrate-only fleet keeps every board awake to serve a trickle.
func consolidationScenario(t *testing.T, consolidate bool) Report {
	t.Helper()
	m := testModel(61)
	scheds := make([]serve.StreamSchedule, 12)
	for i := range scheds {
		phases := []stream.RatePhase{
			{Frames: 8, FPS: 2},  // morning lull: 4 s
			{Frames: 32, FPS: 8}, // rush: 4 s
			{Frames: 8, FPS: 2},  // midday lull: 4 s
			{Frames: 32, FPS: 8}, // second rush: 4 s
		}
		if i%2 == 0 { // every other camera stays for the evening: 12 s
			phases = append(phases, stream.RatePhase{Frames: 24, FPS: 2})
		}
		scheds[i] = serve.StreamSchedule{Phases: phases}
	}
	fleet := serve.SyntheticFleetSchedules(m.Cfg, scheds, 61)
	f, err := New(m, Config{
		Boards:          4,
		Board:           boardConfig(orin.Mode60W, 1),
		Placement:       LeastLoaded{},
		Governor:        "predictive",
		EpochMs:         250,
		Migrate:         true,
		Consolidate:     consolidate,
		ConsolidateUtil: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f.Run(fleet)
}

// TestConsolidationCutsFleetEnergy is the seeded acceptance pin for
// lull consolidation: on the reference workload the consolidation run
// must spend measurably less total energy than the migrate-only run
// of the same fleet at an equal-or-better deadline-hit rate, with at
// least one board drained mid-run in the migration trace. The pinned
// scenario measures hit 0.9891 for both at 0.947× the energy.
func TestConsolidationCutsFleetEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance pin over two full fleet runs; concurrency is covered by the migration tests")
	}
	mig := consolidationScenario(t, false)
	con := consolidationScenario(t, true)

	if con.HitRate < mig.HitRate {
		t.Fatalf("consolidation hit rate %.4f below migrate-only's %.4f", con.HitRate, mig.HitRate)
	}
	if con.EnergyMJ >= 0.95*mig.EnergyMJ {
		t.Fatalf("consolidation energy %.0f mJ not measurably below migrate-only's %.0f mJ",
			con.EnergyMJ, mig.EnergyMJ)
	}
	// The saving must come from sleeping rails, not shed work.
	if con.IdleEnergyMJ >= mig.IdleEnergyMJ {
		t.Fatalf("consolidation static draw %.0f mJ not below migrate-only's %.0f mJ",
			con.IdleEnergyMJ, mig.IdleEnergyMJ)
	}
	lastEpoch := 0
	for _, br := range con.Boards {
		for _, es := range br.Report.Epochs {
			if es.Epoch > lastEpoch {
				lastEpoch = es.Epoch
			}
		}
	}
	midDrains, conMoves := 0, 0
	for _, mg := range con.Migrations {
		switch mg.Reason {
		case Consolidate:
			conMoves++
		case Saturate: // re-spreading under saturation is pinned by the migration tests
		default:
			t.Fatalf("migration without a reason: %+v", mg)
		}
		if mg.Drained {
			if mg.Reason != Consolidate {
				t.Fatalf("drain recorded on a %s move: %+v", mg.Reason, mg)
			}
			// Drains at the very first boundary are admission packing;
			// the acceptance story needs a board put to sleep mid-run.
			if mg.Epoch > 0 && mg.Epoch < lastEpoch {
				midDrains++
			}
		}
	}
	if midDrains == 0 {
		t.Fatal("no board was drained mid-run")
	}
	if conMoves == 0 {
		t.Fatal("no consolidation moves recorded")
	}
	// The migrate-only run must not consolidate.
	for _, mg := range mig.Migrations {
		if mg.Reason == Consolidate || mg.Drained {
			t.Fatalf("migrate-only run recorded a consolidation move: %+v", mg)
		}
	}
	// Every frame still served exactly once.
	if con.Frames != mig.Frames {
		t.Fatalf("consolidation changed the served frame count: %d vs %d", con.Frames, mig.Frames)
	}
	// Deterministic virtual accounting: a second run reproduces the pin.
	again := consolidationScenario(t, true)
	if again.EnergyMJ != con.EnergyMJ || again.HitRate != con.HitRate ||
		len(again.Migrations) != len(con.Migrations) {
		t.Fatalf("consolidation run not deterministic: %.3f/%.6f/%d vs %.3f/%.6f/%d",
			again.EnergyMJ, again.HitRate, len(again.Migrations),
			con.EnergyMJ, con.HitRate, len(con.Migrations))
	}
}
