package shard

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
)

// Fault tolerance. The paper's premise — continuous per-stream
// adaptation on edge boards — makes board death expensive: the BN
// statistics, γ/β and optimizer moments a stream accumulated are state
// that took its whole history to build and lives only in the dead
// board's memory. The coordinator therefore checkpoints every homed
// stream's adaptation state into a CheckpointStore on a configurable
// epoch cadence, and when a board dies (injected by a FailurePlan, the
// seeded chaos hook), its orphaned streams are re-admitted onto
// survivors at the same boundary: future frames come from the
// cameras, adaptation state from the last checkpoint (bounded-stale by
// the cadence), placement from the checkpointed forecast through the
// same scoring and destination-energize path live migration uses.
// Frames already queued on the dead board are lost and reported.
//
// Membership is elastic in both directions: a Drain event evacuates a
// board live (nothing lost — the rolling-upgrade path) and retires it
// once its queue drains; a Join event adds a cold board that placement
// starts using immediately.

// EventKind labels a membership event.
type EventKind string

const (
	// Kill removes a board instantly: its queue is lost, its homed
	// streams recover from checkpoints.
	Kill EventKind = "kill"
	// Drain removes a board gracefully: its streams evacuate live
	// (Reason=Evacuate), it serves out its queue, then retires.
	Drain EventKind = "drain"
	// Join adds a fresh cold board to the fleet.
	Join EventKind = "join"
)

// Board targets that resolve against fleet state when the event fires,
// rather than naming a fixed id.
const (
	// HottestBoard targets the live board with the highest forecast
	// utilization that still homes at least one stream.
	HottestBoard = -1
	// ColdestBoard targets the live stream-homing board with the
	// lowest forecast utilization.
	ColdestBoard = -2
)

// FleetEvent is one membership event, applied at the boundary after
// the given fleet epoch completes.
type FleetEvent struct {
	// Epoch is the fleet epoch whose boundary fires the event.
	Epoch int
	// Kind is Kill, Drain or Join.
	Kind EventKind
	// Board is the target id, or HottestBoard/ColdestBoard to resolve
	// by load at fire time (ignored for Join).
	Board int
}

// FailurePlan is a deterministic membership schedule: the chaos-test
// and rolling-upgrade injection point. Events that target a board
// already dead or leaving, or that fire after the fleet drains, are
// skipped.
type FailurePlan struct {
	Events []FleetEvent
}

// ParsePlan parses a CLI chaos spec: comma-separated
// "kind[:target]@epoch" events, where kind is kill/drain/join and
// target is a board id, "hot" or "cold" (default hot; join takes no
// target). Example: "kill:hot@12,join@14,drain:0@20".
func ParsePlan(spec string) (*FailurePlan, error) {
	p := &FailurePlan{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, at, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("shard: event %q has no @epoch", part)
		}
		epoch, err := strconv.Atoi(at)
		if err != nil || epoch < 0 {
			return nil, fmt.Errorf("shard: event %q has bad epoch %q", part, at)
		}
		kindS, targetS, hasTarget := strings.Cut(head, ":")
		ev := FleetEvent{Epoch: epoch, Kind: EventKind(kindS), Board: HottestBoard}
		switch ev.Kind {
		case Kill, Drain:
			if hasTarget {
				switch targetS {
				case "hot":
					ev.Board = HottestBoard
				case "cold":
					ev.Board = ColdestBoard
				default:
					id, err := strconv.Atoi(targetS)
					if err != nil || id < 0 {
						return nil, fmt.Errorf("shard: event %q has bad target %q", part, targetS)
					}
					ev.Board = id
				}
			}
		case Join:
			if hasTarget {
				return nil, fmt.Errorf("shard: join event %q takes no target", part)
			}
			ev.Board = 0
		default:
			return nil, fmt.Errorf("shard: unknown event kind %q (have kill/drain/join)", kindS)
		}
		p.Events = append(p.Events, ev)
	}
	if len(p.Events) == 0 {
		return nil, fmt.Errorf("shard: empty chaos plan %q", spec)
	}
	return p, nil
}

// EventRecord is one fired membership event and its outcome.
type EventRecord struct {
	// Epoch is the fleet epoch the event fired at; Kind and Board the
	// resolved event (Board is the new incarnation's id for a Join).
	Epoch int
	Kind  EventKind
	Board int
	// Streams counts streams the event displaced (orphans re-admitted
	// for a Kill, streams evacuated for a Drain).
	Streams int
	// Recovered and Cold split a Kill's re-admissions by whether the
	// stream resumed from its checkpoint or restarted cold.
	Recovered, Cold int
	// LostFrames counts frames destroyed in a killed board's queue.
	LostFrames int
}

// pendingKill is a board killed at this boundary, awaiting orphan
// re-admission (which runs after the governors).
type pendingKill struct {
	b       *board
	orphans []int
	lost    int
}

// runCtx is one Run's mutable fleet state: the board registry, the
// stream→board map and cooldown clocks, and the fault-tolerance
// bookkeeping.
type runCtx struct {
	f       *Fleet
	eng     *serve.Engine
	boards  []*board
	sources []*stream.Source
	home    []int
	lastSat []int
	lastCon []int
	peak    []float64

	migrations []Migration
	events     []EventRecord
	store      serve.CheckpointStore
	ckpts      int
	ckptErrs   int
	epochs     int

	pendingKills  []pendingKill
	pendingDrains []*board

	// Admission-gate state (see admission.go): arrivals waiting for
	// forecast headroom, and the gate's outcome trace.
	pending      []pendingStream
	admissions   []AdmissionRecord
	admitDropped int
}

// resolve maps an event target to a live, non-leaving board (nil when
// nothing qualifies — the event is skipped). Hottest/coldest consider
// only boards homing at least one stream, because killing or draining
// an empty board is a no-op nobody schedules chaos for.
func (r *runCtx) resolve(target int) *board {
	if target >= 0 {
		if target < len(r.boards) && r.boards[target].alive && !r.boards[target].leaving {
			return r.boards[target]
		}
		return nil
	}
	homes := make(map[int]int)
	for _, h := range r.home {
		if h >= 0 {
			homes[h]++
		}
	}
	var pick *board
	for _, b := range r.boards {
		if !b.alive || b.leaving || homes[b.id] == 0 {
			continue
		}
		if pick == nil {
			pick = b
			continue
		}
		u, best := r.f.forecastUtil(b), r.f.forecastUtil(pick)
		if (target == HottestBoard && u > best) || (target == ColdestBoard && u < best) {
			pick = b
		}
	}
	return pick
}

// applyEvents fires this boundary's membership events: kills finalize
// immediately (orphans are collected for recoverOrphans), drains mark
// the board leaving (evacuation follows the governors), joins open a
// fresh incarnation already caught up to the fleet clock.
func (r *runCtx) applyEvents(epoch int, end float64) {
	if r.f.cfg.Plan == nil {
		return
	}
	for _, ev := range r.f.cfg.Plan.Events {
		if ev.Epoch != epoch {
			continue
		}
		switch ev.Kind {
		case Kill:
			if b := r.resolve(ev.Board); b != nil {
				r.kill(b, epoch)
			}
		case Drain:
			if b := r.resolve(ev.Board); b != nil {
				b.leaving = true
				r.pendingDrains = append(r.pendingDrains, b)
				r.f.rec.Instant("drain", r.f.nowMs, fmt.Sprintf("board=%d epoch=%d", b.id, epoch))
			}
		case Join:
			id := len(r.boards)
			b := r.f.openBoard(r.eng, id, epoch, nil)
			b.group = r.assignGroup()
			// One zero-cost epoch catches the empty session's clock up to
			// the fleet boundary, so its first real epoch is in lockstep.
			b.beginStep(end)
			b.awaitStep()
			r.boards = append(r.boards, b)
			r.events = append(r.events, EventRecord{Epoch: epoch, Kind: Join, Board: id})
			r.f.rec.Instant("join", r.f.nowMs, fmt.Sprintf("board=%d group=%d epoch=%d", id, b.group, epoch))
		}
	}
}

// kill removes a board instantly: the session finalizes with whatever
// it served (and the board's actor stops), frames still queued are
// counted lost, and the streams it homed become orphans for
// recoverOrphans.
func (r *runCtx) kill(b *board, epoch int) {
	b.alive, b.leaveEpoch = false, epoch
	rep := b.retire()
	arrived := 0
	for _, es := range rep.Epochs {
		arrived += es.Arrived
	}
	pk := pendingKill{b: b, lost: arrived - rep.Frames - rep.FramesDropped}
	for gid, h := range r.home {
		if h == b.id {
			pk.orphans = append(pk.orphans, gid)
		}
	}
	r.pendingKills = append(r.pendingKills, pk)
	r.f.rec.Instant("kill", r.f.nowMs,
		fmt.Sprintf("board=%d epoch=%d lost=%d orphans=%d", b.id, epoch, pk.lost, len(pk.orphans)))
	r.f.met.lostFrames.Add(int64(pk.lost))
}

// futureSource clips a stream's original source to the frames the
// cameras have not yet delivered at the boundary — what a dead board's
// stream still has left to serve. Frames the dead board had already
// received are gone; frames from the boundary on re-home with the
// stream.
func futureSource(src *stream.Source, endMs float64) *stream.Source {
	var fut []stream.Frame
	for _, fr := range src.Frames {
		if float64(fr.Arrival)/1e6 >= endMs {
			fut = append(fut, fr)
		}
	}
	if len(fut) == 0 {
		return nil
	}
	return &stream.Source{FPS: src.FPS, Frames: fut}
}

// survivorCandidates scopes failover and evacuation destinations to
// the displaced board's own placement group — O(group) scoring — with
// the whole fleet as the fallback when the group has no live,
// non-leaving survivor: a recovered stream anywhere beats a stream
// served nowhere.
func (r *runCtx) survivorCandidates(group int) []*board {
	var ingrp, all []*board
	for _, b := range r.boards {
		if !b.alive || b.leaving {
			continue
		}
		all = append(all, b)
		if b.group == group {
			ingrp = append(ingrp, b)
		}
	}
	if len(ingrp) > 0 {
		return ingrp
	}
	return all
}

// recoverOrphans re-admits every killed board's orphaned streams onto
// survivors, hottest first: adaptation state from the stream's last
// checkpoint when one decodes (cold otherwise), destination chosen by
// the same forecast-utilization scoring live migration uses — least
// loaded in the dead board's group (fleet-wide only when the group
// died with it), including the load already replanned onto it this
// boundary — and energized for the incoming demand. Re-admission never
// blocks on headroom: a recovered stream on a warm board beats a
// stream served nowhere. The stream's saturation cooldown is left
// untouched, so a migrant that lands hot stays immediately rescuable.
func (r *runCtx) recoverOrphans(epoch int, end float64) {
	if len(r.pendingKills) == 0 {
		return
	}
	f := r.f
	for _, pk := range r.pendingKills {
		cands := r.survivorCandidates(pk.b.group)
		ev := EventRecord{Epoch: epoch, Kind: Kill, Board: pk.b.id, LostFrames: pk.lost}
		type orphan struct {
			gid  int
			src  *stream.Source
			h    *serve.Handoff
			load float64 // forecast next-epoch frames
		}
		var orphans []orphan
		for _, gid := range pk.orphans {
			src := futureSource(r.sources[gid], end)
			if src == nil {
				continue // the stream's schedule ended; nothing to revive
			}
			o := orphan{gid: gid, src: src}
			if r.store != nil {
				if data, ok, err := r.store.Latest(gid); err != nil {
					r.ckptErrs++
				} else if ok {
					if c, derr := r.eng.DecodeCheckpoint(bytes.NewReader(data)); derr != nil {
						r.ckptErrs++
					} else {
						o.h = r.eng.RestoreHandoff(c, src)
					}
				}
			}
			if o.h != nil {
				o.load = o.h.Forecast()
				ev.Recovered++
			} else {
				o.h = r.eng.NewHandoff(src)
				ev.Cold++
			}
			if o.load <= 0 {
				// No forecaster history: provision by the camera's nominal
				// rate, the same prior cold admission uses.
				o.load = src.FPS * f.cfg.EpochMs / 1000
			}
			orphans = append(orphans, o)
		}
		sort.SliceStable(orphans, func(i, j int) bool { return orphans[i].load > orphans[j].load })
		planned := make(map[*board]float64)
		extra := make(map[*board]float64)
		for _, o := range orphans {
			var dst *board
			score := func(c *board) float64 { return f.forecastUtil(c) + planned[c] }
			for _, c := range cands {
				if dst == nil || score(c) < score(dst) {
					dst = c
				}
			}
			if dst == nil {
				break // no survivors: the remaining orphans die with the fleet
			}
			nl := dst.attach(o.h)
			dst.local[o.gid] = nl
			dst.globals = append(dst.globals, o.gid)
			r.home[o.gid] = dst.id
			pk.b.out++
			dst.in++
			r.migrations = append(r.migrations, Migration{
				Epoch: epoch, Stream: o.gid, From: pk.b.id, To: dst.id, Reason: Failover,
			})
			// Failover re-homes bypass Fleet.move (the dead board's actor is
			// gone; the handoff is rebuilt from the checkpoint), so the
			// migrate instant is emitted here.
			f.rec.Instant("migrate", f.nowMs,
				fmt.Sprintf("stream=%d from=%d to=%d reason=%s", o.gid, pk.b.id, dst.id, Failover))
			f.met.migrations.Add(1)
			// Hold the consolidation clock so the recovered stream is not
			// immediately re-packed while its telemetry is still settling.
			r.lastCon[o.gid] = epoch
			planned[dst] += o.load * f.topFrameMs() / (f.cfg.EpochMs * float64(f.workers))
			extra[dst] += o.load
			ev.Streams++
		}
		for dst, x := range extra {
			f.energize(dst, x)
		}
		r.events = append(r.events, ev)
	}
	r.pendingKills = nil
}

// evacuateLeavers moves every stream off boards marked leaving at this
// boundary — coldest first onto the least-loaded survivors in the
// leaver's group (fleet-wide when the group has no other survivor),
// the same packing order consolidation uses but unconditional: the
// board is leaving whether or not the lull is deep enough, so there is
// no headroom ceiling to refuse at. The handoffs are live (full state,
// open windows, forecasters), which is what makes Drain the lossless
// rolling-upgrade path. The last successful move carries Drained, and
// the board retires once its in-flight queue empties.
func (r *runCtx) evacuateLeavers(epoch int) {
	if len(r.pendingDrains) == 0 {
		return
	}
	f := r.f
	for _, b := range r.pendingDrains {
		if !b.alive {
			continue // already retired: it was Done the moment it was marked
		}
		cands := r.survivorCandidates(b.group)
		ev := EventRecord{Epoch: epoch, Kind: Drain, Board: b.id}
		type item struct {
			gid  int
			load float64
		}
		var items []item
		for li, gid := range b.globals {
			if r.home[gid] != b.id || b.local[gid] != li {
				continue
			}
			items = append(items, item{gid: gid, load: streamForecast(b, gid)})
		}
		sort.SliceStable(items, func(i, j int) bool { return items[i].load < items[j].load })
		planned := make(map[*board]float64)
		extra := make(map[*board]float64)
		first := len(r.migrations)
		for _, it := range items {
			var dst *board
			score := func(c *board) float64 { return f.forecastUtil(c) + planned[c] }
			for _, c := range cands {
				if dst == nil || score(c) < score(dst) {
					dst = c
				}
			}
			if dst == nil {
				break // nowhere to go: the board keeps serving until done
			}
			var ok bool
			r.migrations, ok = f.move(b, dst, it.gid, r.home, epoch, Evacuate, r.migrations)
			if !ok {
				continue // no future frames: the stream drains in place
			}
			r.lastCon[it.gid] = epoch
			planned[dst] += it.load * f.topFrameMs() / (f.cfg.EpochMs * float64(f.workers))
			extra[dst] += it.load
			ev.Streams++
		}
		if len(r.migrations) > first {
			r.migrations[len(r.migrations)-1].Drained = true
		}
		for dst, x := range extra {
			f.energize(dst, x)
		}
		r.events = append(r.events, ev)
	}
	r.pendingDrains = nil
}

// checkpointPass writes every homed stream's adaptation state into the
// store on the configured cadence — after the boundary's placement, so
// each checkpoint reflects the stream's current home and the state its
// next epoch will start from. Snapshot and encode run on each board's
// actor (broadcast, then collect — the deep copies and the binary
// codec dominate the cost); only the store writes stay serial on the
// coordinator, in board/stream order, so the pass is deterministic. In
// Lockstep mode each board is awaited before the next is asked.
func (r *runCtx) checkpointPass(epoch int) {
	every := r.f.cfg.CheckpointEvery
	if r.store == nil || every <= 0 || epoch%every != 0 {
		return
	}
	type job struct {
		b       *board
		globals []int
	}
	write := func(j job, data [][]byte) {
		for i, d := range data {
			if d == nil {
				r.ckptErrs++
				continue
			}
			if err := r.store.Put(j.globals[i], d); err != nil {
				r.ckptErrs++
				continue
			}
			r.ckpts++
		}
	}
	c0, e0 := r.ckpts, r.ckptErrs
	var jobs []job
	for _, b := range r.boards {
		if !b.alive {
			continue
		}
		var locals, globals []int
		for li, gid := range b.globals {
			if r.home[gid] != b.id || b.local[gid] != li {
				continue
			}
			locals = append(locals, li)
			globals = append(globals, gid)
		}
		if len(locals) == 0 {
			continue
		}
		b.beginCheckpoint(locals, globals, epoch)
		if r.f.cfg.Lockstep {
			write(job{b: b, globals: globals}, b.awaitCheckpoint())
			continue
		}
		jobs = append(jobs, job{b: b, globals: globals})
	}
	for _, j := range jobs {
		write(j, j.b.awaitCheckpoint())
	}
	if wrote, failed := r.ckpts-c0, r.ckptErrs-e0; wrote > 0 || failed > 0 {
		r.f.rec.Instant("checkpoint", r.f.nowMs,
			fmt.Sprintf("epoch=%d written=%d errors=%d", epoch, wrote, failed))
		r.f.met.checkpoints.Add(int64(wrote))
		r.f.met.checkpointErrors.Add(int64(failed))
	}
}
