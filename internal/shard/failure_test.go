package shard

import (
	"testing"

	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/ufld"
)

// TestParsePlan covers the chaos-spec grammar and its error paths.
func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("kill:hot@12, join@14, drain:0@20, kill:cold@3, kill:7@5")
	if err != nil {
		t.Fatal(err)
	}
	want := []FleetEvent{
		{Epoch: 12, Kind: Kill, Board: HottestBoard},
		{Epoch: 14, Kind: Join, Board: 0},
		{Epoch: 20, Kind: Drain, Board: 0},
		{Epoch: 3, Kind: Kill, Board: ColdestBoard},
		{Epoch: 5, Kind: Kill, Board: 7},
	}
	if len(p.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(p.Events), len(want))
	}
	for i, ev := range p.Events {
		if ev != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	// A bare kill defaults to the hottest board.
	if p, err = ParsePlan("kill@4"); err != nil || p.Events[0].Board != HottestBoard {
		t.Fatalf("bare kill: %+v, %v", p, err)
	}
	for _, bad := range []string{"", "kill", "kill@x", "kill@-1", "join:2@4", "kill:z@4", "reboot@4"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) accepted a bad spec", bad)
		}
	}
}

// chaosScenario is the fault-tolerance reference workload: six 4 FPS
// cameras spread two per board over three boards, with both of board
// 0's cameras bursting to 16 FPS at t=2 s — so at the burst peak board
// 0 is unambiguously the hottest board in the fleet.
func chaosScenario(seed uint64) (*ufld.Model, []*stream.Source) {
	m := testModel(seed)
	scheds := make([]serve.StreamSchedule, 6)
	for i := range scheds {
		if i == 0 || i == 3 { // LeastLoaded homes streams 0 and 3 on board 0
			scheds[i] = serve.StreamSchedule{Phases: []stream.RatePhase{
				{Frames: 8, FPS: 4}, {Frames: 24, FPS: 16},
			}}
		} else {
			scheds[i] = serve.StreamSchedule{Phases: []stream.RatePhase{
				{Frames: 8, FPS: 4}, {Frames: 16, FPS: 4},
			}}
		}
	}
	return m, serve.SyntheticFleetSchedules(m.Cfg, scheds, seed+100)
}

// chaosConfig runs the scenario with or without the seeded kill.
func chaosConfig(plan *FailurePlan) Config {
	return Config{
		Boards:          3,
		Board:           boardConfig(orin.Mode60W, 1),
		Placement:       LeastLoaded{},
		Governor:        "hysteresis",
		EpochMs:         250,
		Migrate:         true,
		CheckpointEvery: 2,
		Plan:            plan,
	}
}

// TestChaosRecoveryPin is the seeded fault-tolerance acceptance pin:
// killing the hottest board at the burst peak must re-admit every
// orphaned stream from its checkpoint at the same boundary (zero
// recovery epochs, no cold restarts), conserve every frame as served,
// shed or lost-in-queue, and land within a pinned hit-rate margin of
// the no-failure run — deterministically.
func TestChaosRecoveryPin(t *testing.T) {
	m, fleet := chaosScenario(67)
	total := 0
	for _, src := range fleet {
		total += len(src.Frames)
	}
	run := func(plan *FailurePlan) Report {
		f, err := New(m, chaosConfig(plan))
		if err != nil {
			t.Fatal(err)
		}
		return f.Run(fleet)
	}
	plan := func() *FailurePlan {
		return &FailurePlan{Events: []FleetEvent{{Epoch: 8, Kind: Kill, Board: HottestBoard}}}
	}
	chaos := run(plan())

	if len(chaos.Events) != 1 {
		t.Fatalf("%d events fired, want 1: %+v", len(chaos.Events), chaos.Events)
	}
	ev := chaos.Events[0]
	if ev.Kind != Kill || ev.Epoch != 8 {
		t.Fatalf("event %+v, want kill at epoch 8", ev)
	}
	// The burst makes board 0 the hottest at the kill boundary.
	if ev.Board != 0 {
		t.Fatalf("hottest-board kill resolved to board %d, want 0", ev.Board)
	}
	if ev.Streams != 2 || ev.Recovered != 2 || ev.Cold != 0 {
		t.Fatalf("re-admitted %d streams (%d recovered, %d cold), want 2 from checkpoints",
			ev.Streams, ev.Recovered, ev.Cold)
	}
	// Bounded recovery: every orphan re-admits at the kill boundary
	// itself, not epochs later.
	failovers := 0
	for _, mg := range chaos.Migrations {
		if mg.Reason == Failover {
			failovers++
			if mg.Epoch != 8 || mg.From != 0 {
				t.Fatalf("failover move %+v, want from board 0 at epoch 8", mg)
			}
		}
	}
	if failovers != 2 {
		t.Fatalf("%d failover moves, want 2", failovers)
	}
	// Frame conservation: everything the cameras produced was served,
	// shed, or died in the killed board's queue — nothing vanished.
	if got := chaos.Frames + chaos.FramesDropped + chaos.LostFrames; got != total {
		t.Fatalf("served %d + dropped %d + lost %d = %d frames, want %d",
			chaos.Frames, chaos.FramesDropped, chaos.LostFrames, got, total)
	}
	// The killed board's report is final and bounded by the kill epoch.
	dead := chaos.Boards[0]
	if dead.LeaveEpoch != 8 {
		t.Fatalf("killed board leave epoch %d, want 8", dead.LeaveEpoch)
	}
	for _, es := range dead.Report.Epochs {
		if es.Epoch > 8 {
			t.Fatalf("killed board recorded epoch %d after its death", es.Epoch)
		}
	}
	// Both orphans were served by more than one board, and checkpoints
	// were actually flowing.
	for _, gid := range []int{0, 3} {
		if chaos.Streams[gid].Boards < 2 {
			t.Fatalf("orphan stream %d served by %d boards, want ≥ 2", gid, chaos.Streams[gid].Boards)
		}
	}
	if chaos.Checkpoints == 0 || chaos.CheckpointErrors != 0 {
		t.Fatalf("checkpointing: %d writes, %d errors", chaos.Checkpoints, chaos.CheckpointErrors)
	}

	if testing.Short() {
		// One chaos run exercises every concurrent recovery path (the race
		// target's concern); the no-failure comparison and determinism
		// rerun are seeded acceptance pins make test still covers.
		return
	}
	nofail := run(nil)
	if nofail.LostFrames != 0 || len(nofail.Events) != 0 {
		t.Fatalf("no-failure run lost %d frames, fired %d events", nofail.LostFrames, len(nofail.Events))
	}
	// Goodput over produced frames, so losing the queue cannot be hidden
	// by a cleaner served set. The pinned scenario measures 0.9625 both
	// with and without the kill — same-boundary checkpoint recovery is
	// lossless here — and the margin leaves slack for Orin recalibration
	// without letting recovery quality collapse.
	goodput := func(r Report) float64 { return r.HitRate * float64(r.Frames) / float64(total) }
	t.Logf("goodput: chaos %.4f (lost %d), no-failure %.4f", goodput(chaos), chaos.LostFrames, goodput(nofail))
	if goodput(chaos) < goodput(nofail)-0.1 {
		t.Fatalf("recovery goodput %.4f collapsed against no-failure %.4f",
			goodput(chaos), goodput(nofail))
	}
	again := run(plan())
	if again.Frames != chaos.Frames || again.HitRate != chaos.HitRate ||
		again.EnergyMJ != chaos.EnergyMJ || again.LostFrames != chaos.LostFrames ||
		len(again.Migrations) != len(chaos.Migrations) {
		t.Fatalf("chaos run not deterministic: %d/%.6f/%.3f/%d/%d vs %d/%.6f/%.3f/%d/%d",
			again.Frames, again.HitRate, again.EnergyMJ, again.LostFrames, len(again.Migrations),
			chaos.Frames, chaos.HitRate, chaos.EnergyMJ, chaos.LostFrames, len(chaos.Migrations))
	}
}

// TestMembershipSurvivesBoardZero is the membership regression pin for
// the two latent dense-id bugs: per-board stats storage indexed by
// board id and the fleet clock read from boards[0]. Killing board 0
// mid-run and joining a new incarnation afterwards must leave a fleet
// whose ids are no longer dense-from-zero — and the run must still
// step its boundaries, recover the orphans and account every frame.
func TestMembershipSurvivesBoardZero(t *testing.T) {
	m := testModel(71)
	fleet := serve.SyntheticFleet(m.Cfg, 4, 16, 4, 71)
	f, err := New(m, Config{
		Boards:    2,
		Board:     boardConfig(orin.Mode60W, 1),
		Placement: LeastLoaded{},
		EpochMs:   250,
		Plan: &FailurePlan{Events: []FleetEvent{
			{Epoch: 2, Kind: Kill, Board: 0},
			{Epoch: 4, Kind: Join},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Run(fleet)
	if len(rep.Boards) != 3 {
		t.Fatalf("registry has %d incarnations, want 3 (two founders + one join)", len(rep.Boards))
	}
	if rep.Boards[0].LeaveEpoch != 2 {
		t.Fatalf("board 0 leave epoch %d, want 2", rep.Boards[0].LeaveEpoch)
	}
	if rep.Boards[2].JoinEpoch != 4 || rep.Boards[2].LeaveEpoch != -1 {
		t.Fatalf("joined board lifetime [%d, %d], want [4, -1]",
			rep.Boards[2].JoinEpoch, rep.Boards[2].LeaveEpoch)
	}
	// The fleet clock survived board 0's death: the surviving board kept
	// serving past the kill boundary (the 16-frame 4 FPS schedules run
	// to t=4 s, epoch 16, far past the kill at epoch 2).
	if rep.VirtualSeconds*1000 <= 3*250 {
		t.Fatalf("fleet stopped at %.3f s — the clock died with board 0", rep.VirtualSeconds)
	}
	served := 0
	for _, es := range rep.Boards[1].Report.Epochs {
		if es.Epoch > 2 {
			served += es.Served
		}
	}
	if served == 0 {
		t.Fatal("survivor served nothing after the kill boundary")
	}
	total := 0
	for _, src := range fleet {
		total += len(src.Frames)
	}
	if got := rep.Frames + rep.FramesDropped + rep.LostFrames; got != total {
		t.Fatalf("served %d + dropped %d + lost %d = %d frames, want %d",
			rep.Frames, rep.FramesDropped, rep.LostFrames, got, total)
	}
	if len(rep.Events) != 2 {
		t.Fatalf("%d events, want kill + join: %+v", len(rep.Events), rep.Events)
	}
	if ev := rep.Events[0]; ev.Recovered+ev.Cold != ev.Streams {
		t.Fatalf("kill outcome inconsistent: %+v", ev)
	}
}

// TestRollingUpgrade pins the elastic-membership story: join a fresh
// board, drain an old one — its streams evacuate live (nothing lost),
// the leaver retires and stops charging its rail, and the new
// incarnation takes over serving.
func TestRollingUpgrade(t *testing.T) {
	m := testModel(73)
	fleet := serve.SyntheticFleet(m.Cfg, 4, 24, 4, 73)
	f, err := New(m, Config{
		Boards:    2,
		Board:     boardConfig(orin.Mode60W, 1),
		Placement: LeastLoaded{},
		EpochMs:   250,
		Plan: &FailurePlan{Events: []FleetEvent{
			{Epoch: 2, Kind: Join},
			{Epoch: 3, Kind: Drain, Board: 0},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Run(fleet)
	total := 0
	for _, src := range fleet {
		total += len(src.Frames)
	}
	// Lossless: a graceful drain moves state live, so nothing is lost
	// and everything is served.
	if rep.LostFrames != 0 {
		t.Fatalf("rolling upgrade lost %d frames", rep.LostFrames)
	}
	if rep.Frames+rep.FramesDropped != total {
		t.Fatalf("served %d + dropped %d frames, want %d", rep.Frames, rep.FramesDropped, total)
	}
	evac, drained := 0, 0
	for _, mg := range rep.Migrations {
		if mg.Reason == Evacuate {
			evac++
			if mg.From != 0 || mg.Epoch != 3 {
				t.Fatalf("evacuation move %+v, want off board 0 at epoch 3", mg)
			}
			if mg.Drained {
				drained++
			}
		} else if mg.Drained {
			t.Fatalf("drain recorded on a %s move: %+v", mg.Reason, mg)
		}
	}
	if evac != 2 || drained != 1 {
		t.Fatalf("%d evacuation moves (%d drained), want 2 with the last drained", evac, drained)
	}
	// The leaver retired shortly after evacuating: rail accounted only
	// while it still had in-flight work.
	old := rep.Boards[0]
	if old.LeaveEpoch < 3 || old.LeaveEpoch > 6 {
		t.Fatalf("drained board retired at epoch %d, want shortly after the drain at 3", old.LeaveEpoch)
	}
	lastMs := 0.0
	for _, es := range old.Report.Epochs {
		if es.EndMs > lastMs {
			lastMs = es.EndMs
		}
	}
	if lastMs >= rep.VirtualSeconds*1000 {
		t.Fatalf("drained board charged its rail to the end of the run (%.0f ms of %.0f)",
			lastMs, rep.VirtualSeconds*1000)
	}
	// The joined incarnation inherited the evacuated streams and is
	// paying for its own rail.
	nb := rep.Boards[2]
	if nb.JoinEpoch != 2 || nb.MigratedIn < 1 || nb.Report.Frames == 0 {
		t.Fatalf("joined board: join epoch %d, %d migrated in, %d frames — never took over",
			nb.JoinEpoch, nb.MigratedIn, nb.Report.Frames)
	}
	if nb.Report.IdleEnergyMJ <= 0 {
		t.Fatalf("joined board charged no rail draw: %+v", nb.Report)
	}
	if rep.HitRate < 0.99 {
		t.Fatalf("rolling upgrade degraded service: hit rate %.4f", rep.HitRate)
	}
}
