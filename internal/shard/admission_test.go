package shard

import (
	"testing"
	"time"

	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/ufld"
)

// lateJoinFleet builds upfront streams plus late arrivals for the
// admission tests: nUp streams at upFPS from t=0, then nLate streams
// at lateFPS whose first frame lands at start (+100 ms per extra late
// stream, so they stay distinguishable but share an eligibility
// boundary).
func lateJoinFleet(m *ufld.Model, nUp, upFrames int, upFPS float64,
	nLate, lateFrames int, lateFPS float64, start time.Duration, seed uint64) []*stream.Source {
	scheds := make([]serve.StreamSchedule, 0, nUp+nLate)
	for i := 0; i < nUp; i++ {
		scheds = append(scheds, serve.StreamSchedule{Phases: []stream.RatePhase{{Frames: upFrames, FPS: upFPS}}})
	}
	for i := 0; i < nLate; i++ {
		scheds = append(scheds, serve.StreamSchedule{
			Start:  start + time.Duration(i)*100*time.Millisecond,
			Phases: []stream.RatePhase{{Frames: lateFrames, FPS: lateFPS}},
		})
	}
	return serve.SyntheticFleetSchedules(m.Cfg, scheds, seed)
}

// admissionConfig is the shared gate-test config: boards at 60 W with
// one worker, no governor ladder games, admission on.
func admissionConfig(boards int, adm *Admission) Config {
	return Config{
		Boards:    boards,
		Board:     boardConfig(orin.Mode60W, 1),
		Placement: LeastLoaded{},
		EpochMs:   250,
		Admission: adm,
	}
}

// TestAdmissionLossless: a fleet with forecast headroom admits a late
// camera at the boundary before its first frame — one epoch of
// lookahead — so nothing is dropped and its whole schedule is served.
func TestAdmissionLossless(t *testing.T) {
	m := testModel(111)
	fleet := lateJoinFleet(m, 2, 8, 2, 1, 8, 4, 2*time.Second, 111)
	f, err := New(m, admissionConfig(2, &Admission{}))
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Run(fleet)
	if len(rep.Admissions) != 1 {
		t.Fatalf("admissions %+v, want exactly one", rep.Admissions)
	}
	ar := rep.Admissions[0]
	if ar.Rejected || ar.Stream != 2 || ar.Board < 0 {
		t.Fatalf("late stream not admitted: %+v", ar)
	}
	if ar.Waited != 0 || ar.DroppedFrames != 0 {
		t.Fatalf("headroom admission must be lossless and immediate: %+v", ar)
	}
	if rep.AdmitDropped != 0 {
		t.Fatalf("admit-dropped %d, want 0", rep.AdmitDropped)
	}
	if rep.Streams[2].Frames != 8 {
		t.Fatalf("admitted stream served %d frames, want all 8", rep.Streams[2].Frames)
	}
}

// TestAdmissionQueuesUntilHeadroom: a late camera arriving into a full
// board waits at the gate — losing the frames that pass meanwhile —
// and is admitted once the upfront load drains and the forecast frees
// headroom.
func TestAdmissionQueuesUntilHeadroom(t *testing.T) {
	m := testModel(113)
	// Two 20 FPS cameras on one 60 W worker: forecast utilization
	// ~10 × 13.5 ms / 250 ms ≈ 0.54, over the 0.5 ceiling, until they
	// end at t=2 s. The late camera (16 frames at 4 FPS from t=1 s,
	// ending t=4.75 s) must wait out the saturation.
	fleet := lateJoinFleet(m, 2, 40, 20, 1, 16, 4, time.Second, 113)
	f, err := New(m, admissionConfig(1, &Admission{}))
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Run(fleet)
	if len(rep.Admissions) != 1 {
		t.Fatalf("admissions %+v, want exactly one", rep.Admissions)
	}
	ar := rep.Admissions[0]
	if ar.Rejected {
		t.Fatalf("queued stream was shed: %+v", ar)
	}
	if ar.Waited < 1 || ar.DroppedFrames < 1 {
		t.Fatalf("full fleet must make the stream wait and drop passing frames: %+v", ar)
	}
	if got := rep.Streams[2].Frames; got != 16-ar.DroppedFrames {
		t.Fatalf("admitted stream served %d frames, want %d (16 minus %d dropped at the gate)",
			got, 16-ar.DroppedFrames, ar.DroppedFrames)
	}
	total := 0
	for _, src := range fleet {
		total += len(src.Frames)
	}
	if got := rep.Frames + rep.FramesDropped + rep.AdmitDropped; got != total {
		t.Fatalf("conservation: served %d + dropped %d + admit-dropped %d = %d, want %d",
			rep.Frames, rep.FramesDropped, rep.AdmitDropped, got, total)
	}
}

// TestAdmissionShedAndQueueCap: with the shed policy a no-headroom
// arrival is rejected outright; with a queue cap the overflow waiter
// is shed while the one under the cap is eventually admitted.
func TestAdmissionShedAndQueueCap(t *testing.T) {
	m := testModel(115)
	t.Run("shed", func(t *testing.T) {
		fleet := lateJoinFleet(m, 2, 40, 20, 1, 16, 4, time.Second, 115)
		f, err := New(m, admissionConfig(1, &Admission{Shed: true}))
		if err != nil {
			t.Fatal(err)
		}
		rep := f.Run(fleet)
		if len(rep.Admissions) != 1 || !rep.Admissions[0].Rejected || rep.Admissions[0].Board != -1 {
			t.Fatalf("shed policy must reject at first sight: %+v", rep.Admissions)
		}
		if rep.AdmitDropped != 16 {
			t.Fatalf("admit-dropped %d, want the whole 16-frame schedule", rep.AdmitDropped)
		}
		if rep.Streams[2].Frames != 0 {
			t.Fatalf("shed stream served %d frames, want 0", rep.Streams[2].Frames)
		}
	})
	t.Run("queue-cap", func(t *testing.T) {
		fleet := lateJoinFleet(m, 2, 40, 20, 2, 16, 4, time.Second, 117)
		f, err := New(m, admissionConfig(1, &Admission{Queue: 1}))
		if err != nil {
			t.Fatal(err)
		}
		rep := f.Run(fleet)
		admitted, rejected := 0, 0
		for _, ar := range rep.Admissions {
			if ar.Rejected {
				rejected++
			} else {
				admitted++
			}
		}
		if admitted != 1 || rejected != 1 {
			t.Fatalf("queue cap 1 with two waiters: %d admitted, %d rejected (%+v), want 1 and 1",
				admitted, rejected, rep.Admissions)
		}
	})
}

// TestRebalanceAcrossGroups pins the top-level fleet placer: two
// saturated boards alone in their group (no in-group destination has
// headroom) while the other group idles is exactly the spread only the
// cross-group rebalancer can fix.
func TestRebalanceAcrossGroups(t *testing.T) {
	m := testModel(119)
	// RoundRobin: streams 0,1 (16 FPS, saturating a 15 W worker ~4 ×
	// 72.5 ms per 250 ms epoch) land on boards 0,1 = group 0; streams
	// 2,3 (2 FPS trickles) on boards 2,3 = group 1.
	scheds := make([]serve.StreamSchedule, 4)
	for i := range scheds {
		if i < 2 {
			scheds[i] = serve.StreamSchedule{Phases: []stream.RatePhase{{Frames: 40, FPS: 16}}}
		} else {
			scheds[i] = serve.StreamSchedule{Phases: []stream.RatePhase{{Frames: 8, FPS: 2}}}
		}
	}
	fleet := serve.SyntheticFleetSchedules(m.Cfg, scheds, 119)
	f, err := New(m, Config{
		Boards:    4,
		Board:     boardConfig(orin.Mode15W, 1),
		Placement: RoundRobin{},
		Governor:  "hysteresis",
		BudgetW:   15,
		EpochMs:   250,
		Migrate:   true,
		GroupSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Run(fleet)
	found := false
	for _, mg := range rep.Migrations {
		if mg.Reason != Rebalance {
			continue
		}
		found = true
		if mg.From > 1 || mg.To < 2 {
			t.Fatalf("rebalance move %+v, want hot group {0,1} → cold group {2,3}", mg)
		}
	}
	if !found {
		t.Fatalf("cross-group spread never rebalanced: %+v", rep.Migrations)
	}
}
