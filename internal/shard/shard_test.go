package shard

import (
	"testing"
	"time"

	"ldbnadapt/internal/adapt"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func testModel(seed uint64) *ufld.Model {
	cfg := ufld.Tiny(resnet.R18, 2)
	return ufld.MustNewModel(cfg, tensor.NewRNG(seed))
}

func boardConfig(mode orin.PowerMode, workers int) serve.Config {
	return serve.Config{
		Workers:    workers,
		MaxBatch:   8,
		Window:     2 * time.Millisecond,
		AdaptEvery: 4,
		Adapt:      adapt.DefaultConfig(),
		Mode:       mode,
		DeadlineMs: orin.Deadline18FPS,
	}
}

// TestFleetServesEveryFrame: an underloaded two-board fleet serves
// every frame of every stream exactly once, maps board-local reports
// back to fleet stream ids, and strands the capacity it does not use.
func TestFleetServesEveryFrame(t *testing.T) {
	m := testModel(51)
	fleet := serve.SyntheticFleet(m.Cfg, 4, 10, 5, 51)
	f, err := New(m, Config{
		Boards:    2,
		Board:     boardConfig(orin.Mode60W, 1),
		Placement: RoundRobin{},
		EpochMs:   500,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Run(fleet)
	if rep.Frames != 40 {
		t.Fatalf("fleet served %d frames, want 40", rep.Frames)
	}
	if len(rep.Boards) != 2 || len(rep.Streams) != 4 {
		t.Fatalf("report shape: %d boards, %d streams", len(rep.Boards), len(rep.Streams))
	}
	for gi, ss := range rep.Streams {
		if ss.Frames != 10 || ss.Boards != 1 {
			t.Fatalf("stream %d: %d frames on %d boards, want 10 on 1", gi, ss.Frames, ss.Boards)
		}
	}
	if rep.HitRate != 1 {
		t.Fatalf("underloaded fleet hit rate %.3f, want 1", rep.HitRate)
	}
	if len(rep.Migrations) != 0 {
		t.Fatalf("migration disabled but %d migrations recorded", len(rep.Migrations))
	}
	if rep.StrandedMs <= 0 {
		t.Fatalf("underloaded fleet stranded %.1f worker-ms, want > 0", rep.StrandedMs)
	}
	if rep.EnergyMJ <= 0 || rep.EnergyMJ != rep.BusyEnergyMJ+rep.IdleEnergyMJ {
		t.Fatalf("energy accounting inconsistent: %+v", rep)
	}
}

// migrationScenario builds the deterministic saturation workload: a
// genuine forecast miss through trend reversal. Four cameras open at a
// moderate 10 FPS — the admission-epoch rate ForecastLoads seeds
// placement with — so BinPack packs them two per board and leaves
// boards 2–3 dark. They then ramp down to a 2 FPS lull (the live
// forecasts dutifully follow the trend down) before reversing hard to
// a sustained 20 FPS, which no causal forecaster fed the lull could
// predict. Two 20 FPS cameras are nearly 2× one 30 W worker's
// capacity — far more than shedding can absorb — while each stream
// alone fits one board. Budget 30 W caps the ladder, so the packed
// boards' governors pin at 30 W, keep missing, and only migration to
// the dark boards can restore service.
func migrationScenario(seed uint64) (*ufld.Model, []*stream.Source, Config) {
	m := testModel(seed)
	scheds := make([]serve.StreamSchedule, 4)
	for i := range scheds {
		scheds[i] = serve.StreamSchedule{Phases: []stream.RatePhase{
			{Frames: 12, FPS: 10},
			{Frames: 10, FPS: 2},
			{Frames: 60, FPS: 20},
		}}
	}
	fleet := serve.SyntheticFleetSchedules(m.Cfg, scheds, seed+100)
	cfg := Config{
		Boards:    4,
		Board:     boardConfig(orin.Mode30W, 1),
		Placement: BinPack{},
		Governor:  "hysteresis",
		BudgetW:   30,
		EpochMs:   250,
	}
	return m, fleet, cfg
}

// TestMigrationRescuesSaturatedBoard is the migration regression pin:
// on the packed scenario the coordinator must actually migrate, the
// migrated stream must be served by both boards, and the fleet
// deadline-hit rate must beat the no-migration run of the same
// workload — deterministically.
func TestMigrationRescuesSaturatedBoard(t *testing.T) {
	run := func(migrate bool) Report {
		m, fleet, cfg := migrationScenario(53)
		cfg.Migrate = migrate
		f, err := New(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f.Run(fleet)
	}
	mig := run(true)
	if len(mig.Migrations) < 1 {
		t.Fatal("saturated board never migrated")
	}
	for _, mg := range mig.Migrations {
		if mg.Reason != Saturate {
			t.Fatalf("consolidation disabled but migration %+v recorded", mg)
		}
	}
	moved := mig.Migrations[0].Stream
	if ss := mig.Streams[moved]; ss.Boards != 2 {
		t.Fatalf("migrated stream %d served by %d boards, want 2", moved, ss.Boards)
	}
	if testing.Short() {
		// One fleet run already exercises every concurrent path (the race
		// target's concern); the no-migrate comparison and determinism
		// rerun below are seeded acceptance pins make test still covers.
		return
	}
	still := run(false)
	if len(still.Migrations) != 0 {
		t.Fatalf("no-migrate run recorded %d migrations", len(still.Migrations))
	}
	if mig.Frames < still.Frames {
		t.Fatalf("migrated run served %d frames, fewer than %d without", mig.Frames, still.Frames)
	}
	// Goodput over arrived frames, so a no-migrate run that escalates to
	// DropFrames cannot win by shedding its way to a clean served set.
	goodput := func(r Report) float64 { return r.HitRate * float64(r.Frames) / 328 }
	if goodput(mig) <= goodput(still) {
		t.Fatalf("migration did not improve service: goodput %.3f vs %.3f without",
			goodput(mig), goodput(still))
	}
	// The pinned scenario measures goodput 0.896 vs 0.829: the int8
	// inference rung lets even the no-migrate run partially rescue its
	// saturated board, so the migration margin is slimmer than it was
	// when shedding was the only relief. 0.05 leaves slack for Orin
	// recalibration without letting migration regress to a no-op.
	if goodput(mig) < goodput(still)+0.05 {
		t.Fatalf("migration gain collapsed: goodput %.3f vs %.3f without",
			goodput(mig), goodput(still))
	}
	// The trend reversal must be what saturates: ForecastLoads' seeds
	// (the 10 FPS opening) pack the fleet two per board, leaving two
	// boards dark until migration opens them.
	dark := 0
	for _, br := range still.Boards {
		if br.Report.Frames == 0 {
			dark++
		}
	}
	if dark != 2 {
		t.Fatalf("placement left %d boards dark, want 2 — admission seeds changed", dark)
	}
	boardsIn := mig.Boards[mig.Migrations[0].To]
	if boardsIn.MigratedIn != len(mig.Migrations) && mig.Boards[0].MigratedOut == 0 {
		t.Fatalf("migration bookkeeping inconsistent: %+v", mig.Migrations)
	}
	// Seeded determinism: the virtual accounting must reproduce exactly.
	again := run(true)
	if again.Frames != mig.Frames || again.HitRate != mig.HitRate ||
		again.EnergyMJ != mig.EnergyMJ || len(again.Migrations) != len(mig.Migrations) {
		t.Fatalf("sharded run not deterministic: %d/%.6f/%.3f/%d vs %d/%.6f/%.3f/%d",
			again.Frames, again.HitRate, again.EnergyMJ, len(again.Migrations),
			mig.Frames, mig.HitRate, mig.EnergyMJ, len(mig.Migrations))
	}
}

// TestFourSmallBeatOneBigStatic is the headline acceptance pin (see
// examples/sharding): on the reference bursty fleet, four governed
// single-worker boards — bin-packed so one board starts dark and
// migration opens it under saturation — must beat one static
// four-worker board sized offline for the mean load (30 W) on
// deadline-hit rate, at comparable total energy. The static board's
// mean-sized mode saturates in every burst; the governed boards climb
// their own ladders just for the bursts and park low through lulls.
//
// The pinned scenario measures hit 0.56 vs 0.32 at 1.36× the energy;
// the thresholds leave slack for Orin recalibration without letting
// either axis of the claim collapse.
func TestFourSmallBeatOneBigStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance pin over two full fleet runs; concurrency is covered by the migration tests")
	}
	m := testModel(59)
	fleet := serve.BurstyFleet(m.Cfg, 8, 2, 6, 24, 2, 30, 59)
	total := 0
	for _, src := range fleet {
		total += len(src.Frames)
	}
	big, err := New(m, Config{
		Boards:  1,
		Board:   boardConfig(orin.Mode30W, 4),
		EpochMs: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	// BinPack 0.15 over ForecastLoads' admission-epoch seeds (every
	// camera opens in its 2 FPS lull, ~0.05 worker-share each) packs
	// three streams per board and leaves the fourth board dark.
	small, err := New(m, Config{
		Boards:    4,
		Board:     boardConfig(orin.Mode60W, 1),
		Placement: BinPack{Target: 0.15},
		Governor:  "hysteresis",
		EpochMs:   250,
		Migrate:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	bigRep := big.Run(fleet)
	smallRep := small.Run(fleet)
	if smallRep.Frames != total || bigRep.Frames != total {
		t.Fatalf("deployments shed frames: %d and %d served of %d", smallRep.Frames, bigRep.Frames, total)
	}
	if smallRep.HitRate < bigRep.HitRate+0.15 {
		t.Fatalf("4 governed boards hit %.3f, not clearly above 1 static board's %.3f",
			smallRep.HitRate, bigRep.HitRate)
	}
	// "Comparable" energy: within 1.5× of the static board — the shards
	// pay four rails, but only while their boards are open.
	if smallRep.EnergyMJ >= 1.5*bigRep.EnergyMJ {
		t.Fatalf("4 governed boards spent %.0f mJ vs static board's %.0f mJ — not comparable",
			smallRep.EnergyMJ, bigRep.EnergyMJ)
	}
	// The bin-packed fleet starts with a dark board that only migration
	// can open; the last board serving frames is the sharding story.
	if len(smallRep.Migrations) < 1 {
		t.Fatal("bin-packed fleet never migrated under saturation")
	}
	opened := smallRep.Boards[len(smallRep.Boards)-1]
	if opened.MigratedIn < 1 || opened.Report.Frames == 0 {
		t.Fatalf("dark board never opened: %d migrated in, %d frames", opened.MigratedIn, opened.Report.Frames)
	}
}
