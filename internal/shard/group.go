package shard

import "sort"

// Group placers. Boards partition into placement groups of
// Config.GroupSize (founding board i belongs to group i/GroupSize;
// joins land in the emptiest group). Saturation migration and lull
// consolidation run inside a per-group placer — their scoring scans
// O(group) boards, not O(fleet) — and a top-level fleet placer watches
// the groups' aggregated forecast load, moving a stream across groups
// only when the spread between the hottest and coolest group is one no
// per-group placer can see. Failover re-admission and drain evacuation
// prefer the displaced board's own group and fall back to the whole
// fleet when the group has no eligible survivor: a recovered stream
// anywhere beats a stream served nowhere.

// groupView buckets the live boards by placement group, registry order
// preserved within each group, indexed by group id (gaps are empty
// slices). For a single-group fleet the one bucket is exactly the old
// flat coordinator's live-board scan, which is what keeps the group
// placers' decisions pinned to the lockstep reference.
func (r *runCtx) groupView() [][]*board {
	var out [][]*board
	for _, b := range r.boards {
		if !b.alive {
			continue
		}
		for len(out) <= b.group {
			out = append(out, nil)
		}
		out[b.group] = append(out[b.group], b)
	}
	return out
}

// assignGroup picks the placement group for a board joining mid-run:
// the group with the fewest live members (ties to the lowest id), or a
// fresh group when every existing one is full.
func (r *runCtx) assignGroup() int {
	var counts []int
	for _, b := range r.boards {
		if !b.alive {
			continue
		}
		for len(counts) <= b.group {
			counts = append(counts, 0)
		}
		counts[b.group]++
	}
	best := -1
	for g, n := range counts {
		if n < r.f.cfg.GroupSize && (best < 0 || n < counts[best]) {
			best = g
		}
	}
	if best < 0 {
		return len(counts)
	}
	return best
}

// runGroups runs one boundary of the placement hierarchy: each group's
// placer migrates and consolidates within its own boards, then the
// top-level placer checks the cross-group spread. Consolidation waits
// out boundaries whose group just moved streams (for saturation,
// failover or evacuation): the migrants' forecasts are not yet in any
// board's telemetry, so packing decisions this boundary would run on a
// stale picture of the group.
func (f *Fleet) runGroups(r *runCtx, epoch int) {
	groups := r.groupView()
	for _, grp := range groups {
		if len(grp) == 0 {
			continue
		}
		moved := len(r.migrations)
		if f.cfg.Migrate {
			r.migrations = f.migrate(grp, r.home, r.lastSat, epoch, r.migrations)
		}
		if f.cfg.Consolidate && len(r.migrations) == moved {
			r.migrations = f.consolidate(grp, r.home, r.lastSat, r.lastCon, r.peak, epoch, r.migrations)
		}
	}
	if f.cfg.Migrate {
		r.rebalance(groups, epoch)
	}
}

// rebalance is the top-level fleet placer. It never looks at
// individual streams across the fleet — only at each group's mean
// forecast utilization — and acts when the hottest group's mean
// clears the saturation ceiling while trailing the coolest group by at
// least RebalanceGap: an imbalance the per-group placers are blind to
// because neither group has both ends of it. One stream moves per
// boundary (the hottest eligible stream of the hot group's hottest
// board onto the cool group's least-loaded board with headroom), so
// group telemetry catches up between moves.
func (r *runCtx) rebalance(groups [][]*board, epoch int) {
	f := r.f
	type gload struct {
		id   int
		mean float64
	}
	var loads []gload
	for gi, grp := range groups {
		n, sum := 0, 0.0
		for _, b := range grp {
			if b.leaving {
				continue
			}
			n++
			sum += f.forecastUtil(b)
		}
		if n > 0 {
			loads = append(loads, gload{id: gi, mean: sum / float64(n)})
		}
	}
	if len(loads) < 2 {
		return
	}
	sort.SliceStable(loads, func(i, j int) bool { return loads[i].mean < loads[j].mean })
	hot, cold := loads[len(loads)-1], loads[0]
	if hot.mean < f.cfg.MaxUtil || hot.mean-cold.mean < f.cfg.RebalanceGap {
		return
	}
	var src *board
	for _, b := range groups[hot.id] {
		if b.leaving {
			continue
		}
		if src == nil || f.forecastUtil(b) > f.forecastUtil(src) {
			src = b
		}
	}
	var dst *board
	for _, b := range groups[cold.id] {
		if b.leaving || f.forecastUtil(b) >= f.cfg.MaxUtil || f.saturated(b) {
			continue
		}
		if dst == nil || f.forecastUtil(b) < f.forecastUtil(dst) {
			dst = b
		}
	}
	if src == nil || dst == nil {
		return
	}
	gid := f.hottest(src, r.home, r.lastSat, epoch)
	if gid < 0 {
		return
	}
	shed := streamForecast(src, gid)
	var ok bool
	r.migrations, ok = f.move(src, dst, gid, r.home, epoch, Rebalance, r.migrations)
	if !ok {
		return
	}
	f.energize(dst, shed)
	r.lastSat[gid] = epoch
}
