// Package shard scales the governed serving engine from one Orin
// board to a fleet of them: a coordinator owns N boards — each a full
// serve engine with its own power ladder and govern controller —
// places camera streams onto boards, steps every board through shared
// control epochs, and migrates the hottest stream off a board whose
// governor is pinned at its top rung while still missing deadlines.
// Migration preserves the stream's adaptation state (BN statistics,
// γ/β, optimizer moments, open window) across the move via
// serve.Session handoffs, so it is also the "stream re-join with
// state" checkpoint: a leave on one board and a rejoin on another.
//
// Placement is the classic machine-scheduling problem (minimize
// makespan over identical machines, cf. arXiv:math/0312216) lifted to
// the governed setting: each machine has a power ladder and a
// closed-loop controller, so a placement that looks balanced by mean
// load can still pin one board at MAXN through every burst while
// another sleeps — which is what saturation-driven migration corrects
// online.
package shard

import (
	"fmt"
	"sort"

	"ldbnadapt/internal/forecast"
	"ldbnadapt/internal/stream"
)

// Placement assigns streams to boards from forecast per-stream load.
type Placement interface {
	// Name labels the policy in reports and CLIs.
	Name() string
	// Place returns a board index in [0, boards) for every stream.
	// loads[i] is stream i's forecast utilization share of one worker
	// (mean arrival rate × per-frame cost); a board's capacity is
	// workersPerBoard such shares.
	Place(loads []float64, boards, workersPerBoard int) []int
}

// ForecastLoads estimates each stream's utilization share of one
// worker for placement: a fresh forecaster (the same model the live
// control plane runs) is seeded with the stream's admission-epoch
// arrival count — the only observation an online admission controller
// has; the whole-run mean the old estimator used assumes a replay
// oracle — and its prediction is priced at frameMs per frame (the
// zero-queue steady-state per-frame cost,
// serve.Engine.FrameLatencyMs(1) at the board's configured mode) over
// an epochMs control epoch. From the first boundary on, live
// per-stream forecasts in serve.EpochStats supersede these seeds for
// migration and consolidation scoring; a stream whose rate later
// reverses trend is exactly the forecast miss migration exists to fix.
func ForecastLoads(sources []*stream.Source, frameMs, epochMs float64, mk forecast.Factory) []float64 {
	loads := make([]float64, len(sources))
	for i, s := range sources {
		if len(s.Frames) == 0 || epochMs <= 0 {
			continue
		}
		first := float64(s.Frames[0].Arrival) / 1e6
		n := 0
		for _, fr := range s.Frames {
			if float64(fr.Arrival)/1e6 >= first+epochMs {
				break
			}
			n++
		}
		fc := mk()
		fc.Observe(float64(n))
		loads[i] = fc.Forecast() * frameMs / epochMs
	}
	return loads
}

// RoundRobin deals streams across boards in id order — the baseline
// that ignores load entirely.
type RoundRobin struct{}

// Name implements Placement.
func (RoundRobin) Name() string { return "round-robin" }

// Place implements Placement.
func (RoundRobin) Place(loads []float64, boards, _ int) []int {
	out := make([]int, len(loads))
	for i := range out {
		out[i] = i % boards
	}
	return out
}

// LeastLoaded is longest-processing-time-first greedy scheduling:
// streams in descending forecast load, each onto the currently
// least-loaded board. The classic 4/3-approximation to the optimal
// makespan on identical machines.
type LeastLoaded struct{}

// Name implements Placement.
func (LeastLoaded) Name() string { return "least-loaded" }

// Place implements Placement.
func (LeastLoaded) Place(loads []float64, boards, _ int) []int {
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })
	out := make([]int, len(loads))
	acc := make([]float64, boards)
	for _, si := range order {
		best := 0
		for b := 1; b < boards; b++ {
			if acc[b] < acc[best] {
				best = b
			}
		}
		out[si] = best
		acc[best] += loads[si]
	}
	return out
}

// BinPack fills boards to a utilization target before opening the
// next: board k+1 receives its first stream only once board k's
// forecast utilization has reached Target. Consolidating load onto few
// boards minimizes the fleet's static rail draw (empty boards sleep) —
// at the price of saturating the packed boards when the forecast
// underestimates, which is the scenario migration handles.
type BinPack struct {
	// Target is the fill utilization per board (fraction of
	// workersPerBoard worker-capacity; default 0.7).
	Target float64
}

// Name implements Placement.
func (BinPack) Name() string { return "bin-pack" }

func (p BinPack) target() float64 {
	if p.Target > 0 {
		return p.Target
	}
	return 0.7
}

// Place implements Placement.
func (p BinPack) Place(loads []float64, boards, workersPerBoard int) []int {
	cap := p.target() * float64(workersPerBoard)
	out := make([]int, len(loads))
	acc := make([]float64, boards)
	k := 0
	for i, l := range loads {
		for k < boards-1 && acc[k] >= cap {
			k++
		}
		if acc[k] >= cap {
			// Every board is at target: overflow to the least loaded.
			k = 0
			for b := 1; b < boards; b++ {
				if acc[b] < acc[k] {
					k = b
				}
			}
		}
		out[i] = k
		acc[k] += l
	}
	return out
}

// ParsePlacement resolves a placement policy by CLI name.
func ParsePlacement(name string) (Placement, error) {
	switch name {
	case "round-robin":
		return RoundRobin{}, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "bin-pack":
		return BinPack{}, nil
	}
	return nil, fmt.Errorf("shard: unknown placement %q (have round-robin/least-loaded/bin-pack)", name)
}
