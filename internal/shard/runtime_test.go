package shard

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"ldbnadapt/internal/obs"
	"ldbnadapt/internal/orin"
	"ldbnadapt/internal/serve"
	"ldbnadapt/internal/stream"
	"ldbnadapt/internal/ufld"
)

// normalizeReport zeroes every host-wall-clock field in a fleet report
// so two runs of the same seeded workload can be compared for exact
// virtual-semantics equality: all scheduling, accounting and placement
// is virtual-time deterministic, only the host timings differ.
func normalizeReport(rep *Report) {
	rep.WallSeconds, rep.CoordSeconds = 0, 0
	for i := range rep.Boards {
		rep.Boards[i].Report.WallSeconds = 0
		rep.Boards[i].Report.ThroughputFPS = 0
	}
}

// scaleScenario is the hierarchical-runtime reference workload: 16
// boards in groups of 4, 32 shared-scene streams of which every fourth
// comes online two seconds late (exercising the admission gate), a
// mid-run kill and a join (exercising group-scoped failover and join
// group assignment), checkpoints, migration and consolidation — every
// layer of the runtime in one run small enough for the race detector.
func scaleScenario(seed uint64) (*ufld.Model, []*stream.Source, Config) {
	m := testModel(seed)
	fleet := serve.SyntheticFleetShared(m.Cfg, 32, 4, 8, seed)
	for i, src := range fleet {
		if i%4 == 0 {
			for k := range src.Frames {
				src.Frames[k].Arrival += 2 * time.Second
			}
		}
	}
	cfg := Config{
		Boards:          16,
		Board:           boardConfig(orin.Mode30W, 1),
		Placement:       LeastLoaded{},
		Governor:        "hysteresis",
		EpochMs:         250,
		Migrate:         true,
		Consolidate:     true,
		GroupSize:       4,
		Admission:       &Admission{},
		CheckpointEvery: 2,
		Plan: &FailurePlan{Events: []FleetEvent{
			{Epoch: 1, Kind: Kill, Board: HottestBoard},
			{Epoch: 2, Kind: Join},
		}},
	}
	return m, fleet, cfg
}

// TestConcurrentMatchesLockstep is the equivalence pin the tentpole is
// gated on: on every pinned fleet the concurrent runtime must
// reproduce the serial lockstep coordinator's Report exactly —
// per-board serve reports, migration and event traces, admissions,
// energy, everything but host wall time.
func TestConcurrentMatchesLockstep(t *testing.T) {
	scenarios := []struct {
		name  string
		build func() (*ufld.Model, []*stream.Source, Config)
	}{
		{"migration", func() (*ufld.Model, []*stream.Source, Config) {
			m, fleet, cfg := migrationScenario(53)
			cfg.Migrate = true
			return m, fleet, cfg
		}},
		{"chaos", func() (*ufld.Model, []*stream.Source, Config) {
			m, fleet := chaosScenario(67)
			cfg := chaosConfig(&FailurePlan{Events: []FleetEvent{{Epoch: 8, Kind: Kill, Board: HottestBoard}}})
			return m, fleet, cfg
		}},
		{"rolling-upgrade", func() (*ufld.Model, []*stream.Source, Config) {
			m := testModel(73)
			fleet := serve.SyntheticFleet(m.Cfg, 4, 24, 4, 73)
			cfg := Config{
				Boards:    2,
				Board:     boardConfig(orin.Mode60W, 1),
				Placement: LeastLoaded{},
				EpochMs:   250,
				Plan: &FailurePlan{Events: []FleetEvent{
					{Epoch: 2, Kind: Join},
					{Epoch: 3, Kind: Drain, Board: 0},
				}},
			}
			return m, fleet, cfg
		}},
		{"scale", func() (*ufld.Model, []*stream.Source, Config) {
			return scaleScenario(91)
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			if testing.Short() && sc.name != "scale" {
				// The scale scenario alone exercises every concurrent path
				// (the race target's concern); the rest are seeded
				// acceptance pins make test still runs.
				t.Skip("equivalence pins run without -short")
			}
			run := func(lockstep bool) (Report, []byte) {
				m, fleet, cfg := sc.build()
				cfg.Lockstep = lockstep
				cfg.Trace = obs.NewTrace()
				f, err := New(m, cfg)
				if err != nil {
					t.Fatal(err)
				}
				rep := f.Run(fleet)
				normalizeReport(&rep)
				var trace bytes.Buffer
				if err := cfg.Trace.WriteChromeJSON(&trace); err != nil {
					t.Fatal(err)
				}
				return rep, trace.Bytes()
			}
			ref, refTrace := run(true)
			got, gotTrace := run(false)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("concurrent runtime diverged from lockstep reference:\nlockstep:   %+v\nconcurrent: %+v", ref, got)
			}
			// The merged trace is pinned byte-identical too: every span and
			// instant is stamped on the virtual clock and the barrier merge
			// is order-deterministic, so concurrency must not reorder a
			// single byte of the export.
			if !bytes.Equal(refTrace, gotTrace) {
				t.Fatalf("concurrent trace diverged from lockstep (lockstep %d bytes, concurrent %d bytes)",
					len(refTrace), len(gotTrace))
			}
			if len(refTrace) <= len("{\"traceEvents\":[]}\n") {
				t.Fatal("trace is empty — the run emitted nothing")
			}
		})
	}
}

// TestConcurrentRerunDeterministic pins that the concurrent runtime is
// deterministic against itself: two runs of the full-stack scale
// scenario produce identical reports, so host goroutine scheduling
// never leaks into fleet decisions.
func TestConcurrentRerunDeterministic(t *testing.T) {
	run := func() (Report, []byte) {
		m, fleet, cfg := scaleScenario(97)
		cfg.Trace = obs.NewTrace()
		f, err := New(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := f.Run(fleet)
		normalizeReport(&rep)
		var trace bytes.Buffer
		if err := cfg.Trace.WriteChromeJSON(&trace); err != nil {
			t.Fatal(err)
		}
		return rep, trace.Bytes()
	}
	a, aTrace := run()
	// The scale scenario's membership churn must surface in the trace
	// as control-plane instants (with this seed the killed board homes
	// no recoverable stream, so failover re-homes are exercised by the
	// chaos smoke instead).
	for _, want := range []string{`"kill"`, `"join"`, `"migrate"`, `"checkpoint"`, `"admit"`, `"govern"`} {
		if !bytes.Contains(aTrace, []byte(want)) {
			t.Fatalf("trace is missing %s instants", want)
		}
	}
	if testing.Short() {
		t.Skip("determinism rerun runs without -short")
	}
	b, bTrace := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("concurrent rerun diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	if !bytes.Equal(aTrace, bTrace) {
		t.Fatal("concurrent rerun produced a different trace byte stream")
	}
}

// TestFleetRuntimeAtScale drives the concurrent runtime at 16 boards
// with every layer live — actors, group placers, admission, failover —
// and checks global frame conservation: every produced frame is
// served, shed, lost in the killed board's queue, or dropped at the
// admission gate. It runs under -short on purpose: this is the ≥16
// board workload `make race` holds the actor protocol to.
func TestFleetRuntimeAtScale(t *testing.T) {
	m, fleet, cfg := scaleScenario(91)
	f, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Run(fleet)
	total := 0
	for _, src := range fleet {
		total += len(src.Frames)
	}
	if got := rep.Frames + rep.FramesDropped + rep.LostFrames + rep.AdmitDropped; got != total {
		t.Fatalf("conservation: served %d + dropped %d + lost %d + admit-dropped %d = %d, want %d",
			rep.Frames, rep.FramesDropped, rep.LostFrames, rep.AdmitDropped, got, total)
	}
	if rep.FleetEpochs <= 0 {
		t.Fatalf("fleet stepped %d epochs", rep.FleetEpochs)
	}
	if len(rep.Admissions) == 0 {
		t.Fatal("late streams never hit the admission gate")
	}
	admitted := 0
	for _, ar := range rep.Admissions {
		if !ar.Rejected {
			admitted++
			if ar.Board < 0 {
				t.Fatalf("admitted stream with no board: %+v", ar)
			}
		}
	}
	if admitted == 0 {
		t.Fatal("no late stream was ever admitted")
	}
	groups := make(map[int]int)
	for _, br := range rep.Boards {
		groups[br.Group]++
	}
	if len(groups) != 4 {
		t.Fatalf("16 boards in groups of 4 formed %d groups (+1 join): %v", len(groups), groups)
	}
}

// TestJoinGroupAssignment pins the membership side of the hierarchy: a
// board joining mid-run lands in the group with the fewest live
// members — here the group the kill left one short.
func TestJoinGroupAssignment(t *testing.T) {
	m, fleet, cfg := scaleScenario(103)
	f, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Run(fleet)
	var killed, joined *BoardReport
	for i := range rep.Boards {
		br := &rep.Boards[i]
		if br.JoinEpoch > 0 {
			joined = br
		}
	}
	for _, ev := range rep.Events {
		if ev.Kind == Kill {
			killed = &rep.Boards[ev.Board]
		}
	}
	if killed == nil || joined == nil {
		t.Fatalf("scenario must kill and join (events %+v)", rep.Events)
	}
	if joined.Group != killed.Group {
		t.Fatalf("joined board landed in group %d, want the kill-shrunk group %d", joined.Group, killed.Group)
	}
}
