package shard

import (
	"math/rand"
	"testing"
)

// TestBinPackNeverOpensEarly is the placement property pin: BinPack
// must never open board k+1 while board k is below the fill target —
// across random load vectors, every board left of the last used one
// ends at or above target utilization.
func TestBinPackNeverOpensEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		boards := 1 + rng.Intn(6)
		workers := 1 + rng.Intn(4)
		target := 0.2 + rng.Float64()
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = rng.Float64() * 1.5
		}
		p := BinPack{Target: target}
		assign := p.Place(loads, boards, workers)
		acc := make([]float64, boards)
		used := 0
		for i, b := range assign {
			if b < 0 || b >= boards {
				t.Fatalf("trial %d: stream %d assigned to board %d of %d", trial, i, b, boards)
			}
			acc[b] += loads[i]
			if b > used {
				used = b
			}
		}
		cap := target * float64(workers)
		for k := 0; k < used; k++ {
			if acc[k] < cap {
				t.Fatalf("trial %d: board %d filled to %.3f below target %.3f while board %d is open",
					trial, k, acc[k], cap, used)
			}
		}
	}
}

// TestLeastLoadedGreedyBound: LPT's max board load never exceeds the
// mean load plus one stream — the classic greedy guarantee — and the
// assignment is deterministic.
func TestLeastLoadedGreedyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		boards := 1 + rng.Intn(6)
		loads := make([]float64, n)
		total, maxLoad := 0.0, 0.0
		for i := range loads {
			loads[i] = rng.Float64()
			total += loads[i]
			if loads[i] > maxLoad {
				maxLoad = loads[i]
			}
		}
		a := LeastLoaded{}.Place(loads, boards, 1)
		b := LeastLoaded{}.Place(loads, boards, 1)
		acc := make([]float64, boards)
		for i, bi := range a {
			if bi != b[i] {
				t.Fatalf("trial %d: placement not deterministic at stream %d", trial, i)
			}
			acc[bi] += loads[i]
		}
		bound := total/float64(boards) + maxLoad + 1e-9
		for k, l := range acc {
			if l > bound {
				t.Fatalf("trial %d: board %d load %.3f exceeds greedy bound %.3f", trial, k, l, bound)
			}
		}
	}
}

// TestRoundRobinAndParse covers the trivial policy and the CLI name
// resolution.
func TestRoundRobinAndParse(t *testing.T) {
	assign := RoundRobin{}.Place(make([]float64, 5), 2, 1)
	for i, b := range assign {
		if b != i%2 {
			t.Fatalf("round-robin stream %d on board %d", i, b)
		}
	}
	for _, name := range []string{"round-robin", "least-loaded", "bin-pack"} {
		p, err := ParsePlacement(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ParsePlacement(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePlacement("nope"); err == nil {
		t.Fatal("ParsePlacement accepted an unknown policy")
	}
}
