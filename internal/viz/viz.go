// Package viz renders benchmark images and detector predictions for
// inspection: binary PPM image export (viewable everywhere, zero
// dependencies) and compact ASCII overlays for terminals and test
// logs. Ground truth is drawn alongside predictions so sim-to-real
// failures and adaptation recoveries are visible at a glance.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// WritePPM serializes a [3, H, W] image tensor (values in [0, 1]) as a
// binary PPM (P6).
func WritePPM(w io.Writer, img *tensor.Tensor) error {
	if img.NDim() != 3 || img.Dim(0) != 3 {
		return fmt.Errorf("viz: image must be [3,h,w], got %v", img.Shape())
	}
	h, wd := img.Dim(1), img.Dim(2)
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", wd, h); err != nil {
		return err
	}
	for y := 0; y < h; y++ {
		for x := 0; x < wd; x++ {
			for c := 0; c < 3; c++ {
				v := img.At(c, y, x)
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				if err := bw.WriteByte(byte(v*255 + 0.5)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Overlay draws ground-truth cells (green) and predicted lane points
// (red; yellow where they coincide) onto a copy of the image.
func Overlay(cfg ufld.Config, img *tensor.Tensor, gt []int, pred *ufld.Prediction) *tensor.Tensor {
	out := img.Clone()
	h, w := out.Dim(1), out.Dim(2)
	anchorY := func(a int) int {
		// Mirror the anchor placement of the carlane generator: evenly
		// spaced rows in the lower two thirds of the frame.
		y0 := int(0.38 * float64(h))
		y1 := int(0.98 * float64(h))
		return y0 + (y1-y0)*a/(cfg.RowAnchors-1)
	}
	mark := func(y, x int, r, g, b float32) {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				yy, xx := y+dy, x+dx
				if yy < 0 || yy >= h || xx < 0 || xx >= w {
					continue
				}
				out.Set(r, 0, yy, xx)
				out.Set(g, 1, yy, xx)
				out.Set(b, 2, yy, xx)
			}
		}
	}
	for lane := 0; lane < cfg.Lanes; lane++ {
		for a := 0; a < cfg.RowAnchors; a++ {
			y := anchorY(a)
			if gt != nil {
				if c := gt[lane*cfg.RowAnchors+a]; c != ufld.Absent {
					mark(y, int(ufld.CellToPixel(cfg, float64(c))), 0, 1, 0)
				}
			}
			if pred != nil {
				p := pred.Points[lane][a]
				if p.Present {
					mark(y, int(ufld.CellToPixel(cfg, p.Cell)), 1, 0, 0)
				}
			}
		}
	}
	return out
}

// ASCII renders the image as a character grid (rows×cols downsampled
// luminance ramp) with ground truth (o) and predictions (x, or * when
// both land on the same character cell) overlaid. Useful in terminals
// and failure messages.
func ASCII(cfg ufld.Config, img *tensor.Tensor, gt []int, pred *ufld.Prediction, rows, cols int) string {
	if rows < 2 || cols < 2 {
		panic(fmt.Sprintf("viz: ASCII grid %dx%d too small", rows, cols))
	}
	h, w := img.Dim(1), img.Dim(2)
	ramp := []byte(" .:-=+#%@")
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
		for c := range grid[r] {
			// Average luminance over the source block.
			y0, y1 := r*h/rows, (r+1)*h/rows
			x0, x1 := c*w/cols, (c+1)*w/cols
			sum, n := 0.0, 0
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					sum += float64(img.At(0, y, x)+img.At(1, y, x)+img.At(2, y, x)) / 3
					n++
				}
			}
			lum := 0.0
			if n > 0 {
				lum = sum / float64(n)
			}
			idx := int(lum * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			grid[r][c] = ramp[idx]
		}
	}
	place := func(a int, px float64, ch byte) {
		y0 := int(0.38 * float64(h))
		y1 := int(0.98 * float64(h))
		y := y0 + (y1-y0)*a/(cfg.RowAnchors-1)
		r := y * rows / h
		c := int(px) * cols / w
		if r < 0 || r >= rows || c < 0 || c >= cols {
			return
		}
		if (ch == 'x' && grid[r][c] == 'o') || (ch == 'o' && grid[r][c] == 'x') {
			grid[r][c] = '*'
			return
		}
		grid[r][c] = ch
	}
	for lane := 0; lane < cfg.Lanes; lane++ {
		for a := 0; a < cfg.RowAnchors; a++ {
			if gt != nil {
				if cell := gt[lane*cfg.RowAnchors+a]; cell != ufld.Absent {
					place(a, ufld.CellToPixel(cfg, float64(cell)), 'o')
				}
			}
			if pred != nil {
				p := pred.Points[lane][a]
				if p.Present {
					place(a, ufld.CellToPixel(cfg, p.Cell), 'x')
				}
			}
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
