package viz

import (
	"bytes"
	"strings"
	"testing"

	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func testImage(cfg ufld.Config) *tensor.Tensor {
	img := tensor.New(3, cfg.InputH, cfg.InputW)
	rng := tensor.NewRNG(1)
	rng.FillUniform(img, 0.2, 0.8)
	return img
}

func TestWritePPMFormat(t *testing.T) {
	cfg := ufld.Tiny(resnet.R18, 2)
	img := testImage(cfg)
	var buf bytes.Buffer
	if err := WritePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	head := buf.String()[:20]
	if !strings.HasPrefix(head, "P6\n80 32\n255\n") {
		t.Fatalf("PPM header wrong: %q", head)
	}
	wantLen := len("P6\n80 32\n255\n") + 3*cfg.InputH*cfg.InputW
	if buf.Len() != wantLen {
		t.Fatalf("PPM size %d, want %d", buf.Len(), wantLen)
	}
}

func TestWritePPMRejectsBadShape(t *testing.T) {
	if err := WritePPM(&bytes.Buffer{}, tensor.New(1, 4, 4)); err == nil {
		t.Fatal("1-channel image accepted")
	}
}

func TestWritePPMClampsOutOfRange(t *testing.T) {
	img := tensor.Full(2.0, 3, 2, 2) // above 1
	var buf bytes.Buffer
	if err := WritePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[buf.Len()-12:]
	for _, b := range payload {
		if b != 255 {
			t.Fatalf("clamp failed: byte %d", b)
		}
	}
}

func TestOverlayMarksPoints(t *testing.T) {
	cfg := ufld.Tiny(resnet.R18, 2)
	img := tensor.New(3, cfg.InputH, cfg.InputW) // black
	gt := make([]int, cfg.Groups())
	for i := range gt {
		gt[i] = ufld.Absent
	}
	gt[0] = 5
	pred := &ufld.Prediction{Points: make([][]ufld.LanePoint, cfg.Lanes)}
	for l := range pred.Points {
		pred.Points[l] = make([]ufld.LanePoint, cfg.RowAnchors)
	}
	pred.Points[1][2] = ufld.LanePoint{Present: true, Cell: 8}
	out := Overlay(cfg, img, gt, pred)
	// Original must be untouched.
	if img.Max() != 0 {
		t.Fatal("Overlay mutated input")
	}
	// Output must contain pure-green (gt) and pure-red (pred) pixels.
	green, red := 0, 0
	for y := 0; y < cfg.InputH; y++ {
		for x := 0; x < cfg.InputW; x++ {
			r, g, b := out.At(0, y, x), out.At(1, y, x), out.At(2, y, x)
			if g > 0.9 && r < 0.1 && b < 0.1 {
				green++
			}
			if r > 0.9 && g < 0.1 && b < 0.1 {
				red++
			}
		}
	}
	if green == 0 {
		t.Fatal("no green ground-truth markers drawn")
	}
	if red == 0 {
		t.Fatal("no red prediction markers drawn")
	}
}

func TestASCIIDimensionsAndMarkers(t *testing.T) {
	cfg := ufld.Tiny(resnet.R18, 2)
	img := testImage(cfg)
	gt := make([]int, cfg.Groups())
	for i := range gt {
		gt[i] = 5
	}
	pred := &ufld.Prediction{Points: make([][]ufld.LanePoint, cfg.Lanes)}
	for l := range pred.Points {
		pred.Points[l] = make([]ufld.LanePoint, cfg.RowAnchors)
		for a := range pred.Points[l] {
			pred.Points[l][a] = ufld.LanePoint{Present: true, Cell: 5}
		}
	}
	out := ASCII(cfg, img, gt, pred, 8, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("rows = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 40 {
			t.Fatalf("row width %d", len(l))
		}
	}
	// Coinciding gt+pred renders '*'.
	if !strings.Contains(out, "*") {
		t.Fatalf("coinciding markers not merged:\n%s", out)
	}
}

func TestASCIIPanicsOnTinyGrid(t *testing.T) {
	cfg := ufld.Tiny(resnet.R18, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("tiny grid accepted")
		}
	}()
	ASCII(cfg, testImage(cfg), nil, nil, 1, 1)
}
