package orin

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/ufld"
)

func costFor(v resnet.Variant) resnet.ModelCost {
	return ufld.DescribeModel(ufld.FullScale(v, 4))
}

func TestModeByWatts(t *testing.T) {
	for _, w := range []int{15, 30, 50, 60} {
		m, err := ModeByWatts(w)
		if err != nil || m.Watts != w {
			t.Fatalf("ModeByWatts(%d): %v %v", w, m, err)
		}
	}
	if _, err := ModeByWatts(25); err == nil {
		t.Fatal("unknown wattage accepted")
	}
}

// TestModeByWattsUnknownListsValid: the unknown-watts error must name
// every valid wattage so a CLI user can correct the flag without
// reading source.
func TestModeByWattsUnknownListsValid(t *testing.T) {
	_, err := ModeByWatts(25)
	if err == nil {
		t.Fatal("unknown wattage accepted")
	}
	for _, m := range Modes {
		if want := fmt.Sprintf("%d", m.Watts); !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list the valid %s W mode", err, want)
		}
	}
	if !strings.Contains(err.Error(), "25") {
		t.Fatalf("error %q does not echo the rejected wattage", err)
	}
}

func TestModesAreMonotonic(t *testing.T) {
	for i := 1; i < len(Modes); i++ {
		if Modes[i].Watts <= Modes[i-1].Watts {
			t.Fatal("modes must ascend in power")
		}
		if Modes[i].EffGFLOPS <= Modes[i-1].EffGFLOPS {
			t.Fatal("throughput must rise with power")
		}
		if Modes[i].MemBWGBs <= Modes[i-1].MemBWGBs {
			t.Fatal("bandwidth must rise with power")
		}
		if Modes[i].IdleWatts <= Modes[i-1].IdleWatts {
			t.Fatal("static rail draw must rise with power")
		}
	}
	for _, m := range Modes {
		if m.IdleWatts <= 0 || m.IdleWatts >= float64(m.Watts) {
			t.Fatalf("%s: idle draw %.1f W outside (0, %d)", m.Name, m.IdleWatts, m.Watts)
		}
	}
}

func TestLatencyDecreasesWithPower(t *testing.T) {
	cost := costFor(resnet.R18)
	prev := -1.0
	for i := len(Modes) - 1; i >= 0; i-- {
		e := EstimateFrame("R-18", cost, Modes[i], 1)
		if prev >= 0 && e.TotalMs <= prev {
			t.Fatalf("latency must increase as power drops: %v", Modes[i].Name)
		}
		prev = e.TotalMs
	}
}

func TestR34SlowerThanR18(t *testing.T) {
	c18, c34 := costFor(resnet.R18), costFor(resnet.R34)
	for _, m := range Modes {
		e18 := EstimateFrame("R-18", c18, m, 1)
		e34 := EstimateFrame("R-34", c34, m, 1)
		if e34.TotalMs <= e18.TotalMs {
			t.Fatalf("%s: R-34 (%.1f ms) must be slower than R-18 (%.1f ms)", m.Name, e34.TotalMs, e18.TotalMs)
		}
	}
}

func TestAdaptPhaseAddsLatency(t *testing.T) {
	cost := costFor(resnet.R18)
	for _, m := range Modes {
		with := EstimateFrame("R-18", cost, m, 1)
		without := EstimateInferenceOnly("R-18", cost, m)
		if with.TotalMs <= without.TotalMs {
			t.Fatalf("%s: adaptation must add latency", m.Name)
		}
		if with.AdaptMs <= 0 || without.TotalMs <= 0 {
			t.Fatal("phases must be positive")
		}
	}
}

func TestBatchSizeAmortizesAdaptation(t *testing.T) {
	cost := costFor(resnet.R18)
	e1 := EstimateFrame("R-18", cost, Mode60W, 1)
	e2 := EstimateFrame("R-18", cost, Mode60W, 2)
	e4 := EstimateFrame("R-18", cost, Mode60W, 4)
	if !(e1.AdaptMs > e2.AdaptMs && e2.AdaptMs > e4.AdaptMs) {
		t.Fatal("larger batches must amortize adaptation cost")
	}
	if e1.InferenceMs != e4.InferenceMs {
		t.Fatal("inference cost must not depend on adaptation batch")
	}
}

// TestFig3DeadlinePlacement pins the paper's headline hardware result:
// R-18 at 60 W meets 30 FPS; R-18 at 50 W and R-34 at 60 W meet only
// 18 FPS; R-34 at 50 W and everything at ≤30 W misses both.
func TestFig3DeadlinePlacement(t *testing.T) {
	c18, c34 := costFor(resnet.R18), costFor(resnet.R34)
	type row struct {
		cost     resnet.ModelCost
		mode     PowerMode
		meets30  bool
		meets18  bool
		whatisit string
	}
	rows := []row{
		{c18, Mode60W, true, true, "R-18@60W"},
		{c18, Mode50W, false, true, "R-18@50W"},
		{c34, Mode60W, false, true, "R-34@60W"},
		{c34, Mode50W, false, false, "R-34@50W"},
		{c18, Mode30W, false, false, "R-18@30W"},
		{c34, Mode30W, false, false, "R-34@30W"},
		{c18, Mode15W, false, false, "R-18@15W"},
		{c34, Mode15W, false, false, "R-34@15W"},
	}
	for _, r := range rows {
		e := EstimateFrame(r.whatisit, r.cost, r.mode, 1)
		if got := e.Meets(Deadline30FPS); got != r.meets30 {
			t.Errorf("%s: meets 30FPS = %v (%.1f ms), want %v", r.whatisit, got, e.TotalMs, r.meets30)
		}
		if got := e.Meets(Deadline18FPS); got != r.meets18 {
			t.Errorf("%s: meets 18FPS = %v (%.1f ms), want %v", r.whatisit, got, e.TotalMs, r.meets18)
		}
	}
}

func TestEnergyScalesWithWatts(t *testing.T) {
	cost := costFor(resnet.R18)
	e60 := EstimateFrame("R-18", cost, Mode60W, 1)
	if e60.EnergyMJ <= 0 {
		t.Fatal("energy must be positive")
	}
	// Energy = W × t; verify consistency.
	if diff := e60.EnergyMJ - float64(Mode60W.Watts)*e60.TotalMs; diff > 1e-9 {
		t.Fatal("energy accounting inconsistent")
	}
}

func TestFPSInverse(t *testing.T) {
	cost := costFor(resnet.R18)
	e := EstimateFrame("R-18", cost, Mode60W, 1)
	if f := e.FPS(); f < 1 || f > 1000 {
		t.Fatalf("FPS %v implausible", f)
	}
	if e.FPS()*e.TotalMs < 999 || e.FPS()*e.TotalMs > 1001 {
		t.Fatal("FPS inconsistent with TotalMs")
	}
}

func TestSOTAEpochExceedsOneHour(t *testing.T) {
	// The paper §II: "Each epoch on Orin took greater than 1 hour".
	cost := costFor(resnet.R18)
	d := SOTAEpochCost(cost, CARLANEScaleWorkload(), Mode60W)
	if d < time.Hour {
		t.Fatalf("SOTA epoch %v, paper reports > 1 h", d)
	}
	// Sanity upper bound: it is hours, not days.
	if d > 12*time.Hour {
		t.Fatalf("SOTA epoch %v implausibly long", d)
	}
}

func TestSOTAvsLDBNAdaptGap(t *testing.T) {
	// The whole point: per-frame LD-BN-ADAPT adaptation is ~6 orders
	// of magnitude cheaper than one SOTA epoch.
	cost := costFor(resnet.R18)
	frame := LDBNAdaptPerFrameCost(cost, Mode60W)
	epoch := SOTAEpochCost(cost, CARLANEScaleWorkload(), Mode60W)
	if ratio := float64(epoch) / float64(frame); ratio < 1e4 {
		t.Fatalf("cost gap only %.0fx — too small", ratio)
	}
}

func TestSelectPrefersLowPowerFeasible(t *testing.T) {
	c18, c34 := costFor(resnet.R18), costFor(resnet.R34)
	var cands []Candidate
	for _, m := range Modes {
		cands = append(cands,
			Candidate{Estimate: EstimateFrame("R-18", c18, m, 1), Robust: false},
			Candidate{Estimate: EstimateFrame("R-34", c34, m, 1), Robust: true})
	}
	// Strict 30 FPS: only R-18@60W survives (per Fig. 3).
	rec, err := Select(Requirement{DeadlineMs: Deadline30FPS}, cands)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Chosen.Estimate.ModelName != "R-18" || rec.Chosen.Estimate.Mode.Watts != 60 {
		t.Fatalf("30FPS choice = %s@%dW", rec.Chosen.Estimate.ModelName, rec.Chosen.Estimate.Mode.Watts)
	}
	// Relaxed deadline with a 50 W cap: paper says R-18 at 50 W.
	rec, err = Select(Requirement{DeadlineMs: Deadline18FPS, PowerBudgetW: 50}, cands)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Chosen.Estimate.ModelName != "R-18" || rec.Chosen.Estimate.Mode.Watts != 50 {
		t.Fatalf("50W choice = %s@%dW", rec.Chosen.Estimate.ModelName, rec.Chosen.Estimate.Mode.Watts)
	}
	// Relaxed deadline, multi-target: paper recommends R-34.
	rec, err = Select(Requirement{DeadlineMs: Deadline18FPS, MultiTarget: true}, cands)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Chosen.Estimate.ModelName != "R-34" {
		t.Fatalf("multi-target choice = %s", rec.Chosen.Estimate.ModelName)
	}
	// Impossible requirement errors out.
	if _, err := Select(Requirement{DeadlineMs: 1}, cands); err == nil {
		t.Fatal("infeasible requirement accepted")
	}
}

func TestWriteLatencyTable(t *testing.T) {
	cost := costFor(resnet.R18)
	var sb strings.Builder
	WriteLatencyTable(&sb, []Estimate{EstimateFrame("R-18", cost, Mode60W, 1)})
	out := sb.String()
	for _, want := range []string{"R-18", "MAXN", "meet"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestEstimateFramePanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bs=0 accepted")
		}
	}()
	EstimateFrame("x", costFor(resnet.R18), Mode60W, 0)
}

// TestBatchPricingMonotone is the serving-engine deadline-accounting
// contract: whole-batch latency must rise with batch size while the
// amortized per-frame latency must fall (weights and fixed overhead are
// read once per batch), for both backbones under every power mode.
func TestBatchPricingMonotone(t *testing.T) {
	for _, v := range []resnet.Variant{resnet.R18, resnet.R34} {
		cost := costFor(v)
		for _, m := range Modes {
			prevBatch, prevFrame := -1.0, -1.0
			for bs := 1; bs <= 16; bs *= 2 {
				e := EstimateInferenceBatch(v.String(), cost, m, bs)
				if e.BatchMs <= 0 || e.PerFrameMs <= 0 {
					t.Fatalf("%s@%s bs=%d: non-positive estimate %+v", v, m.Name, bs, e)
				}
				if prevBatch >= 0 && e.BatchMs <= prevBatch {
					t.Fatalf("%s@%s bs=%d: batch latency %f not increasing (prev %f)",
						v, m.Name, bs, e.BatchMs, prevBatch)
				}
				if prevFrame >= 0 && e.PerFrameMs >= prevFrame {
					t.Fatalf("%s@%s bs=%d: per-frame latency %f not decreasing (prev %f)",
						v, m.Name, bs, e.PerFrameMs, prevFrame)
				}
				if diff := e.PerFrameMs*float64(e.BatchSize) - e.BatchMs; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s@%s bs=%d: PerFrameMs inconsistent with BatchMs", v, m.Name, bs)
				}
				prevBatch, prevFrame = e.BatchMs, e.PerFrameMs
			}
		}
	}
}

// TestBatchPricingDegeneratesToSingleFrame pins bs=1 to the existing
// single-frame inference pricing so the two models cannot drift apart.
func TestBatchPricingDegeneratesToSingleFrame(t *testing.T) {
	cost := costFor(resnet.R18)
	for _, m := range Modes {
		single := EstimateInferenceOnly("R-18", cost, m)
		batch := EstimateInferenceBatch("R-18", cost, m, 1)
		if diff := batch.BatchMs - single.TotalMs; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: bs=1 batch %.6f ms != single-frame %.6f ms", m.Name, batch.BatchMs, single.TotalMs)
		}
	}
}

// TestBatchPricingSublinear asserts the serving win exists in the cost
// model: an 8-frame batch must be strictly cheaper than 8 single-frame
// invocations (which each pay the fixed overhead and weight traffic).
func TestBatchPricingSublinear(t *testing.T) {
	cost := costFor(resnet.R18)
	for _, m := range Modes {
		single := EstimateInferenceOnly("R-18", cost, m)
		batch := EstimateInferenceBatch("R-18", cost, m, 8)
		if batch.BatchMs >= 8*single.TotalMs {
			t.Fatalf("%s: batched 8 frames (%.2f ms) not cheaper than 8 single frames (%.2f ms)",
				m.Name, batch.BatchMs, 8*single.TotalMs)
		}
	}
}

func TestEstimateInferenceBatchPanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bs=0 accepted")
		}
	}()
	EstimateInferenceBatch("x", costFor(resnet.R18), Mode60W, 0)
}

// TestEstimateAdaptStepMatchesFramePricing pins the per-dispatch step
// price the serving engine charges: it must equal the bs=1 AdaptMs of
// EstimateFrame (one whole step, before amortization) and shrink as
// power modes speed up.
func TestEstimateAdaptStepMatchesFramePricing(t *testing.T) {
	cost := ufld.DescribeModel(ufld.FullScale(resnet.R18, 4))
	prev := math.Inf(1)
	for _, mode := range Modes {
		step := EstimateAdaptStep(cost, mode)
		if step <= 0 {
			t.Fatalf("%s: non-positive step price %f", mode.Name, step)
		}
		want := EstimateFrame("R-18", cost, mode, 1).AdaptMs
		if diff := step - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: step %.6f ms != bs=1 AdaptMs %.6f ms", mode.Name, step, want)
		}
		if step >= prev {
			t.Fatalf("%s: step price %.3f ms not below the slower mode's %.3f ms", mode.Name, step, prev)
		}
		prev = step
	}
}
