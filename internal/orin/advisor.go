package orin

import (
	"fmt"
	"sort"
)

// Requirement captures the deployment constraints of the paper's §IV
// discussion: a latency deadline, a power budget, and whether the
// vehicle faces multi-target conditions (where the paper recommends
// the more robust R-34).
type Requirement struct {
	// DeadlineMs is the per-frame latency budget (e.g. Deadline30FPS).
	DeadlineMs float64
	// PowerBudgetW caps the power mode (0 = unconstrained).
	PowerBudgetW int
	// MultiTarget prefers the more robust backbone when it still meets
	// the deadline (the paper: "if a more robust model is required
	// ... then R-34 should be selected").
	MultiTarget bool
}

// Candidate is one (model, mode) deployment option.
type Candidate struct {
	// Estimate is the priced deployment.
	Estimate Estimate
	// Robust marks the more robust backbone (R-34 in the paper).
	Robust bool
}

// Recommendation is the advisor's answer.
type Recommendation struct {
	// Chosen is the selected deployment.
	Chosen Candidate
	// Feasible lists every candidate that met the constraints, best
	// (lowest power, then lowest latency) first.
	Feasible []Candidate
}

// Select implements the paper's model-selection logic over a candidate
// set: filter by power budget and deadline; among survivors prefer the
// robust backbone when MultiTarget is set, otherwise the lowest-power,
// then lowest-latency option.
func Select(req Requirement, candidates []Candidate) (Recommendation, error) {
	var feasible []Candidate
	for _, c := range candidates {
		if req.PowerBudgetW > 0 && c.Estimate.Mode.Watts > req.PowerBudgetW {
			continue
		}
		if !c.Estimate.Meets(req.DeadlineMs) {
			continue
		}
		feasible = append(feasible, c)
	}
	if len(feasible) == 0 {
		return Recommendation{}, fmt.Errorf("orin: no candidate meets %.1f ms within %d W",
			req.DeadlineMs, req.PowerBudgetW)
	}
	sort.SliceStable(feasible, func(i, j int) bool {
		a, b := feasible[i], feasible[j]
		if req.MultiTarget && a.Robust != b.Robust {
			return a.Robust // robust models first
		}
		if a.Estimate.Mode.Watts != b.Estimate.Mode.Watts {
			return a.Estimate.Mode.Watts < b.Estimate.Mode.Watts
		}
		return a.Estimate.TotalMs < b.Estimate.TotalMs
	})
	return Recommendation{Chosen: feasible[0], Feasible: feasible}, nil
}
