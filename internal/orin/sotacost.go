package orin

import (
	"time"

	"ldbnadapt/internal/resnet"
)

// trainEfficiency discounts throughput for full training workloads
// versus steady-state inference: optimizer state traffic, data loading
// and augmentation, gradient synchronization and framework overheads.
// (Measured PyTorch training throughput on embedded GPUs is commonly
// 40–60 % of inference throughput.)
const trainEfficiency = 0.5

// SOTAWorkload describes one epoch of the CARLANE SOTA baseline at
// CARLANE scale. The real benchmark trains on ~10⁵ images per epoch.
type SOTAWorkload struct {
	// SourceSamples is the labeled source set size per epoch.
	SourceSamples int
	// TargetSamples is the unlabeled target set size per epoch.
	TargetSamples int
	// Clusters is the K-means K.
	Clusters int
	// KMeansIters is the Lloyd iteration count per encoding pass.
	KMeansIters int
	// EmbeddingDim is the backbone embedding width (512 full-scale).
	EmbeddingDim int
}

// CARLANEScaleWorkload returns the published MoLane-scale workload:
// ≈80 k labeled source images and ≈44 k unlabeled target images.
func CARLANEScaleWorkload() SOTAWorkload {
	return SOTAWorkload{
		SourceSamples: 80000,
		TargetSamples: 44000,
		Clusters:      10,
		KMeansIters:   25,
		EmbeddingDim:  512,
	}
}

// SOTAEpochCost prices one epoch of the SOTA baseline on the Orin:
// per-sample full forward+backward on source, backbone embedding
// passes plus knowledge-transfer backward and a second full
// forward(+backward) for pseudo-labels on target, plus K-means.
// Returns the wall-clock estimate.
func SOTAEpochCost(cost resnet.ModelCost, wl SOTAWorkload, mode PowerMode) time.Duration {
	fwd := float64(cost.TotalFLOPs())
	// Per the sota package's accounting:
	//   source: full fwd + full bwd            = 3 fwd-equivalents
	//   target: backbone fwd+bwd + full fwd+bwd ≈ 5 fwd-equivalents
	//   embeddings: backbone fwd per source sample ≈ 0.9 fwd-equiv.
	sourceFLOPs := float64(wl.SourceSamples) * 3 * fwd
	targetFLOPs := float64(wl.TargetSamples) * 5 * fwd
	embedFLOPs := float64(wl.SourceSamples) * 0.9 * fwd
	kmeansFLOPs := float64(wl.SourceSamples) * float64(wl.Clusters) *
		float64(wl.KMeansIters) * float64(wl.EmbeddingDim) * 3
	totalFLOPs := sourceFLOPs + targetFLOPs + embedFLOPs + kmeansFLOPs
	seconds := totalFLOPs / (mode.EffGFLOPS * 1e9 * trainEfficiency)
	return time.Duration(seconds * float64(time.Second))
}

// LDBNAdaptPerFrameCost prices the LD-BN-ADAPT adaptation work for one
// frame (the comparison row for the same table): this is just the
// adapt phase of EstimateFrame.
func LDBNAdaptPerFrameCost(cost resnet.ModelCost, mode PowerMode) time.Duration {
	e := EstimateFrame("", cost, mode, 1)
	return time.Duration(e.AdaptMs * float64(time.Millisecond))
}
