package orin

import (
	"fmt"
	"io"

	"ldbnadapt/internal/resnet"
)

// Estimate is the predicted per-frame cost of LD-BN-ADAPT deployment:
// inference on the incoming frame followed by one adaptation step.
type Estimate struct {
	// ModelName labels the network ("R-18", "R-34").
	ModelName string
	// Mode is the power mode evaluated.
	Mode PowerMode
	// BatchSize is the adaptation batch size.
	BatchSize int
	// InferenceMs is the forward-pass latency (one frame).
	InferenceMs float64
	// AdaptMs is the adaptation latency amortized per frame: the
	// adapt-mode forward (with statistics recomputation), the backward
	// pass and the γ/β update, divided by the batch size (adaptation
	// runs once per batch).
	AdaptMs float64
	// TotalMs = OverheadMs + InferenceMs + AdaptMs.
	TotalMs float64
	// EnergyMJ is the per-frame energy in millijoules (power × time).
	EnergyMJ float64
}

// FPS returns the achievable frame rate.
func (e Estimate) FPS() float64 { return 1000.0 / e.TotalMs }

// Meets reports whether the estimate fits a latency deadline (ms).
func (e Estimate) Meets(deadlineMs float64) bool { return e.TotalMs <= deadlineMs }

// phaseMs prices a set of layers with a per-layer roofline:
// max(compute, memory) summed over layers, scaled by flopScale
// (backward ≈ 2× forward for conv/linear layers).
func phaseMs(cost resnet.ModelCost, mode PowerMode, flopScale, byteScale float64) float64 {
	totalUs := 0.0
	for _, l := range cost.Layers {
		computeUs := flopScale * float64(l.FLOPs) / mode.EffGFLOPS / 1e3
		bytes := byteScale * float64(2*l.ActBytes+l.WeightBytes)
		memUs := bytes / mode.MemBWGBs / 1e3
		if memUs > computeUs {
			totalUs += memUs
		} else {
			totalUs += computeUs
		}
	}
	return totalUs / 1e3
}

// EstimateFrame prices one deployed LD-BN-ADAPT frame for the given
// model cost (use ufld.DescribeModel on a FullScale config) under a
// power mode. Batch size bs amortizes the adaptation phase: with bs=1
// every frame adapts; with bs=4 one adaptation step serves 4 frames.
func EstimateFrame(name string, cost resnet.ModelCost, mode PowerMode, bs int) Estimate {
	if bs < 1 {
		panic(fmt.Sprintf("orin: batch size %d", bs))
	}
	inference := phaseMs(cost, mode, 1, 1)
	adaptPerBatch := EstimateAdaptStep(cost, mode)
	e := Estimate{
		ModelName:   name,
		Mode:        mode,
		BatchSize:   bs,
		InferenceMs: inference,
		AdaptMs:     adaptPerBatch / float64(bs),
	}
	e.TotalMs = mode.OverheadMs + e.InferenceMs + e.AdaptMs
	e.EnergyMJ = float64(mode.Watts) * e.TotalMs
	return e
}

// EstimateAdaptStep prices one whole LD-BN-ADAPT step: one adapt-mode
// forward (forward + BN statistics reduction ≈ 1.15× forward FLOPs on
// BN layers — folded into the 1.1 factor), one backward (≈ 2× forward),
// and the γ/β SGD update (negligible FLOPs, priced as bytes). On the
// Orin GPU the step cost is independent of the (small) adaptation batch
// size, so serving engines charge this price once per dispatched step
// and amortize it over the frames the step serves — EstimateFrame's
// per-frame AdaptMs is this value divided by the batch size.
func EstimateAdaptStep(cost resnet.ModelCost, mode PowerMode) float64 {
	return phaseMs(cost, mode, 1.1, 1) + phaseMs(cost, mode, 2, 2)
}

// EstimateInferenceOnly prices a frame without any adaptation (the
// NoAdapt deployment).
func EstimateInferenceOnly(name string, cost resnet.ModelCost, mode PowerMode) Estimate {
	e := Estimate{ModelName: name, Mode: mode, BatchSize: 0,
		InferenceMs: phaseMs(cost, mode, 1, 1)}
	e.TotalMs = mode.OverheadMs + e.InferenceMs
	e.EnergyMJ = float64(mode.Watts) * e.TotalMs
	return e
}

// WriteLatencyTable prints the Fig. 3-style table: per power mode and
// model, the inference+adaptation latency and which deadlines it
// meets.
func WriteLatencyTable(w io.Writer, estimates []Estimate) {
	fmt.Fprintf(w, "%-8s %-12s %6s %8s %8s %8s %8s %6s %6s\n",
		"model", "mode", "bs", "infer", "adapt", "total", "fps", "30FPS", "18FPS")
	for _, e := range estimates {
		mark := func(ok bool) string {
			if ok {
				return "meet"
			}
			return "miss"
		}
		fmt.Fprintf(w, "%-8s %-12s %6d %7.1fms %7.1fms %7.1fms %7.1f %6s %6s\n",
			e.ModelName, e.Mode.Name, e.BatchSize, e.InferenceMs, e.AdaptMs, e.TotalMs,
			e.FPS(), mark(e.Meets(Deadline30FPS)), mark(e.Meets(Deadline18FPS)))
	}
}
