// Package orin models the NVIDIA Jetson AGX Orin that the paper
// measures on: a roofline latency model over the true per-layer
// operation counts of the UFLD models, parameterized by the board's
// power modes. The paper's Fig. 3 (latency per power mode vs the
// 30 FPS / 18 FPS deadlines) and its §II claim that one SOTA-baseline
// epoch exceeds an hour on device are both regenerated from this
// model.
//
// Calibration: the effective-throughput constants below are NOT peak
// datasheet numbers; they are sustained FP32 conv-workload rates chosen
// so that the full-scale ResNet-18 UFLD at the 60 W mode lands where
// Fig. 3 places it (inference+adaptation just under the 33.3 ms
// deadline). All tests assert ordering properties only, never absolute
// milliseconds, so recalibrating cannot silently break the suite. See
// DESIGN.md §8.
package orin

import "fmt"

// PowerMode is one nvpmodel operating point of the Jetson AGX Orin.
type PowerMode struct {
	// Name is the mode label used in reports ("MAXN (60W)", ...).
	Name string
	// Watts is the mode's power budget, drawn while the accelerator is
	// busy with dispatched work.
	Watts int
	// IdleWatts is the static rail draw of the board parked at this
	// nvpmodel point with no work in flight: higher modes hold higher
	// GPU/EMC clocks and voltages even when idle. This is what a
	// power governor saves by descending the ladder during load lulls —
	// busy energy alone favors the fastest mode (race-to-idle), static
	// draw does not.
	IdleWatts float64
	// EffGFLOPS is the sustained effective FP32 throughput (GFLOP/s)
	// for convolutional workloads under this mode's GPU clocks.
	EffGFLOPS float64
	// Int8GOPS is the sustained effective INT8 throughput (GOP/s) for
	// the same workloads when the conv/FC products run through the
	// symmetric int8 path. Ampere-class tensor cores sustain roughly
	// 3–3.5× their FP32 conv rate on int8 GEMMs once dequantize and
	// per-channel scaling are folded in; like EffGFLOPS these are
	// calibrated sustained rates, not datasheet peaks.
	Int8GOPS float64
	// MemBWGBs is the effective DRAM bandwidth (GB/s) under this
	// mode's EMC clocks.
	MemBWGBs float64
	// OverheadMs is the fixed per-frame cost: camera capture copy,
	// 1280×720 → 288×800 resize, host↔device traffic, kernel-launch
	// latency.
	OverheadMs float64
}

// The four power modes the paper sweeps in Fig. 3.
var (
	// Mode15W is the lowest-power operating point.
	Mode15W = PowerMode{Name: "15W", Watts: 15, IdleWatts: 5, EffGFLOPS: 500, Int8GOPS: 1600, MemBWGBs: 50, OverheadMs: 6.0}
	// Mode30W is the mid operating point.
	Mode30W = PowerMode{Name: "30W", Watts: 30, IdleWatts: 9, EffGFLOPS: 1100, Int8GOPS: 3600, MemBWGBs: 110, OverheadMs: 3.5}
	// Mode50W is the high operating point.
	Mode50W = PowerMode{Name: "50W", Watts: 50, IdleWatts: 14, EffGFLOPS: 1800, Int8GOPS: 6000, MemBWGBs: 190, OverheadMs: 2.5}
	// Mode60W is MAXN (the paper's "60W" mode).
	Mode60W = PowerMode{Name: "MAXN (60W)", Watts: 60, IdleWatts: 18, EffGFLOPS: 3000, Int8GOPS: 10000, MemBWGBs: 250, OverheadMs: 2.0}
)

// Modes lists the power modes in ascending power order.
var Modes = []PowerMode{Mode15W, Mode30W, Mode50W, Mode60W}

// ModeByWatts returns the mode with the given power budget.
func ModeByWatts(w int) (PowerMode, error) {
	valid := make([]int, len(Modes))
	for i, m := range Modes {
		if m.Watts == w {
			return m, nil
		}
		valid[i] = m.Watts
	}
	return PowerMode{}, fmt.Errorf("orin: no %d W power mode (have %v)", w, valid)
}

// Deadlines from the paper's §IV.
const (
	// Deadline30FPS is the strict real-time constraint: 33.3 ms.
	Deadline30FPS = 1000.0 / 30.0
	// Deadline18FPS is the relaxed constraint of an Audi-A8-class
	// level-3 system: 55.5 ms.
	Deadline18FPS = 1000.0 / 18.0
)
