package orin

import (
	"fmt"

	"ldbnadapt/internal/resnet"
)

// BatchEstimate prices one coalesced inference batch on the Orin: the
// multi-stream serving engine runs frames from several cameras through
// a single batched forward pass, and the deadline accounting must
// reflect how that batch prices out on device.
type BatchEstimate struct {
	// ModelName labels the network ("R-18", "R-34").
	ModelName string
	// Mode is the power mode evaluated.
	Mode PowerMode
	// BatchSize is the number of coalesced frames.
	BatchSize int
	// BatchMs is the whole-batch latency (one fixed overhead, one
	// batched forward).
	BatchMs float64
	// PerFrameMs = BatchMs / BatchSize — the amortized latency each
	// frame in the batch pays.
	PerFrameMs float64
	// EnergyMJ is the per-frame energy in millijoules.
	EnergyMJ float64
}

// EstimateInferenceBatch prices a batched forward pass of bs frames
// under a power mode with the same per-layer roofline used by
// EstimateFrame, extended to batched execution: compute and activation
// traffic scale with the batch size, while the layer weights are read
// once per batch and the fixed per-invocation overhead (capture copy,
// resize, host↔device traffic, kernel launches) is paid once. This is
// the mechanism that makes batched serving cheaper per frame — weights
// and overhead amortize — and it degenerates exactly to
// EstimateInferenceOnly at bs = 1.
func EstimateInferenceBatch(name string, cost resnet.ModelCost, mode PowerMode, bs int) BatchEstimate {
	if bs < 1 {
		panic(fmt.Sprintf("orin: batch size %d", bs))
	}
	totalUs := 0.0
	for _, l := range cost.Layers {
		computeUs := float64(bs) * float64(l.FLOPs) / mode.EffGFLOPS / 1e3
		bytes := float64(bs)*float64(2*l.ActBytes) + float64(l.WeightBytes)
		memUs := bytes / mode.MemBWGBs / 1e3
		if memUs > computeUs {
			totalUs += memUs
		} else {
			totalUs += computeUs
		}
	}
	e := BatchEstimate{
		ModelName: name,
		Mode:      mode,
		BatchSize: bs,
		BatchMs:   mode.OverheadMs + totalUs/1e3,
	}
	e.PerFrameMs = e.BatchMs / float64(bs)
	e.EnergyMJ = float64(mode.Watts) * e.PerFrameMs
	return e
}

// EstimateInferenceBatchInt8 prices the same batched forward with the
// conv/FC products in symmetric int8 (nn.InferInt8): operations run at
// the mode's Int8GOPS rate and both activation and weight traffic drop
// to a quarter (1 byte vs 4 per element; the per-channel scale vectors
// are noise at this granularity). BatchNorm, ReLU and pooling remain
// float32 but are already memory-bound inside the per-layer roofline,
// so they inherit the reduced activation traffic. The fixed
// per-invocation overhead is unchanged — capture, resize and transfer
// do not quantize. This is the price the governor compares against the
// float path when deciding whether to climb to the int8 rung.
func EstimateInferenceBatchInt8(name string, cost resnet.ModelCost, mode PowerMode, bs int) BatchEstimate {
	if bs < 1 {
		panic(fmt.Sprintf("orin: batch size %d", bs))
	}
	totalUs := 0.0
	for _, l := range cost.Layers {
		computeUs := float64(bs) * float64(l.FLOPs) / mode.Int8GOPS / 1e3
		bytes := (float64(bs)*float64(2*l.ActBytes) + float64(l.WeightBytes)) / 4
		memUs := bytes / mode.MemBWGBs / 1e3
		if memUs > computeUs {
			totalUs += memUs
		} else {
			totalUs += computeUs
		}
	}
	e := BatchEstimate{
		ModelName: name,
		Mode:      mode,
		BatchSize: bs,
		BatchMs:   mode.OverheadMs + totalUs/1e3,
	}
	e.PerFrameMs = e.BatchMs / float64(bs)
	e.EnergyMJ = float64(mode.Watts) * e.PerFrameMs
	return e
}
