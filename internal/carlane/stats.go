package carlane

import (
	"fmt"
	"io"

	"ldbnadapt/internal/ufld"
)

// SplitStats summarizes one dataset split — the benchmark composition
// view of the paper's Fig. 1.
type SplitStats struct {
	// Name and Domain identify the split.
	Name, Domain string
	// N is the sample count.
	N int
	// MeanBrightness is the mean pixel value — the headline statistic
	// separating the domains.
	MeanBrightness float64
	// StdBrightness is the pixel standard deviation.
	StdBrightness float64
	// LabeledPoints counts present (lane, anchor) ground-truth points.
	LabeledPoints int
	// AbsentPoints counts Absent labels.
	AbsentPoints int
}

// ComputeStats scans a dataset.
func ComputeStats(ds *ufld.Dataset) SplitStats {
	st := SplitStats{Name: ds.Name, Domain: ds.Domain, N: ds.Len()}
	var sum, sumSq float64
	var count int
	for _, s := range ds.Samples {
		for _, v := range s.Image.Data {
			sum += float64(v)
			sumSq += float64(v) * float64(v)
			count++
		}
		for _, c := range s.Cells {
			if c == ufld.Absent {
				st.AbsentPoints++
			} else {
				st.LabeledPoints++
			}
		}
	}
	if count > 0 {
		st.MeanBrightness = sum / float64(count)
		v := sumSq/float64(count) - st.MeanBrightness*st.MeanBrightness
		if v > 0 {
			st.StdBrightness = sqrt(v)
		}
	}
	return st
}

func sqrt(v float64) float64 {
	// Newton iteration to avoid importing math for one call site.
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// WriteBenchmarkTable prints the Fig. 1-style composition table of one
// benchmark to w.
func WriteBenchmarkTable(w io.Writer, b *Benchmark) {
	fmt.Fprintf(w, "%s (%d lanes, %dx%d input, %d cells x %d anchors)\n",
		b.Name, b.Cfg.Lanes, b.Cfg.InputH, b.Cfg.InputW, b.Cfg.GridCells, b.Cfg.RowAnchors)
	fmt.Fprintf(w, "  %-22s %-12s %6s %10s %8s %8s\n", "split", "domain", "n", "brightness", "points", "absent")
	for _, ds := range []*ufld.Dataset{b.SourceTrain, b.SourceVal, b.TargetTrain, b.TargetVal} {
		st := ComputeStats(ds)
		fmt.Fprintf(w, "  %-22s %-12s %6d %6.3f±%.3f %8d %8d\n",
			st.Name, st.Domain, st.N, st.MeanBrightness, st.StdBrightness, st.LabeledPoints, st.AbsentPoints)
	}
}
