package carlane

import (
	"fmt"

	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// Layout selects the lane arrangement of generated scenes.
type Layout int

const (
	// Ego2 renders the two ego-lane boundaries (MoLane's 2-lane task).
	Ego2 Layout = iota
	// Quad4 renders four lane markings (TuLane's 4-lane task).
	Quad4
	// Mo4 renders a model-vehicle scene (two visible ego lanes) in the
	// 4-lane label space: the outer two lanes are labeled Absent. This
	// is how MuLane unifies its two targets.
	Mo4
)

// Lanes returns the label-space lane count of the layout.
func (l Layout) Lanes() int {
	if l == Ego2 {
		return 2
	}
	return 4
}

// randomScene draws scene geometry for a layout. The structural
// distribution is shared between source and target (the paper's gap is
// photometric sim-to-real, not a task change); only the curvature range
// differs slightly per domain to reflect model-track vs highway roads.
func randomScene(layout Layout, d Domain, rng *tensor.RNG) *Scene {
	s := &Scene{
		VanishX:        0.5 + rng.Range(-0.08, 0.08),
		HorizonY:       0.32 + rng.Range(-0.04, 0.04),
		MarkHalfWidth:  0.008 + rng.Range(0, 0.004),
		MarkBrightness: 0.88,
		RoadBrightness: 0.30,
	}
	curveMax := 0.08
	switch d {
	case MoReal:
		curveMax = 0.12 // tighter model-track curves
		s.MarkBrightness = 0.80
	case TuReal:
		curveMax = 0.05 // gentle highway curvature
	}
	s.Curvature = rng.Range(-curveMax, curveMax)
	center := 0.5 + rng.Range(-0.10, 0.10)
	switch layout {
	case Ego2:
		spacing := rng.Range(0.46, 0.68)
		s.BottomX = []float64{center - spacing/2, center + spacing/2}
		s.Visible = []bool{true, true}
		s.Dashed = []bool{false, false}
	case Quad4:
		spacing := rng.Range(0.26, 0.34)
		s.BottomX = []float64{
			center - 1.5*spacing, center - 0.5*spacing,
			center + 0.5*spacing, center + 1.5*spacing,
		}
		s.Visible = []bool{true, true, true, true}
		// Inner separators dashed, as on real highways.
		s.Dashed = []bool{false, true, true, false}
	case Mo4:
		spacing := rng.Range(0.46, 0.68)
		s.BottomX = []float64{
			center - 1.5*spacing, center - spacing/2,
			center + spacing/2, center + 1.5*spacing,
		}
		s.Visible = []bool{false, true, true, false}
		s.Dashed = []bool{false, false, false, false}
	default:
		panic(fmt.Sprintf("carlane: unknown layout %d", int(layout)))
	}
	return s
}

// SplitSpec describes one generated dataset split.
type SplitSpec struct {
	// Name labels the split (e.g. "molane/target-val").
	Name string
	// Layouts cycles over the scene layouts (one per sample, round
	// robin) — MuLane passes two entries to interleave its targets.
	Layouts []Layout
	// Domains cycles in lockstep with Layouts.
	Domains []Domain
	// N is the number of samples.
	N int
	// Seed makes the split reproducible.
	Seed uint64
}

// Generate renders a dataset split for the given detector config.
func Generate(cfg ufld.Config, spec SplitSpec) *ufld.Dataset {
	if len(spec.Layouts) == 0 || len(spec.Layouts) != len(spec.Domains) {
		panic("carlane: SplitSpec needs matching Layouts/Domains")
	}
	rng := tensor.NewRNG(spec.Seed)
	ds := &ufld.Dataset{Name: spec.Name, Domain: spec.Domains[0].String(), Samples: make([]ufld.Sample, spec.N)}
	for _, d := range spec.Domains[1:] {
		if d != spec.Domains[0] {
			ds.Domain = "mixed"
			break
		}
	}
	for i := 0; i < spec.N; i++ {
		layout := spec.Layouts[i%len(spec.Layouts)]
		domain := spec.Domains[i%len(spec.Domains)]
		if layout.Lanes() != cfg.Lanes {
			panic(fmt.Sprintf("carlane: layout %d has %d lanes, config wants %d", int(layout), layout.Lanes(), cfg.Lanes))
		}
		scene := randomScene(layout, domain, rng)
		img := scene.Render(cfg.InputH, cfg.InputW, rng)
		ApplyDomain(img, domain, rng)
		ds.Samples[i] = ufld.Sample{Image: img, Cells: scene.Label(cfg)}
	}
	return ds
}

// Benchmark bundles the four splits of one CARLANE-style benchmark.
type Benchmark struct {
	// Name is "MoLane", "TuLane" or "MuLane".
	Name string
	// Cfg is the detector configuration (fixes Lanes).
	Cfg ufld.Config
	// SourceTrain is labeled simulator data (model pre-training).
	SourceTrain *ufld.Dataset
	// SourceVal is held-out simulator data.
	SourceVal *ufld.Dataset
	// TargetTrain is the unlabeled adaptation stream (labels present
	// but never read by adaptation).
	TargetTrain *ufld.Dataset
	// TargetVal is the labeled target validation split used for the
	// accuracy numbers in Fig. 2.
	TargetVal *ufld.Dataset
}

// Sizes fixes the per-split sample counts.
type Sizes struct {
	// SourceTrain, SourceVal, TargetTrain, TargetVal are sample counts.
	SourceTrain, SourceVal, TargetTrain, TargetVal int
}

// DefaultSizes returns the repro-profile split sizes (the real CARLANE
// uses 10⁴–10⁵ images per split; the ratios are preserved).
func DefaultSizes() Sizes {
	return Sizes{SourceTrain: 240, SourceVal: 48, TargetTrain: 96, TargetVal: 64}
}

// TestSizes returns very small splits for unit tests.
func TestSizes() Sizes {
	return Sizes{SourceTrain: 24, SourceVal: 8, TargetTrain: 16, TargetVal: 12}
}

// BenchmarkName enumerates the three CARLANE benchmarks.
type BenchmarkName string

const (
	// MoLane: 2 lanes, CARLA sim → real model vehicle.
	MoLane BenchmarkName = "MoLane"
	// TuLane: 4 lanes, CARLA sim → TuSimple US highways.
	TuLane BenchmarkName = "TuLane"
	// MuLane: 4 lanes, multi-target — both MoLane and TuLane targets
	// interleaved 1:1.
	MuLane BenchmarkName = "MuLane"
)

// AllBenchmarks lists the benchmark names in paper order.
var AllBenchmarks = []BenchmarkName{MoLane, TuLane, MuLane}

// Lanes returns the benchmark's lane count (Fig. 1).
func (b BenchmarkName) Lanes() int {
	if b == MoLane {
		return 2
	}
	return 4
}

// Build generates all four splits of a benchmark for the given
// backbone variant using the supplied base config factory (e.g.
// ufld.Repro or ufld.Tiny).
func Build(name BenchmarkName, variant resnet.Variant, cfgFor func(resnet.Variant, int) ufld.Config, sizes Sizes, seed uint64) *Benchmark {
	cfg := cfgFor(variant, name.Lanes())
	var srcLayouts, tgtLayouts []Layout
	var tgtDomains []Domain
	switch name {
	case MoLane:
		srcLayouts = []Layout{Ego2}
		tgtLayouts = []Layout{Ego2}
		tgtDomains = []Domain{MoReal}
	case TuLane:
		srcLayouts = []Layout{Quad4}
		tgtLayouts = []Layout{Quad4}
		tgtDomains = []Domain{TuReal}
	case MuLane:
		srcLayouts = []Layout{Mo4, Quad4}
		tgtLayouts = []Layout{Mo4, Quad4}
		tgtDomains = []Domain{MoReal, TuReal}
	default:
		panic(fmt.Sprintf("carlane: unknown benchmark %q", name))
	}
	simDomains := make([]Domain, len(srcLayouts))
	for i := range simDomains {
		simDomains[i] = Sim
	}
	prefix := string(name)
	return &Benchmark{
		Name: prefix,
		Cfg:  cfg,
		SourceTrain: Generate(cfg, SplitSpec{
			Name: prefix + "/source-train", Layouts: srcLayouts, Domains: simDomains,
			N: sizes.SourceTrain, Seed: seed}),
		SourceVal: Generate(cfg, SplitSpec{
			Name: prefix + "/source-val", Layouts: srcLayouts, Domains: simDomains,
			N: sizes.SourceVal, Seed: seed + 1}),
		TargetTrain: Generate(cfg, SplitSpec{
			Name: prefix + "/target-train", Layouts: tgtLayouts, Domains: tgtDomains,
			N: sizes.TargetTrain, Seed: seed + 2}),
		TargetVal: Generate(cfg, SplitSpec{
			Name: prefix + "/target-val", Layouts: tgtLayouts, Domains: tgtDomains,
			N: sizes.TargetVal, Seed: seed + 3}),
	}
}
