package carlane

import (
	"fmt"
	"math"

	"ldbnadapt/internal/tensor"
)

// Domain identifies the image domain a sample is rendered in.
type Domain int

const (
	// Sim is the clean simulator source domain (CARLA in the paper).
	Sim Domain = iota
	// MoReal is the MoLane target: real-world model-vehicle captures —
	// indoor lighting, vignetting, floor texture, heavier sensor noise.
	MoReal
	// TuReal is the TuLane target: TuSimple-style US-highway footage —
	// haze, glare, colour cast, moderate sensor noise.
	TuReal
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case Sim:
		return "sim"
	case MoReal:
		return "molane-real"
	case TuReal:
		return "tulane-real"
	}
	return fmt.Sprintf("Domain(%d)", int(d))
}

// ApplyDomain transforms a clean render into the given domain in
// place. The photometric models are deliberately strong covariate
// shifts: they move the per-channel input statistics (and therefore
// every BatchNorm layer's ideal normalization statistics) well away
// from the source domain, which is the failure mode LD-BN-ADAPT
// corrects.
func ApplyDomain(img *tensor.Tensor, d Domain, rng *tensor.RNG) {
	h, w := img.Dim(1), img.Dim(2)
	switch d {
	case Sim:
		addNoise(img, 0.004, rng)
	case MoReal:
		// Indoor model-vehicle rig: dimmer, vignetted, textured floor.
		brightness := float32(0.50 + rng.Range(-0.06, 0.06))
		tensor.ScaleInPlace(img, brightness)
		applyVignette(img, 0.45)
		applyFloorTexture(img, 0.06, rng)
		boxBlurH(img)
		addNoise(img, 0.035, rng)
	case TuReal:
		// Highway footage: hazy low-contrast, glare gradient, colour cast.
		haze := float32(0.30 + rng.Range(-0.04, 0.04))
		contrast := float32(0.62)
		for i := range img.Data {
			img.Data[i] = img.Data[i]*contrast + haze
		}
		applyGlare(img, 0.16)
		applyColorCast(img, 0.05, -0.04)
		addNoise(img, 0.02, rng)
	default:
		panic(fmt.Sprintf("carlane: unknown domain %d", int(d)))
	}
	_ = h
	_ = w
	clamp01(img)
}

// addNoise adds i.i.d. Gaussian sensor noise.
func addNoise(img *tensor.Tensor, sigma float64, rng *tensor.RNG) {
	for i := range img.Data {
		img.Data[i] += float32(rng.Normal(0, sigma))
	}
}

// applyVignette darkens pixels by their distance from the image
// centre (strength 0..1 at the far corners).
func applyVignette(img *tensor.Tensor, strength float64) {
	h, w := img.Dim(1), img.Dim(2)
	cy, cx := float64(h)/2, float64(w)/2
	maxR := math.Hypot(cy, cx)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := math.Hypot(float64(y)-cy, float64(x)-cx) / maxR
			f := float32(1 - strength*r*r)
			for c := 0; c < 3; c++ {
				img.Set(img.At(c, y, x)*f, c, y, x)
			}
		}
	}
}

// applyFloorTexture superimposes a low-frequency sinusoidal pattern
// (tiles/carpet under a model vehicle).
func applyFloorTexture(img *tensor.Tensor, amp float64, rng *tensor.RNG) {
	h, w := img.Dim(1), img.Dim(2)
	fy := rng.Range(0.15, 0.35)
	fx := rng.Range(0.06, 0.16)
	phase := rng.Range(0, 2*math.Pi)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float32(amp * math.Sin(fy*float64(y)+fx*float64(x)+phase))
			for c := 0; c < 3; c++ {
				img.Set(img.At(c, y, x)+v, c, y, x)
			}
		}
	}
}

// applyGlare brightens toward the top of the frame (low sun / horizon
// glare on highway footage).
func applyGlare(img *tensor.Tensor, strength float64) {
	h, w := img.Dim(1), img.Dim(2)
	for y := 0; y < h; y++ {
		f := float32(strength * (1 - float64(y)/float64(h)))
		for x := 0; x < w; x++ {
			for c := 0; c < 3; c++ {
				img.Set(img.At(c, y, x)+f, c, y, x)
			}
		}
	}
}

// applyColorCast shifts the red and blue channels.
func applyColorCast(img *tensor.Tensor, dr, db float64) {
	h, w := img.Dim(1), img.Dim(2)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Set(img.At(0, y, x)+float32(dr), 0, y, x)
			img.Set(img.At(2, y, x)+float32(db), 2, y, x)
		}
	}
}

// boxBlurH applies a horizontal 3-tap box blur (cheap motion/focus
// softness).
func boxBlurH(img *tensor.Tensor) {
	h, w := img.Dim(1), img.Dim(2)
	row := make([]float32, w)
	for c := 0; c < 3; c++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				row[x] = img.At(c, y, x)
			}
			for x := 1; x < w-1; x++ {
				img.Set((row[x-1]+row[x]+row[x+1])/3, c, y, x)
			}
		}
	}
}

// clamp01 limits all values to [0, 1].
func clamp01(img *tensor.Tensor) {
	for i, v := range img.Data {
		if v < 0 {
			img.Data[i] = 0
		} else if v > 1 {
			img.Data[i] = 1
		}
	}
}
