// Package carlane procedurally synthesizes the CARLANE-like lane
// detection benchmarks the paper evaluates on: MoLane (2 lanes,
// sim → model-vehicle), TuLane (4 lanes, sim → highway) and MuLane
// (4 lanes, multi-target mixture). The real CARLANE datasets (CARLA
// renders, model-vehicle captures and TuSimple highway images) are not
// redistributable inside this repository, so each domain is realized as
// a procedural scene renderer plus a photometric domain model whose
// statistics shift exactly the way sim-to-real shifts do (brightness,
// contrast, vignetting, texture, sensor noise) — the covariate shift
// that batch-norm-statistic adaptation corrects. Labels exist for every
// sample but adaptation code only ever reads the images.
package carlane

import (
	"math"

	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// Scene describes the geometry of one rendered road image. Lane i's
// horizontal position (as a fraction of image width) at depth
// parameter t ∈ (0,1] (0 = horizon, 1 = bottom edge) is
//
//	x_i(t) = vx + (bottom_i − vx)·t + curvature·t·(1−t)
//
// i.e. straight rays from the vanishing point bowed by a quadratic
// curvature term — the standard single-camera road approximation.
type Scene struct {
	// VanishX is the vanishing-point x as a fraction of width.
	VanishX float64
	// HorizonY is the horizon line as a fraction of height.
	HorizonY float64
	// BottomX gives each lane marking's bottom-edge intersection as a
	// fraction of width (may fall outside [0,1] for partially visible
	// lanes).
	BottomX []float64
	// Curvature bows all lanes (fraction of width at t=0.5).
	Curvature float64
	// Visible masks lanes that exist in the label space but not in the
	// scene (MuLane's model-vehicle frames have no outer lanes).
	Visible []bool
	// Dashed marks lanes rendered with gaps.
	Dashed []bool
	// MarkHalfWidth is the marking half-width at the bottom edge, as a
	// fraction of image width.
	MarkHalfWidth float64
	// MarkBrightness is the marking luminance in [0,1].
	MarkBrightness float64
	// RoadBrightness is the base road luminance in [0,1].
	RoadBrightness float64
}

// LaneX returns lane i's horizontal position (fraction of width) at
// depth parameter t.
func (s *Scene) LaneX(i int, t float64) float64 {
	return s.VanishX + (s.BottomX[i]-s.VanishX)*t + s.Curvature*t*(1-t)
}

// anchorTs returns the depth parameter of each row anchor. Anchors are
// placed uniformly in image rows between just below the horizon and
// the bottom edge, mirroring UFLD's predefined row anchors.
func anchorTs(s *Scene, cfg ufld.Config) []float64 {
	ts := make([]float64, cfg.RowAnchors)
	y0 := s.HorizonY + 0.06
	y1 := 0.98
	for a := 0; a < cfg.RowAnchors; a++ {
		y := y0 + (y1-y0)*float64(a)/float64(cfg.RowAnchors-1)
		ts[a] = (y - s.HorizonY) / (1 - s.HorizonY)
	}
	return ts
}

// Label computes the ground-truth cell per (lane, anchor) for cfg.
func (s *Scene) Label(cfg ufld.Config) []int {
	cells := make([]int, cfg.Lanes*cfg.RowAnchors)
	ts := anchorTs(s, cfg)
	for lane := 0; lane < cfg.Lanes; lane++ {
		for a, t := range ts {
			idx := lane*cfg.RowAnchors + a
			if !s.Visible[lane] {
				cells[idx] = ufld.Absent
				continue
			}
			x := s.LaneX(lane, t)
			if x < 0 || x >= 1 {
				cells[idx] = ufld.Absent
				continue
			}
			cells[idx] = int(x * float64(cfg.GridCells))
			if cells[idx] >= cfg.GridCells {
				cells[idx] = cfg.GridCells - 1
			}
		}
	}
	return cells
}

// Render draws the scene into a [3, H, W] tensor with values in [0,1]:
// sky above the horizon, textured road below, bright lane markings
// whose width shrinks toward the vanishing point.
func (s *Scene) Render(h, w int, rng *tensor.RNG) *tensor.Tensor {
	img := tensor.New(3, h, w)
	hy := int(s.HorizonY * float64(h))
	skyR, skyG, skyB := float32(0.55), float32(0.62), float32(0.72)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if y < hy {
				img.Set(skyR, 0, y, x)
				img.Set(skyG, 1, y, x)
				img.Set(skyB, 2, y, x)
				continue
			}
			v := float32(s.RoadBrightness)
			img.Set(v, 0, y, x)
			img.Set(v, 1, y, x)
			img.Set(v, 2, y, x)
		}
	}
	// Lane markings.
	for lane := range s.BottomX {
		if !s.Visible[lane] {
			continue
		}
		for y := hy; y < h; y++ {
			t := (float64(y)/float64(h) - s.HorizonY) / (1 - s.HorizonY)
			if t <= 0 {
				continue
			}
			if s.Dashed[lane] && int(t*18)%3 == 2 {
				continue
			}
			xc := s.LaneX(lane, t) * float64(w)
			halfw := math.Max(0.5, s.MarkHalfWidth*float64(w)*t)
			lo := int(math.Floor(xc - halfw))
			hi := int(math.Ceil(xc + halfw))
			for x := lo; x <= hi; x++ {
				if x < 0 || x >= w {
					continue
				}
				// Soft edge: fade with distance from centre.
				d := math.Abs(float64(x)-xc) / (halfw + 1e-9)
				if d > 1 {
					continue
				}
				v := float32(s.MarkBrightness * (1 - 0.4*d))
				for c := 0; c < 3; c++ {
					if v > img.At(c, y, x) {
						img.Set(v, c, y, x)
					}
				}
			}
		}
	}
	_ = rng
	return img
}
